//! Cross-crate price unification: the estimate a `lego-bench` driver
//! prints in a paper table and the estimate the `lego-tune` oracle
//! ranks must be *bit-identical* for the same (workload, config,
//! hardware) — for **every** workload, including the additive-launch
//! NW/LUD wavefronts, on every device (A100, H100 and the warp-64
//! MI300) — because both route through the shared `gpu_sim::trace`
//! builders and the one `CostModel` pricing engine, so nothing can
//! drift. Plus property tests for the occupancy model.

mod prop_support;

use gpu_sim::{a100, h100, mi300, score, Estimate, GpuConfig, KernelProfile};
use lego_bench::workloads::matmul::Schedule;
use lego_bench::workloads::rowwise::RowwiseBench;
use lego_bench::workloads::{lud as bench_lud, matmul, nw as bench_nw, stencil, transpose};
use lego_codegen::cuda::stencil::StencilShape;
use lego_codegen::cuda::transpose::TransposeVariant;
use lego_core::Layout;
use lego_tune::{
    build_layout, build_workload, Candidate, RowwiseOp, ScheduleChoice, StagingChoice,
    StencilLayoutChoice, TunedConfig, WorkloadKind,
};
use prop_support::Rng;

/// Every device configuration of the model — each parity test runs on
/// all of them, so an NVIDIA-shaped assumption anywhere in the pricing
/// path shows up as a cross-crate mismatch on the MI300.
fn devices() -> [GpuConfig; 3] {
    [a100(), h100(), mi300()]
}

/// The tuner-oracle estimate for a config, with the tuner-only
/// index-expression flop term zeroed so it prices exactly what the
/// bench drivers price.
fn oracle(kind: WorkloadKind, config: TunedConfig, cfg: &GpuConfig) -> Estimate {
    let candidate = Candidate {
        config,
        expr_variant: None,
        index_ops: None,
    };
    let layout = build_layout(&kind, &config).expect("layout");
    let workload = build_workload(&kind, &candidate, cfg);
    score(&layout, &workload, cfg)
}

#[test]
fn matmul_bench_and_oracle_estimates_are_bit_identical() {
    for cfg in devices() {
        for (n, tiles, gm) in [(2048i64, (128, 128, 64), 8i64), (4096, (64, 64, 32), 4)] {
            let bench = matmul::estimate(n, tiles, Schedule::Grouped { gm }, &cfg);
            let (bm, bn, bk) = tiles;
            let tuned = oracle(
                WorkloadKind::Matmul { n },
                TunedConfig::Matmul {
                    bm,
                    bn,
                    bk,
                    schedule: ScheduleChoice::Grouped { gm },
                },
                &cfg,
            );
            assert_eq!(bench, tuned, "n={n} tiles={tiles:?} on {}", cfg.name);

            // Row-major schedule too.
            let bench = matmul::estimate(n, tiles, Schedule::RowMajor, &cfg);
            let tuned = oracle(
                WorkloadKind::Matmul { n },
                TunedConfig::Matmul {
                    bm,
                    bn,
                    bk,
                    schedule: ScheduleChoice::RowMajor,
                },
                &cfg,
            );
            assert_eq!(bench, tuned, "row-major n={n} on {}", cfg.name);
        }
    }
}

#[test]
fn transpose_bench_and_oracle_estimates_are_bit_identical() {
    for cfg in devices() {
        for n in [1024i64, 2048] {
            // Naive <-> staging None.
            let bench = transpose::estimate(n, 32, TransposeVariant::Naive, &cfg);
            let tuned = oracle(
                WorkloadKind::Transpose { n },
                TunedConfig::Transpose {
                    t: 32,
                    staging: None,
                },
                &cfg,
            );
            assert_eq!(bench, tuned, "naive n={n} on {}", cfg.name);

            // SmemCoalesced <-> Swizzle staging (the generated kernel's
            // staging layout is the swizzle).
            let bench = transpose::estimate(n, 32, TransposeVariant::SmemCoalesced, &cfg);
            let tuned = oracle(
                WorkloadKind::Transpose { n },
                TunedConfig::Transpose {
                    t: 32,
                    staging: Some(StagingChoice::Swizzle),
                },
                &cfg,
            );
            assert_eq!(bench, tuned, "smem n={n} on {}", cfg.name);
        }
    }
}

#[test]
fn stencil_bench_and_oracle_estimates_are_bit_identical() {
    for cfg in devices() {
        stencil_parity_on(&cfg);
    }
}

fn stencil_parity_on(cfg: &GpuConfig) {
    let cfg = cfg.clone();
    for shape in [StencilShape::Star(2), StencilShape::Cube(1)] {
        let n = 32i64;
        let bench_kernels = lego_codegen::cuda::stencil::generate(shape, n, 8).unwrap();
        // Row-major baseline: (4, lane, 4) tiles, lanes along y.
        let bench = stencil::estimate(
            &bench_kernels.row_major,
            shape,
            n,
            (4, 32, 4),
            stencil::LaneAxis::Y,
            &cfg,
        );
        let tuned = oracle(
            WorkloadKind::Stencil { shape, n },
            TunedConfig::Stencil {
                n,
                layout: StencilLayoutChoice::RowMajorY,
            },
            &cfg,
        );
        assert_eq!(bench, tuned, "{} row-major", shape.name());

        // Brick layout, brick-local lanes.
        let bench = stencil::estimate(
            &bench_kernels.brick,
            shape,
            n,
            (8, 8, 8),
            stencil::LaneAxis::YZ,
            &cfg,
        );
        let tuned = oracle(
            WorkloadKind::Stencil { shape, n },
            TunedConfig::Stencil {
                n,
                layout: StencilLayoutChoice::Brick { b: 8 },
            },
            &cfg,
        );
        assert_eq!(bench, tuned, "{} brick", shape.name());
    }
}

/// NW and LUD prices — not just traces — are bit-identical between the
/// bench drivers and the tuner oracle on every device: both go through
/// the one `CostModel` under `PricingMode::AdditiveLaunch`, and the
/// bench crate no longer owns any pricing loop of its own.
#[test]
fn nw_and_lud_prices_are_bit_identical() {
    use lego_codegen::tuning::NwLayoutChoice;
    for cfg in devices() {
        // NW: the full additive-launch estimate, both buffer layouts.
        for (optimized, layout) in [
            (false, NwLayoutChoice::RowMajor),
            (true, NwLayoutChoice::Antidiag),
        ] {
            let bench = bench_nw::estimate(2048, 16, optimized, &cfg);
            let tuned = oracle(
                WorkloadKind::Nw { n: 2048, b: 16 },
                TunedConfig::Nw { b: 16, layout },
                &cfg,
            );
            assert_eq!(bench, tuned, "nw optimized={optimized} on {}", cfg.name);
        }

        // The bench driver's per-block pass count is still the oracle's
        // smem phase, block for block.
        let k = lego_codegen::cuda::nw::generate(16).unwrap();
        for layout in [&k.baseline, &k.optimized] {
            let bench_passes = bench_nw::block_smem_passes(layout, 16, &cfg);
            let nb = 2048 / 16;
            let blocks = 2.0 * (nb * nb) as f64;
            let tuned = score(
                layout,
                &gpu_sim::trace::TraceBuilder::build(
                    &gpu_sim::trace::NwWavefront {
                        n: 2048,
                        b: 16,
                        index_flops: 0.0,
                    },
                    &cfg,
                ),
                &cfg,
            );
            assert_eq!(tuned.smem_passes, bench_passes * blocks);
        }

        // LUD: the bench estimate IS the oracle estimate (layout-free
        // panel trace).
        for (n, bs) in [(2048i64, 16i64), (2048, 64), (4096, 128)] {
            let bench = bench_lud::estimate(n, bs, &cfg);
            let tuned = oracle(
                WorkloadKind::Lud { n, bs: 16 },
                TunedConfig::Lud { r: bs / 16, t: 16 },
                &cfg,
            );
            assert_eq!(bench, tuned, "lud n={n} bs={bs} on {}", cfg.name);
        }
    }
}

/// The row-wise operators complete the "every workload" guarantee: the
/// bench-side `RowwiseBench::estimate` and the tuner oracle price the
/// same `RowwiseSweep` trace through the same cost model.
#[test]
fn rowwise_prices_are_bit_identical() {
    let pairs = [
        (RowwiseBench::Softmax, RowwiseOp::Softmax),
        (RowwiseBench::LayernormFwd, RowwiseOp::LayernormFwd),
        (RowwiseBench::LayernormBwd, RowwiseOp::LayernormBwd),
    ];
    for cfg in devices() {
        for (bench_op, tune_op) in pairs {
            for bs in [256i64, 4096] {
                let bench = bench_op.estimate(4096, 4096, bs, &cfg);
                let tuned = oracle(
                    WorkloadKind::Rowwise {
                        op: tune_op,
                        m: 4096,
                        n: 4096,
                    },
                    TunedConfig::Rowwise { op: tune_op, bs },
                    &cfg,
                );
                assert_eq!(bench, tuned, "{:?} bs={bs} on {}", bench_op, cfg.name);
            }
        }
    }
}

/// Occupancy is monotone non-increasing in registers and shared memory
/// per block, and resident warps never exceed the hardware cap.
#[test]
fn occupancy_is_monotone_and_capped() {
    let mut rng = Rng::new(0x0cc0_9a7e);
    for cfg in devices() {
        for _ in 0..500 {
            let warps = rng.range_i64(1, 33) as f64;
            let regs = rng.range_i64(0, 80_000) as f64;
            let smem = rng.range_i64(0, 300 * 1024) as f64;
            let p = KernelProfile {
                warps_per_block: warps,
                regs_per_block: regs,
                smem_per_block: smem,
                ..Default::default()
            };
            let occ = p.occupancy(&cfg);
            assert!((0.0..=1.0).contains(&occ), "occ {occ}");
            assert!(
                p.resident_warps(&cfg) <= cfg.max_warps_per_sm as f64,
                "resident warps exceed cap"
            );

            // Monotone non-increasing in each resource.
            let more_regs = KernelProfile {
                regs_per_block: regs + rng.range_i64(1, 20_000) as f64,
                ..p
            };
            assert!(
                more_regs.occupancy(&cfg) <= occ,
                "occupancy rose with registers: {} regs {} -> {}",
                cfg.name,
                regs,
                more_regs.regs_per_block
            );
            let more_smem = KernelProfile {
                smem_per_block: smem + rng.range_i64(1, 64 * 1024) as f64,
                ..p
            };
            assert!(
                more_smem.occupancy(&cfg) <= occ,
                "occupancy rose with smem: {} {} -> {}",
                cfg.name,
                smem,
                more_smem.smem_per_block
            );
        }
    }
}

/// Lower occupancy can only slow a kernel down, never speed it up, and
/// a resource-free profile estimates exactly as before the occupancy
/// term existed.
#[test]
fn estimates_never_improve_with_lower_occupancy() {
    let mut rng = Rng::new(0xe571_aa7e);
    let cfg = a100();
    for _ in 0..200 {
        let base = KernelProfile {
            flops: rng.range_i64(1, 1_000_000) as f64 * 1e6,
            dram_bytes: rng.range_i64(1, 1_000_000) as f64 * 1e3,
            l2_bytes: rng.range_i64(1, 1_000_000) as f64 * 1e3,
            smem_passes: rng.range_i64(0, 1_000_000) as f64,
            blocks: 1024.0,
            launches: 1.0,
            warps_per_block: 8.0,
            regs_per_block: rng.range_i64(1, 65_536) as f64,
            smem_per_block: rng.range_i64(1, 164 * 1024) as f64,
        };
        let starved = KernelProfile {
            regs_per_block: base.regs_per_block * 2.0,
            smem_per_block: base.smem_per_block * 2.0,
            ..base
        };
        let t_base = gpu_sim::estimate(&base, gpu_sim::Pipeline::Fp32, &cfg);
        let t_starved = gpu_sim::estimate(&starved, gpu_sim::Pipeline::Fp32, &cfg);
        assert!(
            t_starved.total_s >= t_base.total_s - 1e-18,
            "starved kernel got faster"
        );
    }
}

/// The tuner handles the new NW and LUD kinds end to end and never
/// regresses their default configurations.
#[test]
fn nw_and_lud_tune_end_to_end() {
    use lego_tune::Tuner;
    for cfg in [a100(), h100()] {
        let tuner = Tuner::new(cfg.clone());
        for kind in [
            WorkloadKind::Nw { n: 2048, b: 16 },
            WorkloadKind::Lud { n: 2048, bs: 16 },
        ] {
            let r = tuner
                .tune(&kind)
                .unwrap_or_else(|e| panic!("{} on {}: {e}", kind.name(), cfg.name));
            assert!(r.evaluated > 1, "{}: space collapsed", kind.name());
            assert!(
                r.tuned.time_s <= r.naive.time_s,
                "{} regressed on {}",
                kind.name(),
                cfg.name
            );
            // Both workloads have real headroom over the Rodinia
            // defaults (conflict-free buffer, coarsened panels).
            assert!(
                r.speedup() > 1.5,
                "{}: speedup {}",
                kind.name(),
                r.speedup()
            );
        }
    }
}

/// The oracle path builds a concrete layout for every kind, including
/// the panel-granular LUD whose trace ignores it.
#[test]
fn every_kind_builds_a_layout_for_its_default_config() {
    for kind in [
        WorkloadKind::Matmul { n: 1024 },
        WorkloadKind::Transpose { n: 512 },
        WorkloadKind::Stencil {
            shape: StencilShape::Star(1),
            n: 32,
        },
        WorkloadKind::Nw { n: 1024, b: 16 },
        WorkloadKind::Lud { n: 1024, bs: 16 },
    ] {
        let layout: Layout = build_layout(&kind, &kind.default_config()).expect("layout");
        let dims = layout.view().dims_const().expect("const dims");
        assert!(!dims.is_empty(), "{}", kind.name());
    }
}
