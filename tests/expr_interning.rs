//! Property tests for the interned expression IR.
//!
//! Three invariants, each checked across the index expressions the
//! tuner actually constructs for all six workload families (every
//! symbolic candidate of the legacy search spaces):
//!
//! 1. **Interning round-trip** — lowering the same candidate twice
//!    yields *pointer-equal* expressions (`ptr_eq`, same [`ExprId`]):
//!    hash-consing is complete for same-thread construction.
//! 2. **Simplify idempotence** — `simplify(simplify(e)) ==
//!    simplify(e)`, and because fixpoints are interned, the re-run is
//!    pointer-equal too.
//! 3. **Eval equivalence** — the original, simplified, and
//!    expanded-then-simplified forms agree on concrete bindings
//!    sampled within the candidate's declared index bounds (the only
//!    region where the Table II side conditions hold).
//!
//! Plus the cross-thread soundness corner: a structurally identical
//! expression interned on another thread gets a different id, and
//! structural equality must still hold.

use lego_expr::{eval, Bindings, Engine, Expr, NumRange, RangeEnv};
use lego_tune::{symbolic_exprs, SearchSpace, WorkloadKind};

mod prop_kinds {
    use lego_codegen::cuda::stencil::StencilShape;
    use lego_tune::{RowwiseOp, WorkloadKind};

    /// The six workload families at gate-sized problems.
    pub fn all() -> Vec<WorkloadKind> {
        vec![
            WorkloadKind::Matmul { n: 1024 },
            WorkloadKind::Transpose { n: 512 },
            WorkloadKind::Stencil {
                shape: StencilShape::Star(1),
                n: 64,
            },
            WorkloadKind::Nw { n: 448, b: 16 },
            WorkloadKind::Lud { n: 512, bs: 16 },
            WorkloadKind::Rowwise {
                op: RowwiseOp::Softmax,
                m: 256,
                n: 1024,
            },
        ]
    }
}

/// Every symbolic candidate expression of a workload's legacy space,
/// with its range environment.
fn candidate_exprs(kind: WorkloadKind) -> Vec<(Vec<Expr>, RangeEnv)> {
    SearchSpace::enumerate(kind)
        .candidates
        .iter()
        .filter_map(|c| symbolic_exprs(&kind, &c.config))
        .collect()
}

#[test]
fn interning_round_trip_is_pointer_equal() {
    for kind in prop_kinds::all() {
        let space = SearchSpace::enumerate(kind);
        let mut symbolic = 0usize;
        for c in &space.candidates {
            let Some((first, _)) = symbolic_exprs(&kind, &c.config) else {
                continue;
            };
            let (second, _) = symbolic_exprs(&kind, &c.config).expect("still symbolic");
            assert_eq!(first.len(), second.len());
            for (a, b) in first.iter().zip(&second) {
                assert!(
                    a.ptr_eq(b),
                    "{}: re-lowering {:?} produced a distinct node for {a}",
                    kind.name(),
                    c.config
                );
                assert_eq!(a.id(), b.id());
            }
            symbolic += 1;
        }
        assert!(symbolic > 0, "{}: no symbolic candidates", kind.name());
    }
}

#[test]
fn simplify_is_idempotent_on_interned_nodes() {
    for kind in prop_kinds::all() {
        for (exprs, env) in candidate_exprs(kind) {
            let eng = Engine::with_env(env);
            for e in &exprs {
                let once = eng.simplify(e);
                let twice = eng.simplify(&once);
                assert!(
                    once.ptr_eq(&twice),
                    "{}: simplify not idempotent on {e}: {once} vs {twice}",
                    kind.name()
                );
            }
        }
    }
}

/// A tiny deterministic LCG so sampling needs no external crates.
struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0 >> 33
    }

    /// A sample within the (possibly unbounded) numeric range: inside
    /// `[lo, hi]` when both ends are known, defaulting missing ends to
    /// `lo.max(0)` .. `lo + 64`.
    fn in_range(&mut self, r: NumRange) -> i64 {
        let lo = r.lo.unwrap_or(0);
        let hi = r.hi.unwrap_or(lo + 64).max(lo);
        let span = (hi - lo + 1).max(1) as u64;
        lo + (self.next() % span) as i64
    }
}

#[test]
fn eval_equivalence_original_vs_simplified_vs_expanded() {
    let mut rng = Lcg(0x1e60_5eed);
    for kind in prop_kinds::all() {
        for (exprs, env) in candidate_exprs(kind) {
            let eng = Engine::with_env(env);
            for e in &exprs {
                let simplified = eng.simplify(e);
                let expanded = eng.simplify(&eng.expand(e));
                for _ in 0..16 {
                    let mut bind = Bindings::new();
                    for s in e.free_syms() {
                        let r = eng.num_range(&Expr::sym(&*s));
                        bind.insert(s.to_string(), rng.in_range(r));
                    }
                    let want = eval(e, &bind).expect("original evaluates");
                    let got_s = eval(&simplified, &bind).expect("simplified evaluates");
                    let got_x = eval(&expanded, &bind).expect("expanded evaluates");
                    assert_eq!(
                        want,
                        got_s,
                        "{}: simplify changed value of {e} under {bind:?}",
                        kind.name()
                    );
                    assert_eq!(
                        want,
                        got_x,
                        "{}: expand+simplify changed value of {e} under {bind:?}",
                        kind.name()
                    );
                }
            }
        }
    }
}

#[test]
fn cross_thread_duplicates_stay_structurally_equal() {
    let build = || {
        let i = Expr::sym("i");
        let n = Expr::sym("n");
        (&i * &n + Expr::val(3)).floor_div(&Expr::sym("d"))
    };
    let local = build();
    let remote = std::thread::spawn(build).join().expect("thread");
    // Different arenas, different ids — but structural equality, the
    // structural hash, and ordering must all agree.
    assert_ne!(local.id(), remote.id());
    assert_eq!(local, remote);
    assert_eq!(local.cmp(&remote), std::cmp::Ordering::Equal);
    // And the foreign node interoperates: arithmetic over both interns
    // into the local arena and compares equal.
    assert_eq!(&local + Expr::val(1), &remote + Expr::val(1));
}
