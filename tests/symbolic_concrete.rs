//! Cross-crate property tests: the symbolic path (layout → expression →
//! simplify → evaluate) agrees with the concrete path everywhere, i.e.
//! Table II simplification is semantics-preserving on layout-generated
//! expressions.

mod prop_support;

use lego_core::perms::{antidiag, reverse_perm};
use lego_core::{Layout, OrderBy, Perm};
use lego_expr::{eval, Bindings, Engine, Expr, RangeEnv};
use prop_support::Rng;

fn check_layout_symbolic(layout: &Layout, dims: &[i64]) {
    let names = ["i0", "i1", "i2", "i3"];
    let idx: Vec<Expr> = names[..dims.len()].iter().map(|s| Expr::sym(*s)).collect();
    let raw = layout.apply_sym(&idx).unwrap();
    let mut env = RangeEnv::new();
    layout
        .declare_index_bounds(&mut env, &names[..dims.len()])
        .unwrap();
    let eng = Engine::with_env(env);
    let simp = eng.simplify(&raw);
    let exp = eng.simplify(&eng.expand(&raw));
    let cheap = eng.pick_cheaper(&raw).expr;

    let mut bind = Bindings::new();
    let mut counters = vec![0i64; dims.len()];
    loop {
        for (k, &v) in counters.iter().enumerate() {
            bind.insert(names[k].to_string(), v);
        }
        let want = layout
            .apply_c(&counters)
            .unwrap_or_else(|e| panic!("concrete apply failed: {e}"));
        for (tag, e) in [
            ("raw", &raw),
            ("simplified", &simp),
            ("expanded", &exp),
            ("cheapest", &cheap),
        ] {
            assert_eq!(
                eval(e, &bind).unwrap(),
                want,
                "{tag} disagrees at {counters:?}"
            );
        }
        // Odometer.
        let mut k = dims.len();
        loop {
            if k == 0 {
                return;
            }
            k -= 1;
            counters[k] += 1;
            if counters[k] < dims[k] {
                break;
            }
            counters[k] = 0;
        }
        if counters.iter().all(|&c| c == 0) {
            return;
        }
    }
}

#[test]
fn fig2_symbolic_agrees_everywhere() {
    let layout = Layout::builder([6i64, 4])
        .order_by(
            OrderBy::new([
                Perm::reg([2i64, 2], [2usize, 1]).unwrap(),
                reverse_perm(&[3, 2]).unwrap(),
            ])
            .unwrap(),
        )
        .build()
        .unwrap();
    check_layout_symbolic(&layout, &[6, 4]);
}

#[test]
fn fig6_symbolic_agrees_everywhere() {
    let layout = Layout::builder([6i64, 6])
        .order_by(OrderBy::new([Perm::reg([2i64, 3, 2, 3], [1usize, 3, 2, 4]).unwrap()]).unwrap())
        .order_by(
            OrderBy::new([
                Perm::reg([2i64, 2], [2usize, 1]).unwrap(),
                antidiag(3).unwrap(),
            ])
            .unwrap(),
        )
        .build()
        .unwrap();
    check_layout_symbolic(&layout, &[6, 6]);
}

#[test]
fn brick_symbolic_agrees_everywhere() {
    let layout = lego_core::brick::brick3d(4, 2).unwrap();
    check_layout_symbolic(&layout, &[4, 4, 4]);
}

/// Random stripmined layouts: simplified symbolic expression equals
/// concrete apply at every point.
#[test]
fn random_stripmine_symbolic_agrees() {
    let mut rng = Rng::new(0x57121);
    for _ in 0..32 {
        let (o1, o2) = (rng.range_i64(1, 4), rng.range_i64(1, 4));
        let (i1, i2) = (rng.range_i64(1, 4), rng.range_i64(1, 4));
        let sigma = vec![1usize, 3, 2, 4];
        let layout = Layout::builder([o1 * i1, o2 * i2])
            .order_by(OrderBy::new([Perm::reg([o1, i1, o2, i2], sigma).unwrap()]).unwrap())
            .build()
            .unwrap();
        check_layout_symbolic(&layout, &[o1 * i1, o2 * i2]);
    }
}

/// Simplification is sound on arbitrary (non-layout) expressions:
/// evaluate original vs simplified on random bindings within ranges.
#[test]
fn simplify_preserves_semantics_on_random_exprs() {
    let mut rng = Rng::new(0x51479);
    for _ in 0..32 {
        let a = rng.range_i64(0, 100);
        let b = rng.range_i64(1, 20);
        let c = rng.range_i64(1, 20);
        let mut env = RangeEnv::new();
        env.set_bounds("a", Expr::zero(), Expr::val(100));
        let x = Expr::sym("a");
        // A grab-bag of div/mod compositions.
        let exprs = [
            (&x * Expr::val(b) + Expr::val(a % b)).rem(&Expr::val(b)),
            (&x * Expr::val(b)).floor_div(&Expr::val(b)),
            x.rem(&Expr::val(b)).floor_div(&Expr::val(b)),
            x.floor_div(&Expr::val(b)).floor_div(&Expr::val(c)),
            Expr::val(b) * x.floor_div(&Expr::val(b)) + x.rem(&Expr::val(b)),
        ];
        let mut bind = Bindings::new();
        bind.insert("a".into(), a);
        for e in exprs {
            let s = Engine::with_env(env.clone()).simplify(&e);
            assert_eq!(
                eval(&e, &bind).unwrap(),
                eval(&s, &bind).unwrap(),
                "expr {} simplified to {}",
                e,
                s
            );
        }
    }
}
