//! End-to-end sanity of the experiment drivers: every figure/table
//! reproduction runs and exhibits the paper's qualitative result
//! (who wins, roughly by how much).

use gpu_sim::a100;
use lego_bench::workloads::matmul::{simulate as matmul, Schedule};
use lego_bench::workloads::rowwise::{Impl, RowwiseBench};
use lego_bench::workloads::{lud, nw, stencil, transpose};
use lego_codegen::cuda::stencil::StencilShape;
use lego_codegen::cuda::transpose::TransposeVariant;

const TILES: (i64, i64, i64) = (128, 128, 64);

/// Fig. 11 headline: cuBLAS ahead at 2k, parity by 8k.
#[test]
fn fig11_crossover_shape() {
    let cfg = a100();
    let small = matmul(2048, TILES, Schedule::Grouped { gm: 8 }, &cfg).tflops
        / matmul(2048, TILES, Schedule::Vendor, &cfg).tflops;
    let large = matmul(8192, TILES, Schedule::Grouped { gm: 8 }, &cfg).tflops
        / matmul(8192, TILES, Schedule::Vendor, &cfg).tflops;
    assert!(small < 0.9, "LEGO should trail at 2k (ratio {small:.2})");
    assert!(
        large > 0.95,
        "LEGO should reach parity at 8k (ratio {large:.2})"
    );
}

/// Fig. 11: LEGO ≥ Triton on LayerNorm FWD, ties elsewhere; both beat
/// PyTorch on the fused row-wise kernels.
#[test]
fn fig11_rowwise_ordering() {
    let cfg = a100();
    for b in [
        RowwiseBench::LayernormFwd,
        RowwiseBench::LayernormBwd,
        RowwiseBench::Softmax,
    ] {
        let l = b.time_s(4096, 4096, Impl::Lego, &cfg);
        let t = b.time_s(4096, 4096, Impl::Triton, &cfg);
        let p = b.time_s(4096, 4096, Impl::PyTorch, &cfg);
        assert!(l <= t + 1e-12, "{}: LEGO slower than Triton", b.name());
        assert!(l < p, "{}: LEGO slower than PyTorch", b.name());
    }
}

/// Fig. 12a: NW speedups in (roughly) the paper band, growing with size.
#[test]
fn fig12a_nw_band() {
    let cfg = a100();
    let mut prev = 0.0;
    for n in [2048i64, 4096, 8192, 16384] {
        let s = nw::speedup(n, 16, &cfg);
        assert!((1.3..2.3).contains(&s), "n={n}: {s:.2}");
        assert!(s >= prev, "speedup not monotone");
        prev = s;
    }
}

/// Fig. 12b: coarsening wins at every size; best config is the paper's
/// 64×64 block with coarsening factor 4.
#[test]
fn fig12b_lud_best_config() {
    let cfg = a100();
    for n in [2048i64, 4096] {
        let t16 = lud::simulate(n, 16, &cfg).time_s;
        let t32 = lud::simulate(n, 32, &cfg).time_s;
        let t64 = lud::simulate(n, 64, &cfg).time_s;
        assert!(t64 < t16, "n={n}: coarsened not faster");
        assert!(t32 < t16, "n={n}: intermediate not faster");
    }
}

/// Fig. 12c: bricks beat row-major on every stencil shape.
#[test]
fn fig12c_brick_wins_all_shapes() {
    let cfg = a100();
    for shape in StencilShape::ALL {
        let (_, _, s) = stencil::compare(shape, 64, 8, &cfg);
        assert!(s > 2.0, "{}: speedup {s:.2}", shape.name());
    }
}

/// Fig. 13: coarsening moves LUD toward higher arithmetic intensity and
/// achieved performance stays below the roof.
#[test]
fn fig13_roofline_consistency() {
    use gpu_sim::{attainable, timing::Pipeline};
    let cfg = a100();
    for bs in [16i64, 64] {
        let r = lud::simulate(4096, bs, &cfg);
        let roof = attainable(r.intensity, Pipeline::Fp32, &cfg);
        assert!(
            r.gflops * 1e9 <= roof * 1.01,
            "bs={bs}: achieved above roof"
        );
    }
}

/// Table V: smem ≫ naive at every size; LEGO-MLIR within a few percent
/// of the SDK (slight edge).
#[test]
fn table5_shape() {
    let cfg = a100();
    for n in [2048i64, 4096, 8192] {
        let naive = transpose::simulate(n, 32, TransposeVariant::Naive, &cfg);
        let smem = transpose::simulate(n, 32, TransposeVariant::SmemCoalesced, &cfg);
        assert!(smem.gbps / naive.gbps > 2.5, "n={n}");
        // Absolute band sanity vs the paper's numbers.
        assert!(
            naive.gbps > 100.0 && naive.gbps < 450.0,
            "naive {}",
            naive.gbps
        );
        assert!(
            smem.gbps > 450.0 && smem.gbps < 1200.0,
            "smem {}",
            smem.gbps
        );
    }
}
