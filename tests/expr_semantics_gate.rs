//! The expression-semantics gate.
//!
//! The interned expression IR must be a pure *representation* change:
//! simplified forms, cost-model annotations, tuner rankings, and
//! printed kernels have to stay bit-identical to the tree-walking
//! implementation they replaced. This test pins all of that against a
//! golden transcript captured from the pre-interning engine:
//!
//! * every legacy-space candidate's `(variant, index_ops)` annotation
//!   for all six workload families,
//! * the exhaustive tuner winner (config + bit-exact naive/tuned
//!   estimates) per workload on a100/h100/mi300,
//! * the seeded Anneal and Genetic winners over the enlarged spaces
//!   (the metaheuristics construct candidates through the memoized
//!   fast path, and their RNG streams must not shift), and
//! * printed simplified index expressions for representative layouts
//!   (canonical n-ary forms reach the printers unchanged).
//!
//! Future IR changes that intentionally alter semantics must regenerate
//! the transcript (`EXPR_GATE_WRITE=1 cargo test --test
//! expr_semantics_gate`) and justify the diff in review; CI runs this
//! test on every push so rankings can never shift silently.

use gpu_sim::{a100, h100, mi300, GpuConfig};
use lego_codegen::cuda::stencil::StencilShape;
use lego_codegen::tuning::RowwiseOp;
use lego_expr::printer::python::{print as py_print, Flavor};
use lego_expr::{pick_cheaper, Expr, RangeEnv};
use lego_tune::space::{build_layout, SearchSpace, WorkloadKind};
use lego_tune::{Budget, Strategy, Tuner};

/// The six workload families at gate-sized problems (divisible by every
/// legacy tile/block choice, small enough for exhaustive search).
fn workloads() -> Vec<WorkloadKind> {
    vec![
        WorkloadKind::Matmul { n: 1024 },
        WorkloadKind::Transpose { n: 512 },
        WorkloadKind::Stencil {
            shape: StencilShape::Star(1),
            n: 64,
        },
        WorkloadKind::Nw { n: 448, b: 16 },
        WorkloadKind::Lud { n: 512, bs: 16 },
        WorkloadKind::Rowwise {
            op: RowwiseOp::Softmax,
            m: 256,
            n: 1024,
        },
    ]
}

fn devices() -> Vec<GpuConfig> {
    vec![a100(), h100(), mi300()]
}

/// Bit-exact rendering of an estimate time (hex of the IEEE-754 bits).
fn bits(v: f64) -> String {
    format!("{:016x}", v.to_bits())
}

/// Builds the full transcript the golden file pins.
fn transcript() -> Vec<String> {
    let mut out = Vec::new();

    // Candidate annotations are device-independent (pure expr work).
    for kind in workloads() {
        let space = SearchSpace::enumerate(kind);
        for c in &space.candidates {
            out.push(format!(
                "cand {} {:?} variant={:?} ops={:?}",
                kind.name(),
                c.config,
                c.expr_variant,
                c.index_ops
            ));
        }
    }

    for cfg in devices() {
        for kind in workloads() {
            let r = Tuner::new(cfg.clone())
                .tune(&kind)
                .expect("exhaustive tune");
            out.push(format!(
                "winner {} {} {:?} naive={} tuned={} evaluated={}",
                cfg.name,
                r.workload,
                r.config,
                bits(r.naive.time_s),
                bits(r.tuned.time_s),
                r.evaluated
            ));
            for strategy in [Strategy::Anneal, Strategy::Genetic] {
                let r = Tuner::new(cfg.clone())
                    .with_strategy(strategy)
                    .with_budget(Budget(96))
                    .tune(&kind)
                    .expect("budgeted tune");
                out.push(format!(
                    "search {} {} {} {:?} tuned={} evaluated={}",
                    cfg.name,
                    strategy.name(),
                    r.workload,
                    r.config,
                    bits(r.tuned.time_s),
                    r.evaluated
                ));
            }
        }
    }

    // Printed simplified forms of representative index expressions: the
    // grouped matmul pid decomposition and the transposed smem store.
    let matmul = WorkloadKind::Matmul { n: 1024 };
    let layout =
        build_layout(&matmul, &matmul.default_config()).expect("grouped matmul layout builds");
    let mut env = RangeEnv::new();
    let dims = layout.view().dims_const().expect("const dims");
    env.set_bounds("pid", Expr::zero(), Expr::val(dims[0] * dims[1]));
    for (i, e) in layout
        .inv_sym(&Expr::sym("pid"))
        .expect("symbolic inverse")
        .iter()
        .enumerate()
    {
        let choice = pick_cheaper(e, &env);
        out.push(format!(
            "expr matmul-grouped pid{} [{:?}/{} ops] {}",
            i,
            choice.variant,
            choice.unexpanded_ops.min(choice.expanded_ops),
            py_print(&choice.expr, Flavor::Triton).expect("printable")
        ));
    }
    out
}

#[test]
fn expr_semantics_bit_identical_to_golden() {
    let lines = transcript();
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/tests/golden/expr_semantics.txt"
    );
    if std::env::var_os("EXPR_GATE_WRITE").is_some() {
        std::fs::write(path, lines.join("\n") + "\n").expect("write golden");
        return;
    }
    let golden = include_str!("golden/expr_semantics.txt");
    let golden: Vec<&str> = golden.lines().collect();
    assert_eq!(
        golden.len(),
        lines.len(),
        "transcript length changed: golden {} vs current {}",
        golden.len(),
        lines.len()
    );
    for (i, (g, l)) in golden.iter().zip(lines.iter()).enumerate() {
        assert_eq!(g, l, "semantics drift at transcript line {}", i + 1);
    }
}
