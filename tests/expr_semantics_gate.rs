//! The expression-semantics gate.
//!
//! The interned expression IR must be a pure *representation* change:
//! simplified forms, cost-model annotations, tuner rankings, and
//! printed kernels have to stay bit-identical to the tree-walking
//! implementation they replaced. This test pins all of that against a
//! golden transcript captured from the pre-interning engine:
//!
//! * every legacy-space candidate's `(variant, index_ops)` annotation
//!   for all six workload families,
//! * the exhaustive tuner winner (config + bit-exact naive/tuned
//!   estimates) per workload on a100/h100/mi300,
//! * the seeded Anneal and Genetic winners over the enlarged spaces
//!   (the metaheuristics construct candidates through the memoized
//!   fast path, and their RNG streams must not shift), and
//! * printed simplified index expressions for representative layouts
//!   (canonical n-ary forms reach the printers unchanged).
//!
//! Future IR changes that intentionally alter semantics must regenerate
//! the transcript (`EXPR_GATE_WRITE=1 cargo test --test
//! expr_semantics_gate`) and justify the diff in review; CI runs this
//! test on every push so rankings can never shift silently.

use gpu_sim::{a100, h100, mi300, GpuConfig};
use lego_codegen::cuda::stencil::StencilShape;
use lego_codegen::tuning::RowwiseOp;
use lego_expr::printer::python::{print as py_print, Flavor};
use lego_expr::{Engine, Expr, RangeEnv, SimplifyStrategy};
use lego_tune::space::{build_layout, SearchSpace, WorkloadKind};
use lego_tune::{Budget, Strategy, Tuner};

/// The six workload families at gate-sized problems (divisible by every
/// legacy tile/block choice, small enough for exhaustive search).
fn workloads() -> Vec<WorkloadKind> {
    vec![
        WorkloadKind::Matmul { n: 1024 },
        WorkloadKind::Transpose { n: 512 },
        WorkloadKind::Stencil {
            shape: StencilShape::Star(1),
            n: 64,
        },
        WorkloadKind::Nw { n: 448, b: 16 },
        WorkloadKind::Lud { n: 512, bs: 16 },
        WorkloadKind::Rowwise {
            op: RowwiseOp::Softmax,
            m: 256,
            n: 1024,
        },
    ]
}

fn devices() -> Vec<GpuConfig> {
    vec![a100(), h100(), mi300()]
}

/// Bit-exact rendering of an estimate time (hex of the IEEE-754 bits).
fn bits(v: f64) -> String {
    format!("{:016x}", v.to_bits())
}

/// Builds the full transcript the golden file pins.
fn transcript() -> Vec<String> {
    let mut out = Vec::new();

    // Candidate annotations are device-independent (pure expr work).
    for kind in workloads() {
        let space = SearchSpace::enumerate(kind);
        for c in &space.candidates {
            out.push(format!(
                "cand {} {:?} variant={:?} ops={:?}",
                kind.name(),
                c.config,
                c.expr_variant,
                c.index_ops
            ));
        }
    }

    for cfg in devices() {
        for kind in workloads() {
            let r = Tuner::new(cfg.clone())
                .tune(&kind)
                .expect("exhaustive tune");
            out.push(format!(
                "winner {} {} {:?} naive={} tuned={} evaluated={}",
                cfg.name,
                r.workload,
                r.config,
                bits(r.naive.time_s),
                bits(r.tuned.time_s),
                r.evaluated
            ));
            for strategy in [Strategy::Anneal, Strategy::Genetic] {
                let r = Tuner::new(cfg.clone())
                    .with_strategy(strategy)
                    .with_budget(Budget(96))
                    .tune(&kind)
                    .expect("budgeted tune");
                out.push(format!(
                    "search {} {} {} {:?} tuned={} evaluated={}",
                    cfg.name,
                    strategy.name(),
                    r.workload,
                    r.config,
                    bits(r.tuned.time_s),
                    r.evaluated
                ));
            }
        }
    }

    // Printed simplified forms of representative index expressions: the
    // grouped matmul pid decomposition and the transposed smem store.
    let matmul = WorkloadKind::Matmul { n: 1024 };
    let layout =
        build_layout(&matmul, &matmul.default_config()).expect("grouped matmul layout builds");
    let mut env = RangeEnv::new();
    let dims = layout.view().dims_const().expect("const dims");
    env.set_bounds("pid", Expr::zero(), Expr::val(dims[0] * dims[1]));
    for (i, e) in layout
        .inv_sym(&Expr::sym("pid"))
        .expect("symbolic inverse")
        .iter()
        .enumerate()
    {
        let choice = Engine::with_env(env.clone()).pick_cheaper(e);
        out.push(format!(
            "expr matmul-grouped pid{} [{:?}/{} ops] {}",
            i,
            choice.variant,
            choice.unexpanded_ops.min(choice.expanded_ops),
            py_print(&choice.expr, Flavor::Triton).expect("printable")
        ));
    }
    out
}

#[test]
fn expr_semantics_bit_identical_to_golden() {
    let lines = transcript();
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/tests/golden/expr_semantics.txt"
    );
    if std::env::var_os("EXPR_GATE_WRITE").is_some() {
        std::fs::write(path, lines.join("\n") + "\n").expect("write golden");
        return;
    }
    let golden = include_str!("golden/expr_semantics.txt");
    let golden: Vec<&str> = golden.lines().collect();
    assert_eq!(
        golden.len(),
        lines.len(),
        "transcript length changed: golden {} vs current {}",
        golden.len(),
        lines.len()
    );
    for (i, (g, l)) in golden.iter().zip(lines.iter()).enumerate() {
        assert_eq!(g, l, "semantics drift at transcript line {}", i + 1);
    }
}

/// The saturation companion to the golden gate: on every expression the
/// transcript pins (all symbolic candidate expressions plus the printed
/// grouped-matmul pid decomposition), `SimplifyStrategy::Saturate` must
/// (a) extract a form whose op count is no worse than the fixpoint
/// rewriter's, and (b) agree with the rewriter on concrete bindings
/// sampled within the declared index bounds. The rewrite strategy stays
/// bit-identical to the golden file above; saturation is only required
/// to be eval-equivalent and no costlier.
#[test]
fn saturate_no_worse_than_rewrite_on_transcript_exprs() {
    use lego_expr::{eval, Bindings};
    use lego_tune::symbolic_exprs;

    // Deterministic LCG sampler (no external crates).
    let mut state = 0x5a17_u64;
    let mut next = move || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        state >> 33
    };

    let mut checked = 0usize;
    let mut check = |exprs: &[Expr], env: &RangeEnv, tag: &str| {
        let rw = Engine::with_env(env.clone());
        let sat = Engine::with_env(env.clone()).with_strategy(SimplifyStrategy::Saturate);
        for e in exprs {
            let r = rw.simplify(e);
            let s = sat.simplify(e);
            assert!(
                sat.op_count(&s) <= rw.op_count(&r),
                "{tag}: saturate extracted a costlier form for {e}: {s} ({} ops) vs {r} ({} ops)",
                sat.op_count(&s),
                rw.op_count(&r)
            );
            for _ in 0..8 {
                let mut bind = Bindings::new();
                for sym in e.free_syms() {
                    let range = env.num_range(&Expr::sym(&*sym));
                    let lo = range.lo.unwrap_or(0);
                    let hi = range.hi.unwrap_or(lo + 64).max(lo);
                    let span = (hi - lo + 1).max(1) as u64;
                    bind.insert(sym.to_string(), lo + (next() % span) as i64);
                }
                let want = eval(e, &bind).expect("original evaluates");
                let got = eval(&s, &bind).expect("saturated form evaluates");
                assert_eq!(
                    want, got,
                    "{tag}: saturation changed value of {e} at {bind:?}"
                );
            }
            checked += 1;
        }
    };

    for kind in workloads() {
        let space = SearchSpace::enumerate(kind);
        for c in &space.candidates {
            if let Some((exprs, env)) = symbolic_exprs(&kind, &c.config) {
                check(&exprs, &env, &kind.name());
            }
        }
    }

    let matmul = WorkloadKind::Matmul { n: 1024 };
    let layout =
        build_layout(&matmul, &matmul.default_config()).expect("grouped matmul layout builds");
    let mut env = RangeEnv::new();
    let dims = layout.view().dims_const().expect("const dims");
    env.set_bounds("pid", Expr::zero(), Expr::val(dims[0] * dims[1]));
    let pids = layout.inv_sym(&Expr::sym("pid")).expect("symbolic inverse");
    check(&pids, &env, "matmul-grouped-pid");

    assert!(checked > 100, "gate exercised only {checked} expressions");
}
