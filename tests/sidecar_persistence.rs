//! Cross-session persistence properties of the memo sidecar.
//!
//! The sidecar's contract has three legs, each pinned here at the
//! workspace level (the unit suites in `lego-expr` and `lego-tune`
//! cover the encoding; these tests cover the *process-boundary*
//! behavior the consumers rely on):
//!
//! 1. **Round trip** — derived results collected on one thread and
//!    re-installed on a fresh thread (a fresh thread-local arena and an
//!    empty annotation cache: the closest a single process gets to a
//!    restart) reproduce bit-identical candidate results, and the
//!    re-saved file is byte-identical to the original.
//! 2. **Staleness** — a schema-version or rewrite-rule-fingerprint
//!    mismatch silently ignores the whole file: consumers re-derive
//!    from scratch, nothing crashes, nothing half-installs.
//! 3. **Corruption** — truncated or garbled files degrade to a cold
//!    start: loads never panic, and whatever survives the integrity
//!    checks never changes a derived result.

mod prop_support;

use std::path::{Path, PathBuf};

use lego_tune::{RowwiseOp, SearchSpace, Sidecar, WorkloadKind};
use prop_support::Rng;

/// The workloads the properties enumerate — small enough that a fresh
/// thread re-derives them in milliseconds, varied enough to exercise
/// simplify, saturate, op-count, and annotation rows.
fn kinds() -> Vec<WorkloadKind> {
    vec![
        WorkloadKind::Matmul { n: 256 },
        WorkloadKind::Rowwise {
            op: RowwiseOp::Softmax,
            m: 16,
            n: 256,
        },
    ]
}

/// A scratch directory unique to `tag` and this process.
fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("lego-sidecar-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Enumerates every workload on the calling thread and renders each
/// candidate's derived results — config, chosen expression variant,
/// index-op count — as one comparable line.
fn enumerate_lines() -> Vec<String> {
    let mut lines = Vec::new();
    for kind in kinds() {
        let space = SearchSpace::enumerate(kind);
        for c in &space.candidates {
            lines.push(format!(
                "{}|{}|{:?}|{:?}",
                kind.name(),
                c.config,
                c.expr_variant,
                c.index_ops
            ));
        }
    }
    lines
}

/// Runs `enumerate_lines` on a brand-new thread after installing the
/// sidecar at `path` (when given), returning the result lines plus how
/// many entries the install put in and how many sidecar hits the
/// enumeration scored.
fn fresh_thread_enumeration(path: Option<PathBuf>) -> (Vec<String>, usize, u64) {
    std::thread::spawn(move || {
        let installed = match &path {
            Some(p) => lego_tune::sidecar::load_and_install(p).installed(),
            None => 0,
        };
        let lines = enumerate_lines();
        let (_, ann_hits) = lego_tune::annotate_sidecar_stats();
        let hits = lego_expr::intern::stats().sidecar_hits + ann_hits;
        (lines, installed, hits)
    })
    .join()
    .expect("fresh enumeration thread")
}

/// Derives the workloads on a fresh thread and saves its sidecar to
/// `path`, returning the result lines the save captured.
fn derive_and_save(path: &Path) -> Vec<String> {
    let path = path.to_path_buf();
    std::thread::spawn(move || {
        let lines = enumerate_lines();
        lego_tune::sidecar::collect_and_save(&path).expect("sidecar write");
        lines
    })
    .join()
    .expect("derivation thread")
}

#[test]
fn round_trip_is_bit_identical_across_fresh_threads() {
    let dir = scratch("roundtrip");
    let path = dir.join("memo.txt");
    let _ = std::fs::remove_file(&path);

    let cold_lines = derive_and_save(&path);
    let saved = std::fs::read_to_string(&path).unwrap();
    assert!(!saved.is_empty(), "derivation saved an empty sidecar");

    // parse ∘ render is the identity on rendered documents: loading the
    // file and rendering it back reproduces the bytes on disk.
    assert_eq!(
        Sidecar::load(&path).render(),
        saved,
        "load+render is not bit-identical to the saved document"
    );

    // A fresh thread warmed from the file reproduces every derived
    // result bit-identically, and genuinely answers from the sidecar.
    let (warm_lines, installed, hits) = fresh_thread_enumeration(Some(path.clone()));
    assert_eq!(warm_lines, cold_lines, "warmed results diverged from cold");
    assert!(installed > 0, "install put nothing into the fresh thread");
    assert!(hits > 0, "warmed enumeration never hit the sidecar");

    // And re-collecting from the warmed thread writes the same bytes: no
    // information is lost or invented across the process boundary.
    let path2 = dir.join("memo-resaved.txt");
    let _ = std::fs::remove_file(&path2);
    {
        let path = path.clone();
        let path2 = path2.clone();
        std::thread::spawn(move || {
            lego_tune::sidecar::load_and_install(&path);
            let _ = enumerate_lines();
            lego_tune::sidecar::collect_and_save(&path2).expect("re-save");
        })
        .join()
        .expect("re-save thread");
    }
    assert_eq!(
        std::fs::read_to_string(&path2).unwrap(),
        saved,
        "re-saved sidecar is not byte-identical to the original"
    );
}

#[test]
fn stale_schema_or_rule_fingerprint_is_silently_ignored() {
    let dir = scratch("stale");
    let path = dir.join("memo.txt");
    let _ = std::fs::remove_file(&path);
    let cold_lines = derive_and_save(&path);
    let valid = std::fs::read_to_string(&path).unwrap();
    let (header, _) = valid.split_once('\n').unwrap();
    assert!(header.starts_with("lego-expr-sidecar v1 rules="));

    // A future schema version and a foreign rule-table fingerprint must
    // both be ignored wholesale — stale derived results from another
    // build must never be served.
    let future = valid.replacen("lego-expr-sidecar v1 ", "lego-expr-sidecar v999 ", 1);
    let foreign = {
        let fp_at = header.len() - 16;
        let mut doc = String::from(&valid[..fp_at]);
        doc.push_str("ffffffffffffffff");
        doc.push_str(&valid[header.len()..]);
        assert_ne!(doc, valid, "fingerprint tamper was a no-op");
        doc
    };
    for (name, doc) in [("future schema", future), ("foreign rules", foreign)] {
        let stale = dir.join("stale.txt");
        std::fs::write(&stale, &doc).unwrap();
        assert!(
            Sidecar::load(&stale).is_empty(),
            "{name}: stale sidecar was not ignored"
        );
        let (lines, installed, hits) = fresh_thread_enumeration(Some(stale));
        assert_eq!(installed, 0, "{name}: stale sidecar installed entries");
        assert_eq!(hits, 0, "{name}: stale sidecar scored hits");
        assert_eq!(lines, cold_lines, "{name}: cold re-derivation diverged");
    }
}

#[test]
fn corrupt_or_truncated_files_degrade_to_cold_start() {
    let dir = scratch("corrupt");
    let path = dir.join("memo.txt");
    let _ = std::fs::remove_file(&path);
    let cold_lines = derive_and_save(&path);
    let valid = std::fs::read_to_string(&path).unwrap();

    // Missing, empty, and binary-garbage files all load as empty.
    for (name, contents) in [
        ("empty", String::new()),
        (
            "binary garbage",
            "\u{1}\u{2}\u{3}\u{fffd}\n\u{4}".to_string(),
        ),
    ] {
        let p = dir.join("degenerate.txt");
        std::fs::write(&p, &contents).unwrap();
        assert!(Sidecar::load(&p).is_empty(), "{name}: load was not empty");
    }
    assert!(Sidecar::load(&dir.join("no-such-file.txt")).is_empty());

    let mut rng = Rng::new(0x51d3_ca41);

    // A whole replaced line is an anomaly, and the parser is strict:
    // one bad line invalidates the document rather than guessing.
    let lines: Vec<&str> = valid.lines().collect();
    for _ in 0..8 {
        let victim = rng.index(lines.len());
        let mut doc: Vec<String> = lines.iter().map(|l| l.to_string()).collect();
        doc[victim] = "garbled #$%! row".to_string();
        let p = dir.join("garbled.txt");
        std::fs::write(&p, doc.join("\n")).unwrap();
        assert!(
            Sidecar::load(&p).is_empty(),
            "garbling line {victim} did not invalidate the document"
        );
    }

    // Truncation at a random byte: either the cut lands mid-line (the
    // strict parser rejects the whole file) or exactly on a line
    // boundary (a valid prefix loads). Both are safe: installs never
    // panic, and a fresh thread still derives bit-identical results —
    // every surviving entry passed the integrity checks.
    for case in 0..16 {
        let cut = 1 + rng.index(valid.len() - 1);
        let p = dir.join("truncated.txt");
        std::fs::write(&p, &valid.as_bytes()[..cut]).unwrap();
        let loaded = Sidecar::load(&p);
        let (lines, _, _) = fresh_thread_enumeration(Some(p));
        assert_eq!(
            lines,
            cold_lines,
            "case {case}: truncation at byte {cut} changed derived results \
             (loaded {} entries)",
            loaded.len()
        );
    }
}
