//! Snapshot tests of generated code: the Fig. 10 Triton kernel, the CUDA
//! wrappers, and the MLIR modules, pinned line by line where the paper
//! shows the expected output.

use lego_codegen::cuda::{nw, stencil, transpose};
use lego_codegen::mlir::{transpose_module, MlirTranspose};
use lego_codegen::triton::matmul::{generate, MatmulVariant};
use lego_codegen::triton::{grouped_gemm, layernorm, softmax};

/// The generated matmul kernel carries the exact Fig. 10 index lines.
#[test]
fn fig10_kernel_snapshot() {
    let k = generate(MatmulVariant::NN).unwrap();
    let expected_lines = [
        "pid = tl.program_id(axis=0)",
        "nt_m = tl.cdiv(M, BM)",
        "nt_n = tl.cdiv(N, BN)",
        "pid_m = (pid//(nt_n*min(GM, nt_m)) % max(nt_m//GM, 1))*min(GM, nt_m) + pid % min(GM, nt_m)",
        "pid_n = pid % (nt_n*min(GM, nt_m))//min(GM, nt_m)",
        "a_ptrs = a_ptr + K*(BM*pid_m + (tl.arange(0, BM))[:, None]) + BK*k + (tl.arange(0, BK))[None, :]",
        "b_ptrs = b_ptr + N*(BK*k + (tl.arange(0, BK))[:, None]) + BN*pid_n + (tl.arange(0, BN))[None, :]",
        "accumulator = tl.dot(a, b, accumulator)",
        "c_ptrs = c_ptr + N*(BM*pid_m + (tl.arange(0, BM))[:, None]) + BN*pid_n + (tl.arange(0, BN))[None, :]",
        "tl.store(c_ptrs, c)",
    ];
    for line in expected_lines {
        assert!(
            k.source.contains(line),
            "missing `{line}` in:\n{}",
            k.source
        );
    }
}

/// All four variants differ only in the data-pointer lines.
#[test]
fn matmul_variants_share_thread_layout() {
    let nn = generate(MatmulVariant::NN).unwrap();
    for v in [MatmulVariant::NT, MatmulVariant::TN, MatmulVariant::TT] {
        let k = generate(v).unwrap();
        assert_eq!(k.pid_m, nn.pid_m, "{:?}", v);
        assert_eq!(k.pid_n, nn.pid_n, "{:?}", v);
        assert!(k.c_off == nn.c_off, "C layout never changes");
    }
    // But A/B offsets do change.
    let nt = generate(MatmulVariant::NT).unwrap();
    assert_ne!(nt.b_off, nn.b_off);
}

#[test]
fn triton_suite_sources_are_wellformed() {
    let sources = [
        generate(MatmulVariant::NN).unwrap().source,
        grouped_gemm::generate().unwrap().source,
        layernorm::generate(layernorm::Pass::Fwd).unwrap().source,
        layernorm::generate(layernorm::Pass::Bwd).unwrap().source,
        softmax::generate().unwrap().source,
    ];
    for src in sources {
        assert!(src.starts_with("@triton.jit"));
        assert!(!src.contains("{{"), "unfilled placeholder in:\n{src}");
        assert!(!src.contains("}}"));
        // Balanced parens over the whole kernel (cheap syntax sanity;
        // signatures span lines).
        assert_eq!(
            src.matches('(').count(),
            src.matches(')').count(),
            "unbalanced parens in:\n{src}"
        );
    }
}

#[test]
fn nw_wrapper_contains_antidiag_expression() {
    let k = nw::generate(16).unwrap();
    // The wrapper's slot() must contain a conditional (the two diagonal
    // halves) — the signature of the Fig. 7 permutation.
    assert!(k.source.contains('?'), "no ternary in:\n{}", k.source);
    assert!(k.source.contains("struct AntiDiagBuffer"));
}

#[test]
fn stencil_sources_have_one_tap_per_point() {
    for shape in stencil::StencilShape::ALL {
        let b = stencil::generate(shape, 64, 8).unwrap();
        assert_eq!(
            b.source.matches("acc +=").count(),
            shape.points(),
            "{}",
            shape.name()
        );
    }
}

#[test]
fn transpose_smem_uses_swizzled_indices() {
    let k = transpose::generate(transpose::TransposeVariant::SmemCoalesced, 32).unwrap();
    assert!(
        k.source.contains('^'),
        "expected XOR swizzle in smem indices:\n{}",
        k.source
    );
}

#[test]
fn mlir_modules_parseable_shape() {
    for v in [MlirTranspose::Naive, MlirTranspose::SmemCoalesced] {
        let m = transpose_module(v).unwrap();
        // Structural sanity: balanced braces, one gpu.func, SSA names
        // defined before use for the index computation block.
        assert_eq!(
            m.text.matches('{').count(),
            m.text.matches('}').count(),
            "unbalanced braces"
        );
        assert_eq!(m.text.matches("gpu.func").count(), 1);
        assert!(m.text.contains("gpu.return"));
    }
}

/// Generation is deterministic: two runs produce identical text.
#[test]
fn generation_is_deterministic() {
    let a = generate(MatmulVariant::NN).unwrap().source;
    let b = generate(MatmulVariant::NN).unwrap().source;
    assert_eq!(a, b);
}
