//! Property-based tests: randomly generated layout trees are bijections,
//! and `inv` is always the exact inverse of `apply`.
//!
//! Driven by the deterministic generator in `prop_support` (see its
//! module docs for why `proptest` is not used here).

mod prop_support;

use lego_core::check::check_layout_bijective;
use lego_core::perms::{antidiag, hilbert, morton, reverse_perm, xor_swizzle};
use lego_core::{Layout, OrderBy, Perm};
use prop_support::Rng;

const CASES: u64 = 64;

/// Two-level OrderBy with random dimension permutations is a bijection,
/// for random tile sizes.
#[test]
fn random_two_level_regp_layout_is_bijective() {
    let mut rng = Rng::new(0xB17E);
    for _ in 0..CASES {
        let (o1, o2) = (rng.range_i64(1, 4), rng.range_i64(1, 4));
        let (i1, i2) = (rng.range_i64(1, 5), rng.range_i64(1, 5));
        let s_outer = rng.sigma(2);
        let s_inner = rng.sigma(2);
        let view = [o1 * i1, o2 * i2];
        // Stripmine + per-level permutation: a generalized Fig. 6 O2.
        let strip = Perm::reg([o1, i1, o2, i2], [1usize, 3, 2, 4]).unwrap();
        let outer = Perm::reg([o1, o2], s_outer).unwrap();
        let inner = Perm::reg([i1, i2], s_inner).unwrap();
        let layout = Layout::builder(view)
            .order_by(OrderBy::new([strip]).unwrap())
            .order_by(OrderBy::new([outer, inner]).unwrap())
            .build()
            .unwrap();
        check_layout_bijective(&layout).unwrap();
    }
}

/// Chaining a random GenP after random RegPs stays bijective.
#[test]
fn random_genp_chain_is_bijective() {
    let mut rng = Rng::new(0x6E9);
    for _ in 0..CASES {
        let n = *rng.choose(&[2i64, 3, 4, 6, 8]);
        let sigma = rng.sigma(2);
        let genp_sel = rng.index(5);
        let reg = Perm::reg([n, n], sigma).unwrap();
        // Materialize a GenP choice deterministically from the selector.
        let pow2 = (n & (n - 1)) == 0;
        let genp = match genp_sel {
            0 => antidiag(n).unwrap(),
            1 => reverse_perm(&[n, n]).unwrap(),
            2 if pow2 => morton(n).unwrap(),
            3 if pow2 => hilbert(n).unwrap(),
            4 if pow2 => xor_swizzle(n, n).unwrap(),
            _ => antidiag(n).unwrap(),
        };
        let layout = Layout::builder([n, n])
            .order_by(OrderBy::new([reg]).unwrap())
            .order_by(OrderBy::new([genp]).unwrap())
            .build()
            .unwrap();
        check_layout_bijective(&layout).unwrap();
    }
}

/// apply then inv is the identity on random in-range indices, for a
/// random RegP layout (pointwise version of bijectivity, cheap on
/// bigger spaces).
#[test]
fn apply_inv_pointwise_roundtrip() {
    let mut rng = Rng::new(0xAB11E);
    for _ in 0..CASES {
        let dims = (rng.range_i64(2, 20), rng.range_i64(2, 20));
        let sigma = rng.sigma(2);
        let seed = rng.range_i64(0, 1000);
        let layout = Layout::builder([dims.0, dims.1])
            .order_by(OrderBy::new([Perm::reg([dims.0, dims.1], sigma).unwrap()]).unwrap())
            .build()
            .unwrap();
        let i = (seed * 7919) % dims.0;
        let j = (seed * 104729) % dims.1;
        let f = layout.apply_c(&[i, j]).unwrap();
        assert_eq!(layout.inv_c(f).unwrap(), vec![i, j]);
    }
}

/// Library GenPs round-trip on random flat positions.
#[test]
fn library_perm_roundtrip() {
    let mut rng = Rng::new(0x11B);
    for _ in 0..CASES {
        let n = *rng.choose(&[4i64, 8, 16]);
        let sel = rng.index(5);
        let seed = rng.range_i64(0, 10_000);
        let p = match sel {
            0 => antidiag(n).unwrap(),
            1 => reverse_perm(&[n, n]).unwrap(),
            2 => morton(n).unwrap(),
            3 => hilbert(n).unwrap(),
            _ => xor_swizzle(n, n).unwrap(),
        };
        let f = seed % (n * n);
        let idx = p.inv_c(f).unwrap();
        assert_eq!(p.apply_c(&idx).unwrap(), f);
    }
}
