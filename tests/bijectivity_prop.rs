//! Property-based tests: randomly generated layout trees are bijections,
//! and `inv` is always the exact inverse of `apply`.

use lego_core::check::check_layout_bijective;
use lego_core::perms::{antidiag, hilbert, morton, reverse_perm, xor_swizzle};
use lego_core::{Layout, OrderBy, Perm};
use proptest::prelude::*;

/// A random 1-based permutation of 1..=d.
fn arb_sigma(d: usize) -> impl Strategy<Value = Vec<usize>> {
    Just((1..=d).collect::<Vec<_>>()).prop_shuffle()
}

/// A random 2-D RegP over the given tile.
fn arb_regp(tile: [i64; 2]) -> impl Strategy<Value = Perm> {
    arb_sigma(2).prop_map(move |sigma| Perm::reg(tile, sigma).expect("valid sigma"))
}

/// A random library GenP for an n×n tile (n must be a power of two for
/// Morton/Hilbert; the strategy picks accordingly).
fn arb_genp(n: i64) -> impl Strategy<Value = Perm> {
    let pow2 = n > 0 && (n & (n - 1)) == 0;
    let mut options: Vec<Perm> = vec![
        antidiag(n).expect("antidiag"),
        reverse_perm(&[n, n]).expect("reverse"),
    ];
    if pow2 {
        options.push(morton(n).expect("morton"));
        options.push(hilbert(n).expect("hilbert"));
        options.push(xor_swizzle(n, n).expect("swizzle"));
    }
    let k = options.len();
    (0..k).prop_map(move |i| options[i].clone())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Two-level OrderBy with random dimension permutations is a
    /// bijection, for random tile sizes.
    #[test]
    fn random_two_level_regp_layout_is_bijective(
        (o1, o2) in (1i64..4, 1i64..4),
        (i1, i2) in (1i64..5, 1i64..5),
        s_outer in arb_sigma(2),
        s_inner in arb_sigma(2),
    ) {
        let view = [o1 * i1, o2 * i2];
        // Stripmine + per-level permutation: a generalized Fig. 6 O2.
        let strip = Perm::reg(
            [o1, i1, o2, i2],
            [1usize, 3, 2, 4],
        ).unwrap();
        let outer = Perm::reg([o1, o2], s_outer).unwrap();
        let inner = Perm::reg([i1, i2], s_inner).unwrap();
        let layout = Layout::builder(view)
            .order_by(OrderBy::new([strip]).unwrap())
            .order_by(OrderBy::new([outer, inner]).unwrap())
            .build()
            .unwrap();
        check_layout_bijective(&layout).unwrap();
    }

    /// Chaining a random GenP after random RegPs stays bijective.
    #[test]
    fn random_genp_chain_is_bijective(
        n in prop::sample::select(vec![2i64, 3, 4, 6, 8]),
        sigma in arb_sigma(2),
        genp_sel in 0usize..5,
    ) {
        let reg = Perm::reg([n, n], sigma).unwrap();
        // Materialize a GenP choice deterministically from the selector.
        let pow2 = (n & (n - 1)) == 0;
        let genp = match genp_sel {
            0 => antidiag(n).unwrap(),
            1 => reverse_perm(&[n, n]).unwrap(),
            2 if pow2 => morton(n).unwrap(),
            3 if pow2 => hilbert(n).unwrap(),
            4 if pow2 => xor_swizzle(n, n).unwrap(),
            _ => antidiag(n).unwrap(),
        };
        let layout = Layout::builder([n, n])
            .order_by(OrderBy::new([reg]).unwrap())
            .order_by(OrderBy::new([genp]).unwrap())
            .build()
            .unwrap();
        check_layout_bijective(&layout).unwrap();
    }

    /// apply then inv is the identity on random in-range indices, for a
    /// random RegP layout (pointwise version of bijectivity, cheap on
    /// bigger spaces).
    #[test]
    fn apply_inv_pointwise_roundtrip(
        dims in (2i64..20, 2i64..20),
        sigma in arb_sigma(2),
        seed in 0u64..1000,
    ) {
        let layout = Layout::builder([dims.0, dims.1])
            .order_by(OrderBy::new([
                Perm::reg([dims.0, dims.1], sigma).unwrap()
            ]).unwrap())
            .build()
            .unwrap();
        let i = (seed as i64 * 7919) % dims.0;
        let j = (seed as i64 * 104729) % dims.1;
        let f = layout.apply_c(&[i, j]).unwrap();
        prop_assert_eq!(layout.inv_c(f).unwrap(), vec![i, j]);
    }

    /// Library GenPs round-trip on random flat positions.
    #[test]
    fn library_perm_roundtrip(
        n in prop::sample::select(vec![4i64, 8, 16]),
        sel in 0usize..5,
        seed in 0u64..10_000,
    ) {
        let _ = arb_genp(n); // exercise the strategy constructor
        let p = match sel {
            0 => antidiag(n).unwrap(),
            1 => reverse_perm(&[n, n]).unwrap(),
            2 => morton(n).unwrap(),
            3 => hilbert(n).unwrap(),
            _ => xor_swizzle(n, n).unwrap(),
        };
        let f = (seed as i64) % (n * n);
        let idx = p.inv_c(f).unwrap();
        prop_assert_eq!(p.apply_c(&idx).unwrap(), f);
    }
}
