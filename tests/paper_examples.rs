//! Integration tests pinning the paper's worked examples across crates:
//! Fig. 2, Fig. 6, Fig. 8, Eq. (2), and the Table I layout specs.

use lego_core::check::check_layout_bijective;
use lego_core::perms::{antidiag, reverse_perm};
use lego_core::{sugar, Layout, OrderBy, Perm, Shape};
use lego_expr::Expr;

/// Fig. 2: GroupBy([6,4], OrderBy(RegP([2,2],[2,1]), GenP([3,2], p, p⁻¹))).
#[test]
fn fig2_layout_anchors() {
    let layout = Layout::builder([6i64, 4])
        .order_by(
            OrderBy::new([
                Perm::reg([2i64, 2], [2usize, 1]).unwrap(),
                reverse_perm(&[3, 2]).unwrap(),
            ])
            .unwrap(),
        )
        .build()
        .unwrap();
    assert_eq!(layout.apply_c(&[4, 1]).unwrap(), 6);
    assert_eq!(layout.inv_c(6).unwrap(), vec![4, 1]);
    check_layout_bijective(&layout).unwrap();
}

/// Eq. (2) / Fig. 6: GroupBy([6,6]).OrderBy(RegP([2,3,2,3],[1,3,2,4]))
/// .OrderBy(RegP([2,2],[2,1]), GenP([3,3], antidiag, antidiag⁻¹)).
fn fig6_layout() -> Layout {
    Layout::builder([6i64, 6])
        .order_by(OrderBy::new([Perm::reg([2i64, 3, 2, 3], [1usize, 3, 2, 4]).unwrap()]).unwrap())
        .order_by(
            OrderBy::new([
                Perm::reg([2i64, 2], [2usize, 1]).unwrap(),
                antidiag(3).unwrap(),
            ])
            .unwrap(),
        )
        .build()
        .unwrap()
}

#[test]
fn fig6_chain_anchors() {
    let g = fig6_layout();
    // Paper: element 26 at logical [4,2] is reordered by O2 to flat 23,
    // then by O1 to physical 15; inv(15) = [4,2].
    assert_eq!(g.apply_c(&[4, 2]).unwrap(), 15);
    assert_eq!(g.inv_c(15).unwrap(), vec![4, 2]);
    check_layout_bijective(&g).unwrap();
}

#[test]
fn fig6_intermediate_o2_step() {
    // The middle column alone: only the stripmine+interchange OrderBy.
    let o2 = Layout::builder([6i64, 6])
        .order_by(OrderBy::new([Perm::reg([2i64, 3, 2, 3], [1usize, 3, 2, 4]).unwrap()]).unwrap())
        .build()
        .unwrap();
    assert_eq!(o2.apply_c(&[4, 2]).unwrap(), 23);
    // And the 4-D index of 23 over (2,2,3,3) is [1,0,1,2] as the paper
    // states.
    assert_eq!(
        lego_core::shape::unflatten(&[2, 2, 3, 3], 23).unwrap(),
        vec![1, 0, 1, 2]
    );
}

/// Fig. 8 / Table I: GroupBy([2,2,2,2,2]).OrderBy(RegP([2,2,2,2,2],
/// [5,2,4,3,1])) — a layout non-contiguous in both dimensions of the
/// composed 4×8 view.
#[test]
fn fig8_layout_is_bijective_and_non_contiguous() {
    let layout = Layout::builder([4i64, 8])
        .order_by(
            OrderBy::new([Perm::reg([2i64, 2, 2, 2, 2], [5usize, 2, 4, 3, 1]).unwrap()]).unwrap(),
        )
        .build()
        .unwrap();
    check_layout_bijective(&layout).unwrap();
    // Non-contiguity in both dimensions: consecutive physical positions
    // are not always logical row or column neighbors.
    let mut logical_of = vec![(0i64, 0i64); 32];
    for i in 0..4 {
        for j in 0..8 {
            logical_of[layout.apply_c(&[i, j]).unwrap() as usize] = (i, j);
        }
    }
    let mut row_jumps = 0;
    let mut col_jumps = 0;
    for w in logical_of.windows(2) {
        if (w[1].0 - w[0].0).abs() > 1 {
            row_jumps += 1;
        }
        if (w[1].1 - w[0].1).abs() > 1 {
            col_jumps += 1;
        }
    }
    assert!(row_jumps > 0, "contiguous in rows");
    assert!(col_jumps > 0, "contiguous in columns");
}

/// Table I row 1: the matmul data layout formula
/// TileBy([M/BM, K/BK],[BM,BK]).OrderBy(Row(M,K)) equals row-major
/// global indexing of the tiled view.
#[test]
fn table1_matmul_data_layout() {
    let (m, k, bm, bk) = (64i64, 32, 16, 8);
    let dl = sugar::tile_by([Shape::from([m / bm, k / bk]), Shape::from([bm, bk])])
        .unwrap()
        .order_by(OrderBy::new([sugar::row([m, k]).unwrap()]).unwrap())
        .build()
        .unwrap();
    for (pm, kk, r0, r1) in [(0i64, 0i64, 0i64, 0i64), (2, 3, 5, 7), (3, 1, 15, 3)] {
        let want = (pm * bm + r0) * k + kk * bk + r1;
        assert_eq!(dl.apply_c(&[pm, kk, r0, r1]).unwrap(), want);
    }
}

/// Table I last row: the brick layout as
/// TileBy([N/B;3],[B;3]) + brick-contiguous reordering.
#[test]
fn table1_brick_layout() {
    let l = lego_core::brick::brick3d(8, 2).unwrap();
    check_layout_bijective(&l).unwrap();
    // Brick-contiguity: all 8 elements of brick (0,0,0) come first.
    for x in 0..2 {
        for y in 0..2 {
            for z in 0..2 {
                assert!(l.apply_c(&[x, y, z]).unwrap() < 8);
            }
        }
    }
}

/// Table I row 12b (TileBy reading): the LUD thread-coarsening layout.
#[test]
fn table1_lud_coarsening_layout() {
    let (r, t) = (4i64, 16i64);
    let l = sugar::tile_by([
        Shape::new([Expr::val(r), Expr::val(r)]),
        Shape::new([Expr::val(t), Expr::val(t)]),
    ])
    .unwrap()
    .order_by(OrderBy::new([sugar::row([r * t, r * t]).unwrap()]).unwrap())
    .build()
    .unwrap();
    let want = |ri: i64, rj: i64, ti: i64, tj: i64| (ri * t + ti) * (r * t) + rj * t + tj;
    assert_eq!(l.apply_c(&[1, 2, 3, 4]).unwrap(), want(1, 2, 3, 4));
    assert_eq!(l.apply_c(&[3, 0, 15, 9]).unwrap(), want(3, 0, 15, 9));
}

/// The anti-diagonal pseudocode of Fig. 7 round-trips for every size the
/// NW benchmark uses.
#[test]
fn fig7_antidiag_roundtrip_nw_sizes() {
    use lego_core::perms::{antidiag_flat, antidiag_flat_inv};
    for n in [17i64, 33, 65] {
        for i in 0..n {
            for j in 0..n {
                let f = antidiag_flat(n, i, j);
                assert_eq!(antidiag_flat_inv(n, f), (i, j), "n={n}");
            }
        }
    }
}
