//! Minimal deterministic pseudo-random driver for the property tests.
//!
//! The container building this workspace has no crate registry, so the
//! original `proptest` strategies are replaced by an explicit xorshift64*
//! generator: every test enumerates a fixed number of seeded cases, which
//! keeps the tests deterministic and shrink-free but preserves the
//! randomized coverage of the layout space.

// Each integration-test binary compiles this module independently and
// uses a different subset of the helpers.
#![allow(dead_code)]

/// xorshift64* — tiny, fast, and good enough to scatter test points.
pub struct Rng(u64);

impl Rng {
    pub fn new(seed: u64) -> Self {
        Rng(seed.max(1))
    }

    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545F4914F6CDD1D)
    }

    /// Uniform in `[lo, hi)`.
    pub fn range_i64(&mut self, lo: i64, hi: i64) -> i64 {
        assert!(lo < hi);
        lo + (self.next_u64() % (hi - lo) as u64) as i64
    }

    /// Uniform in `[0, n)`.
    pub fn index(&mut self, n: usize) -> usize {
        assert!(n > 0);
        (self.next_u64() % n as u64) as usize
    }

    /// A random 1-based permutation of `1..=d` (Fisher–Yates).
    pub fn sigma(&mut self, d: usize) -> Vec<usize> {
        let mut v: Vec<usize> = (1..=d).collect();
        for i in (1..d).rev() {
            v.swap(i, self.index(i + 1));
        }
        v
    }

    /// Pick one element of a slice.
    pub fn choose<'a, T>(&mut self, options: &'a [T]) -> &'a T {
        &options[self.index(options.len())]
    }
}
