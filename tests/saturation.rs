//! Property tests for equality saturation (`SimplifyStrategy::Saturate`).
//!
//! Four invariants over the expressions the tuner actually constructs
//! (every symbolic candidate of the six workload families' legacy
//! spaces) plus targeted index-arithmetic forms:
//!
//! 1. **Eval equivalence** — the saturated form agrees with the original
//!    (and the fixpoint-rewritten form) on concrete bindings sampled
//!    within the candidate's declared index bounds.
//! 2. **Never costlier** — `op_count(saturate(e)) <= op_count(rewrite(e))`
//!    on every candidate expression, at any budget (the e-graph is
//!    seeded with the rewriter's result, so this holds by construction).
//! 3. **Determinism** — two independent saturations of the same
//!    `(expr, env, budget)` produce identical expressions *and*
//!    identical rule statistics (`simplify_with_stats` bypasses the
//!    session memo, so this exercises the real saturation loop twice).
//! 4. **Budget monotonicity** — growing the budget never extracts a
//!    costlier form: the union schedule is deterministic, so a
//!    smaller-budget run is a prefix of the larger run's exploration.
//!
//! Plus the committed strictly-better case: the factoring identity
//! `i*s + j*s → (i+j)*s` that the destructive rewriter cannot reach
//! (its collect rule only merges syntactically identical cores), which
//! saturation finds via the exploratory `Factor` rule.

mod prop_support;

use lego_expr::{eval, Bindings, Engine, Expr, RangeEnv, SaturationBudget, SimplifyStrategy};
use lego_tune::{symbolic_exprs, SearchSpace, WorkloadKind};
use prop_support::Rng;

fn workloads() -> Vec<WorkloadKind> {
    use lego_codegen::cuda::stencil::StencilShape;
    use lego_tune::RowwiseOp;
    vec![
        WorkloadKind::Matmul { n: 1024 },
        WorkloadKind::Transpose { n: 512 },
        WorkloadKind::Stencil {
            shape: StencilShape::Star(1),
            n: 64,
        },
        WorkloadKind::Nw { n: 448, b: 16 },
        WorkloadKind::Lud { n: 512, bs: 16 },
        WorkloadKind::Rowwise {
            op: RowwiseOp::Softmax,
            m: 256,
            n: 1024,
        },
    ]
}

/// Every symbolic candidate expression of a workload's legacy space.
fn candidate_exprs(kind: WorkloadKind) -> Vec<(Vec<Expr>, RangeEnv)> {
    SearchSpace::enumerate(kind)
        .candidates
        .iter()
        .filter_map(|c| symbolic_exprs(&kind, &c.config))
        .collect()
}

/// A binding for `e`'s free symbols sampled within `env`'s bounds
/// (unbounded ends default to a small positive window).
fn sample_binding(e: &Expr, env: &RangeEnv, rng: &mut Rng) -> Bindings {
    let mut bind = Bindings::new();
    for s in e.free_syms() {
        let r = env.num_range(&Expr::sym(&*s));
        let lo = r.lo.unwrap_or(0);
        let hi = r.hi.unwrap_or(lo + 64).max(lo);
        bind.insert(s.to_string(), rng.range_i64(lo, hi + 1));
    }
    bind
}

#[test]
fn saturation_is_eval_equivalent_to_rewrite_on_candidate_exprs() {
    let mut rng = Rng::new(0x5a7_0001);
    for kind in workloads() {
        for (exprs, env) in candidate_exprs(kind) {
            let rw = Engine::with_env(env.clone());
            let sat = Engine::with_env(env.clone()).with_strategy(SimplifyStrategy::Saturate);
            for e in &exprs {
                let r = rw.simplify(e);
                let s = sat.simplify(e);
                for _ in 0..12 {
                    let bind = sample_binding(e, &env, &mut rng);
                    let want = eval(e, &bind).expect("original evaluates");
                    assert_eq!(
                        want,
                        eval(&s, &bind).expect("saturated evaluates"),
                        "{}: saturation changed value of {e} under {bind:?}",
                        kind.name()
                    );
                    assert_eq!(
                        want,
                        eval(&r, &bind).expect("rewritten evaluates"),
                        "{}: rewrite changed value of {e} under {bind:?}",
                        kind.name()
                    );
                }
            }
        }
    }
}

#[test]
fn saturation_is_never_costlier_than_rewrite_on_candidate_exprs() {
    let mut total = 0usize;
    let mut strictly_better = 0usize;
    for kind in workloads() {
        for (exprs, env) in candidate_exprs(kind) {
            let rw = Engine::with_env(env.clone());
            let sat = Engine::with_env(env).with_strategy(SimplifyStrategy::Saturate);
            for e in &exprs {
                let rc = rw.op_count(&rw.simplify(e));
                let sc = sat.op_count(&sat.simplify(e));
                assert!(
                    sc <= rc,
                    "{}: saturate extracted {sc} ops where rewrite reached {rc} for {e}",
                    kind.name()
                );
                total += 1;
                if sc < rc {
                    strictly_better += 1;
                }
            }
        }
    }
    assert!(total > 100, "only {total} candidate expressions exercised");
    // Informational: strict improvements on tuner-generated forms are
    // possible but not required (the targeted case below is).
    let _ = strictly_better;
}

/// The committed strictly-better case: two terms sharing a symbolic
/// stride. The fixpoint rewriter's collect rule only merges
/// syntactically identical cores, so `i*s + j*s` stays at 3 ops; the
/// e-graph's exploratory factor rule reaches `(i+j)*s` at 2.
#[test]
fn saturation_is_strictly_better_on_shared_stride_sum() {
    let env = RangeEnv::new();
    let e = Expr::sym("i") * Expr::sym("s") + Expr::sym("j") * Expr::sym("s");
    let rw = Engine::with_env(env.clone());
    let sat = Engine::with_env(env).with_strategy(SimplifyStrategy::Saturate);
    let r = rw.simplify(&e);
    let s = sat.simplify(&e);
    assert_eq!(rw.op_count(&r), 3, "rewriter unexpectedly factored {r}");
    assert_eq!(s, (Expr::sym("i") + Expr::sym("j")) * Expr::sym("s"));
    assert_eq!(sat.op_count(&s), 2);

    // And the value is preserved.
    let mut rng = Rng::new(0x5a7_0002);
    for _ in 0..16 {
        let mut bind = Bindings::new();
        for sym in ["i", "j", "s"] {
            bind.insert(sym.to_string(), rng.range_i64(-100, 100));
        }
        assert_eq!(eval(&e, &bind).unwrap(), eval(&s, &bind).unwrap());
    }
}

#[test]
fn saturation_is_deterministic_per_budget() {
    for kind in workloads() {
        for (exprs, env) in candidate_exprs(kind).into_iter().take(4) {
            for budget in [
                SaturationBudget::default(),
                SaturationBudget {
                    max_iters: 2,
                    max_nodes: 256,
                },
            ] {
                let eng = Engine::with_env(env.clone())
                    .with_strategy(SimplifyStrategy::Saturate)
                    .with_budget(budget);
                for e in &exprs {
                    // `simplify_with_stats` bypasses the session memo:
                    // both calls run the full saturation loop.
                    let (a, stats_a) = eng.simplify_with_stats(e);
                    let (b, stats_b) = eng.simplify_with_stats(e);
                    assert!(a.ptr_eq(&b), "{}: nondeterministic extraction", kind.name());
                    let a_counts: Vec<_> = stats_a.iter().collect();
                    let b_counts: Vec<_> = stats_b.iter().collect();
                    assert_eq!(
                        a_counts,
                        b_counts,
                        "{}: nondeterministic rule stats",
                        kind.name()
                    );
                }
            }
        }
    }
}

#[test]
fn growing_the_budget_never_extracts_a_costlier_form() {
    let ladder = [
        SaturationBudget {
            max_iters: 0,
            max_nodes: 0,
        },
        SaturationBudget {
            max_iters: 1,
            max_nodes: 64,
        },
        SaturationBudget {
            max_iters: 2,
            max_nodes: 256,
        },
        SaturationBudget {
            max_iters: 4,
            max_nodes: 1024,
        },
        SaturationBudget::default(),
    ];
    for kind in workloads() {
        for (exprs, env) in candidate_exprs(kind).into_iter().take(4) {
            for e in &exprs {
                let mut prev: Option<usize> = None;
                for budget in ladder {
                    let eng = Engine::with_env(env.clone())
                        .with_strategy(SimplifyStrategy::Saturate)
                        .with_budget(budget);
                    let cost = eng.op_count(&eng.simplify(e));
                    if let Some(p) = prev {
                        assert!(
                            cost <= p,
                            "{}: budget {budget:?} extracted {cost} ops after a \
                             smaller budget reached {p} for {e}",
                            kind.name()
                        );
                    }
                    prev = Some(cost);
                }
            }
        }
    }
}

/// Even a zero budget (no saturation iterations at all) is no worse
/// than the rewriter: the e-graph is seeded with the rewritten form.
#[test]
fn zero_budget_equals_rewrite_cost() {
    for kind in workloads() {
        for (exprs, env) in candidate_exprs(kind).into_iter().take(4) {
            let rw = Engine::with_env(env.clone());
            let sat = Engine::with_env(env)
                .with_strategy(SimplifyStrategy::Saturate)
                .with_budget(SaturationBudget {
                    max_iters: 0,
                    max_nodes: 0,
                });
            for e in &exprs {
                assert!(
                    sat.op_count(&sat.simplify(e)) <= rw.op_count(&rw.simplify(e)),
                    "{}: zero-budget saturation worse than rewrite for {e}",
                    kind.name()
                );
            }
        }
    }
}
