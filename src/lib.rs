//! Workspace facade re-exporting the LEGO crates for integration tests and examples.
#![forbid(unsafe_code)]
pub use gpu_sim;
pub use lego_bench;
pub use lego_codegen;
pub use lego_core;
pub use lego_expr;
pub use lego_served;
pub use lego_tune;
