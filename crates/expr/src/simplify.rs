//! The fixpoint rewrite engine implementing the paper's Table II integer
//! division/modulo rules, plus standard algebraic normalization
//! (like-term collection, nested-div fusion, min/max ordering).
//!
//! | # | Pattern | Result | Condition |
//! |---|---------|--------|-----------|
//! | 1 | `(d*q + r) % d` | `r % d` | `d != 0` |
//! | 2 | `(d*q + r) / d` | `q` | `d != 0`, `0 <= r < d` |
//! |   |                 | `q + r / d` | otherwise (kept only if cheaper) |
//! | 3 | `(x % d) / d` | `0` | `d > 0` |
//! | 4 | `x / a` | `0` | `a > 0`, `0 <= x < a` |
//! | 5 | `x % a` | `x` | `a > 0`, `0 <= x < a` |
//! | 6 | `(n + y) / 1` | `n + (y / 1)` | (division by one is erased) |
//! | 7 | `a*(x / a) + x % a` | `x` | `a != 0` |
//!
//! The rules themselves live in the shared table [`crate::rules`] (also
//! used by the e-graph saturation engine); this module owns the
//! *strategy*: a bottom-up pass iterated to fixpoint, applying rules
//! destructively in a fixed order. Side conditions are discharged by
//! [`crate::prove`] from the ranges in a [`RangeEnv`]. Statistics on
//! which rules fired are available through
//! [`crate::Engine::simplify_with_stats`], which the tests use to
//! assert which rules are exercised by each paper benchmark.

use std::collections::HashMap;

use crate::expr::{Expr, ExprKind};
use crate::intern;
use crate::prove::at_depth0;
use crate::range::RangeEnv;
use crate::rules::{self, RuleStats};

/// Core of [`crate::Engine::simplify`] under
/// [`crate::SimplifyStrategy::Rewrite`]: simplifies to fixpoint
/// (bounded at 12 passes).
///
/// Results are memoized for the session per `(environment, node)` —
/// both the full fixpoint result and every per-node single-pass result
/// — so shared subtrees across different call sites (e.g. the
/// tile-offset terms thousands of neighboring tuner candidates have in
/// common) are rewritten once.
pub(crate) fn fixpoint_simplify(e: &Expr, env: &RangeEnv) -> Expr {
    if !at_depth0() {
        // Inside a prover query the depth budget is partially spent and
        // pass results are not pure; stay off the session tables.
        return fixpoint_simplify_stats(e, env).0;
    }
    let env_id = env.id();
    if let Some(hit) = intern::simplify_get(env_id, e.id().get()) {
        return hit;
    }
    let mut stats = RuleStats::default();
    let result = fixpoint(e, env, &mut stats, &mut PassMemo::Session);
    intern::simplify_insert(env_id, e.id().get(), result.clone());
    result
}

/// Core of [`crate::Engine::simplify_with_stats`] under the rewrite
/// strategy: simplifies to fixpoint and reports which rules fired.
///
/// Uses a fresh per-call memo instead of the session tables, so the
/// reported [`RuleStats`] are a deterministic function of `(e, env)`
/// (counted once per unique node — see [`RuleStats`]) no matter what
/// was simplified earlier in the session.
pub(crate) fn fixpoint_simplify_stats(e: &Expr, env: &RangeEnv) -> (Expr, RuleStats) {
    let mut stats = RuleStats::default();
    let mut local = HashMap::new();
    let result = fixpoint(e, env, &mut stats, &mut PassMemo::Local(&mut local));
    (result, stats)
}

/// A single bottom-up simplification pass (no fixpoint iteration). Used
/// internally by the prover to normalize bound differences without
/// unbounded recursion.
pub(crate) fn single_pass(e: &Expr, env: &RangeEnv) -> Expr {
    let mut stats = RuleStats::default();
    let mut local = HashMap::new();
    pass(e, env, &mut stats, &mut PassMemo::Local(&mut local))
}

/// Simplifies to fixpoint (bounded at 12 passes).
#[deprecated(note = "construct a `lego_expr::Engine` and call `Engine::simplify`")]
pub fn simplify(e: &Expr, env: &RangeEnv) -> Expr {
    crate::engine::Engine::with_env(env.clone()).simplify(e)
}

/// Simplifies to fixpoint and reports which rules fired.
#[deprecated(note = "construct a `lego_expr::Engine` and call `Engine::simplify_with_stats`")]
pub fn simplify_with_stats(e: &Expr, env: &RangeEnv) -> (Expr, RuleStats) {
    crate::engine::Engine::with_env(env.clone()).simplify_with_stats(e)
}

/// A single bottom-up simplification pass (no fixpoint iteration).
#[deprecated(note = "internal prover normalization; use `lego_expr::Engine::simplify` instead")]
pub fn simplify_nofix(e: &Expr, env: &RangeEnv) -> Expr {
    single_pass(e, env)
}

/// Where a rewrite pass looks up (and records) per-node results.
enum PassMemo<'a> {
    /// The session-lifetime table in [`crate::intern`], keyed by
    /// `(environment, node)`. Only consulted at prover depth 0, where
    /// pass results are pure.
    Session,
    /// A per-call table keyed by node id (stats runs and prover-internal
    /// normalization, where session entries must not be touched).
    Local(&'a mut HashMap<u64, Expr>),
}

/// Iterates [`pass`] to fixpoint (bounded at 12 sweeps).
fn fixpoint(e: &Expr, env: &RangeEnv, stats: &mut RuleStats, memo: &mut PassMemo) -> Expr {
    let mut cur = e.clone();
    for _ in 0..12 {
        let next = pass(&cur, env, stats, memo);
        if next == cur {
            break;
        }
        cur = next;
    }
    cur
}

fn pass(e: &Expr, env: &RangeEnv, stats: &mut RuleStats, memo: &mut PassMemo) -> Expr {
    // Memoized? Reuse without re-counting any rule firings.
    match memo {
        PassMemo::Session => {
            if at_depth0() {
                if let Some(hit) = intern::pass_get(env.id(), e.id().get()) {
                    return hit;
                }
            }
        }
        PassMemo::Local(map) => {
            if let Some(hit) = map.get(&e.id().get()) {
                return hit.clone();
            }
        }
    }
    // Rebuild children first.
    let rebuilt = match e.kind() {
        ExprKind::Const(_) | ExprKind::Sym(_) => e.clone(),
        ExprKind::Add(ts) => {
            let ts: Vec<Expr> = ts.iter().map(|t| pass(t, env, stats, memo)).collect();
            Expr::add_all(ts)
        }
        ExprKind::Mul(ts) => {
            let ts: Vec<Expr> = ts.iter().map(|t| pass(t, env, stats, memo)).collect();
            Expr::mul_all(ts)
        }
        ExprKind::FloorDiv(a, b) => pass(a, env, stats, memo).floor_div(&pass(b, env, stats, memo)),
        ExprKind::Mod(a, b) => pass(a, env, stats, memo).rem(&pass(b, env, stats, memo)),
        ExprKind::Xor(a, b) => pass(a, env, stats, memo).xor(&pass(b, env, stats, memo)),
        ExprKind::Min(a, b) => pass(a, env, stats, memo).min(&pass(b, env, stats, memo)),
        ExprKind::Max(a, b) => pass(a, env, stats, memo).max(&pass(b, env, stats, memo)),
        ExprKind::Select(c, t, f) => Expr::select(
            c.clone(),
            pass(t, env, stats, memo),
            pass(f, env, stats, memo),
        ),
        ExprKind::ISqrt(a) => pass(a, env, stats, memo).isqrt(),
        ExprKind::Range {
            lo,
            len,
            axis,
            ndims,
        } => Expr::range(
            pass(lo, env, stats, memo),
            pass(len, env, stats, memo),
            *axis,
            *ndims,
        ),
    };
    // Then apply node-level rules until the node stops changing.
    let mut cur = rebuilt;
    for _ in 0..8 {
        let next = rules::apply_root(&cur, env, stats);
        if next == cur {
            break;
        }
        cur = next;
    }
    match memo {
        PassMemo::Session => {
            if at_depth0() {
                intern::pass_insert(env.id(), e.id().get(), cur.clone());
            }
        }
        PassMemo::Local(map) => {
            map.insert(e.id().get(), cur.clone());
        }
    }
    cur
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::RewriteRule;

    fn env_tile() -> RangeEnv {
        let mut env = RangeEnv::new();
        env.assume_pos("d");
        env.assume_pos("n");
        env.set_bounds("q", Expr::val(0), Expr::sym("n"));
        env.set_bounds("r", Expr::val(0), Expr::sym("d"));
        env.assume_nonneg("x");
        env
    }

    #[test]
    fn rule1_mod_split() {
        let env = env_tile();
        // (d*q + r) % d -> r   (r already < d so the inner mod erases too)
        let e = (Expr::sym("d") * Expr::sym("q") + Expr::sym("r")).rem(&Expr::sym("d"));
        let (s, st) = fixpoint_simplify_stats(&e, &env);
        assert_eq!(s, Expr::sym("r"));
        assert!(st.count(RewriteRule::ModSplit) >= 1);
    }

    #[test]
    fn rule2_div_split_exact() {
        let env = env_tile();
        let e = (Expr::sym("d") * Expr::sym("q") + Expr::sym("r")).floor_div(&Expr::sym("d"));
        let (s, st) = fixpoint_simplify_stats(&e, &env);
        assert_eq!(s, Expr::sym("q"));
        assert!(st.count(RewriteRule::DivSplit) >= 1);
    }

    #[test]
    fn rule3_mod_over_div() {
        let mut env = RangeEnv::new();
        env.assume_pos("d");
        let e = Expr::sym("x")
            .rem(&Expr::sym("d"))
            .floor_div(&Expr::sym("d"));
        let (s, st) = fixpoint_simplify_stats(&e, &env);
        assert_eq!(s, Expr::zero());
        assert!(st.count(RewriteRule::DivOfModZero) >= 1);
    }

    #[test]
    fn rule4_small_div() {
        let env = env_tile();
        let e = Expr::sym("r").floor_div(&Expr::sym("d"));
        let (s, st) = fixpoint_simplify_stats(&e, &env);
        assert_eq!(s, Expr::zero());
        assert!(st.count(RewriteRule::DivInRange) >= 1);
    }

    #[test]
    fn rule5_small_mod() {
        let env = env_tile();
        let e = Expr::sym("r").rem(&Expr::sym("d"));
        let (s, st) = fixpoint_simplify_stats(&e, &env);
        assert_eq!(s, Expr::sym("r"));
        assert!(st.count(RewriteRule::ModInRange) >= 1);
    }

    #[test]
    fn rule6_div_by_one() {
        let env = RangeEnv::new();
        let e = (Expr::sym("n") + Expr::sym("y")).floor_div(&Expr::one());
        assert_eq!(fixpoint_simplify(&e, &env), Expr::sym("n") + Expr::sym("y"));
    }

    #[test]
    fn rule7_recompose() {
        let mut env = RangeEnv::new();
        env.assume_pos("a");
        env.assume_nonneg("x");
        let x = Expr::sym("x");
        let a = Expr::sym("a");
        let e = &a * x.floor_div(&a) + x.rem(&a);
        let (s, st) = fixpoint_simplify_stats(&e, &env);
        assert_eq!(s, x);
        assert!(st.count(RewriteRule::Recompose) >= 1);
    }

    #[test]
    fn collect_cancels() {
        let env = RangeEnv::new();
        let a = Expr::sym("a");
        let e = &a + &a - &a - &a;
        assert_eq!(fixpoint_simplify(&e, &env), Expr::zero());
    }

    #[test]
    fn nested_div_fuses() {
        let mut env = RangeEnv::new();
        env.assume_pos("p");
        env.assume_pos("q");
        let e = Expr::sym("x")
            .floor_div(&Expr::sym("p"))
            .floor_div(&Expr::sym("q"));
        let s = fixpoint_simplify(&e, &env);
        assert_eq!(
            s,
            Expr::sym("x").floor_div(&(Expr::sym("p") * Expr::sym("q")))
        );
    }

    #[test]
    fn flatten_unflatten_roundtrip_simplifies_away() {
        // B^-1(B(i,j)) over (n, m): ((i*m + j) / m, (i*m + j) % m) -> (i, j)
        let mut env = RangeEnv::new();
        env.set_bounds("i", Expr::val(0), Expr::sym("n"));
        env.set_bounds("j", Expr::val(0), Expr::sym("m"));
        env.assume_pos("n");
        env.assume_pos("m");
        let flat = Expr::sym("i") * Expr::sym("m") + Expr::sym("j");
        let i2 = flat.floor_div(&Expr::sym("m"));
        let j2 = flat.rem(&Expr::sym("m"));
        assert_eq!(fixpoint_simplify(&i2, &env), Expr::sym("i"));
        assert_eq!(fixpoint_simplify(&j2, &env), Expr::sym("j"));
    }

    #[test]
    fn min_collapses_under_proof() {
        let mut env = RangeEnv::new();
        env.set_bounds("i", Expr::val(0), Expr::val(4));
        // min(i, 100) = i
        let e = Expr::sym("i").min(&Expr::val(100));
        assert_eq!(fixpoint_simplify(&e, &env), Expr::sym("i"));
    }

    #[test]
    fn stats_total_counts() {
        let env = env_tile();
        let e = (Expr::sym("d") * Expr::sym("q") + Expr::sym("r")).rem(&Expr::sym("d"));
        let (_, st) = fixpoint_simplify_stats(&e, &env);
        assert!(st.total() >= 1);
    }

    #[test]
    fn stats_count_once_per_unique_node() {
        // The same rewritable subtree twice over: with the per-node
        // memo, `ModSplit` fires once for the unique node, not once
        // per occurrence (hits don't double-count).
        let env = env_tile();
        let sub = (Expr::sym("d") * Expr::sym("q") + Expr::sym("r")).rem(&Expr::sym("d"));
        let e = Expr::min(sub.clone(), &Expr::val(1_000_000)) + sub.rem(&Expr::val(7));
        let (_, st) = fixpoint_simplify_stats(&e, &env);
        assert_eq!(st.count(RewriteRule::ModSplit), 1);
    }

    #[test]
    fn stats_are_deterministic_per_call() {
        // The stats entry point must report the same counts no matter
        // what the session memo tables already contain — including a
        // prior simplify of the very same expression.
        let env = env_tile();
        let e = (Expr::sym("d") * Expr::sym("q") + Expr::sym("r")).rem(&Expr::sym("d"));
        let first = fixpoint_simplify_stats(&e, &env);
        let _ = fixpoint_simplify(&e, &env); // populate session tables
        let second = fixpoint_simplify_stats(&e, &env);
        assert_eq!(first.0, second.0);
        assert_eq!(first.1, second.1);
        assert!(second.1.count(RewriteRule::ModSplit) >= 1);
    }
}
