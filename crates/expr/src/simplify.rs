//! The rewrite engine implementing the paper's Table II integer
//! division/modulo rules, plus standard algebraic normalization
//! (like-term collection, nested-div fusion, min/max ordering).
//!
//! | # | Pattern | Result | Condition |
//! |---|---------|--------|-----------|
//! | 1 | `(d*q + r) % d` | `r % d` | `d != 0` |
//! | 2 | `(d*q + r) / d` | `q` | `d != 0`, `0 <= r < d` |
//! |   |                 | `q + r / d` | otherwise (kept only if cheaper) |
//! | 3 | `(x % d) / d` | `0` | `d > 0` |
//! | 4 | `x / a` | `0` | `a > 0`, `0 <= x < a` |
//! | 5 | `x % a` | `x` | `a > 0`, `0 <= x < a` |
//! | 6 | `(n + y) / 1` | `n + (y / 1)` | (division by one is erased) |
//! | 7 | `a*(x / a) + x % a` | `x` | `a != 0` |
//!
//! Side conditions are discharged by [`crate::prove`] from the ranges in a
//! [`RangeEnv`]. Statistics on which rules fired are available through
//! [`simplify_with_stats`], which the tests use to assert which rules are
//! exercised by each paper benchmark.

use std::collections::HashMap;

use crate::cost::op_count;
use crate::expr::{Expr, ExprKind};
use crate::intern;
use crate::prove::{
    at_depth0, divide_exact, prove_in_half_open, prove_le, prove_nonzero, prove_pos,
};
use crate::range::RangeEnv;

/// Counts how many times each named rewrite rule fired.
///
/// Under the interned IR the rewrite passes are memoized per node, so a
/// rule firing is counted **once per unique `(environment, node)`
/// within a `simplify_with_stats` call**: when a shared subtree is
/// reached again (or the fixpoint loop revisits an already-rewritten
/// node), the memoized result is reused and nothing is re-counted. The
/// counts are therefore a property of the expression DAG, not of how
/// many tree paths happen to reach each node — and they stay
/// deterministic per call because `simplify_with_stats` uses a fresh
/// per-call memo rather than the session tables.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RuleStats {
    counts: HashMap<&'static str, usize>,
}

impl RuleStats {
    /// Number of firings of `rule` (see module docs for names).
    pub fn count(&self, rule: &str) -> usize {
        self.counts.get(rule).copied().unwrap_or(0)
    }

    /// Total number of rule firings.
    pub fn total(&self) -> usize {
        self.counts.values().sum()
    }

    /// Iterates over `(rule, firings)` pairs in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (&'static str, usize)> + '_ {
        self.counts.iter().map(|(k, v)| (*k, *v))
    }

    fn hit(&mut self, rule: &'static str) {
        *self.counts.entry(rule).or_insert(0) += 1;
    }
}

/// Simplifies to fixpoint (bounded at 12 passes).
///
/// Results are memoized for the session per `(environment, node)` —
/// both the full fixpoint result and every per-node single-pass result
/// — so shared subtrees across different call sites (e.g. the
/// tile-offset terms thousands of neighboring tuner candidates have in
/// common) are rewritten once.
pub fn simplify(e: &Expr, env: &RangeEnv) -> Expr {
    if !at_depth0() {
        // Inside a prover query the depth budget is partially spent and
        // pass results are not pure; stay off the session tables.
        return simplify_with_stats(e, env).0;
    }
    let env_id = env.id();
    if let Some(hit) = intern::simplify_get(env_id, e.id().get()) {
        return hit;
    }
    let mut stats = RuleStats::default();
    let result = fixpoint(e, env, &mut stats, &mut PassMemo::Session);
    intern::simplify_insert(env_id, e.id().get(), result.clone());
    result
}

/// Simplifies to fixpoint and reports which rules fired.
///
/// Uses a fresh per-call memo instead of the session tables, so the
/// reported [`RuleStats`] are a deterministic function of `(e, env)`
/// (counted once per unique node — see [`RuleStats`]) no matter what
/// was simplified earlier in the session.
pub fn simplify_with_stats(e: &Expr, env: &RangeEnv) -> (Expr, RuleStats) {
    let mut stats = RuleStats::default();
    let mut local = HashMap::new();
    let result = fixpoint(e, env, &mut stats, &mut PassMemo::Local(&mut local));
    (result, stats)
}

/// A single bottom-up simplification pass (no fixpoint iteration). Used
/// internally by the prover to normalize bound differences without
/// unbounded recursion.
pub fn simplify_nofix(e: &Expr, env: &RangeEnv) -> Expr {
    let mut stats = RuleStats::default();
    let mut local = HashMap::new();
    pass(e, env, &mut stats, &mut PassMemo::Local(&mut local))
}

/// Where a rewrite pass looks up (and records) per-node results.
enum PassMemo<'a> {
    /// The session-lifetime table in [`crate::intern`], keyed by
    /// `(environment, node)`. Only consulted at prover depth 0, where
    /// pass results are pure.
    Session,
    /// A per-call table keyed by node id (stats runs and prover-internal
    /// normalization, where session entries must not be touched).
    Local(&'a mut HashMap<u64, Expr>),
}

/// Iterates [`pass`] to fixpoint (bounded at 12 sweeps).
fn fixpoint(e: &Expr, env: &RangeEnv, stats: &mut RuleStats, memo: &mut PassMemo) -> Expr {
    let mut cur = e.clone();
    for _ in 0..12 {
        let next = pass(&cur, env, stats, memo);
        if next == cur {
            break;
        }
        cur = next;
    }
    cur
}

fn pass(e: &Expr, env: &RangeEnv, stats: &mut RuleStats, memo: &mut PassMemo) -> Expr {
    // Memoized? Reuse without re-counting any rule firings.
    match memo {
        PassMemo::Session => {
            if at_depth0() {
                if let Some(hit) = intern::pass_get(env.id(), e.id().get()) {
                    return hit;
                }
            }
        }
        PassMemo::Local(map) => {
            if let Some(hit) = map.get(&e.id().get()) {
                return hit.clone();
            }
        }
    }
    // Rebuild children first.
    let rebuilt = match e.kind() {
        ExprKind::Const(_) | ExprKind::Sym(_) => e.clone(),
        ExprKind::Add(ts) => {
            let ts: Vec<Expr> = ts.iter().map(|t| pass(t, env, stats, memo)).collect();
            Expr::add_all(ts)
        }
        ExprKind::Mul(ts) => {
            let ts: Vec<Expr> = ts.iter().map(|t| pass(t, env, stats, memo)).collect();
            Expr::mul_all(ts)
        }
        ExprKind::FloorDiv(a, b) => pass(a, env, stats, memo).floor_div(&pass(b, env, stats, memo)),
        ExprKind::Mod(a, b) => pass(a, env, stats, memo).rem(&pass(b, env, stats, memo)),
        ExprKind::Xor(a, b) => pass(a, env, stats, memo).xor(&pass(b, env, stats, memo)),
        ExprKind::Min(a, b) => pass(a, env, stats, memo).min(&pass(b, env, stats, memo)),
        ExprKind::Max(a, b) => pass(a, env, stats, memo).max(&pass(b, env, stats, memo)),
        ExprKind::Select(c, t, f) => Expr::select(
            c.clone(),
            pass(t, env, stats, memo),
            pass(f, env, stats, memo),
        ),
        ExprKind::ISqrt(a) => pass(a, env, stats, memo).isqrt(),
        ExprKind::Range {
            lo,
            len,
            axis,
            ndims,
        } => Expr::range(
            pass(lo, env, stats, memo),
            pass(len, env, stats, memo),
            *axis,
            *ndims,
        ),
    };
    // Then apply node-level rules until the node stops changing.
    let mut cur = rebuilt;
    for _ in 0..8 {
        let next = rules_at(&cur, env, stats);
        if next == cur {
            break;
        }
        cur = next;
    }
    match memo {
        PassMemo::Session => {
            if at_depth0() {
                intern::pass_insert(env.id(), e.id().get(), cur.clone());
            }
        }
        PassMemo::Local(map) => {
            map.insert(e.id().get(), cur.clone());
        }
    }
    cur
}

fn rules_at(e: &Expr, env: &RangeEnv, stats: &mut RuleStats) -> Expr {
    match e.kind() {
        ExprKind::Add(ts) => simplify_add(ts, env, stats),
        ExprKind::Mul(ts) => simplify_mul(ts, e, env, stats),
        ExprKind::Mod(a, d) => simplify_mod(a, d, e, env, stats),
        ExprKind::FloorDiv(a, d) => simplify_div(a, d, e, env, stats),
        ExprKind::Min(a, b) => {
            if prove_le(a, b, env) {
                stats.hit("min_order");
                a.clone()
            } else if prove_le(b, a, env) {
                stats.hit("min_order");
                b.clone()
            } else {
                e.clone()
            }
        }
        ExprKind::Max(a, b) => {
            if prove_le(a, b, env) {
                stats.hit("max_order");
                b.clone()
            } else if prove_le(b, a, env) {
                stats.hit("max_order");
                a.clone()
            } else {
                e.clone()
            }
        }
        _ => e.clone(),
    }
}

/// Splits a term into `(constant coefficient, core)` where `core` carries
/// no leading constant.
fn coeff_core(t: &Expr) -> (i64, Expr) {
    match t.kind() {
        ExprKind::Const(v) => (*v, Expr::one()),
        ExprKind::Mul(fs) => {
            if let Some(c) = fs[0].as_const() {
                (c, Expr::mul_all(fs[1..].iter().cloned()))
            } else {
                (1, t.clone())
            }
        }
        _ => (1, t.clone()),
    }
}

fn simplify_add(ts: &[Expr], env: &RangeEnv, stats: &mut RuleStats) -> Expr {
    // Collect like terms: map core -> coefficient.
    let mut order: Vec<Expr> = Vec::new();
    let mut coeffs: HashMap<Expr, i64> = HashMap::new();
    for t in ts {
        let (c, core) = coeff_core(t);
        let entry = coeffs.entry(core.clone()).or_insert_with(|| {
            order.push(core.clone());
            0
        });
        *entry += c;
    }
    let mut terms: Vec<(i64, Expr)> = order
        .into_iter()
        .filter_map(|core| {
            let c = coeffs[&core];
            (c != 0).then_some((c, core))
        })
        .collect();
    if terms.len() < ts.len() {
        stats.hit("collect");
    }

    // Rule 7: a*(x/a) + x%a -> x (matching coefficients).
    'outer: loop {
        for i in 0..terms.len() {
            let (ci, core_i) = &terms[i];
            // core_i must be a product containing FloorDiv(x, a) whose
            // remaining factors multiply to `a`, or be FloorDiv(x, a) with
            // a == 1 (already erased), so look for the Mul form.
            let found = match core_i.kind() {
                ExprKind::Mul(fs) => find_recompose_product(fs),
                _ => None,
            };
            let Some((x, a)) = found else { continue };
            if !prove_nonzero(&a, env) {
                continue;
            }
            for j in 0..terms.len() {
                if i == j {
                    continue;
                }
                let (cj, core_j) = &terms[j];
                if ci != cj {
                    continue;
                }
                if let ExprKind::Mod(xj, aj) = core_j.kind() {
                    if *xj == x && *aj == a {
                        let c = *ci;
                        let (lo, hi) = if i < j { (i, j) } else { (j, i) };
                        terms.remove(hi);
                        terms.remove(lo);
                        terms.push((c, x.clone()));
                        stats.hit("recompose");
                        continue 'outer;
                    }
                }
            }
        }
        break;
    }

    Expr::add_all(terms.into_iter().map(|(c, core)| {
        if c == 1 {
            core
        } else {
            Expr::mul_all([Expr::val(c), core])
        }
    }))
}

/// Inside a product, cancels `(x / d) * d -> x` when the environment
/// declares `d | x` (exact tiling). The matching `x % d -> 0` fold falls
/// out of `divide_exact` consulting the same declarations.
fn simplify_mul(ts: &[Expr], orig: &Expr, env: &RangeEnv, stats: &mut RuleStats) -> Expr {
    for (i, f) in ts.iter().enumerate() {
        let ExprKind::FloorDiv(x, d) = f.kind() else {
            continue;
        };
        if !env.divides(d, x) {
            continue;
        }
        // Find a matching factor `d` elsewhere in the product.
        if let Some(j) = ts.iter().enumerate().position(|(j, g)| j != i && g == d) {
            stats.hit("div_mul_exact");
            let rest = ts
                .iter()
                .enumerate()
                .filter(|(k, _)| *k != i && *k != j)
                .map(|(_, g)| g.clone());
            return Expr::mul_all(rest.chain([x.clone()]));
        }
    }
    orig.clone()
}

/// For factors `fs` of a product, finds `(x, a)` such that the product is
/// `a * (x / a)` (one `FloorDiv(x, a)` factor; the rest multiply to `a`).
fn find_recompose_product(fs: &[Expr]) -> Option<(Expr, Expr)> {
    for (pos, f) in fs.iter().enumerate() {
        if let ExprKind::FloorDiv(x, a) = f.kind() {
            let rest = Expr::mul_all(
                fs.iter()
                    .enumerate()
                    .filter(|(i, _)| *i != pos)
                    .map(|(_, f)| f.clone()),
            );
            if &rest == a {
                return Some((x.clone(), a.clone()));
            }
        }
    }
    None
}

fn simplify_mod(a: &Expr, d: &Expr, orig: &Expr, env: &RangeEnv, stats: &mut RuleStats) -> Expr {
    // Exact divisibility: (d*q) % d -> 0.
    if divide_exact(a, d, env).is_some() {
        stats.hit("mod_exact_zero");
        return Expr::zero();
    }
    // Rule 5: 0 <= a < d  =>  a % d = a.
    if prove_pos(d, env) && prove_in_half_open(a, d, env) {
        stats.hit("mod_in_range");
        return a.clone();
    }
    // (x % d) % d -> x % d, and more generally (x % m) % d -> x % d when
    // d | m (e.g. (pid % (g*nt_n)) % g -> pid % g in the grouped thread
    // layout of Fig. 10).
    if let ExprKind::Mod(x2, m2) = a.kind() {
        if m2 == d && prove_nonzero(d, env) {
            stats.hit("mod_of_mod");
            return a.clone();
        }
        if prove_pos(d, env) && prove_pos(m2, env) && divide_exact(m2, d, env).is_some() {
            stats.hit("mod_of_mod");
            let inner = x2.rem(d);
            return simplify_mod(x2, d, &inner, env, stats);
        }
    }
    // Rule 1: (d*q + r) % d -> r % d, splitting the sum by divisibility.
    if let ExprKind::Add(ts) = a.kind() {
        if prove_nonzero(d, env) {
            let (div_part, rest): (Vec<_>, Vec<_>) = ts
                .iter()
                .cloned()
                .partition(|t| divide_exact(t, d, env).is_some());
            if !div_part.is_empty() && !rest.is_empty() {
                stats.hit("mod_split");
                let r = Expr::add_all(rest);
                return simplify_mod(&r, d, &r.rem(d), env, stats);
            }
        }
    }
    orig.clone()
}

fn simplify_div(a: &Expr, d: &Expr, orig: &Expr, env: &RangeEnv, stats: &mut RuleStats) -> Expr {
    // Exact division: (d*q) / d -> q.
    if let Some(q) = divide_exact(a, d, env) {
        stats.hit("div_exact");
        return q;
    }
    // Rule 3: (x % d) / d -> 0.
    if let ExprKind::Mod(_, d2) = a.kind() {
        if d2 == d && prove_pos(d, env) {
            stats.hit("div_of_mod_zero");
            return Expr::zero();
        }
    }
    // Rule 4: 0 <= a < d  =>  a / d = 0.
    if prove_pos(d, env) && prove_in_half_open(a, d, env) {
        stats.hit("div_in_range");
        return Expr::zero();
    }
    // (x / a) / b -> x / (a*b) for positive divisors.
    if let ExprKind::FloorDiv(x, inner) = a.kind() {
        if prove_pos(inner, env) && prove_pos(d, env) {
            stats.hit("div_div");
            return x.floor_div(&(inner * d));
        }
    }
    // Rule 2: (d*q + r) / d -> q (+ r/d), splitting the sum.
    if let ExprKind::Add(ts) = a.kind() {
        if prove_nonzero(d, env) {
            let mut q_parts: Vec<Expr> = Vec::new();
            let mut rest: Vec<Expr> = Vec::new();
            for t in ts {
                match divide_exact(t, d, env) {
                    Some(q) => q_parts.push(q),
                    None => rest.push(t.clone()),
                }
            }
            if !q_parts.is_empty() && !rest.is_empty() {
                let q = Expr::add_all(q_parts);
                let r = Expr::add_all(rest);
                if prove_in_half_open(&r, d, env) {
                    stats.hit("div_split");
                    return q;
                }
                // General split is exact for floor division with d != 0;
                // keep it only when it does not grow the expression.
                let mut sub = RuleStats::default();
                let rd = simplify_div(&r, d, &r.floor_div(d), env, &mut sub);
                let candidate = q + &rd;
                if op_count(&candidate) <= op_count(orig) {
                    stats.hit("div_split");
                    for (rule, n) in sub.iter() {
                        for _ in 0..n {
                            stats.hit(rule);
                        }
                    }
                    return candidate;
                }
            }
        }
    }
    orig.clone()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn env_tile() -> RangeEnv {
        let mut env = RangeEnv::new();
        env.assume_pos("d");
        env.assume_pos("n");
        env.set_bounds("q", Expr::val(0), Expr::sym("n"));
        env.set_bounds("r", Expr::val(0), Expr::sym("d"));
        env.assume_nonneg("x");
        env
    }

    #[test]
    fn rule1_mod_split() {
        let env = env_tile();
        // (d*q + r) % d -> r   (r already < d so the inner mod erases too)
        let e = (Expr::sym("d") * Expr::sym("q") + Expr::sym("r")).rem(&Expr::sym("d"));
        let (s, st) = simplify_with_stats(&e, &env);
        assert_eq!(s, Expr::sym("r"));
        assert!(st.count("mod_split") >= 1);
    }

    #[test]
    fn rule2_div_split_exact() {
        let env = env_tile();
        let e = (Expr::sym("d") * Expr::sym("q") + Expr::sym("r")).floor_div(&Expr::sym("d"));
        let (s, st) = simplify_with_stats(&e, &env);
        assert_eq!(s, Expr::sym("q"));
        assert!(st.count("div_split") >= 1);
    }

    #[test]
    fn rule3_mod_over_div() {
        let mut env = RangeEnv::new();
        env.assume_pos("d");
        let e = Expr::sym("x")
            .rem(&Expr::sym("d"))
            .floor_div(&Expr::sym("d"));
        let (s, st) = simplify_with_stats(&e, &env);
        assert_eq!(s, Expr::zero());
        assert!(st.count("div_of_mod_zero") >= 1);
    }

    #[test]
    fn rule4_small_div() {
        let env = env_tile();
        let e = Expr::sym("r").floor_div(&Expr::sym("d"));
        let (s, st) = simplify_with_stats(&e, &env);
        assert_eq!(s, Expr::zero());
        assert!(st.count("div_in_range") >= 1);
    }

    #[test]
    fn rule5_small_mod() {
        let env = env_tile();
        let e = Expr::sym("r").rem(&Expr::sym("d"));
        let (s, st) = simplify_with_stats(&e, &env);
        assert_eq!(s, Expr::sym("r"));
        assert!(st.count("mod_in_range") >= 1);
    }

    #[test]
    fn rule6_div_by_one() {
        let env = RangeEnv::new();
        let e = (Expr::sym("n") + Expr::sym("y")).floor_div(&Expr::one());
        assert_eq!(simplify(&e, &env), Expr::sym("n") + Expr::sym("y"));
    }

    #[test]
    fn rule7_recompose() {
        let mut env = RangeEnv::new();
        env.assume_pos("a");
        env.assume_nonneg("x");
        let x = Expr::sym("x");
        let a = Expr::sym("a");
        let e = &a * x.floor_div(&a) + x.rem(&a);
        let (s, st) = simplify_with_stats(&e, &env);
        assert_eq!(s, x);
        assert!(st.count("recompose") >= 1);
    }

    #[test]
    fn collect_cancels() {
        let env = RangeEnv::new();
        let a = Expr::sym("a");
        let e = &a + &a - &a - &a;
        assert_eq!(simplify(&e, &env), Expr::zero());
    }

    #[test]
    fn nested_div_fuses() {
        let mut env = RangeEnv::new();
        env.assume_pos("p");
        env.assume_pos("q");
        let e = Expr::sym("x")
            .floor_div(&Expr::sym("p"))
            .floor_div(&Expr::sym("q"));
        let s = simplify(&e, &env);
        assert_eq!(
            s,
            Expr::sym("x").floor_div(&(Expr::sym("p") * Expr::sym("q")))
        );
    }

    #[test]
    fn flatten_unflatten_roundtrip_simplifies_away() {
        // B^-1(B(i,j)) over (n, m): ((i*m + j) / m, (i*m + j) % m) -> (i, j)
        let mut env = RangeEnv::new();
        env.set_bounds("i", Expr::val(0), Expr::sym("n"));
        env.set_bounds("j", Expr::val(0), Expr::sym("m"));
        env.assume_pos("n");
        env.assume_pos("m");
        let flat = Expr::sym("i") * Expr::sym("m") + Expr::sym("j");
        let i2 = flat.floor_div(&Expr::sym("m"));
        let j2 = flat.rem(&Expr::sym("m"));
        assert_eq!(simplify(&i2, &env), Expr::sym("i"));
        assert_eq!(simplify(&j2, &env), Expr::sym("j"));
    }

    #[test]
    fn min_collapses_under_proof() {
        let mut env = RangeEnv::new();
        env.set_bounds("i", Expr::val(0), Expr::val(4));
        // min(i, 100) = i
        let e = Expr::sym("i").min(&Expr::val(100));
        assert_eq!(simplify(&e, &env), Expr::sym("i"));
    }

    #[test]
    fn stats_total_counts() {
        let env = env_tile();
        let e = (Expr::sym("d") * Expr::sym("q") + Expr::sym("r")).rem(&Expr::sym("d"));
        let (_, st) = simplify_with_stats(&e, &env);
        assert!(st.total() >= 1);
    }

    #[test]
    fn stats_count_once_per_unique_node() {
        // The same rewritable subtree twice over: with the per-node
        // memo, `mod_split` fires once for the unique node, not once
        // per occurrence (hits don't double-count).
        let env = env_tile();
        let sub = (Expr::sym("d") * Expr::sym("q") + Expr::sym("r")).rem(&Expr::sym("d"));
        let e = Expr::min(sub.clone(), &Expr::val(1_000_000)) + sub.rem(&Expr::val(7));
        let (_, st) = simplify_with_stats(&e, &env);
        assert_eq!(st.count("mod_split"), 1);
    }

    #[test]
    fn stats_are_deterministic_per_call() {
        // `simplify_with_stats` must report the same counts no matter
        // what the session memo tables already contain — including a
        // prior simplify of the very same expression.
        let env = env_tile();
        let e = (Expr::sym("d") * Expr::sym("q") + Expr::sym("r")).rem(&Expr::sym("d"));
        let first = simplify_with_stats(&e, &env);
        let _ = simplify(&e, &env); // populate session tables
        let second = simplify_with_stats(&e, &env);
        assert_eq!(first.0, second.0);
        assert_eq!(first.1, second.1);
        assert!(second.1.count("mod_split") >= 1);
    }
}
