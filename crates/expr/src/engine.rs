//! The unified pass API: one struct owning the environment, strategy,
//! and budget, fronting every expression pass.
//!
//! [`Engine`] replaces the historical free-function API (`simplify`,
//! `prove_*`, `op_count`, `expand`, `pick_cheaper` — all now
//! `#[deprecated]` shims over this type): downstream code constructs
//! one engine per environment and calls its methods, and switching the
//! simplification machinery is a [`SimplifyStrategy`] knob instead of a
//! call-site rewrite.
//!
//! ```
//! use lego_expr::{Engine, Expr, RangeEnv, SimplifyStrategy};
//!
//! let mut env = RangeEnv::new();
//! env.set_bounds("i", Expr::val(0), Expr::sym("n"));
//! env.set_bounds("j", Expr::val(0), Expr::sym("m"));
//! env.assume_pos("n");
//! env.assume_pos("m");
//!
//! let flat = Expr::sym("i") * Expr::sym("m") + Expr::sym("j");
//! let back = flat.floor_div(&Expr::sym("m"));
//!
//! let eng = Engine::with_env(env);
//! assert_eq!(eng.simplify(&back), Expr::sym("i"));
//!
//! // Equality saturation explores rule orderings the fixpoint rewriter
//! // cannot, and never extracts a costlier form than it:
//! let sat = eng.with_strategy(SimplifyStrategy::Saturate);
//! assert_eq!(sat.simplify(&back), Expr::sym("i"));
//! ```

use crate::cost::{self, CostChoice};
use crate::egraph::{self, SaturationBudget};
use crate::expand::distribute;
use crate::expr::Expr;
use crate::prove;
use crate::range::{NumRange, RangeEnv};
use crate::rules::RuleStats;
use crate::simplify::{fixpoint_simplify, fixpoint_simplify_stats};

/// Which simplification machinery [`Engine::simplify`] runs.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum SimplifyStrategy {
    /// The fixpoint rewriter: Table II rules applied destructively,
    /// bottom-up, in a fixed order until nothing changes. Fast and
    /// deterministic, but the landing form can depend on rule order.
    #[default]
    Rewrite,
    /// Equality saturation: grow an e-graph with the same rule table
    /// (plus the exploratory distribution/factoring identities) under a
    /// [`SaturationBudget`], then extract the globally cheapest form by
    /// op count. Never returns a form costlier than [`Rewrite`]'s
    /// (the graph is seeded with the rewriter's result).
    ///
    /// [`Rewrite`]: SimplifyStrategy::Rewrite
    Saturate,
}

/// The single entry point for expression passes: simplification (by
/// either strategy), proving, range analysis, op counting, expansion,
/// and variant selection — owning the [`RangeEnv`] they are conditioned
/// on.
///
/// Engines are cheap to construct and clone (the environment is the
/// only owned state; all memoization lives in the session-wide arena
/// tables of [`crate::intern`], keyed by environment id, so two engines
/// over equal environments share their memo entries).
#[derive(Clone, Debug, Default)]
pub struct Engine {
    env: RangeEnv,
    strategy: SimplifyStrategy,
    budget: SaturationBudget,
}

impl Engine {
    /// An engine over an empty environment, rewrite strategy, default
    /// budget.
    pub fn new() -> Engine {
        Engine::default()
    }

    /// An engine owning `env`, rewrite strategy, default budget.
    pub fn with_env(env: RangeEnv) -> Engine {
        Engine {
            env,
            ..Engine::default()
        }
    }

    /// This engine with the given simplification strategy.
    #[must_use]
    pub fn with_strategy(mut self, strategy: SimplifyStrategy) -> Engine {
        self.strategy = strategy;
        self
    }

    /// This engine with the given saturation budget (only meaningful
    /// under [`SimplifyStrategy::Saturate`]).
    #[must_use]
    pub fn with_budget(mut self, budget: SaturationBudget) -> Engine {
        self.budget = budget;
        self
    }

    /// Loads the persistent memo sidecar at `path` and installs its
    /// entries into *this thread's* memo tables, so subsequent
    /// [`Engine::simplify`] / [`Engine::op_count`] calls (from any engine —
    /// the tables are shared) hit warm. A missing, stale, or corrupt
    /// sidecar installs nothing; see [`crate::sidecar`] for the
    /// invalidation contract.
    pub fn load_sidecar(path: &std::path::Path) -> crate::sidecar::InstallReport {
        crate::sidecar::Sidecar::load(path).install()
    }

    /// Snapshots this thread's derived results and merges them into the
    /// sidecar at `path` atomically (concurrent savers cannot lose each
    /// other's entries).
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn save_sidecar(path: &std::path::Path) -> std::io::Result<()> {
        crate::sidecar::Sidecar::collect().save(path)
    }

    /// The environment the passes are conditioned on.
    pub fn env(&self) -> &RangeEnv {
        &self.env
    }

    /// Mutable access to the environment (bounds/divisibility updates).
    pub fn env_mut(&mut self) -> &mut RangeEnv {
        &mut self.env
    }

    /// The active simplification strategy.
    pub fn strategy(&self) -> SimplifyStrategy {
        self.strategy
    }

    /// The active saturation budget.
    pub fn budget(&self) -> SaturationBudget {
        self.budget
    }

    /// Simplifies `e` under the active strategy. Results are memoized
    /// per `(environment, node)` for the session — plus the budget for
    /// the saturating strategy.
    pub fn simplify(&self, e: &Expr) -> Expr {
        match self.strategy {
            SimplifyStrategy::Rewrite => fixpoint_simplify(e, &self.env),
            SimplifyStrategy::Saturate => egraph::saturate(e, &self.env, self.budget),
        }
    }

    /// Simplifies `e` and reports which rules fired. Bypasses the
    /// session memo so the stats are a deterministic function of
    /// `(e, env, strategy, budget)`.
    pub fn simplify_with_stats(&self, e: &Expr) -> (Expr, RuleStats) {
        match self.strategy {
            SimplifyStrategy::Rewrite => fixpoint_simplify_stats(e, &self.env),
            SimplifyStrategy::Saturate => egraph::saturate_with_stats(e, &self.env, self.budget),
        }
    }

    /// Proves `e >= 0` (sound, incomplete).
    pub fn prove_nonneg(&self, e: &Expr) -> bool {
        prove::nonneg(e, &self.env)
    }

    /// Proves `e > 0`.
    pub fn prove_pos(&self, e: &Expr) -> bool {
        prove::pos(e, &self.env)
    }

    /// Proves `e != 0`.
    pub fn prove_nonzero(&self, e: &Expr) -> bool {
        prove::nonzero(e, &self.env)
    }

    /// Proves `a < b` (strict).
    pub fn prove_lt(&self, a: &Expr, b: &Expr) -> bool {
        prove::lt(a, b, &self.env)
    }

    /// Proves `a <= b`.
    pub fn prove_le(&self, a: &Expr, b: &Expr) -> bool {
        prove::le(a, b, &self.env)
    }

    /// Proves `0 <= x < d` — the guard of Table II rules 2, 4, and 5.
    pub fn prove_in_half_open(&self, x: &Expr, d: &Expr) -> bool {
        prove::in_half_open(x, d, &self.env)
    }

    /// Proves the divisibility `d | e`, returning the quotient.
    pub fn divide_exact(&self, e: &Expr, d: &Expr) -> Option<Expr> {
        prove::div_exact(e, d, &self.env)
    }

    /// The numeric interval of `e` under the environment's bounds.
    pub fn num_range(&self, e: &Expr) -> NumRange {
        self.env.num_range(e)
    }

    /// Counts arithmetic operations in `e` (environment-free; memoized
    /// per node for the session).
    pub fn op_count(&self, e: &Expr) -> usize {
        cost::ops(e)
    }

    /// Recursively distributes products over sums (environment-free;
    /// memoized per node for the session).
    pub fn expand(&self, e: &Expr) -> Expr {
        distribute(e)
    }

    /// Simplifies `e` both ways — directly, and after full expansion —
    /// under the active strategy, and returns the variant with the
    /// lower operation count (ties prefer the unexpanded form).
    pub fn pick_cheaper(&self, e: &Expr) -> CostChoice {
        let plain = self.simplify(e);
        let expanded = self.simplify(&distribute(e));
        cost::choose(plain, expanded)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::RewriteRule;

    fn env_tile() -> RangeEnv {
        let mut env = RangeEnv::new();
        env.assume_pos("d");
        env.assume_pos("n");
        env.set_bounds("q", Expr::val(0), Expr::sym("n"));
        env.set_bounds("r", Expr::val(0), Expr::sym("d"));
        env
    }

    #[test]
    fn strategies_agree_on_table2_forms() {
        let env = env_tile();
        let e = (Expr::sym("d") * Expr::sym("q") + Expr::sym("r")).rem(&Expr::sym("d"));
        let rewrite = Engine::with_env(env.clone());
        let saturate = Engine::with_env(env).with_strategy(SimplifyStrategy::Saturate);
        assert_eq!(rewrite.simplify(&e), Expr::sym("r"));
        assert_eq!(saturate.simplify(&e), Expr::sym("r"));
    }

    #[test]
    fn saturate_never_costlier_than_rewrite() {
        let env = env_tile();
        let exprs = [
            (Expr::sym("d") * Expr::sym("q") + Expr::sym("r")).floor_div(&Expr::sym("d")),
            Expr::sym("q") * Expr::sym("d") + Expr::sym("r") * Expr::sym("d"),
            Expr::sym("r").rem(&Expr::sym("d")) + Expr::sym("q"),
        ];
        let rw = Engine::with_env(env.clone());
        let sat = Engine::with_env(env).with_strategy(SimplifyStrategy::Saturate);
        for e in &exprs {
            assert!(sat.op_count(&sat.simplify(e)) <= rw.op_count(&rw.simplify(e)));
        }
    }

    #[test]
    fn rewrite_stats_only_fire_destructive_rules() {
        let env = env_tile();
        let e = (Expr::sym("d") * Expr::sym("q") + Expr::sym("r")).rem(&Expr::sym("d"));
        let (_, st) = Engine::with_env(env).simplify_with_stats(&e);
        for (rule, n) in st.iter() {
            assert!(n > 0);
            assert!(
                !rule.is_exploratory(),
                "fixpoint rewriter fired exploratory rule {rule:?}"
            );
        }
    }

    #[test]
    fn saturate_stats_stay_within_the_shared_table() {
        let env = RangeEnv::new();
        let e = Expr::sym("a") * Expr::sym("s") + Expr::sym("b") * Expr::sym("s");
        let eng = Engine::with_env(env).with_strategy(SimplifyStrategy::Saturate);
        let (s, st) = eng.simplify_with_stats(&e);
        assert_eq!(s, (Expr::sym("a") + Expr::sym("b")) * Expr::sym("s"));
        assert!(st.count(RewriteRule::Factor) >= 1);
        for (rule, _) in st.iter() {
            assert!(RewriteRule::ALL.contains(&rule));
        }
    }

    #[test]
    fn saturate_results_are_memoized_per_budget() {
        use crate::intern;
        let mut env = RangeEnv::new();
        env.assume_pos("zq_sat_memo_d");
        let e = Expr::sym("zq_sat_memo_x")
            .rem(&Expr::sym("zq_sat_memo_d"))
            .floor_div(&Expr::sym("zq_sat_memo_d"));
        let eng = Engine::with_env(env).with_strategy(SimplifyStrategy::Saturate);
        let first = eng.simplify(&e);
        let before = intern::stats();
        let second = eng.simplify(&e);
        let after = intern::stats();
        assert_eq!(first, second);
        assert!(
            after.saturate_hits > before.saturate_hits,
            "second saturation of the same (env, expr, budget) must hit the memo"
        );
    }
}
