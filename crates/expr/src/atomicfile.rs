//! Concurrent-writer-safe file replacement.
//!
//! Both persistent stores in the workspace — the tuning cache
//! (`lego-tune`) and the expression memo sidecar ([`crate::sidecar`]) —
//! follow the same read-modify-write discipline: serialize same-file
//! writers within the process behind a per-canonical-path mutex
//! ([`path_lock`]), then replace the document via a unique tempfile and
//! an atomic rename ([`write_atomic`]) so a concurrent reader can never
//! observe a torn file. This module is that shared discipline, extracted
//! so neither store duplicates it.

use std::collections::HashMap;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// The process-wide lock guarding one file's read-modify-write cycle,
/// keyed by the file's stable identity (the canonicalized path when the
/// file exists, else the canonicalized parent + file name). Concurrent
/// writers of the same file — the tuning-service daemon's workers, a
/// parallel fleet driver — are serialized here, so no writer can clobber
/// another's entries between its load and its rename.
pub fn path_lock(path: &Path) -> Arc<Mutex<()>> {
    static LOCKS: OnceLock<Mutex<HashMap<PathBuf, Arc<Mutex<()>>>>> = OnceLock::new();
    let mut locks = LOCKS
        .get_or_init(|| Mutex::new(HashMap::new()))
        .lock()
        .expect("file lock registry poisoned");
    locks.entry(lock_key(path)).or_default().clone()
}

/// A stable identity for a file: the canonical path when the file (or
/// at least its directory) exists, otherwise the path absolutized
/// against the current directory — so `TUNE_CACHE.json` and
/// `./TUNE_CACHE.json` share one lock.
fn lock_key(path: &Path) -> PathBuf {
    if let Ok(canon) = path.canonicalize() {
        return canon;
    }
    let file = path.file_name().map(PathBuf::from).unwrap_or_default();
    let parent = match path.parent() {
        Some(dir) if !dir.as_os_str().is_empty() => dir.canonicalize().ok(),
        _ => std::env::current_dir().ok(),
    };
    match parent {
        Some(dir) => dir.join(file),
        None => path.to_path_buf(),
    }
}

/// Replaces `path` with `contents` atomically: the parent directory is
/// created if missing, the contents land in a unique tempfile next to
/// the target, and the tempfile is renamed into place (removing it if
/// the rename fails). Readers therefore see either the old document or
/// the new one, never a prefix.
///
/// This is the write half only — callers that merge with the existing
/// document must hold the [`path_lock`] across their whole
/// load → merge → `write_atomic` cycle.
///
/// # Errors
///
/// Propagates filesystem errors.
pub fn write_atomic(path: &Path, contents: &str) -> io::Result<()> {
    if let Some(dir) = path.parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir)?;
        }
    }
    // Unique tempfile per write (the per-file mutex already serializes
    // same-file writers in this process; the counter keeps names
    // distinct across files sharing a directory and across processes).
    static TMP_SEQ: AtomicU64 = AtomicU64::new(0);
    let tmp = path.with_file_name(format!(
        "{}.tmp.{}.{}",
        path.file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_else(|| "store".to_string()),
        std::process::id(),
        TMP_SEQ.fetch_add(1, Ordering::Relaxed),
    ));
    std::fs::write(&tmp, contents)?;
    match std::fs::rename(&tmp, path) {
        Ok(()) => Ok(()),
        Err(e) => {
            let _ = std::fs::remove_file(&tmp);
            Err(e)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_file_shares_one_lock() {
        let dir = std::env::temp_dir();
        let a = path_lock(&dir.join("zq-lock-probe.txt"));
        let b = path_lock(&dir.join("zq-lock-probe.txt"));
        assert!(Arc::ptr_eq(&a, &b));
        let c = path_lock(&dir.join("zq-lock-other.txt"));
        assert!(!Arc::ptr_eq(&a, &c));
    }

    #[test]
    fn write_atomic_creates_missing_parents() {
        let dir = std::env::temp_dir().join(format!(
            "lego-atomic-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let path = dir.join("deep/nested/doc.txt");
        write_atomic(&path, "payload").unwrap();
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "payload");
        write_atomic(&path, "replaced").unwrap();
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "replaced");
        // No tempfiles left behind.
        let leftovers: Vec<_> = std::fs::read_dir(path.parent().unwrap())
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name().to_string_lossy().contains(".tmp."))
            .collect();
        assert!(leftovers.is_empty(), "stale tempfiles: {leftovers:?}");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
