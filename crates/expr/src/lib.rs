//! # lego-expr — symbolic integer expressions for the LEGO layout algebra
//!
//! This crate is the from-scratch substitute for the SymPy + Z3 stack the
//! LEGO paper builds on (§IV-A): a small symbolic engine for the integer
//! index expressions produced by hierarchical layouts, with
//!
//! * an immutable, *hash-consed* expression IR ([`Expr`]) covering
//!   `+ - * // % min max select isqrt` and Triton-style lane ranges —
//!   every construction interns its node in a per-thread arena
//!   ([`intern`]), so structurally identical subtrees share one
//!   allocation ([`ExprId`]), equality is (usually) an integer compare,
//!   and commutative chains take one canonical sorted n-ary form;
//! * range analysis ([`RangeEnv`]) seeded from layout-derived index bounds;
//! * the seven division/modulo rewrite rules of the paper's Table II
//!   ([`simplify()`]), with side conditions discharged by a structural
//!   prover ([`prove`]) instead of an SMT solver — simplification,
//!   interval analysis, op counting, expansion and depth-0 proof facts
//!   are all memoized per `(environment, node)` for the session, so
//!   shared subtrees are processed once across an entire tuner
//!   enumeration ([`intern::stats`] reports the hit rates);
//! * expression expansion ([`expand()`]) and the op-count cost model
//!   ([`cost`]) that picks expanded vs. unexpanded variants (NW vs. LUD);
//! * printers for Python/Triton, C/CUDA, and MLIR (`printer`).
//!
//! # Quickstart
//!
//! ```
//! use lego_expr::{Expr, RangeEnv, simplify};
//!
//! // A flatten-unflatten round trip like the ones GroupBy generates:
//! let mut env = RangeEnv::new();
//! env.set_bounds("i", Expr::val(0), Expr::sym("n"));
//! env.set_bounds("j", Expr::val(0), Expr::sym("m"));
//! env.assume_pos("n");
//! env.assume_pos("m");
//!
//! let flat = Expr::sym("i") * Expr::sym("m") + Expr::sym("j");
//! let back = flat.floor_div(&Expr::sym("m"));
//! assert_eq!(simplify(&back, &env), Expr::sym("i"));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cost;
pub mod expand;
mod expr;
pub mod intern;
pub mod printer;
pub mod prove;
pub mod range;
pub mod simplify;
pub mod subst;

pub use cost::{op_count, pick_cheaper, CostChoice, Variant};
pub use expand::expand;
pub use expr::{isqrt64, CmpOp, Cond, Expr, ExprKind};
pub use intern::{ArenaStats, ExprId};
pub use range::{NumRange, RangeEnv, SymBounds};
pub use simplify::{simplify, simplify_with_stats, RuleStats};
pub use subst::{eval, eval_cond, eval_lane, map_ranges, subst, transform, Bindings, EvalError};
