//! # lego-expr — symbolic integer expressions for the LEGO layout algebra
//!
//! This crate is the from-scratch substitute for the SymPy + Z3 stack the
//! LEGO paper builds on (§IV-A): a small symbolic engine for the integer
//! index expressions produced by hierarchical layouts, with
//!
//! * an immutable, *hash-consed* expression IR ([`Expr`]) covering
//!   `+ - * // % min max select isqrt` and Triton-style lane ranges —
//!   every construction interns its node in a per-thread arena
//!   ([`intern`]), so structurally identical subtrees share one
//!   allocation ([`ExprId`]), equality is (usually) an integer compare,
//!   and commutative chains take one canonical sorted n-ary form;
//! * range analysis ([`RangeEnv`]) seeded from layout-derived index bounds;
//! * a unified pass facade ([`Engine`]) fronting simplification, proving,
//!   range analysis, op counting, expansion, and variant selection —
//!   with a [`SimplifyStrategy`] knob selecting between the fixpoint
//!   rewriter over the paper's Table II rules (the [`simplify`][mod@simplify]
//!   module) and
//!   budget-bounded *equality saturation* over the interned IR
//!   ([`egraph`]), which explores rule orderings the destructive
//!   rewriter cannot and extracts the cheapest form by op count;
//! * the shared declarative rule table ([`rules::RewriteRule`]) driving
//!   both strategies, with side conditions discharged by a structural
//!   prover ([`prove`]) instead of an SMT solver — simplification,
//!   interval analysis, op counting, expansion, saturation and depth-0
//!   proof facts are all memoized per `(environment, node)` for the
//!   session, so shared subtrees are processed once across an entire
//!   tuner enumeration ([`intern::stats`] reports the hit rates);
//! * a persistent memo **sidecar** ([`sidecar`]) that carries those
//!   derived results across processes: structural-keyed on-disk storage
//!   for simplified/saturated forms and op counts, re-interned on load
//!   ([`Engine::load_sidecar`] / [`Engine::save_sidecar`]) and
//!   invalidated wholesale when the schema or the rewrite-rule table
//!   fingerprint changes;
//! * expression expansion and the op-count cost model ([`cost`]) that
//!   picks expanded vs. unexpanded variants (NW vs. LUD);
//! * printers for Python/Triton, C/CUDA, and MLIR (`printer`).
//!
//! # Quickstart
//!
//! ```
//! use lego_expr::{Engine, Expr, RangeEnv};
//!
//! // A flatten-unflatten round trip like the ones GroupBy generates:
//! let mut env = RangeEnv::new();
//! env.set_bounds("i", Expr::val(0), Expr::sym("n"));
//! env.set_bounds("j", Expr::val(0), Expr::sym("m"));
//! env.assume_pos("n");
//! env.assume_pos("m");
//!
//! let flat = Expr::sym("i") * Expr::sym("m") + Expr::sym("j");
//! let back = flat.floor_div(&Expr::sym("m"));
//! let eng = Engine::with_env(env);
//! assert_eq!(eng.simplify(&back), Expr::sym("i"));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod atomicfile;
pub mod cost;
pub mod egraph;
pub mod engine;
pub mod expand;
mod expr;
pub mod intern;
pub mod printer;
pub mod prove;
pub mod range;
pub mod rules;
pub mod sidecar;
pub mod simplify;
pub mod subst;

pub use cost::{CostChoice, Variant};
pub use egraph::SaturationBudget;
pub use engine::{Engine, SimplifyStrategy};
pub use expr::{isqrt64, CmpOp, Cond, Expr, ExprKind};
pub use intern::{ArenaStats, ExprId};
pub use range::{NumRange, RangeEnv, SymBounds};
pub use rules::{RewriteRule, RuleStats};
pub use sidecar::{InstallReport, Sidecar};
pub use subst::{eval, eval_cond, eval_lane, map_ranges, subst, transform, Bindings, EvalError};

// Deprecated free-function pass API, kept for source compatibility; all
// of these are thin shims over `Engine`.
#[allow(deprecated)]
pub use cost::{op_count, pick_cheaper};
#[allow(deprecated)]
pub use expand::expand;
#[allow(deprecated)]
pub use simplify::{simplify, simplify_with_stats};
