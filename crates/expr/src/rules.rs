//! The declarative rewrite-rule table shared by both simplification
//! engines.
//!
//! Every rule the fixpoint rewriter ([`crate::simplify`][mod@crate::simplify]) can fire
//! is a variant of [`RewriteRule`]; the single root-level applier
//! (`apply_root`) is the *same function* the e-graph saturation engine
//! ([`crate::egraph`]) uses to grow equivalence classes, so the two
//! engines provably apply the same rule set. The e-graph additionally
//! applies the rules marked [`RewriteRule::is_exploratory`] — identities
//! like distribution and factoring that are not size-reducing in one
//! step and therefore unsafe to apply destructively in a fixpoint loop,
//! but free to explore non-destructively in an e-graph.
//!
//! [`RuleStats`] counts firings per typed rule.

use std::collections::HashMap;

use crate::cost::ops;
use crate::expr::{Expr, ExprKind};
use crate::prove::{div_exact, divide_term, in_half_open, le, nonzero, pos};
use crate::range::RangeEnv;

/// One rewrite rule of the simplification engines, named.
///
/// The first fourteen variants are the destructive (size-reducing or
/// size-preserving) rules the fixpoint rewriter applies; see the table
/// in the [`crate::simplify`][mod@crate::simplify] module for the paper's Table II
/// numbering. The last
/// two are exploratory identities only the e-graph applies.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum RewriteRule {
    /// Like-term collection in a sum: `2*x + 3*x -> 5*x`.
    Collect,
    /// Rule 7: `a*(x/a) + x%a -> x`.
    Recompose,
    /// `(x/d) * d -> x` when the environment declares `d | x`.
    DivMulExact,
    /// `(d*q) % d -> 0` (exact divisibility).
    ModExactZero,
    /// Rule 5: `x % d -> x` when `0 <= x < d`.
    ModInRange,
    /// `(x % m) % d -> x % d` when `d | m` (and `(x%d)%d -> x%d`).
    ModOfMod,
    /// Rule 1: `(d*q + r) % d -> r % d`.
    ModSplit,
    /// `(d*q) / d -> q` (exact division).
    DivExact,
    /// Rule 3: `(x % d) / d -> 0`.
    DivOfModZero,
    /// Rule 4: `x / d -> 0` when `0 <= x < d`.
    DivInRange,
    /// `(x / a) / b -> x / (a*b)` for positive divisors.
    DivDiv,
    /// Rule 2: `(d*q + r) / d -> q (+ r/d)`.
    DivSplit,
    /// `min(a, b) -> a` when `a <= b` is provable (either order).
    MinOrder,
    /// `max(a, b) -> b` when `a <= b` is provable (either order).
    MaxOrder,
    /// Exploratory: distribute a product over one sum factor,
    /// `a*(b + c) -> a*b + a*c`.
    Distribute,
    /// Exploratory: factor a common term out of a sum,
    /// `a*b + a*c -> a*(b + c)`.
    Factor,
}

impl RewriteRule {
    /// Every rule, in declaration order.
    pub const ALL: [RewriteRule; 16] = [
        RewriteRule::Collect,
        RewriteRule::Recompose,
        RewriteRule::DivMulExact,
        RewriteRule::ModExactZero,
        RewriteRule::ModInRange,
        RewriteRule::ModOfMod,
        RewriteRule::ModSplit,
        RewriteRule::DivExact,
        RewriteRule::DivOfModZero,
        RewriteRule::DivInRange,
        RewriteRule::DivDiv,
        RewriteRule::DivSplit,
        RewriteRule::MinOrder,
        RewriteRule::MaxOrder,
        RewriteRule::Distribute,
        RewriteRule::Factor,
    ];

    /// The legacy snake-case name (as reported by pre-table `RuleStats`).
    pub fn name(self) -> &'static str {
        match self {
            RewriteRule::Collect => "collect",
            RewriteRule::Recompose => "recompose",
            RewriteRule::DivMulExact => "div_mul_exact",
            RewriteRule::ModExactZero => "mod_exact_zero",
            RewriteRule::ModInRange => "mod_in_range",
            RewriteRule::ModOfMod => "mod_of_mod",
            RewriteRule::ModSplit => "mod_split",
            RewriteRule::DivExact => "div_exact",
            RewriteRule::DivOfModZero => "div_of_mod_zero",
            RewriteRule::DivInRange => "div_in_range",
            RewriteRule::DivDiv => "div_div",
            RewriteRule::DivSplit => "div_split",
            RewriteRule::MinOrder => "min_order",
            RewriteRule::MaxOrder => "max_order",
            RewriteRule::Distribute => "distribute",
            RewriteRule::Factor => "factor",
        }
    }

    /// Whether the rule is applied only by the e-graph (never
    /// destructively by the fixpoint rewriter): it does not reduce
    /// expression size on its own, it only exposes forms other rules or
    /// extraction can profit from.
    pub fn is_exploratory(self) -> bool {
        matches!(self, RewriteRule::Distribute | RewriteRule::Factor)
    }
}

/// A fingerprint of the whole rewrite-rule registry: an FNV-1a hash
/// over the rule count, names, and exploratory flags, in declaration
/// order. The persistent memo sidecar ([`crate::sidecar`]) stamps its
/// documents with this value, so adding, removing, renaming, or
/// re-classifying a rule invalidates every persisted derived form
/// wholesale — a rule change can never serve stale simplifications.
pub fn table_fingerprint() -> u64 {
    let mut h = crate::intern::Fnv::new();
    h.u64(RewriteRule::ALL.len() as u64);
    for rule in RewriteRule::ALL {
        h.str(rule.name());
        h.byte(rule.is_exploratory() as u8);
    }
    h.finish()
}

/// Counts how many times each rewrite rule fired.
///
/// Under the interned IR the rewrite passes are memoized per node, so a
/// rule firing is counted **once per unique `(environment, node)`
/// within a stats-reporting call**: when a shared subtree is reached
/// again (or the fixpoint loop revisits an already-rewritten node), the
/// memoized result is reused and nothing is re-counted. The counts are
/// therefore a property of the expression DAG, not of how many tree
/// paths happen to reach each node — and they stay deterministic per
/// call because stats-reporting entry points use a fresh per-call memo
/// rather than the session tables.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RuleStats {
    counts: HashMap<RewriteRule, usize>,
}

impl RuleStats {
    /// Number of firings of `rule`.
    pub fn count(&self, rule: RewriteRule) -> usize {
        self.counts.get(&rule).copied().unwrap_or(0)
    }

    /// Total number of rule firings.
    pub fn total(&self) -> usize {
        self.counts.values().sum()
    }

    /// Iterates over `(rule, firings)` pairs in declaration order.
    pub fn iter(&self) -> impl Iterator<Item = (RewriteRule, usize)> + '_ {
        let mut pairs: Vec<(RewriteRule, usize)> =
            self.counts.iter().map(|(k, v)| (*k, *v)).collect();
        pairs.sort_unstable();
        pairs.into_iter()
    }

    pub(crate) fn hit(&mut self, rule: RewriteRule) {
        *self.counts.entry(rule).or_insert(0) += 1;
    }

    pub(crate) fn hit_n(&mut self, rule: RewriteRule, n: usize) {
        *self.counts.entry(rule).or_insert(0) += n;
    }
}

/// Applies every applicable destructive rule at the root of `e` (one
/// step; callers iterate). This is the shared node-level rule step: the
/// fixpoint rewriter loops it inside its bottom-up pass, and the
/// e-graph applies it to the current best term of every class.
pub(crate) fn apply_root(e: &Expr, env: &RangeEnv, stats: &mut RuleStats) -> Expr {
    match e.kind() {
        ExprKind::Add(ts) => simplify_add(ts, env, stats),
        ExprKind::Mul(ts) => simplify_mul(ts, e, env, stats),
        ExprKind::Mod(a, d) => simplify_mod(a, d, e, env, stats),
        ExprKind::FloorDiv(a, d) => simplify_div(a, d, e, env, stats),
        ExprKind::Min(a, b) => {
            if le(a, b, env) {
                stats.hit(RewriteRule::MinOrder);
                a.clone()
            } else if le(b, a, env) {
                stats.hit(RewriteRule::MinOrder);
                b.clone()
            } else {
                e.clone()
            }
        }
        ExprKind::Max(a, b) => {
            if le(a, b, env) {
                stats.hit(RewriteRule::MaxOrder);
                b.clone()
            } else if le(b, a, env) {
                stats.hit(RewriteRule::MaxOrder);
                a.clone()
            } else {
                e.clone()
            }
        }
        _ => e.clone(),
    }
}

/// Applies the exploratory rules at the root of `e`, returning every
/// (rule, equal form) candidate. Only the e-graph calls this: the
/// results are value-equal to `e` but not necessarily smaller, so they
/// are added as additional class members rather than replacements.
pub(crate) fn explore_root(e: &Expr, stats: &mut RuleStats) -> Vec<Expr> {
    let mut out = Vec::new();
    if let Some(d) = distribute_once(e) {
        stats.hit(RewriteRule::Distribute);
        out.push(d);
    }
    for f in factor_once(e) {
        stats.hit(RewriteRule::Factor);
        out.push(f);
    }
    out
}

/// `a*(b + c) -> a*b + a*c` for the first sum factor of a product.
fn distribute_once(e: &Expr) -> Option<Expr> {
    let ExprKind::Mul(fs) = e.kind() else {
        return None;
    };
    let pos = fs
        .iter()
        .position(|f| matches!(f.kind(), ExprKind::Add(_)))?;
    let ExprKind::Add(addends) = fs[pos].kind() else {
        unreachable!("position matched an Add factor");
    };
    let rest: Vec<Expr> = fs
        .iter()
        .enumerate()
        .filter(|(i, _)| *i != pos)
        .map(|(_, f)| f.clone())
        .collect();
    Some(Expr::add_all(addends.iter().map(|a| {
        Expr::mul_all(rest.iter().cloned().chain([a.clone()]))
    })))
}

/// How many candidate factors / factored forms `factor_once` considers
/// per sum, to bound e-graph growth.
const FACTOR_CANDIDATE_CAP: usize = 6;

/// `a*b + a*c -> a*(b + c)`: for each syntactic factor shared by at
/// least two terms of a sum, the factored-out form. Exact by
/// construction (`divide_term` removes the factor syntactically), so no
/// environment conditions are needed.
fn factor_once(e: &Expr) -> Vec<Expr> {
    let ExprKind::Add(ts) = e.kind() else {
        return Vec::new();
    };
    // Candidate factors in first-occurrence order, constants excluded
    // (constant factoring is the rewriter's Collect rule).
    let mut candidates: Vec<Expr> = Vec::new();
    for t in ts {
        let fs: Vec<Expr> = match t.kind() {
            ExprKind::Mul(fs) => fs.clone(),
            _ => vec![t.clone()],
        };
        for f in fs {
            if f.as_const().is_none() && !candidates.contains(&f) {
                candidates.push(f);
            }
        }
    }
    candidates.truncate(FACTOR_CANDIDATE_CAP);
    let mut out = Vec::new();
    for f in &candidates {
        let mut quotients: Vec<Expr> = Vec::new();
        let mut rest: Vec<Expr> = Vec::new();
        for t in ts {
            match divide_term(t, f) {
                Some(q) => quotients.push(q),
                None => rest.push(t.clone()),
            }
        }
        if quotients.len() >= 2 {
            let grouped = Expr::mul_all([f.clone(), Expr::add_all(quotients)]);
            out.push(Expr::add_all(rest.into_iter().chain([grouped])));
        }
    }
    out
}

/// Splits a term into `(constant coefficient, core)` where `core` carries
/// no leading constant.
fn coeff_core(t: &Expr) -> (i64, Expr) {
    match t.kind() {
        ExprKind::Const(v) => (*v, Expr::one()),
        ExprKind::Mul(fs) => {
            if let Some(c) = fs[0].as_const() {
                (c, Expr::mul_all(fs[1..].iter().cloned()))
            } else {
                (1, t.clone())
            }
        }
        _ => (1, t.clone()),
    }
}

fn simplify_add(ts: &[Expr], env: &RangeEnv, stats: &mut RuleStats) -> Expr {
    // Collect like terms: map core -> coefficient.
    let mut order: Vec<Expr> = Vec::new();
    let mut coeffs: HashMap<Expr, i64> = HashMap::new();
    for t in ts {
        let (c, core) = coeff_core(t);
        let entry = coeffs.entry(core.clone()).or_insert_with(|| {
            order.push(core.clone());
            0
        });
        *entry += c;
    }
    let mut terms: Vec<(i64, Expr)> = order
        .into_iter()
        .filter_map(|core| {
            let c = coeffs[&core];
            (c != 0).then_some((c, core))
        })
        .collect();
    if terms.len() < ts.len() {
        stats.hit(RewriteRule::Collect);
    }

    // Rule 7: a*(x/a) + x%a -> x (matching coefficients).
    'outer: loop {
        for i in 0..terms.len() {
            let (ci, core_i) = &terms[i];
            // core_i must be a product containing FloorDiv(x, a) whose
            // remaining factors multiply to `a`, or be FloorDiv(x, a) with
            // a == 1 (already erased), so look for the Mul form.
            let found = match core_i.kind() {
                ExprKind::Mul(fs) => find_recompose_product(fs),
                _ => None,
            };
            let Some((x, a)) = found else { continue };
            if !nonzero(&a, env) {
                continue;
            }
            for j in 0..terms.len() {
                if i == j {
                    continue;
                }
                let (cj, core_j) = &terms[j];
                if ci != cj {
                    continue;
                }
                if let ExprKind::Mod(xj, aj) = core_j.kind() {
                    if *xj == x && *aj == a {
                        let c = *ci;
                        let (lo, hi) = if i < j { (i, j) } else { (j, i) };
                        terms.remove(hi);
                        terms.remove(lo);
                        terms.push((c, x.clone()));
                        stats.hit(RewriteRule::Recompose);
                        continue 'outer;
                    }
                }
            }
        }
        break;
    }

    Expr::add_all(terms.into_iter().map(|(c, core)| {
        if c == 1 {
            core
        } else {
            Expr::mul_all([Expr::val(c), core])
        }
    }))
}

/// Inside a product, cancels `(x / d) * d -> x` when the environment
/// declares `d | x` (exact tiling). The matching `x % d -> 0` fold falls
/// out of `div_exact` consulting the same declarations.
fn simplify_mul(ts: &[Expr], orig: &Expr, env: &RangeEnv, stats: &mut RuleStats) -> Expr {
    for (i, f) in ts.iter().enumerate() {
        let ExprKind::FloorDiv(x, d) = f.kind() else {
            continue;
        };
        if !env.divides(d, x) {
            continue;
        }
        // Find a matching factor `d` elsewhere in the product.
        if let Some(j) = ts.iter().enumerate().position(|(j, g)| j != i && g == d) {
            stats.hit(RewriteRule::DivMulExact);
            let rest = ts
                .iter()
                .enumerate()
                .filter(|(k, _)| *k != i && *k != j)
                .map(|(_, g)| g.clone());
            return Expr::mul_all(rest.chain([x.clone()]));
        }
    }
    orig.clone()
}

/// For factors `fs` of a product, finds `(x, a)` such that the product is
/// `a * (x / a)` (one `FloorDiv(x, a)` factor; the rest multiply to `a`).
fn find_recompose_product(fs: &[Expr]) -> Option<(Expr, Expr)> {
    for (pos, f) in fs.iter().enumerate() {
        if let ExprKind::FloorDiv(x, a) = f.kind() {
            let rest = Expr::mul_all(
                fs.iter()
                    .enumerate()
                    .filter(|(i, _)| *i != pos)
                    .map(|(_, f)| f.clone()),
            );
            if &rest == a {
                return Some((x.clone(), a.clone()));
            }
        }
    }
    None
}

fn simplify_mod(a: &Expr, d: &Expr, orig: &Expr, env: &RangeEnv, stats: &mut RuleStats) -> Expr {
    // Exact divisibility: (d*q) % d -> 0.
    if div_exact(a, d, env).is_some() {
        stats.hit(RewriteRule::ModExactZero);
        return Expr::zero();
    }
    // Rule 5: 0 <= a < d  =>  a % d = a.
    if pos(d, env) && in_half_open(a, d, env) {
        stats.hit(RewriteRule::ModInRange);
        return a.clone();
    }
    // (x % d) % d -> x % d, and more generally (x % m) % d -> x % d when
    // d | m (e.g. (pid % (g*nt_n)) % g -> pid % g in the grouped thread
    // layout of Fig. 10).
    if let ExprKind::Mod(x2, m2) = a.kind() {
        if m2 == d && nonzero(d, env) {
            stats.hit(RewriteRule::ModOfMod);
            return a.clone();
        }
        if pos(d, env) && pos(m2, env) && div_exact(m2, d, env).is_some() {
            stats.hit(RewriteRule::ModOfMod);
            let inner = x2.rem(d);
            return simplify_mod(x2, d, &inner, env, stats);
        }
    }
    // Rule 1: (d*q + r) % d -> r % d, splitting the sum by divisibility.
    if let ExprKind::Add(ts) = a.kind() {
        if nonzero(d, env) {
            let (div_part, rest): (Vec<_>, Vec<_>) = ts
                .iter()
                .cloned()
                .partition(|t| div_exact(t, d, env).is_some());
            if !div_part.is_empty() && !rest.is_empty() {
                stats.hit(RewriteRule::ModSplit);
                let r = Expr::add_all(rest);
                return simplify_mod(&r, d, &r.rem(d), env, stats);
            }
        }
    }
    orig.clone()
}

fn simplify_div(a: &Expr, d: &Expr, orig: &Expr, env: &RangeEnv, stats: &mut RuleStats) -> Expr {
    // Exact division: (d*q) / d -> q.
    if let Some(q) = div_exact(a, d, env) {
        stats.hit(RewriteRule::DivExact);
        return q;
    }
    // Rule 3: (x % d) / d -> 0.
    if let ExprKind::Mod(_, d2) = a.kind() {
        if d2 == d && pos(d, env) {
            stats.hit(RewriteRule::DivOfModZero);
            return Expr::zero();
        }
    }
    // Rule 4: 0 <= a < d  =>  a / d = 0.
    if pos(d, env) && in_half_open(a, d, env) {
        stats.hit(RewriteRule::DivInRange);
        return Expr::zero();
    }
    // (x / a) / b -> x / (a*b) for positive divisors.
    if let ExprKind::FloorDiv(x, inner) = a.kind() {
        if pos(inner, env) && pos(d, env) {
            stats.hit(RewriteRule::DivDiv);
            return x.floor_div(&(inner * d));
        }
    }
    // Rule 2: (d*q + r) / d -> q (+ r/d), splitting the sum.
    if let ExprKind::Add(ts) = a.kind() {
        if nonzero(d, env) {
            let mut q_parts: Vec<Expr> = Vec::new();
            let mut rest: Vec<Expr> = Vec::new();
            for t in ts {
                match div_exact(t, d, env) {
                    Some(q) => q_parts.push(q),
                    None => rest.push(t.clone()),
                }
            }
            if !q_parts.is_empty() && !rest.is_empty() {
                let q = Expr::add_all(q_parts);
                let r = Expr::add_all(rest);
                if in_half_open(&r, d, env) {
                    stats.hit(RewriteRule::DivSplit);
                    return q;
                }
                // General split is exact for floor division with d != 0;
                // keep it only when it does not grow the expression.
                let mut sub = RuleStats::default();
                let rd = simplify_div(&r, d, &r.floor_div(d), env, &mut sub);
                let candidate = q + &rd;
                if ops(&candidate) <= ops(orig) {
                    stats.hit(RewriteRule::DivSplit);
                    for (rule, n) in sub.iter() {
                        stats.hit_n(rule, n);
                    }
                    return candidate;
                }
            }
        }
    }
    orig.clone()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_rule_has_a_unique_name() {
        for (i, a) in RewriteRule::ALL.iter().enumerate() {
            for b in &RewriteRule::ALL[i + 1..] {
                assert_ne!(a.name(), b.name());
            }
        }
    }

    #[test]
    fn exploratory_rules_are_exactly_distribute_and_factor() {
        let exploratory: Vec<RewriteRule> = RewriteRule::ALL
            .iter()
            .copied()
            .filter(|r| r.is_exploratory())
            .collect();
        assert_eq!(
            exploratory,
            vec![RewriteRule::Distribute, RewriteRule::Factor]
        );
    }

    #[test]
    fn distribute_once_expands_one_level() {
        let (a, b, c) = (Expr::sym("a"), Expr::sym("b"), Expr::sym("c"));
        let e = &a * (&b + &c);
        assert_eq!(distribute_once(&e), Some(&a * &b + &a * &c));
        assert_eq!(distribute_once(&a), None);
    }

    #[test]
    fn factor_once_groups_common_factor() {
        let (a, b, c) = (Expr::sym("a"), Expr::sym("b"), Expr::sym("c"));
        let e = &a * &b + &a * &c;
        let factored = factor_once(&e);
        assert!(
            factored.contains(&(&a * (&b + &c))),
            "expected a*(b+c) among {factored:?}"
        );
    }

    #[test]
    fn factor_once_keeps_unrelated_terms() {
        let (a, b, c, d) = (
            Expr::sym("a"),
            Expr::sym("b"),
            Expr::sym("c"),
            Expr::sym("d"),
        );
        let e = &a * &b + &a * &c + &d;
        let factored = factor_once(&e);
        assert!(factored.contains(&(&a * (&b + &c) + &d)));
    }

    #[test]
    fn factored_forms_preserve_value() {
        use crate::subst::{eval, Bindings};
        let (a, b) = (Expr::sym("a"), Expr::sym("b"));
        let e = &a * &b + &a * Expr::val(3) + &b;
        for cand in factor_once(&e) {
            let mut bind = Bindings::new();
            for (va, vb) in [(0i64, 0i64), (5, -3), (17, 11), (-2, 9)] {
                bind.insert("a".into(), va);
                bind.insert("b".into(), vb);
                assert_eq!(eval(&e, &bind).unwrap(), eval(&cand, &bind).unwrap());
            }
        }
    }
}
