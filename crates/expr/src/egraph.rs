//! Equality saturation over the interned expression IR.
//!
//! The fixpoint rewriter applies the Table II rules destructively in a
//! fixed order, so which form it lands on can depend on rule ordering.
//! This module keeps *every* equal form instead: a union-find +
//! congruence-closure e-graph over decompositions of interned [`Expr`]
//! nodes, grown by the same rule table the rewriter uses
//! (`rules::apply_root`) plus the exploratory identities
//! (distribution, factoring) that are unsafe to apply destructively,
//! and finally *extracted* by minimal op count.
//!
//! Guarantees (relied on by the `expr-semantics` saturation gate and
//! the property tests in `tests/saturation.rs`):
//!
//! * **No worse than the rewriter.** The graph is seeded with both the
//!   input and its fixpoint-rewritten form (unioned), so extraction —
//!   a minimum over the root class — returns a form whose op count is
//!   ≤ the rewriter's even at budget zero.
//! * **Eval-equivalent.** Every union is justified by a sound rewrite:
//!   either a destructive rule of the shared table (side conditions
//!   discharged against the same [`RangeEnv`]) or an exploratory
//!   identity that is exact over the integers.
//! * **Deterministic per budget.** Classes are visited in sorted-id
//!   order, union roots are chosen as the smaller id, congruence
//!   closure is confluent, and cost ties are broken by the structural
//!   order of the rebuilt terms — no hash-map iteration order leaks
//!   into the result.
//! * **Budget-monotone.** A run with a larger budget performs a
//!   superset of the unions of a smaller-budget run (the smaller run
//!   is a prefix of the same deterministic schedule), and a minimum
//!   over a superset of equal forms can only be ≤.
//!
//! Saturation results are memoized per `(environment id, node id,
//! budget)` in the session tables, exactly like the rewrite passes, so
//! the tuner's warm fast path keeps its hit rates under
//! [`crate::SimplifyStrategy::Saturate`].
//!
//! `Xor`, `Select`, `ISqrt`, and `Range` subtrees are treated as opaque
//! leaves of the graph (no rule of the shared table rewrites *through*
//! them); they are still simplified by the seeded rewrite form.

use std::collections::{BTreeMap, HashMap};

use crate::cost::ops;
use crate::expr::{Expr, ExprKind};
use crate::intern;
use crate::prove::at_depth0;
use crate::range::RangeEnv;
use crate::rules::{self, RuleStats};
use crate::simplify::fixpoint_simplify;

/// Bounds on e-graph growth during saturation.
///
/// `max_iters` bounds the number of grow-and-rebuild sweeps over the
/// graph; `max_nodes` bounds the number of e-nodes (term decompositions)
/// the graph may hold before growth stops. Either limit alone stops
/// saturation; extraction always runs. Because of the seeding guarantee
/// above, *any* budget — including zero — yields a form at least as
/// cheap as the fixpoint rewriter's, and larger budgets never yield a
/// worse one.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SaturationBudget {
    /// Maximum saturation sweeps (each sweep visits every class once).
    pub max_iters: usize,
    /// Maximum e-nodes in the graph before growth stops.
    pub max_nodes: usize,
}

impl Default for SaturationBudget {
    fn default() -> Self {
        SaturationBudget {
            max_iters: 8,
            max_nodes: 2048,
        }
    }
}

impl SaturationBudget {
    /// A compact fingerprint for the session memo key.
    pub(crate) fn fingerprint(&self) -> u64 {
        ((self.max_iters as u64).min(0xffff_ffff) << 32) | (self.max_nodes as u64).min(0xffff_ffff)
    }
}

type ClassId = usize;

/// One decomposed node: an operator over equivalence classes, or an
/// opaque leaf (constants, symbols, and the operators the rule table
/// never rewrites through).
#[derive(Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
enum ENode {
    Leaf(Expr),
    Add(Vec<ClassId>),
    Mul(Vec<ClassId>),
    Div(ClassId, ClassId),
    Mod(ClassId, ClassId),
    Min(ClassId, ClassId),
    Max(ClassId, ClassId),
}

impl ENode {
    /// Cost contributed by this node alone (children counted separately
    /// via their classes). Mirrors the op-count model: n-ary operators
    /// cost `n-1`, binary operators cost 1, leaves their own op count.
    fn own_cost(&self) -> usize {
        match self {
            ENode::Leaf(e) => ops(e),
            ENode::Add(cs) | ENode::Mul(cs) => cs.len().saturating_sub(1),
            _ => 1,
        }
    }

    fn children(&self) -> Vec<ClassId> {
        match self {
            ENode::Leaf(_) => Vec::new(),
            ENode::Add(cs) | ENode::Mul(cs) => cs.clone(),
            ENode::Div(a, b) | ENode::Mod(a, b) | ENode::Min(a, b) | ENode::Max(a, b) => {
                vec![*a, *b]
            }
        }
    }
}

struct EGraph {
    /// Union-find parent pointers; `uf[i] == i` marks a root.
    uf: Vec<ClassId>,
    /// Canonical e-node → class. Rebuilt (re-canonicalized) after unions.
    memo: HashMap<ENode, ClassId>,
}

impl EGraph {
    fn new() -> EGraph {
        EGraph {
            uf: Vec::new(),
            memo: HashMap::new(),
        }
    }

    fn find(&mut self, mut id: ClassId) -> ClassId {
        while self.uf[id] != id {
            // Path halving keeps the walk amortized near-constant.
            self.uf[id] = self.uf[self.uf[id]];
            id = self.uf[id];
        }
        id
    }

    /// Canonicalizes an e-node: children replaced by their class roots;
    /// commutative operand lists sorted so `Add([a,b])` and `Add([b,a])`
    /// are one node.
    fn canonicalize(&mut self, node: &ENode) -> ENode {
        match node {
            ENode::Leaf(_) => node.clone(),
            ENode::Add(cs) => {
                let mut cs: Vec<ClassId> = cs.iter().map(|c| self.find(*c)).collect();
                cs.sort_unstable();
                ENode::Add(cs)
            }
            ENode::Mul(cs) => {
                let mut cs: Vec<ClassId> = cs.iter().map(|c| self.find(*c)).collect();
                cs.sort_unstable();
                ENode::Mul(cs)
            }
            ENode::Div(a, b) => ENode::Div(self.find(*a), self.find(*b)),
            ENode::Mod(a, b) => ENode::Mod(self.find(*a), self.find(*b)),
            ENode::Min(a, b) => {
                let (a, b) = (self.find(*a), self.find(*b));
                // Min/max are commutative too; order the class pair.
                ENode::Min(a.min(b), a.max(b))
            }
            ENode::Max(a, b) => {
                let (a, b) = (self.find(*a), self.find(*b));
                ENode::Max(a.min(b), a.max(b))
            }
        }
    }

    fn add_enode(&mut self, node: ENode) -> ClassId {
        let node = self.canonicalize(&node);
        if let Some(&c) = self.memo.get(&node) {
            return self.find(c);
        }
        let id = self.uf.len();
        self.uf.push(id);
        self.memo.insert(node, id);
        id
    }

    /// Decomposes `e` into the graph, returning its class.
    fn add_expr(&mut self, e: &Expr) -> ClassId {
        let node = match e.kind() {
            ExprKind::Add(ts) => ENode::Add(ts.iter().map(|t| self.add_expr(t)).collect()),
            ExprKind::Mul(ts) => ENode::Mul(ts.iter().map(|t| self.add_expr(t)).collect()),
            ExprKind::FloorDiv(a, b) => {
                let (a, b) = (self.add_expr(a), self.add_expr(b));
                ENode::Div(a, b)
            }
            ExprKind::Mod(a, b) => {
                let (a, b) = (self.add_expr(a), self.add_expr(b));
                ENode::Mod(a, b)
            }
            ExprKind::Min(a, b) => {
                let (a, b) = (self.add_expr(a), self.add_expr(b));
                ENode::Min(a, b)
            }
            ExprKind::Max(a, b) => {
                let (a, b) = (self.add_expr(a), self.add_expr(b));
                ENode::Max(a, b)
            }
            _ => ENode::Leaf(e.clone()),
        };
        self.add_enode(node)
    }

    /// Unions two classes. The smaller root id wins, so the final
    /// partition is independent of union order (closure confluence).
    fn union(&mut self, a: ClassId, b: ClassId) -> bool {
        let (a, b) = (self.find(a), self.find(b));
        if a == b {
            return false;
        }
        let (root, child) = (a.min(b), a.max(b));
        self.uf[child] = root;
        true
    }

    /// Restores congruence closure: re-canonicalizes every e-node and
    /// unions classes whose nodes collide, repeating until stable.
    /// Naive (whole-table) rebuilding — the expressions this engine
    /// sees are tuner index arithmetic with a few hundred nodes at
    /// most, where the O(n) sweep is cheaper than parent bookkeeping.
    fn rebuild(&mut self) {
        loop {
            let mut changed = false;
            let entries: Vec<(ENode, ClassId)> = self.memo.drain().collect();
            let mut next: HashMap<ENode, ClassId> = HashMap::with_capacity(entries.len());
            for (node, class) in entries {
                let node = self.canonicalize(&node);
                let class = self.find(class);
                match next.entry(node) {
                    std::collections::hash_map::Entry::Occupied(o) => {
                        if self.union(*o.get(), class) {
                            changed = true;
                        }
                    }
                    std::collections::hash_map::Entry::Vacant(v) => {
                        v.insert(class);
                    }
                }
            }
            self.memo = next;
            if !changed {
                break;
            }
        }
    }

    fn n_nodes(&self) -> usize {
        self.memo.len()
    }

    /// Canonical class → sorted member e-nodes, deterministic.
    fn classes(&mut self) -> BTreeMap<ClassId, Vec<ENode>> {
        let entries: Vec<(ENode, ClassId)> =
            self.memo.iter().map(|(n, c)| (n.clone(), *c)).collect();
        let mut out: BTreeMap<ClassId, Vec<ENode>> = BTreeMap::new();
        for (node, class) in entries {
            let class = self.find(class);
            out.entry(class).or_default().push(node);
        }
        for nodes in out.values_mut() {
            nodes.sort();
        }
        out
    }

    /// Computes the cheapest term of every class: a fixpoint over
    /// `cost(class) = min over member nodes of own_cost + Σ cost(child)`,
    /// then a rebuild of the best term per class in ascending cost order
    /// (children of a non-leaf minimum are strictly cheaper, so their
    /// terms exist by the time they are needed). Cost ties between
    /// member nodes are broken by the structural order of the rebuilt
    /// candidate terms.
    fn extract_all(&mut self) -> BTreeMap<ClassId, Expr> {
        let classes = self.classes();
        // Cost fixpoint.
        let mut cost: BTreeMap<ClassId, usize> = BTreeMap::new();
        loop {
            let mut changed = false;
            for (&class, nodes) in &classes {
                for node in nodes {
                    let mut total = node.own_cost();
                    let mut known = true;
                    for ch in node.children() {
                        let ch = self.find(ch);
                        match cost.get(&ch) {
                            Some(c) => total += c,
                            None => {
                                known = false;
                                break;
                            }
                        }
                    }
                    let better = match cost.get(&class) {
                        Some(&c) => total < c,
                        None => true,
                    };
                    if known && better {
                        cost.insert(class, total);
                        changed = true;
                    }
                }
            }
            if !changed {
                break;
            }
        }
        // Best-term construction, cheapest classes first.
        let mut order: Vec<(usize, ClassId)> = cost.iter().map(|(&c, &k)| (k, c)).collect();
        order.sort_unstable();
        let mut best: BTreeMap<ClassId, Expr> = BTreeMap::new();
        for (class_cost, class) in order {
            let mut candidate: Option<Expr> = None;
            for node in &classes[&class] {
                let mut total = node.own_cost();
                let mut rebuilt_children = Vec::new();
                let mut ready = true;
                for ch in node.children() {
                    let ch = self.find(ch);
                    match (cost.get(&ch), best.get(&ch)) {
                        (Some(c), Some(t)) => {
                            total += c;
                            rebuilt_children.push(t.clone());
                        }
                        _ => {
                            ready = false;
                            break;
                        }
                    }
                }
                if !ready || total != class_cost {
                    continue;
                }
                let term = rebuild_term(node, &rebuilt_children);
                candidate = Some(match candidate {
                    None => term,
                    Some(prev) => {
                        if term.cmp(&prev) == std::cmp::Ordering::Less {
                            term
                        } else {
                            prev
                        }
                    }
                });
            }
            if let Some(t) = candidate {
                best.insert(class, t);
            }
        }
        best
    }
}

/// Rebuilds an `Expr` from an e-node and its children's best terms. The
/// smart constructors re-canonicalize (flatten, fold constants), which
/// can only shrink the realized op count below the estimate.
fn rebuild_term(node: &ENode, children: &[Expr]) -> Expr {
    match node {
        ENode::Leaf(e) => e.clone(),
        ENode::Add(_) => Expr::add_all(children.iter().cloned()),
        ENode::Mul(_) => Expr::mul_all(children.iter().cloned()),
        ENode::Div(_, _) => children[0].floor_div(&children[1]),
        ENode::Mod(_, _) => children[0].rem(&children[1]),
        ENode::Min(_, _) => children[0].clone().min(&children[1]),
        ENode::Max(_, _) => children[0].clone().max(&children[1]),
    }
}

/// Saturates `e` under `env` and extracts the cheapest equal form.
/// Memoized per `(environment, node, budget)` for the session (at
/// prover depth 0, where results are pure).
pub(crate) fn saturate(e: &Expr, env: &RangeEnv, budget: SaturationBudget) -> Expr {
    if at_depth0() {
        let key = (env.id(), e.id().get(), budget.fingerprint());
        if let Some(hit) = intern::saturate_get(key.0, key.1, key.2) {
            return hit;
        }
        let (result, _) = saturate_with_stats(e, env, budget);
        intern::saturate_insert(key.0, key.1, key.2, result.clone());
        return result;
    }
    saturate_with_stats(e, env, budget).0
}

/// [`saturate`] without the session memo, reporting which rules fired
/// during saturation. Deterministic per `(e, env, budget)`.
pub(crate) fn saturate_with_stats(
    e: &Expr,
    env: &RangeEnv,
    budget: SaturationBudget,
) -> (Expr, RuleStats) {
    let mut stats = RuleStats::default();
    let mut g = EGraph::new();
    let root = g.add_expr(e);

    // Seed with the fixpoint rewriter's result: extraction can then
    // never do worse than the rewrite strategy, whatever the budget.
    let rewritten = fixpoint_simplify(e, env);
    let seeded = g.add_expr(&rewritten);
    g.union(root, seeded);
    g.rebuild();

    for _ in 0..budget.max_iters {
        if g.n_nodes() >= budget.max_nodes {
            break;
        }
        let best = g.extract_all();
        let mut changed = false;
        for (class, term) in &best {
            if g.n_nodes() >= budget.max_nodes {
                break;
            }
            // The shared destructive rule step, applied at the root of
            // the class's current best term. Subterms are covered
            // because every subterm is its own class.
            let stepped = rules::apply_root(term, env, &mut stats);
            if &stepped != term {
                let c = g.add_expr(&stepped);
                if g.union(*class, c) {
                    changed = true;
                }
            }
            // The exploratory identities (Distribute, Factor), added as
            // extra class members rather than replacements.
            for alt in rules::explore_root(term, &mut stats) {
                if g.n_nodes() >= budget.max_nodes {
                    break;
                }
                let c = g.add_expr(&alt);
                if g.union(*class, c) {
                    changed = true;
                }
            }
        }
        g.rebuild();
        if !changed {
            break;
        }
    }

    let best = g.extract_all();
    let root = g.find(root);
    let extracted = best
        .get(&root)
        .cloned()
        .unwrap_or_else(|| rewritten.clone());
    // The estimate-vs-realized gap (smart constructors folding during
    // rebuild) always favors the extracted term, but guard the invariant
    // structurally: never return a form costlier than the rewriter's.
    let result = if ops(&extracted) <= ops(&rewritten) {
        extracted
    } else {
        rewritten
    };
    (result, stats)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sat(e: &Expr, env: &RangeEnv) -> Expr {
        saturate_with_stats(e, env, SaturationBudget::default()).0
    }

    #[test]
    fn saturation_matches_rewriter_on_table2() {
        let mut env = RangeEnv::new();
        env.assume_pos("d");
        env.set_bounds("r", Expr::val(0), Expr::sym("d"));
        env.assume_nonneg("q");
        let e = (Expr::sym("d") * Expr::sym("q") + Expr::sym("r")).rem(&Expr::sym("d"));
        assert_eq!(sat(&e, &env), Expr::sym("r"));
    }

    #[test]
    fn saturation_factors_common_stride() {
        // i*s + j*s: the fixpoint rewriter's Collect only merges equal
        // cores, so it stays at 3 ops; factoring finds (i + j)*s at 2.
        let env = RangeEnv::new();
        let e = Expr::sym("i") * Expr::sym("s") + Expr::sym("j") * Expr::sym("s");
        let r = fixpoint_simplify(&e, &env);
        let s = sat(&e, &env);
        assert_eq!(ops(&r), 3);
        assert_eq!(ops(&s), 2);
        assert_eq!(s, (Expr::sym("i") + Expr::sym("j")) * Expr::sym("s"));
    }

    #[test]
    fn zero_budget_still_no_worse_than_rewrite() {
        let mut env = RangeEnv::new();
        env.assume_pos("m");
        env.set_bounds("i", Expr::val(0), Expr::sym("n"));
        env.set_bounds("j", Expr::val(0), Expr::sym("m"));
        env.assume_pos("n");
        let flat = Expr::sym("i") * Expr::sym("m") + Expr::sym("j");
        let e = flat.floor_div(&Expr::sym("m"));
        let budget = SaturationBudget {
            max_iters: 0,
            max_nodes: 0,
        };
        let (s, _) = saturate_with_stats(&e, &env, budget);
        assert!(ops(&s) <= ops(&fixpoint_simplify(&e, &env)));
        assert_eq!(s, Expr::sym("i"));
    }

    #[test]
    fn saturation_is_deterministic() {
        let env = RangeEnv::new();
        let e = Expr::sym("a") * Expr::sym("b")
            + Expr::sym("a") * Expr::sym("c")
            + Expr::sym("b") * Expr::sym("c");
        let b = SaturationBudget::default();
        let first = saturate_with_stats(&e, &env, b);
        let second = saturate_with_stats(&e, &env, b);
        assert_eq!(first.0, second.0);
        assert_eq!(first.1, second.1);
    }

    #[test]
    fn congruence_propagates_through_parents() {
        // d | x makes x%d collapse to 0 (mod_exact_zero), and congruence
        // must then collapse (x%d) + y to y.
        let mut env = RangeEnv::new();
        env.assume_pos("d");
        env.assume_nonneg("x");
        env.assume_divides(Expr::sym("d"), Expr::sym("x"));
        let e = Expr::sym("x").rem(&Expr::sym("d")) + Expr::sym("y");
        assert_eq!(sat(&e, &env), Expr::sym("y"));
    }
}
