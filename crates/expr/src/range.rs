//! Range (interval) analysis for expressions.
//!
//! LEGO propagates index-range information through layouts (§IV-A of the
//! paper) so that the simplifier can discharge the side conditions of the
//! Table II rules. Ranges come in two flavours here:
//!
//! * a numeric interval [`NumRange`] computed by interval arithmetic, and
//! * *symbolic* per-symbol bounds recorded in a [`RangeEnv`]
//!   (e.g. `pid ∈ [0, nt_m*nt_n)` where the upper bound is itself an
//!   expression).
//!
//! The symbolic bounds power the structural prover in [`crate::prove`].

use std::collections::HashMap;
use std::sync::OnceLock;

use crate::expr::{Expr, ExprKind};
use crate::intern;

/// A (possibly unbounded) inclusive numeric interval.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct NumRange {
    /// Inclusive lower bound; `None` = −∞.
    pub lo: Option<i64>,
    /// Inclusive upper bound; `None` = +∞.
    pub hi: Option<i64>,
}

impl NumRange {
    /// The full interval (−∞, +∞).
    pub const TOP: NumRange = NumRange { lo: None, hi: None };

    /// A single point.
    pub fn point(v: i64) -> NumRange {
        NumRange {
            lo: Some(v),
            hi: Some(v),
        }
    }

    /// Inclusive `[lo, hi]`.
    pub fn closed(lo: i64, hi: i64) -> NumRange {
        NumRange {
            lo: Some(lo),
            hi: Some(hi),
        }
    }

    /// `[lo, +∞)`.
    pub fn at_least(lo: i64) -> NumRange {
        NumRange {
            lo: Some(lo),
            hi: None,
        }
    }

    /// `(-∞, hi]`.
    pub fn at_most(hi: i64) -> NumRange {
        NumRange {
            lo: None,
            hi: Some(hi),
        }
    }

    /// True if every value in the interval is `>= 0`.
    pub fn is_nonneg(&self) -> bool {
        matches!(self.lo, Some(l) if l >= 0)
    }

    /// True if every value in the interval is `> 0`.
    pub fn is_pos(&self) -> bool {
        matches!(self.lo, Some(l) if l > 0)
    }

    /// True if the interval excludes 0.
    pub fn is_nonzero(&self) -> bool {
        self.is_pos() || matches!(self.hi, Some(h) if h < 0)
    }

    fn add(self, o: NumRange) -> NumRange {
        NumRange {
            lo: opt2(self.lo, o.lo, |a, b| a.saturating_add(b)),
            hi: opt2(self.hi, o.hi, |a, b| a.saturating_add(b)),
        }
    }

    fn mul(self, o: NumRange) -> NumRange {
        // Interval multiplication needs all four corner products; any
        // missing (infinite) corner makes the result unbounded on that side
        // unless sign information saves us. We keep it simple and sound:
        // finite×finite uses corners, otherwise special-case non-negative
        // operands.
        match (self.lo, self.hi, o.lo, o.hi) {
            (Some(a), Some(b), Some(c), Some(d)) => {
                let ps = [
                    a.saturating_mul(c),
                    a.saturating_mul(d),
                    b.saturating_mul(c),
                    b.saturating_mul(d),
                ];
                NumRange {
                    lo: ps.iter().min().copied(),
                    hi: ps.iter().max().copied(),
                }
            }
            _ => {
                if self.is_nonneg() && o.is_nonneg() {
                    let lo = match (self.lo, o.lo) {
                        (Some(a), Some(c)) => Some(a.saturating_mul(c)),
                        _ => Some(0),
                    };
                    let hi = match (self.hi, o.hi) {
                        (Some(b), Some(d)) => Some(b.saturating_mul(d)),
                        _ => None,
                    };
                    NumRange { lo, hi }
                } else {
                    NumRange::TOP
                }
            }
        }
    }

    fn min(self, o: NumRange) -> NumRange {
        NumRange {
            lo: opt_min_lo(self.lo, o.lo),
            hi: match (self.hi, o.hi) {
                (Some(a), Some(b)) => Some(a.min(b)),
                (Some(a), None) => Some(a),
                (None, Some(b)) => Some(b),
                (None, None) => None,
            },
        }
    }

    fn max(self, o: NumRange) -> NumRange {
        NumRange {
            lo: match (self.lo, o.lo) {
                (Some(a), Some(b)) => Some(a.max(b)),
                (Some(a), None) => Some(a),
                (None, Some(b)) => Some(b),
                (None, None) => None,
            },
            hi: opt_max_hi(self.hi, o.hi),
        }
    }

    fn union(self, o: NumRange) -> NumRange {
        NumRange {
            lo: opt_min_lo(self.lo, o.lo),
            hi: opt_max_hi(self.hi, o.hi),
        }
    }
}

fn opt2(a: Option<i64>, b: Option<i64>, f: impl Fn(i64, i64) -> i64) -> Option<i64> {
    match (a, b) {
        (Some(a), Some(b)) => Some(f(a, b)),
        _ => None,
    }
}

fn opt_min_lo(a: Option<i64>, b: Option<i64>) -> Option<i64> {
    match (a, b) {
        (Some(a), Some(b)) => Some(a.min(b)),
        _ => None,
    }
}

fn opt_max_hi(a: Option<i64>, b: Option<i64>) -> Option<i64> {
    match (a, b) {
        (Some(a), Some(b)) => Some(a.max(b)),
        _ => None,
    }
}

/// Symbolic bounds for one symbol: `lo <= sym < hi` where either bound may
/// itself be an expression (or absent).
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct SymBounds {
    /// Inclusive lower bound.
    pub lo: Option<Expr>,
    /// *Exclusive* upper bound.
    pub hi: Option<Expr>,
}

/// The range environment: per-symbol bounds used by the prover and the
/// simplifier. This plays the role that index ranges + user constraints play
/// for the paper's Z3 queries.
///
/// # Examples
///
/// ```
/// use lego_expr::{Expr, RangeEnv};
/// let mut env = RangeEnv::new();
/// env.set_bounds("pid", Expr::val(0), Expr::sym("nt_m") * Expr::sym("nt_n"));
/// env.assume_pos("nt_m");
/// assert!(env.num_range(&Expr::sym("pid")).is_nonneg());
/// ```
#[derive(Clone, Debug, Default)]
pub struct RangeEnv {
    bounds: HashMap<String, SymBounds>,
    divs: Vec<(Expr, Expr)>,
    /// Lazily computed session identity (see [`RangeEnv::id`]); reset
    /// by every mutator.
    interned: OnceLock<u64>,
}

impl RangeEnv {
    /// An empty environment (every symbol unbounded).
    pub fn new() -> RangeEnv {
        RangeEnv::default()
    }

    /// The environment's session identity: environments with identical
    /// content (same bounds, same divisibility facts, by interned node
    /// identity) share one id, which keys the per-environment memo
    /// tables of [`crate::simplify()`], [`RangeEnv::num_range`] and the
    /// prover. Computed once and cached; any mutation invalidates it.
    pub fn id(&self) -> u64 {
        *self.interned.get_or_init(|| {
            let mut bounds: Vec<(String, Option<u64>, Option<u64>)> = self
                .bounds
                .iter()
                .map(|(name, b)| {
                    (
                        name.clone(),
                        b.lo.as_ref().map(|e| e.id().get()),
                        b.hi.as_ref().map(|e| e.id().get()),
                    )
                })
                .collect();
            bounds.sort();
            let mut divs: Vec<(u64, u64)> = self
                .divs
                .iter()
                .map(|(d, x)| (d.id().get(), x.id().get()))
                .collect();
            divs.sort_unstable();
            intern::intern_env((bounds, divs))
        })
    }

    /// Drops the cached identity after a mutation.
    fn touch(&mut self) {
        self.interned = OnceLock::new();
    }

    /// Declares the user constraint `d | x` (`d` evenly divides `x`),
    /// e.g. "`BM` divides `M`" when the problem avoids partial tiles.
    /// The simplifier then rewrites `(x/d)*d → x` and treats `x/d` as an
    /// exact quotient.
    pub fn assume_divides(&mut self, d: impl Into<Expr>, x: impl Into<Expr>) -> &mut Self {
        let (d, x) = (d.into(), x.into());
        if !self.divides(&d, &x) {
            self.divs.push((d, x));
            self.touch();
        }
        self
    }

    /// True if `d | x` has been declared (syntactic match).
    pub fn divides(&self, d: &Expr, x: &Expr) -> bool {
        self.divs.iter().any(|(dd, xx)| dd == d && xx == x)
    }

    /// Declares `lo <= name < hi`.
    pub fn set_bounds(&mut self, name: &str, lo: Expr, hi: Expr) -> &mut Self {
        self.bounds.insert(
            name.to_string(),
            SymBounds {
                lo: Some(lo),
                hi: Some(hi),
            },
        );
        self.touch();
        self
    }

    /// Declares bounds where either side may be absent: `lo <= name`
    /// and/or `name < hi`. Replaces any earlier bounds for `name`. This
    /// is the general form [`RangeEnv::set_bounds`], [`RangeEnv::assume_pos`]
    /// and [`RangeEnv::assume_nonneg`] special-case; the persistent memo
    /// sidecar uses it to reconstruct environments whose symbols carry
    /// only one-sided bounds.
    pub fn set_bounds_opt(&mut self, name: &str, lo: Option<Expr>, hi: Option<Expr>) -> &mut Self {
        self.bounds.insert(name.to_string(), SymBounds { lo, hi });
        self.touch();
        self
    }

    /// Declares `name >= 1` (a size parameter such as `M` or `BM`).
    pub fn assume_pos(&mut self, name: &str) -> &mut Self {
        let e = self.bounds.entry(name.to_string()).or_default();
        e.lo = Some(Expr::one());
        self.touch();
        self
    }

    /// Declares `name >= 0`.
    pub fn assume_nonneg(&mut self, name: &str) -> &mut Self {
        let e = self.bounds.entry(name.to_string()).or_default();
        e.lo = Some(Expr::zero());
        self.touch();
        self
    }

    /// Looks up the declared bounds of a symbol.
    pub fn bounds(&self, name: &str) -> Option<&SymBounds> {
        self.bounds.get(name)
    }

    /// Iterates over all `(symbol, bounds)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (&String, &SymBounds)> {
        self.bounds.iter()
    }

    /// Computes a sound numeric interval for `e` by interval arithmetic,
    /// using whatever numeric information the per-symbol bounds carry.
    /// Results are memoized per `(environment, node)` for the session,
    /// so shared subtrees are analyzed once.
    pub fn num_range(&self, e: &Expr) -> NumRange {
        let key = (self.id(), e.id().get());
        if let Some(hit) = intern::range_get(key.0, key.1) {
            return hit;
        }
        let r = self.num_range_uncached(e);
        intern::range_insert(key.0, key.1, r);
        r
    }

    fn num_range_uncached(&self, e: &Expr) -> NumRange {
        match e.kind() {
            ExprKind::Const(v) => NumRange::point(*v),
            ExprKind::Sym(s) => {
                let Some(b) = self.bounds.get(&**s) else {
                    return NumRange::TOP;
                };
                let lo = b.lo.as_ref().and_then(|e| self.num_range(e).lo);
                // hi is exclusive: sym <= hi - 1, so we need a numeric lower
                // bound on nothing — we need an upper bound on `hi`.
                let hi =
                    b.hi.as_ref()
                        .and_then(|e| self.num_range(e).hi)
                        .map(|h| h - 1);
                NumRange { lo, hi }
            }
            ExprKind::Add(ts) => ts
                .iter()
                .map(|t| self.num_range(t))
                .fold(NumRange::point(0), NumRange::add),
            ExprKind::Mul(ts) => ts
                .iter()
                .map(|t| self.num_range(t))
                .fold(NumRange::point(1), NumRange::mul),
            ExprKind::FloorDiv(a, b) => {
                let (ra, rb) = (self.num_range(a), self.num_range(b));
                if ra.is_nonneg() && rb.is_pos() {
                    let lo = Some(0);
                    let hi = match (ra.hi, rb.lo) {
                        (Some(ah), Some(bl)) if bl > 0 => Some(ah.div_euclid(bl)),
                        _ => None,
                    };
                    NumRange { lo, hi }
                } else {
                    NumRange::TOP
                }
            }
            ExprKind::Mod(a, b) => {
                let (ra, rb) = (self.num_range(a), self.num_range(b));
                if rb.is_pos() {
                    // Floor modulo with positive divisor is in [0, b-1];
                    // additionally bounded by a's own range when a >= 0.
                    let mut hi = rb.hi.map(|h| h - 1);
                    if ra.is_nonneg() {
                        hi = match (hi, ra.hi) {
                            (Some(x), Some(y)) => Some(x.min(y)),
                            (Some(x), None) => Some(x),
                            (None, y) => y,
                        };
                    }
                    NumRange { lo: Some(0), hi }
                } else {
                    NumRange::TOP
                }
            }
            ExprKind::Min(a, b) => self.num_range(a).min(self.num_range(b)),
            ExprKind::Max(a, b) => self.num_range(a).max(self.num_range(b)),
            ExprKind::Xor(a, b) => {
                // For non-negative operands below 2^k, the XOR stays
                // below 2^k.
                let (ra, rb) = (self.num_range(a), self.num_range(b));
                if ra.is_nonneg() && rb.is_nonneg() {
                    let hi = match (ra.hi, rb.hi) {
                        (Some(x), Some(y)) => {
                            let m = x.max(y).max(0) as u64;
                            Some(((m + 1).next_power_of_two() - 1) as i64)
                        }
                        _ => None,
                    };
                    NumRange { lo: Some(0), hi }
                } else {
                    NumRange::TOP
                }
            }
            ExprKind::Select(_, t, f) => self.num_range(t).union(self.num_range(f)),
            ExprKind::ISqrt(a) => {
                let ra = self.num_range(a);
                NumRange {
                    lo: Some(0),
                    hi: ra.hi.map(|h| crate::expr::isqrt64(h.max(0))),
                }
            }
            ExprKind::Range { lo, len, .. } => {
                let rl = self.num_range(lo);
                let rn = self.num_range(len);
                NumRange {
                    lo: rl.lo,
                    hi: opt2(rl.hi, rn.hi, |l, n| l + n - 1),
                }
            }
        }
    }

    /// A symbolic *inclusive* upper bound for `e`, derived structurally
    /// (e.g. `x % d <= d - 1`, `range(0, n) <= n - 1`, `a*b <= ua*ub` for
    /// non-negative factors). This function is total: when no better bound
    /// is known for a node, the node itself is used (`e <= e`), so the
    /// result only ever *replaces bounded index symbols by their bounds*.
    pub fn upper_inclusive(&self, e: &Expr) -> Expr {
        match e.kind() {
            ExprKind::Const(_) => e.clone(),
            ExprKind::Sym(s) => match self.bounds.get(&**s).and_then(|b| b.hi.as_ref()) {
                Some(h) => h - Expr::one(),
                None => e.clone(),
            },
            ExprKind::Add(ts) => Expr::add_all(ts.iter().map(|t| self.upper_inclusive(t))),
            ExprKind::Mul(ts) => {
                // `prod <= prod of uppers` is only valid when every factor
                // is provably non-negative; otherwise fall back to `e`.
                if ts.iter().all(|t| crate::prove::nonneg(t, self)) {
                    Expr::mul_all(ts.iter().map(|t| self.upper_inclusive(t)))
                } else {
                    e.clone()
                }
            }
            ExprKind::FloorDiv(a, b) => {
                // (x % m) / b <= q - 1 when m = b*q exactly (the quotient
                // of an unflatten never exceeds the outer extent).
                if let ExprKind::Mod(_, m) = a.kind() {
                    if crate::prove::pos(b, self) && crate::prove::pos(m, self) {
                        if let Some(q) = crate::prove::div_exact(m, b, self) {
                            return q - Expr::one();
                        }
                    }
                }
                // a/b <= upper(a) when a >= 0 and b >= 1.
                if crate::prove::nonneg(a, self) && crate::prove::pos(b, self) {
                    self.upper_inclusive(a)
                } else {
                    e.clone()
                }
            }
            ExprKind::Mod(_, d) => {
                if crate::prove::pos(d, self) {
                    d - Expr::one()
                } else {
                    e.clone()
                }
            }
            ExprKind::Min(a, b) => {
                // Preserve the Min structure: the grouped-layout lemma
                // needs min(g, x) intact, and Min of constants folds.
                self.upper_inclusive(a).min(&self.upper_inclusive(b))
            }
            ExprKind::Max(a, b) => self.upper_inclusive(a).max(&self.upper_inclusive(b)),
            ExprKind::Xor(_, _) => e.clone(),
            ExprKind::Select(_, t, f) => self.upper_inclusive(t).max(&self.upper_inclusive(f)),
            ExprKind::ISqrt(a) => self.upper_inclusive(a),
            ExprKind::Range { lo, len, .. } => lo + self.upper_inclusive(len) - Expr::one(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn const_range_is_point() {
        let env = RangeEnv::new();
        assert_eq!(env.num_range(&Expr::val(7)), NumRange::point(7));
    }

    #[test]
    fn sym_bounds_propagate() {
        let mut env = RangeEnv::new();
        env.set_bounds("i", Expr::val(0), Expr::val(16));
        let r = env.num_range(&(Expr::sym("i") * Expr::val(4) + Expr::val(3)));
        assert_eq!(r, NumRange::closed(3, 63));
    }

    #[test]
    fn mod_pos_divisor_bounded() {
        let env = RangeEnv::new();
        let e = Expr::sym("x").rem(&Expr::val(32));
        assert_eq!(env.num_range(&e), NumRange::closed(0, 31));
    }

    #[test]
    fn mod_bounded_by_numerator() {
        let mut env = RangeEnv::new();
        env.set_bounds("x", Expr::val(0), Expr::val(5));
        let e = Expr::sym("x").rem(&Expr::val(32));
        assert_eq!(env.num_range(&e), NumRange::closed(0, 4));
    }

    #[test]
    fn div_nonneg_range() {
        let mut env = RangeEnv::new();
        env.set_bounds("x", Expr::val(0), Expr::val(100));
        let e = Expr::sym("x").floor_div(&Expr::val(10));
        assert_eq!(env.num_range(&e), NumRange::closed(0, 9));
    }

    #[test]
    fn unknown_sym_is_top() {
        let env = RangeEnv::new();
        assert_eq!(env.num_range(&Expr::sym("q")), NumRange::TOP);
    }

    #[test]
    fn upper_inclusive_of_flattened_index() {
        // i1*n2 + i2 with i1 < n1, i2 < n2 has inclusive upper bound
        // (n1-1)*n2 + (n2-1) = n1*n2 - 1.
        let mut env = RangeEnv::new();
        env.set_bounds("i1", Expr::val(0), Expr::sym("n1"));
        env.set_bounds("i2", Expr::val(0), Expr::sym("n2"));
        env.assume_pos("n1");
        env.assume_pos("n2");
        let e = Expr::sym("i1") * Expr::sym("n2") + Expr::sym("i2");
        let u = env.upper_inclusive(&e);
        // (n1 - 1)*n2 + n2 - 1 expands to n1*n2 - 1.
        let expanded = crate::simplify::fixpoint_simplify(&crate::expand::distribute(&u), &env);
        let target = crate::simplify::fixpoint_simplify(
            &crate::expand::distribute(&(Expr::sym("n1") * Expr::sym("n2") - Expr::one())),
            &env,
        );
        assert_eq!(expanded, target);
    }

    #[test]
    fn range_node_bounds() {
        let env = RangeEnv::new();
        let r = Expr::range(Expr::val(0), Expr::val(64), 0, 1);
        assert_eq!(env.num_range(&r), NumRange::closed(0, 63));
    }

    #[test]
    fn min_max_ranges() {
        let mut env = RangeEnv::new();
        env.set_bounds("a", Expr::val(2), Expr::val(10));
        env.set_bounds("b", Expr::val(5), Expr::val(20));
        let mn = Expr::sym("a").min(&Expr::sym("b"));
        let mx = Expr::sym("a").max(&Expr::sym("b"));
        assert_eq!(env.num_range(&mn), NumRange::closed(2, 9));
        assert_eq!(env.num_range(&mx), NumRange::closed(5, 19));
    }
}
