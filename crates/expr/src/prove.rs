//! A lightweight decision procedure for the side conditions of the Table II
//! rewrite rules.
//!
//! The paper discharges conditions such as `d != 0`, `0 <= r < d`, and
//! `0 <= x < a` with Z3, seeded with the index ranges derived from the
//! layout specification. Every query LEGO actually issues is of one of
//! those shapes over *non-negative, structurally bounded* index arithmetic,
//! so a combination of
//!
//! 1. numeric interval arithmetic ([`crate::range::RangeEnv::num_range`]),
//! 2. structural non-negativity (sums/products/div/mod of non-negative
//!    parts), and
//! 3. symbolic upper bounds compared by expand-and-cancel
//!
//! decides them without an SMT solver. This module is that substitute; the
//! substitution is documented in `DESIGN.md` §3. The public entry points
//! are the `prove_*` methods on [`crate::Engine`]; the free functions
//! here are deprecated shims kept for migration.

use crate::expand::distribute;
use crate::expr::{Expr, ExprKind};
use crate::intern;
use crate::range::RangeEnv;
use crate::simplify::single_pass;

/// Memo discriminants for the unary proof facts.
const FACT_NONNEG: u8 = 0;
const FACT_POS: u8 = 1;

/// Proves `e >= 0`. Sound but incomplete (may return `false` for true
/// facts); never returns `true` for a falsifiable one given a sound
/// environment.
///
/// Verdicts established at recursion depth 0 — where the prover's depth
/// budget is full, making the answer a pure function of `(env, e)` —
/// are memoized for the session. Deeper (budget-truncated) queries are
/// answered fresh and never cached, so memoization can't strengthen or
/// weaken any proof.
pub(crate) fn nonneg(e: &Expr, env: &RangeEnv) -> bool {
    if at_depth0() {
        let key = (env.id(), e.id().get());
        if let Some(v) = intern::prove_unary_get(key.0, key.1, FACT_NONNEG) {
            return v;
        }
        let v = nonneg_uncached(e, env);
        intern::prove_unary_insert(key.0, key.1, FACT_NONNEG, v);
        return v;
    }
    nonneg_uncached(e, env)
}

fn nonneg_uncached(e: &Expr, env: &RangeEnv) -> bool {
    if env.num_range(e).is_nonneg() {
        return true;
    }
    let structural = match e.kind() {
        ExprKind::Add(ts) | ExprKind::Mul(ts) => ts.iter().all(|t| nonneg(t, env)),
        ExprKind::FloorDiv(a, b) => nonneg(a, env) && pos(b, env),
        ExprKind::Mod(_, d) => pos(d, env),
        ExprKind::Min(a, b) => nonneg(a, env) && nonneg(b, env),
        ExprKind::Max(a, b) => nonneg(a, env) || nonneg(b, env),
        ExprKind::Select(_, t, f) => nonneg(t, env) && nonneg(f, env),
        ExprKind::ISqrt(_) => true,
        ExprKind::Xor(a, b) => nonneg(a, env) && nonneg(b, env),
        ExprKind::Range { lo, len, .. } => nonneg(lo, env) && nonneg(len, env),
        _ => false,
    };
    structural || nonneg_factored_difference(e, env)
}

/// Proves `p - n >= 0` for a two-term sum `p + (-1)*n·…` by cancelling
/// common non-negative factors and comparing the residues, e.g.
/// `nt_m*nt_n - nt_n*max(nt_m/GM,1)*min(GM,nt_m) >= 0` reduces to the
/// grouped-layout lemma `max(x/g,1)*min(g,x) <= x`.
fn nonneg_factored_difference(e: &Expr, env: &RangeEnv) -> bool {
    let ExprKind::Add(ts) = e.kind() else {
        return false;
    };
    if ts.len() != 2 {
        return false;
    }
    // Identify the negated term.
    let (pos_t, neg) = {
        let is_neg = |t: &Expr| {
            matches!(t.kind(), ExprKind::Mul(fs)
                if fs.first().and_then(Expr::as_const) == Some(-1))
        };
        if is_neg(&ts[1]) && !is_neg(&ts[0]) {
            (&ts[0], &ts[1])
        } else if is_neg(&ts[0]) && !is_neg(&ts[1]) {
            (&ts[1], &ts[0])
        } else {
            return false;
        }
    };
    let mut pf: Vec<Expr> = match pos_t.kind() {
        ExprKind::Mul(fs) => fs.clone(),
        _ => vec![pos_t.clone()],
    };
    let ExprKind::Mul(nfs) = neg.kind() else {
        return false;
    };
    let mut nf: Vec<Expr> = nfs[1..].to_vec(); // drop the -1
                                               // Cancel common non-negative factors.
    let mut i = 0;
    while i < pf.len() {
        if let Some(j) = nf.iter().position(|f| f == &pf[i]) {
            if nonneg(&pf[i], env) {
                pf.remove(i);
                nf.remove(j);
                continue;
            }
        }
        i += 1;
    }
    let p = Expr::mul_all(pf);
    let n = Expr::mul_all(nf);
    if p == *pos_t && n.as_const() != Some(-1) && *neg == Expr::mul_all([Expr::val(-1), n.clone()])
    {
        // Nothing cancelled; avoid infinite recursion through le.
        return grouped_bound_lemma(&n, &p, env);
    }
    grouped_bound_lemma(&n, &p, env) || le(&n, &p, env)
}

/// The grouped thread-block bound: `max(x/g, 1) * min(g, x) <= x` for
/// positive `x`, `g` (both `Min`/`Max` argument orders accepted).
fn grouped_bound_lemma(a: &Expr, b: &Expr, env: &RangeEnv) -> bool {
    let ExprKind::Mul(fs) = a.kind() else {
        return false;
    };
    if fs.len() != 2 {
        return false;
    }
    let (mx, mn) = match (fs[0].kind(), fs[1].kind()) {
        (ExprKind::Max(..), ExprKind::Min(..)) => (&fs[0], &fs[1]),
        (ExprKind::Min(..), ExprKind::Max(..)) => (&fs[1], &fs[0]),
        _ => return false,
    };
    let ExprKind::Max(m1, m2) = mx.kind() else {
        return false;
    };
    let ExprKind::Min(n1, n2) = mn.kind() else {
        return false;
    };
    // One Max arm must be the literal 1, the other x/g.
    let div = if m1.is_const(1) {
        m2
    } else if m2.is_const(1) {
        m1
    } else {
        return false;
    };
    let ExprKind::FloorDiv(x, g) = div.kind() else {
        return false;
    };
    if x != b {
        return false;
    }
    let min_matches = (n1 == g && n2 == x) || (n2 == g && n1 == x);
    min_matches && pos(x, env) && pos(g, env)
}

/// Proves `e > 0`. Depth-0 verdicts are memoized (see [`nonneg`]).
pub(crate) fn pos(e: &Expr, env: &RangeEnv) -> bool {
    if at_depth0() {
        let key = (env.id(), e.id().get());
        if let Some(v) = intern::prove_unary_get(key.0, key.1, FACT_POS) {
            return v;
        }
        let v = pos_uncached(e, env);
        intern::prove_unary_insert(key.0, key.1, FACT_POS, v);
        return v;
    }
    pos_uncached(e, env)
}

fn pos_uncached(e: &Expr, env: &RangeEnv) -> bool {
    if env.num_range(e).is_pos() {
        return true;
    }
    match e.kind() {
        ExprKind::Mul(ts) => ts.iter().all(|t| pos(t, env)),
        // x/d > 0 when d | x exactly and both are positive: x = d*(x/d)
        // with x >= 1 forces x/d >= 1 (e.g. K/BK >= 1 under exact tiling).
        ExprKind::FloorDiv(x, d) => env.divides(d, x) && pos(x, env) && pos(d, env),
        ExprKind::Min(a, b) => pos(a, env) && pos(b, env),
        ExprKind::Max(a, b) => {
            (pos(a, env) && nonneg(b, env))
                || (pos(b, env) && nonneg(a, env))
                || (pos(a, env) && pos(b, env))
        }
        ExprKind::Add(ts) => {
            // A sum is positive if all terms are non-negative and at least
            // one is positive.
            ts.iter().all(|t| nonneg(t, env)) && ts.iter().any(|t| pos(t, env))
        }
        ExprKind::Select(_, t, f) => pos(t, env) && pos(f, env),
        _ => false,
    }
}

/// Proves `e != 0`.
pub(crate) fn nonzero(e: &Expr, env: &RangeEnv) -> bool {
    env.num_range(e).is_nonzero() || pos(e, env)
}

/// Proves `a < b` (strict).
///
/// Tries, in order: numeric intervals, syntactic bound matching
/// (`x % b < b`, `range(0, b) < b`, declared symbol bounds), and the
/// symbolic comparison `upper_inclusive(a) <= b - 1` checked by
/// expand-and-cancel.
pub(crate) fn lt(a: &Expr, b: &Expr, env: &RangeEnv) -> bool {
    if at_depth0() {
        let key = (env.id(), a.id().get(), b.id().get());
        if let Some(v) = intern::prove_lt_get(key.0, key.1, key.2) {
            return v;
        }
        let v = lt_uncached(a, b, env);
        intern::prove_lt_insert(key.0, key.1, key.2, v);
        return v;
    }
    lt_uncached(a, b, env)
}

fn lt_uncached(a: &Expr, b: &Expr, env: &RangeEnv) -> bool {
    // Numeric fast path.
    let (ra, rb) = (env.num_range(a), env.num_range(b));
    if let (Some(ah), Some(bl)) = (ra.hi, rb.lo) {
        if ah < bl {
            return true;
        }
    }
    // Syntactic: a is a mod by exactly b, and b > 0.
    if let ExprKind::Mod(_, d) = a.kind() {
        if d == b && pos(b, env) {
            return true;
        }
    }
    // Syntactic: a is range(0, b).
    if let ExprKind::Range { lo, len, .. } = a.kind() {
        if lo.is_const(0) && len == b {
            return true;
        }
    }
    // Declared symbol bound: a's exclusive hi is syntactically b.
    if let ExprKind::Sym(s) = a.kind() {
        if let Some(bounds) = env.bounds(s) {
            if bounds.hi.as_ref() == Some(b) {
                return true;
            }
        }
    }
    // min(x, y) < b if either side is.
    if let ExprKind::Min(x, y) = a.kind() {
        if lt(x, b, env) || lt(y, b, env) {
            return true;
        }
    }
    // x / d < b when d > 0 and x < d*b (the quotient bound used to erase
    // the unflatten div of a flatten: e.g. (pid % (g*n)) / g < n).
    if let ExprKind::FloorDiv(x, d) = a.kind() {
        if pos(d, env) {
            let prod = Expr::mul_all([d.clone(), b.clone()]);
            let ok = with_depth(|| lt(x, &prod, env));
            if ok == Some(true) {
                return true;
            }
        }
    }
    // Symbolic bound: upper_inclusive(a) <= b - 1, i.e.
    // b - 1 - upper(a) >= 0 after expansion and cancellation. The
    // normalization re-enters the simplifier, which may query the prover
    // again; a depth guard bounds that mutual recursion.
    let ua = env.upper_inclusive(a);
    let ok = with_depth(|| {
        let diff = b - Expr::one() - ua;
        let norm = single_pass(&distribute(&diff), env);
        nonneg(&norm, env)
    });
    ok == Some(true)
}

thread_local! {
    static PROVE_DEPTH: std::cell::Cell<usize> = const { std::cell::Cell::new(0) };
}

/// True when the prover's mutual recursion with the simplifier is at
/// its top level (full depth budget). Only then are proof verdicts and
/// single-pass rewrites pure functions of their inputs, so only then
/// may they be served from (or stored into) the session memo tables.
pub(crate) fn at_depth0() -> bool {
    PROVE_DEPTH.with(|d| d.get() == 0)
}

/// Runs `f` with the recursion-depth counter incremented; returns `None`
/// (give up, unproved) beyond a fixed depth.
fn with_depth<T>(f: impl FnOnce() -> T) -> Option<T> {
    PROVE_DEPTH.with(|d| {
        if d.get() >= 6 {
            return None;
        }
        d.set(d.get() + 1);
        let r = f();
        d.set(d.get() - 1);
        Some(r)
    })
}

/// Proves `a <= b`.
pub(crate) fn le(a: &Expr, b: &Expr, env: &RangeEnv) -> bool {
    if a == b {
        return true;
    }
    lt(a, &(b + Expr::one()), env) || lt(a, b, env)
}

/// Proves `0 <= x < d` — the guard of Table II rules 2, 4, and 5.
pub(crate) fn in_half_open(x: &Expr, d: &Expr, env: &RangeEnv) -> bool {
    nonneg(x, env) && lt(x, d, env)
}

/// Proves the syntactic divisibility `d | e`: every additive term of `e`
/// contains `d` as a factor (or a constant multiple of a constant `d`).
/// Returns the quotient when successful.
pub(crate) fn div_exact(e: &Expr, d: &Expr, env: &RangeEnv) -> Option<Expr> {
    if !nonzero(d, env) {
        return None;
    }
    match e.kind() {
        ExprKind::Add(ts) => {
            let mut qs = Vec::with_capacity(ts.len());
            for t in ts {
                qs.push(divide_term_env(t, d, env)?);
            }
            Some(Expr::add_all(qs))
        }
        _ => divide_term_env(e, d, env),
    }
}

/// [`divide_term`] extended with declared divisibility facts: `x` divides
/// exactly when `env` records `d | x`, with quotient `x / d`; a product
/// containing such an `x` as a factor divides likewise.
fn divide_term_env(t: &Expr, d: &Expr, env: &RangeEnv) -> Option<Expr> {
    if let Some(q) = divide_term(t, d) {
        return Some(q);
    }
    if env.divides(d, t) {
        return Some(t.floor_div(d));
    }
    if let ExprKind::Mul(fs) = t.kind() {
        if let Some(pos) = fs.iter().position(|f| env.divides(d, f)) {
            let mut rest: Vec<Expr> = Vec::with_capacity(fs.len());
            for (i, f) in fs.iter().enumerate() {
                if i == pos {
                    rest.push(f.floor_div(d));
                } else {
                    rest.push(f.clone());
                }
            }
            return Some(Expr::mul_all(rest));
        }
    }
    None
}

/// Divides a single (non-`Add`) term by `d`, if `d` appears syntactically
/// as a factor (or divides the constant coefficient for constant `d`).
/// The quotient is exact by construction: `t == d * divide_term(t, d)`
/// as integers, which is what makes the e-graph's `Factor` rule sound
/// without environment conditions.
pub(crate) fn divide_term(t: &Expr, d: &Expr) -> Option<Expr> {
    if t == d {
        return Some(Expr::one());
    }
    // Declared divisibility is handled in `div_exact`, which has the
    // environment; here only syntactic structure is inspected.
    if let (Some(tv), Some(dv)) = (t.as_const(), d.as_const()) {
        if dv != 0 && tv % dv == 0 {
            return Some(Expr::val(tv / dv));
        }
        return None;
    }
    if let ExprKind::Mul(fs) = t.kind() {
        // Remove one occurrence of `d` among the factors…
        if let Some(pos) = fs.iter().position(|f| f == d) {
            let rest: Vec<Expr> = fs
                .iter()
                .enumerate()
                .filter(|(i, _)| *i != pos)
                .map(|(_, f)| f.clone())
                .collect();
            return Some(Expr::mul_all(rest));
        }
        // …or divide the constant coefficient when `d` is constant.
        if let Some(dv) = d.as_const() {
            if dv != 0 {
                if let Some(pos) = fs
                    .iter()
                    .position(|f| f.as_const().is_some_and(|c| c % dv == 0))
                {
                    let mut rest: Vec<Expr> = Vec::with_capacity(fs.len());
                    for (i, f) in fs.iter().enumerate() {
                        if i == pos {
                            let c = f.as_const().expect("checked above");
                            rest.push(Expr::val(c / dv));
                        } else {
                            rest.push(f.clone());
                        }
                    }
                    return Some(Expr::mul_all(rest));
                }
            }
        }
    }
    None
}

// ---- deprecated free-function shims -------------------------------------

/// Proves `e >= 0`.
#[deprecated(note = "construct a `lego_expr::Engine` and call `Engine::prove_nonneg`")]
pub fn prove_nonneg(e: &Expr, env: &RangeEnv) -> bool {
    crate::engine::Engine::with_env(env.clone()).prove_nonneg(e)
}

/// Proves `e > 0`.
#[deprecated(note = "construct a `lego_expr::Engine` and call `Engine::prove_pos`")]
pub fn prove_pos(e: &Expr, env: &RangeEnv) -> bool {
    crate::engine::Engine::with_env(env.clone()).prove_pos(e)
}

/// Proves `e != 0`.
#[deprecated(note = "construct a `lego_expr::Engine` and call `Engine::prove_nonzero`")]
pub fn prove_nonzero(e: &Expr, env: &RangeEnv) -> bool {
    crate::engine::Engine::with_env(env.clone()).prove_nonzero(e)
}

/// Proves `a < b` (strict).
#[deprecated(note = "construct a `lego_expr::Engine` and call `Engine::prove_lt`")]
pub fn prove_lt(a: &Expr, b: &Expr, env: &RangeEnv) -> bool {
    crate::engine::Engine::with_env(env.clone()).prove_lt(a, b)
}

/// Proves `a <= b`.
#[deprecated(note = "construct a `lego_expr::Engine` and call `Engine::prove_le`")]
pub fn prove_le(a: &Expr, b: &Expr, env: &RangeEnv) -> bool {
    crate::engine::Engine::with_env(env.clone()).prove_le(a, b)
}

/// Proves `0 <= x < d`.
#[deprecated(note = "construct a `lego_expr::Engine` and call `Engine::prove_in_half_open`")]
pub fn prove_in_half_open(x: &Expr, d: &Expr, env: &RangeEnv) -> bool {
    crate::engine::Engine::with_env(env.clone()).prove_in_half_open(x, d)
}

/// Proves the syntactic divisibility `d | e`, returning the quotient.
#[deprecated(note = "construct a `lego_expr::Engine` and call `Engine::divide_exact`")]
pub fn divide_exact(e: &Expr, d: &Expr, env: &RangeEnv) -> Option<Expr> {
    crate::engine::Engine::with_env(env.clone()).divide_exact(e, d)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn env_idx() -> RangeEnv {
        let mut env = RangeEnv::new();
        env.set_bounds("i", Expr::val(0), Expr::sym("n"));
        env.set_bounds("j", Expr::val(0), Expr::sym("m"));
        env.assume_pos("n");
        env.assume_pos("m");
        env
    }

    #[test]
    fn nonneg_of_index_arith() {
        let env = env_idx();
        let e = Expr::sym("i") * Expr::sym("m") + Expr::sym("j");
        assert!(nonneg(&e, &env));
    }

    #[test]
    fn pos_of_product_of_sizes() {
        let env = env_idx();
        assert!(pos(&(Expr::sym("n") * Expr::sym("m")), &env));
    }

    #[test]
    fn lt_mod_divisor() {
        let env = env_idx();
        let e = Expr::sym("i").rem(&Expr::sym("m"));
        assert!(lt(&e, &Expr::sym("m"), &env));
    }

    #[test]
    fn lt_declared_bound() {
        let env = env_idx();
        assert!(lt(&Expr::sym("i"), &Expr::sym("n"), &env));
    }

    #[test]
    fn lt_flattened_index_below_product() {
        let env = env_idx();
        // i*m + j < n*m
        let e = Expr::sym("i") * Expr::sym("m") + Expr::sym("j");
        let bound = Expr::sym("n") * Expr::sym("m");
        assert!(lt(&e, &bound, &env));
    }

    #[test]
    fn lt_range_len() {
        let env = RangeEnv::new();
        let r = Expr::range(Expr::zero(), Expr::sym("BM"), 0, 2);
        assert!(lt(&r, &Expr::sym("BM"), &env));
    }

    #[test]
    fn not_provable_when_unknown() {
        let env = RangeEnv::new();
        assert!(!lt(&Expr::sym("x"), &Expr::sym("y"), &env));
        assert!(!nonneg(&Expr::sym("x"), &env));
    }

    #[test]
    fn divide_exact_extracts_quotient() {
        let env = env_idx();
        let d = Expr::sym("m");
        // m*i + 2*m  ->  i + 2
        let e = Expr::sym("m") * Expr::sym("i") + Expr::val(2) * Expr::sym("m");
        let q = div_exact(&e, &d, &env).expect("divisible");
        assert_eq!(q, Expr::sym("i") + Expr::val(2));
    }

    #[test]
    fn divide_exact_constant() {
        let mut env = RangeEnv::new();
        env.assume_pos("x");
        let e = Expr::val(6) * Expr::sym("x");
        let q = div_exact(&e, &Expr::val(3), &env).expect("divisible");
        assert_eq!(q, Expr::val(2) * Expr::sym("x"));
    }

    #[test]
    fn divide_exact_fails_on_remainder() {
        let env = env_idx();
        let e = Expr::sym("m") * Expr::sym("i") + Expr::sym("j");
        assert!(div_exact(&e, &Expr::sym("m"), &env).is_none());
    }

    #[test]
    fn in_half_open_for_mod() {
        let env = env_idx();
        let x = Expr::sym("i").rem(&Expr::sym("m"));
        assert!(in_half_open(&x, &Expr::sym("m"), &env));
    }
}
