//! Language printers turning [`Expr`](crate::Expr) trees into source text.
//!
//! Three backends mirror the paper's integrations (§IV):
//!
//! * [`python`] — plain Python and **Triton** flavours (`//`, `%`,
//!   `tl.arange` for lane ranges with broadcast suffixes);
//! * [`c`] — C/CUDA scalar expressions (`/`, `%`, ternary select);
//! * [`mlir`] — SSA emission in the `arith` dialect.

pub mod c;
pub mod mlir;
pub mod python;

/// Errors produced by the printers.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum PrintError {
    /// This backend cannot express the given node (e.g. a lane-range
    /// vector in scalar C code).
    Unsupported(&'static str),
}

impl std::fmt::Display for PrintError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PrintError::Unsupported(what) => {
                write!(f, "unsupported node for this printer: {what}")
            }
        }
    }
}

impl std::error::Error for PrintError {}
