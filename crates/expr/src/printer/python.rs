//! Python and Triton printers.
//!
//! The Triton flavour prints lane ranges as `tl.arange(lo, hi)` with
//! numpy-style broadcast suffixes (`[:, None]` / `[None, :]`), exactly as
//! in Fig. 10 of the paper; `min`/`max` print as Python builtins, which
//! Triton accepts on `constexpr` scalars.

use std::fmt::Write as _;

use crate::expr::{Cond, Expr, ExprKind};
use crate::printer::PrintError;

/// Which surface syntax to produce.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum Flavor {
    /// Plain Python (lane ranges are not supported).
    #[default]
    Python,
    /// Triton kernel Python: lane ranges become `tl.arange`.
    Triton,
}

/// Prints `e` as a Python/Triton expression string.
///
/// # Errors
///
/// Returns [`PrintError::Unsupported`] for lane ranges in the plain Python
/// flavour.
pub fn print(e: &Expr, flavor: Flavor) -> Result<String, PrintError> {
    let mut s = String::new();
    go(e, flavor, 0, &mut s)?;
    Ok(s)
}

/// Prints a condition as a Python boolean expression.
pub fn print_cond(c: &Cond, flavor: Flavor) -> Result<String, PrintError> {
    match c {
        Cond::Cmp(op, a, b) => Ok(format!(
            "{} {} {}",
            print(a, flavor)?,
            op.token(),
            print(b, flavor)?
        )),
        Cond::All(cs) => {
            let parts: Result<Vec<_>, _> = cs.iter().map(|c| print_cond(c, flavor)).collect();
            Ok(format!("({})", parts?.join(") and (")))
        }
        Cond::Any(cs) => {
            let parts: Result<Vec<_>, _> = cs.iter().map(|c| print_cond(c, flavor)).collect();
            Ok(format!("({})", parts?.join(") or (")))
        }
        Cond::Not(c) => Ok(format!("not ({})", print_cond(c, flavor)?)),
    }
}

fn prec(e: &Expr) -> u8 {
    match e.kind() {
        ExprKind::Select(..) => 0,
        ExprKind::Add(_) => 1,
        ExprKind::Mul(_) | ExprKind::FloorDiv(..) | ExprKind::Mod(..) => 2,
        ExprKind::Const(v) if *v < 0 => 2,
        _ => 3,
    }
}

fn child(e: &Expr, flavor: Flavor, parent: u8, out: &mut String) -> Result<(), PrintError> {
    if prec(e) < parent {
        out.push('(');
        go(e, flavor, 0, out)?;
        out.push(')');
        Ok(())
    } else {
        go(e, flavor, parent, out)
    }
}

fn go(e: &Expr, flavor: Flavor, _parent: u8, out: &mut String) -> Result<(), PrintError> {
    match e.kind() {
        ExprKind::Const(v) => {
            let _ = write!(out, "{v}");
            Ok(())
        }
        ExprKind::Sym(s) => {
            out.push_str(s);
            Ok(())
        }
        ExprKind::Add(ts) => {
            for (i, t) in ts.iter().enumerate() {
                if i > 0 {
                    out.push_str(" + ");
                }
                child(t, flavor, 1, out)?;
            }
            Ok(())
        }
        ExprKind::Mul(ts) => {
            for (i, t) in ts.iter().enumerate() {
                if i > 0 {
                    out.push('*');
                }
                child(t, flavor, 3, out)?;
            }
            Ok(())
        }
        ExprKind::FloorDiv(a, b) => {
            child(a, flavor, 2, out)?;
            out.push_str("//");
            child(b, flavor, 3, out)
        }
        ExprKind::Mod(a, b) => {
            child(a, flavor, 2, out)?;
            out.push_str(" % ");
            child(b, flavor, 3, out)
        }
        ExprKind::Xor(a, b) => {
            out.push('(');
            go(a, flavor, 0, out)?;
            out.push_str(" ^ ");
            go(b, flavor, 0, out)?;
            out.push(')');
            Ok(())
        }
        ExprKind::Min(a, b) => {
            out.push_str("min(");
            go(a, flavor, 0, out)?;
            out.push_str(", ");
            go(b, flavor, 0, out)?;
            out.push(')');
            Ok(())
        }
        ExprKind::Max(a, b) => {
            out.push_str("max(");
            go(a, flavor, 0, out)?;
            out.push_str(", ");
            go(b, flavor, 0, out)?;
            out.push(')');
            Ok(())
        }
        ExprKind::Select(c, t, f) => {
            out.push('(');
            go(t, flavor, 0, out)?;
            out.push_str(" if ");
            out.push_str(&print_cond(c, flavor)?);
            out.push_str(" else ");
            go(f, flavor, 0, out)?;
            out.push(')');
            Ok(())
        }
        ExprKind::ISqrt(a) => {
            match flavor {
                Flavor::Python => {
                    out.push_str("math.isqrt(");
                    go(a, flavor, 0, out)?;
                    out.push(')');
                }
                Flavor::Triton => {
                    // Triton lacks an integer sqrt; go through fp32 and
                    // truncate, matching the CUDA lowering.
                    out.push_str("tl.sqrt((");
                    go(a, flavor, 0, out)?;
                    out.push_str(").to(tl.float32)).to(tl.int32)");
                }
            }
            Ok(())
        }
        ExprKind::Range {
            lo,
            len,
            axis,
            ndims,
        } => match flavor {
            Flavor::Python => Err(PrintError::Unsupported(
                "lane range in plain Python (use the Triton flavour)",
            )),
            Flavor::Triton => {
                out.push_str("(tl.arange(");
                go(lo, flavor, 0, out)?;
                out.push_str(", ");
                let hi = lo + len;
                go(&hi, flavor, 0, out)?;
                out.push_str("))");
                out.push_str(&broadcast_suffix(*axis, *ndims));
                Ok(())
            }
        },
    }
}

/// The numpy-style broadcast suffix for a lane vector on `axis` of `ndims`,
/// e.g. `[:, None]` for axis 0 of 2.
pub fn broadcast_suffix(axis: usize, ndims: usize) -> String {
    if ndims <= 1 {
        return String::new();
    }
    let parts: Vec<&str> = (0..ndims)
        .map(|d| if d == axis { ":" } else { "None" })
        .collect();
    format!("[{}]", parts.join(", "))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simple_arith() {
        let e = Expr::sym("K") * (Expr::sym("BM") * Expr::sym("pid_m")) + Expr::sym("off");
        let s = print(&e, Flavor::Python).unwrap();
        assert_eq!(s, "BM*K*pid_m + off");
    }

    #[test]
    fn precedence_parenthesizes_sums_under_products() {
        let e = (Expr::sym("a") + Expr::sym("b")) * Expr::sym("c");
        assert_eq!(print(&e, Flavor::Python).unwrap(), "c*(a + b)");
    }

    #[test]
    fn floor_div_and_mod() {
        let e = Expr::sym("pid").floor_div(&Expr::sym("n"));
        assert_eq!(print(&e, Flavor::Python).unwrap(), "pid//n");
        let m = Expr::sym("pid").rem(&Expr::sym("n"));
        assert_eq!(print(&m, Flavor::Python).unwrap(), "pid % n");
    }

    #[test]
    fn triton_arange_broadcast() {
        let r = Expr::range(Expr::zero(), Expr::sym("BM"), 0, 2);
        let s = print(&r, Flavor::Triton).unwrap();
        assert_eq!(s, "(tl.arange(0, BM))[:, None]");
        let r1 = Expr::range(Expr::zero(), Expr::sym("BK"), 1, 2);
        assert_eq!(
            print(&r1, Flavor::Triton).unwrap(),
            "(tl.arange(0, BK))[None, :]"
        );
    }

    #[test]
    fn plain_python_rejects_ranges() {
        let r = Expr::range(Expr::zero(), Expr::val(4), 0, 1);
        assert!(print(&r, Flavor::Python).is_err());
    }

    #[test]
    fn min_max_print_as_builtins() {
        let e = Expr::sym("GM").min(&Expr::sym("nt_m"));
        assert_eq!(print(&e, Flavor::Triton).unwrap(), "min(GM, nt_m)");
    }

    #[test]
    fn select_prints_conditional_expression() {
        let e = Expr::select(
            Cond::lt(Expr::sym("x"), Expr::sym("S")),
            Expr::sym("x"),
            Expr::sym("y"),
        );
        assert_eq!(print(&e, Flavor::Python).unwrap(), "(x if x < S else y)");
    }

    #[test]
    fn negative_constants_parenthesize_in_products() {
        let e = Expr::val(-1) * Expr::sym("x");
        // -1*x must parenthesize the constant, not print as --x.
        assert_eq!(print(&e, Flavor::Python).unwrap(), "(-1)*x");
    }
}
