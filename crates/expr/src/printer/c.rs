//! C/CUDA expression printer.
//!
//! C's `/` and `%` truncate toward zero, which agrees with floor semantics
//! exactly when both operands are non-negative — which holds for every
//! index expression LEGO generates (indices and sizes are non-negative).
//! The printer therefore emits plain `/` and `%`.

use std::fmt::Write as _;

use crate::expr::{Cond, Expr, ExprKind};
use crate::printer::PrintError;

/// Prints `e` as a C/CUDA expression string.
///
/// # Errors
///
/// Returns [`PrintError::Unsupported`] for lane-range nodes: C kernels are
/// scalar per-thread, so ranges must be substituted with thread indices
/// (e.g. `threadIdx.x`) before printing.
pub fn print(e: &Expr) -> Result<String, PrintError> {
    let mut s = String::new();
    go(e, &mut s)?;
    Ok(s)
}

/// Prints a condition as a C boolean expression.
pub fn print_cond(c: &Cond) -> Result<String, PrintError> {
    match c {
        Cond::Cmp(op, a, b) => Ok(format!("{} {} {}", print(a)?, op.token(), print(b)?)),
        Cond::All(cs) => {
            let parts: Result<Vec<_>, _> = cs.iter().map(print_cond).collect();
            Ok(format!("({})", parts?.join(") && (")))
        }
        Cond::Any(cs) => {
            let parts: Result<Vec<_>, _> = cs.iter().map(print_cond).collect();
            Ok(format!("({})", parts?.join(") || (")))
        }
        Cond::Not(c) => Ok(format!("!({})", print_cond(c)?)),
    }
}

fn prec(e: &Expr) -> u8 {
    match e.kind() {
        ExprKind::Select(..) => 0,
        ExprKind::Add(_) => 1,
        ExprKind::Mul(_) | ExprKind::FloorDiv(..) | ExprKind::Mod(..) => 2,
        ExprKind::Const(v) if *v < 0 => 2,
        _ => 3,
    }
}

fn child(e: &Expr, parent: u8, out: &mut String) -> Result<(), PrintError> {
    if prec(e) < parent {
        out.push('(');
        go(e, out)?;
        out.push(')');
        Ok(())
    } else {
        go(e, out)
    }
}

fn go(e: &Expr, out: &mut String) -> Result<(), PrintError> {
    match e.kind() {
        ExprKind::Const(v) => {
            let _ = write!(out, "{v}");
            Ok(())
        }
        ExprKind::Sym(s) => {
            out.push_str(s);
            Ok(())
        }
        ExprKind::Add(ts) => {
            for (i, t) in ts.iter().enumerate() {
                if i > 0 {
                    out.push_str(" + ");
                }
                child(t, 1, out)?;
            }
            Ok(())
        }
        ExprKind::Mul(ts) => {
            for (i, t) in ts.iter().enumerate() {
                if i > 0 {
                    out.push('*');
                }
                child(t, 3, out)?;
            }
            Ok(())
        }
        ExprKind::FloorDiv(a, b) => {
            child(a, 2, out)?;
            out.push_str(" / ");
            child(b, 3, out)
        }
        ExprKind::Mod(a, b) => {
            child(a, 2, out)?;
            out.push_str(" % ");
            child(b, 3, out)
        }
        ExprKind::Xor(a, b) => {
            out.push('(');
            go(a, out)?;
            out.push_str(" ^ ");
            go(b, out)?;
            out.push(')');
            Ok(())
        }
        ExprKind::Min(a, b) => {
            out.push_str("min(");
            go(a, out)?;
            out.push_str(", ");
            go(b, out)?;
            out.push(')');
            Ok(())
        }
        ExprKind::Max(a, b) => {
            out.push_str("max(");
            go(a, out)?;
            out.push_str(", ");
            go(b, out)?;
            out.push(')');
            Ok(())
        }
        ExprKind::Select(c, t, f) => {
            out.push('(');
            out.push_str(&print_cond(c)?);
            out.push_str(" ? ");
            go(t, out)?;
            out.push_str(" : ");
            go(f, out)?;
            out.push(')');
            Ok(())
        }
        ExprKind::ISqrt(a) => {
            out.push_str("(int)floorf(sqrtf((float)(");
            go(a, out)?;
            out.push_str(")))");
            Ok(())
        }
        ExprKind::Range { .. } => Err(PrintError::Unsupported(
            "lane range in scalar C code (substitute thread indices first)",
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::CmpOp;

    #[test]
    fn arith_precedence() {
        let e = (Expr::sym("i") + Expr::sym("j")) * Expr::sym("n");
        assert_eq!(print(&e).unwrap(), "n*(i + j)");
    }

    #[test]
    fn div_mod_tokens() {
        let e = Expr::sym("x").floor_div(&Expr::val(16));
        assert_eq!(print(&e).unwrap(), "x / 16");
        let m = Expr::sym("x").rem(&Expr::val(16));
        assert_eq!(print(&m).unwrap(), "x % 16");
    }

    #[test]
    fn ternary_select() {
        let c = Cond::Cmp(CmpOp::Le, Expr::sym("d"), Expr::sym("n"));
        let e = Expr::select(c, Expr::sym("a"), Expr::sym("b"));
        assert_eq!(print(&e).unwrap(), "(d <= n ? a : b)");
    }

    #[test]
    fn isqrt_lowers_to_sqrtf() {
        let e = Expr::sym("x").isqrt();
        assert_eq!(print(&e).unwrap(), "(int)floorf(sqrtf((float)(x)))");
    }

    #[test]
    fn range_is_rejected() {
        let r = Expr::range(Expr::zero(), Expr::val(8), 0, 1);
        assert!(print(&r).is_err());
    }
}
