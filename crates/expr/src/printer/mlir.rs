//! MLIR `arith`-dialect SSA emission.
//!
//! Unlike the string printers, MLIR code is a sequence of SSA statements.
//! [`MlirEmitter`] turns an expression tree into `arith.*` operations over
//! `index` values, with common-subexpression reuse (structurally equal
//! subtrees map to the same SSA value).

use std::collections::HashMap;
use std::fmt::Write as _;

use crate::expr::{CmpOp, Cond, Expr, ExprKind};
use crate::printer::PrintError;

/// Emits `arith` dialect SSA for expression trees.
///
/// # Examples
///
/// ```
/// use lego_expr::Expr;
/// use lego_expr::printer::mlir::MlirEmitter;
/// let mut em = MlirEmitter::new();
/// em.bind_sym("i", "%i");
/// em.bind_sym("n", "%n");
/// let v = em.emit(&(Expr::sym("i") * Expr::sym("n"))).unwrap();
/// assert!(em.body().contains("arith.muli"));
/// assert!(v.starts_with('%'));
/// ```
#[derive(Debug, Default)]
pub struct MlirEmitter {
    lines: Vec<String>,
    next_id: usize,
    syms: HashMap<String, String>,
    cse: HashMap<Expr, String>,
    consts: HashMap<i64, String>,
}

impl MlirEmitter {
    /// Creates an empty emitter.
    pub fn new() -> MlirEmitter {
        MlirEmitter::default()
    }

    /// Maps a symbol name to an existing SSA value (e.g. a block argument
    /// `%arg0` or a `gpu.thread_id`).
    pub fn bind_sym(&mut self, name: &str, ssa: &str) -> &mut Self {
        self.syms.insert(name.to_string(), ssa.to_string());
        self
    }

    /// The statements emitted so far, joined by newlines.
    pub fn body(&self) -> String {
        self.lines.join("\n")
    }

    /// The statements emitted so far, one per element.
    pub fn lines(&self) -> &[String] {
        &self.lines
    }

    fn fresh(&mut self) -> String {
        let id = self.next_id;
        self.next_id += 1;
        format!("%v{id}")
    }

    fn push_op(&mut self, op: &str, a: &str, b: &str) -> String {
        let v = self.fresh();
        self.lines.push(format!("{v} = {op} {a}, {b} : index"));
        v
    }

    fn const_val(&mut self, v: i64) -> String {
        if let Some(s) = self.consts.get(&v) {
            return s.clone();
        }
        let name = format!(
            "%c{}",
            if v < 0 {
                format!("m{}", -v)
            } else {
                v.to_string()
            }
        );
        self.lines
            .push(format!("{name} = arith.constant {v} : index"));
        self.consts.insert(v, name.clone());
        name
    }

    /// Emits SSA statements computing `e`, returning the resulting value
    /// name. Structurally equal subtrees are emitted once.
    ///
    /// # Errors
    ///
    /// Returns [`PrintError::Unsupported`] for unbound symbols and lane
    /// ranges (substitute `gpu.thread_id`/`gpu.block_id` values first).
    pub fn emit(&mut self, e: &Expr) -> Result<String, PrintError> {
        if let Some(v) = self.cse.get(e) {
            return Ok(v.clone());
        }
        let v = match e.kind() {
            ExprKind::Const(v) => self.const_val(*v),
            ExprKind::Sym(s) => self
                .syms
                .get(&**s)
                .cloned()
                .ok_or(PrintError::Unsupported("unbound symbol in MLIR emission"))?,
            ExprKind::Add(ts) => {
                let mut acc = self.emit(&ts[0])?;
                for t in &ts[1..] {
                    let rhs = self.emit(t)?;
                    acc = self.push_op("arith.addi", &acc, &rhs);
                }
                acc
            }
            ExprKind::Mul(ts) => {
                let mut acc = self.emit(&ts[0])?;
                for t in &ts[1..] {
                    let rhs = self.emit(t)?;
                    acc = self.push_op("arith.muli", &acc, &rhs);
                }
                acc
            }
            ExprKind::FloorDiv(a, b) => {
                let (a, b) = (self.emit(a)?, self.emit(b)?);
                // Operands are non-negative in LEGO-generated indexing, so
                // signed division matches floor division.
                self.push_op("arith.divsi", &a, &b)
            }
            ExprKind::Mod(a, b) => {
                let (a, b) = (self.emit(a)?, self.emit(b)?);
                self.push_op("arith.remsi", &a, &b)
            }
            ExprKind::Min(a, b) => {
                let (a, b) = (self.emit(a)?, self.emit(b)?);
                self.push_op("arith.minsi", &a, &b)
            }
            ExprKind::Max(a, b) => {
                let (a, b) = (self.emit(a)?, self.emit(b)?);
                self.push_op("arith.maxsi", &a, &b)
            }
            ExprKind::Xor(a, b) => {
                let (a, b) = (self.emit(a)?, self.emit(b)?);
                self.push_op("arith.xori", &a, &b)
            }
            ExprKind::Select(c, t, f) => {
                let cv = self.emit_cond(c)?;
                let (tv, fv) = (self.emit(t)?, self.emit(f)?);
                let v = self.fresh();
                self.lines
                    .push(format!("{v} = arith.select {cv}, {tv}, {fv} : index"));
                v
            }
            ExprKind::ISqrt(a) => {
                let av = self.emit(a)?;
                let (f, s, r) = (self.fresh(), self.fresh(), self.fresh());
                self.lines
                    .push(format!("{f} = arith.index_cast {av} : index to i64"));
                let g = self.fresh();
                self.lines
                    .push(format!("{g} = arith.sitofp {f} : i64 to f64"));
                self.lines.push(format!("{s} = math.sqrt {g} : f64"));
                let h = self.fresh();
                self.lines
                    .push(format!("{h} = arith.fptosi {s} : f64 to i64"));
                self.lines
                    .push(format!("{r} = arith.index_cast {h} : i64 to index"));
                r
            }
            ExprKind::Range { .. } => {
                return Err(PrintError::Unsupported(
                    "lane range in MLIR scalar emission",
                ));
            }
        };
        self.cse.insert(e.clone(), v.clone());
        Ok(v)
    }

    /// Emits a condition, returning the `i1` SSA value name.
    ///
    /// # Errors
    ///
    /// Same as [`MlirEmitter::emit`].
    pub fn emit_cond(&mut self, c: &Cond) -> Result<String, PrintError> {
        match c {
            Cond::Cmp(op, a, b) => {
                let (av, bv) = (self.emit(a)?, self.emit(b)?);
                let pred = match op {
                    CmpOp::Lt => "slt",
                    CmpOp::Le => "sle",
                    CmpOp::Eq => "eq",
                    CmpOp::Ne => "ne",
                    CmpOp::Gt => "sgt",
                    CmpOp::Ge => "sge",
                };
                let v = self.fresh();
                self.lines
                    .push(format!("{v} = arith.cmpi {pred}, {av}, {bv} : index"));
                Ok(v)
            }
            Cond::All(cs) => self.fold_bool(cs, "arith.andi", true),
            Cond::Any(cs) => self.fold_bool(cs, "arith.ori", false),
            Cond::Not(c) => {
                let cv = self.emit_cond(c)?;
                let t = self.fresh();
                self.lines.push(format!("{t} = arith.constant true"));
                let v = self.fresh();
                self.lines.push(format!("{v} = arith.xori {cv}, {t} : i1"));
                Ok(v)
            }
        }
    }

    fn fold_bool(&mut self, cs: &[Cond], op: &str, empty: bool) -> Result<String, PrintError> {
        if cs.is_empty() {
            let v = self.fresh();
            let mut line = String::new();
            let _ = write!(line, "{v} = arith.constant {empty}");
            self.lines.push(line);
            return Ok(v);
        }
        let mut acc = self.emit_cond(&cs[0])?;
        for c in &cs[1..] {
            let rhs = self.emit_cond(c)?;
            let v = self.fresh();
            self.lines.push(format!("{v} = {op} {acc}, {rhs} : i1"));
            acc = v;
        }
        Ok(acc)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn emits_add_mul_chain() {
        let mut em = MlirEmitter::new();
        em.bind_sym("i", "%i");
        em.bind_sym("j", "%j");
        em.bind_sym("n", "%n");
        let e = Expr::sym("i") * Expr::sym("n") + Expr::sym("j");
        let v = em.emit(&e).unwrap();
        let body = em.body();
        assert!(body.contains("arith.muli %i, %n"));
        assert!(body.contains("arith.addi"));
        assert!(v.starts_with("%v"));
    }

    #[test]
    fn cse_reuses_subtrees() {
        let mut em = MlirEmitter::new();
        em.bind_sym("x", "%x");
        let sub = Expr::sym("x") * Expr::sym("x");
        let e = &sub + &sub;
        em.emit(&e).unwrap();
        let muls = em.body().matches("arith.muli").count();
        assert_eq!(muls, 1, "x*x should be emitted once");
    }

    #[test]
    fn constants_are_deduplicated() {
        let mut em = MlirEmitter::new();
        em.bind_sym("x", "%x");
        let e = Expr::sym("x").rem(&Expr::val(32)) + Expr::sym("x").floor_div(&Expr::val(32));
        em.emit(&e).unwrap();
        let consts = em.body().matches("arith.constant 32").count();
        assert_eq!(consts, 1);
    }

    #[test]
    fn unbound_symbol_errors() {
        let mut em = MlirEmitter::new();
        assert!(em.emit(&Expr::sym("ghost")).is_err());
    }

    #[test]
    fn select_and_cmp() {
        let mut em = MlirEmitter::new();
        em.bind_sym("a", "%a");
        em.bind_sym("b", "%b");
        let e = Expr::select(
            Cond::lt(Expr::sym("a"), Expr::sym("b")),
            Expr::sym("a"),
            Expr::sym("b"),
        );
        em.emit(&e).unwrap();
        let body = em.body();
        assert!(body.contains("arith.cmpi slt"));
        assert!(body.contains("arith.select"));
    }
}
