//! Substitution and concrete evaluation of expressions.

use std::collections::HashMap;

use crate::expr::{isqrt64, Cond, Expr, ExprKind};

/// A binding of symbol names to concrete integer values.
pub type Bindings = HashMap<String, i64>;

/// Errors produced by [`eval`].
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum EvalError {
    /// A free symbol had no binding.
    UnboundSymbol(String),
    /// A division or modulo by zero was encountered.
    DivisionByZero,
    /// `isqrt` of a negative value.
    NegativeSqrt(i64),
    /// A `Range` lane vector cannot be evaluated to a single scalar.
    RangeNotScalar,
}

impl std::fmt::Display for EvalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EvalError::UnboundSymbol(s) => write!(f, "unbound symbol `{s}`"),
            EvalError::DivisionByZero => write!(f, "division by zero"),
            EvalError::NegativeSqrt(v) => write!(f, "isqrt of negative value {v}"),
            EvalError::RangeNotScalar => {
                write!(f, "lane range cannot evaluate to a scalar")
            }
        }
    }
}

impl std::error::Error for EvalError {}

/// Evaluates `e` to a concrete integer under `bind`.
///
/// Division and modulo use floor semantics (`div_euclid`/`rem_euclid` for
/// positive divisors), matching Python and the Triton/C code LEGO emits for
/// non-negative operands.
///
/// `Range` nodes evaluate as their *lane 0* would only if you substitute the
/// lane first; a bare `Range` is an error ([`EvalError::RangeNotScalar`]) —
/// use [`eval_lane`] to pick a lane.
///
/// # Errors
///
/// Returns an error for unbound symbols, division by zero, negative square
/// roots, and un-substituted lane ranges.
pub fn eval(e: &Expr, bind: &Bindings) -> Result<i64, EvalError> {
    match e.kind() {
        ExprKind::Const(v) => Ok(*v),
        ExprKind::Sym(s) => bind
            .get(&**s)
            .copied()
            .ok_or_else(|| EvalError::UnboundSymbol(s.to_string())),
        ExprKind::Add(ts) => {
            let mut acc = 0i64;
            for t in ts {
                acc += eval(t, bind)?;
            }
            Ok(acc)
        }
        ExprKind::Mul(ts) => {
            let mut acc = 1i64;
            for t in ts {
                acc *= eval(t, bind)?;
            }
            Ok(acc)
        }
        ExprKind::FloorDiv(a, b) => {
            let (a, b) = (eval(a, bind)?, eval(b, bind)?);
            if b == 0 {
                return Err(EvalError::DivisionByZero);
            }
            Ok(a.div_euclid(b))
        }
        ExprKind::Mod(a, b) => {
            let (a, b) = (eval(a, bind)?, eval(b, bind)?);
            if b == 0 {
                return Err(EvalError::DivisionByZero);
            }
            Ok(a.rem_euclid(b))
        }
        ExprKind::Min(a, b) => Ok(eval(a, bind)?.min(eval(b, bind)?)),
        ExprKind::Max(a, b) => Ok(eval(a, bind)?.max(eval(b, bind)?)),
        ExprKind::Xor(a, b) => Ok(eval(a, bind)? ^ eval(b, bind)?),
        ExprKind::Select(c, t, f) => {
            if eval_cond(c, bind)? {
                eval(t, bind)
            } else {
                eval(f, bind)
            }
        }
        ExprKind::ISqrt(a) => {
            let v = eval(a, bind)?;
            if v < 0 {
                return Err(EvalError::NegativeSqrt(v));
            }
            Ok(isqrt64(v))
        }
        ExprKind::Range { .. } => Err(EvalError::RangeNotScalar),
    }
}

/// Evaluates a condition to a boolean under `bind`.
///
/// # Errors
///
/// Propagates any [`EvalError`] from the operand expressions.
pub fn eval_cond(c: &Cond, bind: &Bindings) -> Result<bool, EvalError> {
    match c {
        Cond::Cmp(op, a, b) => Ok(op.eval(eval(a, bind)?, eval(b, bind)?)),
        Cond::All(cs) => {
            for c in cs {
                if !eval_cond(c, bind)? {
                    return Ok(false);
                }
            }
            Ok(true)
        }
        Cond::Any(cs) => {
            for c in cs {
                if eval_cond(c, bind)? {
                    return Ok(true);
                }
            }
            Ok(false)
        }
        Cond::Not(c) => Ok(!eval_cond(c, bind)?),
    }
}

/// Evaluates `e` after replacing every `Range` node with the value of one
/// of its lanes: `lane_of(axis)` gives the lane index selected on each
/// broadcast axis.
///
/// # Errors
///
/// Same as [`eval`].
pub fn eval_lane(
    e: &Expr,
    bind: &Bindings,
    lane_of: &dyn Fn(usize) -> i64,
) -> Result<i64, EvalError> {
    let substituted = map_ranges(e, &|lo, _len, axis, _nd| {
        lo.clone() + Expr::val(lane_of(axis))
    });
    eval(&substituted, bind)
}

/// Replaces each `Range { lo, len, axis, ndims }` node by `f(lo, len, axis,
/// ndims)`, recursively.
pub fn map_ranges(e: &Expr, f: &dyn Fn(&Expr, &Expr, usize, usize) -> Expr) -> Expr {
    transform(e, &|node| match node.kind() {
        ExprKind::Range {
            lo,
            len,
            axis,
            ndims,
        } => Some(f(lo, len, *axis, *ndims)),
        _ => None,
    })
}

/// Substitutes symbols by expressions, bottom-up.
pub fn subst(e: &Expr, map: &HashMap<String, Expr>) -> Expr {
    transform(e, &|node| match node.kind() {
        ExprKind::Sym(s) => map.get(&**s).cloned(),
        _ => None,
    })
}

/// Generic bottom-up rewrite: children are rewritten first, then `f` may
/// replace the rebuilt node (return `None` to keep it).
pub fn transform(e: &Expr, f: &dyn Fn(&Expr) -> Option<Expr>) -> Expr {
    let rebuilt = match e.kind() {
        ExprKind::Const(_) | ExprKind::Sym(_) => e.clone(),
        ExprKind::Add(ts) => Expr::add_all(ts.iter().map(|t| transform(t, f))),
        ExprKind::Mul(ts) => Expr::mul_all(ts.iter().map(|t| transform(t, f))),
        ExprKind::FloorDiv(a, b) => transform(a, f).floor_div(&transform(b, f)),
        ExprKind::Mod(a, b) => transform(a, f).rem(&transform(b, f)),
        ExprKind::Min(a, b) => transform(a, f).min(&transform(b, f)),
        ExprKind::Max(a, b) => transform(a, f).max(&transform(b, f)),
        ExprKind::Xor(a, b) => transform(a, f).xor(&transform(b, f)),
        ExprKind::Select(c, t, el) => {
            Expr::select(transform_cond(c, f), transform(t, f), transform(el, f))
        }
        ExprKind::ISqrt(a) => transform(a, f).isqrt(),
        ExprKind::Range {
            lo,
            len,
            axis,
            ndims,
        } => Expr::range(transform(lo, f), transform(len, f), *axis, *ndims),
    };
    f(&rebuilt).unwrap_or(rebuilt)
}

/// Rewrites the expressions inside a condition with `f` (see [`transform`]).
pub fn transform_cond(c: &Cond, f: &dyn Fn(&Expr) -> Option<Expr>) -> Cond {
    match c {
        Cond::Cmp(op, a, b) => Cond::Cmp(*op, transform(a, f), transform(b, f)),
        Cond::All(cs) => Cond::All(cs.iter().map(|c| transform_cond(c, f)).collect()),
        Cond::Any(cs) => Cond::Any(cs.iter().map(|c| transform_cond(c, f)).collect()),
        Cond::Not(c) => Cond::Not(Box::new(transform_cond(c, f))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn b(pairs: &[(&str, i64)]) -> Bindings {
        pairs.iter().map(|(k, v)| (k.to_string(), *v)).collect()
    }

    #[test]
    fn eval_basic_arith() {
        let e = Expr::sym("a") * Expr::sym("b") + Expr::val(5);
        assert_eq!(eval(&e, &b(&[("a", 3), ("b", 4)])).unwrap(), 17);
    }

    #[test]
    fn eval_floor_semantics() {
        let e = Expr::sym("a").floor_div(&Expr::val(4));
        assert_eq!(eval(&e, &b(&[("a", -1)])).unwrap(), -1);
        let m = Expr::sym("a").rem(&Expr::val(4));
        assert_eq!(eval(&m, &b(&[("a", -1)])).unwrap(), 3);
    }

    #[test]
    fn eval_unbound_symbol_errors() {
        let e = Expr::sym("zzz");
        assert_eq!(
            eval(&e, &b(&[])),
            Err(EvalError::UnboundSymbol("zzz".into()))
        );
    }

    #[test]
    fn eval_division_by_zero_errors() {
        let e = Expr::sym("a").floor_div(&Expr::sym("d"));
        assert_eq!(
            eval(&e, &b(&[("a", 1), ("d", 0)])),
            Err(EvalError::DivisionByZero)
        );
    }

    #[test]
    fn eval_select() {
        let c = Cond::lt(Expr::sym("x"), Expr::val(10));
        let e = Expr::select(c, Expr::val(1), Expr::val(2));
        assert_eq!(eval(&e, &b(&[("x", 5)])).unwrap(), 1);
        assert_eq!(eval(&e, &b(&[("x", 15)])).unwrap(), 2);
    }

    #[test]
    fn subst_replaces_symbols() {
        let e = Expr::sym("x") + Expr::sym("y");
        let mut m = HashMap::new();
        m.insert("x".to_string(), Expr::val(2) * Expr::sym("y"));
        let r = subst(&e, &m);
        assert_eq!(eval(&r, &b(&[("y", 5)])).unwrap(), 15);
    }

    #[test]
    fn eval_lane_substitutes_ranges() {
        // lo=0, len=8 on axis 0; pick lane 3.
        let r = Expr::range(Expr::zero(), Expr::val(8), 0, 1);
        let e = Expr::sym("base") + r;
        let v = eval_lane(&e, &b(&[("base", 100)]), &|_| 3).unwrap();
        assert_eq!(v, 103);
    }

    #[test]
    fn eval_min_max() {
        let e = Expr::sym("a").min(&Expr::sym("b")).max(&Expr::val(0));
        assert_eq!(eval(&e, &b(&[("a", -5), ("b", 3)])).unwrap(), 0);
        assert_eq!(eval(&e, &b(&[("a", 5), ("b", 3)])).unwrap(), 3);
    }
}
