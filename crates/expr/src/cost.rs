//! The arithmetic-operation cost model.
//!
//! §IV-A: "we use a simple cost model that counts operations in the
//! generated expression and selects the variant with the lowest count,
//! choosing the unexpanded form for NW and the expanded form for LUD."
//! [`pick_cheaper`] implements exactly that selection, and [`op_count`]
//! is also what Table IV reports (arithmetic ops in user-visible code).

use crate::expand::expand;
use crate::expr::{Cond, Expr, ExprKind};
use crate::intern;
use crate::range::RangeEnv;
use crate::simplify::simplify;

/// Counts arithmetic operations in an expression: each n-ary sum/product
/// contributes `n-1`, every division/modulo/min/max/select/isqrt counts 1,
/// and comparisons inside conditions count 1 each. Leaves are free.
/// Counts are memoized per interned node for the session.
pub fn op_count(e: &Expr) -> usize {
    let id = e.id().get();
    if let Some(n) = intern::opcount_get(id) {
        return n;
    }
    let n = op_count_uncached(e);
    intern::opcount_insert(id, n);
    n
}

fn op_count_uncached(e: &Expr) -> usize {
    match e.kind() {
        ExprKind::Const(_) | ExprKind::Sym(_) => 0,
        ExprKind::Add(ts) | ExprKind::Mul(ts) => {
            ts.len() - 1 + ts.iter().map(op_count).sum::<usize>()
        }
        ExprKind::FloorDiv(a, b) | ExprKind::Mod(a, b) => 1 + op_count(a) + op_count(b),
        ExprKind::Min(a, b) | ExprKind::Max(a, b) | ExprKind::Xor(a, b) => {
            1 + op_count(a) + op_count(b)
        }
        ExprKind::Select(c, t, f) => 1 + cond_op_count(c) + op_count(t) + op_count(f),
        ExprKind::ISqrt(a) => 1 + op_count(a),
        // A lane range is materialized by one `arange`; its bounds may
        // still contain arithmetic.
        ExprKind::Range { lo, len, .. } => op_count(lo) + op_count(len),
    }
}

/// Operation count of a condition (each comparison costs 1).
pub fn cond_op_count(c: &Cond) -> usize {
    match c {
        Cond::Cmp(_, a, b) => 1 + op_count(a) + op_count(b),
        Cond::All(cs) | Cond::Any(cs) => cs.iter().map(cond_op_count).sum(),
        Cond::Not(c) => cond_op_count(c),
    }
}

/// Which simplification strategy won in [`pick_cheaper`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Variant {
    /// The expression was simplified without pre-expansion (NW-style).
    Unexpanded,
    /// The expression was expanded before simplification (LUD-style).
    Expanded,
}

/// The result of cost-based variant selection.
#[derive(Clone, Debug)]
pub struct CostChoice {
    /// The selected (cheaper) expression.
    pub expr: Expr,
    /// Which variant won.
    pub variant: Variant,
    /// Op count of the unexpanded-then-simplified variant.
    pub unexpanded_ops: usize,
    /// Op count of the expanded-then-simplified variant.
    pub expanded_ops: usize,
}

/// Simplifies `e` both ways — directly, and after full expansion — and
/// returns the variant with the lower operation count (ties prefer the
/// unexpanded form, which tends to preserve factored structure).
pub fn pick_cheaper(e: &Expr, env: &RangeEnv) -> CostChoice {
    let plain = simplify(e, env);
    let expanded = simplify(&expand(e), env);
    let (pc, ec) = (op_count(&plain), op_count(&expanded));
    if ec < pc {
        CostChoice {
            expr: expanded,
            variant: Variant::Expanded,
            unexpanded_ops: pc,
            expanded_ops: ec,
        }
    } else {
        CostChoice {
            expr: plain,
            variant: Variant::Unexpanded,
            unexpanded_ops: pc,
            expanded_ops: ec,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn leaf_costs_zero() {
        assert_eq!(op_count(&Expr::sym("x")), 0);
        assert_eq!(op_count(&Expr::val(3)), 0);
    }

    #[test]
    fn nary_counts_n_minus_one() {
        let e = Expr::sym("a") + Expr::sym("b") + Expr::sym("c");
        assert_eq!(op_count(&e), 2);
        let m = Expr::sym("a") * Expr::sym("b") * Expr::sym("c");
        assert_eq!(op_count(&m), 2);
    }

    #[test]
    fn div_mod_count_one() {
        let e = Expr::sym("a").floor_div(&Expr::sym("b"));
        assert_eq!(op_count(&e), 1);
        let m = Expr::sym("a").rem(&Expr::sym("b"));
        assert_eq!(op_count(&m), 1);
    }

    #[test]
    fn pick_cheaper_prefers_factored_on_tie() {
        let env = RangeEnv::new();
        let e = Expr::sym("a") * (Expr::sym("b") + Expr::sym("c"));
        let choice = pick_cheaper(&e, &env);
        assert_eq!(choice.variant, Variant::Unexpanded);
        assert_eq!(choice.unexpanded_ops, 2);
        assert_eq!(choice.expanded_ops, 3);
    }

    #[test]
    fn pick_cheaper_takes_expansion_when_it_cancels() {
        // a*(x + 1) - a*x collapses to a only after expansion.
        let env = RangeEnv::new();
        let a = Expr::sym("a");
        let x = Expr::sym("x");
        let e = &a * (&x + Expr::one()) - &a * &x;
        let choice = pick_cheaper(&e, &env);
        assert_eq!(choice.variant, Variant::Expanded);
        assert_eq!(choice.expr, a);
        assert_eq!(choice.expanded_ops, 0);
    }
}
