//! The arithmetic-operation cost model.
//!
//! §IV-A: "we use a simple cost model that counts operations in the
//! generated expression and selects the variant with the lowest count,
//! choosing the unexpanded form for NW and the expanded form for LUD."
//! [`crate::Engine::pick_cheaper`] implements exactly that selection,
//! and [`crate::Engine::op_count`] is also what Table IV reports
//! (arithmetic ops in user-visible code). The e-graph saturation engine
//! extracts by the same count.

use crate::expr::{Cond, Expr, ExprKind};
use crate::intern;
use crate::range::RangeEnv;

/// Counts arithmetic operations in an expression: each n-ary sum/product
/// contributes `n-1`, every division/modulo/min/max/select/isqrt counts 1,
/// and comparisons inside conditions count 1 each. Leaves are free.
/// Counts are memoized per interned node for the session.
pub(crate) fn ops(e: &Expr) -> usize {
    let id = e.id().get();
    if let Some(n) = intern::opcount_get(id) {
        return n;
    }
    let n = ops_uncached(e);
    intern::opcount_insert(id, n);
    n
}

fn ops_uncached(e: &Expr) -> usize {
    match e.kind() {
        ExprKind::Const(_) | ExprKind::Sym(_) => 0,
        ExprKind::Add(ts) | ExprKind::Mul(ts) => ts.len() - 1 + ts.iter().map(ops).sum::<usize>(),
        ExprKind::FloorDiv(a, b) | ExprKind::Mod(a, b) => 1 + ops(a) + ops(b),
        ExprKind::Min(a, b) | ExprKind::Max(a, b) | ExprKind::Xor(a, b) => 1 + ops(a) + ops(b),
        ExprKind::Select(c, t, f) => 1 + cond_op_count(c) + ops(t) + ops(f),
        ExprKind::ISqrt(a) => 1 + ops(a),
        // A lane range is materialized by one `arange`; its bounds may
        // still contain arithmetic.
        ExprKind::Range { lo, len, .. } => ops(lo) + ops(len),
    }
}

/// Counts arithmetic operations in an expression.
#[deprecated(note = "construct a `lego_expr::Engine` and call `Engine::op_count`")]
pub fn op_count(e: &Expr) -> usize {
    crate::engine::Engine::new().op_count(e)
}

/// Operation count of a condition (each comparison costs 1).
pub fn cond_op_count(c: &Cond) -> usize {
    match c {
        Cond::Cmp(_, a, b) => 1 + ops(a) + ops(b),
        Cond::All(cs) | Cond::Any(cs) => cs.iter().map(cond_op_count).sum(),
        Cond::Not(c) => cond_op_count(c),
    }
}

/// Which simplification strategy won in
/// [`crate::Engine::pick_cheaper`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Variant {
    /// The expression was simplified without pre-expansion (NW-style).
    Unexpanded,
    /// The expression was expanded before simplification (LUD-style).
    Expanded,
}

/// The result of cost-based variant selection.
#[derive(Clone, Debug)]
pub struct CostChoice {
    /// The selected (cheaper) expression.
    pub expr: Expr,
    /// Which variant won.
    pub variant: Variant,
    /// Op count of the unexpanded-then-simplified variant.
    pub unexpanded_ops: usize,
    /// Op count of the expanded-then-simplified variant.
    pub expanded_ops: usize,
}

/// Selects between the simplified unexpanded form `plain` and the
/// simplified expanded form `expanded` by op count (ties prefer the
/// unexpanded form, which tends to preserve factored structure).
pub(crate) fn choose(plain: Expr, expanded: Expr) -> CostChoice {
    let (pc, ec) = (ops(&plain), ops(&expanded));
    if ec < pc {
        CostChoice {
            expr: expanded,
            variant: Variant::Expanded,
            unexpanded_ops: pc,
            expanded_ops: ec,
        }
    } else {
        CostChoice {
            expr: plain,
            variant: Variant::Unexpanded,
            unexpanded_ops: pc,
            expanded_ops: ec,
        }
    }
}

/// Simplifies `e` both ways — directly, and after full expansion — and
/// returns the variant with the lower operation count.
#[deprecated(note = "construct a `lego_expr::Engine` and call `Engine::pick_cheaper`")]
pub fn pick_cheaper(e: &Expr, env: &RangeEnv) -> CostChoice {
    crate::engine::Engine::with_env(env.clone()).pick_cheaper(e)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Engine;

    #[test]
    fn leaf_costs_zero() {
        assert_eq!(ops(&Expr::sym("x")), 0);
        assert_eq!(ops(&Expr::val(3)), 0);
    }

    #[test]
    fn nary_counts_n_minus_one() {
        let e = Expr::sym("a") + Expr::sym("b") + Expr::sym("c");
        assert_eq!(ops(&e), 2);
        let m = Expr::sym("a") * Expr::sym("b") * Expr::sym("c");
        assert_eq!(ops(&m), 2);
    }

    #[test]
    fn div_mod_count_one() {
        let e = Expr::sym("a").floor_div(&Expr::sym("b"));
        assert_eq!(ops(&e), 1);
        let m = Expr::sym("a").rem(&Expr::sym("b"));
        assert_eq!(ops(&m), 1);
    }

    #[test]
    fn pick_cheaper_prefers_factored_on_tie() {
        let eng = Engine::new();
        let e = Expr::sym("a") * (Expr::sym("b") + Expr::sym("c"));
        let choice = eng.pick_cheaper(&e);
        assert_eq!(choice.variant, Variant::Unexpanded);
        assert_eq!(choice.unexpanded_ops, 2);
        assert_eq!(choice.expanded_ops, 3);
    }

    #[test]
    fn pick_cheaper_takes_expansion_when_it_cancels() {
        // a*(x + 1) - a*x collapses to a only after expansion.
        let eng = Engine::new();
        let a = Expr::sym("a");
        let x = Expr::sym("x");
        let e = &a * (&x + Expr::one()) - &a * &x;
        let choice = eng.pick_cheaper(&e);
        assert_eq!(choice.variant, Variant::Expanded);
        assert_eq!(choice.expr, a);
        assert_eq!(choice.expanded_ops, 0);
    }
}
