//! The hash-consing expression arena and the session memo tables.
//!
//! Every [`Expr`] is interned on construction: structurally identical
//! subtrees resolve to the *same* node (same [`ExprId`], same
//! allocation), so equality is usually a single integer compare and the
//! rewrite passes can memoize their results per node id. The arena is
//! thread-local and lock-free; node ids are drawn from one global
//! atomic counter, so an id names the same structure on every thread
//! and memo entries can never collide across threads. An `Expr` that
//! crosses a thread boundary stays fully usable — the receiving
//! thread's arena simply doesn't know it yet, so a structural duplicate
//! built there gets a fresh id and the (structural-hash-accelerated)
//! deep comparison in `Expr::eq` still answers correctly.
//!
//! The memo tables cache the expensive passes per `(environment id,
//! node id)`:
//!
//! * [`crate::simplify()`] — full fixpoint results *and* single-pass
//!   results (so shared subtrees across different candidate expressions
//!   simplify once per tuning session),
//! * [`crate::range::RangeEnv::num_range`] — interval analysis,
//! * `prove_nonneg` / `prove_pos` / `prove_lt` facts (only those
//!   established at recursion depth 0, where the prover's depth budget
//!   is full and the answer is a pure function of the query),
//! * [`crate::op_count`] and [`crate::expand()`] — environment-free,
//!   keyed by node id alone.
//!
//! [`ArenaStats`] exposes hit/miss counters for all of the above; the
//! `tuner-bench` binary reports them per workload in
//! `BENCH_tuner.json`.

use std::cell::{Cell, RefCell};
use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

use crate::expr::{Cond, Expr, ExprKind};
use crate::range::NumRange;

/// The stable identity of an interned expression node.
///
/// Ids are unique per structure *within a thread's arena* and unique
/// across threads by construction (one global counter), so they are
/// safe keys for session-lifetime memo tables. They are **not** stable
/// across processes — never persist them.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct ExprId(pub(crate) u64);

impl ExprId {
    /// The raw id value (for diagnostics and memo keys).
    pub fn get(self) -> u64 {
        self.0
    }
}

impl fmt::Display for ExprId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

/// Global id allocator: one `fetch_add` per *new* node (interner misses
/// only), so ids are globally unique without a global lock on the
/// construction hot path.
static NEXT_NODE_ID: AtomicU64 = AtomicU64::new(1);

/// Global allocator for [`crate::range::RangeEnv`] identities.
static NEXT_ENV_ID: AtomicU64 = AtomicU64::new(1);

pub(crate) fn fresh_node_id() -> u64 {
    NEXT_NODE_ID.fetch_add(1, Ordering::Relaxed)
}

/// Hit/miss counters of the arena and every memo table, as observed by
/// the current thread. All counters are monotone; rates are computed by
/// the consumer (`tuner-bench`).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ArenaStats {
    /// Unique nodes currently interned.
    pub nodes: u64,
    /// Constructions answered by an existing node.
    pub intern_hits: u64,
    /// Constructions that allocated a new node.
    pub intern_misses: u64,
    /// Full `simplify` fixpoint results served from memo.
    pub simplify_hits: u64,
    /// Full `simplify` fixpoint results computed.
    pub simplify_misses: u64,
    /// Single-pass rewrite results served from memo.
    pub pass_hits: u64,
    /// Single-pass rewrite results computed.
    pub pass_misses: u64,
    /// `op_count` lookups served from memo.
    pub opcount_hits: u64,
    /// `op_count` values computed.
    pub opcount_misses: u64,
    /// `num_range` lookups served from memo.
    pub range_hits: u64,
    /// `num_range` values computed.
    pub range_misses: u64,
    /// Depth-0 prover facts served from memo.
    pub prove_hits: u64,
    /// Depth-0 prover facts computed.
    pub prove_misses: u64,
    /// `expand` results served from memo.
    pub expand_hits: u64,
    /// `expand` results computed.
    pub expand_misses: u64,
    /// Saturation (e-graph) results served from memo.
    pub saturate_hits: u64,
    /// Saturation (e-graph) results computed.
    pub saturate_misses: u64,
    /// Memo entries installed from a persistent sidecar
    /// ([`crate::sidecar`]) rather than derived this session.
    pub sidecar_installed: u64,
    /// Memo hits served by sidecar-installed entries (a subset of the
    /// per-table hit counters above, broken out so consumers can see
    /// how much a warm start is worth).
    pub sidecar_hits: u64,
}

impl ArenaStats {
    /// Total memo hits across all pass tables (everything except the
    /// interner itself).
    pub fn memo_hits(&self) -> u64 {
        self.simplify_hits
            + self.pass_hits
            + self.opcount_hits
            + self.range_hits
            + self.prove_hits
            + self.expand_hits
            + self.saturate_hits
    }

    /// Total memo misses across all pass tables.
    pub fn memo_misses(&self) -> u64 {
        self.simplify_misses
            + self.pass_misses
            + self.opcount_misses
            + self.range_misses
            + self.prove_misses
            + self.expand_misses
            + self.saturate_misses
    }

    /// Counter-wise difference `self - earlier` (for per-phase deltas).
    /// Saturating on every field, so a snapshot taken before a
    /// [`reset_memos`] (which zeroes the counters) yields zeros instead
    /// of underflowing.
    #[must_use]
    pub fn since(&self, earlier: &ArenaStats) -> ArenaStats {
        ArenaStats {
            nodes: self.nodes.saturating_sub(earlier.nodes),
            intern_hits: self.intern_hits.saturating_sub(earlier.intern_hits),
            intern_misses: self.intern_misses.saturating_sub(earlier.intern_misses),
            simplify_hits: self.simplify_hits.saturating_sub(earlier.simplify_hits),
            simplify_misses: self.simplify_misses.saturating_sub(earlier.simplify_misses),
            pass_hits: self.pass_hits.saturating_sub(earlier.pass_hits),
            pass_misses: self.pass_misses.saturating_sub(earlier.pass_misses),
            opcount_hits: self.opcount_hits.saturating_sub(earlier.opcount_hits),
            opcount_misses: self.opcount_misses.saturating_sub(earlier.opcount_misses),
            range_hits: self.range_hits.saturating_sub(earlier.range_hits),
            range_misses: self.range_misses.saturating_sub(earlier.range_misses),
            prove_hits: self.prove_hits.saturating_sub(earlier.prove_hits),
            prove_misses: self.prove_misses.saturating_sub(earlier.prove_misses),
            expand_hits: self.expand_hits.saturating_sub(earlier.expand_hits),
            expand_misses: self.expand_misses.saturating_sub(earlier.expand_misses),
            saturate_hits: self.saturate_hits.saturating_sub(earlier.saturate_hits),
            saturate_misses: self.saturate_misses.saturating_sub(earlier.saturate_misses),
            sidecar_installed: self
                .sidecar_installed
                .saturating_sub(earlier.sidecar_installed),
            sidecar_hits: self.sidecar_hits.saturating_sub(earlier.sidecar_hits),
        }
    }
}

/// A hash-cons set entry whose hash/equality delegate to the interned
/// node's own payload, so the arena stores each `ExprKind` exactly once
/// (inside the node) instead of duplicating it as a map key.
struct ByKind(Expr);

impl std::borrow::Borrow<ExprKind> for ByKind {
    fn borrow(&self) -> &ExprKind {
        self.0.kind()
    }
}

impl PartialEq for ByKind {
    fn eq(&self, other: &ByKind) -> bool {
        self.0.kind() == other.0.kind()
    }
}

impl Eq for ByKind {}

impl std::hash::Hash for ByKind {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.0.kind().hash(state);
    }
}

/// One thread's arena: the hash-consing set plus every memo table.
#[derive(Default)]
struct ArenaInner {
    /// The canonical node per structure, keyed by its own payload
    /// (`ByKind` borrows `ExprKind` out of the node). `ExprKind`
    /// hashes/compares children by their (already interned) identity,
    /// so lookups never walk whole subtrees.
    nodes: std::collections::HashSet<ByKind>,
    /// `(env, expr)` → fixpoint-simplified expr.
    simplify: HashMap<(u64, u64), Expr>,
    /// `(env, expr)` → single-pass-rewritten expr (depth-0 only).
    pass: HashMap<(u64, u64), Expr>,
    /// `expr` → arithmetic op count.
    opcount: HashMap<u64, usize>,
    /// `(env, expr)` → numeric interval.
    range: HashMap<(u64, u64), NumRange>,
    /// `(env, expr, fact)` → proof verdict, depth-0 only. `fact` is 0
    /// for non-negativity, 1 for positivity.
    prove_unary: HashMap<(u64, u64, u8), bool>,
    /// `(env, lhs, rhs)` → `lhs < rhs` verdict, depth-0 only.
    prove_lt: HashMap<(u64, u64, u64), bool>,
    /// `expr` → distributed (expanded) expr.
    expand: HashMap<u64, Expr>,
    /// `(env, expr, budget fingerprint)` → saturated-and-extracted expr.
    saturate: HashMap<(u64, u64, u64), Expr>,
    /// Canonical environment content → environment id.
    envs: HashMap<EnvKey, u64>,
    /// Keys of memo entries installed from a persistent sidecar (see
    /// [`crate::sidecar`]), tagged by table ([`SIDECAR_SIMPLIFY`] /
    /// [`SIDECAR_SATURATE`] / [`SIDECAR_OPCOUNT`]) — membership lets the
    /// `get` accessors attribute hits to the warm start.
    sidecar: std::collections::HashSet<(u8, u64, u64, u64)>,
}

/// Sidecar-origin tag for the `simplify` table.
const SIDECAR_SIMPLIFY: u8 = 0;
/// Sidecar-origin tag for the `saturate` table.
const SIDECAR_SATURATE: u8 = 1;
/// Sidecar-origin tag for the `opcount` table.
const SIDECAR_OPCOUNT: u8 = 2;

/// Canonical content of a `RangeEnv`, in node ids: sorted
/// `(symbol, lo, hi)` bounds and sorted divisibility facts.
pub(crate) type EnvKey = (Vec<(String, Option<u64>, Option<u64>)>, Vec<(u64, u64)>);

thread_local! {
    static ARENA: RefCell<ArenaInner> = RefCell::new(ArenaInner::default());
    static STATS: Cell<ArenaStats> = Cell::new(ArenaStats::default());
}

fn bump(f: impl FnOnce(&mut ArenaStats)) {
    STATS.with(|s| {
        let mut v = s.get();
        f(&mut v);
        s.set(v);
    });
}

/// A snapshot of the current thread's arena/memo counters.
pub fn stats() -> ArenaStats {
    let mut s = STATS.with(Cell::get);
    s.nodes = ARENA.with(|a| a.borrow().nodes.len() as u64);
    s
}

/// Clears every memo table and resets the counters (the interned nodes
/// themselves stay — handles out there keep them alive anyway).
/// Intended for long-running sessions that switch to an unrelated
/// problem; the tuner never needs it.
pub fn reset_memos() {
    ARENA.with(|a| {
        let mut a = a.borrow_mut();
        a.simplify.clear();
        a.pass.clear();
        a.opcount.clear();
        a.range.clear();
        a.prove_unary.clear();
        a.prove_lt.clear();
        a.expand.clear();
        a.saturate.clear();
        a.sidecar.clear();
    });
    STATS.with(|s| s.set(ArenaStats::default()));
}

/// Interns `kind`, returning the canonical node for its structure.
pub(crate) fn intern(kind: ExprKind) -> Expr {
    ARENA.with(|a| {
        let mut a = a.borrow_mut();
        if let Some(hit) = a.nodes.get(&kind) {
            let e = hit.0.clone();
            drop(a);
            bump(|s| s.intern_hits += 1);
            return e;
        }
        let e = Expr::new_node(kind);
        a.nodes.insert(ByKind(e.clone()));
        drop(a);
        bump(|s| s.intern_misses += 1);
        e
    })
}

/// Interns an environment's canonical content, returning its id.
pub(crate) fn intern_env(key: EnvKey) -> u64 {
    ARENA.with(|a| {
        let mut a = a.borrow_mut();
        *a.envs
            .entry(key)
            .or_insert_with(|| NEXT_ENV_ID.fetch_add(1, Ordering::Relaxed))
    })
}

// ---- memo table accessors ----------------------------------------------
//
// All follow the same shape: a `get` that counts a hit when it returns
// `Some`, and an `insert` that counts the miss (the caller computes the
// value between the two, so recursion through the tables is safe — no
// borrow is held while computing).

pub(crate) fn simplify_get(env: u64, expr: u64) -> Option<Expr> {
    let hit = ARENA.with(|a| {
        let a = a.borrow();
        a.simplify.get(&(env, expr)).map(|r| {
            (
                r.clone(),
                a.sidecar.contains(&(SIDECAR_SIMPLIFY, env, expr, 0)),
            )
        })
    });
    hit.map(|(r, warm)| {
        bump(|s| {
            s.simplify_hits += 1;
            if warm {
                s.sidecar_hits += 1;
            }
        });
        r
    })
}

pub(crate) fn simplify_insert(env: u64, expr: u64, result: Expr) {
    ARENA.with(|a| a.borrow_mut().simplify.insert((env, expr), result));
    bump(|s| s.simplify_misses += 1);
}

pub(crate) fn pass_get(env: u64, expr: u64) -> Option<Expr> {
    let hit = ARENA.with(|a| a.borrow().pass.get(&(env, expr)).cloned());
    if hit.is_some() {
        bump(|s| s.pass_hits += 1);
    }
    hit
}

pub(crate) fn pass_insert(env: u64, expr: u64, result: Expr) {
    ARENA.with(|a| a.borrow_mut().pass.insert((env, expr), result));
    bump(|s| s.pass_misses += 1);
}

pub(crate) fn opcount_get(expr: u64) -> Option<usize> {
    let hit = ARENA.with(|a| {
        let a = a.borrow();
        a.opcount
            .get(&expr)
            .map(|n| (*n, a.sidecar.contains(&(SIDECAR_OPCOUNT, expr, 0, 0))))
    });
    hit.map(|(n, warm)| {
        bump(|s| {
            s.opcount_hits += 1;
            if warm {
                s.sidecar_hits += 1;
            }
        });
        n
    })
}

pub(crate) fn opcount_insert(expr: u64, n: usize) {
    ARENA.with(|a| a.borrow_mut().opcount.insert(expr, n));
    bump(|s| s.opcount_misses += 1);
}

pub(crate) fn range_get(env: u64, expr: u64) -> Option<NumRange> {
    let hit = ARENA.with(|a| a.borrow().range.get(&(env, expr)).copied());
    if hit.is_some() {
        bump(|s| s.range_hits += 1);
    }
    hit
}

pub(crate) fn range_insert(env: u64, expr: u64, r: NumRange) {
    ARENA.with(|a| a.borrow_mut().range.insert((env, expr), r));
    bump(|s| s.range_misses += 1);
}

pub(crate) fn prove_unary_get(env: u64, expr: u64, fact: u8) -> Option<bool> {
    let hit = ARENA.with(|a| a.borrow().prove_unary.get(&(env, expr, fact)).copied());
    if hit.is_some() {
        bump(|s| s.prove_hits += 1);
    }
    hit
}

pub(crate) fn prove_unary_insert(env: u64, expr: u64, fact: u8, v: bool) {
    ARENA.with(|a| a.borrow_mut().prove_unary.insert((env, expr, fact), v));
    bump(|s| s.prove_misses += 1);
}

pub(crate) fn prove_lt_get(env: u64, a: u64, b: u64) -> Option<bool> {
    let hit = ARENA.with(|ar| ar.borrow().prove_lt.get(&(env, a, b)).copied());
    if hit.is_some() {
        bump(|s| s.prove_hits += 1);
    }
    hit
}

pub(crate) fn prove_lt_insert(env: u64, a: u64, b: u64, v: bool) {
    ARENA.with(|ar| ar.borrow_mut().prove_lt.insert((env, a, b), v));
    bump(|s| s.prove_misses += 1);
}

pub(crate) fn expand_get(expr: u64) -> Option<Expr> {
    let hit = ARENA.with(|a| a.borrow().expand.get(&expr).cloned());
    if hit.is_some() {
        bump(|s| s.expand_hits += 1);
    }
    hit
}

pub(crate) fn expand_insert(expr: u64, result: Expr) {
    ARENA.with(|a| a.borrow_mut().expand.insert(expr, result));
    bump(|s| s.expand_misses += 1);
}

pub(crate) fn saturate_get(env: u64, expr: u64, budget: u64) -> Option<Expr> {
    let hit = ARENA.with(|a| {
        let a = a.borrow();
        a.saturate.get(&(env, expr, budget)).map(|r| {
            (
                r.clone(),
                a.sidecar.contains(&(SIDECAR_SATURATE, env, expr, budget)),
            )
        })
    });
    hit.map(|(r, warm)| {
        bump(|s| {
            s.saturate_hits += 1;
            if warm {
                s.sidecar_hits += 1;
            }
        });
        r
    })
}

pub(crate) fn saturate_insert(env: u64, expr: u64, budget: u64, result: Expr) {
    ARENA.with(|a| a.borrow_mut().saturate.insert((env, expr, budget), result));
    bump(|s| s.saturate_misses += 1);
}

// ---- sidecar install / snapshot ----------------------------------------
//
// The persistent sidecar (`crate::sidecar`) re-warms the memo tables
// from disk. Installs never overwrite an entry the session already
// derived (the session's own result is at least as fresh), count as
// `sidecar_installed` rather than misses, and mark their key so the
// `get` accessors above can attribute subsequent hits to the warm
// start. The snapshot is the reverse direction: a copy of everything
// the sidecar persists, taken in one borrow.

/// Installs a fixpoint-simplify result loaded from a sidecar. Returns
/// `true` if the entry was fresh (not already derived this session).
pub(crate) fn sidecar_install_simplify(env: u64, expr: u64, result: Expr) -> bool {
    let fresh = ARENA.with(|a| {
        let mut a = a.borrow_mut();
        if a.simplify.contains_key(&(env, expr)) {
            return false;
        }
        a.simplify.insert((env, expr), result);
        a.sidecar.insert((SIDECAR_SIMPLIFY, env, expr, 0));
        true
    });
    if fresh {
        bump(|s| s.sidecar_installed += 1);
    }
    fresh
}

/// Installs a saturation result loaded from a sidecar.
pub(crate) fn sidecar_install_saturate(env: u64, expr: u64, budget: u64, result: Expr) -> bool {
    let fresh = ARENA.with(|a| {
        let mut a = a.borrow_mut();
        if a.saturate.contains_key(&(env, expr, budget)) {
            return false;
        }
        a.saturate.insert((env, expr, budget), result);
        a.sidecar.insert((SIDECAR_SATURATE, env, expr, budget));
        true
    });
    if fresh {
        bump(|s| s.sidecar_installed += 1);
    }
    fresh
}

/// Installs an op-count result loaded from a sidecar.
pub(crate) fn sidecar_install_opcount(expr: u64, n: usize) -> bool {
    let fresh = ARENA.with(|a| {
        let mut a = a.borrow_mut();
        if a.opcount.contains_key(&expr) {
            return false;
        }
        a.opcount.insert(expr, n);
        a.sidecar.insert((SIDECAR_OPCOUNT, expr, 0, 0));
        true
    });
    if fresh {
        bump(|s| s.sidecar_installed += 1);
    }
    fresh
}

/// A copy of everything the sidecar persists from this thread's arena:
/// the live nodes (to resolve memo-key ids back to structures), the
/// interned environments, and the contents of the persistable tables.
pub(crate) struct MemoSnapshot {
    /// Node id → interned expression, for every node this thread knows.
    pub exprs: HashMap<u64, Expr>,
    /// Environment id → canonical content.
    pub envs: HashMap<u64, EnvKey>,
    /// `(env, expr, result)` rows of the simplify table.
    pub simplify: Vec<(u64, u64, Expr)>,
    /// `(env, expr, budget, result)` rows of the saturate table.
    pub saturate: Vec<(u64, u64, u64, Expr)>,
    /// `(expr, count)` rows of the opcount table.
    pub opcount: Vec<(u64, usize)>,
}

/// Snapshots the persistable memo state of the current thread's arena.
pub(crate) fn snapshot() -> MemoSnapshot {
    ARENA.with(|a| {
        let a = a.borrow();
        MemoSnapshot {
            exprs: a
                .nodes
                .iter()
                .map(|n| (n.0.id().get(), n.0.clone()))
                .collect(),
            envs: a.envs.iter().map(|(k, id)| (*id, k.clone())).collect(),
            simplify: a
                .simplify
                .iter()
                .map(|((env, expr), r)| (*env, *expr, r.clone()))
                .collect(),
            saturate: a
                .saturate
                .iter()
                .map(|((env, expr, budget), r)| (*env, *expr, *budget, r.clone()))
                .collect(),
            opcount: a.opcount.iter().map(|(expr, n)| (*expr, *n)).collect(),
        }
    })
}

// ---- structural hashing -------------------------------------------------

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// A tiny FNV-1a accumulator for the thread-independent structural
/// hash stored on every node.
pub(crate) struct Fnv(u64);

impl Fnv {
    pub(crate) fn new() -> Fnv {
        Fnv(FNV_OFFSET)
    }

    pub(crate) fn byte(&mut self, b: u8) {
        self.0 = (self.0 ^ u64::from(b)).wrapping_mul(FNV_PRIME);
    }

    pub(crate) fn u64(&mut self, v: u64) {
        for b in v.to_le_bytes() {
            self.byte(b);
        }
    }

    pub(crate) fn str(&mut self, s: &str) {
        self.u64(s.len() as u64);
        for b in s.bytes() {
            self.byte(b);
        }
    }

    pub(crate) fn finish(self) -> u64 {
        self.0
    }
}

/// The structural hash of a node-to-be: a pure function of the tree
/// shape (children contribute their cached structural hashes), so two
/// structurally identical expressions hash identically on *any* thread.
pub(crate) fn structural_hash(kind: &ExprKind) -> u64 {
    let mut h = Fnv::new();
    hash_kind(kind, &mut h);
    h.finish()
}

fn hash_kind(kind: &ExprKind, h: &mut Fnv) {
    match kind {
        ExprKind::Const(v) => {
            h.byte(0);
            h.u64(*v as u64);
        }
        ExprKind::Sym(s) => {
            h.byte(1);
            h.str(s);
        }
        ExprKind::Add(ts) => {
            h.byte(2);
            h.u64(ts.len() as u64);
            for t in ts {
                h.u64(t.shash());
            }
        }
        ExprKind::Mul(ts) => {
            h.byte(3);
            h.u64(ts.len() as u64);
            for t in ts {
                h.u64(t.shash());
            }
        }
        ExprKind::FloorDiv(a, b) => {
            h.byte(4);
            h.u64(a.shash());
            h.u64(b.shash());
        }
        ExprKind::Mod(a, b) => {
            h.byte(5);
            h.u64(a.shash());
            h.u64(b.shash());
        }
        ExprKind::Min(a, b) => {
            h.byte(6);
            h.u64(a.shash());
            h.u64(b.shash());
        }
        ExprKind::Max(a, b) => {
            h.byte(7);
            h.u64(a.shash());
            h.u64(b.shash());
        }
        ExprKind::Xor(a, b) => {
            h.byte(8);
            h.u64(a.shash());
            h.u64(b.shash());
        }
        ExprKind::Select(c, t, e) => {
            h.byte(9);
            hash_cond(c, h);
            h.u64(t.shash());
            h.u64(e.shash());
        }
        ExprKind::ISqrt(a) => {
            h.byte(10);
            h.u64(a.shash());
        }
        ExprKind::Range {
            lo,
            len,
            axis,
            ndims,
        } => {
            h.byte(11);
            h.u64(lo.shash());
            h.u64(len.shash());
            h.u64(*axis as u64);
            h.u64(*ndims as u64);
        }
    }
}

fn hash_cond(c: &Cond, h: &mut Fnv) {
    match c {
        Cond::Cmp(op, a, b) => {
            h.byte(20);
            h.byte(*op as u8);
            h.u64(a.shash());
            h.u64(b.shash());
        }
        Cond::All(cs) => {
            h.byte(21);
            h.u64(cs.len() as u64);
            for c in cs {
                hash_cond(c, h);
            }
        }
        Cond::Any(cs) => {
            h.byte(22);
            h.u64(cs.len() as u64);
            for c in cs {
                hash_cond(c, h);
            }
        }
        Cond::Not(c) => {
            h.byte(23);
            hash_cond(c, h);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::range::RangeEnv;
    use crate::simplify::fixpoint_simplify as simplify;
    use crate::Expr;

    #[test]
    fn duplicate_construction_hits_the_interner() {
        let before = stats();
        let a = Expr::sym("zq_intern_test") + Expr::val(41);
        let b = Expr::sym("zq_intern_test") + Expr::val(41);
        let after = stats();
        assert!(a.ptr_eq(&b));
        assert!(
            after.intern_hits > before.intern_hits,
            "rebuilding an identical expression must hit the arena"
        );
    }

    #[test]
    fn repeated_simplify_hits_the_memo() {
        let mut env = RangeEnv::new();
        env.assume_pos("zq_memo_d");
        let e = Expr::sym("zq_memo_x")
            .rem(&Expr::sym("zq_memo_d"))
            .floor_div(&Expr::sym("zq_memo_d"));
        let first = simplify(&e, &env);
        let before = stats();
        let second = simplify(&e, &env);
        let after = stats();
        assert!(first.ptr_eq(&second));
        assert!(
            after.simplify_hits > before.simplify_hits,
            "second simplify of the same (env, expr) must be a memo hit"
        );
    }

    #[test]
    fn identical_envs_share_one_id() {
        let mut a = RangeEnv::new();
        let mut b = RangeEnv::new();
        a.set_bounds("zq_env_i", Expr::zero(), Expr::sym("zq_env_n"));
        b.set_bounds("zq_env_i", Expr::zero(), Expr::sym("zq_env_n"));
        assert_eq!(a.id(), b.id());
        b.assume_pos("zq_env_n");
        assert_ne!(a.id(), b.id(), "mutation must change the identity");
    }
}
