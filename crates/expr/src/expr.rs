//! The symbolic integer expression AST.
//!
//! Expressions are immutable, *hash-consed* DAGs: every construction
//! interns its node in the thread's [`crate::intern`] arena, so
//! structurally identical subtrees are the same allocation (same
//! [`ExprId`]), cloning is an `Arc` bump, equality is usually one
//! integer compare, and the rewrite passes memoize their work per node.
//! Commutative chains are canonicalized into sorted n-ary `Add`/`Mul`
//! forms by the constructors before interning, so each algebraic sum or
//! product has exactly one node. All arithmetic is over mathematical
//! integers; `/` and `%` denote *floor* division and the matching
//! modulo (which coincide with C semantics on the non-negative operands
//! LEGO produces).
//!
//! # Examples
//!
//! ```
//! use lego_expr::Expr;
//! let m = Expr::sym("M");
//! let i = Expr::sym("i");
//! let flat = &i * &m + Expr::val(3);
//! assert_eq!(flat.to_string(), "M*i + 3");
//! // Rebuilding the same structure yields the same interned node.
//! let again = &i * &m + Expr::val(3);
//! assert!(flat.ptr_eq(&again));
//! assert_eq!(flat.id(), again.id());
//! ```

use std::collections::BTreeSet;
use std::fmt;
use std::sync::Arc;

use crate::intern::{self, structural_hash, ExprId};

/// Comparison operators usable inside [`Cond`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum CmpOp {
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

impl CmpOp {
    /// Evaluates the comparison on two concrete integers.
    pub fn eval(self, a: i64, b: i64) -> bool {
        match self {
            CmpOp::Lt => a < b,
            CmpOp::Le => a <= b,
            CmpOp::Eq => a == b,
            CmpOp::Ne => a != b,
            CmpOp::Gt => a > b,
            CmpOp::Ge => a >= b,
        }
    }

    /// The token used by the C and Python printers.
    pub fn token(self) -> &'static str {
        match self {
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Eq => "==",
            CmpOp::Ne => "!=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
        }
    }
}

/// A boolean condition over integer expressions, used by [`ExprKind::Select`].
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum Cond {
    /// A binary comparison between two integer expressions.
    Cmp(CmpOp, Expr, Expr),
    /// Conjunction of conditions (empty = true).
    All(Vec<Cond>),
    /// Disjunction of conditions (empty = false).
    Any(Vec<Cond>),
    /// Negation.
    Not(Box<Cond>),
}

impl Cond {
    /// Builds `a < b`.
    pub fn lt(a: Expr, b: Expr) -> Cond {
        Cond::Cmp(CmpOp::Lt, a, b)
    }
    /// Builds `a <= b`.
    pub fn le(a: Expr, b: Expr) -> Cond {
        Cond::Cmp(CmpOp::Le, a, b)
    }
    /// Builds `a == b`.
    pub fn eq(a: Expr, b: Expr) -> Cond {
        Cond::Cmp(CmpOp::Eq, a, b)
    }
    /// Builds `a >= b`.
    pub fn ge(a: Expr, b: Expr) -> Cond {
        Cond::Cmp(CmpOp::Ge, a, b)
    }

    /// Collects the free symbols of the condition into `out`. The
    /// `BTreeSet` deduplicates and keeps the names in lexicographic
    /// order, so downstream iteration is deterministic.
    pub fn collect_syms(&self, out: &mut BTreeSet<Arc<str>>) {
        match self {
            Cond::Cmp(_, a, b) => {
                a.collect_syms(out);
                b.collect_syms(out);
            }
            Cond::All(cs) | Cond::Any(cs) => {
                for c in cs {
                    c.collect_syms(out);
                }
            }
            Cond::Not(c) => c.collect_syms(out),
        }
    }
}

/// The node payload of an [`Expr`].
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum ExprKind {
    /// An integer literal.
    Const(i64),
    /// A free symbol, e.g. a kernel parameter (`M`) or an index (`pid`).
    Sym(Arc<str>),
    /// N-ary sum. Invariant after canonicalization: at least two operands,
    /// no nested `Add`, at most one constant (last).
    Add(Vec<Expr>),
    /// N-ary product. Invariant after canonicalization: at least two
    /// operands, no nested `Mul`, at most one constant (first).
    Mul(Vec<Expr>),
    /// Floor division `a / b`.
    FloorDiv(Expr, Expr),
    /// Floor modulo `a % b` (result has the sign of `b`; non-negative for
    /// the positive divisors LEGO generates).
    Mod(Expr, Expr),
    /// Binary minimum.
    Min(Expr, Expr),
    /// Binary maximum.
    Max(Expr, Expr),
    /// Bitwise XOR (used by bank-swizzle layouts); operands are
    /// non-negative in all LEGO uses.
    Xor(Expr, Expr),
    /// `if cond { a } else { b }` as a value.
    Select(Cond, Expr, Expr),
    /// Integer square root, `floor(sqrt(a))`; used by the anti-diagonal
    /// inverse of the paper's Fig. 7.
    ISqrt(Expr),
    /// A lane-range placeholder: the half-open interval `[lo, lo+len)`
    /// materialized as a vector of lanes (Triton `tl.arange`). `axis` and
    /// `ndims` record where the vector broadcasts in a multi-dimensional
    /// tile, e.g. `axis=0, ndims=2` prints as `tl.arange(..)[:, None]`.
    Range {
        /// Inclusive lower bound of the lane range.
        lo: Expr,
        /// Number of lanes (exclusive length).
        len: Expr,
        /// Broadcast axis of this vector among `ndims` sliced axes.
        axis: usize,
        /// Total number of sliced axes in the surrounding expression.
        ndims: usize,
    },
}

/// One interned expression node: the payload plus its session identity
/// and a cached structural hash (a pure function of the tree shape, so
/// it agrees across threads even when ids do not).
pub(crate) struct Node {
    id: u64,
    shash: u64,
    /// Cached `node_count` (the tree-size measure used to order sums).
    count: usize,
    kind: ExprKind,
}

/// A handle to an interned symbolic integer expression.
///
/// `Expr` supports the `+`, `-`, `*` operators (by value and by reference),
/// plus [`Expr::floor_div`], [`Expr::rem`], [`Expr::min`], [`Expr::max`],
/// [`Expr::select`] and [`Expr::isqrt`] constructors. Construction performs
/// light local canonicalization (constant folding, flattening, operand
/// sorting) and then hash-conses the node, so structurally identical
/// expressions share one allocation; the full rewriting lives in
/// [`crate::simplify()`].
///
/// Equality, ordering and hashing are *structural* (unchanged from the
/// tree representation), but accelerated: two handles to the same node
/// compare equal by id, and differing structural hashes prove
/// inequality without a walk. Only structurally identical expressions
/// interned from different threads fall back to the deep comparison.
#[derive(Clone)]
pub struct Expr(pub(crate) Arc<Node>);

impl PartialEq for Expr {
    fn eq(&self, other: &Expr) -> bool {
        self.0.id == other.0.id || (self.0.shash == other.0.shash && self.0.kind == other.0.kind)
    }
}

impl Eq for Expr {}

impl std::hash::Hash for Expr {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        state.write_u64(self.0.shash);
    }
}

impl PartialOrd for Expr {
    fn partial_cmp(&self, other: &Expr) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Expr {
    fn cmp(&self, other: &Expr) -> std::cmp::Ordering {
        if self.0.id == other.0.id {
            return std::cmp::Ordering::Equal;
        }
        self.0.kind.cmp(&other.0.kind)
    }
}

impl fmt::Debug for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Expr({self})")
    }
}

impl Expr {
    /// Allocates a fresh node for `kind` (interner-miss path; called
    /// only by [`crate::intern::intern`]).
    pub(crate) fn new_node(kind: ExprKind) -> Expr {
        let shash = structural_hash(&kind);
        let mut count = 1usize;
        for_each_child_of(&kind, |c| count += c.node_count());
        Expr(Arc::new(Node {
            id: intern::fresh_node_id(),
            shash,
            count,
            kind,
        }))
    }

    /// Interns an [`ExprKind`] as-is, without any canonicalization of
    /// the node itself (children are whatever the caller built).
    pub fn raw(kind: ExprKind) -> Expr {
        intern::intern(kind)
    }

    /// The node's session-unique identity (see [`ExprId`]). Equal ids
    /// imply structural equality; on one thread the converse holds too.
    pub fn id(&self) -> ExprId {
        ExprId(self.0.id)
    }

    /// The cached structural hash (thread-independent).
    pub(crate) fn shash(&self) -> u64 {
        self.0.shash
    }

    /// True if both handles point at the same interned node.
    pub fn ptr_eq(&self, other: &Expr) -> bool {
        self.0.id == other.0.id
    }

    /// An integer literal.
    pub fn val(v: i64) -> Expr {
        Expr::raw(ExprKind::Const(v))
    }

    /// A free symbol.
    pub fn sym(name: impl Into<Arc<str>>) -> Expr {
        Expr::raw(ExprKind::Sym(name.into()))
    }

    /// The zero literal.
    pub fn zero() -> Expr {
        Expr::val(0)
    }

    /// The one literal.
    pub fn one() -> Expr {
        Expr::val(1)
    }

    /// A lane range `[lo, lo+len)` broadcasting on `axis` of `ndims`.
    pub fn range(lo: Expr, len: Expr, axis: usize, ndims: usize) -> Expr {
        Expr::raw(ExprKind::Range {
            lo,
            len,
            axis,
            ndims,
        })
    }

    /// Borrow the node payload.
    pub fn kind(&self) -> &ExprKind {
        &self.0.kind
    }

    /// Returns the literal value if this expression is a constant.
    pub fn as_const(&self) -> Option<i64> {
        match self.kind() {
            ExprKind::Const(v) => Some(*v),
            _ => None,
        }
    }

    /// Returns the symbol name if this expression is a bare symbol.
    pub fn as_sym(&self) -> Option<&str> {
        match self.kind() {
            ExprKind::Sym(s) => Some(s),
            _ => None,
        }
    }

    /// True if this is the literal `v`.
    pub fn is_const(&self, v: i64) -> bool {
        self.as_const() == Some(v)
    }

    /// Floor division. Folds constants (using Euclidean semantics on
    /// non-negative divisors) and `x / 1 == x` immediately.
    pub fn floor_div(&self, d: &Expr) -> Expr {
        if d.is_const(1) {
            return self.clone();
        }
        if let (Some(a), Some(b)) = (self.as_const(), d.as_const()) {
            if b != 0 {
                return Expr::val(a.div_euclid(b));
            }
        }
        if self.is_const(0) {
            return Expr::zero();
        }
        Expr::raw(ExprKind::FloorDiv(self.clone(), d.clone()))
    }

    /// Floor modulo. Folds constants and `x % 1 == 0` immediately.
    pub fn rem(&self, d: &Expr) -> Expr {
        if d.is_const(1) {
            return Expr::zero();
        }
        if let (Some(a), Some(b)) = (self.as_const(), d.as_const()) {
            if b != 0 {
                return Expr::val(a.rem_euclid(b));
            }
        }
        if self.is_const(0) {
            return Expr::zero();
        }
        Expr::raw(ExprKind::Mod(self.clone(), d.clone()))
    }

    /// Binary minimum (constant-folds).
    ///
    /// Takes `self` by value so that it is selected over [`Ord::min`]
    /// during method resolution; `Expr` is `Arc`-backed, so passing by
    /// value is cheap.
    pub fn min(self, other: &Expr) -> Expr {
        if let (Some(a), Some(b)) = (self.as_const(), other.as_const()) {
            return Expr::val(a.min(b));
        }
        if &self == other {
            return self;
        }
        Expr::raw(ExprKind::Min(self, other.clone()))
    }

    /// Binary maximum (constant-folds).
    ///
    /// Takes `self` by value so that it is selected over [`Ord::max`]
    /// during method resolution.
    pub fn max(self, other: &Expr) -> Expr {
        if let (Some(a), Some(b)) = (self.as_const(), other.as_const()) {
            return Expr::val(a.max(b));
        }
        if &self == other {
            return self;
        }
        Expr::raw(ExprKind::Max(self, other.clone()))
    }

    /// Bitwise XOR (constant-folds).
    pub fn xor(&self, other: &Expr) -> Expr {
        if let (Some(a), Some(b)) = (self.as_const(), other.as_const()) {
            return Expr::val(a ^ b);
        }
        if self.is_const(0) {
            return other.clone();
        }
        if other.is_const(0) {
            return self.clone();
        }
        Expr::raw(ExprKind::Xor(self.clone(), other.clone()))
    }

    /// Conditional value `if cond { t } else { e }`.
    pub fn select(cond: Cond, t: Expr, e: Expr) -> Expr {
        if t == e {
            return t;
        }
        Expr::raw(ExprKind::Select(cond, t, e))
    }

    /// Integer square root `floor(sqrt(self))` (constant-folds on
    /// non-negative constants).
    pub fn isqrt(&self) -> Expr {
        if let Some(a) = self.as_const() {
            if a >= 0 {
                return Expr::val(isqrt64(a));
            }
        }
        Expr::raw(ExprKind::ISqrt(self.clone()))
    }

    /// Ceiling division `ceil(self / d)`, built as `(self + d - 1) / d` —
    /// Triton's `tl.cdiv`.
    pub fn ceil_div(&self, d: &Expr) -> Expr {
        if let (Some(a), Some(b)) = (self.as_const(), d.as_const()) {
            if b > 0 {
                return Expr::val((a + b - 1).div_euclid(b));
            }
        }
        (self + d - Expr::one()).floor_div(d)
    }

    /// N-ary sum with light canonicalization: flattens nested sums, folds
    /// constants, drops zeros, and sorts operands deterministically
    /// (non-constants first).
    pub fn add_all<I: IntoIterator<Item = Expr>>(terms: I) -> Expr {
        let mut flat: Vec<Expr> = Vec::new();
        let mut k: i64 = 0;
        for t in terms {
            match t.kind() {
                ExprKind::Const(v) => k += v,
                ExprKind::Add(ts) => {
                    for t in ts {
                        match t.kind() {
                            ExprKind::Const(v) => k += v,
                            _ => flat.push(t.clone()),
                        }
                    }
                }
                _ => flat.push(t),
            }
        }
        // Sort larger terms first (then structurally) so sums print in the
        // conventional `i*n + j + 1` order and stay deterministic.
        flat.sort_by(|a, b| b.node_count().cmp(&a.node_count()).then_with(|| a.cmp(b)));
        if k != 0 {
            flat.push(Expr::val(k));
        }
        match flat.len() {
            0 => Expr::zero(),
            1 => flat.pop().expect("len checked"),
            _ => Expr::raw(ExprKind::Add(flat)),
        }
    }

    /// N-ary product with light canonicalization: flattens nested products,
    /// folds constants, and short-circuits on zero.
    pub fn mul_all<I: IntoIterator<Item = Expr>>(factors: I) -> Expr {
        let mut flat: Vec<Expr> = Vec::new();
        let mut k: i64 = 1;
        for t in factors {
            match t.kind() {
                ExprKind::Const(v) => k *= v,
                ExprKind::Mul(ts) => {
                    for t in ts {
                        match t.kind() {
                            ExprKind::Const(v) => k *= v,
                            _ => flat.push(t.clone()),
                        }
                    }
                }
                _ => flat.push(t),
            }
        }
        if k == 0 {
            return Expr::zero();
        }
        flat.sort();
        if k != 1 {
            flat.insert(0, Expr::val(k));
        }
        match flat.len() {
            0 => Expr::one(),
            1 => flat.pop().expect("len checked"),
            _ => Expr::raw(ExprKind::Mul(flat)),
        }
    }

    /// Collects every free symbol into `out`. The `BTreeSet` collector
    /// deduplicates as it goes and iterates in lexicographic name
    /// order, so every consumer of the result sees the same
    /// deterministic ordering regardless of traversal order.
    pub fn collect_syms(&self, out: &mut BTreeSet<Arc<str>>) {
        match self.kind() {
            ExprKind::Const(_) => {}
            ExprKind::Sym(s) => {
                out.insert(s.clone());
            }
            ExprKind::Add(ts) | ExprKind::Mul(ts) => {
                for t in ts {
                    t.collect_syms(out);
                }
            }
            ExprKind::FloorDiv(a, b)
            | ExprKind::Mod(a, b)
            | ExprKind::Min(a, b)
            | ExprKind::Max(a, b)
            | ExprKind::Xor(a, b) => {
                a.collect_syms(out);
                b.collect_syms(out);
            }
            ExprKind::Select(c, t, e) => {
                c.collect_syms(out);
                t.collect_syms(out);
                e.collect_syms(out);
            }
            ExprKind::ISqrt(a) => a.collect_syms(out),
            ExprKind::Range { lo, len, .. } => {
                lo.collect_syms(out);
                len.collect_syms(out);
            }
        }
    }

    /// The set of free symbol names, deduplicated and in lexicographic
    /// order (the iteration order of the [`BTreeSet`] collector).
    pub fn free_syms(&self) -> Vec<Arc<str>> {
        let mut set = BTreeSet::new();
        self.collect_syms(&mut set);
        set.into_iter().collect()
    }

    /// Number of nodes in the tree (a crude size measure). Cached on
    /// the interned node, so this is a field read.
    pub fn node_count(&self) -> usize {
        self.0.count
    }
}

/// Visits each direct child expression of a node payload.
pub(crate) fn for_each_child_of(kind: &ExprKind, mut f: impl FnMut(&Expr)) {
    match kind {
        ExprKind::Const(_) | ExprKind::Sym(_) => {}
        ExprKind::Add(ts) | ExprKind::Mul(ts) => {
            for t in ts {
                f(t);
            }
        }
        ExprKind::FloorDiv(a, b)
        | ExprKind::Mod(a, b)
        | ExprKind::Min(a, b)
        | ExprKind::Max(a, b)
        | ExprKind::Xor(a, b) => {
            f(a);
            f(b);
        }
        ExprKind::Select(_, t, e) => {
            f(t);
            f(e);
        }
        ExprKind::ISqrt(a) => f(a),
        ExprKind::Range { lo, len, .. } => {
            f(lo);
            f(len);
        }
    }
}

/// `floor(sqrt(v))` for non-negative `v`.
pub fn isqrt64(v: i64) -> i64 {
    debug_assert!(v >= 0, "isqrt of negative value");
    if v < 2 {
        return v;
    }
    let mut x = (v as f64).sqrt() as i64;
    // Correct the float estimate in both directions.
    while x > 0 && x * x > v {
        x -= 1;
    }
    while (x + 1) * (x + 1) <= v {
        x += 1;
    }
    x
}

// ---- operator overloads -------------------------------------------------

macro_rules! impl_binop {
    ($trait:ident, $method:ident, $ctor:expr) => {
        impl std::ops::$trait for Expr {
            type Output = Expr;
            fn $method(self, rhs: Expr) -> Expr {
                #[allow(clippy::redundant_closure_call)]
                ($ctor)(&self, &rhs)
            }
        }
        impl std::ops::$trait<&Expr> for Expr {
            type Output = Expr;
            fn $method(self, rhs: &Expr) -> Expr {
                #[allow(clippy::redundant_closure_call)]
                ($ctor)(&self, rhs)
            }
        }
        impl std::ops::$trait<Expr> for &Expr {
            type Output = Expr;
            fn $method(self, rhs: Expr) -> Expr {
                #[allow(clippy::redundant_closure_call)]
                ($ctor)(self, &rhs)
            }
        }
        impl std::ops::$trait<&Expr> for &Expr {
            type Output = Expr;
            fn $method(self, rhs: &Expr) -> Expr {
                #[allow(clippy::redundant_closure_call)]
                ($ctor)(self, rhs)
            }
        }
    };
}

impl_binop!(Add, add, |a: &Expr, b: &Expr| Expr::add_all([
    a.clone(),
    b.clone()
]));
impl_binop!(Mul, mul, |a: &Expr, b: &Expr| Expr::mul_all([
    a.clone(),
    b.clone()
]));
impl_binop!(Sub, sub, |a: &Expr, b: &Expr| Expr::add_all([
    a.clone(),
    Expr::mul_all([Expr::val(-1), b.clone()])
]));

impl std::ops::Neg for Expr {
    type Output = Expr;
    fn neg(self) -> Expr {
        Expr::mul_all([Expr::val(-1), self])
    }
}

impl std::ops::Neg for &Expr {
    type Output = Expr;
    fn neg(self) -> Expr {
        Expr::mul_all([Expr::val(-1), self.clone()])
    }
}

impl Default for Expr {
    /// The zero literal.
    fn default() -> Expr {
        Expr::zero()
    }
}

impl From<i64> for Expr {
    fn from(v: i64) -> Expr {
        Expr::val(v)
    }
}

impl From<usize> for Expr {
    fn from(v: usize) -> Expr {
        Expr::val(v as i64)
    }
}

impl From<i32> for Expr {
    fn from(v: i32) -> Expr {
        Expr::val(i64::from(v))
    }
}

impl From<u32> for Expr {
    fn from(v: u32) -> Expr {
        Expr::val(i64::from(v))
    }
}

impl From<&str> for Expr {
    fn from(name: &str) -> Expr {
        Expr::sym(name)
    }
}

// ---- display (debug-ish human syntax; language printers live in
// `crate::printer`) ---------------------------------------------------------

fn prec(kind: &ExprKind) -> u8 {
    match kind {
        ExprKind::Add(_) => 1,
        ExprKind::Mul(_) | ExprKind::FloorDiv(..) | ExprKind::Mod(..) => 2,
        _ => 3,
    }
}

fn fmt_child(e: &Expr, parent: u8, f: &mut fmt::Formatter<'_>) -> fmt::Result {
    if prec(e.kind()) < parent {
        write!(f, "({e})")
    } else {
        write!(f, "{e}")
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.kind() {
            ExprKind::Const(v) => write!(f, "{v}"),
            ExprKind::Sym(s) => write!(f, "{s}"),
            ExprKind::Add(ts) => {
                for (i, t) in ts.iter().enumerate() {
                    if i > 0 {
                        write!(f, " + ")?;
                    }
                    fmt_child(t, 1, f)?;
                }
                Ok(())
            }
            ExprKind::Mul(ts) => {
                for (i, t) in ts.iter().enumerate() {
                    if i > 0 {
                        write!(f, "*")?;
                    }
                    fmt_child(t, 3, f)?;
                }
                Ok(())
            }
            ExprKind::FloorDiv(a, b) => {
                fmt_child(a, 2, f)?;
                write!(f, " // ")?;
                fmt_child(b, 3, f)
            }
            ExprKind::Mod(a, b) => {
                fmt_child(a, 2, f)?;
                write!(f, " % ")?;
                fmt_child(b, 3, f)
            }
            ExprKind::Min(a, b) => write!(f, "min({a}, {b})"),
            ExprKind::Xor(a, b) => write!(f, "({a} ^ {b})"),
            ExprKind::Max(a, b) => write!(f, "max({a}, {b})"),
            ExprKind::Select(c, t, e) => write!(f, "({t} if {c} else {e})"),
            ExprKind::ISqrt(a) => write!(f, "isqrt({a})"),
            ExprKind::Range {
                lo,
                len,
                axis,
                ndims,
            } => {
                write!(f, "range({lo}, {lo}+{len}; axis={axis}/{ndims})")
            }
        }
    }
}

impl fmt::Display for Cond {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Cond::Cmp(op, a, b) => write!(f, "{a} {} {b}", op.token()),
            Cond::All(cs) => {
                for (i, c) in cs.iter().enumerate() {
                    if i > 0 {
                        write!(f, " and ")?;
                    }
                    write!(f, "({c})")?;
                }
                Ok(())
            }
            Cond::Any(cs) => {
                for (i, c) in cs.iter().enumerate() {
                    if i > 0 {
                        write!(f, " or ")?;
                    }
                    write!(f, "({c})")?;
                }
                Ok(())
            }
            Cond::Not(c) => write!(f, "not ({c})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_folding_in_ctors() {
        assert_eq!(Expr::val(2) + Expr::val(3), Expr::val(5));
        assert_eq!(Expr::val(2) * Expr::val(3), Expr::val(6));
        assert_eq!(Expr::val(7).floor_div(&Expr::val(2)), Expr::val(3));
        assert_eq!(Expr::val(7).rem(&Expr::val(2)), Expr::val(1));
        assert_eq!(Expr::val(-7).floor_div(&Expr::val(2)), Expr::val(-4));
        assert_eq!(Expr::val(-7).rem(&Expr::val(2)), Expr::val(1));
    }

    #[test]
    fn add_flattens_and_sorts() {
        let a = Expr::sym("a");
        let b = Expr::sym("b");
        let e = (&a + Expr::val(1)) + (&b + Expr::val(2));
        match e.kind() {
            ExprKind::Add(ts) => {
                assert_eq!(ts.len(), 3);
                assert_eq!(ts[2], Expr::val(3));
            }
            k => panic!("expected Add, got {k:?}"),
        }
    }

    #[test]
    fn mul_zero_annihilates() {
        let a = Expr::sym("a");
        assert_eq!(a * Expr::zero(), Expr::zero());
    }

    #[test]
    fn div_by_one_is_identity() {
        let a = Expr::sym("a");
        assert_eq!(a.floor_div(&Expr::one()), a);
        assert_eq!(a.rem(&Expr::one()), Expr::zero());
    }

    #[test]
    fn sub_cancels_via_collect() {
        // Light canonicalization does not collect like terms; a - a stays
        // as a two-term Add until `simplify`.
        let a = Expr::sym("a");
        let e = &a - &a;
        assert!(matches!(e.kind(), ExprKind::Add(_)));
    }

    #[test]
    fn isqrt_exact_and_between() {
        for v in 0..2000i64 {
            let r = isqrt64(v);
            assert!(r * r <= v && (r + 1) * (r + 1) > v, "isqrt({v}) = {r}");
        }
    }

    #[test]
    fn display_is_readable() {
        let e = (Expr::sym("i") * Expr::sym("n") + Expr::sym("j")).floor_div(&Expr::sym("d"));
        assert_eq!(e.to_string(), "(i*n + j) // d");
    }

    #[test]
    fn free_syms_sorted_dedup() {
        let e = Expr::sym("b") * Expr::sym("a") + Expr::sym("b");
        let syms = e.free_syms();
        let names: Vec<&str> = syms.iter().map(|s| &**s).collect();
        assert_eq!(names, ["a", "b"]);
    }

    #[test]
    fn ceil_div_matches_formula() {
        assert_eq!(Expr::val(7).ceil_div(&Expr::val(2)), Expr::val(4));
        assert_eq!(Expr::val(8).ceil_div(&Expr::val(2)), Expr::val(4));
    }
}
