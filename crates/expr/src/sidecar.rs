//! The persistent memo sidecar: derived results on disk, keyed by
//! structure.
//!
//! The arena's memo tables ([`crate::intern`]) make warm re-enumeration
//! orders of magnitude faster than cold — but they are per-process, so
//! every daemon restart and every fresh bench invocation pays the full
//! cold derivation cost again. This module persists the derivable
//! subset of those tables next to the tuning cache:
//!
//! * fixpoint-simplified forms per environment,
//! * saturated forms per `(environment, budget fingerprint)`,
//! * op counts,
//! * plus an opaque annotation section the tuner layer uses for its
//!   `(workload, config) → (variant, index_ops)` cache.
//!
//! **Keys are structural, never ids.** `ExprId`s are session-local by
//! design, so every expression and environment is stored as its
//! canonical printed form (a compact, space-free encoding that
//! [`Sidecar::install`] re-interns on load — memo hits against
//! installed entries are genuine arena nodes). Each entry also carries
//! the input's thread-independent structural hash as an integrity
//! check; an entry whose decoded form does not hash to its recorded
//! value is dropped.
//!
//! **Invalidation is wholesale.** The document header records a schema
//! version and a fingerprint of the rewrite-rule registry
//! ([`crate::rules::table_fingerprint`]); a mismatch in either — or any
//! parse error anywhere in the file — makes [`Sidecar::load`] return an
//! empty store. A stale or corrupt sidecar is a cold start, never an
//! error and never a stale simplification.
//!
//! Writes go through the shared atomic-replace path
//! ([`crate::atomicfile`]): [`Sidecar::save`] merges with whatever is
//! on disk under the per-file lock and renames a tempfile into place,
//! so concurrent writers (fleet workers, daemon shutdown) cannot lose
//! each other's entries and readers never see a torn document.

use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::fmt::Write as _;
use std::io;
use std::path::Path;

use crate::atomicfile;
use crate::expr::{CmpOp, Cond, Expr, ExprKind};
use crate::intern::{self, EnvKey};
use crate::range::RangeEnv;
use crate::rules;

/// Version of the sidecar document format *and* of the encoding
/// semantics behind it. Bump on any incompatible change; mismatched
/// documents are discarded wholesale (a cold start, not an error).
pub const SIDECAR_SCHEMA_VERSION: u64 = 1;

/// First token of every sidecar document.
const MAGIC: &str = "lego-expr-sidecar";

/// Value row of the simplify/saturate sections: `(input structural
/// hash, encoded result)`.
type FormRow = (u64, String);

/// What [`Sidecar::install`] did: entries newly installed per table
/// (entries the session had already derived are not counted — the
/// in-process result is kept), plus entries dropped by the integrity
/// checks.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct InstallReport {
    /// Fixpoint-simplify entries installed.
    pub simplify: usize,
    /// Saturation entries installed.
    pub saturate: usize,
    /// Op-count entries installed.
    pub opcount: usize,
    /// Entries skipped: undecodable environment or expression, or a
    /// structural-hash mismatch.
    pub skipped: usize,
}

impl InstallReport {
    /// Total entries installed across all tables.
    pub fn installed(&self) -> usize {
        self.simplify + self.saturate + self.opcount
    }
}

/// An in-memory sidecar document: derived results keyed by canonical
/// printed forms. Build one with [`Sidecar::collect`] (snapshot this
/// thread's memo tables) or [`Sidecar::load`] (read from disk), move
/// results between processes with [`Sidecar::save`] /
/// [`Sidecar::install`], and combine per-worker documents with
/// [`Sidecar::merge`].
#[derive(Clone, Debug, Default)]
pub struct Sidecar {
    /// Deduplicated canonical environment encodings; entries reference
    /// them by index.
    envs: Vec<String>,
    /// Reverse index of `envs`.
    env_ids: HashMap<String, u32>,
    /// `(env slot, encoded input)` → `(input shash, encoded result)`.
    simplify: HashMap<(u32, String), FormRow>,
    /// `(env slot, budget fingerprint, encoded input)` → result row.
    saturate: HashMap<(u32, u64, String), FormRow>,
    /// Encoded input → `(input shash, op count)`.
    opcount: HashMap<String, (u64, u64)>,
    /// Opaque annotation entries (the tuner layer's section). Sorted
    /// map so rendering is deterministic.
    annotations: BTreeMap<String, String>,
    /// Opaque traffic entries (the cost model's geometry → traffic
    /// memo, owned by `gpu-sim` and routed here by the tuner layer).
    /// Sorted map so rendering is deterministic.
    traffics: BTreeMap<String, String>,
}

impl Sidecar {
    /// An empty document.
    pub fn new() -> Sidecar {
        Sidecar::default()
    }

    /// Total entries across every section.
    pub fn len(&self) -> usize {
        self.expr_entries() + self.annotations.len() + self.traffics.len()
    }

    /// True when no section has any entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Entries in the expression sections (simplify + saturate +
    /// opcount), excluding annotations.
    pub fn expr_entries(&self) -> usize {
        self.simplify.len() + self.saturate.len() + self.opcount.len()
    }

    /// The slot of `enc` in the environment table, interning it if new.
    fn env_slot(&mut self, enc: &str) -> u32 {
        if let Some(&i) = self.env_ids.get(enc) {
            return i;
        }
        let i = u32::try_from(self.envs.len()).expect("sidecar env table overflow");
        self.envs.push(enc.to_string());
        self.env_ids.insert(enc.to_string(), i);
        i
    }

    /// Adds (or keeps) an opaque annotation entry. The expression layer
    /// never interprets these; the tuner layer round-trips its
    /// `(workload, config) → (variant, index_ops)` cache through them.
    /// Keys and values containing newlines are dropped at render time.
    pub fn set_annotation(&mut self, key: &str, value: &str) {
        self.annotations.insert(key.to_string(), value.to_string());
    }

    /// Iterates the annotation section in sorted key order.
    pub fn annotations(&self) -> impl Iterator<Item = (&str, &str)> {
        self.annotations.iter().map(|(k, v)| (&**k, &**v))
    }

    /// Adds (or keeps) an opaque traffic entry: a geometry fingerprint
    /// mapped to an encoded traffic cost. Like annotations, the
    /// expression layer never interprets these; `gpu-sim`'s traffic
    /// memo round-trips through them. Keys and values containing
    /// newlines are dropped at render time.
    pub fn set_traffic(&mut self, key: &str, value: &str) {
        self.traffics.insert(key.to_string(), value.to_string());
    }

    /// Iterates the traffic section in sorted key order.
    pub fn traffics(&self) -> impl Iterator<Item = (&str, &str)> {
        self.traffics.iter().map(|(k, v)| (&**k, &**v))
    }

    /// Snapshots the current thread's memo tables into a document:
    /// every simplify/saturate/op-count entry whose key resolves to
    /// nodes this thread knows (entries keyed by another thread's ids
    /// are skipped — they will be collected by that thread).
    pub fn collect() -> Sidecar {
        let snap = intern::snapshot();
        let mut sc = Sidecar::default();
        let env_enc: HashMap<u64, Option<String>> = snap
            .envs
            .iter()
            .map(|(id, key)| (*id, enc_env_key(key, &snap.exprs)))
            .collect();
        for (env, expr, result) in &snap.simplify {
            let Some(Some(env_enc)) = env_enc.get(env) else {
                continue;
            };
            let Some((input_enc, shash)) = enc_input(&snap.exprs, *expr) else {
                continue;
            };
            let slot = sc.env_slot(env_enc);
            sc.simplify
                .entry((slot, input_enc))
                .or_insert_with(|| (shash, enc_expr_string(result)));
        }
        for (env, expr, budget, result) in &snap.saturate {
            let Some(Some(env_enc)) = env_enc.get(env) else {
                continue;
            };
            let Some((input_enc, shash)) = enc_input(&snap.exprs, *expr) else {
                continue;
            };
            let slot = sc.env_slot(env_enc);
            sc.saturate
                .entry((slot, *budget, input_enc))
                .or_insert_with(|| (shash, enc_expr_string(result)));
        }
        for (expr, n) in &snap.opcount {
            let Some((input_enc, shash)) = enc_input(&snap.exprs, *expr) else {
                continue;
            };
            sc.opcount.entry(input_enc).or_insert((shash, *n as u64));
        }
        sc
    }

    /// Re-interns every entry on the calling thread and installs it
    /// into the session memo tables. Decoding rebuilds the exact stored
    /// structure (so installed results are served for the very nodes
    /// the tuner constructs); environments are rebuilt and re-identified
    /// through [`RangeEnv::id`]. Entries that fail to decode or whose
    /// structural hash does not match are skipped, never an error.
    pub fn install(&self) -> InstallReport {
        let mut rep = InstallReport::default();
        let env_ids: Vec<Option<u64>> = self.envs.iter().map(|enc| dec_env(enc)).collect();
        let env_of = |slot: &u32, rep: &mut InstallReport| -> Option<u64> {
            match env_ids.get(*slot as usize) {
                Some(Some(id)) => Some(*id),
                _ => {
                    rep.skipped += 1;
                    None
                }
            }
        };
        for ((slot, input_enc), (shash, result_enc)) in &self.simplify {
            let Some(env) = env_of(slot, &mut rep) else {
                continue;
            };
            let Some((input, result)) = dec_entry(input_enc, *shash, result_enc) else {
                rep.skipped += 1;
                continue;
            };
            if intern::sidecar_install_simplify(env, input.id().get(), result) {
                rep.simplify += 1;
            }
        }
        for ((slot, budget, input_enc), (shash, result_enc)) in &self.saturate {
            let Some(env) = env_of(slot, &mut rep) else {
                continue;
            };
            let Some((input, result)) = dec_entry(input_enc, *shash, result_enc) else {
                rep.skipped += 1;
                continue;
            };
            if intern::sidecar_install_saturate(env, input.id().get(), *budget, result) {
                rep.saturate += 1;
            }
        }
        for (input_enc, (shash, n)) in &self.opcount {
            let Some(input) = dec_expr_full(input_enc) else {
                rep.skipped += 1;
                continue;
            };
            if input.shash() != *shash {
                rep.skipped += 1;
                continue;
            }
            if intern::sidecar_install_opcount(input.id().get(), *n as usize) {
                rep.opcount += 1;
            }
        }
        rep
    }

    /// Unions `other` into `self`. Existing entries win (all entries
    /// are deterministic derivations, so which copy survives is
    /// immaterial; keeping the first makes merge order-insensitive for
    /// equal documents).
    pub fn merge(&mut self, other: &Sidecar) {
        for ((slot, input), row) in &other.simplify {
            let slot = self.env_slot(&other.envs[*slot as usize]);
            self.simplify
                .entry((slot, input.clone()))
                .or_insert_with(|| row.clone());
        }
        for ((slot, budget, input), row) in &other.saturate {
            let slot = self.env_slot(&other.envs[*slot as usize]);
            self.saturate
                .entry((slot, *budget, input.clone()))
                .or_insert_with(|| row.clone());
        }
        for (input, row) in &other.opcount {
            self.opcount.entry(input.clone()).or_insert(*row);
        }
        for (k, v) in &other.annotations {
            self.annotations
                .entry(k.clone())
                .or_insert_with(|| v.clone());
        }
        for (k, v) in &other.traffics {
            self.traffics.entry(k.clone()).or_insert_with(|| v.clone());
        }
    }

    /// Renders the document: a header stamping the schema version and
    /// rule-table fingerprint, the referenced environments renumbered
    /// in sorted order, then every section's rows sorted — so the same
    /// content always renders to the same bytes regardless of insertion
    /// or merge order.
    pub fn render(&self) -> String {
        let clean = |s: &str| !s.contains(['\n', '\r']);
        // Renumber only the environments that entries actually
        // reference, in sorted-encoding order.
        let referenced: BTreeSet<u32> = self
            .simplify
            .keys()
            .map(|(slot, _)| *slot)
            .chain(self.saturate.keys().map(|(slot, _, _)| *slot))
            .collect();
        let mut env_order: Vec<(&str, u32)> = referenced
            .iter()
            .map(|&slot| (&*self.envs[slot as usize], slot))
            .collect();
        env_order.sort_unstable();
        let renumber: HashMap<u32, usize> = env_order
            .iter()
            .enumerate()
            .map(|(new, (_, old))| (*old, new))
            .collect();

        let mut out = format!(
            "{MAGIC} v{SIDECAR_SCHEMA_VERSION} rules={:016x}\n",
            rules::table_fingerprint()
        );
        for (i, (enc, _)) in env_order.iter().enumerate() {
            let _ = writeln!(out, "env {i} {enc}");
        }
        let mut rows: Vec<String> = self
            .simplify
            .iter()
            .map(|((slot, input), (shash, result))| {
                format!("simplify {} {shash:016x} {input} {result}", renumber[slot])
            })
            .collect();
        rows.sort_unstable();
        for row in rows.drain(..).filter(|r| clean(r)) {
            out.push_str(&row);
            out.push('\n');
        }
        let mut rows: Vec<String> = self
            .saturate
            .iter()
            .map(|((slot, budget, input), (shash, result))| {
                format!(
                    "saturate {} {budget:016x} {shash:016x} {input} {result}",
                    renumber[slot]
                )
            })
            .collect();
        rows.sort_unstable();
        for row in rows.drain(..).filter(|r| clean(r)) {
            out.push_str(&row);
            out.push('\n');
        }
        let mut rows: Vec<String> = self
            .opcount
            .iter()
            .map(|(input, (shash, n))| format!("opcount {shash:016x} {n} {input}"))
            .collect();
        rows.sort_unstable();
        for row in rows.drain(..).filter(|r| clean(r)) {
            out.push_str(&row);
            out.push('\n');
        }
        for (k, v) in &self.annotations {
            if clean(k) && clean(v) {
                let _ = writeln!(out, "ann {}:{k} {}:{v}", k.len(), v.len());
            }
        }
        for (k, v) in &self.traffics {
            if clean(k) && clean(v) {
                let _ = writeln!(out, "traffic {}:{k} {}:{v}", k.len(), v.len());
            }
        }
        out
    }

    /// Parses a rendered document. `None` on *any* anomaly — wrong
    /// magic, schema version, or rule fingerprint; a malformed line; an
    /// out-of-order or unknown environment reference — so callers
    /// degrade to an empty store (cold start) rather than trusting a
    /// stale or truncated file.
    pub fn parse(text: &str) -> Option<Sidecar> {
        let mut lines = text.lines();
        let mut header = lines.next()?.split_whitespace();
        if header.next()? != MAGIC {
            return None;
        }
        if header.next()? != format!("v{SIDECAR_SCHEMA_VERSION}") {
            return None;
        }
        let fp = header.next()?.strip_prefix("rules=")?;
        if u64::from_str_radix(fp, 16).ok()? != rules::table_fingerprint() {
            return None;
        }
        if header.next().is_some() {
            return None;
        }
        let mut sc = Sidecar::default();
        for line in lines {
            if line.is_empty() {
                continue;
            }
            let (tag, rest) = line.split_once(' ')?;
            match tag {
                "env" => {
                    let (idx, enc) = rest.split_once(' ')?;
                    let idx: usize = idx.parse().ok()?;
                    // Environments must appear in slot order, undup'd.
                    if sc.env_slot(enc) as usize != idx {
                        return None;
                    }
                }
                "simplify" => {
                    let f: Vec<&str> = rest.split_whitespace().collect();
                    let [slot, shash, input, result] = f[..] else {
                        return None;
                    };
                    let slot: u32 = slot.parse().ok()?;
                    if slot as usize >= sc.envs.len() {
                        return None;
                    }
                    let shash = u64::from_str_radix(shash, 16).ok()?;
                    sc.simplify
                        .insert((slot, input.to_string()), (shash, result.to_string()));
                }
                "saturate" => {
                    let f: Vec<&str> = rest.split_whitespace().collect();
                    let [slot, budget, shash, input, result] = f[..] else {
                        return None;
                    };
                    let slot: u32 = slot.parse().ok()?;
                    if slot as usize >= sc.envs.len() {
                        return None;
                    }
                    let budget = u64::from_str_radix(budget, 16).ok()?;
                    let shash = u64::from_str_radix(shash, 16).ok()?;
                    sc.saturate.insert(
                        (slot, budget, input.to_string()),
                        (shash, result.to_string()),
                    );
                }
                "opcount" => {
                    let f: Vec<&str> = rest.split_whitespace().collect();
                    let [shash, n, input] = f[..] else {
                        return None;
                    };
                    let shash = u64::from_str_radix(shash, 16).ok()?;
                    let n: u64 = n.parse().ok()?;
                    sc.opcount.insert(input.to_string(), (shash, n));
                }
                "ann" => {
                    let mut c = Cur::new(rest);
                    let klen = c.uint()? as usize;
                    c.expect(b':')?;
                    let key = c.take(klen)?.to_string();
                    c.expect(b' ')?;
                    let vlen = c.uint()? as usize;
                    c.expect(b':')?;
                    let value = c.take(vlen)?.to_string();
                    if !c.done() {
                        return None;
                    }
                    sc.annotations.insert(key, value);
                }
                "traffic" => {
                    let mut c = Cur::new(rest);
                    let klen = c.uint()? as usize;
                    c.expect(b':')?;
                    let key = c.take(klen)?.to_string();
                    c.expect(b' ')?;
                    let vlen = c.uint()? as usize;
                    c.expect(b':')?;
                    let value = c.take(vlen)?.to_string();
                    if !c.done() {
                        return None;
                    }
                    sc.traffics.insert(key, value);
                }
                _ => return None,
            }
        }
        Some(sc)
    }

    /// Reads the sidecar at `path`. A missing, stale (schema or rule
    /// fingerprint mismatch), truncated, or corrupt file yields an
    /// empty document — persistence failures degrade to cold starts,
    /// never errors.
    pub fn load(path: &Path) -> Sidecar {
        match std::fs::read_to_string(path) {
            Ok(text) => Sidecar::parse(&text).unwrap_or_default(),
            Err(_) => Sidecar::default(),
        }
    }

    /// Merges this document into the file at `path` atomically: under
    /// the shared per-file lock, loads whatever is on disk (empty if
    /// stale or corrupt — which means a save after a rule change
    /// rewrites the file fresh), merges `self` in, and replaces the
    /// file via tempfile + rename. Missing parent directories are
    /// created.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn save(&self, path: &Path) -> io::Result<()> {
        let lock = atomicfile::path_lock(path);
        let _guard = lock.lock().expect("sidecar file lock poisoned");
        let mut doc = Sidecar::load(path);
        doc.merge(self);
        atomicfile::write_atomic(path, &doc.render())
    }
}

// ---- expression encoding ------------------------------------------------
//
// A compact, space-free, self-delimiting prefix encoding, so entry
// lines can be split on whitespace and every decoded token rebuilds the
// exact stored structure via `Expr::raw` (re-interning it on the
// decoding thread). Leaves: `c<int>` (constant), `y<len>:<bytes>`
// (symbol). Compounds: `(<tag>...)` with one-byte tags.

fn enc_expr(e: &Expr, out: &mut String) {
    match e.kind() {
        ExprKind::Const(v) => {
            let _ = write!(out, "c{v}");
        }
        ExprKind::Sym(s) => {
            let _ = write!(out, "y{}:{s}", s.len());
        }
        ExprKind::Add(ts) => {
            out.push_str("(+");
            for t in ts {
                enc_expr(t, out);
            }
            out.push(')');
        }
        ExprKind::Mul(ts) => {
            out.push_str("(*");
            for t in ts {
                enc_expr(t, out);
            }
            out.push(')');
        }
        ExprKind::FloorDiv(a, b) => enc_pair('/', a, b, out),
        ExprKind::Mod(a, b) => enc_pair('%', a, b, out),
        ExprKind::Min(a, b) => enc_pair('m', a, b, out),
        ExprKind::Max(a, b) => enc_pair('M', a, b, out),
        ExprKind::Xor(a, b) => enc_pair('x', a, b, out),
        ExprKind::Select(c, t, e) => {
            out.push_str("(s");
            enc_cond(c, out);
            enc_expr(t, out);
            enc_expr(e, out);
            out.push(')');
        }
        ExprKind::ISqrt(a) => {
            out.push_str("(q");
            enc_expr(a, out);
            out.push(')');
        }
        ExprKind::Range {
            lo,
            len,
            axis,
            ndims,
        } => {
            out.push_str("(r");
            enc_expr(lo, out);
            enc_expr(len, out);
            let _ = write!(out, "a{axis}n{ndims}");
            out.push(')');
        }
    }
}

fn enc_pair(tag: char, a: &Expr, b: &Expr, out: &mut String) {
    out.push('(');
    out.push(tag);
    enc_expr(a, out);
    enc_expr(b, out);
    out.push(')');
}

fn enc_cond(c: &Cond, out: &mut String) {
    match c {
        Cond::Cmp(op, a, b) => {
            out.push_str("(C");
            out.push(match op {
                CmpOp::Lt => '<',
                CmpOp::Le => 'l',
                CmpOp::Eq => '=',
                CmpOp::Ne => '!',
                CmpOp::Gt => '>',
                CmpOp::Ge => 'g',
            });
            enc_expr(a, out);
            enc_expr(b, out);
            out.push(')');
        }
        Cond::All(cs) => {
            out.push_str("(A");
            for c in cs {
                enc_cond(c, out);
            }
            out.push(')');
        }
        Cond::Any(cs) => {
            out.push_str("(O");
            for c in cs {
                enc_cond(c, out);
            }
            out.push(')');
        }
        Cond::Not(c) => {
            out.push_str("(N");
            enc_cond(c, out);
            out.push(')');
        }
    }
}

fn enc_expr_string(e: &Expr) -> String {
    let mut s = String::new();
    enc_expr(e, &mut s);
    s
}

/// Encodes the input expression behind memo key `id`, returning the
/// encoding and the structural hash. `None` when this thread's arena
/// does not know the id, or when the encoding would not survive the
/// line-oriented document (whitespace in a symbol name).
fn enc_input(exprs: &HashMap<u64, Expr>, id: u64) -> Option<(String, u64)> {
    let e = exprs.get(&id)?;
    let enc = enc_expr_string(e);
    if enc.contains(char::is_whitespace) {
        return None;
    }
    Some((enc, e.shash()))
}

/// Encodes an interned environment's canonical content. Bounds render
/// in `EnvKey` order (sorted by name); divisibility facts are sorted by
/// their encoded text, so the encoding is content-deterministic across
/// sessions even though `EnvKey` orders divs by session-local ids.
fn enc_env_key(key: &EnvKey, exprs: &HashMap<u64, Expr>) -> Option<String> {
    let mut s = String::from("(E");
    for (name, lo, hi) in &key.0 {
        s.push_str("(b");
        let _ = write!(s, "{}:{name}", name.len());
        for side in [lo, hi] {
            match side {
                None => s.push('_'),
                Some(id) => enc_expr(exprs.get(id)?, &mut s),
            }
        }
        s.push(')');
    }
    let mut divs: Vec<String> = Vec::with_capacity(key.1.len());
    for (d, x) in &key.1 {
        let mut t = String::from("(d");
        enc_expr(exprs.get(d)?, &mut t);
        enc_expr(exprs.get(x)?, &mut t);
        t.push(')');
        divs.push(t);
    }
    divs.sort_unstable();
    for d in divs {
        s.push_str(&d);
    }
    s.push(')');
    if s.contains(char::is_whitespace) {
        return None;
    }
    Some(s)
}

// ---- decoding -----------------------------------------------------------

/// A byte cursor over one encoded token.
struct Cur<'a> {
    b: &'a [u8],
    i: usize,
}

impl<'a> Cur<'a> {
    fn new(s: &'a str) -> Cur<'a> {
        Cur {
            b: s.as_bytes(),
            i: 0,
        }
    }

    fn done(&self) -> bool {
        self.i == self.b.len()
    }

    fn peek(&self) -> Option<u8> {
        self.b.get(self.i).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.i += 1;
        Some(b)
    }

    fn expect(&mut self, want: u8) -> Option<()> {
        (self.bump()? == want).then_some(())
    }

    /// A non-negative decimal integer (at least one digit).
    fn uint(&mut self) -> Option<u64> {
        let start = self.i;
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.i += 1;
        }
        if self.i == start {
            return None;
        }
        std::str::from_utf8(&self.b[start..self.i])
            .ok()?
            .parse()
            .ok()
    }

    /// A decimal integer with an optional leading minus.
    fn int(&mut self) -> Option<i64> {
        let neg = self.peek() == Some(b'-');
        if neg {
            self.i += 1;
        }
        let v = self.uint()?;
        if neg {
            Some(-(i64::try_from(v).ok()?))
        } else {
            i64::try_from(v).ok()
        }
    }

    /// Exactly `n` bytes as UTF-8 (fails on a split code point).
    fn take(&mut self, n: usize) -> Option<&'a str> {
        let bytes = self.b.get(self.i..self.i.checked_add(n)?)?;
        self.i += n;
        std::str::from_utf8(bytes).ok()
    }
}

fn dec_expr(c: &mut Cur) -> Option<Expr> {
    match c.peek()? {
        b'c' => {
            c.bump();
            Some(Expr::val(c.int()?))
        }
        b'y' => {
            c.bump();
            let n = c.uint()? as usize;
            c.expect(b':')?;
            Some(Expr::sym(c.take(n)?))
        }
        b'(' => {
            c.bump();
            match c.bump()? {
                b'+' => Some(Expr::raw(ExprKind::Add(dec_list(c)?))),
                b'*' => Some(Expr::raw(ExprKind::Mul(dec_list(c)?))),
                b'/' => dec_pair(c, ExprKind::FloorDiv),
                b'%' => dec_pair(c, ExprKind::Mod),
                b'm' => dec_pair(c, ExprKind::Min),
                b'M' => dec_pair(c, ExprKind::Max),
                b'x' => dec_pair(c, ExprKind::Xor),
                b's' => {
                    let cond = dec_cond(c)?;
                    let t = dec_expr(c)?;
                    let e = dec_expr(c)?;
                    c.expect(b')')?;
                    Some(Expr::raw(ExprKind::Select(cond, t, e)))
                }
                b'q' => {
                    let a = dec_expr(c)?;
                    c.expect(b')')?;
                    Some(Expr::raw(ExprKind::ISqrt(a)))
                }
                b'r' => {
                    let lo = dec_expr(c)?;
                    let len = dec_expr(c)?;
                    c.expect(b'a')?;
                    let axis = c.uint()? as usize;
                    c.expect(b'n')?;
                    let ndims = c.uint()? as usize;
                    c.expect(b')')?;
                    Some(Expr::raw(ExprKind::Range {
                        lo,
                        len,
                        axis,
                        ndims,
                    }))
                }
                _ => None,
            }
        }
        _ => None,
    }
}

/// Child expressions up to the closing paren (which is consumed).
fn dec_list(c: &mut Cur) -> Option<Vec<Expr>> {
    let mut out = Vec::new();
    while c.peek()? != b')' {
        out.push(dec_expr(c)?);
    }
    c.bump();
    Some(out)
}

fn dec_pair(c: &mut Cur, build: impl FnOnce(Expr, Expr) -> ExprKind) -> Option<Expr> {
    let a = dec_expr(c)?;
    let b = dec_expr(c)?;
    c.expect(b')')?;
    Some(Expr::raw(build(a, b)))
}

fn dec_cond(c: &mut Cur) -> Option<Cond> {
    c.expect(b'(')?;
    match c.bump()? {
        b'C' => {
            let op = match c.bump()? {
                b'<' => CmpOp::Lt,
                b'l' => CmpOp::Le,
                b'=' => CmpOp::Eq,
                b'!' => CmpOp::Ne,
                b'>' => CmpOp::Gt,
                b'g' => CmpOp::Ge,
                _ => return None,
            };
            let a = dec_expr(c)?;
            let b = dec_expr(c)?;
            c.expect(b')')?;
            Some(Cond::Cmp(op, a, b))
        }
        b'A' => Some(Cond::All(dec_cond_list(c)?)),
        b'O' => Some(Cond::Any(dec_cond_list(c)?)),
        b'N' => {
            let inner = dec_cond(c)?;
            c.expect(b')')?;
            Some(Cond::Not(Box::new(inner)))
        }
        _ => None,
    }
}

fn dec_cond_list(c: &mut Cur) -> Option<Vec<Cond>> {
    let mut out = Vec::new();
    while c.peek()? != b')' {
        out.push(dec_cond(c)?);
    }
    c.bump();
    Some(out)
}

/// Decodes a whole token (the cursor must be fully consumed).
fn dec_expr_full(enc: &str) -> Option<Expr> {
    let mut c = Cur::new(enc);
    let e = dec_expr(&mut c)?;
    c.done().then_some(e)
}

/// Decodes one memo entry: the input (verified against its recorded
/// structural hash) and the result.
fn dec_entry(input_enc: &str, shash: u64, result_enc: &str) -> Option<(Expr, Expr)> {
    let input = dec_expr_full(input_enc)?;
    if input.shash() != shash {
        return None;
    }
    let result = dec_expr_full(result_enc)?;
    Some((input, result))
}

/// Decodes an environment encoding, rebuilds the [`RangeEnv`], and
/// returns its session id — which matches the id any equal environment
/// constructed by this session's tuner code gets, so installed entries
/// are served for real lookups.
fn dec_env(enc: &str) -> Option<u64> {
    let mut c = Cur::new(enc);
    c.expect(b'(')?;
    c.expect(b'E')?;
    let mut env = RangeEnv::new();
    while c.peek()? == b'(' {
        c.bump();
        match c.bump()? {
            b'b' => {
                let n = c.uint()? as usize;
                c.expect(b':')?;
                let name = c.take(n)?.to_string();
                let side = |c: &mut Cur| -> Option<Option<Expr>> {
                    if c.peek()? == b'_' {
                        c.bump();
                        Some(None)
                    } else {
                        Some(Some(dec_expr(c)?))
                    }
                };
                let lo = side(&mut c)?;
                let hi = side(&mut c)?;
                c.expect(b')')?;
                env.set_bounds_opt(&name, lo, hi);
            }
            b'd' => {
                let d = dec_expr(&mut c)?;
                let x = dec_expr(&mut c)?;
                c.expect(b')')?;
                env.assume_divides(d, x);
            }
            _ => return None,
        }
    }
    c.expect(b')')?;
    if !c.done() {
        return None;
    }
    Some(env.id())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(e: &Expr) {
        let enc = enc_expr_string(e);
        let back = dec_expr_full(&enc).unwrap_or_else(|| panic!("decode failed: {enc}"));
        assert!(back.ptr_eq(e), "{enc} decoded to a different node");
    }

    #[test]
    fn every_node_kind_round_trips() {
        let x = Expr::sym("x");
        let n = Expr::sym("n");
        let samples = [
            Expr::val(-42),
            Expr::val(0),
            Expr::sym("long_symbol_name"),
            &x * &n + Expr::val(3),
            &x + &n,
            x.floor_div(&n),
            x.rem(&n),
            x.clone().min(&n),
            x.clone().max(&n),
            x.xor(&n),
            x.isqrt(),
            Expr::range(Expr::zero(), Expr::val(64), 1, 2),
            Expr::select(
                Cond::All(vec![
                    Cond::lt(x.clone(), n.clone()),
                    Cond::Any(vec![Cond::ge(x.clone(), Expr::zero())]),
                    Cond::Not(Box::new(Cond::eq(x.clone(), n.clone()))),
                ]),
                &x + Expr::one(),
                n.clone(),
            ),
        ];
        for e in &samples {
            round_trip(e);
        }
        // Every comparison operator.
        for op in [
            CmpOp::Lt,
            CmpOp::Le,
            CmpOp::Eq,
            CmpOp::Ne,
            CmpOp::Gt,
            CmpOp::Ge,
        ] {
            round_trip(&Expr::raw(ExprKind::Select(
                Cond::Cmp(op, x.clone(), n.clone()),
                x.clone(),
                n.clone(),
            )));
        }
    }

    #[test]
    fn render_parse_round_trips_and_is_deterministic() {
        let mut env = RangeEnv::new();
        env.set_bounds("zq_sc_i", Expr::zero(), Expr::sym("zq_sc_n"));
        env.assume_pos("zq_sc_n");
        env.assume_divides(Expr::sym("zq_sc_b"), Expr::sym("zq_sc_n"));
        let e = (Expr::sym("zq_sc_i") * Expr::sym("zq_sc_n")).floor_div(&Expr::sym("zq_sc_n"));
        let _ = crate::simplify::fixpoint_simplify(&e, &env);
        let _ = crate::cost::ops(&e);
        let sc = Sidecar::collect();
        assert!(!sc.is_empty());
        let text = sc.render();
        let back = Sidecar::parse(&text).expect("rendered document must parse");
        assert_eq!(text, back.render(), "render must be canonical");
    }

    #[test]
    fn foreign_header_is_rejected() {
        assert!(Sidecar::parse("not-a-sidecar v1 rules=0\n").is_none());
        assert!(Sidecar::parse(&format!(
            "{MAGIC} v999 rules={:016x}\n",
            rules::table_fingerprint()
        ))
        .is_none());
        assert!(
            Sidecar::parse(&format!("{MAGIC} v{SIDECAR_SCHEMA_VERSION} rules=dead\n")).is_none()
        );
        // The happy header parses.
        assert!(Sidecar::parse(&format!(
            "{MAGIC} v{SIDECAR_SCHEMA_VERSION} rules={:016x}\n",
            rules::table_fingerprint()
        ))
        .is_some());
    }

    #[test]
    fn merge_is_a_union() {
        let mut a = Sidecar::default();
        a.set_annotation("k1", "v1");
        let mut b = Sidecar::default();
        b.set_annotation("k2", "v2");
        b.set_annotation("k1", "other");
        a.merge(&b);
        let anns: Vec<(&str, &str)> = a.annotations().collect();
        assert_eq!(anns, [("k1", "v1"), ("k2", "v2")]);
    }
}
