//! Expression expansion: distributing products over sums.
//!
//! §IV-A of the paper evaluates whether *pre-expanding* index expressions
//! before simplification exposes more rewriting opportunities. Expansion
//! helped LUD and hurt NW, so LEGO picks the cheaper result by op count —
//! see [`crate::Engine::pick_cheaper`].

use crate::expr::{Expr, ExprKind};
use crate::intern;

/// Recursively distributes every product over sums, e.g.
/// `a*(b + c) → a*b + a*c`. Division, modulo, min/max, and select children
/// are expanded but not distributed through. Results are memoized per
/// interned node for the session (expansion is environment-free).
pub(crate) fn distribute(e: &Expr) -> Expr {
    let id = e.id().get();
    if let Some(hit) = intern::expand_get(id) {
        return hit;
    }
    let r = distribute_uncached(e);
    intern::expand_insert(id, r.clone());
    r
}

fn distribute_uncached(e: &Expr) -> Expr {
    match e.kind() {
        ExprKind::Const(_) | ExprKind::Sym(_) => e.clone(),
        ExprKind::Add(ts) => Expr::add_all(ts.iter().map(distribute)),
        ExprKind::Mul(ts) => {
            // Expand children first, then distribute pairwise.
            let mut acc: Vec<Expr> = vec![Expr::one()];
            for t in ts {
                let t = distribute(t);
                let addends: Vec<Expr> = match t.kind() {
                    ExprKind::Add(us) => us.clone(),
                    _ => vec![t.clone()],
                };
                let mut next = Vec::with_capacity(acc.len() * addends.len());
                for a in &acc {
                    for b in &addends {
                        next.push(a * b);
                    }
                }
                acc = next;
            }
            Expr::add_all(acc)
        }
        ExprKind::FloorDiv(a, b) => distribute(a).floor_div(&distribute(b)),
        ExprKind::Mod(a, b) => distribute(a).rem(&distribute(b)),
        ExprKind::Min(a, b) => distribute(a).min(&distribute(b)),
        ExprKind::Max(a, b) => distribute(a).max(&distribute(b)),
        ExprKind::Xor(a, b) => distribute(a).xor(&distribute(b)),
        ExprKind::Select(c, t, f) => Expr::select(c.clone(), distribute(t), distribute(f)),
        ExprKind::ISqrt(a) => distribute(a).isqrt(),
        ExprKind::Range {
            lo,
            len,
            axis,
            ndims,
        } => Expr::range(distribute(lo), distribute(len), *axis, *ndims),
    }
}

/// Recursively distributes every product over sums.
#[deprecated(note = "construct a `lego_expr::Engine` and call `Engine::expand`")]
pub fn expand(e: &Expr) -> Expr {
    crate::engine::Engine::new().expand(e)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distributes_simple_product() {
        let (a, b, c) = (Expr::sym("a"), Expr::sym("b"), Expr::sym("c"));
        let e = &a * (&b + &c);
        assert_eq!(distribute(&e), &a * &b + &a * &c);
    }

    #[test]
    fn distributes_both_sides() {
        let (a, b, c, d) = (
            Expr::sym("a"),
            Expr::sym("b"),
            Expr::sym("c"),
            Expr::sym("d"),
        );
        let e = (&a + &b) * (&c + &d);
        let x = distribute(&e);
        assert_eq!(x, &a * &c + &a * &d + &b * &c + &b * &d);
    }

    #[test]
    fn does_not_distribute_through_div() {
        let (a, b, c) = (Expr::sym("a"), Expr::sym("b"), Expr::sym("c"));
        let e = (&a * (&b + &c)).floor_div(&Expr::sym("d"));
        let x = distribute(&e);
        // Numerator expands, but division is preserved.
        assert_eq!(x, (&a * &b + &a * &c).floor_div(&Expr::sym("d")));
    }

    #[test]
    fn expansion_preserves_value() {
        use crate::subst::{eval, Bindings};
        let e = (Expr::sym("a") + Expr::val(3)) * (Expr::sym("b") + Expr::sym("a")) * Expr::val(2);
        let x = distribute(&e);
        let mut bind = Bindings::new();
        for (a, b) in [(0i64, 0i64), (5, -3), (17, 11), (-2, 9)] {
            bind.insert("a".into(), a);
            bind.insert("b".into(), b);
            assert_eq!(eval(&e, &bind).unwrap(), eval(&x, &bind).unwrap());
        }
    }
}
