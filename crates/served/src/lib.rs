//! lego-served: a concurrent tuning-service daemon.
//!
//! Batch tuning (`lego-tune`, `tuner-bench`) answers "what is the best
//! configuration for this workload on this device?" one process at a
//! time, re-paying tuner startup and cache I/O per invocation. This
//! crate keeps one warm process resident and serves that question over
//! a TCP line-JSON protocol, resolving every request through three
//! tiers (see [`service`]):
//!
//! 1. an in-memory map of completed results, preloaded from and
//!    persisted to the schema-v4 [`lego_tune::TuningCache`];
//! 2. an in-flight table that coalesces identical concurrent searches
//!    (a thundering herd of N requests runs one search, and every
//!    requester receives byte-identical bytes);
//! 3. a fresh [`lego_tune::Tuner`] run on the worker's warm per-thread
//!    expression arena.
//!
//! Everything is `std`-only: `std::net::TcpListener` plus a fixed
//! worker-thread pool — no async runtime.
//!
//! Binaries: `lego-served` (the daemon) and `lego-served-load` (a load
//! generator that emits `BENCH_served.json`). Programs embed the daemon
//! through [`server::Server`] and talk to one through
//! [`client::Client`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod metrics;
pub mod protocol;
pub mod server;
pub mod service;

pub use client::Client;
pub use protocol::{FleetWire, Request, TuneSpec};
pub use server::{Server, ServerConfig};
pub use service::{Served, Tier, TuneService};
