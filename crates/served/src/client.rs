//! A minimal blocking client for the daemon's line-JSON protocol.
//!
//! One [`Client`] wraps one TCP connection and issues requests
//! sequentially; spin up one client per thread for concurrency (the
//! daemon serves each connection from a dedicated worker). Used by the
//! load generator and the integration tests, and importable by anything
//! that wants tunings from a resident daemon instead of an in-process
//! [`lego_tune::Tuner`].

use std::io::{BufRead, BufReader, Write};
use std::net::{TcpStream, ToSocketAddrs};

use lego_tune::Json;

use crate::protocol::{FleetWire, TuneSpec};

/// One connection to a running `lego-served` daemon.
pub struct Client {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Client {
    /// Connects to a daemon.
    ///
    /// # Errors
    ///
    /// Propagates connect failures.
    pub fn connect(addr: impl ToSocketAddrs) -> std::io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        let reader = BufReader::new(stream.try_clone()?);
        Ok(Client {
            writer: stream,
            reader,
        })
    }

    /// Sends one raw request line (newline appended if missing) and
    /// returns the raw response line, newline stripped. Exposed so
    /// tests can send deliberately malformed lines.
    ///
    /// # Errors
    ///
    /// I/O failure, or the daemon closing the connection.
    pub fn roundtrip_line(&mut self, line: &str) -> std::io::Result<String> {
        let mut out = line.trim_end_matches('\n').to_string();
        out.push('\n');
        self.writer.write_all(out.as_bytes())?;
        self.writer.flush()?;
        let mut response = String::new();
        let n = self.reader.read_line(&mut response)?;
        if n == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "daemon closed the connection",
            ));
        }
        Ok(response.trim_end().to_string())
    }

    /// Sends one request object and parses the response.
    ///
    /// # Errors
    ///
    /// I/O failure or an unparseable response line.
    pub fn request(&mut self, req: &Json) -> std::io::Result<Json> {
        let line = self.roundtrip_line(&req.render())?;
        Json::parse(&line).map_err(|e| {
            std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!("unparseable response {line:?}: {e}"),
            )
        })
    }

    /// Issues a `tune` request. The response object always carries
    /// `"ok"`; on success it holds the winner config and estimates, on
    /// failure an `"error"` string.
    ///
    /// # Errors
    ///
    /// Transport-level failures only — a tuning error is an `Ok`
    /// response with `"ok": false`.
    pub fn tune(&mut self, spec: &TuneSpec) -> std::io::Result<Json> {
        self.request(&spec.to_json())
    }

    /// Issues a `fleet` request: tunes a whole grid through the
    /// daemon's work-stealing driver and returns the run summary with
    /// per-key outcomes.
    ///
    /// # Errors
    ///
    /// Transport-level failures only — a fleet error is an `Ok`
    /// response with `"ok": false`.
    pub fn fleet(&mut self, wire: &FleetWire) -> std::io::Result<Json> {
        self.request(&wire.to_json())
    }

    /// Fetches the live metrics report.
    ///
    /// # Errors
    ///
    /// Transport-level failures.
    pub fn metrics(&mut self) -> std::io::Result<Json> {
        self.request(&Json::obj([("verb", Json::Str("metrics".into()))]))
    }

    /// Asks the daemon to drain, flush its cache, and exit.
    ///
    /// # Errors
    ///
    /// Transport-level failures.
    pub fn shutdown(&mut self) -> std::io::Result<Json> {
        self.request(&Json::obj([("verb", Json::Str("shutdown".into()))]))
    }
}

/// True when a response object reports success.
pub fn is_ok(response: &Json) -> bool {
    matches!(response.get("ok"), Some(Json::Bool(true)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol;

    #[test]
    fn is_ok_reads_the_ok_field() {
        assert!(is_ok(&Json::obj([("ok", Json::Bool(true))])));
        assert!(!is_ok(&Json::obj([("ok", Json::Bool(false))])));
        assert!(!is_ok(&protocol::error_response("nope")));
        assert!(!is_ok(&Json::Null));
    }
}
