//! Load generator for the tuning-service daemon.
//!
//! ```text
//! lego-served-load [--clients K] [--requests N] [--mix H:C:W]
//!                  [--devices a100,h100] [--sidecar PATH]
//! ```
//!
//! Spins up an embedded daemon on an ephemeral port (workers sized to
//! the client count, so every client can be served concurrently), then
//! drives four phases over K persistent connections:
//!
//! 1. **herd** — every client fires the *same* fresh request through a
//!    barrier: the coalescing tier must collapse the herd onto exactly
//!    one search, and every response line must be byte-identical;
//! 2. **cold** — distinct workload/device keys, each a fresh search;
//! 3. **warm** — the cold keys replayed, served from the memory tier;
//! 4. **rewarm** — the daemon is shut down (flushing its memo sidecar),
//!    a *new* daemon restarts against a fresh cache but the same
//!    sidecar, and the cold keys are replayed as fresh searches: the
//!    responses must be byte-identical to phase 2's and the metrics
//!    must report `sidecar_warm_hits > 0` — cross-process proof that
//!    persisted derived results re-warm a restarted service.
//!
//! Emits `BENCH_served.json` (per-phase QPS, client-side p50/p99,
//! per-tier hit counts, coalescing ratio) via the standard bench-emit
//! conventions, and exits nonzero if a phase invariant fails — CI runs
//! this binary as the service smoke test.

use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Barrier};
use std::time::Instant;

use lego_bench::emit;
use lego_served::client::{is_ok, Client};
use lego_served::{Server, ServerConfig, TuneSpec};
use lego_tune::Json;

const USAGE: &str =
    "lego-served-load: drive a herd/cold/warm request mix at an embedded lego-served daemon

usage: lego-served-load [options]

options:
  --clients K       concurrent client connections (default 8)
  --requests N      total tune requests across all phases (default 120)
  --mix H:C:W       herd:cold:warm request-count weights (default 1:3:1)
  --devices LIST    comma-separated device tags to spread cold keys over
                    (default a100,h100)
  --sidecar PATH    persistent memo-sidecar file used for the
                    restart-rewarm phase; kept after the run when given
                    (default: a temp file, removed afterwards)
  --help            print this help

exit status: 0 on success, 1 if a serving invariant fails, 2 on bad usage";

fn flag_value(flag: &str) -> Option<String> {
    let mut args = std::env::args();
    while let Some(a) = args.next() {
        if a == flag {
            return match args.next() {
                Some(v) if !v.starts_with("--") => Some(v),
                _ => {
                    eprintln!("{flag} requires a value");
                    std::process::exit(2);
                }
            };
        }
    }
    None
}

fn usize_flag(flag: &str, default: usize) -> usize {
    match flag_value(flag) {
        None => default,
        Some(v) => match v.parse::<usize>() {
            Ok(n) if n > 0 => n,
            _ => {
                eprintln!("{flag} requires a positive integer, got {v:?}");
                std::process::exit(2);
            }
        },
    }
}

/// One phase's client-side observations.
struct PhaseResult {
    name: &'static str,
    requests: usize,
    wall_s: f64,
    latencies_ms: Vec<f64>,
    responses: Vec<String>,
    /// Server tier counters diffed across the phase (memory, cache,
    /// coalesced, searched).
    tier_diff: [i64; 4],
}

fn tier_counts(metrics: &Json) -> [i64; 4] {
    let tiers = metrics.get("tiers").expect("metrics carries tiers");
    ["memory", "cache", "coalesced", "searched"]
        .map(|k| tiers.get(k).and_then(Json::as_i64).unwrap_or(0))
}

fn percentile(sorted_ms: &[f64], q: f64) -> f64 {
    if sorted_ms.is_empty() {
        return 0.0;
    }
    let idx = ((sorted_ms.len() - 1) as f64 * q).round() as usize;
    sorted_ms[idx.min(sorted_ms.len() - 1)]
}

/// Runs one phase: client `i` sends `plans[i]` sequentially, all
/// clients released together by a barrier.
fn run_phase(
    name: &'static str,
    addr: std::net::SocketAddr,
    service: &lego_served::TuneService,
    plans: Vec<Vec<TuneSpec>>,
    failed: &AtomicBool,
) -> PhaseResult {
    let before = tier_counts(&service.metrics().to_json());
    let barrier = Arc::new(Barrier::new(plans.len()));
    let t0 = Instant::now();
    let handles: Vec<_> = plans
        .into_iter()
        .map(|plan| {
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).expect("connect to embedded daemon");
                barrier.wait();
                let mut out = Vec::with_capacity(plan.len());
                for spec in &plan {
                    let t = Instant::now();
                    let response = client.tune(spec).expect("tune roundtrip");
                    let ms = t.elapsed().as_secs_f64() * 1e3;
                    out.push((ms, response));
                }
                out
            })
        })
        .collect();
    let mut latencies_ms = Vec::new();
    let mut responses = Vec::new();
    for h in handles {
        for (ms, response) in h.join().expect("client thread") {
            if !is_ok(&response) {
                eprintln!("[{name}] request failed: {}", response.render());
                failed.store(true, Ordering::SeqCst);
            }
            latencies_ms.push(ms);
            responses.push(response.render());
        }
    }
    let wall_s = t0.elapsed().as_secs_f64().max(1e-9);
    let after = tier_counts(&service.metrics().to_json());
    let mut tier_diff = [0i64; 4];
    for i in 0..4 {
        tier_diff[i] = after[i] - before[i];
    }
    PhaseResult {
        name,
        requests: responses.len(),
        wall_s,
        latencies_ms,
        responses,
        tier_diff,
    }
}

fn phase_row(p: &PhaseResult) -> Json {
    let mut sorted = p.latencies_ms.clone();
    sorted.sort_by(|a, b| a.total_cmp(b));
    Json::obj([
        ("phase", Json::Str(p.name.to_string())),
        ("requests", Json::Int(p.requests as i64)),
        ("qps", Json::num(p.requests as f64 / p.wall_s)),
        ("p50_ms", Json::num(percentile(&sorted, 0.50))),
        ("p99_ms", Json::num(percentile(&sorted, 0.99))),
        ("memory_hits", Json::Int(p.tier_diff[0])),
        ("cache_hits", Json::Int(p.tier_diff[1])),
        ("coalesced", Json::Int(p.tier_diff[2])),
        ("searched", Json::Int(p.tier_diff[3])),
        (
            "hit_rate",
            Json::num(
                (p.tier_diff[0] + p.tier_diff[1] + p.tier_diff[2]) as f64
                    / (p.requests.max(1)) as f64,
            ),
        ),
    ])
}

/// The cold pool: `count` distinct (workload, device) keys spread over
/// cheap-to-search families and the requested devices.
fn cold_pool(count: usize, devices: &[String]) -> Vec<TuneSpec> {
    (0..count)
        .map(|i| {
            let step = (i / 3) as i64;
            // Small per-step growth keeps every key distinct without
            // letting the trace cost of the largest sizes dominate.
            let workload = match i % 3 {
                0 => format!("transpose(n={})", 256 + 16 * step),
                1 => format!("softmax(m={},n=256)", 8 + 8 * step),
                _ => format!("nw(n={},b=16)", 64 + 16 * step),
            };
            TuneSpec {
                workload,
                device: Some(devices[i % devices.len()].clone()),
                ..TuneSpec::default()
            }
        })
        .collect()
}

/// Deals `specs` round-robin into `clients` per-client plans.
fn deal(specs: Vec<TuneSpec>, clients: usize) -> Vec<Vec<TuneSpec>> {
    let mut plans = vec![Vec::new(); clients];
    for (i, spec) in specs.into_iter().enumerate() {
        plans[i % clients].push(spec);
    }
    plans
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        println!("{USAGE}");
        return;
    }
    const VALUE_FLAGS: [&str; 5] = ["--clients", "--requests", "--mix", "--devices", "--sidecar"];
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if VALUE_FLAGS.contains(&a.as_str()) {
            let _ = it.next();
        } else {
            eprintln!("unknown argument {a:?}\n\n{USAGE}");
            std::process::exit(2);
        }
    }

    let clients = usize_flag("--clients", 8);
    let requests = usize_flag("--requests", 120);
    let mix = flag_value("--mix").unwrap_or_else(|| "1:3:1".to_string());
    let weights: Vec<usize> = mix
        .split(':')
        .map(|p| p.parse::<usize>().unwrap_or(0))
        .collect();
    if weights.len() != 3 || weights.iter().sum::<usize>() == 0 {
        eprintln!("--mix must be H:C:W with nonnegative integer weights, got {mix:?}");
        std::process::exit(2);
    }
    let devices: Vec<String> = flag_value("--devices")
        .unwrap_or_else(|| "a100,h100".to_string())
        .split(',')
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .collect();
    for d in &devices {
        if gpu_sim::lookup(d).is_none() {
            eprintln!(
                "unknown device {d:?} in --devices (use {})",
                gpu_sim::DEVICE_TAGS.join("|")
            );
            std::process::exit(2);
        }
    }

    let total_w: usize = weights.iter().sum();
    // Herd needs at least the full client count to exercise coalescing.
    let herd_n = (requests * weights[0] / total_w).max(clients);
    let cold_n = (requests * weights[1] / total_w).max(1);
    let warm_n = (requests * weights[2] / total_w).max(1);

    let cache_path =
        std::env::temp_dir().join(format!("lego_served_load_{}.json", std::process::id()));
    let _ = std::fs::remove_file(&cache_path);
    let sidecar_flag = flag_value("--sidecar").map(PathBuf::from);
    let keep_sidecar = sidecar_flag.is_some();
    let sidecar_path = sidecar_flag.unwrap_or_else(|| {
        std::env::temp_dir().join(format!(
            "lego_served_load_sidecar_{}.txt",
            std::process::id()
        ))
    });
    // The first daemon must start cold so the rewarm phase measures
    // what *this run's* shutdown flush persisted.
    let _ = std::fs::remove_file(&sidecar_path);

    let server = Server::start(ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: clients,
        cache: Some(PathBuf::from(&cache_path)),
        sidecar: Some(sidecar_path.clone()),
        device_default: gpu_sim::a100(),
    })
    .expect("bind embedded daemon");
    let addr = server.local_addr();
    let service = server.service();
    println!(
        "lego-served-load: embedded daemon on {addr}, {clients} clients, \
         mix herd={herd_n} cold={cold_n} warm={warm_n}"
    );

    let failed = AtomicBool::new(false);

    // Phase 1: herd — one identical fresh request per slot.
    let herd_spec = TuneSpec::workload("lud(n=512,bs=16)");
    let herd = run_phase(
        "herd",
        addr,
        &service,
        deal(vec![herd_spec; herd_n], clients),
        &failed,
    );
    if herd.tier_diff[3] != 1 {
        eprintln!(
            "INVARIANT VIOLATED: herd of {} ran {} searches (want exactly 1)",
            herd.requests, herd.tier_diff[3]
        );
        failed.store(true, Ordering::SeqCst);
    }
    if let Some(first) = herd.responses.first() {
        if herd.responses.iter().any(|r| r != first) {
            eprintln!("INVARIANT VIOLATED: herd responses are not byte-identical");
            failed.store(true, Ordering::SeqCst);
        }
    }
    let coalescing_ratio = herd.requests as f64 / herd.tier_diff[3].max(1) as f64;
    if coalescing_ratio <= 1.0 {
        eprintln!("INVARIANT VIOLATED: coalescing ratio {coalescing_ratio} must exceed 1");
        failed.store(true, Ordering::SeqCst);
    }

    // Phase 2: cold — distinct keys, each a fresh search.
    let pool = cold_pool(cold_n, &devices);
    let cold = run_phase("cold", addr, &service, deal(pool.clone(), clients), &failed);
    if cold.tier_diff[3] != cold_n as i64 {
        eprintln!(
            "INVARIANT VIOLATED: {} distinct cold keys ran {} searches",
            cold_n, cold.tier_diff[3]
        );
        failed.store(true, Ordering::SeqCst);
    }

    // Phase 3: warm — replay the cold keys; everything must come from
    // the memory tier.
    let warm_specs: Vec<TuneSpec> = (0..warm_n).map(|i| pool[i % pool.len()].clone()).collect();
    let warm = run_phase("warm", addr, &service, deal(warm_specs, clients), &failed);
    if warm.tier_diff[0] != warm_n as i64 {
        eprintln!(
            "INVARIANT VIOLATED: {} warm replays got {} memory hits",
            warm_n, warm.tier_diff[0]
        );
        failed.store(true, Ordering::SeqCst);
    }

    // Shut the daemon down cleanly and flush the cache.
    let mut ctl = Client::connect(addr).expect("connect for shutdown");
    let bye = ctl.shutdown().expect("shutdown roundtrip");
    if !is_ok(&bye) {
        eprintln!(
            "INVARIANT VIOLATED: shutdown not acknowledged: {}",
            bye.render()
        );
        failed.store(true, Ordering::SeqCst);
    }
    server.join().expect("daemon drain + cache flush");
    if !cache_path.exists() {
        eprintln!("INVARIANT VIOLATED: cache file was not flushed on shutdown");
        failed.store(true, Ordering::SeqCst);
    }
    let _ = std::fs::remove_file(&cache_path);
    if !sidecar_path.exists() {
        eprintln!("INVARIANT VIOLATED: memo sidecar was not flushed on shutdown");
        failed.store(true, Ordering::SeqCst);
    }

    // Phase 4: restart-rewarm — a new daemon against a *fresh* cache
    // (so the replays run real searches, not memory/cache hits) but the
    // first daemon's sidecar. The searches must be byte-identical to
    // the cold phase's and must hit the re-warmed memo tables.
    let cache2_path = std::env::temp_dir().join(format!(
        "lego_served_load_{}_rewarm.json",
        std::process::id()
    ));
    let _ = std::fs::remove_file(&cache2_path);
    let server2 = Server::start(ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: clients,
        cache: Some(cache2_path.clone()),
        sidecar: Some(sidecar_path.clone()),
        device_default: gpu_sim::a100(),
    })
    .expect("bind restarted daemon");
    let addr2 = server2.local_addr();
    let service2 = server2.service();
    let rewarm = run_phase(
        "rewarm",
        addr2,
        &service2,
        deal(pool.clone(), clients),
        &failed,
    );
    if rewarm.tier_diff[3] != cold_n as i64 {
        eprintln!(
            "INVARIANT VIOLATED: {} rewarm keys ran {} searches (fresh cache must force searches)",
            cold_n, rewarm.tier_diff[3]
        );
        failed.store(true, Ordering::SeqCst);
    }
    let byte_identical = {
        let mut a = cold.responses.clone();
        let mut b = rewarm.responses.clone();
        a.sort();
        b.sort();
        a == b
    };
    if !byte_identical {
        eprintln!(
            "INVARIANT VIOLATED: rewarmed searches diverged from the cold run \
             (sidecar state altered results)"
        );
        failed.store(true, Ordering::SeqCst);
    }
    let sidecar_warm_hits = service2
        .metrics()
        .to_json()
        .get("sidecar_warm_hits")
        .and_then(Json::as_i64)
        .unwrap_or(0);
    if sidecar_warm_hits <= 0 {
        eprintln!(
            "INVARIANT VIOLATED: restarted daemon reported {sidecar_warm_hits} sidecar warm hits"
        );
        failed.store(true, Ordering::SeqCst);
    }
    let mut ctl2 = Client::connect(addr2).expect("connect for rewarm shutdown");
    let bye2 = ctl2.shutdown().expect("rewarm shutdown roundtrip");
    if !is_ok(&bye2) {
        eprintln!(
            "INVARIANT VIOLATED: rewarm shutdown not acknowledged: {}",
            bye2.render()
        );
        failed.store(true, Ordering::SeqCst);
    }
    server2.join().expect("rewarm daemon drain + flush");
    let _ = std::fs::remove_file(&cache2_path);
    if !keep_sidecar {
        let _ = std::fs::remove_file(&sidecar_path);
    }

    let phases = [&herd, &cold, &warm, &rewarm];
    println!(
        "\n{:<6} {:>8} {:>9} {:>9} {:>9} {:>7} {:>6} {:>9} {:>8}",
        "phase", "requests", "qps", "p50_ms", "p99_ms", "memory", "cache", "coalesced", "searched"
    );
    for p in &phases {
        let mut sorted = p.latencies_ms.clone();
        sorted.sort_by(|a, b| a.total_cmp(b));
        println!(
            "{:<6} {:>8} {:>9.1} {:>9.3} {:>9.3} {:>7} {:>6} {:>9} {:>8}",
            p.name,
            p.requests,
            p.requests as f64 / p.wall_s,
            percentile(&sorted, 0.50),
            percentile(&sorted, 0.99),
            p.tier_diff[0],
            p.tier_diff[1],
            p.tier_diff[2],
            p.tier_diff[3],
        );
    }
    println!(
        "coalescing ratio: {coalescing_ratio:.1}x ({} herd requests, 1 search)",
        herd.requests
    );

    let mut rows: Vec<Json> = phases.iter().map(|p| phase_row(p)).collect();
    rows.push(Json::obj([
        ("phase", Json::Str("summary".to_string())),
        ("clients", Json::Int(clients as i64)),
        (
            "requests",
            Json::Int((herd.requests + cold.requests + warm.requests + rewarm.requests) as i64),
        ),
        ("coalescing_ratio", Json::num(coalescing_ratio)),
        (
            "warm_hit_rate",
            Json::num(warm.tier_diff[0] as f64 / warm.requests.max(1) as f64),
        ),
        ("sidecar_warm_hits", Json::Int(sidecar_warm_hits)),
        ("rewarm_byte_identical", Json::Bool(byte_identical)),
        ("devices", Json::Str(devices.join(","))),
        ("mix", Json::Str(mix.clone())),
    ]));
    emit::announce(emit::write_bench_json("served", rows));

    if failed.load(Ordering::SeqCst) {
        eprintln!("lego-served-load: FAILED (see invariant violations above)");
        std::process::exit(1);
    }
    println!("lego-served-load: all serving invariants held");
}
