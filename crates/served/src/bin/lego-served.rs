//! The tuning-service daemon.
//!
//! ```text
//! lego-served [--addr HOST:PORT] [--workers N] [--cache PATH]
//!             [--sidecar PATH] [--device-default a100|h100|mi300]
//! ```
//!
//! Listens for line-JSON requests (`tune`, `fleet`, `metrics`,
//! `shutdown`) and serves best-config answers through the three-tier
//! path described in `lego_served::service` — the `fleet` verb tunes a
//! whole grid at once through the work-stealing
//! [`lego_tune::FleetDriver`]. Runs until a client sends the `shutdown`
//! verb, then drains in-flight work, flushes the tuning cache, and
//! exits 0.

use std::path::PathBuf;

use lego_served::{Server, ServerConfig};

const USAGE: &str = "lego-served: serve tuning requests over line-delimited JSON on TCP

usage: lego-served [options]

options:
  --addr HOST:PORT     listen address (default 127.0.0.1:7711; port 0 = ephemeral)
  --workers N          worker threads = max concurrent connections (default 8)
  --cache PATH         persistent tuning-cache file (default TUNE_CACHE.json;
                       \"none\" disables persistence)
  --sidecar PATH       persistent memo sidecar: re-warms every worker's
                       expression/annotation memo tables at startup and
                       flushes the merged derived results on shutdown
                       (default none; \"none\" disables)
  --device-default D   device when a request names none: a100|h100|mi300
                       (default a100)
  --help               print this help

protocol (one JSON object per line, response mirrors with \"ok\"):
  {\"verb\":\"tune\",\"workload\":\"matmul(n=2048)\",\"device\":\"h100\",
   \"strategy\":\"anneal\",\"budget\":256,\"space\":\"enlarged\"}
  {\"verb\":\"fleet\",\"grid\":\"matmul:512..4096x2@a100,h100\",
   \"strategy\":\"anneal\",\"budget\":160,\"threads\":4,\"transfer\":true}
  {\"verb\":\"metrics\"}
  {\"verb\":\"shutdown\"}";

fn flag_value(flag: &str) -> Option<String> {
    let mut args = std::env::args();
    while let Some(a) = args.next() {
        if a == flag {
            return match args.next() {
                Some(v) if !v.starts_with("--") => Some(v),
                _ => {
                    eprintln!("{flag} requires a value");
                    std::process::exit(2);
                }
            };
        }
    }
    None
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        println!("{USAGE}");
        return;
    }
    const VALUE_FLAGS: [&str; 5] = [
        "--addr",
        "--workers",
        "--cache",
        "--sidecar",
        "--device-default",
    ];
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if VALUE_FLAGS.contains(&a.as_str()) {
            let _ = it.next();
        } else {
            eprintln!("unknown argument {a:?}\n\n{USAGE}");
            std::process::exit(2);
        }
    }

    let mut cfg = ServerConfig::default();
    if let Some(addr) = flag_value("--addr") {
        cfg.addr = addr;
    }
    if let Some(w) = flag_value("--workers") {
        match w.parse::<usize>() {
            Ok(n) if n > 0 => cfg.workers = n,
            _ => {
                eprintln!("--workers requires a positive integer, got {w:?}");
                std::process::exit(2);
            }
        }
    }
    if let Some(path) = flag_value("--cache") {
        cfg.cache = if path == "none" {
            None
        } else {
            Some(PathBuf::from(path))
        };
    }
    if let Some(path) = flag_value("--sidecar") {
        cfg.sidecar = if path == "none" {
            None
        } else {
            Some(PathBuf::from(path))
        };
    }
    if let Some(dev) = flag_value("--device-default") {
        cfg.device_default = gpu_sim::lookup(&dev).unwrap_or_else(|| {
            eprintln!(
                "unknown --device-default {dev:?} (use {})",
                gpu_sim::DEVICE_TAGS.join("|")
            );
            std::process::exit(2);
        });
    }

    let workers = cfg.workers;
    let server = match Server::start(cfg) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("lego-served: bind failed: {e}");
            std::process::exit(1);
        }
    };
    println!(
        "lego-served: listening on {} ({} workers); send {{\"verb\":\"shutdown\"}} to stop",
        server.local_addr(),
        workers
    );
    if let Err(e) = server.join() {
        eprintln!("lego-served: cache flush failed: {e}");
        std::process::exit(1);
    }
    println!("lego-served: drained and flushed, bye");
}
