//! The daemon shell: a `TcpListener`, a fixed worker-thread pool, and
//! the request dispatch loop.
//!
//! The container has no crate registry, so there is no tokio/hyper
//! here — plain `std::net` blocking I/O. One acceptor thread pushes
//! connections into an `mpsc` channel; each worker owns one connection
//! at a time and serves its line-delimited requests until the client
//! hangs up. Sizing note: a client holds its worker for the lifetime of
//! the *connection*, so `--workers` bounds concurrent clients — a herd
//! of N simultaneous connections needs N workers to all coalesce in
//! flight at once (with fewer they serialize, which is still correct,
//! just less concurrent).
//!
//! Shutdown: the `shutdown` verb flags the service, answers, and pokes
//! the acceptor awake with a throwaway connection. The acceptor stops
//! and drops the channel sender; workers drain whatever connections
//! were already queued, finish their in-flight searches (reads poll on
//! a short timeout so idle connections notice the flag), and exit. The
//! daemon then flushes the cache and exits 0.

use std::io::{BufRead, BufReader, ErrorKind, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::mpsc;
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use gpu_sim::GpuConfig;
use lego_tune::fleet::FleetReport;
use lego_tune::Json;

use crate::protocol::{self, Request};
use crate::service::TuneService;

/// How often a blocked read re-checks the shutdown flag.
const READ_POLL: Duration = Duration::from_millis(100);

/// Daemon configuration (the `lego-served` flags).
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Listen address, e.g. `127.0.0.1:7711` (`:0` for ephemeral).
    pub addr: String,
    /// Worker-thread count = max concurrently-served connections.
    pub workers: usize,
    /// Persistent tuning-cache path (`None` = memory only).
    pub cache: Option<PathBuf>,
    /// Persistent memo-sidecar path (`None` = cold worker arenas).
    /// Loaded once at startup to re-warm every worker's memo tables;
    /// the merged per-worker derived results are flushed back on
    /// graceful shutdown.
    pub sidecar: Option<PathBuf>,
    /// Device used when a request names none.
    pub device_default: GpuConfig,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            addr: "127.0.0.1:7711".to_string(),
            workers: 8,
            cache: Some(PathBuf::from("TUNE_CACHE.json")),
            sidecar: None,
            device_default: gpu_sim::a100(),
        }
    }
}

/// A running daemon: join it to block until shutdown completes.
pub struct Server {
    local: SocketAddr,
    service: Arc<TuneService>,
    acceptor: JoinHandle<()>,
    workers: Vec<JoinHandle<()>>,
}

impl Server {
    /// Binds and starts serving in background threads.
    ///
    /// # Errors
    ///
    /// Propagates bind failures.
    pub fn start(cfg: ServerConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&cfg.addr)?;
        let local = listener.local_addr()?;
        let service = Arc::new(TuneService::new(cfg.device_default, cfg.cache, cfg.sidecar));
        service.set_addr(local);

        let (tx, rx) = mpsc::channel::<TcpStream>();
        let rx = Arc::new(Mutex::new(rx));
        let workers = (0..cfg.workers.max(1))
            .map(|idx| {
                let rx = Arc::clone(&rx);
                let service = Arc::clone(&service);
                std::thread::Builder::new()
                    .name(format!("served-worker-{idx}"))
                    .spawn(move || worker_loop(idx, &rx, &service))
                    .expect("spawn worker")
            })
            .collect();

        let acceptor = {
            let service = Arc::clone(&service);
            std::thread::Builder::new()
                .name("served-acceptor".to_string())
                .spawn(move || {
                    for conn in listener.incoming() {
                        if service.is_shutdown() {
                            break;
                        }
                        match conn {
                            Ok(stream) => {
                                if tx.send(stream).is_err() {
                                    break;
                                }
                            }
                            Err(_) => {
                                if service.is_shutdown() {
                                    break;
                                }
                            }
                        }
                    }
                    // Dropping `tx` closes the channel: workers drain
                    // queued connections, then exit.
                })
                .expect("spawn acceptor")
        };

        Ok(Server {
            local,
            service,
            acceptor,
            workers,
        })
    }

    /// The bound address (resolves `:0` ephemeral binds).
    pub fn local_addr(&self) -> SocketAddr {
        self.local
    }

    /// The shared service state (tests and the load generator read
    /// counters and trigger shutdown through it).
    pub fn service(&self) -> Arc<TuneService> {
        Arc::clone(&self.service)
    }

    /// Blocks until the daemon has shut down and every worker drained,
    /// then flushes the cache.
    ///
    /// # Errors
    ///
    /// Propagates cache-flush I/O errors.
    pub fn join(self) -> std::io::Result<()> {
        let _ = self.acceptor.join();
        for w in self.workers {
            let _ = w.join();
        }
        self.service.flush()
    }
}

/// One worker: re-warm the thread-local memo tables from the startup
/// sidecar, pull connections until the channel closes, then contribute
/// this thread's derived results to the merged shutdown sidecar.
fn worker_loop(idx: usize, rx: &Mutex<mpsc::Receiver<TcpStream>>, service: &TuneService) {
    service.warm_worker(idx);
    loop {
        let conn = {
            let guard = rx.lock().expect("connection channel poisoned");
            guard.recv()
        };
        match conn {
            Ok(stream) => serve_connection(idx, stream, service),
            Err(_) => break, // acceptor gone and queue drained
        }
    }
    service.harvest_worker();
}

/// Serves one connection's line-delimited requests until EOF, error, or
/// shutdown. A malformed line costs an error response, never the
/// connection; a client that disconnects mid-search only loses its
/// response — the search result is still promoted and persisted.
fn serve_connection(idx: usize, stream: TcpStream, service: &TuneService) {
    let _ = stream.set_read_timeout(Some(READ_POLL));
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    };
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    loop {
        // `read_line` may deliver a partial line before the poll
        // timeout fires; keep accumulating into the same buffer until
        // the newline arrives.
        match reader.read_line(&mut line) {
            Ok(0) => break,                          // EOF
            Ok(_) if !line.ends_with('\n') => break, // EOF mid-line
            Ok(_) => {
                let (response, shutdown) = dispatch(idx, line.trim(), service);
                line.clear();
                if writer
                    .write_all(protocol::render_line(&response).as_bytes())
                    .and_then(|()| writer.flush())
                    .is_err()
                {
                    break; // client went away; nothing to report to
                }
                if shutdown {
                    service.begin_shutdown();
                    break;
                }
            }
            Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {
                if service.is_shutdown() {
                    break;
                }
            }
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(_) => break,
        }
    }
}

/// The `fleet` verb's response: the run summary, per-class counters,
/// and every key's outcome.
fn fleet_response(report: &FleetReport) -> Json {
    let mut pairs = vec![("ok".to_string(), Json::Bool(true))];
    if let Json::Obj(summary) = report.summary_json() {
        // The summary's "keys" count is renamed so the per-key outcome
        // array below can use the name.
        pairs.extend(summary.into_iter().map(|(k, v)| {
            if k == "keys" {
                ("keys_tuned".to_string(), v)
            } else {
                (k, v)
            }
        }));
    }
    pairs.push((
        "classes".to_string(),
        Json::Obj(
            report
                .class_counters()
                .iter()
                .map(|(name, c)| (name.clone(), c.to_json()))
                .collect(),
        ),
    ));
    pairs.push((
        "keys".to_string(),
        Json::Arr(report.keys.iter().map(|k| k.to_json()).collect()),
    ));
    Json::Obj(pairs)
}

/// Parses and executes one request line; returns the response and
/// whether a shutdown was requested.
fn dispatch(idx: usize, line: &str, service: &TuneService) -> (Json, bool) {
    if line.is_empty() {
        service.metrics().record_rejected();
        return (protocol::error_response("empty request line"), false);
    }
    match protocol::parse_request(line) {
        Err(e) => {
            service.metrics().record_rejected();
            (protocol::error_response(&e), false)
        }
        Ok(Request::Metrics) => (service.metrics().to_json(), false),
        Ok(Request::Shutdown) => (
            Json::obj([("ok", Json::Bool(true)), ("draining", Json::Bool(true))]),
            true,
        ),
        Ok(Request::Fleet(wire)) => {
            match protocol::resolve_fleet(&wire, service.default_device()) {
                Err(e) => {
                    service.metrics().record_rejected();
                    (protocol::error_response(&e), false)
                }
                Ok(r) => {
                    let report = service.fleet(&r.grid, r.threads, r.transfer);
                    (fleet_response(&report), false)
                }
            }
        }
        Ok(Request::Tune(spec)) => match protocol::resolve(&spec, service.default_device()) {
            Err(e) => {
                service.metrics().record_rejected();
                (protocol::error_response(&e), false)
            }
            Ok(req) => {
                let t0 = Instant::now();
                let (result, tier) = service.resolve(&req);
                let elapsed_ms = t0.elapsed().as_secs_f64() * 1e3;
                service
                    .metrics()
                    .record_tune(&req.class(), tier, result.is_ok(), elapsed_ms);
                // The arena and annotation caches are per worker
                // thread; publish this worker's counters so the metrics
                // report can aggregate them.
                service
                    .metrics()
                    .record_arena(idx, lego_expr::intern::stats());
                service
                    .metrics()
                    .record_sidecar(idx, lego_tune::annotate_sidecar_stats());
                service
                    .metrics()
                    .record_traffic(idx, gpu_sim::traffic_memo_stats());
                match result {
                    Ok(served) => (served.to_json(), false),
                    Err(e) => (protocol::error_response(&e), false),
                }
            }
        },
    }
}
