//! Live service counters: per-request-class tier hits, latency
//! percentiles, QPS, and aggregated expression-arena hit rates.
//!
//! A *request class* is `workload-family@device-tag` (`matmul@a100`),
//! the granularity the ROADMAP asks metrics for — fine enough to see
//! which families are search-bound on which devices, coarse enough to
//! stay bounded. Latencies are kept as raw samples (one `f64` per
//! request) and reduced to p50/p99 only when a `metrics` request asks;
//! a load-generator run keeps a few thousand samples per class, which
//! is noise memory-wise.
//!
//! The expression arena and its memo tables are *per worker thread*
//! ([`lego_expr::intern::stats`] reads the calling thread's counters),
//! so each worker publishes its own snapshot after every request and
//! the report sums across workers.

use std::collections::BTreeMap;
use std::sync::Mutex;
use std::time::Instant;

use lego_expr::intern::ArenaStats;
use lego_tune::fleet::FleetCounters;
use lego_tune::Json;

use crate::service::Tier;

/// One class's counters.
#[derive(Clone, Debug, Default)]
struct ClassStats {
    requests: u64,
    errors: u64,
    tiers: [u64; 4],
    latencies_ms: Vec<f64>,
    /// Fleet-run contributions to this class (keys tuned, transfer
    /// hits, evals saved).
    fleet: FleetCounters,
}

#[derive(Default)]
struct Inner {
    requests: u64,
    errors: u64,
    malformed: u64,
    tiers: [u64; 4],
    classes: BTreeMap<String, ClassStats>,
    /// Completed fleet runs and their summed counters.
    fleet_runs: u64,
    fleet: FleetCounters,
    /// Latest arena snapshot per worker thread (counters are monotone
    /// per thread, so "latest" is "total").
    arena: BTreeMap<usize, ArenaStats>,
    /// Latest `(installed, hits)` of sidecar-imported *annotations* per
    /// worker thread (same monotone-snapshot convention). The arena's
    /// own sidecar counters ride along in `arena`.
    ann_sidecar: BTreeMap<usize, (u64, u64)>,
    /// Latest `(hits, misses)` of the traffic memo — the cost model's
    /// geometry-keyed trace cache — per worker thread (same
    /// monotone-snapshot convention).
    traffic: BTreeMap<usize, (u64, u64)>,
}

/// The service-wide metrics registry. All methods take `&self`.
pub struct Metrics {
    start: Instant,
    inner: Mutex<Inner>,
}

impl Metrics {
    /// An empty registry; the QPS clock starts now.
    pub fn new() -> Metrics {
        Metrics {
            start: Instant::now(),
            inner: Mutex::new(Inner::default()),
        }
    }

    /// Records one resolved `tune` request.
    pub fn record_tune(&self, class: &str, tier: Tier, ok: bool, elapsed_ms: f64) {
        let mut inner = self.inner.lock().expect("metrics poisoned");
        inner.requests += 1;
        inner.tiers[tier_index(tier)] += 1;
        if !ok {
            inner.errors += 1;
        }
        let entry = inner.classes.entry(class.to_string()).or_default();
        entry.requests += 1;
        entry.tiers[tier_index(tier)] += 1;
        if !ok {
            entry.errors += 1;
        }
        entry.latencies_ms.push(elapsed_ms);
    }

    /// Records a request rejected before resolution (bad JSON, unknown
    /// verb/workload/device).
    pub fn record_rejected(&self) {
        let mut inner = self.inner.lock().expect("metrics poisoned");
        inner.requests += 1;
        inner.errors += 1;
        inner.malformed += 1;
    }

    /// Records one completed fleet run's per-class counters.
    pub fn record_fleet(&self, classes: &BTreeMap<String, FleetCounters>) {
        let mut inner = self.inner.lock().expect("metrics poisoned");
        inner.fleet_runs += 1;
        for (class, c) in classes {
            inner.fleet.merge(c);
            inner
                .classes
                .entry(class.clone())
                .or_default()
                .fleet
                .merge(c);
        }
    }

    /// Publishes worker `idx`'s current arena counters.
    pub fn record_arena(&self, idx: usize, stats: ArenaStats) {
        let mut inner = self.inner.lock().expect("metrics poisoned");
        inner.arena.insert(idx, stats);
    }

    /// Publishes worker `idx`'s current annotation-sidecar counters
    /// (`(installed, hits)`, monotone per thread).
    pub fn record_sidecar(&self, idx: usize, stats: (u64, u64)) {
        let mut inner = self.inner.lock().expect("metrics poisoned");
        inner.ann_sidecar.insert(idx, stats);
    }

    /// Publishes worker `idx`'s current traffic-memo counters
    /// (`(hits, misses)`, monotone per thread).
    pub fn record_traffic(&self, idx: usize, stats: (u64, u64)) {
        let mut inner = self.inner.lock().expect("metrics poisoned");
        inner.traffic.insert(idx, stats);
    }

    /// Count of fresh searches run (the herd invariant's counter).
    pub fn searches_run(&self) -> u64 {
        self.inner.lock().expect("metrics poisoned").tiers[tier_index(Tier::Searched)]
    }

    /// Count of requests that blocked on another's in-flight search.
    pub fn coalesced_waits(&self) -> u64 {
        self.inner.lock().expect("metrics poisoned").tiers[tier_index(Tier::Coalesced)]
    }

    /// The full metrics report (the `metrics` verb's response).
    pub fn to_json(&self) -> Json {
        let inner = self.inner.lock().expect("metrics poisoned");
        let uptime_s = self.start.elapsed().as_secs_f64().max(1e-9);

        let tier_obj = |tiers: &[u64; 4]| {
            Json::Obj(
                Tier::ALL
                    .iter()
                    .map(|t| {
                        (
                            t.name().to_string(),
                            Json::Int(tiers[tier_index(*t)] as i64),
                        )
                    })
                    .collect(),
            )
        };

        let classes = Json::Obj(
            inner
                .classes
                .iter()
                .map(|(name, c)| {
                    let mut sorted = c.latencies_ms.clone();
                    sorted.sort_by(|a, b| a.total_cmp(b));
                    (
                        name.clone(),
                        Json::obj([
                            ("requests", Json::Int(c.requests as i64)),
                            ("errors", Json::Int(c.errors as i64)),
                            ("tiers", tier_obj(&c.tiers)),
                            ("qps", Json::num(c.requests as f64 / uptime_s)),
                            ("p50_ms", Json::num(percentile(&sorted, 0.50))),
                            ("p99_ms", Json::num(percentile(&sorted, 0.99))),
                            ("fleet", c.fleet.to_json()),
                        ]),
                    )
                })
                .collect(),
        );

        // Sum arena counters across workers; each worker's snapshot is
        // its thread's monotone total.
        let arena = inner
            .arena
            .values()
            .fold(ArenaStats::default(), |acc, s| add_stats(&acc, s));
        let rate = |hits: u64, misses: u64| {
            let total = hits + misses;
            if total == 0 {
                0.0
            } else {
                hits as f64 / total as f64
            }
        };

        // Sidecar warm-start attribution: arena memo hits served from
        // installed entries plus annotation-cache hits served from
        // imported entries, summed across workers.
        let (ann_installed, ann_hits) = inner
            .ann_sidecar
            .values()
            .fold((0u64, 0u64), |(i, h), (wi, wh)| (i + wi, h + wh));

        // Traffic-memo probes, summed across workers: how often the
        // two-tier cost model re-timed a known geometry without a
        // trace replay.
        let (tr_hits, tr_misses) = inner
            .traffic
            .values()
            .fold((0u64, 0u64), |(h, m), (wh, wm)| (h + wh, m + wm));

        Json::obj([
            ("ok", Json::Bool(true)),
            ("uptime_s", Json::num(uptime_s)),
            (
                "sidecar_warm_hits",
                Json::Int((arena.sidecar_hits + ann_hits) as i64),
            ),
            (
                "sidecar_installed",
                Json::Int((arena.sidecar_installed + ann_installed) as i64),
            ),
            ("requests", Json::Int(inner.requests as i64)),
            ("qps", Json::num(inner.requests as f64 / uptime_s)),
            ("errors", Json::Int(inner.errors as i64)),
            ("malformed", Json::Int(inner.malformed as i64)),
            ("tiers", tier_obj(&inner.tiers)),
            (
                "searches_run",
                Json::Int(inner.tiers[tier_index(Tier::Searched)] as i64),
            ),
            (
                "coalesced_waits",
                Json::Int(inner.tiers[tier_index(Tier::Coalesced)] as i64),
            ),
            ("classes", classes),
            ("fleet", {
                let mut f = inner.fleet.to_json();
                if let Json::Obj(pairs) = &mut f {
                    pairs.insert(0, ("runs".to_string(), Json::Int(inner.fleet_runs as i64)));
                }
                f
            }),
            (
                "traffic",
                Json::obj([
                    ("hits", Json::Int(tr_hits as i64)),
                    ("misses", Json::Int(tr_misses as i64)),
                    ("hit_rate", Json::num(rate(tr_hits, tr_misses))),
                ]),
            ),
            (
                "arena",
                Json::obj([
                    ("workers", Json::Int(inner.arena.len() as i64)),
                    ("nodes", Json::Int(arena.nodes as i64)),
                    (
                        "intern_hit_rate",
                        Json::num(rate(arena.intern_hits, arena.intern_misses)),
                    ),
                    (
                        "memo_hit_rate",
                        Json::num(rate(arena.memo_hits(), arena.memo_misses())),
                    ),
                ]),
            ),
        ])
    }
}

impl Default for Metrics {
    fn default() -> Metrics {
        Metrics::new()
    }
}

fn tier_index(tier: Tier) -> usize {
    match tier {
        Tier::Memory => 0,
        Tier::Cache => 1,
        Tier::Coalesced => 2,
        Tier::Searched => 3,
    }
}

/// Nearest-rank percentile of an ascending-sorted slice (0 when empty).
fn percentile(sorted_ms: &[f64], q: f64) -> f64 {
    if sorted_ms.is_empty() {
        return 0.0;
    }
    let idx = ((sorted_ms.len() - 1) as f64 * q).round() as usize;
    sorted_ms[idx.min(sorted_ms.len() - 1)]
}

fn add_stats(a: &ArenaStats, b: &ArenaStats) -> ArenaStats {
    ArenaStats {
        nodes: a.nodes + b.nodes,
        intern_hits: a.intern_hits + b.intern_hits,
        intern_misses: a.intern_misses + b.intern_misses,
        simplify_hits: a.simplify_hits + b.simplify_hits,
        simplify_misses: a.simplify_misses + b.simplify_misses,
        pass_hits: a.pass_hits + b.pass_hits,
        pass_misses: a.pass_misses + b.pass_misses,
        opcount_hits: a.opcount_hits + b.opcount_hits,
        opcount_misses: a.opcount_misses + b.opcount_misses,
        range_hits: a.range_hits + b.range_hits,
        range_misses: a.range_misses + b.range_misses,
        prove_hits: a.prove_hits + b.prove_hits,
        prove_misses: a.prove_misses + b.prove_misses,
        expand_hits: a.expand_hits + b.expand_hits,
        expand_misses: a.expand_misses + b.expand_misses,
        saturate_hits: a.saturate_hits + b.saturate_hits,
        saturate_misses: a.saturate_misses + b.saturate_misses,
        sidecar_installed: a.sidecar_installed + b.sidecar_installed,
        sidecar_hits: a.sidecar_hits + b.sidecar_hits,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentile_is_nearest_rank() {
        assert_eq!(percentile(&[], 0.5), 0.0);
        assert_eq!(percentile(&[7.0], 0.99), 7.0);
        let v: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        assert_eq!(percentile(&v, 0.50), 51.0);
        assert_eq!(percentile(&v, 0.99), 99.0);
        assert_eq!(percentile(&v, 1.0), 100.0);
    }

    #[test]
    fn tier_counters_and_classes_accumulate() {
        let m = Metrics::new();
        m.record_tune("matmul@a100", Tier::Searched, true, 10.0);
        m.record_tune("matmul@a100", Tier::Coalesced, true, 12.0);
        m.record_tune("matmul@a100", Tier::Memory, true, 0.1);
        m.record_tune("nw@h100", Tier::Searched, false, 5.0);
        m.record_rejected();
        assert_eq!(m.searches_run(), 2);
        assert_eq!(m.coalesced_waits(), 1);
        let j = m.to_json();
        assert_eq!(j.get("requests").and_then(Json::as_i64), Some(5));
        assert_eq!(j.get("errors").and_then(Json::as_i64), Some(2));
        assert_eq!(j.get("malformed").and_then(Json::as_i64), Some(1));
        let mm = j.get("classes").unwrap().get("matmul@a100").unwrap();
        assert_eq!(mm.get("requests").and_then(Json::as_i64), Some(3));
        assert_eq!(
            mm.get("tiers")
                .unwrap()
                .get("memory")
                .and_then(Json::as_i64),
            Some(1)
        );
        assert!(mm.get("p99_ms").and_then(Json::as_f64).unwrap() >= 10.0);
    }

    #[test]
    fn fleet_counters_accumulate_per_class_and_in_total() {
        let m = Metrics::new();
        let per_run = |keys, transfers, saved| FleetCounters {
            keys,
            searched: keys,
            transfers,
            evals_saved: saved,
            ..FleetCounters::default()
        };
        let mut classes = BTreeMap::new();
        classes.insert("matmul@a100".to_string(), per_run(4, 3, 360));
        classes.insert("matmul@h100".to_string(), per_run(4, 4, 480));
        m.record_fleet(&classes);
        m.record_fleet(&classes);

        let j = m.to_json();
        let fleet = j.get("fleet").expect("top-level fleet object");
        assert_eq!(fleet.get("runs").and_then(Json::as_i64), Some(2));
        assert_eq!(fleet.get("keys_tuned").and_then(Json::as_i64), Some(16));
        assert_eq!(fleet.get("transfer_hits").and_then(Json::as_i64), Some(14));
        assert_eq!(fleet.get("evals_saved").and_then(Json::as_i64), Some(1680));
        let class = j
            .get("classes")
            .and_then(|c| c.get("matmul@h100"))
            .expect("fleet-only classes appear in the report");
        let cf = class.get("fleet").expect("per-class fleet counters");
        assert_eq!(cf.get("keys_tuned").and_then(Json::as_i64), Some(8));
        assert_eq!(cf.get("transfer_hits").and_then(Json::as_i64), Some(8));
    }
}
