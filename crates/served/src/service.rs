//! The three-tier resolution path behind every `tune` request.
//!
//! 1. **Memory** — a `HashMap` of completed [`CachedTuning`]s keyed by
//!    the schema-v4 cache key, preloaded from the persistent
//!    [`TuningCache`] at startup and extended after every search. A hit
//!    costs one lock acquisition.
//! 2. **In-flight coalescing** — a table of searches currently running,
//!    keyed by [`TuneRequest::coalesce_key`] (cache key + search
//!    knobs). A thundering herd of N identical concurrent requests
//!    finds the first requester's slot here and blocks on its
//!    `Condvar`; all N receive the single search's result. Seeds derive
//!    from the key, so the shared result is exactly what each request
//!    would have computed alone.
//! 3. **Search** — a fresh [`lego_tune::Tuner`] run on the worker's
//!    warm per-thread expression arena, persisted through the
//!    concurrency-safe cache and promoted into the memory tier.
//!
//! The tier an answer came from is reported to [`Metrics`] but never
//! serialized into the response, so coalesced, memory-served and
//! freshly-searched answers for one key are byte-identical on the wire.

use std::collections::HashMap;
use std::net::{SocketAddr, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};

use gpu_sim::score::Estimate;
use gpu_sim::GpuConfig;
use lego_expr::Variant;
use lego_tune::cache::{config_to_json, estimate_to_json};
use lego_tune::fleet::FleetReport;
use lego_tune::strategy::Strategy;
use lego_tune::{CachedTuning, FleetDriver, Json, TuneRequest, TunedConfig, TuningCache};

use crate::metrics::Metrics;

/// Which tier answered a request.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Tier {
    /// In-memory map of completed results.
    Memory,
    /// The persistent schema-v4 tuning cache (first touch after a
    /// restart without preload, or a file shared with batch runs).
    Cache,
    /// Blocked on another request's identical in-flight search.
    Coalesced,
    /// Ran a fresh search.
    Searched,
}

impl Tier {
    /// Stable metrics label.
    pub fn name(self) -> &'static str {
        match self {
            Tier::Memory => "memory",
            Tier::Cache => "cache",
            Tier::Coalesced => "coalesced",
            Tier::Searched => "searched",
        }
    }

    /// All tiers, in serving order.
    pub const ALL: [Tier; 4] = [Tier::Memory, Tier::Cache, Tier::Coalesced, Tier::Searched];
}

/// A served tuning result — everything a `tune` response carries.
#[derive(Clone, Debug)]
pub struct Served {
    /// Workload display name.
    pub workload: String,
    /// Device tag the result was tuned for.
    pub device: &'static str,
    /// The winning configuration.
    pub config: TunedConfig,
    /// Expression variant the cost model chose.
    pub expr_variant: Option<Variant>,
    /// Index-expression op count of the winner.
    pub index_ops: Option<usize>,
    /// Estimate of the hand-picked default.
    pub naive: Estimate,
    /// Estimate of the winner.
    pub tuned: Estimate,
    /// Candidates the producing search evaluated.
    pub evaluated: usize,
    /// Strategy that produced the entry.
    pub strategy: String,
    /// Space scale that was searched.
    pub space: String,
}

impl Served {
    /// The deterministic success response. Contains no per-request
    /// data (tier, latency), so every requester of one result receives
    /// identical bytes.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("ok", Json::Bool(true)),
            ("workload", Json::Str(self.workload.clone())),
            ("device", Json::Str(self.device.to_string())),
            ("config", config_to_json(&self.config)),
            ("winner", Json::Str(self.config.to_string())),
            (
                "expr_variant",
                match self.expr_variant {
                    None => Json::Null,
                    Some(Variant::Unexpanded) => Json::Str("unexpanded".into()),
                    Some(Variant::Expanded) => Json::Str("expanded".into()),
                },
            ),
            (
                "index_ops",
                match self.index_ops {
                    None => Json::Null,
                    Some(v) => Json::Int(v as i64),
                },
            ),
            ("naive", estimate_to_json(&self.naive)),
            ("tuned", estimate_to_json(&self.tuned)),
            ("naive_s", Json::num(self.naive.time_s)),
            ("tuned_s", Json::num(self.tuned.time_s)),
            ("speedup", Json::num(self.naive.time_s / self.tuned.time_s)),
            ("evaluated", Json::Int(self.evaluated as i64)),
            ("strategy", Json::Str(self.strategy.clone())),
            ("space", Json::Str(self.space.clone())),
        ])
    }
}

/// One in-flight search: followers wait on the condvar until the
/// runner publishes into `result`.
struct Slot {
    result: Mutex<Option<Result<Served, String>>>,
    done: Condvar,
}

impl Slot {
    fn new() -> Slot {
        Slot {
            result: Mutex::new(None),
            done: Condvar::new(),
        }
    }

    fn publish(&self, value: Result<Served, String>) {
        let mut slot = self.result.lock().expect("slot lock poisoned");
        *slot = Some(value);
        self.done.notify_all();
    }

    fn wait(&self) -> Result<Served, String> {
        let mut slot = self.result.lock().expect("slot lock poisoned");
        while slot.is_none() {
            slot = self.done.wait(slot).expect("slot condvar poisoned");
        }
        slot.clone().expect("checked above")
    }
}

/// The shared state of one daemon: tiers, metrics, shutdown flag.
pub struct TuneService {
    default_device: GpuConfig,
    cache: Option<TuningCache>,
    /// Persistent memo-sidecar path (`None` = no persistence). The
    /// document is parsed once at startup; every worker installs it
    /// into its thread-local memo tables before serving
    /// ([`TuneService::warm_worker`]) and contributes its derived
    /// results back on drain ([`TuneService::harvest_worker`]), so the
    /// shutdown flush writes one merged document.
    sidecar_path: Option<PathBuf>,
    sidecar_in: Option<lego_tune::Sidecar>,
    sidecar_out: Mutex<lego_tune::Sidecar>,
    memory: Mutex<HashMap<String, CachedTuning>>,
    inflight: Mutex<HashMap<String, Arc<Slot>>>,
    metrics: Metrics,
    shutdown: AtomicBool,
    /// Set once the listener is bound; `begin_shutdown` pokes it to
    /// wake the blocking accept loop.
    addr: OnceLock<SocketAddr>,
}

impl TuneService {
    /// A service persisting to `cache_path` (None = in-memory only),
    /// preloading every persisted entry into the memory tier, and
    /// re-warming worker memo tables from the sidecar at `sidecar_path`
    /// (None = cold workers, no persistence).
    pub fn new(
        default_device: GpuConfig,
        cache_path: Option<PathBuf>,
        sidecar_path: Option<PathBuf>,
    ) -> TuneService {
        let cache = cache_path.map(TuningCache::new);
        let memory = cache
            .as_ref()
            .map(|c| c.entries().into_iter().collect())
            .unwrap_or_default();
        let sidecar_in = sidecar_path
            .as_deref()
            .map(lego_tune::Sidecar::load)
            .filter(|sc| !sc.is_empty());
        TuneService {
            default_device,
            cache,
            sidecar_path,
            sidecar_in,
            sidecar_out: Mutex::new(lego_tune::Sidecar::new()),
            memory: Mutex::new(memory),
            inflight: Mutex::new(HashMap::new()),
            metrics: Metrics::new(),
            shutdown: AtomicBool::new(false),
            addr: OnceLock::new(),
        }
    }

    /// Installs the startup sidecar into the calling worker thread's
    /// memo tables and publishes the resulting warm counters. Workers
    /// call this once, before taking connections.
    pub fn warm_worker(&self, idx: usize) {
        if let Some(sc) = &self.sidecar_in {
            lego_tune::sidecar::install(sc);
        }
        self.metrics.record_arena(idx, lego_expr::intern::stats());
        self.metrics
            .record_sidecar(idx, lego_tune::annotate_sidecar_stats());
        self.metrics
            .record_traffic(idx, gpu_sim::traffic_memo_stats());
    }

    /// Merges the calling worker thread's derived results into the
    /// shared outgoing sidecar. Workers call this once, on drain; the
    /// shutdown [`TuneService::flush`] persists the merged document.
    pub fn harvest_worker(&self) {
        if self.sidecar_path.is_none() {
            return;
        }
        let derived = lego_tune::sidecar::collect();
        self.sidecar_out
            .lock()
            .expect("sidecar poisoned")
            .merge(&derived);
    }

    /// The device used when a request names none.
    pub fn default_device(&self) -> &GpuConfig {
        &self.default_device
    }

    /// The live counters.
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// Number of completed results held in the memory tier.
    pub fn memory_len(&self) -> usize {
        self.memory.lock().expect("memory tier poisoned").len()
    }

    /// Records the bound listener address (enables acceptor wakeup).
    pub fn set_addr(&self, addr: SocketAddr) {
        let _ = self.addr.set(addr);
    }

    /// Whether a shutdown has been requested.
    pub fn is_shutdown(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }

    /// Flags shutdown and wakes the acceptor with a throwaway
    /// connection so it observes the flag immediately.
    pub fn begin_shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
        if let Some(addr) = self.addr.get() {
            let _ = TcpStream::connect(addr);
        }
    }

    /// Writes every memory-tier entry absent from the persistent cache
    /// back to disk (entries produced by searches are already persisted
    /// eagerly with their frontiers; this covers a cache file deleted
    /// or truncated while the daemon ran). No-op without a cache.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn flush(&self) -> std::io::Result<()> {
        // The merged per-worker sidecar first: one atomic write
        // alongside the cache.
        if let Some(path) = &self.sidecar_path {
            let merged = self.sidecar_out.lock().expect("sidecar poisoned").clone();
            merged.save(path)?;
        }
        let Some(cache) = &self.cache else {
            return Ok(());
        };
        let on_disk: std::collections::HashSet<String> =
            cache.entries().into_iter().map(|(k, _)| k).collect();
        let memory = self.memory.lock().expect("memory tier poisoned").clone();
        for (key, entry) in &memory {
            if !on_disk.contains(key) {
                cache.store(key, entry)?;
            }
        }
        Ok(())
    }

    /// Resolves one request through the three tiers. The `Tier` is
    /// reported even on failure (a failed fresh search reports
    /// `Searched`; followers of a failed search report `Coalesced`).
    pub fn resolve(&self, req: &TuneRequest) -> (Result<Served, String>, Tier) {
        let cache_key = req.cache_key();
        let coalesce_key = req.coalesce_key();

        // One inflight-table critical section covers both the memory
        // probe and the slot probe. The runner promotes to memory
        // *before* unpublishing its slot (the removal also takes this
        // lock), so any concurrent request is guaranteed to observe one
        // of the two — a herd can never leak a second search through
        // the promote/unpublish gap.
        let slot = {
            let mut inflight = self.inflight.lock().expect("inflight table poisoned");

            // Tier 1: completed results in memory.
            {
                let memory = self.memory.lock().expect("memory tier poisoned");
                if let Some(hit) = memory.get(&cache_key) {
                    if req.satisfied_by(hit) {
                        return (Ok(served_from(req, hit)), Tier::Memory);
                    }
                }
            }

            // Tier 2: an identical search already in flight.
            if let Some(slot) = inflight.get(&coalesce_key) {
                let slot = Arc::clone(slot);
                drop(inflight);
                return (slot.wait(), Tier::Coalesced);
            }
            let slot = Arc::new(Slot::new());
            inflight.insert(coalesce_key.clone(), Arc::clone(&slot));
            slot
        };

        // Tier 3: we are the runner.
        let (result, tier) = self.run_search(req, &cache_key);

        // Promote before unpublishing the slot, so a request arriving
        // between the two always finds one of the tiers populated.
        {
            let mut inflight = self.inflight.lock().expect("inflight table poisoned");
            inflight.remove(&coalesce_key);
        }
        slot.publish(result.clone());
        (result, tier)
    }

    /// Tunes a whole grid through the work-stealing
    /// [`FleetDriver`] — sharing the daemon's persistent cache, so
    /// already-served keys are instant hits and fresh results come back
    /// in one merged write. Completed keys are promoted into the memory
    /// tier (subsequent `tune` requests hit tier 1), and the run's
    /// per-class counters land in the `metrics` report.
    pub fn fleet(&self, grid: &[TuneRequest], threads: usize, transfer: bool) -> FleetReport {
        let mut driver = FleetDriver::new(threads).with_transfer(transfer);
        if let Some(cache) = &self.cache {
            driver = driver.with_cache(cache.path());
        }
        if let Some(path) = &self.sidecar_path {
            driver = driver.with_sidecar(path);
        }
        let report = driver.run(grid);

        // Promote. With a cache, the merged write is already on disk
        // and its entries carry the real frontiers — refresh the memory
        // tier from it. Without one, synthesize memory entries from the
        // fresh results (empty frontier, per the serving-tier
        // convention).
        let mut memory = self.memory.lock().expect("memory tier poisoned");
        if let Some(cache) = &self.cache {
            for (k, v) in cache.entries() {
                memory.insert(k, v);
            }
        } else {
            for key in &report.keys {
                let Ok(t) = &key.result else { continue };
                if t.from_cache {
                    continue;
                }
                let req = &key.request;
                memory.insert(
                    key.cache_key.clone(),
                    CachedTuning {
                        config: t.config,
                        expr_variant: None,
                        index_ops: None,
                        naive: t.naive,
                        tuned: t.tuned,
                        evaluated: t.evaluated,
                        strategy: req.strategy.name().to_string(),
                        // Transferred searches record the request's
                        // cold budget, same as the driver's own cache
                        // entries — the entry serves what was asked.
                        budget: match req.strategy {
                            Strategy::Exhaustive => None,
                            Strategy::Anneal | Strategy::Genetic => Some(req.budget.max_evals()),
                        },
                        space: req.effective_space().name().to_string(),
                        frontier: vec![],
                    },
                );
            }
        }
        drop(memory);

        self.metrics.record_fleet(&report.class_counters());
        report
    }

    /// Runs the search tier: a tuner configured exactly as the request
    /// asks, persisting through the concurrency-safe cache. Panics in
    /// the search are contained so a follower can never be left waiting
    /// on a dead slot.
    fn run_search(&self, req: &TuneRequest, cache_key: &str) -> (Result<Served, String>, Tier) {
        let mut tuner = req.tuner();
        if let Some(cache) = &self.cache {
            tuner = tuner.with_cache(cache.path());
        }
        let kind = req.kind;
        let outcome = catch_unwind(AssertUnwindSafe(|| tuner.tune(&kind)));
        match outcome {
            Ok(Ok(r)) => {
                let tier = if r.from_cache {
                    Tier::Cache
                } else {
                    Tier::Searched
                };
                let entry = CachedTuning {
                    config: r.config,
                    expr_variant: r.expr_variant,
                    index_ops: r.index_ops,
                    naive: r.naive,
                    tuned: r.tuned,
                    evaluated: r.evaluated,
                    strategy: req.strategy.name().to_string(),
                    budget: match req.strategy {
                        Strategy::Exhaustive => None,
                        Strategy::Anneal | Strategy::Genetic => Some(req.budget.max_evals()),
                    },
                    space: req.effective_space().name().to_string(),
                    // The serving tier never warm-starts searches; the
                    // persistent cache keeps the real frontier.
                    frontier: vec![],
                };
                let served = served_from(req, &entry);
                self.memory
                    .lock()
                    .expect("memory tier poisoned")
                    .insert(cache_key.to_string(), entry);
                (Ok(served), tier)
            }
            Ok(Err(e)) => (Err(format!("tuning failed: {e}")), Tier::Searched),
            Err(_) => (
                Err(format!("tuning panicked for {}", kind.name())),
                Tier::Searched,
            ),
        }
    }
}

/// Maps a stored entry onto the wire shape for one request.
fn served_from(req: &TuneRequest, entry: &CachedTuning) -> Served {
    Served {
        workload: req.kind.name(),
        device: req.device.tag,
        config: entry.config,
        expr_variant: entry.expr_variant,
        index_ops: entry.index_ops,
        naive: entry.naive,
        tuned: entry.tuned,
        evaluated: entry.evaluated,
        strategy: entry.strategy.clone(),
        space: entry.space.clone(),
    }
}
