//! The wire protocol: one JSON object per line, in both directions.
//!
//! Requests carry a `verb`:
//!
//! ```json
//! {"verb": "tune", "workload": "matmul(n=2048)", "device": "h100",
//!  "strategy": "anneal", "budget": 256, "space": "enlarged"}
//! {"verb": "fleet", "grid": "matmul:512..4096x2@a100,h100",
//!  "strategy": "anneal", "budget": 160, "threads": 4}
//! {"verb": "metrics"}
//! {"verb": "shutdown"}
//! ```
//!
//! Only `workload` is required for `tune`; `device` falls back to the
//! daemon's `--device-default`, and the search knobs fall back to the
//! [`lego_tune::Tuner`] defaults (exhaustive, budget 2000, unpinned
//! space). The `fleet` verb requires only `grid` (a
//! [`FleetSpec`] string); its strategy defaults to `anneal` — a fleet
//! exists to amortize budgeted searches — and `transfer` (boolean)
//! defaults to true. Responses always carry `"ok"`; failures look like
//! `{"ok": false, "error": "..."}` and never close the connection —
//! a malformed line costs one error response, nothing more.
//!
//! Tune responses are *deterministic*: they contain only the served
//! result (winner config, estimates, evaluation count), never
//! per-request data like the serving tier or latency. A thundering herd
//! that coalesces onto one search therefore receives byte-identical
//! response lines, which the herd tests assert.

use gpu_sim::GpuConfig;
use lego_tune::domain::SpaceScale;
use lego_tune::strategy::{Budget, Strategy};
use lego_tune::{FleetSpec, Json, TuneRequest, WorkloadKind};

/// A parsed request line.
#[derive(Clone, Debug, PartialEq)]
pub enum Request {
    /// Resolve a best-config query.
    Tune(TuneSpec),
    /// Tune a whole grid of keys through the fleet driver.
    Fleet(FleetWire),
    /// Report the live service counters.
    Metrics,
    /// Drain in-flight work, flush the cache, exit.
    Shutdown,
}

/// The `tune` verb's parameters, still in wire form (strings).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct TuneSpec {
    /// Workload display name, e.g. `matmul(n=2048)`.
    pub workload: String,
    /// Device tag or full name (`None` = daemon default).
    pub device: Option<String>,
    /// Search strategy name (`None` = exhaustive).
    pub strategy: Option<String>,
    /// Evaluation budget (`None` = default).
    pub budget: Option<usize>,
    /// Space-scale pin (`None` = strategy default).
    pub space: Option<String>,
}

impl TuneSpec {
    /// A spec naming only the workload (daemon-default device and
    /// search knobs).
    pub fn workload(name: impl Into<String>) -> TuneSpec {
        TuneSpec {
            workload: name.into(),
            ..TuneSpec::default()
        }
    }

    /// Renders the spec as a request line's JSON object.
    pub fn to_json(&self) -> Json {
        let mut pairs = vec![
            ("verb".to_string(), Json::Str("tune".into())),
            ("workload".to_string(), Json::Str(self.workload.clone())),
        ];
        let mut opt = |k: &str, v: &Option<String>| {
            if let Some(v) = v {
                pairs.push((k.to_string(), Json::Str(v.clone())));
            }
        };
        opt("device", &self.device);
        opt("strategy", &self.strategy);
        opt("space", &self.space);
        if let Some(b) = self.budget {
            pairs.push(("budget".to_string(), Json::Int(b as i64)));
        }
        Json::Obj(pairs)
    }
}

/// The `fleet` verb's parameters, still in wire form (strings).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct FleetWire {
    /// The grid spec, e.g. `matmul:512..4096x2@a100,h100`
    /// ([`FleetSpec`] syntax).
    pub grid: String,
    /// Default device for specs without `@` (`None` = daemon default).
    pub device: Option<String>,
    /// Search strategy name (`None` = anneal; a fleet exists to
    /// amortize budgeted searches).
    pub strategy: Option<String>,
    /// Evaluation budget per key (`None` = default).
    pub budget: Option<usize>,
    /// Space-scale pin (`None` = strategy default).
    pub space: Option<String>,
    /// Worker threads (`None` = the driver default, 4).
    pub threads: Option<usize>,
    /// Whether to transfer frontiers between keys (`None` = true).
    pub transfer: Option<bool>,
}

impl FleetWire {
    /// A wire spec naming only the grid (daemon-default device, anneal,
    /// default budget, transfer on).
    pub fn grid(spec: impl Into<String>) -> FleetWire {
        FleetWire {
            grid: spec.into(),
            ..FleetWire::default()
        }
    }

    /// Renders the spec as a request line's JSON object.
    pub fn to_json(&self) -> Json {
        let mut pairs = vec![
            ("verb".to_string(), Json::Str("fleet".into())),
            ("grid".to_string(), Json::Str(self.grid.clone())),
        ];
        let mut opt = |k: &str, v: &Option<String>| {
            if let Some(v) = v {
                pairs.push((k.to_string(), Json::Str(v.clone())));
            }
        };
        opt("device", &self.device);
        opt("strategy", &self.strategy);
        opt("space", &self.space);
        if let Some(b) = self.budget {
            pairs.push(("budget".to_string(), Json::Int(b as i64)));
        }
        if let Some(t) = self.threads {
            pairs.push(("threads".to_string(), Json::Int(t as i64)));
        }
        if let Some(t) = self.transfer {
            pairs.push(("transfer".to_string(), Json::Bool(t)));
        }
        Json::Obj(pairs)
    }
}

/// Parses one request line.
///
/// # Errors
///
/// Describes what was malformed — the message becomes the `error` field
/// of the response.
pub fn parse_request(line: &str) -> Result<Request, String> {
    let doc = Json::parse(line).map_err(|e| format!("malformed JSON: {e}"))?;
    if doc.get("verb").is_none() {
        return Err("missing \"verb\" (use tune|fleet|metrics|shutdown)".to_string());
    }
    let verb = doc
        .get("verb")
        .and_then(Json::as_str)
        .ok_or_else(|| "\"verb\" must be a string".to_string())?;
    match verb {
        "metrics" => Ok(Request::Metrics),
        "shutdown" => Ok(Request::Shutdown),
        "tune" => {
            let workload = doc
                .get("workload")
                .and_then(Json::as_str)
                .ok_or_else(|| "tune requires a string \"workload\"".to_string())?
                .to_string();
            let opt_str = |k: &str| -> Result<Option<String>, String> {
                match doc.get(k) {
                    None | Some(Json::Null) => Ok(None),
                    Some(Json::Str(s)) => Ok(Some(s.clone())),
                    Some(_) => Err(format!("\"{k}\" must be a string")),
                }
            };
            let budget = match doc.get("budget") {
                None | Some(Json::Null) => None,
                Some(Json::Int(v)) if *v > 0 => Some(*v as usize),
                Some(_) => {
                    return Err("\"budget\" must be a positive integer".to_string());
                }
            };
            Ok(Request::Tune(TuneSpec {
                workload,
                device: opt_str("device")?,
                strategy: opt_str("strategy")?,
                budget,
                space: opt_str("space")?,
            }))
        }
        "fleet" => {
            let grid = doc
                .get("grid")
                .and_then(Json::as_str)
                .ok_or_else(|| "fleet requires a string \"grid\"".to_string())?
                .to_string();
            let opt_str = |k: &str| -> Result<Option<String>, String> {
                match doc.get(k) {
                    None | Some(Json::Null) => Ok(None),
                    Some(Json::Str(s)) => Ok(Some(s.clone())),
                    Some(_) => Err(format!("\"{k}\" must be a string")),
                }
            };
            let opt_pos = |k: &str| -> Result<Option<usize>, String> {
                match doc.get(k) {
                    None | Some(Json::Null) => Ok(None),
                    Some(Json::Int(v)) if *v > 0 => Ok(Some(*v as usize)),
                    Some(_) => Err(format!("\"{k}\" must be a positive integer")),
                }
            };
            let transfer = match doc.get("transfer") {
                None | Some(Json::Null) => None,
                Some(Json::Bool(b)) => Some(*b),
                Some(_) => return Err("\"transfer\" must be a boolean".to_string()),
            };
            Ok(Request::Fleet(FleetWire {
                grid,
                device: opt_str("device")?,
                strategy: opt_str("strategy")?,
                budget: opt_pos("budget")?,
                space: opt_str("space")?,
                threads: opt_pos("threads")?,
                transfer,
            }))
        }
        other => Err(format!(
            "unknown verb {other:?} (use tune|fleet|metrics|shutdown)"
        )),
    }
}

/// Resolves a wire-form spec into a typed [`TuneRequest`] against the
/// daemon's default device.
///
/// # Errors
///
/// Unknown workload name, device, strategy, or space; the message names
/// the accepted values.
pub fn resolve(spec: &TuneSpec, default_device: &GpuConfig) -> Result<TuneRequest, String> {
    let kind = WorkloadKind::parse(&spec.workload)?;
    let device = match &spec.device {
        None => default_device.clone(),
        Some(name) => gpu_sim::lookup(name).ok_or_else(|| {
            format!(
                "unknown device {name:?} (use {})",
                gpu_sim::DEVICE_TAGS.join("|")
            )
        })?,
    };
    let strategy = match &spec.strategy {
        None => Strategy::default(),
        Some(name) => Strategy::parse(name)
            .ok_or_else(|| format!("unknown strategy {name:?} (use exhaustive|anneal|genetic)"))?,
    };
    let space = match &spec.space {
        None => None,
        Some(name) => Some(
            SpaceScale::parse(name)
                .ok_or_else(|| format!("unknown space {name:?} (use legacy|enlarged)"))?,
        ),
    };
    Ok(TuneRequest {
        kind,
        device,
        strategy,
        budget: spec.budget.map(Budget).unwrap_or_default(),
        space,
    })
}

/// A resolved fleet request: the expanded grid plus driver knobs.
#[derive(Clone, Debug)]
pub struct ResolvedFleet {
    /// The concrete tuning requests, in grid order.
    pub grid: Vec<TuneRequest>,
    /// Worker threads for the fleet driver.
    pub threads: usize,
    /// Whether frontier transfer is enabled.
    pub transfer: bool,
}

/// Resolves a wire-form fleet spec against the daemon's default device.
/// The strategy defaults to `anneal` (a fleet exists to amortize
/// budgeted searches), threads to 4, transfer to on.
///
/// # Errors
///
/// Malformed grid spec, unknown device, strategy, or space.
pub fn resolve_fleet(
    wire: &FleetWire,
    default_device: &GpuConfig,
) -> Result<ResolvedFleet, String> {
    let spec = FleetSpec::parse(&wire.grid).map_err(|e| format!("bad grid: {e}"))?;
    let device = match &wire.device {
        None => default_device.clone(),
        Some(name) => gpu_sim::lookup(name).ok_or_else(|| {
            format!(
                "unknown device {name:?} (use {})",
                gpu_sim::DEVICE_TAGS.join("|")
            )
        })?,
    };
    let strategy = match &wire.strategy {
        None => Strategy::Anneal,
        Some(name) => Strategy::parse(name)
            .ok_or_else(|| format!("unknown strategy {name:?} (use exhaustive|anneal|genetic)"))?,
    };
    let space = match &wire.space {
        None => None,
        Some(name) => Some(
            SpaceScale::parse(name)
                .ok_or_else(|| format!("unknown space {name:?} (use legacy|enlarged)"))?,
        ),
    };
    let budget = wire.budget.map(Budget).unwrap_or_default();
    Ok(ResolvedFleet {
        grid: spec.requests(&device, strategy, budget, space),
        threads: wire.threads.unwrap_or(4),
        transfer: wire.transfer.unwrap_or(true),
    })
}

/// The uniform failure response.
pub fn error_response(msg: &str) -> Json {
    Json::obj([
        ("ok", Json::Bool(false)),
        ("error", Json::Str(msg.to_string())),
    ])
}

/// Renders a response value as one wire line (newline-terminated).
pub fn render_line(j: &Json) -> String {
    let mut s = j.render();
    s.push('\n');
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_four_verbs() {
        assert_eq!(
            parse_request("{\"verb\": \"metrics\"}"),
            Ok(Request::Metrics)
        );
        assert_eq!(
            parse_request("{\"verb\": \"shutdown\"}"),
            Ok(Request::Shutdown)
        );
        let r = parse_request(
            "{\"verb\":\"tune\",\"workload\":\"nw(n=448,b=16)\",\"device\":\"mi300\",\
             \"strategy\":\"anneal\",\"budget\":64,\"space\":\"enlarged\"}",
        )
        .unwrap();
        assert_eq!(
            r,
            Request::Tune(TuneSpec {
                workload: "nw(n=448,b=16)".into(),
                device: Some("mi300".into()),
                strategy: Some("anneal".into()),
                budget: Some(64),
                space: Some("enlarged".into()),
            })
        );
        let f = parse_request(
            "{\"verb\":\"fleet\",\"grid\":\"matmul:512..2048x2@a100,h100\",\
             \"strategy\":\"genetic\",\"budget\":96,\"threads\":2,\"transfer\":false}",
        )
        .unwrap();
        assert_eq!(
            f,
            Request::Fleet(FleetWire {
                grid: "matmul:512..2048x2@a100,h100".into(),
                device: None,
                strategy: Some("genetic".into()),
                budget: Some(96),
                space: None,
                threads: Some(2),
                transfer: Some(false),
            })
        );
    }

    #[test]
    fn fleet_wire_round_trips_through_its_own_rendering() {
        let wire = FleetWire {
            grid: "softmax:1k..8kx2,nw:512".into(),
            device: Some("h100".into()),
            strategy: Some("anneal".into()),
            budget: Some(48),
            space: Some("enlarged".into()),
            threads: Some(3),
            transfer: Some(true),
        };
        let line = render_line(&wire.to_json());
        assert_eq!(parse_request(&line), Ok(Request::Fleet(wire)));
        let bare = FleetWire::grid("matmul:256");
        let line = render_line(&bare.to_json());
        assert_eq!(parse_request(&line), Ok(Request::Fleet(bare)));
    }

    #[test]
    fn resolve_fleet_expands_the_grid_with_defaults() {
        let wire = FleetWire::grid("matmul:256..512x2");
        let r = resolve_fleet(&wire, &gpu_sim::h100()).unwrap();
        assert_eq!(r.grid.len(), 2);
        assert!(r.grid.iter().all(|req| req.device.tag == "h100"));
        assert!(r.grid.iter().all(|req| req.strategy == Strategy::Anneal));
        assert_eq!(r.threads, 4);
        assert!(r.transfer);

        assert!(resolve_fleet(&FleetWire::grid("matmul:"), &gpu_sim::a100())
            .unwrap_err()
            .contains("bad grid"));
        let mut bad_dev = FleetWire::grid("matmul:256");
        bad_dev.device = Some("v100".into());
        assert!(resolve_fleet(&bad_dev, &gpu_sim::a100())
            .unwrap_err()
            .contains("unknown device"));
    }

    #[test]
    fn spec_round_trips_through_its_own_rendering() {
        let spec = TuneSpec {
            workload: "matmul(n=1024)".into(),
            device: Some("h100".into()),
            strategy: Some("genetic".into()),
            budget: Some(128),
            space: None,
        };
        let line = render_line(&spec.to_json());
        assert_eq!(parse_request(&line), Ok(Request::Tune(spec)));
    }

    #[test]
    fn malformed_lines_error_without_panicking() {
        for bad in [
            "",
            "not json",
            "42",
            "{}",
            "{\"verb\": 7}",
            "{\"verb\": \"frobnicate\"}",
            "{\"verb\": \"tune\"}",
            "{\"verb\": \"tune\", \"workload\": 9}",
            "{\"verb\": \"tune\", \"workload\": \"matmul(n=64)\", \"budget\": -1}",
            "{\"verb\": \"tune\", \"workload\": \"matmul(n=64)\", \"budget\": \"big\"}",
            "{\"verb\": \"tune\", \"workload\": \"matmul(n=64)\", \"strategy\": 3}",
            "{\"verb\": \"fleet\"}",
            "{\"verb\": \"fleet\", \"grid\": 7}",
            "{\"verb\": \"fleet\", \"grid\": \"matmul:256\", \"threads\": 0}",
            "{\"verb\": \"fleet\", \"grid\": \"matmul:256\", \"transfer\": \"yes\"}",
        ] {
            assert!(parse_request(bad).is_err(), "{bad:?} must not parse");
        }
    }

    #[test]
    fn resolve_applies_defaults_and_rejects_unknowns() {
        let spec = TuneSpec::workload("transpose(n=512)");
        let req = resolve(&spec, &gpu_sim::h100()).unwrap();
        assert_eq!(req.device.tag, "h100");
        assert_eq!(req.strategy, Strategy::Exhaustive);

        let mut bad_dev = spec.clone();
        bad_dev.device = Some("v100".into());
        assert!(resolve(&bad_dev, &gpu_sim::a100())
            .unwrap_err()
            .contains("unknown device"));

        let mut bad_strat = spec.clone();
        bad_strat.strategy = Some("brute".into());
        assert!(resolve(&bad_strat, &gpu_sim::a100())
            .unwrap_err()
            .contains("unknown strategy"));

        let mut bad_space = spec;
        bad_space.space = Some("huge".into());
        assert!(resolve(&bad_space, &gpu_sim::a100())
            .unwrap_err()
            .contains("unknown space"));

        assert!(
            resolve(&TuneSpec::workload("frobnicate(n=2)"), &gpu_sim::a100())
                .unwrap_err()
                .contains("unknown workload family")
        );
    }
}
