//! End-to-end tests against a real daemon on an ephemeral port.

use std::path::PathBuf;
use std::sync::{Arc, Barrier};

use lego_served::client::{is_ok, Client};
use lego_served::{FleetWire, Server, ServerConfig, TuneSpec};
use lego_tune::Json;

/// A unique temp cache path per test (tests run in one process, so the
/// pid alone is not enough).
fn temp_cache(tag: &str) -> PathBuf {
    let path = std::env::temp_dir().join(format!(
        "lego_served_test_{}_{}.json",
        tag,
        std::process::id()
    ));
    let _ = std::fs::remove_file(&path);
    path
}

fn start(tag: &str, workers: usize) -> (Server, PathBuf) {
    let cache = temp_cache(tag);
    let server = Server::start(ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        workers,
        cache: Some(cache.clone()),
        sidecar: None,
        device_default: gpu_sim::a100(),
    })
    .expect("bind ephemeral daemon");
    (server, cache)
}

fn shutdown_and_join(server: Server) {
    let mut ctl = Client::connect(server.local_addr()).expect("connect for shutdown");
    let bye = ctl.shutdown().expect("shutdown roundtrip");
    assert!(is_ok(&bye), "shutdown must be acknowledged");
    server.join().expect("drain and flush");
}

#[test]
fn herd_of_sixteen_coalesces_onto_one_search() {
    const HERD: usize = 16;
    let (server, cache) = start("herd", HERD);
    let addr = server.local_addr();
    let service = server.service();

    let barrier = Arc::new(Barrier::new(HERD));
    let handles: Vec<_> = (0..HERD)
        .map(|_| {
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).expect("connect");
                barrier.wait();
                client
                    .roundtrip_line(
                        "{\"verb\":\"tune\",\"workload\":\"nw(n=448,b=16)\",\
                         \"device\":\"h100\"}",
                    )
                    .expect("tune roundtrip")
            })
        })
        .collect();
    let lines: Vec<String> = handles
        .into_iter()
        .map(|h| h.join().expect("client"))
        .collect();

    assert_eq!(
        service.metrics().searches_run(),
        1,
        "a herd of {HERD} identical requests must run exactly one search"
    );
    let first = &lines[0];
    assert!(is_ok(&Json::parse(first).expect("parse response")));
    for line in &lines {
        assert_eq!(line, first, "herd responses must be byte-identical");
    }

    shutdown_and_join(server);
    let _ = std::fs::remove_file(&cache);
}

#[test]
fn malformed_lines_error_without_dropping_the_connection() {
    let (server, cache) = start("malformed", 2);
    let mut client = Client::connect(server.local_addr()).expect("connect");

    for bad in [
        "this is not json",
        "{\"verb\": \"frobnicate\"}",
        "{\"verb\": \"tune\"}",
        "{\"verb\": \"tune\", \"workload\": \"matmul(n=nope)\"}",
        "{\"verb\": \"tune\", \"workload\": \"matmul(n=64)\", \"device\": \"v100\"}",
        "{\"verb\": \"tune\", \"workload\": \"matmul(n=64)\", \"strategy\": \"brute\"}",
    ] {
        let line = client.roundtrip_line(bad).expect("connection must survive");
        let response = Json::parse(&line).expect("error responses are JSON");
        assert!(!is_ok(&response), "{bad:?} must be rejected");
        assert!(
            response.get("error").and_then(Json::as_str).is_some(),
            "rejections carry an error message"
        );
    }

    // The same connection still serves a good request afterwards.
    let good = client
        .tune(&TuneSpec::workload("transpose(n=256)"))
        .expect("tune after malformed lines");
    assert!(
        is_ok(&good),
        "connection must still serve: {}",
        good.render()
    );
    assert_eq!(service_errors(&server), 6);

    shutdown_and_join(server);
    let _ = std::fs::remove_file(&cache);
}

fn service_errors(server: &Server) -> i64 {
    server
        .service()
        .metrics()
        .to_json()
        .get("malformed")
        .and_then(Json::as_i64)
        .expect("metrics carry malformed count")
}

#[test]
fn memory_tier_serves_repeats_and_metrics_see_every_tier() {
    let (server, cache) = start("tiers", 2);
    let mut client = Client::connect(server.local_addr()).expect("connect");
    let spec = TuneSpec::workload("softmax(m=64,n=256)");

    let first = client.tune(&spec).expect("first tune");
    assert!(is_ok(&first));
    let second = client.tune(&spec).expect("second tune");
    assert_eq!(
        first.render(),
        second.render(),
        "repeat must serve the same result"
    );

    let metrics = client.metrics().expect("metrics");
    let tiers = metrics.get("tiers").expect("tiers object");
    assert_eq!(tiers.get("searched").and_then(Json::as_i64), Some(1));
    assert_eq!(tiers.get("memory").and_then(Json::as_i64), Some(1));
    let class = metrics
        .get("classes")
        .and_then(|c| c.get("softmax@a100"))
        .expect("per-class stats under family@tag");
    assert_eq!(class.get("requests").and_then(Json::as_i64), Some(2));
    assert!(class.get("p99_ms").and_then(Json::as_f64).unwrap() > 0.0);
    let arena = metrics.get("arena").expect("arena aggregate");
    assert!(arena.get("nodes").and_then(Json::as_i64).unwrap() > 0);

    shutdown_and_join(server);
    let _ = std::fs::remove_file(&cache);
}

#[test]
fn shutdown_flushes_the_cache_and_a_restart_preloads_it() {
    let (server, cache) = start("restart", 2);
    let mut client = Client::connect(server.local_addr()).expect("connect");
    let spec = TuneSpec::workload("nw(n=192,b=8)");
    let first = client.tune(&spec).expect("tune before restart");
    assert!(is_ok(&first));
    shutdown_and_join(server);
    assert!(cache.exists(), "shutdown must leave a flushed cache behind");

    // A fresh daemon on the same cache serves the key from memory.
    let server = Server::start(ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: 2,
        cache: Some(cache.clone()),
        sidecar: None,
        device_default: gpu_sim::a100(),
    })
    .expect("restart daemon");
    assert_eq!(
        server.service().memory_len(),
        1,
        "restart must preload the cache"
    );
    let mut client = Client::connect(server.local_addr()).expect("reconnect");
    let again = client.tune(&spec).expect("tune after restart");
    assert_eq!(
        first.render(),
        again.render(),
        "restart must serve the same result"
    );
    assert_eq!(
        server.service().metrics().searches_run(),
        0,
        "the preloaded key must not trigger a search"
    );

    shutdown_and_join(server);
    let _ = std::fs::remove_file(&cache);
}

#[test]
fn fleet_verb_tunes_a_grid_and_feeds_the_tune_path() {
    let (server, cache) = start("fleet", 2);
    let mut client = Client::connect(server.local_addr()).expect("connect");

    let mut wire = FleetWire::grid("matmul:256..1024x2");
    wire.budget = Some(48);
    wire.threads = Some(2);
    let report = client.fleet(&wire).expect("fleet roundtrip");
    assert!(is_ok(&report), "fleet must succeed: {}", report.render());
    assert_eq!(report.get("keys_tuned").and_then(Json::as_i64), Some(3));
    assert_eq!(report.get("errors").and_then(Json::as_i64), Some(0));
    assert!(
        report.get("transfer_hits").and_then(Json::as_i64).unwrap() >= 2,
        "the sweep's tail must transfer from its head"
    );
    let keys = report
        .get("keys")
        .and_then(Json::as_arr)
        .expect("per-key outcomes");
    assert_eq!(keys.len(), 3);
    assert!(keys.iter().all(|k| k.get("ok") == Some(&Json::Bool(true))));

    // The fleet's results serve subsequent tune requests from memory —
    // including transferred keys, which record the cold budget.
    let mut spec = TuneSpec::workload("matmul(n=512)");
    spec.strategy = Some("anneal".into());
    spec.budget = Some(48);
    let served = client.tune(&spec).expect("tune after fleet");
    assert!(is_ok(&served));
    assert_eq!(
        server.service().metrics().searches_run(),
        0,
        "a fleet-tuned key must not trigger a fresh search"
    );

    // Metrics expose the fleet counters, per class and in total.
    let metrics = client.metrics().expect("metrics");
    let fleet = metrics.get("fleet").expect("fleet counters");
    assert_eq!(fleet.get("runs").and_then(Json::as_i64), Some(1));
    assert_eq!(fleet.get("keys_tuned").and_then(Json::as_i64), Some(3));
    let class = metrics
        .get("classes")
        .and_then(|c| c.get("matmul@a100"))
        .expect("fleet classes appear in metrics");
    assert!(
        class
            .get("fleet")
            .and_then(|f| f.get("transfer_hits"))
            .and_then(Json::as_i64)
            .unwrap()
            >= 2
    );

    // A second identical fleet run is all cache hits.
    let again = client.fleet(&wire).expect("second fleet");
    assert!(is_ok(&again));
    assert_eq!(again.get("cache_hits").and_then(Json::as_i64), Some(3));
    assert_eq!(again.get("searched").and_then(Json::as_i64), Some(0));

    shutdown_and_join(server);
    let _ = std::fs::remove_file(&cache);
}

#[test]
fn sidecar_rewarm_reproduces_results_and_reports_warm_hits() {
    let cache1 = temp_cache("sidecar_cold");
    let sidecar = std::env::temp_dir().join(format!(
        "lego_served_test_sidecar_{}.txt",
        std::process::id()
    ));
    let _ = std::fs::remove_file(&sidecar);

    // Run one search cold and shut down: the flush must leave a
    // sidecar behind.
    let server = Server::start(ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: 2,
        cache: Some(cache1.clone()),
        sidecar: Some(sidecar.clone()),
        device_default: gpu_sim::a100(),
    })
    .expect("bind cold daemon");
    let spec = TuneSpec::workload("transpose(n=288)");
    let mut client = Client::connect(server.local_addr()).expect("connect");
    let cold = client.tune(&spec).expect("cold tune");
    assert!(is_ok(&cold));
    shutdown_and_join(server);
    assert!(sidecar.exists(), "shutdown must flush the memo sidecar");

    // Restart against a FRESH cache (forcing a real search) but the
    // same sidecar: the search must reproduce the cold result
    // byte-identically and be served from re-warmed memo tables.
    let cache2 = temp_cache("sidecar_rewarm");
    let server = Server::start(ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: 2,
        cache: Some(cache2.clone()),
        sidecar: Some(sidecar.clone()),
        device_default: gpu_sim::a100(),
    })
    .expect("bind rewarmed daemon");
    let mut client = Client::connect(server.local_addr()).expect("reconnect");
    let rewarmed = client.tune(&spec).expect("rewarmed tune");
    assert_eq!(
        cold.render(),
        rewarmed.render(),
        "a sidecar-warmed search must reproduce the cold result byte-identically"
    );
    assert_eq!(
        server.service().metrics().searches_run(),
        1,
        "the fresh cache must force a real search"
    );
    let metrics = client.metrics().expect("metrics");
    assert!(
        metrics
            .get("sidecar_installed")
            .and_then(Json::as_i64)
            .unwrap()
            > 0,
        "restart must install sidecar entries"
    );
    assert!(
        metrics
            .get("sidecar_warm_hits")
            .and_then(Json::as_i64)
            .unwrap()
            > 0,
        "the rewarmed search must hit installed entries"
    );

    shutdown_and_join(server);
    let _ = std::fs::remove_file(&cache1);
    let _ = std::fs::remove_file(&cache2);
    let _ = std::fs::remove_file(&sidecar);
}

#[test]
fn flush_creates_missing_parent_directories() {
    // Regression: pointing --cache/--sidecar into a directory that does
    // not exist yet used to fail the first flush at shutdown.
    let dir = std::env::temp_dir().join(format!("lego_served_missing_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let cache = dir.join("caches/tune.json");
    let sidecar = dir.join("sidecars/memo.txt");
    let server = Server::start(ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: 2,
        cache: Some(cache.clone()),
        sidecar: Some(sidecar.clone()),
        device_default: gpu_sim::a100(),
    })
    .expect("bind daemon");
    let mut client = Client::connect(server.local_addr()).expect("connect");
    let served = client
        .tune(&TuneSpec::workload("softmax(m=16,n=256)"))
        .expect("tune");
    assert!(is_ok(&served));
    // join() flushes both stores; it must create the parents rather
    // than erroring out.
    shutdown_and_join(server);
    assert!(cache.exists(), "cache flush must create missing parents");
    assert!(
        sidecar.exists(),
        "sidecar flush must create missing parents"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn client_disconnect_mid_search_still_promotes_the_result() {
    let (server, cache) = start("disconnect", 4);
    let addr = server.local_addr();
    let service = server.service();

    // Fire a tune request and hang up without reading the response.
    {
        use std::io::Write;
        let mut raw = std::net::TcpStream::connect(addr).expect("connect raw");
        raw.write_all(b"{\"verb\":\"tune\",\"workload\":\"transpose(n=320)\"}\n")
            .expect("send");
        // Dropping the stream closes the connection mid-search.
    }

    // The search must still complete and land in the memory tier.
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(30);
    while service.metrics().searches_run() == 0 {
        assert!(
            std::time::Instant::now() < deadline,
            "search must survive the client disconnect"
        );
        std::thread::sleep(std::time::Duration::from_millis(20));
    }
    while service.memory_len() == 0 {
        assert!(
            std::time::Instant::now() < deadline,
            "result must be promoted to the memory tier"
        );
        std::thread::sleep(std::time::Duration::from_millis(20));
    }

    // A new client gets it from memory, no second search.
    let mut client = Client::connect(addr).expect("connect");
    let served = client
        .tune(&TuneSpec::workload("transpose(n=320)"))
        .expect("tune after disconnect");
    assert!(is_ok(&served));
    assert_eq!(service.metrics().searches_run(), 1);

    shutdown_and_join(server);
    let _ = std::fs::remove_file(&cache);
}
