//! The search-parity gate: the regression tests the CI `search-parity`
//! job runs on every push.
//!
//! Ground truth is the exhaustive enumeration of each workload's
//! *enlarged* (free-integer) domain at the legacy problem sizes. The
//! gate asserts that:
//!
//! * seeded `Anneal` and `Genetic` find a configuration whose estimate
//!   matches the exhaustive optimum while scoring at most 25% of the
//!   exhaustive evaluation count (with a small floor for the tiny
//!   stencil/rowwise spaces, where a quarter-budget would round to a
//!   handful of points);
//! * the enlarged spaces really are ≥ 10× the v2 enumeration in
//!   aggregate (and per-workload for the spaces with free-integer
//!   axes), so the budget above is a real saving, not a rounding
//!   artifact;
//! * the same seed replays the same search, and a larger budget never
//!   returns a worse winner.
//!
//! Any oracle or space change that silently breaks the metaheuristics
//! (a neighborhood that can no longer reach the optimum, a scoring
//! change that reshapes the landscape) fails here rather than in a
//! paper table.

use gpu_sim::a100;
use lego_codegen::cuda::stencil::StencilShape;
use lego_tune::{
    Budget, Domain, RowwiseOp, SearchSpace, SpaceScale, Strategy, Tuner, WorkloadKind,
};

/// The workloads of the gate, at the legacy problem sizes (kept small
/// enough that exhaustive ground truth stays cheap).
fn parity_kinds() -> Vec<WorkloadKind> {
    vec![
        WorkloadKind::Matmul { n: 512 },
        WorkloadKind::Transpose { n: 256 },
        WorkloadKind::Stencil {
            shape: StencilShape::Star(1),
            n: 32,
        },
        WorkloadKind::Nw { n: 256, b: 16 },
        WorkloadKind::Lud { n: 256, bs: 16 },
        WorkloadKind::Rowwise {
            op: RowwiseOp::Softmax,
            m: 256,
            n: 1000,
        },
    ]
}

/// The parity budget: ≤ 25% of the exhaustive count, floored at 16 for
/// spaces so small that a quarter rounds down to less than one genetic
/// founding population. (The floor moved from 8 when the additive
/// launch pricing sharpened the NW/LUD landscapes: the old roofline
/// `max()` left many configurations tied at the optimum, which a
/// handful of random probes would hit; the additive model's optima are
/// unique points.)
fn parity_budget(exhaustive_evals: usize) -> Budget {
    Budget((exhaustive_evals / 4).max(16))
}

/// Seeded Anneal and Genetic reach the exhaustive optimum of the
/// enlarged space on every workload, within a quarter of the
/// exhaustive evaluation count.
#[test]
fn metaheuristics_match_exhaustive_optimum_within_quarter_budget() {
    let gpu = a100();
    for kind in parity_kinds() {
        let truth = Tuner::new(gpu.clone())
            .with_space(SpaceScale::Enlarged)
            .tune(&kind)
            .unwrap_or_else(|e| panic!("{}: exhaustive: {e}", kind.name()));
        let budget = parity_budget(truth.evaluated);
        for strategy in [Strategy::Anneal, Strategy::Genetic] {
            let r = Tuner::new(gpu.clone())
                .with_strategy(strategy)
                .with_budget(budget)
                .tune(&kind)
                .unwrap_or_else(|e| panic!("{}: {strategy}: {e}", kind.name()));
            assert!(
                r.evaluated <= budget.max_evals(),
                "{} {strategy}: {} evals > budget {}",
                kind.name(),
                r.evaluated,
                budget.max_evals()
            );
            assert!(
                r.tuned.time_s <= truth.tuned.time_s * (1.0 + 1e-9),
                "{} {strategy}: {} (config {}) misses optimum {} (config {}) \
                 with {}/{} evals",
                kind.name(),
                r.tuned.time_s,
                r.config,
                truth.tuned.time_s,
                truth.config,
                r.evaluated,
                truth.evaluated
            );
            assert!(
                r.tuned.time_s <= r.naive.time_s,
                "{} {strategy}: regressed the default",
                kind.name()
            );
        }
    }
}

/// The enlarged free-integer spaces report ≥ 10× more candidates than
/// the v2 enumeration: per-workload for the kinds with free-integer
/// axes, and ≥ 10× in aggregate.
#[test]
fn enlarged_spaces_dwarf_v2_enumeration() {
    let mut v2_total = 0usize;
    let mut enlarged_total = 0usize;
    for kind in parity_kinds() {
        let v2 = SearchSpace::enumerate(kind).candidates.len();
        let enlarged = Domain::new(kind, SpaceScale::Enlarged).len();
        assert!(
            enlarged >= v2,
            "{}: enlarged {enlarged} < v2 {v2}",
            kind.name()
        );
        // The free-integer axes (tile sides, NW block sizes, LUD
        // coarsening) each unlock an order of magnitude on their own.
        match kind {
            WorkloadKind::Matmul { .. } | WorkloadKind::Nw { .. } | WorkloadKind::Lud { .. } => {
                assert!(
                    enlarged >= 10 * v2,
                    "{}: enlarged {enlarged} < 10× v2 {v2}",
                    kind.name()
                );
            }
            _ => {}
        }
        v2_total += v2;
        enlarged_total += enlarged;
    }
    assert!(
        enlarged_total >= 10 * v2_total,
        "aggregate: enlarged {enlarged_total} < 10× v2 {v2_total}"
    );
}

/// Same seed ⇒ identical winner, identical estimates, identical
/// evaluation count — for both metaheuristics.
#[test]
fn strategies_are_deterministic_per_seed() {
    let gpu = a100();
    for kind in [
        WorkloadKind::Transpose { n: 256 },
        WorkloadKind::Nw { n: 256, b: 16 },
        WorkloadKind::Lud { n: 256, bs: 16 },
    ] {
        for strategy in [Strategy::Anneal, Strategy::Genetic] {
            let tuner = Tuner::new(gpu.clone())
                .with_strategy(strategy)
                .with_budget(Budget(24));
            let a = tuner.tune(&kind).unwrap();
            let b = tuner.tune(&kind).unwrap();
            assert_eq!(a.config, b.config, "{} {strategy}", kind.name());
            assert_eq!(a.tuned, b.tuned, "{} {strategy}", kind.name());
            assert_eq!(a.naive, b.naive, "{} {strategy}", kind.name());
            assert_eq!(a.evaluated, b.evaluated, "{} {strategy}", kind.name());
        }
    }
}

/// A larger budget never returns a worse winner: the proposal stream is
/// budget-independent, so a longer run scores a superset of a shorter
/// one.
#[test]
fn budget_is_monotone() {
    let gpu = a100();
    for kind in [
        WorkloadKind::Transpose { n: 256 },
        WorkloadKind::Nw { n: 256, b: 16 },
        WorkloadKind::Lud { n: 256, bs: 16 },
    ] {
        for strategy in [Strategy::Anneal, Strategy::Genetic] {
            let mut last = f64::INFINITY;
            for budget in [4usize, 16, 48, 160] {
                let r = Tuner::new(gpu.clone())
                    .with_strategy(strategy)
                    .with_budget(Budget(budget))
                    .tune(&kind)
                    .unwrap();
                assert!(
                    r.tuned.time_s <= last * (1.0 + 1e-12),
                    "{} {strategy}: budget {budget} worsened {} -> {}",
                    kind.name(),
                    last,
                    r.tuned.time_s
                );
                last = r.tuned.time_s;
            }
        }
    }
}

/// Rowwise workloads are searchable end to end: the winner round-trips
/// through the generators' `from_tuned` constructors.
#[test]
fn rowwise_workloads_are_searchable() {
    let gpu = a100();
    for op in [
        RowwiseOp::Softmax,
        RowwiseOp::LayernormFwd,
        RowwiseOp::LayernormBwd,
    ] {
        let kind = WorkloadKind::Rowwise {
            op,
            m: 256,
            n: 1000,
        };
        let r = Tuner::new(gpu.clone())
            .with_strategy(Strategy::Anneal)
            .with_budget(Budget(16))
            .tune(&kind)
            .unwrap();
        assert!(r.tuned.time_s <= r.naive.time_s, "{}", kind.name());
        match op {
            RowwiseOp::Softmax => {
                let k = lego_codegen::triton::softmax::from_tuned(&r.config).unwrap();
                assert!(k.source.contains("lego-tune: BS="), "tuned header");
            }
            RowwiseOp::LayernormFwd | RowwiseOp::LayernormBwd => {
                let k = lego_codegen::triton::layernorm::from_tuned(&r.config).unwrap();
                assert!(k.source.contains("lego-tune: BS="), "tuned header");
            }
        }
    }

    // Degenerate tiny rows must not panic the metaheuristics: the block
    // list floors at one warp's worth, so every move axis stays
    // non-empty even when 4·next_pow2(n) < 32.
    let tiny = WorkloadKind::Rowwise {
        op: RowwiseOp::Softmax,
        m: 8,
        n: 4,
    };
    for strategy in [Strategy::Anneal, Strategy::Genetic] {
        let r = Tuner::new(gpu.clone())
            .with_strategy(strategy)
            .with_budget(Budget(8))
            .tune(&tiny)
            .unwrap();
        assert!(r.tuned.time_s <= r.naive.time_s, "tiny rowwise {strategy}");
    }
}

/// An unsatisfying cache entry (different strategy or smaller budget)
/// is not served, but its frontier warm-starts the new search; an
/// identical re-run afterwards is served from cache.
#[test]
fn cache_warm_starts_and_budget_aware_hits() {
    let dir = std::env::temp_dir().join(format!("lego-parity-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("warm.json");
    let _ = std::fs::remove_file(&path);
    let gpu = a100();
    let kind = WorkloadKind::Nw { n: 256, b: 16 };

    let small = Tuner::new(gpu.clone())
        .with_strategy(Strategy::Anneal)
        .with_budget(Budget(12))
        .with_cache(&path);
    let first = small.tune(&kind).unwrap();
    assert!(!first.from_cache);

    // Same request again: a budget-satisfying entry exists — cache hit.
    let again = small.tune(&kind).unwrap();
    assert!(again.from_cache);
    assert_eq!(again.config, first.config);

    // A bigger budget is not satisfied by the cached 12-eval search; it
    // re-searches (warm-started from the stored frontier) and can only
    // do better.
    let big = Tuner::new(gpu.clone())
        .with_strategy(Strategy::Anneal)
        .with_budget(Budget(64))
        .with_cache(&path);
    let wider = big.tune(&kind).unwrap();
    assert!(!wider.from_cache, "larger budget must re-search");
    assert!(wider.tuned.time_s <= first.tuned.time_s * (1.0 + 1e-12));

    let _ = std::fs::remove_file(&path);
    let _ = std::fs::remove_dir(&dir);
}
