//! Tuner-level integration tests: every layout the search space emits
//! is a bijection, the search is deterministic, tuning never regresses
//! the default, and the JSON cache round-trips estimates bit-exactly.

use gpu_sim::a100;
use lego_codegen::cuda::stencil::StencilShape;
use lego_core::check::check_layout_bijective;
use lego_tune::cache::{cache_key, CachedTuning, TuningCache};
use lego_tune::{build_layout, SearchSpace, Tuner, WorkloadKind};

fn small_kinds() -> Vec<WorkloadKind> {
    vec![
        WorkloadKind::Matmul { n: 1024 },
        WorkloadKind::Transpose { n: 512 },
        WorkloadKind::Stencil {
            shape: StencilShape::Star(1),
            n: 32,
        },
        WorkloadKind::Nw { n: 512, b: 16 },
        WorkloadKind::Lud { n: 512, bs: 16 },
    ]
}

/// Every candidate layout in every search space is bijective, and
/// `inv_c` inverts `apply_c` pointwise.
#[test]
fn search_space_layouts_are_bijective() {
    for kind in small_kinds() {
        let space = SearchSpace::enumerate(kind);
        assert!(
            space.candidates.len() >= 3,
            "{}: only {} candidates",
            kind.name(),
            space.candidates.len()
        );
        for cand in &space.candidates {
            let layout = build_layout(&kind, &cand.config)
                .unwrap_or_else(|e| panic!("{}: {e}", cand.config));
            let dims = layout.view().dims_const().unwrap();
            let size: i64 = dims.iter().product();
            if size <= 64 * 64 {
                // Exhaustive bijectivity for small spaces.
                check_layout_bijective(&layout).unwrap_or_else(|e| panic!("{}: {e}", cand.config));
            }
            // Pointwise apply/inv round trip on scattered probes.
            for probe in 0..16 {
                let f = (probe * 7919) % size;
                let idx = layout.inv_c(f).unwrap();
                assert_eq!(
                    layout.apply_c(&idx).unwrap(),
                    f,
                    "{}: flat {f}",
                    cand.config
                );
            }
        }
    }
}

/// The default configuration is always candidate zero, so the tuned
/// result can never be slower than the shipped default.
#[test]
fn default_config_is_first_candidate() {
    for kind in small_kinds() {
        let space = SearchSpace::enumerate(kind);
        assert_eq!(space.candidates[0].config, kind.default_config());
    }
}

/// Same inputs → same winning configuration and identical estimates.
#[test]
fn tuning_is_deterministic() {
    let tuner = Tuner::new(a100());
    for kind in small_kinds() {
        let a = tuner.tune(&kind).unwrap();
        let b = tuner.tune(&kind).unwrap();
        assert_eq!(a.config, b.config, "{}", kind.name());
        assert_eq!(a.tuned, b.tuned, "{}", kind.name());
        assert_eq!(a.naive, b.naive, "{}", kind.name());
        assert_eq!(a.expr_variant, b.expr_variant, "{}", kind.name());
    }
}

/// Tuning never regresses the hand-picked default, and for these
/// workloads the model finds a strictly better configuration.
#[test]
fn tuned_configuration_never_regresses() {
    let tuner = Tuner::new(a100());
    for kind in small_kinds() {
        let r = tuner.tune(&kind).unwrap();
        assert!(
            r.tuned.time_s <= r.naive.time_s,
            "{}: tuned {} > naive {}",
            kind.name(),
            r.tuned.time_s,
            r.naive.time_s
        );
    }
    // Transpose and stencil have known large headroom over their naive
    // defaults (smem staging, bricks) — the search must find it.
    let t = tuner.tune(&WorkloadKind::Transpose { n: 512 }).unwrap();
    assert!(t.speedup() > 1.5, "transpose speedup {}", t.speedup());
    let s = tuner
        .tune(&WorkloadKind::Stencil {
            shape: StencilShape::Cube(1),
            n: 32,
        })
        .unwrap();
    assert!(s.speedup() > 1.5, "stencil speedup {}", s.speedup());
}

/// Cache write → read → identical `Estimate` (bit-exact floats).
#[test]
fn cache_round_trips_estimates() {
    let dir = std::env::temp_dir().join(format!("lego-tune-test-{}", std::process::id()));
    let path = dir.join("cache-roundtrip.json");
    let _ = std::fs::remove_file(&path);
    let gpu = a100();

    let tuner = Tuner::new(gpu.clone());
    let kind = WorkloadKind::Transpose { n: 512 };
    let fresh = tuner.tune(&kind).unwrap();

    let cache = TuningCache::new(&path);
    let key = cache_key(&fresh.workload, kind.pricing_mode(), &gpu);
    let entry = CachedTuning {
        config: fresh.config,
        expr_variant: fresh.expr_variant,
        index_ops: fresh.index_ops,
        naive: fresh.naive,
        tuned: fresh.tuned,
        evaluated: fresh.evaluated,
        strategy: "exhaustive".to_string(),
        budget: None,
        space: "legacy".to_string(),
        frontier: vec![(fresh.config, fresh.tuned.time_s)],
    };
    cache.store(&key, &entry).unwrap();
    let back = cache.lookup(&key).unwrap();
    assert_eq!(back, entry);
    assert_eq!(
        back.tuned, fresh.tuned,
        "estimate must survive the JSON trip"
    );

    let _ = std::fs::remove_file(&path);
    let _ = std::fs::remove_dir(&dir);
}

/// A cached tuner skips re-evaluation on the second run.
#[test]
fn second_run_hits_cache() {
    let dir = std::env::temp_dir().join(format!("lego-tune-test-{}", std::process::id()));
    let path = dir.join("cache-hit.json");
    let _ = std::fs::remove_file(&path);

    let tuner = Tuner::new(a100()).with_cache(&path);
    let kind = WorkloadKind::Stencil {
        shape: StencilShape::Star(1),
        n: 32,
    };
    let first = tuner.tune(&kind).unwrap();
    assert!(!first.from_cache);
    assert!(first.evaluated > 0);

    let second = tuner.tune(&kind).unwrap();
    assert!(second.from_cache, "second run must hit the cache");
    assert_eq!(second.evaluated, 0, "cache hit skips evaluation");
    assert_eq!(second.config, first.config);
    assert_eq!(second.tuned, first.tuned);
    assert_eq!(second.naive, first.naive);

    let _ = std::fs::remove_file(&path);
    let _ = std::fs::remove_dir(&dir);
}

/// Non-power-of-two problem sizes enumerate only constructible
/// schedules (GM must divide nt_m) and tune cleanly end to end.
#[test]
fn non_power_of_two_sizes_tune_cleanly() {
    let tuner = Tuner::new(a100());
    for n in [768i64, 1536] {
        let r = tuner
            .tune(&WorkloadKind::Matmul { n })
            .unwrap_or_else(|e| panic!("n={n}: {e}"));
        assert!(r.tuned.time_s <= r.naive.time_s, "n={n}");
        assert!(r.evaluated > 1, "n={n}: space collapsed");
    }
}

/// The matmul search reproduces the paper's qualitative result: the
/// grouped schedule beats plain row-major once B no longer fits in L2,
/// and the tuner's winner is at least as good as both.
#[test]
fn matmul_winner_beats_row_major_at_large_sizes() {
    let tuner = Tuner::new(a100());
    let r = tuner.tune(&WorkloadKind::Matmul { n: 4096 }).unwrap();
    assert!(r.tuned.time_s <= r.naive.time_s);
    // The winner must retain decent L2 behavior.
    assert!(
        r.tuned.l2_hit_rate > 0.3,
        "hit rate {}",
        r.tuned.l2_hit_rate
    );
}
