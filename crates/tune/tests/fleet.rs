//! Fleet-driver integration tests: parallel runs match the sequential
//! tuner exactly, results are invariant to thread count and scheduling,
//! the merged cache write persists every key, and frontier transfer is
//! sound — never worse than a cold search beyond a fixed tolerance,
//! and deterministic per seed.

use gpu_sim::a100;
use lego_codegen::cuda::stencil::StencilShape;
use lego_codegen::tuning::RowwiseOp;
use lego_tune::fleet::{FleetDriver, FleetSpec, TRANSFER_MIN_EVALS};
use lego_tune::{Budget, Strategy, TuneRequest, TuningCache, WorkloadKind};

/// Winner-quality tolerance of the transfer-soundness property: a
/// transferred search keeps a quarter of the budget, so its winner may
/// trail the cold one, but never by more than this factor.
const TRANSFER_TOL: f64 = 0.05;

fn small_grid() -> Vec<TuneRequest> {
    FleetSpec::parse("matmul:256..1024x2,softmax:512..2048x2@a100,h100")
        .unwrap()
        .requests(&a100(), Strategy::Anneal, Budget(48), None)
}

/// With transfer off, a fleet is exactly N independent sequential
/// searches — same winners, same bit-exact estimates, in any order.
#[test]
fn cold_fleet_matches_the_sequential_tuner() {
    let grid = small_grid();
    let report = FleetDriver::new(4).with_transfer(false).run(&grid);
    assert_eq!(report.keys.len(), grid.len());
    assert!(!report.transfer);
    for key in &report.keys {
        let fleet = key.result.as_ref().expect("search succeeded");
        let solo = key
            .request
            .tuner()
            .tune_seeded(&key.request.kind, &[], None)
            .unwrap();
        assert_eq!(fleet.config, solo.result.config, "{}", key.cache_key);
        assert_eq!(fleet.tuned, solo.result.tuned, "{}", key.cache_key);
        assert_eq!(fleet.naive, solo.result.naive, "{}", key.cache_key);
        assert_eq!(fleet.evaluated, solo.result.evaluated, "{}", key.cache_key);
        assert!(key.transferred_from.is_none());
    }
    let c = report.counters();
    assert_eq!(c.searched, grid.len() as u64);
    assert_eq!(c.transfers, 0);
    assert_eq!(c.errors, 0);
}

/// Transfer sources are pinned before the run (nearest earlier key),
/// so the whole report is invariant to worker count and steal order.
#[test]
fn transferred_fleet_is_thread_count_invariant() {
    let grid = small_grid();
    let one = FleetDriver::new(1).run(&grid);
    let many = FleetDriver::new(4).run(&grid);
    assert_eq!(one.keys.len(), many.keys.len());
    for (a, b) in one.keys.iter().zip(many.keys.iter()) {
        assert_eq!(a.cache_key, b.cache_key);
        assert_eq!(a.transferred_from, b.transferred_from, "{}", a.cache_key);
        assert_eq!(a.seeds, b.seeds, "{}", a.cache_key);
        let (ra, rb) = (a.result.as_ref().unwrap(), b.result.as_ref().unwrap());
        assert_eq!(ra.config, rb.config, "{}", a.cache_key);
        assert_eq!(ra.tuned, rb.tuned, "{}", a.cache_key);
        assert_eq!(ra.evaluated, rb.evaluated, "{}", a.cache_key);
        assert_eq!(ra.evals_to_winner, rb.evals_to_winner, "{}", a.cache_key);
    }
    // Late keys in each (family, device) sweep transferred from early
    // ones: only the four sweep heads (2 families × 2 devices — the
    // cross-device heads transfer too, from the sibling device) plus
    // the two global heads run cold.
    let c = many.counters();
    assert!(
        c.transfers >= (grid.len() as u64) - 4,
        "expected most keys to transfer, got {} of {}",
        c.transfers,
        grid.len()
    );
}

/// A cache-backed fleet writes every fresh result in one merged batch;
/// a second run over the same grid is all instant hits; no tempfile
/// litter survives.
#[test]
fn fleet_persists_once_and_rehits() {
    let dir = std::env::temp_dir().join(format!("lego-fleet-cache-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("fleet.json");
    let _ = std::fs::remove_file(&path);

    let grid = small_grid();
    let driver = FleetDriver::new(3).with_cache(&path);
    let first = driver.run(&grid);
    assert_eq!(first.counters().errors, 0);
    assert_eq!(first.counters().searched, grid.len() as u64);

    let cache = TuningCache::new(&path);
    let entries = cache.entries();
    for req in &grid {
        let hit = entries
            .iter()
            .find(|(k, _)| *k == req.cache_key())
            .map(|(_, v)| v)
            .unwrap_or_else(|| panic!("missing entry for {}", req.cache_key()));
        assert!(req.satisfied_by(hit), "{}", req.cache_key());
        assert!(!hit.frontier.is_empty(), "frontier persisted");
    }

    let second = driver.run(&grid);
    let c = second.counters();
    assert_eq!(c.cache_hits, grid.len() as u64, "second run all hits");
    assert_eq!(c.searched, 0);
    for key in &second.keys {
        let (a, b) = (
            first
                .keys
                .iter()
                .find(|k| k.cache_key == key.cache_key)
                .unwrap(),
            key,
        );
        let (ra, rb) = (a.result.as_ref().unwrap(), b.result.as_ref().unwrap());
        assert_eq!(ra.config, rb.config);
        assert_eq!(ra.tuned, rb.tuned);
        assert!(rb.from_cache);
    }

    let leftovers: Vec<_> = std::fs::read_dir(&dir)
        .unwrap()
        .filter_map(|e| e.ok())
        .filter(|e| e.file_name().to_string_lossy().contains(".tmp."))
        .collect();
    assert!(leftovers.is_empty(), "stale tempfiles: {leftovers:?}");

    let _ = std::fs::remove_file(&path);
    let _ = std::fs::remove_dir(&dir);
}

/// Transfer soundness, per workload family and budgeted strategy: a
/// search seeded from a neighboring size's frontier and cut to a
/// quarter budget must land within [`TRANSFER_TOL`] of the same-seed
/// cold search's winner — and must replay bit-identically.
#[test]
fn transfer_is_never_worse_than_cold_beyond_tolerance() {
    let pairs: Vec<(WorkloadKind, WorkloadKind)> = vec![
        (
            WorkloadKind::Matmul { n: 512 },
            WorkloadKind::Matmul { n: 1024 },
        ),
        (
            WorkloadKind::Transpose { n: 512 },
            WorkloadKind::Transpose { n: 1024 },
        ),
        (
            WorkloadKind::Stencil {
                shape: StencilShape::Star(1),
                n: 32,
            },
            WorkloadKind::Stencil {
                shape: StencilShape::Star(1),
                n: 64,
            },
        ),
        (
            WorkloadKind::Nw { n: 512, b: 16 },
            WorkloadKind::Nw { n: 1024, b: 16 },
        ),
        (
            WorkloadKind::Lud { n: 512, bs: 16 },
            WorkloadKind::Lud { n: 1024, bs: 16 },
        ),
        (
            WorkloadKind::Rowwise {
                op: RowwiseOp::Softmax,
                m: 64,
                n: 1024,
            },
            WorkloadKind::Rowwise {
                op: RowwiseOp::Softmax,
                m: 64,
                n: 2048,
            },
        ),
    ];
    let cold_budget = Budget(160);
    let cut = Budget((cold_budget.max_evals() / 4).max(TRANSFER_MIN_EVALS));
    for strategy in [Strategy::Anneal, Strategy::Genetic] {
        for (src_kind, dst_kind) in &pairs {
            let tuner = lego_tune::Tuner::new(a100())
                .with_strategy(strategy)
                .with_budget(cold_budget);
            let src = tuner.tune_seeded(src_kind, &[], None).unwrap();
            let seeds: Vec<_> = src.frontier.iter().map(|(c, _)| *c).collect();

            let cold = tuner.tune_seeded(dst_kind, &[], None).unwrap();
            let warm = tuner.tune_seeded(dst_kind, &seeds, Some(cut)).unwrap();
            assert!(warm.result.evaluated <= cut.max_evals());
            assert!(
                warm.result.tuned.time_s <= cold.result.tuned.time_s * (1.0 + TRANSFER_TOL),
                "{} via {strategy}: transferred {:.3e}s vs cold {:.3e}s exceeds tolerance",
                dst_kind.name(),
                warm.result.tuned.time_s,
                cold.result.tuned.time_s
            );

            // Determinism per seed, transfer enabled: same seeds, same
            // budget → bit-identical outcome.
            let replay = tuner.tune_seeded(dst_kind, &seeds, Some(cut)).unwrap();
            assert_eq!(warm.result.config, replay.result.config);
            assert_eq!(warm.result.tuned, replay.result.tuned);
            assert_eq!(warm.evals_to_winner, replay.evals_to_winner);
            assert_eq!(warm.frontier, replay.frontier);
        }
    }
}
