//! Correctness gates for the two-tier pricing split and the
//! bound-pruned exhaustive sweep.
//!
//! The traffic memo and the branch-and-bound cutoff are pure
//! optimizations: by contract they change *nothing* observable.
//!
//! * memo on vs. memo off must produce bit-identical [`Estimate`]s for
//!   every candidate of every workload family on every device (a
//!   `traffic_key = None` workload bypasses the memo entirely, so
//!   pricing the same candidate both ways compares the cached and the
//!   uncached paths);
//! * [`gpu_sim::CostModel::bound`] must be admissible — never above
//!   the full-trace time — for every candidate, since the pruning
//!   proof rests on it;
//! * the pruned exhaustive search must return the same winner, naive
//!   baseline, frontier, and evaluation count as scoring everything.

use gpu_sim::{a100, h100, mi300, CostModel, GpuConfig};
use lego_codegen::cuda::stencil::StencilShape;
use lego_tune::cache::config_to_json;
use lego_tune::strategy::rank;
use lego_tune::{
    run_search, Budget, Candidate, Domain, RowwiseOp, SpaceScale, Strategy, WorkloadKind,
    FRONTIER_K,
};

fn kinds() -> Vec<WorkloadKind> {
    vec![
        WorkloadKind::Matmul { n: 512 },
        WorkloadKind::Transpose { n: 256 },
        WorkloadKind::Stencil {
            shape: StencilShape::Star(1),
            n: 32,
        },
        WorkloadKind::Nw { n: 256, b: 16 },
        WorkloadKind::Lud { n: 256, bs: 16 },
        WorkloadKind::Rowwise {
            op: RowwiseOp::Softmax,
            m: 256,
            n: 1000,
        },
    ]
}

fn devices() -> Vec<GpuConfig> {
    vec![a100(), h100(), mi300()]
}

/// Unique feasible candidates of the enlarged domain (default first,
/// deduplicated in evaluation order — the same order and dedup the
/// exhaustive search uses), thinned to every `step`-th config so the
/// all-devices sweeps stay fast.
fn feasible(kind: &WorkloadKind, step: usize) -> Vec<(Candidate, lego_core::Layout)> {
    let domain = Domain::new(*kind, SpaceScale::Enlarged);
    let mut seen = std::collections::HashSet::new();
    let mut out = Vec::new();
    let all = domain.enumerate();
    for c in std::iter::once(domain.default_config()).chain(all.into_iter().step_by(step.max(1))) {
        if !seen.insert(config_to_json(&c).render()) {
            continue;
        }
        let cand = Candidate::annotated(kind, &c);
        if let Ok(layout) = lego_tune::build_layout(kind, &cand.config) {
            out.push((cand, layout));
        }
    }
    out
}

#[test]
fn memoized_pricing_is_bit_identical_to_uncached() {
    for gpu in &devices() {
        let model = CostModel::new(gpu);
        for kind in &kinds() {
            for (cand, layout) in feasible(kind, 13) {
                let wl = lego_tune::build_workload(kind, &cand, gpu);
                assert!(wl.traffic_key.is_some(), "{kind:?} builder must set a key");
                let cached_cold = model.price(&layout, &wl);
                let cached_warm = model.price(&layout, &wl);
                let mut bare = lego_tune::build_workload(kind, &cand, gpu);
                bare.traffic_key = None;
                let uncached = model.price(&layout, &bare);
                assert_eq!(
                    cached_cold, uncached,
                    "{kind:?} on {}: memoized price diverged from direct trace",
                    gpu.tag
                );
                assert_eq!(
                    cached_cold, cached_warm,
                    "{kind:?} on {}: warm memo hit diverged from its own miss",
                    gpu.tag
                );
            }
        }
    }
}

#[test]
fn bound_never_exceeds_full_price() {
    for gpu in &devices() {
        let model = CostModel::new(gpu);
        for kind in &kinds() {
            for (cand, layout) in feasible(kind, 7) {
                let wl = lego_tune::build_workload(kind, &cand, gpu);
                let est = model.price(&layout, &wl);
                let lo = model.bound(&wl);
                assert!(
                    lo <= est.time_s * (1.0 + 1e-9),
                    "{kind:?} on {}: bound {lo:e} exceeds priced time {:e} for {:?}",
                    gpu.tag,
                    est.time_s,
                    cand.config
                );
            }
        }
    }
}

#[test]
fn pruned_exhaustive_matches_score_everything_ground_truth() {
    let gpu = a100();
    let mut total_pruned = 0;
    for kind in &kinds() {
        let domain = Domain::new(*kind, SpaceScale::Enlarged);
        // Ground truth: score every unique feasible config, no pruning.
        let scored: Vec<(Candidate, gpu_sim::Estimate)> = feasible(kind, 1)
            .into_iter()
            .map(|(cand, layout)| {
                let wl = lego_tune::build_workload(kind, &cand, &gpu);
                let est = gpu_sim::score(&layout, &wl, &gpu);
                (cand, est)
            })
            .collect();
        let mut best = 0;
        for (i, (_, est)) in scored.iter().enumerate() {
            if rank(est) < rank(&scored[best].1) {
                best = i;
            }
        }
        let mut order: Vec<usize> = (0..scored.len()).collect();
        order.sort_by(|&a, &b| {
            rank(&scored[a].1)
                .partial_cmp(&rank(&scored[b].1))
                .expect("finite estimates")
                .then(a.cmp(&b))
        });
        let frontier: Vec<(lego_tune::TunedConfig, f64)> = order
            .iter()
            .take(FRONTIER_K)
            .map(|&i| (scored[i].0.config, scored[i].1.time_s))
            .collect();

        let outcome = run_search(
            Strategy::Exhaustive,
            &domain,
            &gpu,
            Budget::default(),
            "two-tier-parity",
            &[],
        )
        .expect("exhaustive search succeeds");
        assert_eq!(
            outcome.winner.config, scored[best].0.config,
            "{kind:?}: pruning changed the winner"
        );
        assert_eq!(
            outcome.tuned, scored[best].1,
            "{kind:?}: pruning changed the winning estimate"
        );
        assert_eq!(
            outcome.naive, scored[0].1,
            "{kind:?}: pruning changed the naive baseline"
        );
        assert_eq!(
            outcome.frontier, frontier,
            "{kind:?}: pruning changed the persisted frontier"
        );
        assert_eq!(
            outcome.evaluated,
            scored.len(),
            "{kind:?}: scored + pruned must equal the unpruned count"
        );
        assert!(
            outcome.traffic_hits + outcome.traffic_misses > 0,
            "{kind:?}: keyed workloads must probe the traffic memo"
        );
        total_pruned += outcome.pruned;
    }
    assert!(
        total_pruned > 0,
        "the admissible bound pruned nothing across any family"
    );
}
