//! The search driver: enumerate → batch-score → pick → cache.

use std::fmt;
use std::path::PathBuf;

use gpu_sim::score::{score_batch, Estimate};
use gpu_sim::GpuConfig;
use lego_codegen::tuning::TunedConfig;
use lego_core::LayoutError;
use lego_expr::Variant;

use crate::cache::{cache_key, CachedTuning, TuningCache};
use crate::space::{build_layout, build_workload, SearchSpace, WorkloadKind};

/// Errors of the tuning pipeline.
#[derive(Debug)]
pub enum TuneError {
    /// A candidate layout failed to build.
    Layout(LayoutError),
    /// The cache file could not be written.
    Io(std::io::Error),
    /// The search space was empty (never produced by the built-in
    /// spaces; guards custom ones).
    EmptySpace(String),
}

impl fmt::Display for TuneError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TuneError::Layout(e) => write!(f, "layout error: {e}"),
            TuneError::Io(e) => write!(f, "cache i/o error: {e}"),
            TuneError::EmptySpace(w) => {
                write!(f, "empty search space for {w}")
            }
        }
    }
}

impl std::error::Error for TuneError {}

impl From<LayoutError> for TuneError {
    fn from(e: LayoutError) -> TuneError {
        TuneError::Layout(e)
    }
}

impl From<std::io::Error> for TuneError {
    fn from(e: std::io::Error) -> TuneError {
        TuneError::Io(e)
    }
}

/// The outcome of tuning one workload.
#[derive(Clone, Debug)]
pub struct TuneResult {
    /// Workload name (also the first half of the cache key).
    pub workload: String,
    /// The winning configuration.
    pub config: TunedConfig,
    /// Expression variant the §IV-A cost model chose for the winner.
    pub expr_variant: Option<Variant>,
    /// Index-expression op count of the winner.
    pub index_ops: Option<usize>,
    /// Estimate of the hand-picked default configuration.
    pub naive: Estimate,
    /// Estimate of the winning configuration.
    pub tuned: Estimate,
    /// How many candidates were evaluated (0 on a cache hit).
    pub evaluated: usize,
    /// Whether the result came from the JSON tuning cache.
    pub from_cache: bool,
}

impl TuneResult {
    /// Naive-over-tuned speedup.
    pub fn speedup(&self) -> f64 {
        self.naive.time_s / self.tuned.time_s
    }
}

/// The autotuner: a hardware model plus an optional persistent cache.
#[derive(Clone, Debug)]
pub struct Tuner {
    gpu: GpuConfig,
    cache: Option<TuningCache>,
}

impl Tuner {
    /// A tuner for the given hardware model, without a cache.
    pub fn new(gpu: GpuConfig) -> Tuner {
        Tuner { gpu, cache: None }
    }

    /// Attaches a JSON tuning cache at `path`.
    #[must_use]
    pub fn with_cache(mut self, path: impl Into<PathBuf>) -> Tuner {
        self.cache = Some(TuningCache::new(path.into()));
        self
    }

    /// The hardware model being tuned against.
    pub fn gpu(&self) -> &GpuConfig {
        &self.gpu
    }

    /// Tunes one workload: returns the cached result when the cache has
    /// an entry for `(workload, hardware)`, otherwise enumerates the
    /// search space, scores every candidate in parallel on the
    /// `gpu-sim` model, picks the fastest, and persists it.
    ///
    /// The default configuration is always candidate zero, so
    /// `tuned.time_s <= naive.time_s` holds by construction.
    ///
    /// # Errors
    ///
    /// Propagates layout construction and cache write failures.
    pub fn tune(&self, kind: &WorkloadKind) -> Result<TuneResult, TuneError> {
        let workload = kind.name();
        let key = cache_key(&workload, &self.gpu);
        if let Some(cache) = &self.cache {
            if let Some(hit) = cache.lookup(&key) {
                return Ok(TuneResult {
                    workload,
                    config: hit.config,
                    expr_variant: hit.expr_variant,
                    index_ops: hit.index_ops,
                    naive: hit.naive,
                    tuned: hit.tuned,
                    evaluated: 0,
                    from_cache: true,
                });
            }
        }

        let space = SearchSpace::enumerate(*kind);
        if space.candidates.is_empty() {
            return Err(TuneError::EmptySpace(workload));
        }
        let mut jobs = Vec::with_capacity(space.candidates.len());
        for cand in &space.candidates {
            let layout = build_layout(kind, &cand.config)?;
            let wl = build_workload(kind, cand, &self.gpu);
            jobs.push((layout, wl));
        }
        let estimates = score_batch(jobs, &self.gpu);

        // Candidate 0 is the hand-picked default by construction.
        let naive = estimates[0];
        // Pick the fastest; the roofline max() hides non-bottleneck
        // improvements, so ties break toward fewer shared-memory passes,
        // then less DRAM traffic, then enumeration order (stable).
        let rank = |e: &Estimate| (e.time_s, e.smem_passes, e.dram_bytes);
        let (best, _) = estimates
            .iter()
            .enumerate()
            .min_by(|(_, a), (_, b)| rank(a).partial_cmp(&rank(b)).expect("estimates are finite"))
            .expect("non-empty space");
        let winner = &space.candidates[best];

        let result = TuneResult {
            workload,
            config: winner.config,
            expr_variant: winner.expr_variant,
            index_ops: winner.index_ops,
            naive,
            tuned: estimates[best],
            evaluated: space.candidates.len(),
            from_cache: false,
        };
        if let Some(cache) = &self.cache {
            cache.store(
                &key,
                &CachedTuning {
                    config: result.config,
                    expr_variant: result.expr_variant,
                    index_ops: result.index_ops,
                    naive: result.naive,
                    tuned: result.tuned,
                    evaluated: result.evaluated,
                },
            )?;
        }
        Ok(result)
    }

    /// Tunes a list of workloads in order.
    ///
    /// # Errors
    ///
    /// Stops at the first failing workload.
    pub fn tune_all(&self, kinds: &[WorkloadKind]) -> Result<Vec<TuneResult>, TuneError> {
        kinds.iter().map(|k| self.tune(k)).collect()
    }
}
