//! The search driver: pick a strategy, spend the budget, cache the
//! winner (with its frontier) per `(workload, hardware)`.

use std::fmt;
use std::path::PathBuf;

use gpu_sim::score::Estimate;
use gpu_sim::GpuConfig;
use lego_codegen::tuning::TunedConfig;
use lego_core::LayoutError;
use lego_expr::Variant;

use crate::cache::{cache_key, CachedTuning, TuningCache};
use crate::domain::{Domain, SpaceScale};
use crate::space::WorkloadKind;
use crate::strategy::{run_search, Budget, Strategy};

/// Errors of the tuning pipeline.
#[derive(Debug)]
pub enum TuneError {
    /// A candidate layout failed to build.
    Layout(LayoutError),
    /// The cache file could not be written.
    Io(std::io::Error),
    /// The search space was empty (never produced by the built-in
    /// spaces; guards custom ones).
    EmptySpace(String),
}

impl fmt::Display for TuneError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TuneError::Layout(e) => write!(f, "layout error: {e}"),
            TuneError::Io(e) => write!(f, "cache i/o error: {e}"),
            TuneError::EmptySpace(w) => {
                write!(f, "empty search space for {w}")
            }
        }
    }
}

impl std::error::Error for TuneError {}

impl From<LayoutError> for TuneError {
    fn from(e: LayoutError) -> TuneError {
        TuneError::Layout(e)
    }
}

impl From<std::io::Error> for TuneError {
    fn from(e: std::io::Error) -> TuneError {
        TuneError::Io(e)
    }
}

/// The outcome of tuning one workload.
#[derive(Clone, Debug)]
pub struct TuneResult {
    /// Workload name (also the first half of the cache key).
    pub workload: String,
    /// The winning configuration.
    pub config: TunedConfig,
    /// Expression variant the §IV-A cost model chose for the winner.
    pub expr_variant: Option<Variant>,
    /// Index-expression op count of the winner.
    pub index_ops: Option<usize>,
    /// Estimate of the hand-picked default configuration.
    pub naive: Estimate,
    /// Estimate of the winning configuration.
    pub tuned: Estimate,
    /// How many candidates were evaluated (0 on a cache hit).
    pub evaluated: usize,
    /// Whether the result came from the JSON tuning cache.
    pub from_cache: bool,
}

impl TuneResult {
    /// Naive-over-tuned speedup.
    pub fn speedup(&self) -> f64 {
        self.naive.time_s / self.tuned.time_s
    }
}

/// The outcome of one cache-free seeded search
/// ([`Tuner::tune_seeded`]): the result plus everything a fleet driver
/// needs to feed later keys and persist the entry itself.
#[derive(Clone, Debug)]
pub struct SeededTune {
    /// The tuning result (never `from_cache`; the caller owns caching).
    pub result: TuneResult,
    /// The search's top-k frontier — the warm-start population for
    /// neighboring keys and the cache entry's persisted frontier.
    pub frontier: Vec<(TunedConfig, f64)>,
    /// 1-based index of the evaluation that first scored the winner.
    pub evals_to_winner: usize,
    /// The evaluation budget the search actually ran under (`None` for
    /// exhaustive) — what a cache entry must record so satisfaction
    /// checks stay honest when a transfer cut the budget.
    pub budget: Option<usize>,
}

/// The autotuner: a hardware model, a search strategy with its budget,
/// and an optional persistent cache.
#[derive(Clone, Debug)]
pub struct Tuner {
    gpu: GpuConfig,
    cache: Option<TuningCache>,
    strategy: Strategy,
    budget: Budget,
    space: Option<SpaceScale>,
}

impl Tuner {
    /// A tuner for the given hardware model: exhaustive search over the
    /// legacy space, no cache.
    pub fn new(gpu: GpuConfig) -> Tuner {
        Tuner {
            gpu,
            cache: None,
            strategy: Strategy::default(),
            budget: Budget::default(),
            space: None,
        }
    }

    /// Attaches a JSON tuning cache at `path`.
    #[must_use]
    pub fn with_cache(mut self, path: impl Into<PathBuf>) -> Tuner {
        self.cache = Some(TuningCache::new(path.into()));
        self
    }

    /// Selects the search strategy.
    #[must_use]
    pub fn with_strategy(mut self, strategy: Strategy) -> Tuner {
        self.strategy = strategy;
        self
    }

    /// Sets the evaluation budget (ignored by `Exhaustive`).
    #[must_use]
    pub fn with_budget(mut self, budget: Budget) -> Tuner {
        self.budget = budget;
        self
    }

    /// Pins the space scale. Without a pin, `Exhaustive` enumerates the
    /// legacy space (what it can afford) and the budgeted strategies
    /// search the enlarged one (what they exist for).
    #[must_use]
    pub fn with_space(mut self, space: SpaceScale) -> Tuner {
        self.space = Some(space);
        self
    }

    /// The hardware model being tuned against.
    pub fn gpu(&self) -> &GpuConfig {
        &self.gpu
    }

    /// The strategy in use.
    pub fn strategy(&self) -> Strategy {
        self.strategy
    }

    /// The space scale the current strategy will search.
    pub fn effective_space(&self) -> SpaceScale {
        self.space.unwrap_or(match self.strategy {
            Strategy::Exhaustive => SpaceScale::Legacy,
            Strategy::Anneal | Strategy::Genetic => SpaceScale::Enlarged,
        })
    }

    /// Whether a cached entry satisfies the current search request: the
    /// strategy and space must match, and a budgeted entry must have
    /// spent at least the requested budget. Public so services layering
    /// their own in-memory tier over the cache (the `lego-served`
    /// daemon) apply exactly the serving rule `tune` does.
    pub fn satisfied_by(&self, hit: &CachedTuning) -> bool {
        hit.strategy == self.strategy.name()
            && hit.space == self.effective_space().name()
            && match self.strategy {
                Strategy::Exhaustive => true,
                Strategy::Anneal | Strategy::Genetic => {
                    hit.budget.unwrap_or(0) >= self.budget.max_evals()
                }
            }
    }

    /// Tunes one workload: returns the cached result when the cache has
    /// a satisfying entry for `(workload, hardware)`, otherwise runs the
    /// configured [`Strategy`] over the workload's [`Domain`] — warm-
    /// started from any unsatisfying entry's persisted frontier — picks
    /// the fastest evaluated configuration, and persists it together
    /// with the new top-k frontier.
    ///
    /// The default configuration is always evaluated first, so
    /// `tuned.time_s <= naive.time_s` holds by construction under every
    /// strategy.
    ///
    /// # Errors
    ///
    /// Propagates layout construction and cache write failures.
    pub fn tune(&self, kind: &WorkloadKind) -> Result<TuneResult, TuneError> {
        let workload = kind.name();
        let key = cache_key(&workload, kind.pricing_mode(), &self.gpu);
        let mut warm_start: Vec<TunedConfig> = Vec::new();
        if let Some(cache) = &self.cache {
            if let Some(hit) = cache.lookup(&key) {
                if self.satisfied_by(&hit) {
                    return Ok(TuneResult {
                        workload,
                        config: hit.config,
                        expr_variant: hit.expr_variant,
                        index_ops: hit.index_ops,
                        naive: hit.naive,
                        tuned: hit.tuned,
                        evaluated: 0,
                        from_cache: true,
                    });
                }
                // A differently-searched entry still knows good points:
                // reuse its frontier as the warm-start population.
                warm_start = hit.frontier.iter().map(|(c, _)| *c).collect();
            }
        }

        let seeded = self.tune_seeded(kind, &warm_start, None)?;
        if let Some(cache) = &self.cache {
            // The single-key path rides the batched writer: one locked
            // load → merge → atomic-rename cycle, same as a fleet.
            cache.store_many(&[(key, self.entry_from(&seeded))])?;
        }
        Ok(seeded.result)
    }

    /// Runs the configured search for `kind`, seeded by `seeds` (configs
    /// outside the effective domain are dropped first) and optionally
    /// under a budget override — without touching the cache in either
    /// direction. This is the fleet driver's primitive: it decides
    /// seeding and persistence itself, and a transferred frontier rides
    /// in here with a cut-down budget.
    ///
    /// Deterministic: the RNG seed derives from the cache key and
    /// strategy, so the outcome is a pure function of
    /// `(kind, gpu, strategy, space, budget, seeds)`.
    ///
    /// # Errors
    ///
    /// Propagates layout construction failures.
    pub fn tune_seeded(
        &self,
        kind: &WorkloadKind,
        seeds: &[TunedConfig],
        budget: Option<Budget>,
    ) -> Result<SeededTune, TuneError> {
        let workload = kind.name();
        let key = cache_key(&workload, kind.pricing_mode(), &self.gpu);
        let domain = Domain::new(*kind, self.effective_space());
        // A frontier cached under another space scale (or transferred
        // from another problem size) may hold configs this search must
        // not return (e.g. an enlarged-only NW block size when the
        // caller pinned --space legacy, or a tile larger than the new
        // problem).
        let mut warm_start: Vec<TunedConfig> = seeds.to_vec();
        warm_start.retain(|c| domain.contains(c));
        warm_start.dedup();
        let budget = budget.unwrap_or(self.budget);
        let outcome = run_search(self.strategy, &domain, &self.gpu, budget, &key, &warm_start)?;
        Ok(SeededTune {
            result: TuneResult {
                workload,
                config: outcome.winner.config,
                expr_variant: outcome.winner.expr_variant,
                index_ops: outcome.winner.index_ops,
                naive: outcome.naive,
                tuned: outcome.tuned,
                evaluated: outcome.evaluated,
                from_cache: false,
            },
            frontier: outcome.frontier,
            evals_to_winner: outcome.evals_to_winner,
            budget: match self.strategy {
                Strategy::Exhaustive => None,
                Strategy::Anneal | Strategy::Genetic => Some(budget.max_evals()),
            },
        })
    }

    /// The cache entry a seeded outcome persists as (under this tuner's
    /// strategy/space and the budget the search actually ran with).
    pub fn entry_from(&self, seeded: &SeededTune) -> CachedTuning {
        CachedTuning {
            config: seeded.result.config,
            expr_variant: seeded.result.expr_variant,
            index_ops: seeded.result.index_ops,
            naive: seeded.result.naive,
            tuned: seeded.result.tuned,
            evaluated: seeded.result.evaluated,
            strategy: self.strategy.name().to_string(),
            budget: seeded.budget,
            space: self.effective_space().name().to_string(),
            frontier: seeded.frontier.clone(),
        }
    }

    /// Tunes a list of workloads in order.
    ///
    /// # Errors
    ///
    /// Stops at the first failing workload.
    pub fn tune_all(&self, kinds: &[WorkloadKind]) -> Result<Vec<TuneResult>, TuneError> {
        kinds.iter().map(|k| self.tune(k)).collect()
    }
}
