//! Search strategies: how the tuner spends its evaluation budget.
//!
//! The v2 tuner had exactly one move — enumerate everything and
//! batch-score it — which caps how rich the configuration space can get
//! before `score_batch` dominates. This module adds budgeted
//! metaheuristics over the parameterized [`Domain`]:
//!
//! * [`Strategy::Exhaustive`] — score every point (the v2 behavior;
//!   ground truth for the CI search-parity gate);
//! * [`Strategy::Anneal`] — simulated annealing: a [`Domain::neighbor`]
//!   walk with Metropolis acceptance on relative slowdown, geometric
//!   cooling, and greedy reheats from the incumbent best;
//! * [`Strategy::Genetic`] — a (μ+λ) genetic search: elite carry-over,
//!   tournament parent selection, axis-wise [`Domain::crossover`] and
//!   neighbor-mutation, with the population seeded from the cache's
//!   persisted top-k frontier when one is available.
//!
//! All strategies are deterministic: randomness comes from the in-crate
//! [`Rng`] seeded by the tuning cache key plus the strategy name, so
//! the same search replays bit-identically (the basis of the
//! determinism tests and the CI gate). A [`Budget`] bounds *unique*
//! configurations scored; re-proposing an already-scored point costs
//! nothing. Because the proposal stream does not depend on the budget,
//! a larger budget evaluates a superset of a smaller one — the winner
//! can only improve (asserted by the budget-monotonicity test).

use std::collections::{HashMap, HashSet};
use std::fmt;

use gpu_sim::score::{score_batch, Estimate};
use gpu_sim::GpuConfig;
use lego_codegen::tuning::TunedConfig;

use crate::cache::config_to_json;
use crate::domain::Domain;
use crate::rng::Rng;
use crate::space::{build_layout, build_workload, Candidate, WorkloadKind};
use crate::tuner::TuneError;

/// Maximum number of unique configurations a search may score. The
/// default (2000) comfortably covers every built-in enlarged space.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Budget(pub usize);

impl Default for Budget {
    fn default() -> Budget {
        Budget(2000)
    }
}

impl Budget {
    /// The evaluation cap (at least 1: the default config is always
    /// scored so the search can never regress it).
    pub fn max_evals(self) -> usize {
        self.0.max(1)
    }
}

/// How the tuner explores a search space.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum Strategy {
    /// Enumerate and score every candidate (the v2 behavior).
    #[default]
    Exhaustive,
    /// Simulated annealing over the parameterized domain.
    Anneal,
    /// Genetic search with cache-frontier warm starts.
    Genetic,
}

impl Strategy {
    /// Stable name, used for seeds, the cache document, and `--strategy`.
    pub fn name(self) -> &'static str {
        match self {
            Strategy::Exhaustive => "exhaustive",
            Strategy::Anneal => "anneal",
            Strategy::Genetic => "genetic",
        }
    }

    /// Parses a `--strategy` argument.
    pub fn parse(s: &str) -> Option<Strategy> {
        match s {
            "exhaustive" => Some(Strategy::Exhaustive),
            "anneal" => Some(Strategy::Anneal),
            "genetic" => Some(Strategy::Genetic),
            _ => None,
        }
    }
}

impl fmt::Display for Strategy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Ranking key of an estimate: the roofline `max()` hides
/// non-bottleneck improvements, so ties break toward fewer
/// shared-memory passes, then less DRAM traffic.
pub fn rank(e: &Estimate) -> (f64, f64, f64) {
    (e.time_s, e.smem_passes, e.dram_bytes)
}

/// The outcome of one search run.
pub struct SearchOutcome {
    /// The winning candidate (annotated with its expression variant).
    pub winner: Candidate,
    /// Estimate of the winner.
    pub tuned: Estimate,
    /// Estimate of the default configuration (always evaluated first).
    pub naive: Estimate,
    /// Unique configurations evaluated: scored plus bound-pruned. A
    /// pruned candidate counts — its fate was decided — so this number
    /// is identical with and without pruning (the basis of the
    /// search-parity budget and the cache's budget-satisfaction check).
    pub evaluated: usize,
    /// Candidates dismissed by the admissible lower bound without a
    /// traffic pass (exhaustive strategy only; always 0 for the
    /// metaheuristics, whose proposal streams pruning must not touch).
    pub pruned: usize,
    /// Traffic-memo hits during this search (geometries priced without
    /// a trace replay).
    pub traffic_hits: u64,
    /// Traffic-memo misses during this search (geometries traced and
    /// recorded).
    pub traffic_misses: u64,
    /// 1-based index of the evaluation that first scored the winner —
    /// the "evals to optimum" a transferred warm start is meant to
    /// shrink (seeds are evaluated first, so a transfer that already
    /// contains a near-winner pushes this toward 1).
    pub evals_to_winner: usize,
    /// The top-k evaluated configs (best first) with their times — the
    /// warm-start population persisted in the cache.
    pub frontier: Vec<(TunedConfig, f64)>,
}

/// Memoizing, budget-enforcing evaluation oracle shared by all
/// strategies. Every unique config is scored once; the default config
/// is entry zero.
struct Evaluator<'a> {
    kind: WorkloadKind,
    gpu: &'a GpuConfig,
    max_evals: usize,
    /// Serialized config → index into `entries` (scored) or `usize::MAX`
    /// (failed to build: treated as infeasible, not charged — or
    /// dismissed by the admissible bound, which is charged as pruned).
    seen: HashMap<String, usize>,
    entries: Vec<(Candidate, Estimate)>,
    best: usize,
    /// Candidates dismissed by [`gpu_sim::CostModel::bound`] without a
    /// full traffic pass (exhaustive strategy only).
    pruned: usize,
}

fn config_key(c: &TunedConfig) -> String {
    config_to_json(c).render()
}

impl<'a> Evaluator<'a> {
    fn new(kind: WorkloadKind, gpu: &'a GpuConfig, max_evals: usize) -> Evaluator<'a> {
        Evaluator {
            kind,
            gpu,
            max_evals,
            seen: HashMap::new(),
            entries: Vec::new(),
            best: 0,
            pruned: 0,
        }
    }

    fn evals(&self) -> usize {
        self.entries.len()
    }

    fn exhausted(&self) -> bool {
        self.entries.len() >= self.max_evals
    }

    /// Scores a batch of configs (deduplicated, in order) until the
    /// budget runs out. Returns how many new configs were scored.
    fn eval_batch(&mut self, configs: &[TunedConfig]) -> usize {
        let mut fresh: Vec<(String, Candidate)> = Vec::new();
        // In-batch dedup by key: the linear scan this replaces was
        // O(batch²) on the large enumerated spaces.
        let mut fresh_keys: HashSet<String> = HashSet::new();
        let mut jobs = Vec::new();
        for c in configs {
            if self.entries.len() + fresh.len() >= self.max_evals {
                break;
            }
            let key = config_key(c);
            if self.seen.contains_key(&key) || fresh_keys.contains(&key) {
                continue;
            }
            let cand = Candidate::annotated(&self.kind, c);
            match build_layout(&self.kind, &cand.config) {
                Ok(layout) => {
                    let wl = build_workload(&self.kind, &cand, self.gpu);
                    jobs.push((layout, wl));
                    fresh_keys.insert(key.clone());
                    fresh.push((key, cand));
                }
                // Unbuildable configs are infeasible, not charged.
                Err(_) => {
                    self.seen.insert(key, usize::MAX);
                }
            }
        }
        if fresh.is_empty() {
            return 0;
        }
        let estimates = score_batch(jobs, self.gpu);
        let added = fresh.len();
        for ((key, cand), est) in fresh.into_iter().zip(estimates) {
            let idx = self.entries.len();
            self.seen.insert(key, idx);
            self.entries.push((cand, est));
            if rank(&est) < rank(&self.entries[self.best].1) {
                self.best = idx;
            }
        }
        added
    }

    /// The branch-and-bound cutoff: the [`FRONTIER_K`]-th smallest time
    /// scored so far, or `None` until that many entries exist (nothing
    /// may be pruned before the frontier could possibly be full).
    fn prune_threshold(&self) -> Option<f64> {
        if self.entries.len() < FRONTIER_K {
            return None;
        }
        let mut times: Vec<f64> = self.entries.iter().map(|(_, e)| e.time_s).collect();
        times.sort_by(f64::total_cmp);
        Some(times[FRONTIER_K - 1])
    }

    /// [`Evaluator::eval_batch`] with admissible lower-bound pruning,
    /// used only by the exhaustive strategy. The sweep proceeds in
    /// chunks; before each chunk the k-th-best scored time becomes the
    /// cutoff, and any candidate whose [`gpu_sim::CostModel::bound`]
    /// *strictly* exceeds it is dismissed without a traffic pass.
    ///
    /// Winner- and frontier-identical to the unpruned sweep: the bound
    /// never exceeds the true time, and the cutoff only tightens, so a
    /// pruned candidate's time strictly exceeds at least [`FRONTIER_K`]
    /// final times — it could not have won or entered the frontier
    /// (ties break toward lower indices, which scored entries keep).
    /// Pruned candidates still count as evaluated, so budgets and
    /// cache bookkeeping are numerically unchanged.
    fn eval_batch_pruned(&mut self, configs: &[TunedConfig]) -> usize {
        /// Candidates between threshold recomputations. Small enough
        /// that the cutoff tightens while the sweep is still hot;
        /// large enough that `score_batch` can fan out.
        const PRUNE_CHUNK: usize = 32;
        let model = gpu_sim::CostModel::new(self.gpu);
        let mut added = 0;
        for chunk in configs.chunks(PRUNE_CHUNK) {
            let cutoff = self.prune_threshold();
            let mut fresh: Vec<(String, Candidate)> = Vec::new();
            let mut fresh_keys: HashSet<String> = HashSet::new();
            let mut jobs = Vec::new();
            for c in chunk {
                if self.entries.len() + self.pruned + fresh.len() >= self.max_evals {
                    break;
                }
                let key = config_key(c);
                if self.seen.contains_key(&key) || fresh_keys.contains(&key) {
                    continue;
                }
                let cand = Candidate::annotated(&self.kind, c);
                match build_layout(&self.kind, &cand.config) {
                    Ok(layout) => {
                        let wl = build_workload(&self.kind, &cand, self.gpu);
                        // Prune only after a successful build, so the
                        // infeasible/evaluated split matches the
                        // unpruned sweep exactly.
                        if cutoff.is_some_and(|t| model.bound(&wl) > t) {
                            self.seen.insert(key, usize::MAX);
                            self.pruned += 1;
                            continue;
                        }
                        jobs.push((layout, wl));
                        fresh_keys.insert(key.clone());
                        fresh.push((key, cand));
                    }
                    Err(_) => {
                        self.seen.insert(key, usize::MAX);
                    }
                }
            }
            if fresh.is_empty() {
                continue;
            }
            let estimates = score_batch(jobs, self.gpu);
            added += fresh.len();
            for ((key, cand), est) in fresh.into_iter().zip(estimates) {
                let idx = self.entries.len();
                self.seen.insert(key, idx);
                self.entries.push((cand, est));
                if rank(&est) < rank(&self.entries[self.best].1) {
                    self.best = idx;
                }
            }
        }
        added
    }

    /// Scores the default configuration — always the first evaluation,
    /// so it becomes entry zero (the naive baseline every strategy is
    /// compared against). Unlike [`Evaluator::eval`], a build failure
    /// here is an error, not an infeasible point: a default that does
    /// not build is a bug in the space, and skipping it would silently
    /// misattribute the naive baseline to some other candidate.
    fn eval_default(&mut self, c: &TunedConfig) -> Result<Estimate, TuneError> {
        debug_assert!(self.entries.is_empty(), "default must be entry zero");
        let cand = Candidate::annotated(&self.kind, c);
        let layout = build_layout(&self.kind, &cand.config)?;
        let wl = build_workload(&self.kind, &cand, self.gpu);
        let est = gpu_sim::score(&layout, &wl, self.gpu);
        self.seen.insert(config_key(c), self.entries.len());
        self.entries.push((cand, est));
        Ok(est)
    }

    /// Scores one config, returning its estimate. `None` when the
    /// config is infeasible or the budget is exhausted (and the config
    /// unseen).
    fn eval(&mut self, c: &TunedConfig) -> Option<Estimate> {
        let key = config_key(c);
        if let Some(&idx) = self.seen.get(&key) {
            return (idx != usize::MAX).then(|| self.entries[idx].1);
        }
        if self.exhausted() {
            return None;
        }
        let cand = Candidate::annotated(&self.kind, c);
        let Ok(layout) = build_layout(&self.kind, &cand.config) else {
            self.seen.insert(key, usize::MAX);
            return None;
        };
        let wl = build_workload(&self.kind, &cand, self.gpu);
        let est = gpu_sim::score(&layout, &wl, self.gpu);
        let idx = self.entries.len();
        self.seen.insert(key, idx);
        self.entries.push((cand, est));
        if rank(&est) < rank(&self.entries[self.best].1) {
            self.best = idx;
        }
        Some(est)
    }

    fn best_config(&self) -> TunedConfig {
        self.entries[self.best].0.config
    }

    fn finish(self) -> Result<SearchOutcome, TuneError> {
        if self.entries.is_empty() {
            return Err(TuneError::EmptySpace(self.kind.name()));
        }
        let naive = self.entries[0].1;
        let (winner, tuned) = self.entries[self.best].clone();
        let mut order: Vec<usize> = (0..self.entries.len()).collect();
        order.sort_by(|&a, &b| {
            rank(&self.entries[a].1)
                .partial_cmp(&rank(&self.entries[b].1))
                .expect("estimates are finite")
                .then(a.cmp(&b))
        });
        let frontier = order
            .into_iter()
            .take(FRONTIER_K)
            .map(|i| (self.entries[i].0.config, self.entries[i].1.time_s))
            .collect();
        Ok(SearchOutcome {
            winner,
            tuned,
            naive,
            evaluated: self.entries.len() + self.pruned,
            pruned: self.pruned,
            // Filled in by `run_search` from the memo-stat deltas.
            traffic_hits: 0,
            traffic_misses: 0,
            // Entries are appended in evaluation order, so the winning
            // index is exactly how many evaluations it took to find it.
            evals_to_winner: self.best + 1,
            frontier,
        })
    }
}

/// How many frontier configs are persisted per cache entry.
pub const FRONTIER_K: usize = 8;

/// Runs `strategy` over `domain` and returns the outcome.
///
/// `seed_key` derives the deterministic RNG (pass the tuning cache key);
/// `warm_start` is a previously persisted frontier to seed from (ignored
/// by `Exhaustive`).
///
/// # Errors
///
/// [`TuneError::EmptySpace`] when the domain has no feasible point.
pub fn run_search(
    strategy: Strategy,
    domain: &Domain,
    gpu: &GpuConfig,
    budget: Budget,
    seed_key: &str,
    warm_start: &[TunedConfig],
) -> Result<SearchOutcome, TuneError> {
    let mut rng = Rng::from_key(&format!("{seed_key}|{}", strategy.name()));
    // Traffic-memo probes all land on this thread (`score_batch` looks
    // keys up before fanning out), so the stat delta around the search
    // is exactly this search's hit/miss count.
    let (hits0, misses0) = gpu_sim::traffic_memo_stats();
    let mut outcome = match strategy {
        Strategy::Exhaustive => {
            // Exhaustive ignores the budget: it is the ground truth the
            // budgeted strategies are gated against. Its enumerated
            // sweep is the one place bound pruning is winner-safe by
            // construction, so only this arm uses it.
            let all = domain.enumerate();
            let mut eval = Evaluator::new(domain.kind, gpu, all.len().max(1));
            eval.eval_default(&domain.default_config())?;
            eval.eval_batch_pruned(&all);
            eval.finish()
        }
        Strategy::Anneal => {
            let mut eval = Evaluator::new(domain.kind, gpu, budget.max_evals());
            eval.eval_default(&domain.default_config())?;
            anneal(domain, &mut eval, &mut rng, warm_start);
            eval.finish()
        }
        Strategy::Genetic => {
            let mut eval = Evaluator::new(domain.kind, gpu, budget.max_evals());
            eval.eval_default(&domain.default_config())?;
            genetic(domain, &mut eval, &mut rng, warm_start);
            eval.finish()
        }
    }?;
    let (hits1, misses1) = gpu_sim::traffic_memo_stats();
    outcome.traffic_hits = hits1 - hits0;
    outcome.traffic_misses = misses1 - misses0;
    Ok(outcome)
}

/// Simulated annealing: Metropolis acceptance on *relative* slowdown
/// with geometric cooling; when the chain freezes it reheats from the
/// incumbent best. A small fraction of proposals are uniform random
/// points (basin hopping) so jagged landscapes — e.g. NW's padded
/// block sizes — cannot trap the walk in a local valley, and every new
/// incumbent best is polished by probing its deterministic unit-step
/// neighborhood, so the returned winner is always a local optimum of
/// the unit lattice (budget permitting). The whole proposal stream is
/// a function of the evaluation history only — never of the budget —
/// so a longer run extends (never reshuffles) a shorter one.
fn anneal(domain: &Domain, eval: &mut Evaluator<'_>, rng: &mut Rng, warm_start: &[TunedConfig]) {
    const T0: f64 = 0.06;
    const ALPHA: f64 = 0.88;
    const TMIN: f64 = 1.5e-3;
    const JUMP_P: f64 = 0.15;

    // The default is entry zero already (`run_search` scored it)…
    let default = domain.default_config();
    let Some(mut cur_est) = eval.eval(&default) else {
        return;
    };
    let mut current = default;
    // …then the walk starts from the best warm-start point, if any.
    for c in warm_start {
        if let Some(e) = eval.eval(c) {
            if rank(&e) < rank(&cur_est) {
                current = *c;
                cur_est = e;
            }
        }
    }

    let mut t = T0;
    let max_proposals = 64 * eval.max_evals;
    let mut proposals = 0usize;
    // Whenever a new incumbent best appears, its unit-step neighborhood
    // is queued for systematic probing before random proposals resume.
    let mut polish: std::collections::VecDeque<TunedConfig> = std::collections::VecDeque::new();
    let mut polished_best = eval.best_config();
    polish.extend(domain.local_neighbors(&polished_best));
    while !eval.exhausted() && proposals < max_proposals {
        proposals += 1;
        let cand = if let Some(p) = polish.pop_front() {
            p
        } else if rng.chance(JUMP_P) {
            domain.random(rng)
        } else {
            domain.neighbor(&current, rng)
        };
        if cand == current {
            continue;
        }
        let fresh = eval.evals();
        let Some(est) = eval.eval(&cand) else {
            // Infeasible or out of budget; out-of-budget ends the walk.
            if eval.exhausted() {
                break;
            }
            continue;
        };
        let delta = (est.time_s - cur_est.time_s) / cur_est.time_s.max(f64::MIN_POSITIVE);
        if delta <= 0.0 || rng.f64() < (-delta / t).exp() {
            current = cand;
            cur_est = est;
        }
        // Cool per *new* evaluation so the schedule tracks budget
        // consumption (re-proposing a seen point is free and must not
        // freeze the chain), yet stays budget-independent: a longer run
        // replays a shorter one exactly and keeps going.
        if eval.evals() > fresh {
            t *= ALPHA;
        }
        let best = eval.best_config();
        if best != polished_best {
            polished_best = best;
            polish.clear();
            polish.extend(domain.local_neighbors(&polished_best));
        }
        if t < TMIN {
            // Reheat greedily from the best point found so far.
            t = T0;
            current = eval.best_config();
            cur_est = eval.eval(&current).expect("best is evaluated");
        }
    }
}

/// (μ+λ) genetic search: elites survive, parents are picked by binary
/// tournament, children are axis-wise crossovers with neighbor
/// mutation. Each generation is batch-scored in parallel, and every
/// new incumbent best has its deterministic unit-step neighborhood
/// probed (same local-optimum guarantee as the annealer).
fn genetic(domain: &Domain, eval: &mut Evaluator<'_>, rng: &mut Rng, warm_start: &[TunedConfig]) {
    const POP: usize = 16;
    const ELITE: usize = 4;
    const LAMBDA: usize = POP - ELITE;
    const MUTATE_P: f64 = 0.4;

    // Founding population: default first (the naive baseline), then the
    // persisted frontier, then random samples.
    let mut pop: Vec<TunedConfig> = vec![domain.default_config()];
    for c in warm_start {
        if !pop.contains(c) {
            pop.push(*c);
        }
    }
    let mut attempts = 0;
    while pop.len() < POP && attempts < 64 * POP {
        attempts += 1;
        let c = domain.random(rng);
        if !pop.contains(&c) {
            pop.push(c);
        }
    }
    // Seed in two halves with a polish chain between them: a tight
    // budget (the CI parity gate runs at a quarter of the exhaustive
    // count, floored at one founding population) then still spends
    // some evaluations *adaptively* — walking the early incumbent's
    // unit-lattice neighborhood to a local optimum — instead of being
    // eaten whole by random seeding. The proposal order depends only
    // on the evaluation history, so a larger budget still evaluates a
    // superset of a smaller one.
    let mut polished_best: Option<TunedConfig> = None;
    let half = POP / 2;
    eval.eval_batch(&pop[..half.min(pop.len())]);
    loop {
        let best = eval.best_config();
        if polished_best == Some(best) || eval.exhausted() {
            break;
        }
        polished_best = Some(best);
        eval.eval_batch(&domain.local_neighbors(&best));
    }
    if pop.len() > half {
        eval.eval_batch(&pop[half..]);
    }

    let max_generations = 4 * eval.max_evals / LAMBDA.min(eval.max_evals).max(1) + 4;
    for _ in 0..max_generations {
        if eval.exhausted() {
            break;
        }
        // Polish a new incumbent best to its unit-lattice local optimum
        // before spending budget on the next generation.
        loop {
            let best = eval.best_config();
            if polished_best == Some(best) || eval.exhausted() {
                break;
            }
            polished_best = Some(best);
            eval.eval_batch(&domain.local_neighbors(&best));
        }
        if eval.exhausted() {
            break;
        }
        // Rank the current population (unevaluated members sink).
        let mut ranked: Vec<(TunedConfig, (f64, f64, f64))> = pop
            .iter()
            .map(|c| {
                let r = eval
                    .eval(c)
                    .map_or((f64::INFINITY, f64::INFINITY, f64::INFINITY), |e| rank(&e));
                (*c, r)
            })
            .collect();
        ranked.sort_by(|a, b| a.1.partial_cmp(&b.1).expect("finite or inf ranks"));
        let elites: Vec<TunedConfig> = ranked.iter().take(ELITE).map(|(c, _)| *c).collect();

        let tournament = |rng: &mut Rng| -> TunedConfig {
            let a = rng.below(ranked.len());
            let b = rng.below(ranked.len());
            if ranked[a].1 <= ranked[b].1 {
                ranked[a].0
            } else {
                ranked[b].0
            }
        };
        let mut children: Vec<TunedConfig> = Vec::new();
        let mut stall = 0;
        while children.len() < LAMBDA && stall < 64 * LAMBDA {
            let pa = tournament(rng);
            let pb = tournament(rng);
            let mut child = domain.crossover(&pa, &pb, rng);
            if rng.chance(MUTATE_P) {
                child = domain.neighbor(&child, rng);
            }
            if elites.contains(&child) || children.contains(&child) {
                stall += 1;
                continue;
            }
            children.push(child);
        }
        eval.eval_batch(&children);
        pop = elites;
        pop.extend(children);
    }
}
