//! The parameterized search domain: legal configuration axes per
//! workload, with the `neighbor`/`crossover` moves the metaheuristic
//! strategies walk.
//!
//! [`SearchSpace::enumerate`](crate::space::SearchSpace::enumerate)
//! materializes the fixed v2 candidate list the exhaustive search was
//! built on. This module generalizes that list into a *domain*: each
//! workload's configuration is a point on a few integer axes (tile
//! sides, coarsening factors, permutation families and their
//! parameters), every axis carries its list of legal values, and the
//! domain knows how to
//!
//! * [`Domain::enumerate`] the full cross product (exhaustive ground
//!   truth — affordable for the legacy ranges, expensive for the
//!   enlarged ones),
//! * draw a uniform [`Domain::random`] point (population seeding),
//! * take a [`Domain::neighbor`] step — perturb one tile dimension to
//!   an adjacent legal value, swap the permutation family, or flip a
//!   coarsening factor (simulated annealing), and
//! * [`Domain::crossover`] two parents axis-wise (genetic search),
//!
//! repairing dependent axes (e.g. a grouped-schedule `gm` must divide
//! the new tile count) after every move.
//!
//! [`SpaceScale::Legacy`] reproduces the v2 ranges; the free-integer
//! [`SpaceScale::Enlarged`] ranges are roughly an order of magnitude
//! bigger — the spaces exhaustive enumeration couldn't afford, which is
//! exactly what the budgeted strategies are for.
//!
//! Every configuration a move produces is annotated through
//! [`crate::space::Candidate::annotated`], so the whole search shares
//! one expression arena per tuning session (the thread's `lego_expr`
//! interner): a neighbor or crossover of the incumbent re-derives only
//! the index subexpressions its changed axes actually touch — the rest
//! are memo hits on the incumbent's interned subtrees — and revisited
//! configurations skip lowering entirely via the annotation fast path.

use lego_codegen::tuning::{
    NwLayoutChoice, ScheduleChoice, StagingChoice, StencilLayoutChoice, TunedConfig,
};

use crate::rng::Rng;
use crate::space::{SearchSpace, WorkloadKind};

/// Which parameter ranges a domain spans.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum SpaceScale {
    /// The v2 hand-enumerated ranges (what exhaustive search affords).
    #[default]
    Legacy,
    /// Free-integer tile ranges and composed-perm parameter grids —
    /// roughly 10× more candidates, meant for budgeted strategies.
    Enlarged,
}

impl SpaceScale {
    /// Stable name, used in the cache document.
    pub fn name(self) -> &'static str {
        match self {
            SpaceScale::Legacy => "legacy",
            SpaceScale::Enlarged => "enlarged",
        }
    }

    /// Parses a `--space` argument.
    pub fn parse(s: &str) -> Option<SpaceScale> {
        match s {
            "legacy" => Some(SpaceScale::Legacy),
            "enlarged" => Some(SpaceScale::Enlarged),
            _ => None,
        }
    }
}

/// A workload's parameterized configuration domain at one scale.
#[derive(Clone, Debug)]
pub struct Domain {
    /// The workload being tuned.
    pub kind: WorkloadKind,
    /// Parameter ranges.
    pub scale: SpaceScale,
    /// The materialized v2 list when `scale` is legacy (that space is a
    /// hand-picked list, not an axis product, so membership checks and
    /// snapped moves need it — built once here, not per query).
    legacy: Vec<TunedConfig>,
}

/// Divisors of `n` inside `[lo, hi]`, ascending.
fn divisors_in(n: i64, lo: i64, hi: i64) -> Vec<i64> {
    (lo.max(1)..=hi.min(n)).filter(|d| n % d == 0).collect()
}

/// The legal value nearest to `cur` (ties toward the smaller value).
fn nearest(values: &[i64], cur: i64) -> i64 {
    *values
        .iter()
        .min_by_key(|&&v| ((v - cur).abs(), v))
        .expect("non-empty axis")
}

/// One step along an axis: move 1, 2, 4, or 8 legal values (geometric
/// stride, so long axes are crossed in logarithmically many moves) to a
/// random side, clamped at the ends. `cur` is first snapped to the
/// axis.
fn step(values: &[i64], cur: i64, rng: &mut Rng) -> i64 {
    let snapped = nearest(values, cur);
    let i = values
        .iter()
        .position(|&v| v == snapped)
        .expect("snapped onto axis");
    let dist = 1usize << rng.below(4);
    let j = if rng.chance(0.5) {
        i.saturating_sub(dist)
    } else {
        (i + dist).min(values.len() - 1)
    };
    values[j]
}

impl Domain {
    /// The domain of `kind` at `scale`.
    pub fn new(kind: WorkloadKind, scale: SpaceScale) -> Domain {
        let legacy = match scale {
            SpaceScale::Legacy => SearchSpace::enumerate(kind)
                .candidates
                .into_iter()
                .map(|c| c.config)
                .collect(),
            SpaceScale::Enlarged => Vec::new(),
        };
        Domain {
            kind,
            scale,
            legacy,
        }
    }

    /// The hand-picked default configuration (always evaluated first, so
    /// the search can never regress it).
    pub fn default_config(&self) -> TunedConfig {
        self.kind.default_config()
    }

    /// Number of points in the domain.
    pub fn len(&self) -> usize {
        self.enumerate().len()
    }

    /// Whether the domain is empty (never true for built-in workloads).
    pub fn is_empty(&self) -> bool {
        self.enumerate().is_empty()
    }

    /// Materializes every configuration of the domain, default first,
    /// deduplicated, in a deterministic order.
    pub fn enumerate(&self) -> Vec<TunedConfig> {
        if self.scale == SpaceScale::Legacy {
            // The v2 list verbatim — candidate zero is the default and
            // existing caches/tests depend on the exact ordering.
            return self.legacy.clone();
        }
        let mut out = vec![self.default_config()];
        let push = |c: TunedConfig, out: &mut Vec<TunedConfig>| {
            if !out.contains(&c) {
                out.push(c);
            }
        };
        match self.kind {
            WorkloadKind::Matmul { n } => {
                for bm in self.matmul_tile_values(n) {
                    for bn in self.matmul_tile_values(n) {
                        for bk in self.matmul_bk_values(n) {
                            for schedule in self.matmul_schedules(n, bm, bn) {
                                push(
                                    TunedConfig::Matmul {
                                        bm,
                                        bn,
                                        bk,
                                        schedule,
                                    },
                                    &mut out,
                                );
                            }
                        }
                    }
                }
            }
            WorkloadKind::Transpose { n } => {
                for t in self.transpose_t_values(n) {
                    for staging in self.transpose_stagings(t) {
                        push(TunedConfig::Transpose { t, staging }, &mut out);
                    }
                }
            }
            WorkloadKind::Stencil { n, .. } => {
                for layout in self.stencil_layouts(n) {
                    push(TunedConfig::Stencil { n, layout }, &mut out);
                }
            }
            WorkloadKind::Nw { n, .. } => {
                for b in self.nw_b_values(n) {
                    for layout in [NwLayoutChoice::RowMajor, NwLayoutChoice::Antidiag] {
                        push(TunedConfig::Nw { b, layout }, &mut out);
                    }
                }
            }
            WorkloadKind::Lud { n, bs } => {
                for t in self.lud_t_values(n, bs) {
                    for r in self.lud_r_values(n, t) {
                        push(TunedConfig::Lud { r, t }, &mut out);
                    }
                }
            }
            WorkloadKind::Rowwise { op, n, .. } => {
                for bs in self.rowwise_bs_values(n) {
                    push(TunedConfig::Rowwise { op, bs }, &mut out);
                }
            }
        }
        out
    }

    /// Whether `c` is a member of this domain. Under the enlarged scale
    /// membership is exactly "every axis value is legal"; under the
    /// legacy scale it is membership in the fixed v2 list (which is
    /// *not* an axis cross product — e.g. the v2 matmul tiles are
    /// hand-picked pairs).
    pub fn contains(&self, c: &TunedConfig) -> bool {
        if self.scale == SpaceScale::Legacy {
            return self.legacy.contains(c);
        }
        match (*c, self.kind) {
            (
                TunedConfig::Matmul {
                    bm,
                    bn,
                    bk,
                    schedule,
                },
                WorkloadKind::Matmul { n },
            ) => {
                self.matmul_tile_values(n).contains(&bm)
                    && self.matmul_tile_values(n).contains(&bn)
                    && self.matmul_bk_values(n).contains(&bk)
                    && self.matmul_schedules(n, bm, bn).contains(&schedule)
            }
            (TunedConfig::Transpose { t, staging }, WorkloadKind::Transpose { n }) => {
                self.transpose_t_values(n).contains(&t)
                    && self.transpose_stagings(t).contains(&staging)
            }
            (TunedConfig::Stencil { n, layout }, WorkloadKind::Stencil { n: wn, .. }) => {
                n == wn && self.stencil_layouts(n).contains(&layout)
            }
            (TunedConfig::Nw { b, .. }, WorkloadKind::Nw { n, .. }) => {
                self.nw_b_values(n).contains(&b)
            }
            (TunedConfig::Lud { r, t }, WorkloadKind::Lud { n, bs }) => {
                self.lud_t_values(n, bs).contains(&t) && self.lud_r_values(n, t).contains(&r)
            }
            (TunedConfig::Rowwise { op, bs }, WorkloadKind::Rowwise { op: wop, n, .. }) => {
                op == wop && self.rowwise_bs_values(n).contains(&bs)
            }
            _ => false,
        }
    }

    /// Snaps a proposed move back into the domain: the enlarged axes
    /// generate members by construction, but the legacy space is a
    /// hand-picked list the independent axes over-approximate, so a
    /// legacy-scale move that left the list is replaced by a uniform
    /// list member.
    fn snap(&self, c: TunedConfig, rng: &mut Rng) -> TunedConfig {
        if self.contains(&c) || self.legacy.is_empty() {
            // The enlarged axes generate members by construction.
            c
        } else {
            *rng.pick(&self.legacy)
        }
    }

    /// A uniform random point of the domain.
    pub fn random(&self, rng: &mut Rng) -> TunedConfig {
        let c = self.random_axes(rng);
        self.snap(c, rng)
    }

    /// A uniform random point of the axis cross product.
    fn random_axes(&self, rng: &mut Rng) -> TunedConfig {
        match self.kind {
            WorkloadKind::Matmul { n } => {
                let bm = *rng.pick(&self.matmul_tile_values(n));
                let bn = *rng.pick(&self.matmul_tile_values(n));
                let bk = *rng.pick(&self.matmul_bk_values(n));
                let schedule = *rng.pick(&self.matmul_schedules(n, bm, bn));
                TunedConfig::Matmul {
                    bm,
                    bn,
                    bk,
                    schedule,
                }
            }
            WorkloadKind::Transpose { n } => {
                let t = *rng.pick(&self.transpose_t_values(n));
                let staging = *rng.pick(&self.transpose_stagings(t));
                TunedConfig::Transpose { t, staging }
            }
            WorkloadKind::Stencil { n, .. } => TunedConfig::Stencil {
                n,
                layout: *rng.pick(&self.stencil_layouts(n)),
            },
            WorkloadKind::Nw { n, .. } => TunedConfig::Nw {
                // Half the samples land on the launch-schedule tooth
                // bottoms — the sub-lattice every additive-pricing
                // optimum lives on — so population seeding covers the
                // meaningful coordinate, not just the raw axis.
                b: if rng.chance(0.5) {
                    *rng.pick(&self.nw_tooth_values(n))
                } else {
                    *rng.pick(&self.nw_b_values(n))
                },
                layout: if rng.chance(0.5) {
                    NwLayoutChoice::RowMajor
                } else {
                    NwLayoutChoice::Antidiag
                },
            },
            WorkloadKind::Lud { n, bs } => {
                let t = *rng.pick(&self.lud_t_values(n, bs));
                let r = *rng.pick(&self.lud_r_values(n, t));
                TunedConfig::Lud { r, t }
            }
            WorkloadKind::Rowwise { op, n, .. } => TunedConfig::Rowwise {
                op,
                bs: *rng.pick(&self.rowwise_bs_values(n)),
            },
        }
    }

    /// One local move: perturb a single axis of `c` to an adjacent legal
    /// value (tile dimension, coarsening factor) or swap the
    /// permutation/layout choice, repairing dependent axes.
    pub fn neighbor(&self, c: &TunedConfig, rng: &mut Rng) -> TunedConfig {
        let m = self.neighbor_axes(c, rng);
        self.snap(m, rng)
    }

    /// The raw axis move behind [`Domain::neighbor`].
    fn neighbor_axes(&self, c: &TunedConfig, rng: &mut Rng) -> TunedConfig {
        match (*c, self.kind) {
            (
                TunedConfig::Matmul {
                    mut bm,
                    mut bn,
                    mut bk,
                    mut schedule,
                },
                WorkloadKind::Matmul { n },
            ) => {
                match rng.below(4) {
                    0 => bm = step(&self.matmul_tile_values(n), bm, rng),
                    1 => bn = step(&self.matmul_tile_values(n), bn, rng),
                    2 => bk = step(&self.matmul_bk_values(n), bk, rng),
                    _ => schedule = *rng.pick(&self.matmul_schedules(n, bm, bn)),
                }
                schedule = self.repair_schedule(n, bm, bn, schedule);
                TunedConfig::Matmul {
                    bm,
                    bn,
                    bk,
                    schedule,
                }
            }
            (TunedConfig::Transpose { mut t, mut staging }, WorkloadKind::Transpose { n }) => {
                if rng.chance(0.5) {
                    t = step(&self.transpose_t_values(n), t, rng);
                    staging = self.repair_staging(t, staging);
                } else {
                    staging = *rng.pick(&self.transpose_stagings(t));
                }
                TunedConfig::Transpose { t, staging }
            }
            (TunedConfig::Stencil { n, layout }, WorkloadKind::Stencil { .. }) => {
                let layouts = self.stencil_layouts(n);
                let i = layouts.iter().position(|&l| l == layout).unwrap_or(0);
                let j = if rng.chance(0.5) {
                    i.saturating_sub(1)
                } else {
                    (i + 1).min(layouts.len() - 1)
                };
                TunedConfig::Stencil {
                    n,
                    layout: layouts[j],
                }
            }
            (TunedConfig::Nw { mut b, mut layout }, WorkloadKind::Nw { n, .. }) => {
                if rng.chance(0.7) {
                    // Half the block-size moves walk the launch-schedule
                    // tooth bottoms (the additive pricing's meaningful
                    // coordinate), half walk the raw axis.
                    let axis = if rng.chance(0.5) {
                        self.nw_tooth_values(n)
                    } else {
                        self.nw_b_values(n)
                    };
                    b = step(&axis, b, rng);
                } else {
                    layout = match layout {
                        NwLayoutChoice::RowMajor => NwLayoutChoice::Antidiag,
                        NwLayoutChoice::Antidiag => NwLayoutChoice::RowMajor,
                    };
                }
                TunedConfig::Nw { b, layout }
            }
            (TunedConfig::Lud { mut r, mut t }, WorkloadKind::Lud { n, bs }) => {
                if rng.chance(0.7) {
                    r = step(&self.lud_r_values(n, t), r, rng);
                } else {
                    // A CUDA-tile step preserves the coarsened LUD block
                    // `bs = r·t` (the coordinate the panel traffic and
                    // launch count depend on), re-deriving r for the new
                    // tile instead of dragging the old r along.
                    let lud_block = r * t;
                    t = step(&self.lud_t_values(n, bs), t, rng);
                    r = nearest(&self.lud_r_values(n, t), lud_block / t);
                }
                TunedConfig::Lud { r, t }
            }
            (TunedConfig::Rowwise { op, bs }, WorkloadKind::Rowwise { n, .. }) => {
                TunedConfig::Rowwise {
                    op,
                    bs: step(&self.rowwise_bs_values(n), bs, rng),
                }
            }
            // A foreign config (e.g. a stale cache frontier from another
            // workload) has no neighborhood here; restart randomly.
            _ => self.random(rng),
        }
    }

    /// The deterministic unit-step neighborhood of `c`: each integer
    /// axis moved one legal value in each direction, each categorical
    /// axis moved one position in its legal list. Used by the annealer
    /// to polish a new incumbent best — probing these guarantees the
    /// walk converges to a local optimum of the unit lattice.
    pub fn local_neighbors(&self, c: &TunedConfig) -> Vec<TunedConfig> {
        let adjacent = |values: &[i64], cur: i64| -> Vec<i64> {
            let snapped = nearest(values, cur);
            let i = values.iter().position(|&v| v == snapped).unwrap_or(0);
            let mut out = Vec::new();
            if i > 0 {
                out.push(values[i - 1]);
            }
            if i + 1 < values.len() {
                out.push(values[i + 1]);
            }
            out
        };
        let mut out = Vec::new();
        match (*c, self.kind) {
            (
                TunedConfig::Matmul {
                    bm,
                    bn,
                    bk,
                    schedule,
                },
                WorkloadKind::Matmul { n },
            ) => {
                for v in adjacent(&self.matmul_tile_values(n), bm) {
                    let s = self.repair_schedule(n, v, bn, schedule);
                    out.push(TunedConfig::Matmul {
                        bm: v,
                        bn,
                        bk,
                        schedule: s,
                    });
                }
                for v in adjacent(&self.matmul_tile_values(n), bn) {
                    let s = self.repair_schedule(n, bm, v, schedule);
                    out.push(TunedConfig::Matmul {
                        bm,
                        bn: v,
                        bk,
                        schedule: s,
                    });
                }
                for v in adjacent(&self.matmul_bk_values(n), bk) {
                    out.push(TunedConfig::Matmul {
                        bm,
                        bn,
                        bk: v,
                        schedule,
                    });
                }
                let schedules = self.matmul_schedules(n, bm, bn);
                if let Some(i) = schedules.iter().position(|&s| s == schedule) {
                    for j in [i.wrapping_sub(1), i + 1] {
                        if let Some(&s) = schedules.get(j) {
                            out.push(TunedConfig::Matmul {
                                bm,
                                bn,
                                bk,
                                schedule: s,
                            });
                        }
                    }
                }
            }
            (TunedConfig::Transpose { t, staging }, WorkloadKind::Transpose { n }) => {
                for v in adjacent(&self.transpose_t_values(n), t) {
                    out.push(TunedConfig::Transpose {
                        t: v,
                        staging: self.repair_staging(v, staging),
                    });
                }
                let stagings = self.transpose_stagings(t);
                if let Some(i) = stagings.iter().position(|&s| s == staging) {
                    for j in [i.wrapping_sub(1), i + 1] {
                        if let Some(&s) = stagings.get(j) {
                            out.push(TunedConfig::Transpose { t, staging: s });
                        }
                    }
                }
            }
            (TunedConfig::Stencil { n, layout }, WorkloadKind::Stencil { .. }) => {
                let layouts = self.stencil_layouts(n);
                if let Some(i) = layouts.iter().position(|&l| l == layout) {
                    for j in [i.wrapping_sub(1), i + 1] {
                        if let Some(&l) = layouts.get(j) {
                            out.push(TunedConfig::Stencil { n, layout: l });
                        }
                    }
                }
            }
            (TunedConfig::Nw { b, layout }, WorkloadKind::Nw { n, .. }) => {
                // The adjacent launch-schedule tooth bottoms first, so
                // polishing converges across the additive pricing's
                // sawtooth instead of stalling at one tooth's floor;
                // then the raw-axis steps for within-tooth refinement.
                for v in adjacent(&self.nw_tooth_values(n), b) {
                    out.push(TunedConfig::Nw { b: v, layout });
                }
                for v in adjacent(&self.nw_b_values(n), b) {
                    out.push(TunedConfig::Nw { b: v, layout });
                }
                out.push(TunedConfig::Nw {
                    b,
                    layout: match layout {
                        NwLayoutChoice::RowMajor => NwLayoutChoice::Antidiag,
                        NwLayoutChoice::Antidiag => NwLayoutChoice::RowMajor,
                    },
                });
            }
            (TunedConfig::Lud { r, t }, WorkloadKind::Lud { n, bs }) => {
                // Tile moves first, holding the coarsened block r·t
                // fixed: the same LUD block on another CUDA tile changes
                // only the occupancy footprint, which is exactly the
                // refinement polishing is for.
                for v in adjacent(&self.lud_t_values(n, bs), t) {
                    out.push(TunedConfig::Lud {
                        r: nearest(&self.lud_r_values(n, v), (r * t) / v),
                        t: v,
                    });
                }
                for v in adjacent(&self.lud_r_values(n, t), r) {
                    out.push(TunedConfig::Lud { r: v, t });
                }
            }
            (TunedConfig::Rowwise { op, bs }, WorkloadKind::Rowwise { n, .. }) => {
                for v in adjacent(&self.rowwise_bs_values(n), bs) {
                    out.push(TunedConfig::Rowwise { op, bs: v });
                }
            }
            _ => {}
        }
        out.retain(|x| x != c);
        // The legacy space is a hand-picked list, not an axis product:
        // drop probes that fall outside it.
        if self.scale == SpaceScale::Legacy {
            out.retain(|x| self.contains(x));
        }
        out.dedup();
        out
    }

    /// Axis-wise recombination of two parents: each axis is inherited
    /// from a random parent, then dependent axes are repaired.
    pub fn crossover(&self, a: &TunedConfig, b: &TunedConfig, rng: &mut Rng) -> TunedConfig {
        let c = self.crossover_axes(a, b, rng);
        self.snap(c, rng)
    }

    /// The raw axis recombination behind [`Domain::crossover`].
    fn crossover_axes(&self, a: &TunedConfig, b: &TunedConfig, rng: &mut Rng) -> TunedConfig {
        match (*a, *b) {
            (
                TunedConfig::Matmul {
                    bm: am,
                    bn: an,
                    bk: ak,
                    schedule: asched,
                },
                TunedConfig::Matmul {
                    bm: bm_,
                    bn: bn_,
                    bk: bk_,
                    schedule: bsched,
                },
            ) => {
                let WorkloadKind::Matmul { n } = self.kind else {
                    return self.random(rng);
                };
                let bm = if rng.chance(0.5) { am } else { bm_ };
                let bn = if rng.chance(0.5) { an } else { bn_ };
                let bk = if rng.chance(0.5) { ak } else { bk_ };
                let schedule =
                    self.repair_schedule(n, bm, bn, if rng.chance(0.5) { asched } else { bsched });
                TunedConfig::Matmul {
                    bm,
                    bn,
                    bk,
                    schedule,
                }
            }
            (
                TunedConfig::Transpose {
                    t: at,
                    staging: astage,
                },
                TunedConfig::Transpose {
                    t: bt,
                    staging: bstage,
                },
            ) => {
                let t = if rng.chance(0.5) { at } else { bt };
                let staging = self.repair_staging(t, if rng.chance(0.5) { astage } else { bstage });
                TunedConfig::Transpose { t, staging }
            }
            (TunedConfig::Stencil { n, layout: al }, TunedConfig::Stencil { layout: bl, .. }) => {
                TunedConfig::Stencil {
                    n,
                    layout: if rng.chance(0.5) { al } else { bl },
                }
            }
            (
                TunedConfig::Nw {
                    b: ab,
                    layout: alay,
                },
                TunedConfig::Nw {
                    b: bb,
                    layout: blay,
                },
            ) => TunedConfig::Nw {
                b: if rng.chance(0.5) { ab } else { bb },
                layout: if rng.chance(0.5) { alay } else { blay },
            },
            (TunedConfig::Lud { r: ar, t: at }, TunedConfig::Lud { r: br, t: bt }) => {
                let WorkloadKind::Lud { n, .. } = self.kind else {
                    return self.random(rng);
                };
                let t = if rng.chance(0.5) { at } else { bt };
                let r = nearest(
                    &self.lud_r_values(n, t),
                    if rng.chance(0.5) { ar } else { br },
                );
                TunedConfig::Lud { r, t }
            }
            (TunedConfig::Rowwise { op, bs: abs }, TunedConfig::Rowwise { bs: bbs, .. }) => {
                TunedConfig::Rowwise {
                    op,
                    bs: if rng.chance(0.5) { abs } else { bbs },
                }
            }
            // Mismatched parents (shouldn't happen inside one search):
            // fall back to a fresh sample.
            _ => self.random(rng),
        }
    }

    // -- per-workload axes ------------------------------------------------

    /// Legal `bm`/`bn` matmul tile sides.
    fn matmul_tile_values(&self, n: i64) -> Vec<i64> {
        match self.scale {
            SpaceScale::Legacy => divisors_in(n, 64, 256)
                .into_iter()
                .filter(|v| v.count_ones() == 1)
                .collect(),
            SpaceScale::Enlarged => divisors_in(n, 32, 256),
        }
    }

    /// Legal `bk` K-step depths.
    fn matmul_bk_values(&self, n: i64) -> Vec<i64> {
        match self.scale {
            SpaceScale::Legacy => divisors_in(n, 32, 64)
                .into_iter()
                .filter(|v| v.count_ones() == 1)
                .collect(),
            SpaceScale::Enlarged => divisors_in(n, 16, 128),
        }
    }

    /// Legal schedules for an `(n/bm) × (n/bn)` tile grid.
    fn matmul_schedules(&self, n: i64, bm: i64, bn: i64) -> Vec<ScheduleChoice> {
        let (nt_m, nt_n) = (n / bm, n / bn);
        let mut out = vec![ScheduleChoice::RowMajor];
        let gms = match self.scale {
            SpaceScale::Legacy => divisors_in(nt_m, 4, 16),
            SpaceScale::Enlarged => divisors_in(nt_m, 2, 64),
        };
        for gm in gms {
            out.push(ScheduleChoice::Grouped { gm });
        }
        if nt_m == nt_n && nt_m.count_ones() == 1 && nt_m > 1 {
            out.push(ScheduleChoice::Morton);
        }
        let bc: &[(i64, i64)] = match self.scale {
            SpaceScale::Legacy => &[(8, 2)],
            SpaceScale::Enlarged => &[
                (2, 1),
                (2, 2),
                (2, 4),
                (4, 1),
                (4, 2),
                (4, 4),
                (8, 1),
                (8, 2),
                (8, 4),
                (16, 1),
                (16, 2),
                (16, 4),
            ],
        };
        for &(p, b) in bc {
            if nt_m % (p * b) == 0 {
                out.push(ScheduleChoice::BlockCyclic { p, b });
            }
        }
        out
    }

    /// Snaps a schedule onto the legal set for the `(bm, bn)` grid.
    fn repair_schedule(
        &self,
        n: i64,
        bm: i64,
        bn: i64,
        schedule: ScheduleChoice,
    ) -> ScheduleChoice {
        let legal = self.matmul_schedules(n, bm, bn);
        if legal.contains(&schedule) {
            return schedule;
        }
        match schedule {
            ScheduleChoice::Grouped { gm } => {
                let gms: Vec<i64> = legal
                    .iter()
                    .filter_map(|s| match s {
                        ScheduleChoice::Grouped { gm } => Some(*gm),
                        _ => None,
                    })
                    .collect();
                if gms.is_empty() {
                    ScheduleChoice::RowMajor
                } else {
                    ScheduleChoice::Grouped {
                        gm: nearest(&gms, gm),
                    }
                }
            }
            _ => ScheduleChoice::RowMajor,
        }
    }

    /// Legal transpose tile sides.
    fn transpose_t_values(&self, n: i64) -> Vec<i64> {
        match self.scale {
            SpaceScale::Legacy => divisors_in(n, 16, 32)
                .into_iter()
                .filter(|v| v.count_ones() == 1)
                .collect(),
            SpaceScale::Enlarged => divisors_in(n, 8, 64)
                .into_iter()
                .filter(|v| v.count_ones() == 1)
                .collect(),
        }
    }

    /// Legal staging layouts for a `t×t` tile (`None` = unstaged).
    fn transpose_stagings(&self, t: i64) -> Vec<Option<StagingChoice>> {
        let mut out = vec![
            None,
            Some(StagingChoice::Identity),
            Some(StagingChoice::Swizzle),
            Some(StagingChoice::ColMajor),
            Some(StagingChoice::Antidiag),
        ];
        let (ps, bs): (&[i64], &[i64]) = match self.scale {
            SpaceScale::Legacy => (&[8], &[4]),
            SpaceScale::Enlarged => (&[2, 4, 8, 16, 32], &[1, 2, 4, 8, 16]),
        };
        for &p in ps {
            for &b in bs {
                // block_cyclic_elems needs p·b | t².
                if p * b <= t * t && (t * t) % (p * b) == 0 {
                    out.push(Some(StagingChoice::BlockCyclic { p, b }));
                }
            }
        }
        out
    }

    /// Snaps a staging choice onto the legal set for tile side `t`.
    fn repair_staging(&self, t: i64, staging: Option<StagingChoice>) -> Option<StagingChoice> {
        let legal = self.transpose_stagings(t);
        if legal.contains(&staging) {
            return staging;
        }
        if let Some(StagingChoice::BlockCyclic { p, b }) = staging {
            let pairs: Vec<(i64, i64)> = legal
                .iter()
                .filter_map(|s| match s {
                    Some(StagingChoice::BlockCyclic { p, b }) => Some((*p, *b)),
                    _ => None,
                })
                .collect();
            if let Some(&(np, nb)) = pairs
                .iter()
                .min_by_key(|(lp, lb)| (lp - p).abs() + (lb - b).abs())
            {
                return Some(StagingChoice::BlockCyclic { p: np, b: nb });
            }
        }
        Some(StagingChoice::Swizzle)
    }

    /// Legal stencil layouts, flattened (row-major walks + brick sides).
    fn stencil_layouts(&self, n: i64) -> Vec<StencilLayoutChoice> {
        let mut out = vec![
            StencilLayoutChoice::RowMajorY,
            StencilLayoutChoice::RowMajorZ,
        ];
        let bricks = match self.scale {
            SpaceScale::Legacy => divisors_in(n, 4, 8),
            SpaceScale::Enlarged => divisors_in(n, 2, 16),
        };
        for b in bricks {
            out.push(StencilLayoutChoice::Brick { b });
        }
        out
    }

    /// Legal NW block sizes. The legacy list requires `b | n`; the
    /// enlarged range frees `b` to any multiple of 4 (the trace pads the
    /// last block diagonal, as the generated kernel does).
    fn nw_b_values(&self, n: i64) -> Vec<i64> {
        match self.scale {
            SpaceScale::Legacy => [16i64, 32, 64, 112, 128, 224]
                .into_iter()
                .filter(|b| n % b == 0)
                .collect(),
            SpaceScale::Enlarged => (2..=64)
                .map(|k| k * 4)
                .filter(|&b| b <= 256.min(n))
                .collect(),
        }
    }

    /// The NW block sizes at the "tooth bottoms" of the additive launch
    /// schedule: the smallest legal `b` for each distinct block-diagonal
    /// count `ceil(n/b)`. The additive pricing is sawtooth in `b` —
    /// time drops whenever the diagonal count falls, then climbs within
    /// a tooth — so the meaningful search coordinate is the diagonal
    /// count, and moves that step between tooth bottoms cross the
    /// sawtooth in one hop instead of fighting uphill through it.
    fn nw_tooth_values(&self, n: i64) -> Vec<i64> {
        let all = self.nw_b_values(n);
        let mut out = Vec::new();
        let mut last_nb = i64::MIN;
        for &b in &all {
            let nb = (n + b - 1) / b;
            if nb != last_nb {
                out.push(b);
                last_nb = nb;
            }
        }
        out
    }

    /// Legal LUD CUDA block sides.
    fn lud_t_values(&self, n: i64, bs: i64) -> Vec<i64> {
        match self.scale {
            SpaceScale::Legacy => vec![bs],
            SpaceScale::Enlarged => [8i64, 16, 32].into_iter().filter(|&t| t <= n).collect(),
        }
    }

    /// Legal LUD coarsening factors for block side `t`.
    fn lud_r_values(&self, n: i64, t: i64) -> Vec<i64> {
        match self.scale {
            SpaceScale::Legacy => [1i64, 2, 4, 8]
                .into_iter()
                .filter(|r| n % (r * t) == 0)
                .collect(),
            // Free integers: any coarsening whose LUD block fits a sane
            // panel (r·t ≤ 256); the trace pads a partial last step.
            SpaceScale::Enlarged => (1..=16).filter(|r| r * t <= 256.min(n)).collect(),
        }
    }

    /// Legal rowwise column block sizes (powers of two — the generated
    /// Triton kernels require it). Rowwise has no v2 enumeration, so
    /// both scales share the list.
    fn rowwise_bs_values(&self, n: i64) -> Vec<i64> {
        crate::space::rowwise_block_sizes(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::space::build_layout;
    use lego_codegen::cuda::stencil::StencilShape;

    fn kinds() -> Vec<WorkloadKind> {
        vec![
            WorkloadKind::Matmul { n: 512 },
            WorkloadKind::Transpose { n: 256 },
            WorkloadKind::Stencil {
                shape: StencilShape::Star(1),
                n: 32,
            },
            WorkloadKind::Nw { n: 256, b: 16 },
            WorkloadKind::Lud { n: 256, bs: 16 },
            WorkloadKind::Rowwise {
                op: lego_codegen::tuning::RowwiseOp::Softmax,
                m: 128,
                n: 1024,
            },
        ]
    }

    #[test]
    fn every_enumerated_config_builds_a_layout() {
        for kind in kinds() {
            for scale in [SpaceScale::Legacy, SpaceScale::Enlarged] {
                let domain = Domain::new(kind, scale);
                let configs = domain.enumerate();
                assert_eq!(configs[0], kind.default_config(), "{}", kind.name());
                for c in &configs {
                    build_layout(&kind, c)
                        .unwrap_or_else(|e| panic!("{} {:?} {c}: {e}", kind.name(), scale));
                }
            }
        }
    }

    #[test]
    fn moves_stay_inside_the_domain() {
        for kind in kinds() {
            for scale in [SpaceScale::Legacy, SpaceScale::Enlarged] {
                let domain = Domain::new(kind, scale);
                let all = domain.enumerate();
                let mut rng = Rng::from_key(&kind.name());
                let mut c = domain.default_config();
                for i in 0..200 {
                    c = match i % 3 {
                        0 => domain.neighbor(&c, &mut rng),
                        1 => domain.random(&mut rng),
                        _ => {
                            let other = domain.random(&mut rng);
                            domain.crossover(&c, &other, &mut rng)
                        }
                    };
                    assert!(
                        all.contains(&c),
                        "{}: {scale:?} move left the domain: {c}",
                        kind.name()
                    );
                    for p in domain.local_neighbors(&c) {
                        assert!(
                            all.contains(&p),
                            "{}: {scale:?} local neighbor left the domain: {p}",
                            kind.name()
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn neighbor_usually_moves() {
        // The walk must not get stuck returning the same point forever.
        for kind in kinds() {
            let domain = Domain::new(kind, SpaceScale::Enlarged);
            let mut rng = Rng::from_key("move-check");
            let c = domain.default_config();
            let moved = (0..64)
                .filter(|_| domain.neighbor(&c, &mut rng) != c)
                .count();
            assert!(moved > 16, "{}: only {moved}/64 moves", kind.name());
        }
    }
}
