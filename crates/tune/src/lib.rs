//! # lego-tune — analytic layout autotuning
//!
//! The LEGO algebra makes whole families of layouts *expressible*; this
//! crate makes them *searchable*. For each workload it:
//!
//! 1. models the configuration space twice: the fixed v2
//!    [`SearchSpace`] list (what exhaustive enumeration affords) and the
//!    parameterized [`Domain`] with free-integer tile ranges plus
//!    `neighbor`/`crossover` moves — tile shapes, `OrderBy` permutation
//!    choices (grouped, Morton, block-cyclic, XOR-swizzle,
//!    anti-diagonal, …) and the expanded-vs-unexpanded expression
//!    variants of the §IV-A cost model ([`lego_expr::cost`]);
//! 2. explores it with a [`Strategy`] — [`Strategy::Exhaustive`]
//!    batch-scoring, or budgeted [`Strategy::Anneal`] /
//!    [`Strategy::Genetic`] metaheuristics driven by a seeded in-crate
//!    RNG ([`rng::Rng`]) so every search replays deterministically —
//!    every candidate priced by `gpu-sim`'s [`gpu_sim::score()`] oracle
//!    (coalescing + bank conflicts + cache filtering + roofline timing
//!    in one call);
//! 3. persists the winner *and the top-k frontier* in a JSON
//!    [`TuningCache`] keyed by `(workload, problem size, hardware
//!    config)`, so repeated runs skip the search and later searches
//!    warm-start from previous populations;
//! 4. hands the winning [`TunedConfig`] back to `lego-codegen`'s
//!    `from_tuned` constructors to instantiate the tuned kernel.
//!
//! ```
//! use gpu_sim::a100;
//! use lego_tune::{Budget, Strategy, Tuner, WorkloadKind};
//!
//! let tuner = Tuner::new(a100());
//! let r = tuner.tune(&WorkloadKind::Transpose { n: 1024 }).unwrap();
//! // The space always contains the hand-picked default, so tuning
//! // never regresses it.
//! assert!(r.tuned.time_s <= r.naive.time_s);
//!
//! // Budgeted annealing over the enlarged free-integer space: same
//! // guarantee, bounded evaluations, deterministic per seed.
//! let tuner = Tuner::new(a100())
//!     .with_strategy(Strategy::Anneal)
//!     .with_budget(Budget(64));
//! let r = tuner.tune(&WorkloadKind::Transpose { n: 1024 }).unwrap();
//! assert!(r.evaluated <= 64 && r.tuned.time_s <= r.naive.time_s);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod domain;
pub mod fleet;
pub mod json;
pub mod request;
pub mod rng;
pub mod sidecar;
pub mod space;
pub mod strategy;
pub mod tuner;

pub use cache::{
    cache_key, key_distance, nearest_neighbor, CachedTuning, TuningCache, CACHE_SCHEMA_VERSION,
};
pub use domain::{Domain, SpaceScale};
pub use fleet::{FleetCounters, FleetDriver, FleetReport, FleetSpec};
pub use json::Json;
pub use lego_codegen::tuning::{
    NwLayoutChoice, RowwiseOp, ScheduleChoice, StagingChoice, StencilLayoutChoice, TunedConfig,
};
pub use request::TuneRequest;
pub use sidecar::{Sidecar, SidecarWarm};
pub use space::{
    annotate_cache_stats, annotate_sidecar_stats, build_layout, build_workload,
    rowwise_block_sizes, stencil_block, symbolic_exprs, Candidate, SearchSpace, WorkloadKind,
};
pub use strategy::{run_search, Budget, SearchOutcome, Strategy, FRONTIER_K};
pub use tuner::{SeededTune, TuneError, TuneResult, Tuner};
