//! # lego-tune — analytic layout autotuning
//!
//! The LEGO algebra makes whole families of layouts *expressible*; this
//! crate makes them *searchable*. For each workload it:
//!
//! 1. enumerates a [`SearchSpace`] of candidate configurations — tile
//!    shapes, `OrderBy` permutation choices (grouped, Morton,
//!    block-cyclic, XOR-swizzle, anti-diagonal, …) and the
//!    expanded-vs-unexpanded expression variants of the §IV-A cost
//!    model ([`lego_expr::cost`]);
//! 2. scores every candidate in parallel through `gpu-sim`'s
//!    [`gpu_sim::score()`] oracle (coalescing + bank conflicts + cache
//!    filtering + roofline timing in one call);
//! 3. persists the winner in a JSON [`TuningCache`] keyed by
//!    `(workload, problem size, hardware config)`, so repeated runs
//!    skip the search;
//! 4. hands the winning [`TunedConfig`] back to `lego-codegen`'s
//!    `from_tuned` constructors to instantiate the tuned kernel.
//!
//! ```
//! use gpu_sim::a100;
//! use lego_tune::{Tuner, WorkloadKind};
//!
//! let tuner = Tuner::new(a100());
//! let r = tuner.tune(&WorkloadKind::Transpose { n: 1024 }).unwrap();
//! // The space always contains the hand-picked default, so tuning
//! // never regresses it.
//! assert!(r.tuned.time_s <= r.naive.time_s);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod json;
pub mod space;
pub mod tuner;

pub use cache::{cache_key, CachedTuning, TuningCache, CACHE_SCHEMA_VERSION};
pub use json::Json;
pub use lego_codegen::tuning::{
    NwLayoutChoice, RowwiseOp, ScheduleChoice, StagingChoice, StencilLayoutChoice, TunedConfig,
};
pub use space::{
    build_layout, build_workload, stencil_block, Candidate, SearchSpace, WorkloadKind,
};
pub use tuner::{TuneError, TuneResult, Tuner};
