//! A small deterministic PRNG for the search strategies.
//!
//! The tuner must be reproducible: the same workload on the same
//! hardware model must walk the same search trajectory on every run and
//! every platform, so results (and the CI search-parity gate) are
//! stable. `std` deliberately ships no RNG and external crates are off
//! the table, so this module provides a tiny SplitMix64 generator —
//! full-period over `u64`, passes the usual smoke statistics, and more
//! than random enough to drive annealing acceptance tests and genetic
//! selection.
//!
//! Seeds are derived from the tuning cache key (workload + hardware
//! fingerprint) plus the strategy name via FNV-1a, so distinct searches
//! decorrelate while identical searches replay exactly.

/// Deterministic SplitMix64 generator.
#[derive(Clone, Debug)]
pub struct Rng {
    state: u64,
}

/// FNV-1a over a byte string — the seed derivation hash.
pub fn fnv1a(text: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in text.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

impl Rng {
    /// A generator seeded with the given value.
    pub fn new(seed: u64) -> Rng {
        Rng { state: seed }
    }

    /// A generator seeded from a string key (FNV-1a). Used to derive the
    /// search seed from the tuning cache key, so runs are reproducible
    /// per (workload, hardware, strategy).
    pub fn from_key(key: &str) -> Rng {
        Rng::new(fnv1a(key))
    }

    /// The next raw 64-bit output (SplitMix64 step).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// A uniform index in `0..n` (`n > 0`).
    pub fn below(&mut self, n: usize) -> usize {
        debug_assert!(n > 0, "below(0)");
        // Multiply-shift range reduction: unbiased enough for search
        // moves (bias < 2^-53 for the small ranges used here).
        ((u128::from(self.next_u64()) * n as u128) >> 64) as usize
    }

    /// A uniform float in `[0, 1)`.
    pub fn f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// A Bernoulli draw with probability `p`.
    pub fn chance(&mut self, p: f64) -> bool {
        self.f64() < p
    }

    /// A uniform element of a non-empty slice.
    pub fn pick<'a, T>(&mut self, xs: &'a [T]) -> &'a T {
        &xs[self.below(xs.len())]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_replays_exactly() {
        let mut a = Rng::from_key("nw(n=512,b=16)|A100|anneal");
        let mut b = Rng::from_key("nw(n=512,b=16)|A100|anneal");
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_keys_decorrelate() {
        let mut a = Rng::from_key("workload-a");
        let mut b = Rng::from_key("workload-b");
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn below_is_in_range_and_covers() {
        let mut rng = Rng::new(7);
        let mut seen = [false; 7];
        for _ in 0..512 {
            let v = rng.below(7);
            assert!(v < 7);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues reachable");
    }

    #[test]
    fn f64_is_unit_interval_and_roughly_uniform() {
        let mut rng = Rng::new(42);
        let mut sum = 0.0;
        for _ in 0..4096 {
            let v = rng.f64();
            assert!((0.0..1.0).contains(&v));
            sum += v;
        }
        let mean = sum / 4096.0;
        assert!((mean - 0.5).abs() < 0.03, "mean {mean}");
    }
}
