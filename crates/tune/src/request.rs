//! [`TuneRequest`]: the reusable "what do you want tuned, and how
//! hard" key type shared by the batch CLI paths and the `lego-served`
//! tuning daemon.
//!
//! A request bundles the workload instance with the device model and
//! the search knobs (strategy, budget, optional space pin). Two string
//! keys fall out of it:
//!
//! * [`TuneRequest::cache_key`] — the schema-v4 [`crate::TuningCache`]
//!   key: `(workload, pricing mode, device identity)`. Results live
//!   under this key; whether a stored entry *satisfies* a request is a
//!   separate check ([`TuneRequest::satisfied_by`]) because a
//!   higher-budget entry may serve a lower-budget request.
//! * [`TuneRequest::coalesce_key`] — the cache key plus the search
//!   knobs. Two requests with equal coalesce keys are guaranteed to run
//!   the *same deterministic search* (seeds derive from the cache key
//!   and strategy), which is what lets the daemon collapse a thundering
//!   herd of identical concurrent requests onto one in-flight slot.

use gpu_sim::GpuConfig;

use crate::cache::{cache_key, CachedTuning};
use crate::domain::SpaceScale;
use crate::space::WorkloadKind;
use crate::strategy::{Budget, Strategy};
use crate::tuner::Tuner;

/// One fully-specified tuning request: workload, device, search knobs.
#[derive(Clone, Debug)]
pub struct TuneRequest {
    /// The workload instance to tune.
    pub kind: WorkloadKind,
    /// The device model to tune against.
    pub device: GpuConfig,
    /// How to explore the space.
    pub strategy: Strategy,
    /// Evaluation cap for the budgeted strategies.
    pub budget: Budget,
    /// Optional space-scale pin (`None` = the strategy's default).
    pub space: Option<SpaceScale>,
}

impl TuneRequest {
    /// A request with the default search knobs (exhaustive, default
    /// budget, unpinned space) — the v2 CLI behavior.
    pub fn new(kind: WorkloadKind, device: GpuConfig) -> TuneRequest {
        TuneRequest {
            kind,
            device,
            strategy: Strategy::default(),
            budget: Budget::default(),
            space: None,
        }
    }

    /// A [`Tuner`] configured exactly as this request asks (no cache
    /// attached; callers decide persistence).
    pub fn tuner(&self) -> Tuner {
        let mut t = Tuner::new(self.device.clone())
            .with_strategy(self.strategy)
            .with_budget(self.budget);
        if let Some(space) = self.space {
            t = t.with_space(space);
        }
        t
    }

    /// The space scale the request's strategy will actually search.
    pub fn effective_space(&self) -> SpaceScale {
        self.tuner().effective_space()
    }

    /// The schema-v4 tuning-cache key for this request.
    pub fn cache_key(&self) -> String {
        cache_key(&self.kind.name(), self.kind.pricing_mode(), &self.device)
    }

    /// The in-flight coalescing key: the cache key extended with every
    /// knob that changes what a search would compute. Requests agreeing
    /// on this key run byte-identical deterministic searches and may
    /// share one result.
    pub fn coalesce_key(&self) -> String {
        format!(
            "{}|strategy={}|space={}|budget={}",
            self.cache_key(),
            self.strategy.name(),
            self.effective_space().name(),
            match self.strategy {
                Strategy::Exhaustive => 0,
                Strategy::Anneal | Strategy::Genetic => self.budget.max_evals(),
            }
        )
    }

    /// The request class for metrics aggregation: workload family @
    /// device tag, e.g. `matmul@a100`.
    pub fn class(&self) -> String {
        format!("{}@{}", self.kind.family(), self.device.tag)
    }

    /// Whether a stored entry satisfies this request (same rule the
    /// [`Tuner`] applies on a cache hit).
    pub fn satisfied_by(&self, hit: &CachedTuning) -> bool {
        self.tuner().satisfied_by(hit)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req(strategy: Strategy, budget: usize) -> TuneRequest {
        TuneRequest {
            kind: WorkloadKind::Transpose { n: 512 },
            device: gpu_sim::a100(),
            strategy,
            budget: Budget(budget),
            space: None,
        }
    }

    #[test]
    fn coalesce_key_separates_search_knobs() {
        let exhaustive = req(Strategy::Exhaustive, 64);
        let anneal = req(Strategy::Anneal, 64);
        let bigger = req(Strategy::Anneal, 128);
        // Same result slot...
        assert_eq!(exhaustive.cache_key(), anneal.cache_key());
        // ...but never the same in-flight search.
        assert_ne!(exhaustive.coalesce_key(), anneal.coalesce_key());
        assert_ne!(anneal.coalesce_key(), bigger.coalesce_key());
        // Exhaustive ignores the budget, so budgets must not split it.
        assert_eq!(
            req(Strategy::Exhaustive, 64).coalesce_key(),
            req(Strategy::Exhaustive, 128).coalesce_key()
        );
        // Devices split both keys.
        let mut on_h100 = req(Strategy::Anneal, 64);
        on_h100.device = gpu_sim::h100();
        assert_ne!(anneal.cache_key(), on_h100.cache_key());
        assert_ne!(anneal.coalesce_key(), on_h100.coalesce_key());
    }

    #[test]
    fn class_labels_family_and_device() {
        assert_eq!(req(Strategy::Exhaustive, 1).class(), "transpose@a100");
        let r = TuneRequest::new(
            WorkloadKind::Rowwise {
                op: crate::RowwiseOp::Softmax,
                m: 64,
                n: 256,
            },
            gpu_sim::mi300(),
        );
        assert_eq!(r.class(), "softmax@mi300");
    }

    #[test]
    fn satisfaction_mirrors_the_tuner_rule() {
        let estimate = gpu_sim::score::Estimate {
            time_s: 1.0,
            breakdown: gpu_sim::timing::TimeEstimate {
                compute_s: 0.2,
                dram_s: 0.8,
                l2_s: 0.1,
                smem_s: 0.0,
                overhead_s: 0.0,
                total_s: 1.0,
            },
            dram_bytes: 1.0,
            l2_bytes: 1.0,
            smem_passes: 0.0,
            l2_hit_rate: 0.5,
            flops: 1.0,
            useful_bytes: 1.0,
        };
        let hit = CachedTuning {
            config: lego_codegen::tuning::TunedConfig::Transpose {
                t: 32,
                staging: None,
            },
            expr_variant: None,
            index_ops: None,
            naive: estimate,
            tuned: estimate,
            evaluated: 64,
            strategy: "anneal".to_string(),
            budget: Some(64),
            space: "enlarged".to_string(),
            frontier: vec![],
        };
        assert!(req(Strategy::Anneal, 64).satisfied_by(&hit));
        assert!(
            req(Strategy::Anneal, 32).satisfied_by(&hit),
            "bigger budget serves smaller"
        );
        assert!(!req(Strategy::Anneal, 128).satisfied_by(&hit));
        assert!(!req(Strategy::Genetic, 64).satisfied_by(&hit));
        assert!(!req(Strategy::Exhaustive, 64).satisfied_by(&hit));
    }
}
