//! A minimal JSON value, writer, and parser.
//!
//! The container this workspace builds in has no crate registry, so the
//! tuning cache and the machine-readable bench outputs use this ~200
//! line self-contained implementation instead of `serde_json`. Floats
//! are printed with Rust's shortest round-trip formatting, so a
//! write→read cycle reproduces every `f64` bit-exactly (non-finite
//! values map to `null`).

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A JSON value. Objects preserve insertion order.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An integer (emitted without a decimal point).
    Int(i64),
    /// A float (shortest round-trip formatting).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object (insertion-ordered).
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Builds an object from key/value pairs.
    pub fn obj<I: IntoIterator<Item = (&'static str, Json)>>(pairs: I) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// A float value (`null` when non-finite).
    pub fn num(v: f64) -> Json {
        if v.is_finite() {
            Json::Num(v)
        } else {
            Json::Null
        }
    }

    /// Looks up a key in an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as an `f64` (accepts both `Int` and `Num`).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Int(v) => Some(*v as f64),
            Json::Num(v) => Some(*v),
            _ => None,
        }
    }

    /// The value as an `i64`.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Json::Int(v) => Some(*v),
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// The object's pairs.
    pub fn as_obj(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(v) => Some(v),
            _ => None,
        }
    }

    /// Renders to a compact JSON string.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0, false);
        out
    }

    /// Renders to an indented JSON string.
    pub fn render_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0, true);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, depth: usize, pretty: bool) {
        let pad = |out: &mut String, d: usize| {
            if pretty {
                out.push('\n');
                for _ in 0..d {
                    out.push_str("  ");
                }
            }
        };
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(v) => {
                let _ = write!(out, "{v}");
            }
            Json::Num(v) => {
                if v.is_finite() {
                    // Rust's Debug for f64 is shortest-round-trip.
                    let _ = write!(out, "{v:?}");
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    pad(out, depth + 1);
                    item.write(out, depth + 1, pretty);
                }
                if !items.is_empty() {
                    pad(out, depth);
                }
                out.push(']');
            }
            Json::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    pad(out, depth + 1);
                    write_escaped(out, k);
                    out.push(':');
                    if pretty {
                        out.push(' ');
                    }
                    v.write(out, depth + 1, pretty);
                }
                if !pairs.is_empty() {
                    pad(out, depth);
                }
                out.push('}');
            }
        }
    }

    /// Parses a JSON document.
    ///
    /// # Errors
    ///
    /// A human-readable message naming the byte offset of the problem.
    pub fn parse(text: &str) -> Result<Json, String> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing data at byte {}", p.pos));
        }
        Ok(v)
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len()
            && matches!(self.bytes[self.pos], b' ' | b'\t' | b'\n' | b'\r')
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", b as char, self.pos))
        }
    }

    fn lit(&mut self, s: &str, v: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(s.as_bytes()) {
            self.pos += s.len();
            Ok(v)
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') => self.lit("null", Json::Null),
            Some(b't') => self.lit("true", Json::Bool(true)),
            Some(b'f') => self.lit("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(format!("unexpected byte at {}", self.pos)),
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| "bad escape".to_string())?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| "bad \\u".to_string())?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|e| e.to_string())?,
                                16,
                            )
                            .map_err(|e| e.to_string())?;
                            self.pos += 4;
                            out.push(
                                char::from_u32(code).ok_or_else(|| "bad codepoint".to_string())?,
                            );
                        }
                        _ => return Err(format!("bad escape at {}", self.pos)),
                    }
                }
                // ASCII fast path: the overwhelmingly common case in
                // cache keys and bench labels.
                Some(b) if b < 0x80 => {
                    out.push(b as char);
                    self.pos += 1;
                }
                Some(b) => {
                    // Decode exactly one multi-byte UTF-8 character.
                    // Validating only its own bytes keeps string parsing
                    // linear — validating the whole remaining input per
                    // character made large-document parses quadratic.
                    let len = match b {
                        0xC0..=0xDF => 2,
                        0xE0..=0xEF => 3,
                        0xF0..=0xF7 => 4,
                        _ => return Err("invalid utf-8".to_string()),
                    };
                    let chunk = self
                        .bytes
                        .get(self.pos..self.pos + len)
                        .ok_or_else(|| "invalid utf-8".to_string())?;
                    let s = std::str::from_utf8(chunk).map_err(|_| "invalid utf-8".to_string())?;
                    out.push(s.chars().next().expect("validated non-empty chunk"));
                    self.pos += len;
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).map_err(|e| e.to_string())?;
        if float {
            text.parse::<f64>()
                .map(Json::Num)
                .map_err(|e| format!("bad number {text}: {e}"))
        } else {
            text.parse::<i64>()
                .map(Json::Int)
                .map_err(|e| format!("bad number {text}: {e}"))
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected , or ] at {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.eat(b'{')?;
        let mut pairs = Vec::new();
        let mut seen = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            if seen.insert(key.clone(), ()).is_some() {
                return Err(format!("duplicate key {key:?}"));
            }
            self.skip_ws();
            self.eat(b':')?;
            let v = self.value()?;
            pairs.push((key, v));
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(format!("expected , or }} at {}", self.pos)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_document() {
        let doc = Json::obj([
            ("name", Json::Str("tuner".into())),
            ("count", Json::Int(3)),
            ("time", Json::Num(1.25e-4)),
            (
                "arr",
                Json::Arr(vec![Json::Bool(true), Json::Null, Json::Int(-7)]),
            ),
        ]);
        let text = doc.render();
        assert_eq!(Json::parse(&text).unwrap(), doc);
        let pretty = doc.render_pretty();
        assert_eq!(Json::parse(&pretty).unwrap(), doc);
    }

    #[test]
    fn floats_round_trip_bit_exactly() {
        for v in [0.1, 1.0 / 3.0, 2.039e12, f64::MIN_POSITIVE, 1e308] {
            let text = Json::Num(v).render();
            match Json::parse(&text).unwrap() {
                Json::Num(back) => assert_eq!(back.to_bits(), v.to_bits()),
                other => panic!("{other:?}"),
            }
        }
    }

    #[test]
    fn non_finite_becomes_null() {
        assert_eq!(Json::num(f64::NAN), Json::Null);
        assert_eq!(Json::num(f64::INFINITY).render(), "null");
    }

    #[test]
    fn string_escapes() {
        let s = Json::Str("a\"b\\c\nd\te".into());
        assert_eq!(Json::parse(&s.render()).unwrap(), s);
    }

    #[test]
    fn multibyte_strings_round_trip() {
        let s = Json::Str("π ≈ 3.14159 — θ/φ 日本語 🚀".into());
        assert_eq!(Json::parse(&s.render()).unwrap(), s);
    }

    #[test]
    fn rejects_garbage() {
        assert!(Json::parse("{]").is_err());
        assert!(Json::parse("{\"a\":1,}").is_err());
        assert!(Json::parse("1 2").is_err());
        assert!(Json::parse("{\"a\":1,\"a\":2}").is_err());
    }
}
