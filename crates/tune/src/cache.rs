//! The persistent JSON tuning cache.
//!
//! Results are keyed by `(workload, problem size, hardware config)` so
//! repeated runs skip the search entirely. The file is a single JSON
//! document; floats round-trip bit-exactly (see [`crate::json`]), so a
//! cached [`Estimate`] compares equal to the freshly computed one.
//!
//! The document carries a schema version ([`CACHE_SCHEMA_VERSION`]):
//! documents whose version doesn't match the current one are treated as
//! empty, so winners cached under an older trace/occupancy model can
//! never be served stale.

use std::io;
use std::path::{Path, PathBuf};

use gpu_sim::score::Estimate;
use gpu_sim::timing::TimeEstimate;
use gpu_sim::GpuConfig;
use lego_codegen::tuning::{
    NwLayoutChoice, RowwiseOp, ScheduleChoice, StagingChoice, StencilLayoutChoice, TunedConfig,
};
use lego_expr::Variant;

use crate::json::Json;
use crate::space::WorkloadKind;

/// Version of the cache schema *and* of the estimate semantics behind
/// it. Bump whenever the trace builders, the timing model, or the
/// on-disk shape change incompatibly; mismatched documents are
/// discarded wholesale (a cache miss, not an error).
///
/// History: 1 = original per-crate trace loops; 2 = shared
/// `gpu_sim::trace` builders + occupancy-aware timing; 3 = entries
/// record their search strategy/budget/space and persist a top-k
/// frontier as the metaheuristics' warm-start population; 4 = the
/// device-generic `CostModel` — keys carry the full device identity
/// (warp size, bank geometry, segment width, saturation occupancies)
/// plus the workload's pricing mode, so per-device winners can never be
/// served cross-device and v3 roofline-priced NW/LUD entries are
/// invalidated wholesale.
pub const CACHE_SCHEMA_VERSION: i64 = 4;

/// One cached tuning outcome.
#[derive(Clone, Debug, PartialEq)]
pub struct CachedTuning {
    /// The winning configuration.
    pub config: TunedConfig,
    /// Expression variant the cost model chose for the winner.
    pub expr_variant: Option<Variant>,
    /// Index-expression op count of the winner.
    pub index_ops: Option<usize>,
    /// Estimate of the hand-picked default configuration.
    pub naive: Estimate,
    /// Estimate of the winning configuration.
    pub tuned: Estimate,
    /// How many candidates the search evaluated.
    pub evaluated: usize,
    /// Name of the strategy that produced the entry
    /// (`exhaustive`/`anneal`/`genetic`).
    pub strategy: String,
    /// Evaluation budget of the search (`None` for exhaustive).
    pub budget: Option<usize>,
    /// Which space scale was searched (`legacy`/`enlarged`).
    pub space: String,
    /// Top-k evaluated configurations (best first) with their estimated
    /// times — served as the warm-start population when a later search
    /// of the same key is not satisfied by this entry.
    pub frontier: Vec<(TunedConfig, f64)>,
}

/// A file-backed tuning cache.
#[derive(Clone, Debug)]
pub struct TuningCache {
    path: PathBuf,
}

/// The cache key for one (workload, pricing mode, hardware) triple: the
/// workload name already encodes the problem size, the pricing mode
/// guards against entries estimated under another combining rule, and
/// the salient hardware parameters — including the warp/bank/segment
/// geometry and saturation occupancies the device-generic `CostModel`
/// consumes — guard against stale entries after config changes, so
/// per-device winners can never be served cross-device.
pub fn cache_key(workload_name: &str, mode: &str, gpu: &GpuConfig) -> String {
    format!(
        "{workload_name}|mode={mode}|{}|sm={}|warp={}|banks={}x{}|l2={}|bw={:e}|sec={}|regs={}|smem={}|warps={}|sat={}/{}",
        gpu.name,
        gpu.sm_count,
        gpu.warp_size,
        gpu.smem_banks,
        gpu.bank_bytes,
        gpu.l2_bytes,
        gpu.dram_bw,
        gpu.sector_bytes,
        gpu.regs_per_sm,
        gpu.smem_per_sm,
        gpu.max_warps_per_sm,
        gpu.mem_sat_occupancy,
        gpu.issue_sat_occupancy
    )
}

impl TuningCache {
    /// Opens (or will create on first store) the cache at `path`.
    pub fn new(path: impl Into<PathBuf>) -> TuningCache {
        TuningCache { path: path.into() }
    }

    /// The backing file path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    fn load(&self) -> Json {
        let Ok(text) = std::fs::read_to_string(&self.path) else {
            return Json::Obj(vec![]);
        };
        match Json::parse(&text) {
            // A document written under a different schema version (or
            // with no version at all) is invalidated wholesale: the
            // estimates it stores were produced by a different model.
            Ok(doc) => match doc.get("version").and_then(Json::as_i64) {
                Some(CACHE_SCHEMA_VERSION) => doc,
                _ => Json::Obj(vec![]),
            },
            // A corrupt cache is a cache miss, not a failure.
            Err(_) => Json::Obj(vec![]),
        }
    }

    /// Looks up a cached tuning by key.
    pub fn lookup(&self, key: &str) -> Option<CachedTuning> {
        let doc = self.load();
        let entry = doc.get("entries")?.get(key)?;
        tuning_from_json(entry)
    }

    /// Every decodable entry of the current-schema document, in file
    /// order. Used by the tuning-service daemon to promote the whole
    /// persisted cache into its in-memory tier at startup.
    pub fn entries(&self) -> Vec<(String, CachedTuning)> {
        let doc = self.load();
        doc.get("entries")
            .and_then(Json::as_obj)
            .map(|pairs| {
                pairs
                    .iter()
                    .filter_map(|(k, v)| Some((k.clone(), tuning_from_json(v)?)))
                    .collect()
            })
            .unwrap_or_default()
    }

    /// Stores (or replaces) a cached tuning under `key`.
    ///
    /// Safe under concurrency: the whole read-modify-write cycle runs
    /// under a process-wide per-file mutex (so parallel stores from the
    /// service daemon's workers can't drop each other's entries), and
    /// the document is written to a tempfile and atomically renamed
    /// into place (so a concurrent reader never observes a torn file).
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn store(&self, key: &str, value: &CachedTuning) -> io::Result<()> {
        self.store_many(&[(key.to_string(), value.clone())])
    }

    /// Stores (or replaces) a batch of entries in *one* locked
    /// load → merge → atomic-rename cycle. This is what makes a fleet
    /// run O(1) document rewrites instead of O(keys): N individual
    /// [`TuningCache::store`] calls each re-read and re-render the whole
    /// document, which is quadratic in entry count.
    ///
    /// Later duplicates in `batch` win, matching the sequential-store
    /// semantics. An empty batch is a no-op that never touches the file.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn store_many(&self, batch: &[(String, CachedTuning)]) -> io::Result<()> {
        if batch.is_empty() {
            return Ok(());
        }
        // The whole read-modify-write cycle runs behind the shared
        // per-canonical-path lock, and the rewrite goes through the
        // shared tempfile + rename path (see `lego_expr::atomicfile`,
        // which the memo sidecar uses too).
        let lock = lego_expr::atomicfile::path_lock(&self.path);
        let _guard = lock.lock().expect("cache file lock poisoned");
        let doc = self.load();
        let mut entries: Vec<(String, Json)> = doc
            .get("entries")
            .and_then(Json::as_obj)
            .map(<[(String, Json)]>::to_vec)
            .unwrap_or_default();
        for (key, value) in batch {
            let rendered = tuning_to_json(value);
            match entries.iter_mut().find(|(k, _)| k == key) {
                Some((_, slot)) => *slot = rendered,
                None => entries.push((key.clone(), rendered)),
            }
        }
        let doc = Json::obj([
            ("version", Json::Int(CACHE_SCHEMA_VERSION)),
            ("entries", Json::Obj(entries)),
        ]);
        lego_expr::atomicfile::write_atomic(&self.path, &doc.render_pretty())
    }
}

/// Splits a schema-v4 cache key into its parsed workload and the
/// device-identity suffix (everything after the workload name: pricing
/// mode + hardware parameters). `None` for keys whose workload segment
/// does not parse — foreign or future-schema keys simply never match.
pub fn key_workload(key: &str) -> Option<(WorkloadKind, &str)> {
    let (name, rest) = key.split_once('|')?;
    let kind = WorkloadKind::parse(name).ok()?;
    Some((kind, rest))
}

/// Penalty added to [`key_distance`] when two keys' device identities
/// differ: large enough that any same-device candidate beats every
/// cross-device one, finite so a sweep's first key on a new device can
/// still transfer from a sibling device when nothing closer exists.
pub const CROSS_DEVICE_PENALTY: f64 = 256.0;

/// Penalty for two stencil workloads of different shapes (a star-7pt
/// frontier still seeds a cube-27pt search usefully — the tuned knobs
/// are sizes — but a same-shape neighbor must always win first).
const SHAPE_MISMATCH_PENALTY: f64 = 64.0;

/// The transfer distance between two cache keys: the L1 distance of
/// their workloads' size parameters in log2 space, plus
/// [`CROSS_DEVICE_PENALTY`] when the device identities differ. `None`
/// when the keys are incomparable — different workload families (a
/// matmul frontier holds no transpose configs), different pricing
/// modes, or an unparseable key.
pub fn key_distance(a: &str, b: &str) -> Option<f64> {
    let (ka, da) = key_workload(a)?;
    let (kb, db) = key_workload(b)?;
    if ka.family() != kb.family() {
        return None;
    }
    let mut dist = 0.0;
    if let (WorkloadKind::Stencil { shape: sa, .. }, WorkloadKind::Stencil { shape: sb, .. }) =
        (&ka, &kb)
    {
        if sa != sb {
            dist += SHAPE_MISMATCH_PENALTY;
        }
    }
    for ((_, va), (_, vb)) in ka.size_params().iter().zip(kb.size_params().iter()) {
        dist += ((*va as f64).log2() - (*vb as f64).log2()).abs();
    }
    if da != db {
        dist += CROSS_DEVICE_PENALTY;
    }
    Some(dist)
}

/// The comparable candidate key nearest to `target` under
/// [`key_distance`], ties broken toward the lexicographically smaller
/// key so the choice is deterministic regardless of candidate order.
/// This is the fleet driver's transfer index: "which already-tuned key
/// should seed this search".
pub fn nearest_neighbor<'a, I>(target: &str, candidates: I) -> Option<&'a str>
where
    I: IntoIterator<Item = &'a str>,
{
    let mut best: Option<(f64, &'a str)> = None;
    for cand in candidates {
        let Some(d) = key_distance(target, cand) else {
            continue;
        };
        let better = match best {
            None => true,
            Some((bd, bk)) => d < bd || (d == bd && cand < bk),
        };
        if better {
            best = Some((d, cand));
        }
    }
    best.map(|(_, k)| k)
}

/// Serializes an [`Estimate`] (bit-exact float round trip).
pub fn estimate_to_json(e: &Estimate) -> Json {
    Json::obj([
        ("time_s", Json::num(e.time_s)),
        ("compute_s", Json::num(e.breakdown.compute_s)),
        ("dram_s", Json::num(e.breakdown.dram_s)),
        ("l2_s", Json::num(e.breakdown.l2_s)),
        ("smem_s", Json::num(e.breakdown.smem_s)),
        ("overhead_s", Json::num(e.breakdown.overhead_s)),
        ("total_s", Json::num(e.breakdown.total_s)),
        ("dram_bytes", Json::num(e.dram_bytes)),
        ("l2_bytes", Json::num(e.l2_bytes)),
        ("smem_passes", Json::num(e.smem_passes)),
        ("l2_hit_rate", Json::num(e.l2_hit_rate)),
        ("flops", Json::num(e.flops)),
        ("useful_bytes", Json::num(e.useful_bytes)),
    ])
}

/// Deserializes an [`Estimate`].
pub fn estimate_from_json(j: &Json) -> Option<Estimate> {
    let f = |k: &str| j.get(k).and_then(Json::as_f64);
    Some(Estimate {
        time_s: f("time_s")?,
        breakdown: TimeEstimate {
            compute_s: f("compute_s")?,
            dram_s: f("dram_s")?,
            l2_s: f("l2_s")?,
            smem_s: f("smem_s")?,
            overhead_s: f("overhead_s")?,
            total_s: f("total_s")?,
        },
        dram_bytes: f("dram_bytes")?,
        l2_bytes: f("l2_bytes")?,
        smem_passes: f("smem_passes")?,
        l2_hit_rate: f("l2_hit_rate")?,
        flops: f("flops")?,
        useful_bytes: f("useful_bytes")?,
    })
}

/// Serializes a [`TunedConfig`] as a tagged object.
pub fn config_to_json(c: &TunedConfig) -> Json {
    match *c {
        TunedConfig::Matmul {
            bm,
            bn,
            bk,
            schedule,
        } => {
            let (sched, p1, p2) = match schedule {
                ScheduleChoice::RowMajor => ("row-major", 0, 0),
                ScheduleChoice::Grouped { gm } => ("grouped", gm, 0),
                ScheduleChoice::Morton => ("morton", 0, 0),
                ScheduleChoice::BlockCyclic { p, b } => ("block-cyclic", p, b),
            };
            Json::obj([
                ("kind", Json::Str("matmul".into())),
                ("bm", Json::Int(bm)),
                ("bn", Json::Int(bn)),
                ("bk", Json::Int(bk)),
                ("schedule", Json::Str(sched.into())),
                ("p1", Json::Int(p1)),
                ("p2", Json::Int(p2)),
            ])
        }
        TunedConfig::Transpose { t, staging } => {
            let (name, p1, p2) = match staging {
                None => ("naive", 0, 0),
                Some(StagingChoice::Identity) => ("identity", 0, 0),
                Some(StagingChoice::Swizzle) => ("swizzle", 0, 0),
                Some(StagingChoice::ColMajor) => ("col-major", 0, 0),
                Some(StagingChoice::Antidiag) => ("antidiag", 0, 0),
                Some(StagingChoice::BlockCyclic { p, b }) => ("block-cyclic", p, b),
            };
            Json::obj([
                ("kind", Json::Str("transpose".into())),
                ("t", Json::Int(t)),
                ("staging", Json::Str(name.into())),
                ("p1", Json::Int(p1)),
                ("p2", Json::Int(p2)),
            ])
        }
        TunedConfig::Stencil { n, layout } => {
            let (name, b) = match layout {
                StencilLayoutChoice::RowMajorY => ("row-major-y", 0),
                StencilLayoutChoice::RowMajorZ => ("row-major-z", 0),
                StencilLayoutChoice::Brick { b } => ("brick", b),
            };
            Json::obj([
                ("kind", Json::Str("stencil".into())),
                ("n", Json::Int(n)),
                ("layout", Json::Str(name.into())),
                ("b", Json::Int(b)),
            ])
        }
        TunedConfig::Rowwise { op, bs } => {
            let name = match op {
                RowwiseOp::Softmax => "softmax",
                RowwiseOp::LayernormFwd => "layernorm-fwd",
                RowwiseOp::LayernormBwd => "layernorm-bwd",
            };
            Json::obj([
                ("kind", Json::Str("rowwise".into())),
                ("op", Json::Str(name.into())),
                ("bs", Json::Int(bs)),
            ])
        }
        TunedConfig::Nw { b, layout } => {
            let name = match layout {
                NwLayoutChoice::RowMajor => "row-major",
                NwLayoutChoice::Antidiag => "antidiag",
            };
            Json::obj([
                ("kind", Json::Str("nw".into())),
                ("b", Json::Int(b)),
                ("layout", Json::Str(name.into())),
            ])
        }
        TunedConfig::Lud { r, t } => Json::obj([
            ("kind", Json::Str("lud".into())),
            ("r", Json::Int(r)),
            ("t", Json::Int(t)),
        ]),
    }
}

/// Deserializes a [`TunedConfig`].
pub fn config_from_json(j: &Json) -> Option<TunedConfig> {
    let s = |k: &str| j.get(k).and_then(Json::as_str);
    let i = |k: &str| j.get(k).and_then(Json::as_i64);
    match s("kind")? {
        "matmul" => {
            let schedule = match s("schedule")? {
                "row-major" => ScheduleChoice::RowMajor,
                "grouped" => ScheduleChoice::Grouped { gm: i("p1")? },
                "morton" => ScheduleChoice::Morton,
                "block-cyclic" => ScheduleChoice::BlockCyclic {
                    p: i("p1")?,
                    b: i("p2")?,
                },
                _ => return None,
            };
            Some(TunedConfig::Matmul {
                bm: i("bm")?,
                bn: i("bn")?,
                bk: i("bk")?,
                schedule,
            })
        }
        "transpose" => {
            let staging = match s("staging")? {
                "naive" => None,
                "identity" => Some(StagingChoice::Identity),
                "swizzle" => Some(StagingChoice::Swizzle),
                "col-major" => Some(StagingChoice::ColMajor),
                "antidiag" => Some(StagingChoice::Antidiag),
                "block-cyclic" => Some(StagingChoice::BlockCyclic {
                    p: i("p1")?,
                    b: i("p2")?,
                }),
                _ => return None,
            };
            Some(TunedConfig::Transpose {
                t: i("t")?,
                staging,
            })
        }
        "stencil" => {
            let layout = match s("layout")? {
                "row-major-y" => StencilLayoutChoice::RowMajorY,
                "row-major-z" => StencilLayoutChoice::RowMajorZ,
                "brick" => StencilLayoutChoice::Brick { b: i("b")? },
                _ => return None,
            };
            Some(TunedConfig::Stencil { n: i("n")?, layout })
        }
        "rowwise" => {
            let op = match s("op")? {
                "softmax" => RowwiseOp::Softmax,
                "layernorm-fwd" => RowwiseOp::LayernormFwd,
                "layernorm-bwd" => RowwiseOp::LayernormBwd,
                _ => return None,
            };
            Some(TunedConfig::Rowwise { op, bs: i("bs")? })
        }
        "nw" => {
            let layout = match s("layout")? {
                "row-major" => NwLayoutChoice::RowMajor,
                "antidiag" => NwLayoutChoice::Antidiag,
                _ => return None,
            };
            Some(TunedConfig::Nw { b: i("b")?, layout })
        }
        "lud" => Some(TunedConfig::Lud {
            r: i("r")?,
            t: i("t")?,
        }),
        _ => None,
    }
}

fn tuning_to_json(t: &CachedTuning) -> Json {
    Json::obj([
        ("config", config_to_json(&t.config)),
        (
            "expr_variant",
            match t.expr_variant {
                None => Json::Null,
                Some(Variant::Unexpanded) => Json::Str("unexpanded".into()),
                Some(Variant::Expanded) => Json::Str("expanded".into()),
            },
        ),
        (
            "index_ops",
            match t.index_ops {
                None => Json::Null,
                Some(v) => Json::Int(v as i64),
            },
        ),
        ("naive", estimate_to_json(&t.naive)),
        ("tuned", estimate_to_json(&t.tuned)),
        ("evaluated", Json::Int(t.evaluated as i64)),
        ("strategy", Json::Str(t.strategy.clone())),
        (
            "budget",
            match t.budget {
                None => Json::Null,
                Some(v) => Json::Int(v as i64),
            },
        ),
        ("space", Json::Str(t.space.clone())),
        (
            "frontier",
            Json::Arr(
                t.frontier
                    .iter()
                    .map(|(c, time_s)| {
                        Json::obj([
                            ("config", config_to_json(c)),
                            ("time_s", Json::num(*time_s)),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

fn tuning_from_json(j: &Json) -> Option<CachedTuning> {
    let expr_variant = match j.get("expr_variant")? {
        Json::Null => None,
        Json::Str(s) if s == "unexpanded" => Some(Variant::Unexpanded),
        Json::Str(s) if s == "expanded" => Some(Variant::Expanded),
        _ => return None,
    };
    let frontier = j
        .get("frontier")?
        .as_arr()?
        .iter()
        .map(|e| {
            Some((
                config_from_json(e.get("config")?)?,
                e.get("time_s")?.as_f64()?,
            ))
        })
        .collect::<Option<Vec<_>>>()?;
    Some(CachedTuning {
        config: config_from_json(j.get("config")?)?,
        expr_variant,
        index_ops: j
            .get("index_ops")
            .and_then(Json::as_i64)
            .map(|v| v as usize),
        naive: estimate_from_json(j.get("naive")?)?,
        tuned: estimate_from_json(j.get("tuned")?)?,
        evaluated: j.get("evaluated")?.as_i64()? as usize,
        strategy: j.get("strategy")?.as_str()?.to_string(),
        budget: j.get("budget").and_then(Json::as_i64).map(|v| v as usize),
        space: j.get("space")?.as_str()?.to_string(),
        frontier,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_estimate(seed: f64) -> Estimate {
        Estimate {
            time_s: 1.23e-3 * seed,
            breakdown: TimeEstimate {
                compute_s: 0.1 * seed,
                dram_s: 0.2 * seed,
                l2_s: 0.3 / seed,
                smem_s: 0.0,
                overhead_s: 8e-6,
                total_s: 1.23e-3 * seed,
            },
            dram_bytes: 1e9 / seed,
            l2_bytes: 3e9,
            smem_passes: 42.0,
            l2_hit_rate: 0.875,
            flops: 2.0 * seed.powi(3),
            useful_bytes: 6.7e8,
        }
    }

    #[test]
    fn estimate_json_round_trips_exactly() {
        let e = sample_estimate(7.77);
        let back = estimate_from_json(&estimate_to_json(&e)).unwrap();
        assert_eq!(back, e);
        // Through text, too.
        let text = estimate_to_json(&e).render();
        let back = estimate_from_json(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(back, e);
    }

    #[test]
    fn config_json_round_trips() {
        let configs = [
            TunedConfig::Matmul {
                bm: 128,
                bn: 64,
                bk: 32,
                schedule: ScheduleChoice::BlockCyclic { p: 8, b: 2 },
            },
            TunedConfig::Transpose {
                t: 32,
                staging: Some(StagingChoice::Antidiag),
            },
            TunedConfig::Transpose {
                t: 16,
                staging: None,
            },
            TunedConfig::Stencil {
                n: 64,
                layout: StencilLayoutChoice::Brick { b: 8 },
            },
            TunedConfig::Rowwise {
                op: RowwiseOp::Softmax,
                bs: 1024,
            },
            TunedConfig::Nw {
                b: 64,
                layout: NwLayoutChoice::Antidiag,
            },
            TunedConfig::Nw {
                b: 16,
                layout: NwLayoutChoice::RowMajor,
            },
            TunedConfig::Lud { r: 4, t: 16 },
        ];
        for c in configs {
            assert_eq!(config_from_json(&config_to_json(&c)), Some(c));
        }
    }

    #[test]
    fn cache_key_separates_occupancy_limits() {
        // The occupancy limits decide winners, so a config differing
        // only in them must not share a key with the stock A100.
        let a = gpu_sim::a100();
        let mut tweaked = a.clone();
        tweaked.smem_per_sm = gpu_sim::h100().smem_per_sm;
        assert_ne!(
            cache_key("nw(n=3584,b=16)", "additive-launch", &a),
            cache_key("nw(n=3584,b=16)", "additive-launch", &tweaked)
        );
    }

    #[test]
    fn cache_key_separates_devices_and_modes() {
        // Every device pair must key apart (warp-64 geometry included),
        // and the same workload priced under another mode must miss.
        let (a, h, m) = (gpu_sim::a100(), gpu_sim::h100(), gpu_sim::mi300());
        let keys: Vec<String> = [&a, &h, &m]
            .iter()
            .map(|g| cache_key("nw(n=2048,b=16)", "additive-launch", g))
            .collect();
        assert_ne!(keys[0], keys[1]);
        assert_ne!(keys[0], keys[2]);
        assert_ne!(keys[1], keys[2]);
        assert_ne!(
            cache_key("nw(n=2048,b=16)", "additive-launch", &a),
            cache_key("nw(n=2048,b=16)", "roofline", &a)
        );
        // Warp size alone must split keys even if everything else ties.
        let mut wide = a.clone();
        wide.warp_size = 64;
        assert_ne!(
            cache_key("matmul(n=2048)", "roofline", &a),
            cache_key("matmul(n=2048)", "roofline", &wide)
        );
    }

    #[test]
    fn v2_documents_are_invalidated_wholesale() {
        // A handcrafted v2 document (the PR 2 on-disk shape: no
        // strategy/budget/space/frontier fields) must read as empty
        // under the current schema — stale winners cached by the old
        // exhaustive search can never be served against the new
        // estimate semantics.
        let dir = std::env::temp_dir().join(format!("lego-cache-v2v3-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("v2.json");
        let v2_entry = Json::obj([
            ("config", config_to_json(&TunedConfig::Lud { r: 2, t: 16 })),
            ("expr_variant", Json::Null),
            ("index_ops", Json::Null),
            ("naive", estimate_to_json(&sample_estimate(1.0))),
            ("tuned", estimate_to_json(&sample_estimate(0.5))),
            ("evaluated", Json::Int(4)),
        ]);
        let doc = Json::obj([
            ("version", Json::Int(2)),
            ("entries", Json::Obj(vec![("k".to_string(), v2_entry)])),
        ]);
        std::fs::write(&path, doc.render_pretty()).unwrap();

        let cache = TuningCache::new(&path);
        assert_eq!(cache.lookup("k"), None, "v2 entries must not be served");

        // The next store rewrites the document under v3 and drops the
        // stale entry wholesale.
        let entry = CachedTuning {
            config: TunedConfig::Lud { r: 4, t: 16 },
            expr_variant: None,
            index_ops: None,
            naive: sample_estimate(1.0),
            tuned: sample_estimate(0.25),
            evaluated: 40,
            strategy: "genetic".to_string(),
            budget: Some(128),
            space: "enlarged".to_string(),
            frontier: vec![(TunedConfig::Lud { r: 4, t: 16 }, 0.25)],
        };
        cache.store("k2", &entry).unwrap();
        assert_eq!(cache.lookup("k2"), Some(entry));
        assert_eq!(cache.lookup("k"), None);
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(
            text.contains(&format!("\"version\": {CACHE_SCHEMA_VERSION}")),
            "rewritten under the current schema"
        );

        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_dir(&dir);
    }

    #[test]
    fn concurrent_stores_drop_no_entries() {
        // The pre-fix `store()` was a bare read-modify-write of the
        // whole document: two racing writers would each load the same
        // snapshot and the slower one would erase the faster one's
        // entry. Hammer one file from many threads — half writing one
        // key at a time, half in `store_many` batches, so the two write
        // paths interleave on one document — and require every entry to
        // survive.
        // The memo sidecar shares the same atomic write path
        // (`lego_expr::atomicfile`), so the same race must not lose
        // sidecar entries either: every thread also merges one distinct
        // annotation into a shared sidecar file.
        let dir = std::env::temp_dir().join(format!("lego-cache-conc-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("concurrent.json");
        let sidecar_path = dir.join("concurrent-sidecar.txt");
        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_file(&sidecar_path);

        const THREADS: usize = 8;
        const PER_THREAD: usize = 6;
        let barrier = std::sync::Arc::new(std::sync::Barrier::new(THREADS));
        let handles: Vec<_> = (0..THREADS)
            .map(|t| {
                let path = path.clone();
                let sidecar_path = sidecar_path.clone();
                let barrier = barrier.clone();
                std::thread::spawn(move || {
                    let cache = TuningCache::new(&path);
                    let entry_for = |t: usize, i: usize| CachedTuning {
                        config: TunedConfig::Lud {
                            r: (t + 1) as i64,
                            t: 16,
                        },
                        expr_variant: None,
                        index_ops: None,
                        naive: sample_estimate(1.0),
                        tuned: sample_estimate(0.5),
                        evaluated: i,
                        strategy: "exhaustive".to_string(),
                        budget: None,
                        space: "legacy".to_string(),
                        frontier: vec![],
                    };
                    barrier.wait();
                    let mut sc = lego_expr::Sidecar::new();
                    sc.set_annotation(&format!("conc-{t}"), "v");
                    sc.save(&sidecar_path).unwrap();
                    if t % 2 == 0 {
                        // Batched writers: all keys in one merged write
                        // (the fleet driver's end-of-run path).
                        let batch: Vec<(String, CachedTuning)> = (0..PER_THREAD)
                            .map(|i| (format!("k-{t}-{i}"), entry_for(t, i)))
                            .collect();
                        cache.store_many(&batch).unwrap();
                        assert!(
                            cache.lookup(&format!("k-{t}-0")).is_some(),
                            "reader observed a torn or clobbered document"
                        );
                    } else {
                        for i in 0..PER_THREAD {
                            cache
                                .store(&format!("k-{t}-{i}"), &entry_for(t, i))
                                .unwrap();
                            // Interleave a read: the atomic rename means
                            // a reader can never see a torn document
                            // (which `load` would silently treat as
                            // empty).
                            assert!(
                                cache.lookup(&format!("k-{t}-0")).is_some(),
                                "reader observed a torn or clobbered document"
                            );
                        }
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }

        let cache = TuningCache::new(&path);
        let entries = cache.entries();
        assert_eq!(
            entries.len(),
            THREADS * PER_THREAD,
            "concurrent stores dropped entries"
        );
        for t in 0..THREADS {
            for i in 0..PER_THREAD {
                assert!(
                    cache.lookup(&format!("k-{t}-{i}")).is_some(),
                    "entry k-{t}-{i} lost"
                );
            }
        }
        // Every thread's sidecar merge survived the same race.
        let sc = lego_expr::Sidecar::load(&sidecar_path);
        for t in 0..THREADS {
            assert!(
                sc.annotations().any(|(k, _)| k == format!("conc-{t}")),
                "sidecar annotation conc-{t} lost"
            );
        }
        // No tempfiles left behind.
        let leftovers: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name().to_string_lossy().contains(".tmp."))
            .collect();
        assert!(leftovers.is_empty(), "stale tempfiles: {leftovers:?}");

        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_file(&sidecar_path);
        let _ = std::fs::remove_dir(&dir);
    }

    #[test]
    fn mismatched_schema_version_invalidates_the_document() {
        let dir = std::env::temp_dir().join(format!("lego-cache-ver-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("versioned.json");
        let cache = TuningCache::new(&path);
        let entry = CachedTuning {
            config: TunedConfig::Lud { r: 2, t: 16 },
            expr_variant: None,
            index_ops: None,
            naive: sample_estimate(1.0),
            tuned: sample_estimate(0.5),
            evaluated: 4,
            strategy: "anneal".to_string(),
            budget: Some(64),
            space: "enlarged".to_string(),
            frontier: vec![
                (TunedConfig::Lud { r: 2, t: 16 }, 0.5),
                (TunedConfig::Lud { r: 4, t: 16 }, 0.75),
            ],
        };
        cache.store("k", &entry).unwrap();
        assert_eq!(cache.lookup("k"), Some(entry.clone()));

        // Rewrite the document under an older version: every entry is
        // invalidated, and the next store starts a fresh document.
        let text = std::fs::read_to_string(&path).unwrap();
        let stale = text.replacen(
            &format!("\"version\": {CACHE_SCHEMA_VERSION}"),
            "\"version\": 1",
            1,
        );
        assert_ne!(text, stale, "version field must be present");
        std::fs::write(&path, stale).unwrap();
        assert_eq!(cache.lookup("k"), None);

        // A document with no version at all is also discarded.
        std::fs::write(&path, "{\"entries\": {}}").unwrap();
        assert_eq!(cache.lookup("k"), None);

        cache.store("k2", &entry).unwrap();
        assert_eq!(cache.lookup("k2"), Some(entry));
        assert_eq!(cache.lookup("k"), None, "stale entries dropped on store");

        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_dir(&dir);
    }

    #[test]
    fn store_many_merges_in_batch_order() {
        let dir = std::env::temp_dir().join(format!("lego-cache-many-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("many.json");
        let _ = std::fs::remove_file(&path);
        let cache = TuningCache::new(&path);

        let entry = |evaluated: usize| CachedTuning {
            config: TunedConfig::Lud { r: 2, t: 16 },
            expr_variant: None,
            index_ops: None,
            naive: sample_estimate(1.0),
            tuned: sample_estimate(0.5),
            evaluated,
            strategy: "anneal".to_string(),
            budget: Some(64),
            space: "enlarged".to_string(),
            frontier: vec![],
        };

        // An empty batch never creates the file.
        cache.store_many(&[]).unwrap();
        assert!(!path.exists(), "empty batch must not touch the file");

        // One write, several keys; a later duplicate in the batch wins
        // (matching what sequential stores would have produced).
        cache
            .store_many(&[
                ("a".to_string(), entry(1)),
                ("b".to_string(), entry(2)),
                ("a".to_string(), entry(3)),
            ])
            .unwrap();
        assert_eq!(cache.lookup("a").unwrap().evaluated, 3);
        assert_eq!(cache.lookup("b").unwrap().evaluated, 2);

        // A second batch merges into (not replaces) the document.
        cache.store_many(&[("c".to_string(), entry(4))]).unwrap();
        assert_eq!(cache.entries().len(), 3);
        assert_eq!(cache.lookup("a").unwrap().evaluated, 3);

        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_dir(&dir);
    }

    #[test]
    fn key_distance_orders_by_size_then_device() {
        let (a, h) = (gpu_sim::a100(), gpu_sim::h100());
        let key = |n: i64, gpu: &GpuConfig| cache_key(&format!("matmul(n={n})"), "roofline", gpu);
        let target = key(1024, &a);
        // Same device: one octave is distance 1, two octaves 2.
        assert_eq!(key_distance(&target, &key(2048, &a)), Some(1.0));
        assert_eq!(key_distance(&target, &key(512, &a)), Some(1.0));
        assert_eq!(key_distance(&target, &key(4096, &a)), Some(2.0));
        assert_eq!(key_distance(&target, &target), Some(0.0));
        // Cross-device exact size costs exactly the penalty.
        assert_eq!(
            key_distance(&target, &key(1024, &h)),
            Some(CROSS_DEVICE_PENALTY)
        );
        // Other families are incomparable, not merely distant.
        assert_eq!(
            key_distance(&target, &cache_key("transpose(n=1024)", "roofline", &a)),
            None
        );
        assert_eq!(key_distance(&target, "garbage-key"), None);

        // Nearest-neighbor: same-device octave beats cross-device exact
        // size; incomparable candidates are skipped; ties break toward
        // the lexicographically smaller key.
        let candidates = [
            key(1024, &h),
            key(2048, &a),
            cache_key("transpose(n=1024)", "roofline", &a),
        ];
        assert_eq!(
            nearest_neighbor(&target, candidates.iter().map(String::as_str)),
            Some(candidates[1].as_str())
        );
        let tie = [key(2048, &a), key(512, &a)];
        let expect = tie.iter().map(String::as_str).min().unwrap();
        assert_eq!(
            nearest_neighbor(&target, tie.iter().map(String::as_str)),
            Some(expect)
        );
        assert_eq!(nearest_neighbor(&target, ["garbage"]), None);
    }
}
