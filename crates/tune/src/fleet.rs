//! Fleet-scale tuning: a work-stealing driver that tunes a whole grid
//! of `(workload, size, device)` keys with cross-key frontier transfer.
//!
//! Pre-tuning a model zoo is embarrassingly parallel *and* highly
//! self-similar: `matmul(n=4096)` on an A100 is one unit-lattice hop
//! away from `matmul(n=2048)`'s winner, and the schema-v4 cache already
//! persists each search's top-k frontier. The [`FleetDriver`] exploits
//! both:
//!
//! * **Parallelism** — a fixed pool of worker threads pulls keys from
//!   per-worker deques and steals from siblings when idle. Each worker
//!   keeps its thread-local expression arena warm across every key it
//!   tunes (the same per-thread-arena economics `lego-served` relies
//!   on), and all results land in a sharded in-memory map with a
//!   *single* merged [`TuningCache::store_many`] write at the end —
//!   one document rewrite instead of one per key.
//! * **Transfer** — before a key falls back to a cold search, it seeds
//!   from the frontier of the *nearest already-tuned key* in its
//!   `(family, device)` class under [`crate::cache::key_distance`]
//!   (size distance in log2 space, cross-device fallback at a penalty).
//!   Completed keys feed the in-memory index as the run progresses, so
//!   late keys in a sweep transfer from early ones, and a transferred
//!   search runs at a fraction of the cold budget
//!   ([`TRANSFER_BUDGET_DIVISOR`]) because its seeds already contain a
//!   near-winner.
//!
//! Determinism: each key's transfer source is fixed *before* the run —
//! the nearest earlier-in-grid key by distance, not "whatever happened
//! to finish first" — and keys only become runnable once their source
//! completed. Every search is a pure function of `(key, knobs, seeds)`,
//! so a fleet's results are bit-identical across thread counts and
//! scheduling orders (asserted by the determinism tests).

use std::collections::{BTreeMap, HashMap, VecDeque};
use std::fmt;
use std::sync::{Condvar, Mutex};
use std::time::Instant;

use gpu_sim::score::Estimate;
use gpu_sim::GpuConfig;
use lego_codegen::cuda::stencil::StencilShape;
use lego_codegen::tuning::{RowwiseOp, TunedConfig};

use crate::cache::{config_to_json, nearest_neighbor, CachedTuning, TuningCache};
use crate::domain::{Domain, SpaceScale};
use crate::json::Json;
use crate::request::TuneRequest;
use crate::rng::fnv1a;
use crate::space::WorkloadKind;
use crate::strategy::{Budget, Strategy};

/// A transferred search runs at `cold_budget / TRANSFER_BUDGET_DIVISOR`
/// (floored at [`TRANSFER_MIN_EVALS`]): its seeds already contain a
/// near-winner, so the remaining budget only has to polish, and the cut
/// is where the fleet's keys/second win comes from.
pub const TRANSFER_BUDGET_DIVISOR: usize = 4;

/// Floor of the transferred budget, so even aggressive divisors leave
/// room to evaluate the seeds plus a polish neighborhood. Never raises
/// a budget above the cold one.
pub const TRANSFER_MIN_EVALS: usize = 32;

/// Shard count of the in-memory result map (bounds lock contention
/// between workers completing keys concurrently).
const SHARDS: usize = 16;

/// Row count of the rowwise workloads a [`FleetSpec`] expands to (the
/// tuned knob is the column block size; `m` only scales the trace).
pub const FLEET_ROWWISE_M: i64 = 256;

/// Baseline NW / LUD block size used by [`FleetSpec`] expansion (the
/// Rodinia default).
const FLEET_BASELINE_BLOCK: i64 = 16;

// ---------------------------------------------------------------------
// Grid specs
// ---------------------------------------------------------------------

/// A workload family a [`FleetSpec`] group can name.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum FleetFamily {
    /// Square FP16 GEMM.
    Matmul,
    /// Square FP32 transpose.
    Transpose,
    /// 3-D stencil of the given shape.
    Stencil(StencilShape),
    /// Needleman–Wunsch wavefront (baseline block 16).
    Nw,
    /// LU decomposition (baseline block 16).
    Lud,
    /// Row-wise streaming operator over [`FLEET_ROWWISE_M`] rows.
    Rowwise(RowwiseOp),
}

impl FleetFamily {
    fn parse(s: &str) -> Result<FleetFamily, String> {
        match s {
            "matmul" => Ok(FleetFamily::Matmul),
            "transpose" => Ok(FleetFamily::Transpose),
            "nw" => Ok(FleetFamily::Nw),
            "lud" => Ok(FleetFamily::Lud),
            "softmax" | "rowwise" => Ok(FleetFamily::Rowwise(RowwiseOp::Softmax)),
            "layernorm-fwd" => Ok(FleetFamily::Rowwise(RowwiseOp::LayernormFwd)),
            "layernorm-bwd" => Ok(FleetFamily::Rowwise(RowwiseOp::LayernormBwd)),
            "stencil" => Ok(FleetFamily::Stencil(StencilShape::Star(1))),
            other => match other.strip_prefix("stencil-").and_then(StencilShape::parse) {
                Some(shape) => Ok(FleetFamily::Stencil(shape)),
                None => Err(format!(
                    "unknown fleet family {other:?} (use matmul|transpose|stencil[-<shape>]|nw|lud|\
                     softmax|layernorm-fwd|layernorm-bwd|rowwise)"
                )),
            },
        }
    }

    /// The workload instance of this family at size `n`.
    pub fn kind(self, n: i64) -> WorkloadKind {
        match self {
            FleetFamily::Matmul => WorkloadKind::Matmul { n },
            FleetFamily::Transpose => WorkloadKind::Transpose { n },
            FleetFamily::Stencil(shape) => WorkloadKind::Stencil { shape, n },
            FleetFamily::Nw => WorkloadKind::Nw {
                n,
                b: FLEET_BASELINE_BLOCK,
            },
            FleetFamily::Lud => WorkloadKind::Lud {
                n,
                bs: FLEET_BASELINE_BLOCK,
            },
            FleetFamily::Rowwise(op) => WorkloadKind::Rowwise {
                op,
                m: FLEET_ROWWISE_M,
                n,
            },
        }
    }
}

impl fmt::Display for FleetFamily {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FleetFamily::Matmul => f.write_str("matmul"),
            FleetFamily::Transpose => f.write_str("transpose"),
            FleetFamily::Stencil(shape) => write!(f, "stencil-{}", shape.name()),
            FleetFamily::Nw => f.write_str("nw"),
            FleetFamily::Lud => f.write_str("lud"),
            FleetFamily::Rowwise(op) => f.write_str(op.tag()),
        }
    }
}

/// One geometric size sweep of one family: `lo, lo·step, … ≤ hi`.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct FleetGroup {
    /// The workload family.
    pub family: FleetFamily,
    /// First size of the sweep.
    pub lo: i64,
    /// Inclusive upper bound of the sweep.
    pub hi: i64,
    /// Geometric step (≥ 2; a single-size group has `lo == hi`).
    pub step: i64,
}

impl FleetGroup {
    /// The sweep's sizes in ascending order.
    pub fn sizes(&self) -> Vec<i64> {
        let mut out = Vec::new();
        let mut n = self.lo;
        while n <= self.hi {
            out.push(n);
            match n.checked_mul(self.step) {
                Some(next) => n = next,
                None => break,
            }
        }
        out
    }
}

impl fmt::Display for FleetGroup {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.lo == self.hi {
            write!(f, "{}:{}", self.family, self.lo)
        } else {
            write!(f, "{}:{}..{}x{}", self.family, self.lo, self.hi, self.step)
        }
    }
}

/// A parsed fleet grid: comma-separated family sweeps, optionally
/// pinned to a device list.
///
/// ```text
/// matmul:512..4096x2,softmax:1k..64k@a100,h100
/// ```
///
/// means "matmul at 512, 1024, …, 4096 and softmax rows of 1024…65536
/// columns, each on both the A100 and the H100". Sizes take a `k`
/// suffix (×1024); the step after `x` defaults to 2; with no `@` the
/// driver's default device is used. The rendering round-trips
/// ([`fmt::Display`] prints the canonical form, which re-parses to an
/// equal spec).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct FleetSpec {
    /// The family sweeps, in spec order.
    pub groups: Vec<FleetGroup>,
    /// Canonical device tags (empty = caller's default device).
    pub devices: Vec<String>,
}

fn parse_size(s: &str) -> Result<i64, String> {
    let (digits, mult) = match s.strip_suffix(['k', 'K']) {
        Some(d) => (d, 1024),
        None => (s, 1),
    };
    let v: i64 = digits
        .parse()
        .map_err(|_| format!("bad size {s:?} (use e.g. 512 or 4k)"))?;
    if v <= 0 {
        return Err(format!("size {s:?} must be positive"));
    }
    v.checked_mul(mult)
        .ok_or_else(|| format!("size {s:?} overflows"))
}

impl FleetSpec {
    /// Parses a grid spec (see the type docs for the syntax).
    ///
    /// # Errors
    ///
    /// Describes the malformed fragment: unknown family or device, bad
    /// size or step, empty spec.
    pub fn parse(s: &str) -> Result<FleetSpec, String> {
        let s = s.trim();
        let (body, device_list) = match s.split_once('@') {
            Some((b, d)) => (b, Some(d)),
            None => (s, None),
        };
        let mut devices = Vec::new();
        if let Some(list) = device_list {
            for tag in list.split(',') {
                let tag = tag.trim();
                let dev = gpu_sim::lookup(tag).ok_or_else(|| {
                    format!(
                        "unknown device {tag:?} (use {})",
                        gpu_sim::DEVICE_TAGS.join("|")
                    )
                })?;
                if !devices.contains(&dev.tag.to_string()) {
                    devices.push(dev.tag.to_string());
                }
            }
        }
        let mut groups = Vec::new();
        for part in body.split(',') {
            let part = part.trim();
            if part.is_empty() {
                continue;
            }
            let (family, range) = part
                .split_once(':')
                .ok_or_else(|| format!("malformed group {part:?}: expected family:sizes"))?;
            let family = FleetFamily::parse(family.trim())?;
            let (lo, hi, step) = match range.split_once("..") {
                None => {
                    let n = parse_size(range.trim())?;
                    (n, n, 2)
                }
                Some((lo, rest)) => {
                    let (hi, step) = match rest.split_once('x') {
                        None => (parse_size(rest.trim())?, 2),
                        Some((hi, step)) => {
                            let step: i64 = step
                                .trim()
                                .parse()
                                .map_err(|_| format!("bad step in {part:?}"))?;
                            (parse_size(hi.trim())?, step)
                        }
                    };
                    (parse_size(lo.trim())?, hi, step)
                }
            };
            if step < 2 {
                return Err(format!("group {part:?}: step must be ≥ 2"));
            }
            if hi < lo {
                return Err(format!("group {part:?}: upper bound below lower"));
            }
            groups.push(FleetGroup {
                family,
                lo,
                hi,
                step,
            });
        }
        if groups.is_empty() {
            return Err("empty fleet spec (expected family:sizes[,...][@devices])".to_string());
        }
        Ok(FleetSpec { groups, devices })
    }

    /// Number of keys the spec expands to.
    pub fn len(&self) -> usize {
        let per_device: usize = self.groups.iter().map(|g| g.sizes().len()).sum();
        per_device * self.devices.len().max(1)
    }

    /// Whether the spec expands to no keys (never true for a parsed
    /// spec; groups reject empty sweeps).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Expands the spec into concrete requests, every key carrying the
    /// given search knobs. Order is deterministic — per group, per
    /// device, sizes ascending — which is also the transfer topology:
    /// each key's nearest earlier sibling is its warm-start source.
    pub fn requests(
        &self,
        default_device: &GpuConfig,
        strategy: Strategy,
        budget: Budget,
        space: Option<SpaceScale>,
    ) -> Vec<TuneRequest> {
        let devices: Vec<GpuConfig> = if self.devices.is_empty() {
            vec![default_device.clone()]
        } else {
            self.devices
                .iter()
                .map(|t| gpu_sim::lookup(t).expect("tags validated at parse time"))
                .collect()
        };
        let mut out = Vec::new();
        for group in &self.groups {
            for device in &devices {
                for n in group.sizes() {
                    out.push(TuneRequest {
                        kind: group.family.kind(n),
                        device: device.clone(),
                        strategy,
                        budget,
                        space,
                    });
                }
            }
        }
        out
    }
}

impl fmt::Display for FleetSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, g) in self.groups.iter().enumerate() {
            if i > 0 {
                f.write_str(",")?;
            }
            write!(f, "{g}")?;
        }
        if !self.devices.is_empty() {
            write!(f, "@{}", self.devices.join(","))?;
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------
// Reports
// ---------------------------------------------------------------------

/// The per-key payload of a completed fleet search or cache hit.
#[derive(Clone, Debug)]
pub struct FleetTuned {
    /// The winning configuration.
    pub config: TunedConfig,
    /// Estimate of the hand-picked default.
    pub naive: Estimate,
    /// Estimate of the winner.
    pub tuned: Estimate,
    /// Unique configurations scored (0 on a cache hit).
    pub evaluated: usize,
    /// 1-based index of the evaluation that first scored the winner
    /// (0 on a cache hit).
    pub evals_to_winner: usize,
    /// The budget the search actually ran under (`None` for exhaustive
    /// and cache hits) — reduced from the request's on a transfer.
    pub budget: Option<usize>,
    /// Evaluations the transfer saved versus the request's cold budget.
    pub evals_saved: usize,
    /// Whether the key was satisfied straight from the result map.
    pub from_cache: bool,
}

/// One grid key's outcome.
#[derive(Clone, Debug)]
pub struct FleetKeyReport {
    /// The request this key ran.
    pub request: TuneRequest,
    /// Its schema-v4 cache key.
    pub cache_key: String,
    /// The outcome (an error never aborts the fleet; dependents of a
    /// failed key fall back to cold starts).
    pub result: Result<FleetTuned, String>,
    /// `workload@device` label of the key whose frontier seeded this
    /// search (`None` for cold starts, cache hits, and same-key warm
    /// restarts).
    pub transferred_from: Option<String>,
    /// Warm-start configs offered to the search (before domain
    /// filtering).
    pub seeds: usize,
    /// Which worker ran the key.
    pub worker: usize,
    /// Wall-clock seconds this key took on its worker.
    pub elapsed_s: f64,
}

impl FleetKeyReport {
    /// The request class (`family@devicetag`) for metrics aggregation.
    pub fn class(&self) -> String {
        self.request.class()
    }

    /// One bench/wire row for this key.
    pub fn to_json(&self) -> Json {
        let mut pairs = vec![
            ("workload".to_string(), Json::Str(self.request.kind.name())),
            (
                "device".to_string(),
                Json::Str(self.request.device.tag.to_string()),
            ),
            ("class".to_string(), Json::Str(self.class())),
            (
                "transferred_from".to_string(),
                match &self.transferred_from {
                    None => Json::Null,
                    Some(src) => Json::Str(src.clone()),
                },
            ),
            ("seeds".to_string(), Json::Int(self.seeds as i64)),
            ("worker".to_string(), Json::Int(self.worker as i64)),
            ("elapsed_s".to_string(), Json::num(self.elapsed_s)),
        ];
        match &self.result {
            Ok(t) => {
                pairs.push(("ok".to_string(), Json::Bool(true)));
                pairs.push(("config".to_string(), config_to_json(&t.config)));
                pairs.push(("naive_s".to_string(), Json::num(t.naive.time_s)));
                pairs.push(("tuned_s".to_string(), Json::num(t.tuned.time_s)));
                pairs.push((
                    "speedup".to_string(),
                    Json::num(t.naive.time_s / t.tuned.time_s),
                ));
                pairs.push(("evaluated".to_string(), Json::Int(t.evaluated as i64)));
                pairs.push((
                    "evals_to_winner".to_string(),
                    Json::Int(t.evals_to_winner as i64),
                ));
                pairs.push((
                    "budget".to_string(),
                    match t.budget {
                        None => Json::Null,
                        Some(b) => Json::Int(b as i64),
                    },
                ));
                pairs.push(("evals_saved".to_string(), Json::Int(t.evals_saved as i64)));
                pairs.push(("from_cache".to_string(), Json::Bool(t.from_cache)));
            }
            Err(e) => {
                pairs.push(("ok".to_string(), Json::Bool(false)));
                pairs.push(("error".to_string(), Json::Str(e.clone())));
            }
        }
        Json::Obj(pairs)
    }
}

/// Aggregated fleet counters (whole-run or per request class).
#[derive(Clone, Copy, Default, Debug, PartialEq, Eq)]
pub struct FleetCounters {
    /// Keys tuned (completed, successfully or not).
    pub keys: u64,
    /// Keys served straight from the preloaded cache / earlier result.
    pub cache_hits: u64,
    /// Fresh searches run.
    pub searched: u64,
    /// Searches seeded from a *different* key's frontier.
    pub transfers: u64,
    /// Total unique configurations scored.
    pub evals_total: u64,
    /// Sum of evals-to-winner over fresh searches.
    pub evals_to_winner_total: u64,
    /// Evaluations saved by transfer budget cuts versus cold budgets.
    pub evals_saved: u64,
    /// Keys whose search failed.
    pub errors: u64,
}

impl FleetCounters {
    fn absorb(&mut self, key: &FleetKeyReport) {
        self.keys += 1;
        match &key.result {
            Ok(t) if t.from_cache => self.cache_hits += 1,
            Ok(t) => {
                self.searched += 1;
                if key.transferred_from.is_some() {
                    self.transfers += 1;
                }
                self.evals_total += t.evaluated as u64;
                self.evals_to_winner_total += t.evals_to_winner as u64;
                self.evals_saved += t.evals_saved as u64;
            }
            Err(_) => self.errors += 1,
        }
    }

    /// Accumulates another counter set (how `lego-served` aggregates
    /// fleet runs into its live metrics).
    pub fn merge(&mut self, other: &FleetCounters) {
        self.keys += other.keys;
        self.cache_hits += other.cache_hits;
        self.searched += other.searched;
        self.transfers += other.transfers;
        self.evals_total += other.evals_total;
        self.evals_to_winner_total += other.evals_to_winner_total;
        self.evals_saved += other.evals_saved;
        self.errors += other.errors;
    }

    /// Mean evaluations to the winner over fresh searches (0 when none
    /// ran).
    pub fn mean_evals_to_winner(&self) -> f64 {
        if self.searched == 0 {
            0.0
        } else {
            self.evals_to_winner_total as f64 / self.searched as f64
        }
    }

    /// The counters as a JSON object (the shape `lego-served`'s
    /// `metrics` verb embeds per class).
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("keys_tuned", Json::Int(self.keys as i64)),
            ("cache_hits", Json::Int(self.cache_hits as i64)),
            ("searched", Json::Int(self.searched as i64)),
            ("transfer_hits", Json::Int(self.transfers as i64)),
            ("evals_total", Json::Int(self.evals_total as i64)),
            ("evals_saved", Json::Int(self.evals_saved as i64)),
            ("errors", Json::Int(self.errors as i64)),
        ])
    }
}

/// The outcome of one [`FleetDriver::run`].
#[derive(Clone, Debug)]
pub struct FleetReport {
    /// Per-key outcomes, in grid order.
    pub keys: Vec<FleetKeyReport>,
    /// Worker threads the run used.
    pub threads: usize,
    /// Whether transfer was enabled.
    pub transfer: bool,
    /// Keys a worker stole from a sibling's deque.
    pub steals: u64,
    /// End-to-end wall-clock seconds.
    pub elapsed_s: f64,
}

impl FleetReport {
    /// End-to-end keys per second.
    pub fn keys_per_s(&self) -> f64 {
        self.keys.len() as f64 / self.elapsed_s.max(1e-12)
    }

    /// Whole-run counters.
    pub fn counters(&self) -> FleetCounters {
        let mut c = FleetCounters::default();
        for k in &self.keys {
            c.absorb(k);
        }
        c
    }

    /// Counters aggregated per request class (`family@devicetag`).
    pub fn class_counters(&self) -> BTreeMap<String, FleetCounters> {
        let mut out: BTreeMap<String, FleetCounters> = BTreeMap::new();
        for k in &self.keys {
            out.entry(k.class()).or_default().absorb(k);
        }
        out
    }

    /// The run summary as a JSON object (the shape `BENCH_fleet.json`
    /// and the `fleet` verb's response carry).
    pub fn summary_json(&self) -> Json {
        let c = self.counters();
        Json::obj([
            ("keys", Json::Int(self.keys.len() as i64)),
            ("threads", Json::Int(self.threads as i64)),
            ("transfer", Json::Bool(self.transfer)),
            ("elapsed_s", Json::num(self.elapsed_s)),
            ("keys_per_s", Json::num(self.keys_per_s())),
            ("cache_hits", Json::Int(c.cache_hits as i64)),
            ("searched", Json::Int(c.searched as i64)),
            ("transfer_hits", Json::Int(c.transfers as i64)),
            ("evals_total", Json::Int(c.evals_total as i64)),
            ("evals_saved", Json::Int(c.evals_saved as i64)),
            ("mean_evals_to_winner", Json::num(c.mean_evals_to_winner())),
            ("errors", Json::Int(c.errors as i64)),
            ("steals", Json::Int(self.steals as i64)),
        ])
    }
}

// ---------------------------------------------------------------------
// The driver
// ---------------------------------------------------------------------

/// The work-stealing fleet driver. See the module docs for semantics.
#[derive(Clone, Debug)]
pub struct FleetDriver {
    threads: usize,
    cache: Option<TuningCache>,
    sidecar: Option<std::path::PathBuf>,
    transfer: bool,
    divisor: usize,
}

impl FleetDriver {
    /// A driver with `threads` workers, transfer enabled, no cache.
    pub fn new(threads: usize) -> FleetDriver {
        FleetDriver {
            threads: threads.max(1),
            cache: None,
            sidecar: None,
            transfer: true,
            divisor: TRANSFER_BUDGET_DIVISOR,
        }
    }

    /// Attaches a persistent cache: its entries preload the result map
    /// (satisfying keys become instant hits, stale frontiers become
    /// seeds), and every fresh result is written back in one merged
    /// [`TuningCache::store_many`] at the end of the run.
    #[must_use]
    pub fn with_cache(mut self, path: impl Into<std::path::PathBuf>) -> FleetDriver {
        self.cache = Some(TuningCache::new(path.into()));
        self
    }

    /// Attaches a persistent memo sidecar: every worker thread installs
    /// it before taking work (so annotation and expression memos start
    /// warm), and the per-worker derived results are merged into *one*
    /// atomic sidecar write at the end of the run.
    #[must_use]
    pub fn with_sidecar(mut self, path: impl Into<std::path::PathBuf>) -> FleetDriver {
        self.sidecar = Some(path.into());
        self
    }

    /// Enables or disables frontier transfer (disabled = every miss is
    /// a cold full-budget search; the bench's baseline mode).
    #[must_use]
    pub fn with_transfer(mut self, transfer: bool) -> FleetDriver {
        self.transfer = transfer;
        self
    }

    /// Overrides the transferred-search budget divisor (≥ 1; 1 keeps
    /// the full budget and measures seeding quality alone).
    #[must_use]
    pub fn with_transfer_divisor(mut self, divisor: usize) -> FleetDriver {
        self.divisor = divisor.max(1);
        self
    }

    /// Tunes every key of `grid` and returns the per-key outcomes plus
    /// run counters. Individual failures are recorded, never fatal; the
    /// merged cache write happens once, after the last key.
    pub fn run(&self, grid: &[TuneRequest]) -> FleetReport {
        let t0 = Instant::now();
        let n = grid.len();
        let keys: Vec<String> = grid.iter().map(TuneRequest::cache_key).collect();

        // Static transfer topology: each key depends on the nearest
        // comparable *earlier* key (first occurrence), decided by the
        // distance metric before anything runs. This is what keeps the
        // run deterministic — the source is a function of the grid, not
        // of scheduling.
        let mut first_at: HashMap<&str, usize> = HashMap::new();
        for (i, k) in keys.iter().enumerate() {
            first_at.entry(k.as_str()).or_insert(i);
        }
        let deps: Vec<Option<usize>> = (0..n)
            .map(|i| {
                if !self.transfer {
                    return None;
                }
                nearest_neighbor(&keys[i], keys[..i].iter().map(String::as_str))
                    .map(|k| first_at[k])
            })
            .collect();
        let mut children: Vec<Vec<usize>> = vec![Vec::new(); n];
        for (i, dep) in deps.iter().enumerate() {
            if let Some(j) = *dep {
                children[j].push(i);
            }
        }

        // Sharded result map, preloaded from the persistent cache.
        let shards: Vec<Mutex<HashMap<String, CachedTuning>>> =
            (0..SHARDS).map(|_| Mutex::new(HashMap::new())).collect();
        let shard_of = |key: &str| &shards[(fnv1a(key) % SHARDS as u64) as usize];
        if let Some(cache) = &self.cache {
            for (k, v) in cache.entries() {
                shard_of(&k).lock().expect("shard poisoned").insert(k, v);
            }
        }

        let threads = self.threads.min(n.max(1));
        let sched = Sched::new(threads, n);
        for (w, i) in (0..n).filter(|i| deps[*i].is_none()).enumerate() {
            sched.seed(w % threads, i);
        }

        let results: Mutex<Vec<Option<FleetKeyReport>>> = Mutex::new(vec![None; n]);
        // Fresh entries to persist, slotted by grid index so the merged
        // write is deterministic in grid order.
        let dirty: Mutex<Vec<Option<CachedTuning>>> = Mutex::new(vec![None; n]);

        // The persistent memo sidecar is parsed once here; each worker
        // installs it into its own thread-local memo tables before
        // taking work, and contributes its derived results to one
        // merged document persisted in a single atomic write below.
        let sidecar_in = self
            .sidecar
            .as_deref()
            .map(crate::sidecar::Sidecar::load)
            .filter(|sc| !sc.is_empty());
        let sidecar_out: Option<Mutex<crate::sidecar::Sidecar>> = self
            .sidecar
            .is_some()
            .then(|| Mutex::new(crate::sidecar::Sidecar::new()));

        std::thread::scope(|scope| {
            for w in 0..threads {
                let sched = &sched;
                let results = &results;
                let dirty = &dirty;
                let shards = &shards;
                let grid_ref = grid;
                let keys = &keys;
                let deps = &deps;
                let children = &children;
                let divisor = self.divisor;
                let sidecar_in = sidecar_in.as_ref();
                let sidecar_out = sidecar_out.as_ref();
                scope.spawn(move || {
                    if let Some(sc) = sidecar_in {
                        crate::sidecar::install(sc);
                    }
                    while let Some(i) = sched.next(w) {
                        let (report, entry) = run_key(grid_ref, keys, deps, shards, divisor, i, w);
                        if let Some(entry) = entry {
                            let shard = &shards[(fnv1a(&keys[i]) % SHARDS as u64) as usize];
                            shard
                                .lock()
                                .expect("shard poisoned")
                                .insert(keys[i].clone(), entry.clone());
                            dirty.lock().expect("dirty list poisoned")[i] = Some(entry);
                        }
                        results.lock().expect("results poisoned")[i] = Some(report);
                        // Dependents become runnable only now, with the
                        // entry already visible in the shard.
                        sched.complete(w, &children[i]);
                    }
                    if let Some(out) = sidecar_out {
                        let derived = crate::sidecar::collect();
                        out.lock().expect("sidecar poisoned").merge(&derived);
                    }
                });
            }
        });

        if let (Some(path), Some(out)) = (&self.sidecar, sidecar_out) {
            let merged = out.into_inner().expect("sidecar poisoned");
            if let Err(e) = merged.save(path) {
                // Same best-effort stance as the cache write below.
                eprintln!("fleet: sidecar write failed: {e}");
            }
        }

        if let Some(cache) = &self.cache {
            let batch: Vec<(String, CachedTuning)> = dirty
                .into_inner()
                .expect("dirty list poisoned")
                .into_iter()
                .enumerate()
                .filter_map(|(i, e)| Some((keys[i].clone(), e?)))
                .collect();
            if let Err(e) = cache.store_many(&batch) {
                // Persisting is best-effort at this layer; surface the
                // failure on every fresh key's report instead of
                // panicking a completed run.
                let mut results = results.lock().expect("results poisoned");
                for r in results.iter_mut().flatten() {
                    if matches!(&r.result, Ok(t) if !t.from_cache) {
                        r.result = Err(format!("cache write failed: {e}"));
                    }
                }
            }
        }

        FleetReport {
            keys: results
                .into_inner()
                .expect("results poisoned")
                .into_iter()
                .map(|r| r.expect("every key completed"))
                .collect(),
            threads,
            transfer: self.transfer,
            steals: sched.steals(),
            elapsed_s: t0.elapsed().as_secs_f64(),
        }
    }
}

/// Tunes grid key `i` on worker `w`. Returns the report and, for fresh
/// searches, the cache entry to publish (the caller inserts it into the
/// shard *before* marking the key complete).
fn run_key(
    grid: &[TuneRequest],
    keys: &[String],
    deps: &[Option<usize>],
    shards: &[Mutex<HashMap<String, CachedTuning>>],
    divisor: usize,
    i: usize,
    w: usize,
) -> (FleetKeyReport, Option<CachedTuning>) {
    let t0 = Instant::now();
    let req = &grid[i];
    let key = &keys[i];
    let lookup = |k: &str| -> Option<CachedTuning> {
        shards[(fnv1a(k) % SHARDS as u64) as usize]
            .lock()
            .expect("shard poisoned")
            .get(k)
            .cloned()
    };

    // Instant hit: a preloaded or earlier-completed entry satisfies the
    // request as-is (same rule the sequential tuner and daemon apply).
    let own = lookup(key);
    if let Some(hit) = &own {
        if req.satisfied_by(hit) {
            let report = FleetKeyReport {
                request: req.clone(),
                cache_key: key.clone(),
                result: Ok(FleetTuned {
                    config: hit.config,
                    naive: hit.naive,
                    tuned: hit.tuned,
                    evaluated: 0,
                    evals_to_winner: 0,
                    budget: None,
                    evals_saved: 0,
                    from_cache: true,
                }),
                transferred_from: None,
                seeds: 0,
                worker: w,
                elapsed_s: t0.elapsed().as_secs_f64(),
            };
            return (report, None);
        }
    }

    // Seeds: the key's own stale frontier first (a differently-searched
    // entry still knows good points), then the transfer source's.
    let domain = Domain::new(req.kind, req.effective_space());
    let mut seeds: Vec<TunedConfig> = own
        .iter()
        .flat_map(|h| h.frontier.iter().map(|(c, _)| *c))
        .collect();
    let mut transferred_from = None;
    if let Some(j) = deps[i] {
        if keys[j] != *key {
            if let Some(src) = lookup(&keys[j]) {
                let survivors: Vec<TunedConfig> = src
                    .frontier
                    .iter()
                    .map(|(c, _)| *c)
                    .filter(|c| domain.contains(c))
                    .collect();
                if !survivors.is_empty() {
                    transferred_from =
                        Some(format!("{}@{}", grid[j].kind.name(), grid[j].device.tag));
                    seeds.extend(survivors);
                }
            }
        }
    }

    // A transferred search keeps only a fraction of the cold budget:
    // the seeds carry a near-winner, so the remainder just polishes.
    let budgeted = !matches!(req.strategy, Strategy::Exhaustive);
    let budget_override = if transferred_from.is_some() && budgeted {
        let cold = req.budget.max_evals();
        Some(Budget((cold / divisor).max(TRANSFER_MIN_EVALS.min(cold))))
    } else {
        None
    };

    let tuner = req.tuner();
    let seed_count = seeds.len();
    let (result, entry) = match tuner.tune_seeded(&req.kind, &seeds, budget_override) {
        Ok(seeded) => {
            let cold = req.budget.max_evals();
            let evals_saved = if budget_override.is_some() && budgeted {
                cold.saturating_sub(seeded.result.evaluated)
            } else {
                0
            };
            let tuned = FleetTuned {
                config: seeded.result.config,
                naive: seeded.result.naive,
                tuned: seeded.result.tuned,
                evaluated: seeded.result.evaluated,
                evals_to_winner: seeded.evals_to_winner,
                budget: seeded.budget,
                evals_saved,
                from_cache: false,
            };
            let mut entry = tuner.entry_from(&seeded);
            if budget_override.is_some() {
                // A transferred entry is recorded at the request's cold
                // budget: transfer's contract — asserted by the
                // soundness tests — is cold-equivalent winner quality,
                // and recording the cut budget would make fleets
                // non-idempotent (every re-run would re-search exactly
                // the keys the fleet just tuned).
                entry.budget = Some(cold);
            }
            (Ok(tuned), Some(entry))
        }
        Err(e) => (Err(e.to_string()), None),
    };
    let report = FleetKeyReport {
        request: req.clone(),
        cache_key: key.clone(),
        result,
        transferred_from,
        seeds: seed_count,
        worker: w,
        elapsed_s: t0.elapsed().as_secs_f64(),
    };
    (report, entry)
}

// ---------------------------------------------------------------------
// The scheduler
// ---------------------------------------------------------------------

/// Work-stealing scheduler state: per-worker deques of runnable keys.
/// Owners pop from the front of their own deque; idle workers steal
/// from the *back* of a sibling's (classic deque discipline — stolen
/// work is the coldest). Keys enter a deque only when their transfer
/// dependency has completed, so a runnable key's seeds are always
/// visible.
struct Sched {
    inner: Mutex<SchedInner>,
    wake: Condvar,
}

struct SchedInner {
    queues: Vec<VecDeque<usize>>,
    /// Keys not yet completed (runnable, running, or still blocked on a
    /// dependency). Workers exit when it reaches zero.
    remaining: usize,
    steals: u64,
}

impl Sched {
    fn new(threads: usize, total: usize) -> Sched {
        Sched {
            inner: Mutex::new(SchedInner {
                queues: vec![VecDeque::new(); threads],
                remaining: total,
                steals: 0,
            }),
            wake: Condvar::new(),
        }
    }

    /// Enqueues an initially-runnable key on worker `w`'s deque.
    fn seed(&self, w: usize, i: usize) {
        self.inner.lock().expect("scheduler poisoned").queues[w].push_back(i);
    }

    /// The next key for worker `w`: own deque first, then steal, else
    /// block until a completion frees more work. `None` once every key
    /// has completed.
    fn next(&self, w: usize) -> Option<usize> {
        let mut inner = self.inner.lock().expect("scheduler poisoned");
        loop {
            if inner.remaining == 0 {
                return None;
            }
            if let Some(i) = inner.queues[w].pop_front() {
                return Some(i);
            }
            let workers = inner.queues.len();
            if let Some(i) = (1..workers)
                .map(|off| (w + off) % workers)
                .find_map(|v| inner.queues[v].pop_back())
            {
                inner.steals += 1;
                return Some(i);
            }
            inner = self.wake.wait(inner).expect("scheduler poisoned");
        }
    }

    /// Marks a key complete and makes its dependents runnable on the
    /// completing worker's deque (they share warm state: the worker's
    /// arena already holds the family's expressions).
    fn complete(&self, w: usize, dependents: &[usize]) {
        let mut inner = self.inner.lock().expect("scheduler poisoned");
        inner.remaining -= 1;
        for &d in dependents {
            inner.queues[w].push_back(d);
        }
        drop(inner);
        self.wake.notify_all();
    }

    fn steals(&self) -> u64 {
        self.inner.lock().expect("scheduler poisoned").steals
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_parse_expands_the_readme_example() {
        let spec = FleetSpec::parse("matmul:512..4096x2,rowwise:1k..64k@a100,h100").unwrap();
        assert_eq!(spec.devices, vec!["a100", "h100"]);
        assert_eq!(spec.groups.len(), 2);
        assert_eq!(spec.groups[0].sizes(), vec![512, 1024, 2048, 4096]);
        assert_eq!(
            spec.groups[1].sizes(),
            vec![1024, 2048, 4096, 8192, 16384, 32768, 65536]
        );
        // 4 matmul sizes + 7 rowwise sizes, each on 2 devices.
        assert_eq!(spec.len(), 22);
        let reqs = spec.requests(&gpu_sim::a100(), Strategy::Anneal, Budget(64), None);
        assert_eq!(reqs.len(), 22);
        assert_eq!(reqs[0].kind, WorkloadKind::Matmul { n: 512 });
        assert_eq!(reqs[0].device.tag, "a100");
        assert_eq!(reqs[4].device.tag, "h100");
        assert_eq!(
            reqs[8].kind,
            WorkloadKind::Rowwise {
                op: RowwiseOp::Softmax,
                m: FLEET_ROWWISE_M,
                n: 1024
            }
        );
    }

    #[test]
    fn spec_display_round_trips() {
        for s in [
            "matmul:512..4096x2",
            "matmul:256",
            "transpose:1024..4096x4@mi300",
            "stencil-star-7pt:32..64x2,stencil-cube-27pt:48",
            "nw:512..2048x2,lud:512..2048x2@a100,h100",
            "softmax:1024..65536x2,layernorm-fwd:4096,layernorm-bwd:4096@h100",
        ] {
            let spec = FleetSpec::parse(s).unwrap();
            let printed = spec.to_string();
            let back = FleetSpec::parse(&printed).unwrap();
            assert_eq!(spec, back, "{s:?} -> {printed:?} must re-parse equal");
        }
        // Sugar forms normalize: k-suffix sizes, default step, aliases.
        let sugared = FleetSpec::parse("rowwise:1k..8kx2@a100").unwrap();
        assert_eq!(sugared.to_string(), "softmax:1024..8192x2@a100");
        assert_eq!(
            FleetSpec::parse("stencil:32").unwrap().to_string(),
            "stencil-star-7pt:32"
        );
        assert_eq!(
            FleetSpec::parse("matmul:512..4096").unwrap().to_string(),
            "matmul:512..4096x2"
        );
    }

    #[test]
    fn spec_rejects_malformed_grids() {
        for bad in [
            "",
            "matmul",
            "matmul:",
            "matmul:0",
            "matmul:-4",
            "matmul:4096..512x2",
            "matmul:512..4096x1",
            "matmul:512..4096xq",
            "frobnicate:512",
            "stencil-star-9pt:32",
            "matmul:512@v100",
            "matmul:9q",
        ] {
            assert!(FleetSpec::parse(bad).is_err(), "{bad:?} must not parse");
        }
    }

    #[test]
    fn transfer_deps_point_at_nearest_earlier_same_class_key() {
        let spec = FleetSpec::parse("matmul:256..1024x2@a100,h100").unwrap();
        let grid = spec.requests(&gpu_sim::a100(), Strategy::Anneal, Budget(64), None);
        let keys: Vec<String> = grid.iter().map(TuneRequest::cache_key).collect();
        // a100: 256, 512, 1024 then h100: 256, 512, 1024.
        // First key has no earlier sibling.
        assert_eq!(
            nearest_neighbor(&keys[0], keys[..0].iter().map(String::as_str)),
            None
        );
        // a100 512 transfers from a100 256; a100 1024 from a100 512.
        assert_eq!(
            nearest_neighbor(&keys[1], keys[..1].iter().map(String::as_str)),
            Some(keys[0].as_str())
        );
        assert_eq!(
            nearest_neighbor(&keys[2], keys[..2].iter().map(String::as_str)),
            Some(keys[1].as_str())
        );
        // h100 256 has no same-device sibling yet: cross-device
        // fallback to a100 256 (distance = the device penalty).
        assert_eq!(
            nearest_neighbor(&keys[3], keys[..3].iter().map(String::as_str)),
            Some(keys[0].as_str())
        );
        // h100 512 prefers its same-device neighbor over the exact-size
        // cross-device one.
        assert_eq!(
            nearest_neighbor(&keys[4], keys[..4].iter().map(String::as_str)),
            Some(keys[3].as_str())
        );
    }
}
