//! The tuner's view of the persistent memo sidecar.
//!
//! `lego_expr::sidecar` persists the expression layer's derived results
//! (simplified/saturated forms, op counts). This module layers the
//! tuner's own derived state on top — the candidate-annotation cache
//! mapping `(workload, config)` to `(expression variant, index op
//! count)` — carried in the sidecar's opaque annotation section, so one
//! file re-warms the whole enumeration pipeline: a warmed process
//! serves [`crate::space::Candidate::annotated`] straight from the
//! imported entries, and any fresh annotation work underneath hits the
//! re-interned expression memos.
//!
//! The invalidation contract is the expression layer's: a schema or
//! rewrite-rule-fingerprint mismatch empties the document wholesale,
//! annotations included (they are derived through the same rule table,
//! so they go stale together).

use std::io;
use std::path::Path;

pub use lego_expr::sidecar::{InstallReport, Sidecar};

use crate::space;

/// What a sidecar install warmed, per layer.
#[derive(Clone, Copy, Debug, Default)]
pub struct SidecarWarm {
    /// Expression-layer entries installed (simplify/saturate/opcount).
    pub exprs: InstallReport,
    /// Annotation entries installed into the candidate cache.
    pub annotations: u64,
    /// Traffic entries installed into the cost model's geometry memo.
    pub traffics: u64,
}

impl SidecarWarm {
    /// Total entries installed across all layers.
    pub fn installed(&self) -> usize {
        self.exprs.installed() + (self.annotations + self.traffics) as usize
    }
}

/// Installs `sidecar` into this thread's session state: expression
/// memos into the arena tables, annotations into the candidate cache,
/// traffic entries into the cost model's geometry memo.
pub fn install(sidecar: &Sidecar) -> SidecarWarm {
    SidecarWarm {
        exprs: sidecar.install(),
        annotations: space::import_annotations(sidecar),
        traffics: gpu_sim::import_traffic(sidecar.traffics()),
    }
}

/// Loads the sidecar at `path` (empty if missing, stale, or corrupt)
/// and installs it. The warm-start entry point for every consumer: the
/// tuning daemon's workers, the fleet driver, and the bench binaries
/// all go through here.
pub fn load_and_install(path: &Path) -> SidecarWarm {
    install(&Sidecar::load(path))
}

/// Snapshots this thread's derived results — expression memos, the
/// annotation cache, and the traffic memo — into one document.
pub fn collect() -> Sidecar {
    let mut sc = Sidecar::collect();
    space::export_annotations(&mut sc);
    for (k, v) in gpu_sim::export_traffic() {
        sc.set_traffic(&k, &v);
    }
    sc
}

/// [`collect`]s and merges the result into the sidecar at `path`
/// atomically (lock + tempfile + rename; concurrent savers cannot lose
/// each other's entries).
///
/// # Errors
///
/// Propagates filesystem errors.
pub fn collect_and_save(path: &Path) -> io::Result<()> {
    collect().save(path)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::space::{Candidate, WorkloadKind};

    #[test]
    fn annotations_round_trip_through_a_document() {
        let kind = WorkloadKind::Matmul { n: 64 };
        let cand = Candidate::annotated(&kind, &kind.default_config());
        let sc = collect();
        let text = sc.render();
        let parsed = Sidecar::parse(&text).expect("collected document must parse");
        // A fresh thread models a fresh process: empty caches, then the
        // parsed document warms them.
        let config = kind.default_config();
        let warmed = std::thread::spawn(move || {
            let warm = install(&parsed);
            assert!(warm.annotations > 0, "no annotations installed");
            let c = Candidate::annotated(&kind, &config);
            let (_, hits) = space::annotate_sidecar_stats();
            assert!(hits > 0, "annotation served cold despite import");
            (c.expr_variant, c.index_ops)
        })
        .join()
        .unwrap();
        assert_eq!(warmed, (cand.expr_variant, cand.index_ops));
    }

    #[test]
    fn traffic_round_trips_through_a_document() {
        fn price() -> gpu_sim::Estimate {
            use crate::space::{build_layout, build_workload};
            let kind = WorkloadKind::Matmul { n: 64 };
            let gpu = gpu_sim::a100();
            let cand = Candidate::annotated(&kind, &kind.default_config());
            let layout = build_layout(&kind, &cand.config).expect("default builds");
            let wl = build_workload(&kind, &cand, &gpu);
            gpu_sim::score(&layout, &wl, &gpu)
        }
        let cold = price();
        let text = collect().render();
        // A fresh thread models a fresh process: an empty traffic memo,
        // then the parsed document warms it and serves the same price.
        let warm_est = std::thread::spawn(move || {
            let parsed = Sidecar::parse(&text).expect("collected document must parse");
            let warm = install(&parsed);
            assert!(warm.traffics > 0, "no traffic entries installed");
            let est = price();
            let (_, hits) = gpu_sim::traffic_sidecar_stats();
            assert!(hits > 0, "traffic traced cold despite import");
            est
        })
        .join()
        .unwrap();
        assert_eq!(cold, warm_est, "imported traffic must price identically");
    }
}
