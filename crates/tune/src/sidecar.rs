//! The tuner's view of the persistent memo sidecar.
//!
//! `lego_expr::sidecar` persists the expression layer's derived results
//! (simplified/saturated forms, op counts). This module layers the
//! tuner's own derived state on top — the candidate-annotation cache
//! mapping `(workload, config)` to `(expression variant, index op
//! count)` — carried in the sidecar's opaque annotation section, so one
//! file re-warms the whole enumeration pipeline: a warmed process
//! serves [`crate::space::Candidate::annotated`] straight from the
//! imported entries, and any fresh annotation work underneath hits the
//! re-interned expression memos.
//!
//! The invalidation contract is the expression layer's: a schema or
//! rewrite-rule-fingerprint mismatch empties the document wholesale,
//! annotations included (they are derived through the same rule table,
//! so they go stale together).

use std::io;
use std::path::Path;

pub use lego_expr::sidecar::{InstallReport, Sidecar};

use crate::space;

/// What a sidecar install warmed, per layer.
#[derive(Clone, Copy, Debug, Default)]
pub struct SidecarWarm {
    /// Expression-layer entries installed (simplify/saturate/opcount).
    pub exprs: InstallReport,
    /// Annotation entries installed into the candidate cache.
    pub annotations: u64,
}

impl SidecarWarm {
    /// Total entries installed across both layers.
    pub fn installed(&self) -> usize {
        self.exprs.installed() + self.annotations as usize
    }
}

/// Installs `sidecar` into this thread's session state: expression
/// memos into the arena tables, annotations into the candidate cache.
pub fn install(sidecar: &Sidecar) -> SidecarWarm {
    SidecarWarm {
        exprs: sidecar.install(),
        annotations: space::import_annotations(sidecar),
    }
}

/// Loads the sidecar at `path` (empty if missing, stale, or corrupt)
/// and installs it. The warm-start entry point for every consumer: the
/// tuning daemon's workers, the fleet driver, and the bench binaries
/// all go through here.
pub fn load_and_install(path: &Path) -> SidecarWarm {
    install(&Sidecar::load(path))
}

/// Snapshots this thread's derived results — expression memos *and* the
/// annotation cache — into one document.
pub fn collect() -> Sidecar {
    let mut sc = Sidecar::collect();
    space::export_annotations(&mut sc);
    sc
}

/// [`collect`]s and merges the result into the sidecar at `path`
/// atomically (lock + tempfile + rename; concurrent savers cannot lose
/// each other's entries).
///
/// # Errors
///
/// Propagates filesystem errors.
pub fn collect_and_save(path: &Path) -> io::Result<()> {
    collect().save(path)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::space::{Candidate, WorkloadKind};

    #[test]
    fn annotations_round_trip_through_a_document() {
        let kind = WorkloadKind::Matmul { n: 64 };
        let cand = Candidate::annotated(&kind, &kind.default_config());
        let sc = collect();
        let text = sc.render();
        let parsed = Sidecar::parse(&text).expect("collected document must parse");
        // A fresh thread models a fresh process: empty caches, then the
        // parsed document warms them.
        let config = kind.default_config();
        let warmed = std::thread::spawn(move || {
            let warm = install(&parsed);
            assert!(warm.annotations > 0, "no annotations installed");
            let c = Candidate::annotated(&kind, &config);
            let (_, hits) = space::annotate_sidecar_stats();
            assert!(hits > 0, "annotation served cold despite import");
            (c.expr_variant, c.index_ops)
        })
        .join()
        .unwrap();
        assert_eq!(warmed, (cand.expr_variant, cand.index_ops));
    }
}
