//! Search spaces: which (tile, layout, expression-variant)
//! configurations the tuner explores per workload, and how each
//! candidate becomes a concrete [`Layout`] plus a `gpu-sim`
//! [`Workload`] trace.
//!
//! Every space lists the paper's hand-picked configuration first, so
//! the tuned result can never regress the shipped default — the search
//! is free to do better, never worse.

use gpu_sim::score::{AddrGen, L2Model, Phase, TouchGen, Workload};
use gpu_sim::{GpuConfig, Pipeline};
use lego_codegen::cuda::stencil::StencilShape;
use lego_codegen::cuda::transpose::staging_perm;
use lego_codegen::tuning::{ScheduleChoice, StagingChoice, StencilLayoutChoice, TunedConfig};
use lego_core::brick::{brick3d, row_major3d};
use lego_core::perms::{block_cyclic_rows, morton};
use lego_core::{sugar, Layout, OrderBy, Result};
use lego_expr::{expand, op_count, simplify, Expr, RangeEnv, Variant};

/// A tunable workload instance: the problem, not the configuration.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum WorkloadKind {
    /// Square FP16 GEMM `C = A·B`.
    Matmul {
        /// Problem side length.
        n: i64,
    },
    /// Square FP32 out-of-place transpose.
    Transpose {
        /// Problem side length.
        n: i64,
    },
    /// 3-D FP32 stencil sweep.
    Stencil {
        /// The stencil shape.
        shape: StencilShape,
        /// Domain side length.
        n: i64,
    },
}

impl WorkloadKind {
    /// Stable display/cache name, e.g. `matmul(n=2048)`.
    pub fn name(&self) -> String {
        match self {
            WorkloadKind::Matmul { n } => format!("matmul(n={n})"),
            WorkloadKind::Transpose { n } => format!("transpose(n={n})"),
            WorkloadKind::Stencil { shape, n } => {
                format!("stencil({},n={n})", shape.name())
            }
        }
    }

    /// The paper's hand-picked default configuration — the baseline the
    /// tuned result is compared against.
    pub fn default_config(&self) -> TunedConfig {
        match self {
            WorkloadKind::Matmul { n } => {
                // The Fig. 1 config, degraded gracefully for sizes the
                // 128-tile or GM=8 grouping doesn't divide.
                let (bm, bn, bk) = if n % 128 == 0 {
                    (128, 128, 64)
                } else {
                    (64, 64, 32)
                };
                let nt_m = n / bm;
                let gm = [8i64, 4, 2]
                    .into_iter()
                    .find(|g| nt_m % g == 0)
                    .unwrap_or(1);
                TunedConfig::Matmul {
                    bm,
                    bn,
                    bk,
                    schedule: ScheduleChoice::Grouped { gm },
                }
            }
            WorkloadKind::Transpose { .. } => TunedConfig::Transpose {
                t: 32,
                staging: None,
            },
            WorkloadKind::Stencil { n, .. } => TunedConfig::Stencil {
                n: *n,
                layout: StencilLayoutChoice::RowMajorY,
            },
        }
    }
}

/// One point of a search space.
#[derive(Clone, Debug)]
pub struct Candidate {
    /// The kernel configuration.
    pub config: TunedConfig,
    /// Which simplification variant the §IV-A cost model picked for
    /// this layout's index expressions (`None` when the layout has no
    /// symbolic form).
    pub expr_variant: Option<Variant>,
    /// Operation count of the chosen variant.
    pub index_ops: Option<usize>,
}

/// The enumerated search space of one workload.
#[derive(Clone, Debug)]
pub struct SearchSpace {
    /// The workload being tuned.
    pub kind: WorkloadKind,
    /// All candidates, default configuration first.
    pub candidates: Vec<Candidate>,
}

impl SearchSpace {
    /// Enumerates the space for `kind`: tile shapes × `OrderBy`
    /// permutation choices, each annotated with the cheaper
    /// expanded/unexpanded expression variant via `lego_expr::cost`.
    pub fn enumerate(kind: WorkloadKind) -> SearchSpace {
        let mut configs = vec![kind.default_config()];
        let push = |c: TunedConfig, configs: &mut Vec<TunedConfig>| {
            if !configs.contains(&c) {
                configs.push(c);
            }
        };
        match kind {
            WorkloadKind::Matmul { n } => {
                const TILES: [(i64, i64, i64); 8] = [
                    (128, 128, 64),
                    (128, 128, 32),
                    (64, 64, 64),
                    (64, 64, 32),
                    (256, 128, 64),
                    (128, 256, 64),
                    (128, 64, 64),
                    (64, 128, 64),
                ];
                for (bm, bn, bk) in TILES {
                    if n % bm != 0 || n % bn != 0 || n % bk != 0 {
                        continue;
                    }
                    let (nt_m, nt_n) = (n / bm, n / bn);
                    let mut schedules = vec![ScheduleChoice::RowMajor];
                    for gm in [4i64, 8, 16] {
                        // The concrete grouped layout factorizes nt_m as
                        // (nt_m/gm)·gm, so gm must divide nt_m.
                        if nt_m % gm == 0 {
                            schedules.push(ScheduleChoice::Grouped { gm });
                        }
                    }
                    if nt_m == nt_n && nt_m.count_ones() == 1 {
                        schedules.push(ScheduleChoice::Morton);
                    }
                    if nt_m % 16 == 0 {
                        schedules.push(ScheduleChoice::BlockCyclic { p: 8, b: 2 });
                    }
                    for schedule in schedules {
                        push(
                            TunedConfig::Matmul {
                                bm,
                                bn,
                                bk,
                                schedule,
                            },
                            &mut configs,
                        );
                    }
                }
            }
            WorkloadKind::Transpose { n } => {
                for t in [16i64, 32] {
                    if n % t != 0 {
                        continue;
                    }
                    for staging in [
                        StagingChoice::Identity,
                        StagingChoice::Swizzle,
                        StagingChoice::ColMajor,
                        StagingChoice::Antidiag,
                        StagingChoice::BlockCyclic { p: 8, b: 4 },
                    ] {
                        push(
                            TunedConfig::Transpose {
                                t,
                                staging: Some(staging),
                            },
                            &mut configs,
                        );
                    }
                }
            }
            WorkloadKind::Stencil { n, .. } => {
                push(
                    TunedConfig::Stencil {
                        n,
                        layout: StencilLayoutChoice::RowMajorZ,
                    },
                    &mut configs,
                );
                for b in [4i64, 8] {
                    if n % b == 0 {
                        push(
                            TunedConfig::Stencil {
                                n,
                                layout: StencilLayoutChoice::Brick { b },
                            },
                            &mut configs,
                        );
                    }
                }
            }
        }
        let candidates = configs
            .into_iter()
            .map(|config| {
                let (expr_variant, index_ops) = annotate(&kind, &config);
                Candidate {
                    config,
                    expr_variant,
                    index_ops,
                }
            })
            .collect();
        SearchSpace { kind, candidates }
    }
}

/// Builds the concrete layout a candidate configuration describes: the
/// pid→tile schedule for matmul, the smem staging tile for transpose,
/// the 3-D data layout for stencils.
///
/// # Errors
///
/// Propagates layout construction errors (the enumerated spaces only
/// emit constructible configs).
pub fn build_layout(kind: &WorkloadKind, config: &TunedConfig) -> Result<Layout> {
    match (kind, config) {
        (
            WorkloadKind::Matmul { n },
            TunedConfig::Matmul {
                bm, bn, schedule, ..
            },
        ) => {
            let (nt_m, nt_n) = (n / bm, n / bn);
            match *schedule {
                ScheduleChoice::RowMajor => Layout::identity([nt_m, nt_n]),
                ScheduleChoice::Grouped { gm } => {
                    let g = gm.min(nt_m);
                    let gmax = (nt_m / gm).max(1);
                    sugar::tile_by([vec![Expr::val(nt_m), Expr::val(nt_n)]])?
                        .order_by(OrderBy::new([
                            sugar::col([gmax, 1])?,
                            sugar::col([g, nt_n])?,
                        ])?)
                        .build()
                }
                ScheduleChoice::Morton => Layout::builder([nt_m, nt_n])
                    .order_by(OrderBy::new([morton(nt_m)?])?)
                    .build(),
                ScheduleChoice::BlockCyclic { p, b } => Layout::builder([nt_m, nt_n])
                    .order_by(OrderBy::new([block_cyclic_rows(nt_m, nt_n, p, b)?])?)
                    .build(),
            }
        }
        (WorkloadKind::Transpose { .. }, TunedConfig::Transpose { t, staging }) => match staging {
            None => Layout::identity([*t, *t]),
            Some(choice) => Layout::builder([*t, *t])
                .order_by(OrderBy::new([staging_perm(*t, *choice)?])?)
                .build(),
        },
        (WorkloadKind::Stencil { .. }, TunedConfig::Stencil { n, layout }) => match layout {
            StencilLayoutChoice::RowMajorY | StencilLayoutChoice::RowMajorZ => row_major3d(*n),
            StencilLayoutChoice::Brick { b } => brick3d(*n, *b),
        },
        _ => Err(lego_core::LayoutError::Unsupported(
            "workload kind and config disagree",
        )),
    }
}

/// Picks the cheaper expanded/unexpanded variant of a candidate's index
/// expressions (§IV-A cost model) and returns `(variant, op_count)`;
/// `(None, None)` when the layout has no symbolic form (e.g. Morton).
fn annotate(kind: &WorkloadKind, config: &TunedConfig) -> (Option<Variant>, Option<usize>) {
    let sym = symbolic_exprs(kind, config);
    let Some((raws, env)) = sym else {
        return (None, None);
    };
    let ops_u: usize = raws.iter().map(|e| op_count(&simplify(e, &env))).sum();
    let ops_e: usize = raws
        .iter()
        .map(|e| op_count(&simplify(&expand(e), &env)))
        .sum();
    if ops_e < ops_u {
        (Some(Variant::Expanded), Some(ops_e))
    } else {
        (Some(Variant::Unexpanded), Some(ops_u))
    }
}

/// The symbolic index expressions a candidate's kernel would compute,
/// with the range environment they simplify under.
fn symbolic_exprs(kind: &WorkloadKind, config: &TunedConfig) -> Option<(Vec<Expr>, RangeEnv)> {
    match (kind, config) {
        (WorkloadKind::Matmul { .. }, _) => {
            let layout = build_layout(kind, config).ok()?;
            let mut env = RangeEnv::new();
            let dims = layout.view().dims_const().ok()?;
            env.set_bounds("pid", Expr::zero(), Expr::val(dims[0] * dims[1]));
            let pids = layout.inv_sym(&Expr::sym("pid")).ok()?;
            Some((pids, env))
        }
        (WorkloadKind::Transpose { .. }, TunedConfig::Transpose { t, staging }) => {
            let mut env = RangeEnv::new();
            for s in ["tx", "ty"] {
                env.set_bounds(s, Expr::zero(), Expr::val(*t));
            }
            match staging {
                // Naive: global in/out indices only.
                None => {
                    env.assume_pos("n");
                    let n = Expr::sym("n");
                    let i = Expr::sym("ty");
                    let j = Expr::sym("tx");
                    Some((vec![&i * &n + &j, &j * &n + &i], env))
                }
                Some(_) => {
                    let layout = build_layout(kind, config).ok()?;
                    let store = layout.apply_sym(&[Expr::sym("ty"), Expr::sym("tx")]).ok()?;
                    let load = layout.apply_sym(&[Expr::sym("tx"), Expr::sym("ty")]).ok()?;
                    Some((vec![store, load], env))
                }
            }
        }
        (WorkloadKind::Stencil { .. }, TunedConfig::Stencil { n, .. }) => {
            let layout = build_layout(kind, config).ok()?;
            let mut env = RangeEnv::new();
            for s in ["x", "y", "z"] {
                env.set_bounds(s, Expr::zero(), Expr::val(*n));
            }
            let off = layout
                .apply_sym(&[Expr::sym("x"), Expr::sym("y"), Expr::sym("z")])
                .ok()?;
            Some((vec![off], env))
        }
        _ => None,
    }
}

/// How many times a kernel evaluates its index expressions — scales the
/// candidate's `index_ops` into a flop-side term so cheaper expression
/// variants win ties.
fn index_evals(kind: &WorkloadKind, config: &TunedConfig) -> f64 {
    match (kind, config) {
        (WorkloadKind::Matmul { n }, TunedConfig::Matmul { bm, bn, bk, .. }) => {
            ((n / bm) * (n / bn) * (n / bk)) as f64
        }
        (WorkloadKind::Transpose { n }, _) => (n * n) as f64,
        (WorkloadKind::Stencil { shape, n }, _) => shape.points() as f64 * (n * n * n) as f64,
        _ => 0.0,
    }
}

/// Builds the `gpu-sim` workload trace for one candidate.
///
/// The returned [`Workload`] holds closures that replay the kernel's
/// logical access pattern through whatever layout is scored against it.
pub fn build_workload(kind: &WorkloadKind, candidate: &Candidate, gpu: &GpuConfig) -> Workload {
    let index_flops =
        candidate.index_ops.unwrap_or(0) as f64 * index_evals(kind, &candidate.config);
    match (*kind, candidate.config) {
        (WorkloadKind::Matmul { n }, TunedConfig::Matmul { bm, bn, bk, .. }) => {
            let elem = 2i64; // fp16
            let (nt_m, nt_n) = (n / bm, n / bn);
            let ksteps = n / bk;
            let nblocks = nt_m * nt_n;
            let wave = gpu.sm_count as i64;
            let a_bytes = (bm * bk * elem) as usize;
            let b_bytes = (bk * bn * elem) as usize;
            let trace: TouchGen = Box::new(move |layout, sink| {
                let mut pid0 = 0i64;
                while pid0 < nblocks {
                    let pids: Vec<(i64, i64)> = (pid0..(pid0 + wave).min(nblocks))
                        .map(|pid| {
                            let v = layout.inv_c(pid).expect("pid in range");
                            (v[0], v[1])
                        })
                        .collect();
                    for kk in 0..ksteps {
                        for &(pm, pn) in &pids {
                            sink((pm * ksteps + kk) << 1, a_bytes);
                            sink(((kk * nt_n + pn) << 1) | 1, b_bytes);
                        }
                    }
                    pid0 += wave;
                }
            });
            let c_bytes = (n * n * elem) as f64;
            Workload {
                name: format!("matmul(n={n},{bm}x{bn}x{bk})"),
                pipeline: Pipeline::TensorFp16,
                flops: 2.0 * (n as f64).powi(3) + index_flops,
                useful_bytes: 3.0 * c_bytes,
                streamed_bytes: c_bytes,
                blocks: nblocks as f64,
                launches: 2.0,
                wave_quantized: true,
                l2: None,
                phases: vec![Phase::TileTouches { trace, scale: 1.0 }],
            }
        }
        (WorkloadKind::Transpose { n }, TunedConfig::Transpose { t, staging }) => {
            let tiles = (n / t) * (n / t);
            let warps_per_tile = (t * t / 32) as f64;
            let staged = staging.is_some();
            let global: AddrGen = Box::new(move |_layout, sink| {
                let row: Vec<i64> = (0..32).collect();
                if staged {
                    // Both global accesses row-contiguous.
                    sink(&row);
                    sink(&row);
                } else {
                    // Coalesced read, stride-n write.
                    let col: Vec<i64> = (0..32).map(|l| l * n).collect();
                    sink(&row);
                    sink(&col);
                }
            });
            let mut phases = vec![Phase::Global {
                trace: global,
                elem_bytes: 4,
                scale: warps_per_tile * tiles as f64,
            }];
            if staged {
                let shared: AddrGen = Box::new(move |layout, sink| {
                    for ty in 0..t.min(32) {
                        let store: Vec<i64> = (0..32.min(t))
                            .map(|tx| layout.apply_c(&[ty, tx]).expect("in tile"))
                            .collect();
                        let load: Vec<i64> = (0..32.min(t))
                            .map(|tx| layout.apply_c(&[tx, ty]).expect("in tile"))
                            .collect();
                        sink(&store);
                        sink(&load);
                    }
                });
                phases.push(Phase::Shared {
                    trace: shared,
                    scale: tiles as f64,
                });
            }
            Workload {
                name: format!("transpose(n={n},t={t})"),
                pipeline: Pipeline::Fp32,
                flops: index_flops,
                useful_bytes: 2.0 * (n * n * 4) as f64,
                streamed_bytes: 0.0,
                blocks: tiles as f64,
                launches: 1.0,
                wave_quantized: false,
                l2: None,
                phases,
            }
        }
        (WorkloadKind::Stencil { shape, n }, TunedConfig::Stencil { layout: choice, .. }) => {
            // The lane axis must span (up to) a full warp so coalescing
            // is charged per 32-lane access: y-lane blocks put 32 in y,
            // z-lane blocks put the largest 32-capped divisor of n in z.
            let lane_extent = if n % 32 == 0 {
                32
            } else if n % 16 == 0 {
                16
            } else {
                8
            };
            let (block, yz_lanes, y_lanes) = match choice {
                StencilLayoutChoice::RowMajorY => ((4, lane_extent, 4), false, true),
                StencilLayoutChoice::RowMajorZ => ((4, 4, lane_extent), false, false),
                StencilLayoutChoice::Brick { b } => ((b, b, b), true, false),
            };
            let offs = shape.offsets();
            let r = shape.radius();
            let (bx, by, bz) = block;
            let trace: AddrGen = Box::new(move |layout, sink| {
                let clamp = |v: i64| v.clamp(r, n - 1 - r);
                let lanes = 32i64;
                let mut idx = Vec::with_capacity(32);
                for tx in 0..n / bx {
                    for ty in 0..n / by {
                        for tz in 0..n / bz {
                            let (wi_max, wj_max, lane_max) = if yz_lanes {
                                (bx, 1, by * bz)
                            } else if y_lanes {
                                (bx, bz, by)
                            } else {
                                (bx, by, bz)
                            };
                            for wi in 0..wi_max {
                                for wj in 0..wj_max {
                                    let mut l0 = 0i64;
                                    while l0 < lane_max {
                                        let nl = lanes.min(lane_max - l0);
                                        for &(dx, dy, dz) in &offs {
                                            idx.clear();
                                            for lane in 0..nl {
                                                let (x, y, z) = if yz_lanes {
                                                    let local = l0 + lane;
                                                    (
                                                        tx * bx + wi,
                                                        ty * by + local / bz,
                                                        tz * bz + local % bz,
                                                    )
                                                } else if y_lanes {
                                                    (
                                                        tx * bx + wi,
                                                        ty * by + l0 + lane,
                                                        tz * bz + wj,
                                                    )
                                                } else {
                                                    (
                                                        tx * bx + wi,
                                                        ty * by + wj,
                                                        tz * bz + l0 + lane,
                                                    )
                                                };
                                                idx.push(
                                                    layout
                                                        .apply_c(&[
                                                            clamp(x + dx),
                                                            clamp(y + dy),
                                                            clamp(z + dz),
                                                        ])
                                                        .expect("in bounds"),
                                                );
                                            }
                                            sink(&idx);
                                        }
                                        l0 += lanes;
                                    }
                                }
                            }
                        }
                    }
                }
            });
            // Scaled L2: preserve the paper's 512³·4B : 40 MiB ratio.
            let domain_bytes = (n * n * n * 4) as f64;
            let lines = ((domain_bytes / 12.8) as usize / gpu.sector_bytes).max(1024);
            Workload {
                name: format!("stencil({},n={n})", shape.name()),
                pipeline: Pipeline::Fp32,
                flops: 2.0 * shape.points() as f64 * (n * n * n) as f64 + index_flops,
                useful_bytes: 2.0 * domain_bytes,
                streamed_bytes: domain_bytes,
                blocks: ((n / bx) * (n / by) * (n / bz)) as f64,
                launches: 1.0,
                wave_quantized: false,
                l2: Some(L2Model { lines, assoc: 16 }),
                phases: vec![Phase::Global {
                    trace,
                    elem_bytes: 4,
                    scale: 1.0,
                }],
            }
        }
        _ => unreachable!("kind/config pairs come from SearchSpace::enumerate"),
    }
}
