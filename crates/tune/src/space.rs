//! Search spaces: which (tile, layout, expression-variant)
//! configurations the tuner explores per workload, and how each
//! candidate becomes a concrete [`Layout`] plus a `gpu-sim`
//! [`Workload`] trace.
//!
//! Every space lists the paper's hand-picked configuration first, so
//! the tuned result can never regress the shipped default — the search
//! is free to do better, never worse.
//!
//! Trace construction lives in [`gpu_sim::trace`]: this module only
//! maps a [`TunedConfig`] onto the shared builders (plus the tuner-side
//! index-expression flop term), so the estimate the tuner ranks is
//! produced by literally the same code path as the paper tables in
//! `lego-bench`.

use gpu_sim::score::Workload;
use gpu_sim::trace::{
    LaneAxis, LudPanels, MatmulWaves, NwWavefront, RowwiseSweep, StencilWalk, TraceBuilder,
    TransposeSweeps,
};
use gpu_sim::GpuConfig;
use lego_codegen::cuda::stencil::StencilShape;
use lego_codegen::cuda::transpose::staging_perm;
use lego_codegen::tuning::{
    NwLayoutChoice, RowwiseOp, ScheduleChoice, StagingChoice, StencilLayoutChoice, TunedConfig,
};
use lego_core::brick::{brick3d, row_major3d};
use lego_core::perms::{block_cyclic_rows, morton};
use lego_core::{sugar, Layout, OrderBy, Result};
use lego_expr::{Engine, Expr, RangeEnv, Variant};

/// A tunable workload instance: the problem, not the configuration.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum WorkloadKind {
    /// Square FP16 GEMM `C = A·B`.
    Matmul {
        /// Problem side length.
        n: i64,
    },
    /// Square FP32 out-of-place transpose.
    Transpose {
        /// Problem side length.
        n: i64,
    },
    /// 3-D FP32 stencil sweep.
    Stencil {
        /// The stencil shape.
        shape: StencilShape,
        /// Domain side length.
        n: i64,
    },
    /// Needleman–Wunsch wavefront over an `n×n` scoring matrix.
    Nw {
        /// Scoring-matrix side length.
        n: i64,
        /// Baseline block size (the Rodinia default, 16).
        b: i64,
    },
    /// LU decomposition of an `n×n` matrix.
    Lud {
        /// Matrix side length.
        n: i64,
        /// Baseline LUD block side = CUDA block side (16 in Rodinia).
        bs: i64,
    },
    /// Row-wise streaming operator (softmax / LayerNorm) over an `m×n`
    /// fp16 matrix; the tuned knob is the column block size `BS`.
    Rowwise {
        /// Which operator.
        op: RowwiseOp,
        /// Number of rows.
        m: i64,
        /// Row length (columns).
        n: i64,
    },
}

/// Stable short tag of a rowwise operator, shared by workload names and
/// trace labels.
pub fn rowwise_tag(op: RowwiseOp) -> &'static str {
    op.tag()
}

/// The smallest power of two ≥ `n` (for positive `n`).
fn next_pow2(n: i64) -> i64 {
    (n.max(1) as u64).next_power_of_two() as i64
}

/// Legal rowwise column block sizes for row length `n`: powers of two
/// (the generated Triton kernels require it) from one warp's worth up
/// to a few× the padded row. Never empty: the floor of 32 keeps the
/// default config a member even for degenerate tiny rows.
pub fn rowwise_block_sizes(n: i64) -> Vec<i64> {
    let hi = (next_pow2(n) * 4).clamp(32, 16384);
    let mut out = Vec::new();
    let mut p = 32i64;
    while p <= hi {
        out.push(p);
        p *= 2;
    }
    out
}

impl WorkloadKind {
    /// The workload family tag (`matmul`, `transpose`, `stencil`, `nw`,
    /// `lud`, or the rowwise operator tag) — the request-class label
    /// the tuning service aggregates metrics under.
    pub fn family(&self) -> &'static str {
        match self {
            WorkloadKind::Matmul { .. } => "matmul",
            WorkloadKind::Transpose { .. } => "transpose",
            WorkloadKind::Stencil { .. } => "stencil",
            WorkloadKind::Nw { .. } => "nw",
            WorkloadKind::Lud { .. } => "lud",
            WorkloadKind::Rowwise { op, .. } => op.tag(),
        }
    }

    /// The workload's numeric size parameters in a stable order — the
    /// coordinates the fleet driver's transfer distance
    /// ([`crate::cache::key_distance`]) is computed over. Two workloads
    /// of one family always return equally-shaped lists.
    pub fn size_params(&self) -> Vec<(&'static str, i64)> {
        match *self {
            WorkloadKind::Matmul { n } => vec![("n", n)],
            WorkloadKind::Transpose { n } => vec![("n", n)],
            WorkloadKind::Stencil { n, .. } => vec![("n", n)],
            WorkloadKind::Nw { n, b } => vec![("n", n), ("b", b)],
            WorkloadKind::Lud { n, bs } => vec![("n", n), ("bs", bs)],
            WorkloadKind::Rowwise { m, n, .. } => vec![("m", m), ("n", n)],
        }
    }

    /// Parses a display/cache name (the exact strings [`Self::name`]
    /// produces, e.g. `matmul(n=2048)` or `stencil(star-13pt,n=48)`)
    /// back into a workload — the tuning-service wire protocol names
    /// workloads this way. Errors describe what was wrong, for the
    /// protocol's error responses.
    ///
    /// # Errors
    ///
    /// Unknown family, malformed parameter list, missing/extra/
    /// non-positive parameters.
    pub fn parse(name: &str) -> std::result::Result<WorkloadKind, String> {
        let s = name.trim();
        let (family, rest) = s
            .split_once('(')
            .ok_or_else(|| format!("malformed workload {s:?}: expected family(params)"))?;
        let args = rest
            .strip_suffix(')')
            .ok_or_else(|| format!("malformed workload {s:?}: missing closing paren"))?;

        // `stencil` leads with a shape tag; everything else is k=v only.
        let mut shape: Option<StencilShape> = None;
        let mut params: Vec<(&str, i64)> = Vec::new();
        for (i, part) in args.split(',').enumerate() {
            let part = part.trim();
            match part.split_once('=') {
                Some((k, v)) => {
                    let v: i64 = v.parse().map_err(|_| {
                        format!("workload {s:?}: parameter {k}={v:?} is not an integer")
                    })?;
                    if v <= 0 {
                        return Err(format!("workload {s:?}: parameter {k} must be positive"));
                    }
                    params.push((k, v));
                }
                None if family == "stencil" && i == 0 => {
                    shape = Some(StencilShape::parse(part).ok_or_else(|| {
                        format!("workload {s:?}: unknown stencil shape {part:?} (use e.g. star-13pt, cube-27pt)")
                    })?);
                }
                None => {
                    return Err(format!("workload {s:?}: expected k=v, got {part:?}"));
                }
            }
        }

        let take = |keys: &[&str]| -> std::result::Result<Vec<i64>, String> {
            let got: Vec<&str> = params.iter().map(|(k, _)| *k).collect();
            if got != keys {
                return Err(format!(
                    "workload {s:?}: expected parameters {keys:?}, got {got:?}"
                ));
            }
            Ok(params.iter().map(|(_, v)| *v).collect())
        };

        let rowwise = |op: RowwiseOp| -> std::result::Result<WorkloadKind, String> {
            let v = take(&["m", "n"])?;
            Ok(WorkloadKind::Rowwise {
                op,
                m: v[0],
                n: v[1],
            })
        };

        match family {
            "matmul" => Ok(WorkloadKind::Matmul { n: take(&["n"])?[0] }),
            "transpose" => Ok(WorkloadKind::Transpose { n: take(&["n"])?[0] }),
            "stencil" => {
                let shape =
                    shape.ok_or_else(|| format!("workload {s:?}: missing stencil shape"))?;
                Ok(WorkloadKind::Stencil {
                    shape,
                    n: take(&["n"])?[0],
                })
            }
            "nw" => {
                let v = take(&["n", "b"])?;
                Ok(WorkloadKind::Nw { n: v[0], b: v[1] })
            }
            "lud" => {
                let v = take(&["n", "bs"])?;
                Ok(WorkloadKind::Lud { n: v[0], bs: v[1] })
            }
            "softmax" => rowwise(RowwiseOp::Softmax),
            "layernorm-fwd" => rowwise(RowwiseOp::LayernormFwd),
            "layernorm-bwd" => rowwise(RowwiseOp::LayernormBwd),
            other => Err(format!(
                "unknown workload family {other:?} (use matmul|transpose|stencil|nw|lud|softmax|layernorm-fwd|layernorm-bwd)"
            )),
        }
    }

    /// Stable display/cache name, e.g. `matmul(n=2048)`.
    pub fn name(&self) -> String {
        match self {
            WorkloadKind::Matmul { n } => format!("matmul(n={n})"),
            WorkloadKind::Transpose { n } => format!("transpose(n={n})"),
            WorkloadKind::Stencil { shape, n } => {
                format!("stencil({},n={n})", shape.name())
            }
            WorkloadKind::Nw { n, b } => format!("nw(n={n},b={b})"),
            WorkloadKind::Lud { n, bs } => format!("lud(n={n},bs={bs})"),
            WorkloadKind::Rowwise { op, m, n } => {
                format!("{}(m={m},n={n})", rowwise_tag(*op))
            }
        }
    }

    /// The stable name of the [`gpu_sim::PricingMode`] the cost model
    /// applies to this workload family — part of the tuning-cache key,
    /// so estimates produced under one combining rule are never served
    /// to a search expecting another. Must agree with the modes the
    /// `gpu_sim::trace` builders declare (asserted in tests).
    pub fn pricing_mode(&self) -> &'static str {
        match self {
            // Dependency-serialized wavefront / panel pipelines.
            WorkloadKind::Nw { .. } | WorkloadKind::Lud { .. } => "additive-launch",
            _ => "roofline",
        }
    }

    /// The paper's hand-picked default configuration — the baseline the
    /// tuned result is compared against.
    pub fn default_config(&self) -> TunedConfig {
        match self {
            WorkloadKind::Matmul { n } => {
                // The Fig. 1 config, degraded gracefully for sizes the
                // 128-tile or GM=8 grouping doesn't divide.
                let (bm, bn, bk) = if n % 128 == 0 {
                    (128, 128, 64)
                } else {
                    (64, 64, 32)
                };
                let nt_m = n / bm;
                let gm = [8i64, 4, 2]
                    .into_iter()
                    .find(|g| nt_m % g == 0)
                    .unwrap_or(1);
                TunedConfig::Matmul {
                    bm,
                    bn,
                    bk,
                    schedule: ScheduleChoice::Grouped { gm },
                }
            }
            WorkloadKind::Transpose { .. } => TunedConfig::Transpose {
                t: 32,
                staging: None,
            },
            WorkloadKind::Stencil { n, .. } => TunedConfig::Stencil {
                n: *n,
                layout: StencilLayoutChoice::RowMajorY,
            },
            WorkloadKind::Nw { b, .. } => TunedConfig::Nw {
                b: *b,
                layout: NwLayoutChoice::RowMajor,
            },
            WorkloadKind::Lud { bs, .. } => TunedConfig::Lud { r: 1, t: *bs },
            // The Triton tutorial default: one block covering the whole
            // (power-of-two padded) row.
            WorkloadKind::Rowwise { op, n, .. } => TunedConfig::Rowwise {
                op: *op,
                bs: next_pow2(*n).clamp(32, 16384),
            },
        }
    }
}

/// One point of a search space.
#[derive(Clone, Debug)]
pub struct Candidate {
    /// The kernel configuration.
    pub config: TunedConfig,
    /// Which simplification variant the §IV-A cost model picked for
    /// this layout's index expressions (`None` when the layout has no
    /// symbolic form).
    pub expr_variant: Option<Variant>,
    /// Operation count of the chosen variant.
    pub index_ops: Option<usize>,
}

/// One memoized annotation: the chosen expression variant and its op
/// count (both `None` for layouts without a symbolic form).
type Annotation = (Option<Variant>, Option<usize>);

thread_local! {
    /// The candidate-construction fast path: annotation results per
    /// `(workload, config)` for the tuning session. Metaheuristic
    /// neighbor/crossover moves repeatedly revisit configurations (the
    /// incumbent's whole neighborhood, genetic recombinations of known
    /// parents), and the lowering→simplify→op-count pipeline behind
    /// [`annotate`] is deterministic, so revisits are a map lookup.
    /// Underneath, the thread's `lego_expr` arena memoizes the
    /// per-subtree work even for *fresh* configs that share tile-offset
    /// subexpressions with previously annotated ones.
    static ANNOTATE_CACHE: std::cell::RefCell<
        std::collections::HashMap<(WorkloadKind, TunedConfig), (Annotation, bool)>,
    > = std::cell::RefCell::new(std::collections::HashMap::new());
    /// `(hits, misses)` of [`ANNOTATE_CACHE`], for `BENCH_tuner.json`.
    static ANNOTATE_STATS: std::cell::Cell<(u64, u64)> = const { std::cell::Cell::new((0, 0)) };
    /// `(installed, hits)` of sidecar-imported annotations: entries
    /// installed by [`import_annotations`] and cache hits served from
    /// one of them — the warm-start attribution for the persistent memo
    /// sidecar at this layer.
    static ANNOTATE_SIDECAR: std::cell::Cell<(u64, u64)> = const { std::cell::Cell::new((0, 0)) };
}

/// `(hits, misses)` of the candidate-annotation fast path on this
/// thread, monotone over the session.
pub fn annotate_cache_stats() -> (u64, u64) {
    ANNOTATE_STATS.with(std::cell::Cell::get)
}

/// `(installed, hits)` of sidecar-imported annotations on this thread:
/// how many entries [`import_annotations`] installed, and how many
/// [`Candidate::annotated`] hits were served from an imported entry
/// rather than one derived this session.
pub fn annotate_sidecar_stats() -> (u64, u64) {
    ANNOTATE_SIDECAR.with(std::cell::Cell::get)
}

impl Candidate {
    /// Annotates a configuration with the cheaper expression variant of
    /// the §IV-A cost model — the single constructor both the exhaustive
    /// enumeration and the metaheuristic strategies go through. Results
    /// are memoized per `(workload, config)` for the tuning session and
    /// can be pre-warmed from a persistent sidecar
    /// ([`import_annotations`]).
    pub fn annotated(kind: &WorkloadKind, config: &TunedConfig) -> Candidate {
        let key = (*kind, *config);
        let cached = ANNOTATE_CACHE.with(|c| c.borrow().get(&key).copied());
        let (expr_variant, index_ops) = match cached {
            Some((hit, from_sidecar)) => {
                ANNOTATE_STATS.with(|s| {
                    let (h, m) = s.get();
                    s.set((h + 1, m));
                });
                if from_sidecar {
                    ANNOTATE_SIDECAR.with(|s| {
                        let (i, h) = s.get();
                        s.set((i, h + 1));
                    });
                }
                hit
            }
            None => {
                let fresh = annotate(kind, config);
                ANNOTATE_CACHE.with(|c| c.borrow_mut().insert(key, (fresh, false)));
                ANNOTATE_STATS.with(|s| {
                    let (h, m) = s.get();
                    s.set((h, m + 1));
                });
                fresh
            }
        };
        Candidate {
            config: *config,
            expr_variant,
            index_ops,
        }
    }
}

/// Exports this thread's annotation cache into `sidecar`'s opaque
/// annotation section. Keys are `"{workload}|{config-json}"` (both
/// round-trip through [`WorkloadKind::parse`] / `config_from_json`);
/// values encode the annotation as `"{variant}|{ops}"` with `u`/`x`
/// for unexpanded/expanded and `-` for `None`.
pub fn export_annotations(sidecar: &mut lego_expr::Sidecar) {
    ANNOTATE_CACHE.with(|c| {
        for ((kind, config), ((variant, ops), _)) in c.borrow().iter() {
            let key = format!(
                "{}|{}",
                kind.name(),
                crate::cache::config_to_json(config).render()
            );
            let v = match variant {
                None => '-',
                Some(Variant::Unexpanded) => 'u',
                Some(Variant::Expanded) => 'x',
            };
            let value = match ops {
                None => format!("{v}|-"),
                Some(n) => format!("{v}|{n}"),
            };
            sidecar.set_annotation(&key, &value);
        }
    });
}

/// Installs `sidecar`'s annotation entries into this thread's
/// annotation cache, returning how many were fresh (entries the session
/// has already derived are kept — never overwritten by disk state).
/// Unparseable keys or values are skipped: they belong to a foreign or
/// future encoding and simply never warm anything.
pub fn import_annotations(sidecar: &lego_expr::Sidecar) -> u64 {
    let mut fresh = 0;
    ANNOTATE_CACHE.with(|c| {
        let mut cache = c.borrow_mut();
        for (key, value) in sidecar.annotations() {
            let Some((kind, config, ann)) = parse_annotation(key, value) else {
                continue;
            };
            cache.entry((kind, config)).or_insert_with(|| {
                fresh += 1;
                (ann, true)
            });
        }
    });
    if fresh > 0 {
        ANNOTATE_SIDECAR.with(|s| {
            let (i, h) = s.get();
            s.set((i + fresh, h));
        });
    }
    fresh
}

/// Decodes one sidecar annotation entry (see [`export_annotations`] for
/// the encoding).
fn parse_annotation(key: &str, value: &str) -> Option<(WorkloadKind, TunedConfig, Annotation)> {
    let (kind, config_json) = key.split_once('|')?;
    let kind = WorkloadKind::parse(kind).ok()?;
    let config = crate::cache::config_from_json(&crate::json::Json::parse(config_json).ok()?)?;
    let (variant, ops) = value.split_once('|')?;
    let variant = match variant {
        "-" => None,
        "u" => Some(Variant::Unexpanded),
        "x" => Some(Variant::Expanded),
        _ => return None,
    };
    let ops = match ops {
        "-" => None,
        n => Some(n.parse::<usize>().ok()?),
    };
    Some((kind, config, (variant, ops)))
}

/// The enumerated search space of one workload.
#[derive(Clone, Debug)]
pub struct SearchSpace {
    /// The workload being tuned.
    pub kind: WorkloadKind,
    /// All candidates, default configuration first.
    pub candidates: Vec<Candidate>,
}

impl SearchSpace {
    /// Enumerates the space for `kind`: tile shapes × `OrderBy`
    /// permutation choices, each annotated with the cheaper
    /// expanded/unexpanded expression variant via `lego_expr::cost`.
    pub fn enumerate(kind: WorkloadKind) -> SearchSpace {
        let mut configs = vec![kind.default_config()];
        let push = |c: TunedConfig, configs: &mut Vec<TunedConfig>| {
            if !configs.contains(&c) {
                configs.push(c);
            }
        };
        match kind {
            WorkloadKind::Matmul { n } => {
                const TILES: [(i64, i64, i64); 8] = [
                    (128, 128, 64),
                    (128, 128, 32),
                    (64, 64, 64),
                    (64, 64, 32),
                    (256, 128, 64),
                    (128, 256, 64),
                    (128, 64, 64),
                    (64, 128, 64),
                ];
                for (bm, bn, bk) in TILES {
                    if n % bm != 0 || n % bn != 0 || n % bk != 0 {
                        continue;
                    }
                    let (nt_m, nt_n) = (n / bm, n / bn);
                    let mut schedules = vec![ScheduleChoice::RowMajor];
                    for gm in [4i64, 8, 16] {
                        // The concrete grouped layout factorizes nt_m as
                        // (nt_m/gm)·gm, so gm must divide nt_m.
                        if nt_m % gm == 0 {
                            schedules.push(ScheduleChoice::Grouped { gm });
                        }
                    }
                    if nt_m == nt_n && nt_m.count_ones() == 1 {
                        schedules.push(ScheduleChoice::Morton);
                    }
                    if nt_m % 16 == 0 {
                        schedules.push(ScheduleChoice::BlockCyclic { p: 8, b: 2 });
                    }
                    for schedule in schedules {
                        push(
                            TunedConfig::Matmul {
                                bm,
                                bn,
                                bk,
                                schedule,
                            },
                            &mut configs,
                        );
                    }
                }
            }
            WorkloadKind::Transpose { n } => {
                for t in [16i64, 32] {
                    if n % t != 0 {
                        continue;
                    }
                    for staging in [
                        StagingChoice::Identity,
                        StagingChoice::Swizzle,
                        StagingChoice::ColMajor,
                        StagingChoice::Antidiag,
                        StagingChoice::BlockCyclic { p: 8, b: 4 },
                    ] {
                        push(
                            TunedConfig::Transpose {
                                t,
                                staging: Some(staging),
                            },
                            &mut configs,
                        );
                    }
                }
            }
            WorkloadKind::Stencil { n, .. } => {
                push(
                    TunedConfig::Stencil {
                        n,
                        layout: StencilLayoutChoice::RowMajorZ,
                    },
                    &mut configs,
                );
                for b in [4i64, 8] {
                    if n % b == 0 {
                        push(
                            TunedConfig::Stencil {
                                n,
                                layout: StencilLayoutChoice::Brick { b },
                            },
                            &mut configs,
                        );
                    }
                }
            }
            WorkloadKind::Nw { n, .. } => {
                // Block sizes trade launch count against occupancy: the
                // (b+1)² scoring buffer is the smem footprint, so the
                // largest blocks only fit hardware with a big carveout.
                for b in [16i64, 32, 64, 112, 128, 224] {
                    if n % b != 0 {
                        continue;
                    }
                    for layout in [NwLayoutChoice::RowMajor, NwLayoutChoice::Antidiag] {
                        push(TunedConfig::Nw { b, layout }, &mut configs);
                    }
                }
            }
            WorkloadKind::Lud { n, bs } => {
                for r in [1i64, 2, 4, 8] {
                    if n % (r * bs) == 0 {
                        push(TunedConfig::Lud { r, t: bs }, &mut configs);
                    }
                }
            }
            WorkloadKind::Rowwise { op, n, .. } => {
                for bs in rowwise_block_sizes(n) {
                    push(TunedConfig::Rowwise { op, bs }, &mut configs);
                }
            }
        }
        let candidates = configs
            .into_iter()
            .map(|config| Candidate::annotated(&kind, &config))
            .collect();
        SearchSpace { kind, candidates }
    }
}

/// Builds the concrete layout a candidate configuration describes: the
/// pid→tile schedule for matmul, the smem staging tile for transpose,
/// the 3-D data layout for stencils, the shared-buffer layout for NW,
/// and the coarsened thread layout for LUD.
///
/// # Errors
///
/// Propagates layout construction errors (the enumerated spaces only
/// emit constructible configs).
pub fn build_layout(kind: &WorkloadKind, config: &TunedConfig) -> Result<Layout> {
    match (kind, config) {
        (
            WorkloadKind::Matmul { n },
            TunedConfig::Matmul {
                bm, bn, schedule, ..
            },
        ) => {
            let (nt_m, nt_n) = (n / bm, n / bn);
            match *schedule {
                ScheduleChoice::RowMajor => Layout::identity([nt_m, nt_n]),
                ScheduleChoice::Grouped { gm } => {
                    let g = gm.min(nt_m);
                    let gmax = (nt_m / gm).max(1);
                    sugar::tile_by([vec![Expr::val(nt_m), Expr::val(nt_n)]])?
                        .order_by(OrderBy::new([
                            sugar::col([gmax, 1])?,
                            sugar::col([g, nt_n])?,
                        ])?)
                        .build()
                }
                ScheduleChoice::Morton => Layout::builder([nt_m, nt_n])
                    .order_by(OrderBy::new([morton(nt_m)?])?)
                    .build(),
                ScheduleChoice::BlockCyclic { p, b } => Layout::builder([nt_m, nt_n])
                    .order_by(OrderBy::new([block_cyclic_rows(nt_m, nt_n, p, b)?])?)
                    .build(),
            }
        }
        (WorkloadKind::Transpose { .. }, TunedConfig::Transpose { t, staging }) => match staging {
            None => Layout::identity([*t, *t]),
            Some(choice) => Layout::builder([*t, *t])
                .order_by(OrderBy::new([staging_perm(*t, *choice)?])?)
                .build(),
        },
        (WorkloadKind::Stencil { .. }, TunedConfig::Stencil { n, layout }) => match layout {
            StencilLayoutChoice::RowMajorY | StencilLayoutChoice::RowMajorZ => row_major3d(*n),
            StencilLayoutChoice::Brick { b } => brick3d(*n, *b),
        },
        // NW and LUD layouts come from the generators themselves, so
        // the layout the tuner ranks is by construction the layout
        // `from_tuned` will emit a kernel for.
        (WorkloadKind::Nw { .. }, TunedConfig::Nw { b, layout }) => {
            let k = lego_codegen::cuda::nw::generate(*b)?;
            Ok(match layout {
                NwLayoutChoice::RowMajor => k.baseline,
                NwLayoutChoice::Antidiag => k.optimized,
            })
        }
        (WorkloadKind::Lud { .. }, TunedConfig::Lud { r, t }) => {
            Ok(lego_codegen::cuda::lud::generate(*r, *t)?.layout)
        }
        // The rowwise lane block: one program's `BS`-wide row slice,
        // unit-stride by construction (the generated kernels index it as
        // `row·BS + arange(BS)`).
        (WorkloadKind::Rowwise { .. }, TunedConfig::Rowwise { bs, .. }) => Layout::identity([*bs]),
        _ => Err(lego_core::LayoutError::Unsupported(
            "workload kind and config disagree",
        )),
    }
}

/// Picks the cheaper expanded/unexpanded variant of a candidate's index
/// expressions (§IV-A cost model) and returns `(variant, op_count)`;
/// `(None, None)` when the layout has no symbolic form (e.g. Morton).
fn annotate(kind: &WorkloadKind, config: &TunedConfig) -> (Option<Variant>, Option<usize>) {
    let sym = symbolic_exprs(kind, config);
    let Some((raws, env)) = sym else {
        return (None, None);
    };
    // The annotation cache and the golden semantics transcript are both
    // defined over the fixpoint rewriter, so this always runs the
    // default `Rewrite` strategy; `annotated_ops` exposes the
    // strategy-explicit path for benchmarking saturation.
    let eng = Engine::with_env(env);
    let ops_u: usize = raws.iter().map(|e| eng.op_count(&eng.simplify(e))).sum();
    let ops_e: usize = raws
        .iter()
        .map(|e| eng.op_count(&eng.simplify(&eng.expand(e))))
        .sum();
    if ops_e < ops_u {
        (Some(Variant::Expanded), Some(ops_e))
    } else {
        (Some(Variant::Unexpanded), Some(ops_u))
    }
}

/// Total op count of a candidate's simplified index expressions under an
/// explicit simplification strategy (the cheaper of the expanded and
/// unexpanded variants, like [`Candidate::annotated`]). `None` when the
/// layout has no symbolic form. This is the strategy-explicit path the
/// tuner benchmark uses to compare equality saturation against the
/// fixpoint rewriter; candidate annotation itself always uses the
/// default `Rewrite` strategy.
pub fn annotated_ops(
    kind: &WorkloadKind,
    config: &TunedConfig,
    strategy: lego_expr::SimplifyStrategy,
) -> Option<usize> {
    let (raws, env) = symbolic_exprs(kind, config)?;
    let eng = Engine::with_env(env).with_strategy(strategy);
    let ops_u: usize = raws.iter().map(|e| eng.op_count(&eng.simplify(e))).sum();
    let ops_e: usize = raws
        .iter()
        .map(|e| eng.op_count(&eng.simplify(&eng.expand(e))))
        .sum();
    Some(ops_u.min(ops_e))
}

/// The symbolic index expressions a candidate's kernel would compute,
/// with the range environment they simplify under. `None` when the
/// layout has no symbolic form (e.g. Morton schedules). Public so the
/// IR property tests can exercise exactly the expressions the tuner
/// constructs.
pub fn symbolic_exprs(kind: &WorkloadKind, config: &TunedConfig) -> Option<(Vec<Expr>, RangeEnv)> {
    match (kind, config) {
        (WorkloadKind::Matmul { .. }, _) => {
            let layout = build_layout(kind, config).ok()?;
            let mut env = RangeEnv::new();
            let dims = layout.view().dims_const().ok()?;
            env.set_bounds("pid", Expr::zero(), Expr::val(dims[0] * dims[1]));
            let pids = layout.inv_sym(&Expr::sym("pid")).ok()?;
            Some((pids, env))
        }
        (WorkloadKind::Transpose { .. }, TunedConfig::Transpose { t, staging }) => {
            let mut env = RangeEnv::new();
            for s in ["tx", "ty"] {
                env.set_bounds(s, Expr::zero(), Expr::val(*t));
            }
            match staging {
                // Naive: global in/out indices only.
                None => {
                    env.assume_pos("n");
                    let n = Expr::sym("n");
                    let i = Expr::sym("ty");
                    let j = Expr::sym("tx");
                    Some((vec![&i * &n + &j, &j * &n + &i], env))
                }
                Some(_) => {
                    let layout = build_layout(kind, config).ok()?;
                    let store = layout.apply_sym(&[Expr::sym("ty"), Expr::sym("tx")]).ok()?;
                    let load = layout.apply_sym(&[Expr::sym("tx"), Expr::sym("ty")]).ok()?;
                    Some((vec![store, load], env))
                }
            }
        }
        (WorkloadKind::Stencil { .. }, TunedConfig::Stencil { n, .. }) => {
            let layout = build_layout(kind, config).ok()?;
            let mut env = RangeEnv::new();
            for s in ["x", "y", "z"] {
                env.set_bounds(s, Expr::zero(), Expr::val(*n));
            }
            let off = layout
                .apply_sym(&[Expr::sym("x"), Expr::sym("y"), Expr::sym("z")])
                .ok()?;
            Some((vec![off], env))
        }
        (WorkloadKind::Nw { .. }, TunedConfig::Nw { b, .. }) => {
            let layout = build_layout(kind, config).ok()?;
            let mut env = RangeEnv::new();
            for s in ["i", "j"] {
                env.set_bounds(s, Expr::zero(), Expr::val(b + 1));
            }
            let slot = layout.apply_sym(&[Expr::sym("i"), Expr::sym("j")]).ok()?;
            Some((vec![slot], env))
        }
        (WorkloadKind::Lud { .. }, TunedConfig::Lud { r, t }) => {
            let layout = build_layout(kind, config).ok()?;
            let mut env = RangeEnv::new();
            env.set_bounds("ri", Expr::zero(), Expr::val(*r));
            env.set_bounds("rj", Expr::zero(), Expr::val(*r));
            env.set_bounds("ti", Expr::zero(), Expr::val(*t));
            env.set_bounds("tj", Expr::zero(), Expr::val(*t));
            let point = layout
                .apply_sym(&[
                    Expr::sym("ri"),
                    Expr::sym("rj"),
                    Expr::sym("ti"),
                    Expr::sym("tj"),
                ])
                .ok()?;
            Some((vec![point], env))
        }
        (WorkloadKind::Rowwise { m, .. }, TunedConfig::Rowwise { bs, .. }) => {
            // The per-program global offset of the generated kernels:
            // `row·BS + lane` over the padded M×BS view.
            let mut env = RangeEnv::new();
            env.set_bounds("row", Expr::zero(), Expr::val(*m));
            env.set_bounds("lane", Expr::zero(), Expr::val(*bs));
            let off = Expr::sym("row") * Expr::val(*bs) + Expr::sym("lane");
            Some((vec![off], env))
        }
        _ => None,
    }
}

/// How many times a kernel evaluates its index expressions — scales the
/// candidate's `index_ops` into a flop-side term so cheaper expression
/// variants win ties.
fn index_evals(kind: &WorkloadKind, config: &TunedConfig) -> f64 {
    match (kind, config) {
        (WorkloadKind::Matmul { n }, TunedConfig::Matmul { bm, bn, bk, .. }) => {
            ((n / bm) * (n / bn) * (n / bk)) as f64
        }
        (WorkloadKind::Transpose { n }, _) => (n * n) as f64,
        (WorkloadKind::Stencil { shape, n }, _) => shape.points() as f64 * (n * n * n) as f64,
        // Four buffer accesses per cell update.
        (WorkloadKind::Nw { n, .. }, _) => 4.0 * (n * n) as f64,
        // Point updates of the internal kernel across all factorization
        // steps, ~n²·steps/3.
        (WorkloadKind::Lud { n, .. }, TunedConfig::Lud { r, t }) => {
            (n * n) as f64 * (n / (r * t)) as f64 / 3.0
        }
        // One offset vector per program per column chunk.
        (WorkloadKind::Rowwise { m, n, .. }, TunedConfig::Rowwise { bs, .. }) => {
            (*m as f64) * (n + bs - 1).div_euclid(*bs).max(1) as f64
        }
        _ => 0.0,
    }
}

/// Builds the `gpu-sim` workload trace for one candidate by
/// instantiating the matching [`gpu_sim::trace`] builder — the same
/// builders the `lego-bench` drivers replay — with the tuner's
/// index-expression flop term attached.
pub fn build_workload(kind: &WorkloadKind, candidate: &Candidate, gpu: &GpuConfig) -> Workload {
    let index_flops =
        candidate.index_ops.unwrap_or(0) as f64 * index_evals(kind, &candidate.config);
    match (*kind, candidate.config) {
        (WorkloadKind::Matmul { n }, TunedConfig::Matmul { bm, bn, bk, .. }) => MatmulWaves {
            n,
            bm,
            bn,
            bk,
            index_flops,
            vendor: false,
        }
        .build(gpu),
        (WorkloadKind::Transpose { n }, TunedConfig::Transpose { t, staging }) => TransposeSweeps {
            n,
            t,
            staged: staging.is_some(),
            index_flops,
        }
        .build(gpu),
        (WorkloadKind::Stencil { shape, n }, TunedConfig::Stencil { layout: choice, .. }) => {
            let (block, lane_axis) = stencil_block(&choice, n);
            StencilWalk {
                shape_name: shape.name(),
                offsets: shape.offsets(),
                radius: shape.radius(),
                n,
                block,
                lane_axis,
                index_flops,
            }
            .build(gpu)
        }
        (WorkloadKind::Nw { n, .. }, TunedConfig::Nw { b, .. }) => {
            NwWavefront { n, b, index_flops }.build(gpu)
        }
        (WorkloadKind::Lud { n, .. }, TunedConfig::Lud { r, t }) => LudPanels {
            n,
            bs: r * t,
            t,
            index_flops,
        }
        .build(gpu),
        (WorkloadKind::Rowwise { op, m, n }, TunedConfig::Rowwise { bs, .. }) => {
            // Traffic and flop factors come from the operator itself
            // (`RowwiseOp::{traffic_passes, flops_per_elem}`), the same
            // calibration point `lego-bench`'s driver consumes.
            RowwiseSweep {
                op_name: op.tag().to_string(),
                m,
                n,
                bs,
                passes: op.traffic_passes(),
                flops_per_elem: op.flops_per_elem(),
                index_flops,
            }
            .build(gpu)
        }
        _ => unreachable!("kind/config pairs come from SearchSpace::enumerate"),
    }
}

/// The thread-block tile and warp lane walk of a stencil layout choice.
/// The lane axis must span (up to) a full warp so coalescing is charged
/// per 32-lane access: y-lane blocks put 32 in y, z-lane blocks put the
/// largest 32-capped divisor of `n` in z, bricks use brick-local order.
pub fn stencil_block(choice: &StencilLayoutChoice, n: i64) -> ((i64, i64, i64), LaneAxis) {
    let lane_extent = if n % 32 == 0 {
        32
    } else if n % 16 == 0 {
        16
    } else {
        8
    };
    match choice {
        StencilLayoutChoice::RowMajorY => ((4, lane_extent, 4), LaneAxis::Y),
        StencilLayoutChoice::RowMajorZ => ((4, 4, lane_extent), LaneAxis::Z),
        StencilLayoutChoice::Brick { b } => ((*b, *b, *b), LaneAxis::YZ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The mode name baked into the cache key must agree with the mode
    /// the trace builders actually declare on the built workload — for
    /// every kind, on every device.
    #[test]
    fn pricing_mode_names_match_built_workloads() {
        let kinds = [
            WorkloadKind::Matmul { n: 512 },
            WorkloadKind::Transpose { n: 256 },
            WorkloadKind::Stencil {
                shape: StencilShape::Star(1),
                n: 32,
            },
            WorkloadKind::Nw { n: 256, b: 16 },
            WorkloadKind::Lud { n: 256, bs: 16 },
            WorkloadKind::Rowwise {
                op: RowwiseOp::Softmax,
                m: 128,
                n: 1024,
            },
        ];
        for cfg in [gpu_sim::a100(), gpu_sim::h100(), gpu_sim::mi300()] {
            for kind in kinds {
                let cand = Candidate::annotated(&kind, &kind.default_config());
                let w = build_workload(&kind, &cand, &cfg);
                assert_eq!(
                    w.mode.name(),
                    kind.pricing_mode(),
                    "{} on {}",
                    kind.name(),
                    cfg.name
                );
            }
        }
    }

    #[test]
    fn workload_names_round_trip_through_parse() {
        let kinds = [
            WorkloadKind::Matmul { n: 2048 },
            WorkloadKind::Transpose { n: 1024 },
            WorkloadKind::Stencil {
                shape: StencilShape::Star(2),
                n: 48,
            },
            WorkloadKind::Stencil {
                shape: StencilShape::Cube(1),
                n: 64,
            },
            WorkloadKind::Nw { n: 3584, b: 16 },
            WorkloadKind::Lud { n: 2048, bs: 16 },
            WorkloadKind::Rowwise {
                op: RowwiseOp::Softmax,
                m: 256,
                n: 1024,
            },
            WorkloadKind::Rowwise {
                op: RowwiseOp::LayernormBwd,
                m: 64,
                n: 512,
            },
        ];
        for kind in kinds {
            assert_eq!(
                WorkloadKind::parse(&kind.name()),
                Ok(kind),
                "{}",
                kind.name()
            );
        }
        // Whitespace tolerance (clients hand-write these).
        assert_eq!(
            WorkloadKind::parse(" nw( n=64, b=16 ) "),
            Ok(WorkloadKind::Nw { n: 64, b: 16 })
        );
    }

    #[test]
    fn workload_parse_rejects_malformed_names() {
        for bad in [
            "matmul",                    // no parameter list
            "matmul(n=2048",             // unterminated
            "matmul(m=2048)",            // wrong key
            "matmul(n=2048,extra=1)",    // extra key
            "matmul(n=0)",               // non-positive
            "matmul(n=-4)",              // negative
            "matmul(n=banana)",          // non-integer
            "frobnicate(n=4)",           // unknown family
            "stencil(n=48)",             // missing shape
            "stencil(ball-7pt,n=48)",    // unknown shape
            "nw(n=64)",                  // missing b
            "softmax(n=1024)",           // missing m
            "lud(n=2048,bs=16,extra=1)", // extra key
        ] {
            assert!(WorkloadKind::parse(bad).is_err(), "{bad:?} must not parse");
        }
    }
}
