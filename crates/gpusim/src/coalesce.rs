//! Global-memory coalescing model.
//!
//! A warp's lane addresses (32 on NVIDIA, 64 on a CDNA wavefront) are
//! serviced in fixed-size memory segments (32-byte sectors on
//! A100/H100, 64-byte cache lines on MI300): the memory system moves
//! `distinct_segments × segment_bytes` regardless of how many bytes the
//! warp actually uses. Layout quality is exactly the ratio of useful to
//! moved bytes. The segment width comes from
//! [`GpuConfig::sector_bytes`]; nothing here assumes a lane count — the
//! trace builders emit warp-sized groups for the device being modeled.

use std::collections::HashSet;

use crate::config::GpuConfig;

/// The result of coalescing one warp access.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct CoalesceResult {
    /// Number of distinct sectors touched (memory transactions).
    pub sectors: usize,
    /// Bytes actually requested by the lanes.
    pub useful_bytes: usize,
    /// Bytes moved (`sectors * sector_bytes`).
    pub moved_bytes: usize,
}

impl CoalesceResult {
    /// Useful / moved — 1.0 for perfectly coalesced access.
    pub fn efficiency(&self) -> f64 {
        if self.moved_bytes == 0 {
            return 1.0;
        }
        self.useful_bytes as f64 / self.moved_bytes as f64
    }
}

/// Coalesces one warp access: `addrs` are per-lane *byte* addresses,
/// `access_bytes` the per-lane access width, `sector_bytes` the
/// transaction segment size (32 on A100/H100, 64 on MI300).
pub fn coalesce_warp(addrs: &[i64], access_bytes: usize, sector_bytes: usize) -> CoalesceResult {
    let mut sectors: HashSet<i64> = HashSet::with_capacity(addrs.len());
    for &a in addrs {
        let first = a / sector_bytes as i64;
        let last = (a + access_bytes as i64 - 1) / sector_bytes as i64;
        for s in first..=last {
            sectors.insert(s);
        }
    }
    CoalesceResult {
        sectors: sectors.len(),
        useful_bytes: addrs.len() * access_bytes,
        moved_bytes: sectors.len() * sector_bytes,
    }
}

/// Convenience: coalesces a warp of *element indices* into an array of
/// `elem_bytes`-wide elements starting at byte offset `base`.
pub fn coalesce_elems(
    elem_idx: &[i64],
    elem_bytes: usize,
    base: i64,
    sector_bytes: usize,
) -> CoalesceResult {
    let addrs: Vec<i64> = elem_idx
        .iter()
        .map(|&i| base + i * elem_bytes as i64)
        .collect();
    coalesce_warp(&addrs, elem_bytes, sector_bytes)
}

/// Coalesces a warp of element indices using the memory-segment width
/// of the device `cfg` — the entry point the [`crate::model`] pricing
/// engine uses, so no caller has to know which parameter is the
/// device-dependent one.
pub fn coalesce_elems_on(
    elem_idx: &[i64],
    elem_bytes: usize,
    base: i64,
    cfg: &GpuConfig,
) -> CoalesceResult {
    coalesce_elems(elem_idx, elem_bytes, base, cfg.sector_bytes)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fully_coalesced_fp32_warp_is_4_sectors() {
        // 32 lanes x 4B contiguous = 128B = 4 x 32B sectors.
        let addrs: Vec<i64> = (0..32).map(|i| i * 4).collect();
        let r = coalesce_warp(&addrs, 4, 32);
        assert_eq!(r.sectors, 4);
        assert_eq!(r.useful_bytes, 128);
        assert_eq!(r.moved_bytes, 128);
        assert!((r.efficiency() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn strided_warp_touches_32_sectors() {
        // Stride 2048*4B (a column walk): every lane in its own sector.
        let addrs: Vec<i64> = (0..32).map(|i| i * 2048 * 4).collect();
        let r = coalesce_warp(&addrs, 4, 32);
        assert_eq!(r.sectors, 32);
        assert!((r.efficiency() - 0.125).abs() < 1e-12);
    }

    #[test]
    fn broadcast_is_one_sector() {
        let addrs = vec![64i64; 32];
        let r = coalesce_warp(&addrs, 4, 32);
        assert_eq!(r.sectors, 1);
    }

    #[test]
    fn unaligned_access_straddles() {
        // One lane touching bytes 30..34 crosses a sector boundary.
        let r = coalesce_warp(&[30], 4, 32);
        assert_eq!(r.sectors, 2);
    }

    #[test]
    fn elem_helper_matches_manual() {
        let idx: Vec<i64> = (0..32).collect();
        let a = coalesce_elems(&idx, 4, 0, 32);
        let b = coalesce_warp(&(0..32).map(|i| i * 4).collect::<Vec<_>>(), 4, 32);
        assert_eq!(a, b);
    }

    #[test]
    fn wave64_on_64b_segments_is_fully_coalesced() {
        // 64 contiguous fp32 lanes = 256 B = 4 x 64 B segments on an
        // MI300-shaped device; efficiency stays 1.0 even though both
        // the lane count and the segment width doubled.
        let cfg = crate::config::mi300();
        let idx: Vec<i64> = (0..64).collect();
        let r = coalesce_elems_on(&idx, 4, 0, &cfg);
        assert_eq!(r.sectors, 4);
        assert_eq!(r.moved_bytes, 256);
        assert!((r.efficiency() - 1.0).abs() < 1e-12);
        // A strided wave-64 column walk still pays one segment per lane.
        let col: Vec<i64> = (0..64).map(|i| i * 2048).collect();
        let r = coalesce_elems_on(&col, 4, 0, &cfg);
        assert_eq!(r.sectors, 64);
    }
}
