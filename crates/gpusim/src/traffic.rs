//! The memoized tier-1 **traffic pass** of the two-tier pricing split.
//!
//! [`CostModel::price`](crate::CostModel::price) replays a candidate's
//! warp-level trace (coalescing, bank conflicts, L2 filtering) to
//! produce the bytes-moved totals, then assembles a timing estimate
//! from them. The replay depends only on the candidate's *geometry* —
//! the trace-builder parameters, the layout under test, and the device
//! — while expression variants only perturb the cheap closed-form
//! assembly (`flops`, resources). This module caches the replay's
//! result, a [`TrafficCost`], in a per-thread map keyed by a
//! **geometry fingerprint**, so N variants per geometry cost one trace
//! replay plus N re-timings.
//!
//! The fingerprint is opt-in at the producer: a
//! [`Workload`](crate::Workload) whose `traffic_key` is `None` (every
//! hand-built workload) bypasses the memo entirely, because closures in
//! [`Phase`](crate::Phase) traces are opaque — only the code that built
//! them can promise that a key captures everything the trace reads.
//! The built-in [`crate::trace`] builders all set keys covering their
//! full parameter set plus the device tag; the cost model appends the
//! pricing-device geometry and a structural layout fingerprint before
//! probing the memo (see `CostModel::traffic`).
//!
//! Like the expression memos, the map is thread-local (searches are
//! sharded across threads with no locks) and exportable: the
//! [`export`]/[`import`] pair round-trips entries as stable strings so
//! `lego_tune`'s sidecar can persist the memo across processes.
//! Imported entries are tracked separately so re-warm benefit is
//! measurable ([`sidecar_stats`]).

use std::cell::{Cell, RefCell};
use std::collections::HashMap;

/// The trace-derived traffic totals of one geometry: everything
/// [`CostModel::price`](crate::CostModel::price) learns from replaying
/// the phase traces, and nothing it learns elsewhere.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct TrafficCost {
    /// Bytes that miss past L2 to DRAM, summed over phases (before the
    /// workload's `streamed_bytes` is added at assembly time).
    pub dram_bytes: f64,
    /// Bytes moved through L2, summed over phases (before
    /// `streamed_bytes`).
    pub l2_bytes: f64,
    /// Serialized shared-memory passes, summed over phases.
    pub smem_passes: f64,
    /// L2 / tile-cache hits across the traced phases.
    pub hits: u64,
    /// L2 / tile-cache misses across the traced phases.
    pub misses: u64,
}

thread_local! {
    /// key → (traffic, from_sidecar).
    static MEMO: RefCell<HashMap<String, (TrafficCost, bool)>> =
        RefCell::new(HashMap::new());
    /// (hits, misses) of memo probes — only cacheable prices count.
    static STATS: Cell<(u64, u64)> = const { Cell::new((0, 0)) };
    /// (installed, hits) attributable to sidecar-imported entries.
    static SIDECAR: Cell<(u64, u64)> = const { Cell::new((0, 0)) };
}

/// Probes this thread's traffic memo. Counts a hit or miss; hits on
/// sidecar-imported entries are also attributed to [`sidecar_stats`].
pub(crate) fn lookup(key: &str) -> Option<TrafficCost> {
    MEMO.with(|m| {
        let got = m.borrow().get(key).copied();
        let (h, mi) = STATS.get();
        match got {
            Some((tc, from_sidecar)) => {
                STATS.set((h + 1, mi));
                if from_sidecar {
                    let (inst, sh) = SIDECAR.get();
                    SIDECAR.set((inst, sh + 1));
                }
                Some(tc)
            }
            None => {
                STATS.set((h, mi + 1));
                None
            }
        }
    })
}

/// Records a freshly traced geometry in this thread's memo.
pub(crate) fn insert(key: String, tc: TrafficCost) {
    MEMO.with(|m| {
        m.borrow_mut().entry(key).or_insert((tc, false));
    });
}

/// (hits, misses) of this thread's traffic-memo probes. Uncacheable
/// prices (no `traffic_key`) are not counted.
pub fn memo_stats() -> (u64, u64) {
    STATS.get()
}

/// (installed, hits) of sidecar-imported traffic entries on this
/// thread: how many entries [`import`] added, and how many memo hits
/// they served since.
pub fn sidecar_stats() -> (u64, u64) {
    SIDECAR.get()
}

/// Number of geometries in this thread's traffic memo.
pub fn memo_len() -> usize {
    MEMO.with(|m| m.borrow().len())
}

/// Encodes a [`TrafficCost`] as a stable ASCII string. The f64 fields
/// go through `to_bits` so the round-trip is bit-exact — a memo entry
/// re-imported from disk must price identically to a fresh trace.
fn encode(tc: &TrafficCost) -> String {
    format!(
        "{:016x}.{:016x}.{:016x}.{}.{}",
        tc.dram_bytes.to_bits(),
        tc.l2_bytes.to_bits(),
        tc.smem_passes.to_bits(),
        tc.hits,
        tc.misses
    )
}

/// Decodes [`encode`]'s format. `None` on any malformed field.
fn decode(s: &str) -> Option<TrafficCost> {
    let mut parts = s.split('.');
    let mut bits = |radix| -> Option<u64> { u64::from_str_radix(parts.next()?, radix).ok() };
    let tc = TrafficCost {
        dram_bytes: f64::from_bits(bits(16)?),
        l2_bytes: f64::from_bits(bits(16)?),
        smem_passes: f64::from_bits(bits(16)?),
        hits: bits(10)?,
        misses: bits(10)?,
    };
    match parts.next() {
        None => Some(tc),
        Some(_) => None,
    }
}

/// Snapshots this thread's traffic memo as (geometry key, encoded
/// traffic) pairs for sidecar persistence. Keys are structural — no
/// session-local state — so they remain valid across processes.
pub fn export() -> Vec<(String, String)> {
    MEMO.with(|m| {
        m.borrow()
            .iter()
            .map(|(k, (tc, _))| (k.clone(), encode(tc)))
            .collect()
    })
}

/// Installs persisted (key, encoded traffic) pairs into this thread's
/// memo. Entries this session already traced win over the import;
/// malformed values are skipped. Returns how many entries were added.
pub fn import<'k, I>(entries: I) -> u64
where
    I: IntoIterator<Item = (&'k str, &'k str)>,
{
    MEMO.with(|m| {
        let mut map = m.borrow_mut();
        let mut added = 0u64;
        for (k, v) in entries {
            let Some(tc) = decode(v) else { continue };
            if let std::collections::hash_map::Entry::Vacant(e) = map.entry(k.to_string()) {
                e.insert((tc, true));
                added += 1;
            }
        }
        let (inst, h) = SIDECAR.get();
        SIDECAR.set((inst + added, h));
        added
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn traffic_encoding_round_trips_bit_exactly() {
        let tc = TrafficCost {
            dram_bytes: 1.0e9 / 3.0,
            l2_bytes: f64::MIN_POSITIVE,
            smem_passes: 12345.678,
            hits: u64::MAX,
            misses: 7,
        };
        assert_eq!(decode(&encode(&tc)), Some(tc));
        assert_eq!(decode(""), None);
        assert_eq!(decode("zz.0.0.0.0"), None);
        assert_eq!(decode(&format!("{}.tail", encode(&tc))), None);
    }

    #[test]
    fn import_respects_session_entries_and_tracks_attribution() {
        std::thread::spawn(|| {
            let fresh = TrafficCost {
                dram_bytes: 1.0,
                ..TrafficCost::default()
            };
            insert("geo-a".into(), fresh);
            let stale = encode(&TrafficCost {
                dram_bytes: 2.0,
                ..TrafficCost::default()
            });
            let new = encode(&TrafficCost {
                dram_bytes: 3.0,
                ..TrafficCost::default()
            });
            let added = import(vec![("geo-a", stale.as_str()), ("geo-b", new.as_str())]);
            assert_eq!(added, 1, "session entry wins over import");
            assert_eq!(lookup("geo-a").unwrap().dram_bytes, 1.0);
            assert_eq!(lookup("geo-b").unwrap().dram_bytes, 3.0);
            assert_eq!(lookup("geo-c"), None);
            assert_eq!(memo_stats(), (2, 1));
            assert_eq!(sidecar_stats(), (1, 1), "one imported, one hit on it");
        })
        .join()
        .unwrap();
    }
}
