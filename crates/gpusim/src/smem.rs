//! Shared-memory bank-conflict model.
//!
//! Shared memory is divided into 32 four-byte banks. A warp access
//! serializes into as many passes as the maximum number of *distinct
//! addresses* mapped to one bank (identical addresses broadcast for
//! free). The NW anti-diagonal layout (§V-B) exists precisely to bring
//! this number from ~16-32 down to 1.

use std::collections::HashMap;

/// The result of one warp's shared-memory access.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct BankConflictResult {
    /// Serialized passes (1 = conflict-free).
    pub passes: usize,
    /// Number of lanes that participated.
    pub lanes: usize,
}

/// Computes the conflict degree of a warp access to shared memory.
/// `addrs` are per-lane *byte* addresses; lanes may be fewer than 32
/// (inactive lanes simply absent).
pub fn bank_conflicts(addrs: &[i64], banks: usize, bank_bytes: usize) -> BankConflictResult {
    // bank -> set of distinct word addresses (same word broadcasts).
    let mut per_bank: HashMap<usize, Vec<i64>> = HashMap::new();
    for &a in addrs {
        let word = a / bank_bytes as i64;
        let bank = (word.rem_euclid(banks as i64)) as usize;
        let entry = per_bank.entry(bank).or_default();
        if !entry.contains(&word) {
            entry.push(word);
        }
    }
    let passes = per_bank
        .values()
        .map(Vec::len)
        .max()
        .unwrap_or(0)
        .max(usize::from(!addrs.is_empty()));
    BankConflictResult {
        passes,
        lanes: addrs.len(),
    }
}

/// Computes conflicts for a warp of *element indices* into a 4-byte
/// shared array.
pub fn bank_conflicts_elems(elem_idx: &[i64], banks: usize) -> BankConflictResult {
    let addrs: Vec<i64> = elem_idx.iter().map(|&i| i * 4).collect();
    bank_conflicts(&addrs, banks, 4)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_stride_is_conflict_free() {
        let idx: Vec<i64> = (0..32).collect();
        assert_eq!(bank_conflicts_elems(&idx, 32).passes, 1);
    }

    #[test]
    fn stride_32_is_fully_serialized() {
        let idx: Vec<i64> = (0..32).map(|i| i * 32).collect();
        assert_eq!(bank_conflicts_elems(&idx, 32).passes, 32);
    }

    #[test]
    fn stride_17_is_conflict_free() {
        // Odd strides are co-prime with 32 banks.
        let idx: Vec<i64> = (0..32).map(|i| i * 17).collect();
        assert_eq!(bank_conflicts_elems(&idx, 32).passes, 1);
    }

    #[test]
    fn broadcast_is_free() {
        let idx = vec![5i64; 32];
        assert_eq!(bank_conflicts_elems(&idx, 32).passes, 1);
    }

    #[test]
    fn stride_16_is_two_way_conflict_times_sixteen() {
        // Stride 16 maps lanes onto 2 banks with 16 distinct words each.
        let idx: Vec<i64> = (0..32).map(|i| i * 16).collect();
        assert_eq!(bank_conflicts_elems(&idx, 32).passes, 16);
    }

    #[test]
    fn empty_access_is_zero_passes() {
        assert_eq!(bank_conflicts_elems(&[], 32).passes, 0);
    }
}
