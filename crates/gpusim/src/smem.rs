//! Shared-memory bank-conflict model.
//!
//! Shared memory (LDS on AMD) is divided into banks of fixed-width
//! words — 32 four-byte banks on NVIDIA parts, 64 on an MI300-class
//! device. A warp access serializes into as many passes as the maximum
//! number of *distinct addresses* mapped to one bank (identical
//! addresses broadcast for free). The NW anti-diagonal layout (§V-B)
//! exists precisely to bring this number from ~16-32 down to 1. The
//! bank count and bank word width come from
//! [`GpuConfig::smem_banks`] / [`GpuConfig::bank_bytes`]; the
//! 32-bank/4-byte entry points remain as NVIDIA-shaped conveniences.

use std::collections::HashMap;

use crate::config::GpuConfig;

/// The result of one warp's shared-memory access.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct BankConflictResult {
    /// Serialized passes (1 = conflict-free).
    pub passes: usize,
    /// Number of lanes that participated.
    pub lanes: usize,
}

/// Computes the conflict degree of a warp access to shared memory.
/// `addrs` are per-lane *byte* addresses; lanes may be fewer than 32
/// (inactive lanes simply absent).
pub fn bank_conflicts(addrs: &[i64], banks: usize, bank_bytes: usize) -> BankConflictResult {
    // bank -> set of distinct word addresses (same word broadcasts).
    let mut per_bank: HashMap<usize, Vec<i64>> = HashMap::new();
    for &a in addrs {
        let word = a / bank_bytes as i64;
        let bank = (word.rem_euclid(banks as i64)) as usize;
        let entry = per_bank.entry(bank).or_default();
        if !entry.contains(&word) {
            entry.push(word);
        }
    }
    let passes = per_bank
        .values()
        .map(Vec::len)
        .max()
        .unwrap_or(0)
        .max(usize::from(!addrs.is_empty()));
    BankConflictResult {
        passes,
        lanes: addrs.len(),
    }
}

/// Computes conflicts for a warp of *element indices* into a 4-byte
/// shared array.
pub fn bank_conflicts_elems(elem_idx: &[i64], banks: usize) -> BankConflictResult {
    let addrs: Vec<i64> = elem_idx.iter().map(|&i| i * 4).collect();
    bank_conflicts(&addrs, banks, 4)
}

/// Computes conflicts for a warp of element indices into an
/// `elem_bytes`-wide shared array on the bank geometry of the device
/// `cfg` — the entry point the [`crate::model`] pricing engine uses.
pub fn bank_conflicts_elems_on(
    elem_idx: &[i64],
    elem_bytes: usize,
    cfg: &GpuConfig,
) -> BankConflictResult {
    let addrs: Vec<i64> = elem_idx.iter().map(|&i| i * elem_bytes as i64).collect();
    bank_conflicts(&addrs, cfg.smem_banks, cfg.bank_bytes)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_stride_is_conflict_free() {
        let idx: Vec<i64> = (0..32).collect();
        assert_eq!(bank_conflicts_elems(&idx, 32).passes, 1);
    }

    #[test]
    fn stride_32_is_fully_serialized() {
        let idx: Vec<i64> = (0..32).map(|i| i * 32).collect();
        assert_eq!(bank_conflicts_elems(&idx, 32).passes, 32);
    }

    #[test]
    fn stride_17_is_conflict_free() {
        // Odd strides are co-prime with 32 banks.
        let idx: Vec<i64> = (0..32).map(|i| i * 17).collect();
        assert_eq!(bank_conflicts_elems(&idx, 32).passes, 1);
    }

    #[test]
    fn broadcast_is_free() {
        let idx = vec![5i64; 32];
        assert_eq!(bank_conflicts_elems(&idx, 32).passes, 1);
    }

    #[test]
    fn stride_16_is_two_way_conflict_times_sixteen() {
        // Stride 16 maps lanes onto 2 banks with 16 distinct words each.
        let idx: Vec<i64> = (0..32).map(|i| i * 16).collect();
        assert_eq!(bank_conflicts_elems(&idx, 32).passes, 16);
    }

    #[test]
    fn empty_access_is_zero_passes() {
        assert_eq!(bank_conflicts_elems(&[], 32).passes, 0);
    }

    /// A tiny deterministic LCG for the property tests below (the
    /// workspace has no proptest in registry-less containers).
    struct Lcg(u64);

    impl Lcg {
        fn next(&mut self) -> u64 {
            self.0 = self
                .0
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            self.0 >> 11
        }

        fn below(&mut self, n: u64) -> i64 {
            (self.next() % n) as i64
        }
    }

    /// Doubling the bank count can only reduce conflicts: two words
    /// that collide modulo 64 also collide modulo 32, so any wave-64
    /// pattern that is conflict-free on 32 banks stays conflict-free on
    /// 64 — the MI300 LDS geometry never makes an NVIDIA-clean access
    /// pattern dirty.
    #[test]
    fn doubling_banks_never_adds_conflicts() {
        let mut rng = Lcg(0x5eed_ba4c);
        for round in 0..500 {
            // Mix structured strides with raw random addresses.
            let idx: Vec<i64> = if round % 3 == 0 {
                let stride = 1 + rng.below(48);
                (0..64).map(|l| l * stride).collect()
            } else {
                (0..64).map(|_| rng.below(4096)).collect()
            };
            let p32 = bank_conflicts_elems(&idx, 32).passes;
            let p64 = bank_conflicts_elems(&idx, 64).passes;
            assert!(p64 <= p32, "banks 32->64 worsened {p32} -> {p64}: {idx:?}");
            if p32 == 1 {
                assert_eq!(p64, 1, "conflict-free on 32 banks must stay so on 64");
            }
        }
        // A known witness: an odd-stride wave-64 pattern is 2-way on 32
        // banks (lane i and i+32 collide) but conflict-free on 64 —
        // doubled banks absorb the doubled lane count exactly.
        let idx: Vec<i64> = (0..64).map(|i| i * 17).collect();
        assert_eq!(bank_conflicts_elems(&idx, 32).passes, 2);
        assert_eq!(bank_conflicts_elems(&idx, 64).passes, 1);
    }

    /// Broadcast duplication is free on every geometry: repeating lanes
    /// that access an already-present address never changes the pass
    /// count (same-word accesses broadcast).
    #[test]
    fn conflict_counts_invariant_under_broadcast_duplication() {
        let mut rng = Lcg(0xb40a_dca5);
        for _ in 0..500 {
            let n = 1 + rng.below(64) as usize;
            let idx: Vec<i64> = (0..n).map(|_| rng.below(2048)).collect();
            // Duplicate a random subset of lanes (a wave-64 pattern built
            // by broadcasting a 32-lane one, in the extreme).
            let mut dup = idx.clone();
            for _ in 0..rng.below(64) {
                let pick = idx[rng.below(n as u64) as usize];
                dup.push(pick);
            }
            for (banks, word) in [(32usize, 4usize), (64, 4), (32, 8)] {
                let addrs: Vec<i64> = idx.iter().map(|&i| i * 4).collect();
                let dup_addrs: Vec<i64> = dup.iter().map(|&i| i * 4).collect();
                let a = bank_conflicts(&addrs, banks, word).passes;
                let b = bank_conflicts(&dup_addrs, banks, word).passes;
                assert_eq!(a, b, "broadcast changed passes on {banks}x{word}");
            }
        }
    }

    #[test]
    fn cfg_entry_point_matches_manual_geometry() {
        let cfg = crate::config::mi300();
        let idx: Vec<i64> = (0..64).map(|i| i * 3 + 1).collect();
        assert_eq!(
            bank_conflicts_elems_on(&idx, 4, &cfg),
            bank_conflicts(
                &idx.iter().map(|&i| i * 4).collect::<Vec<_>>(),
                cfg.smem_banks,
                cfg.bank_bytes
            )
        );
    }
}
