//! The device-generic pricing engine: one [`CostModel`] owns the full
//! trace→estimate path.
//!
//! Historically the repo priced traces in *two* places: the shared
//! [`crate::score::score`] oracle (roofline timing, used by `lego-tune`
//! and most `lego-bench` drivers) and a private additive wavefront loop
//! inside `lego-bench`'s NW driver — so an NW table number and the
//! tuner's NW ranking could disagree. This module is the merge point:
//! every estimate, bench or tuner, on any device, is produced by
//! [`CostModel::price`] (the `score()` free function is a thin wrapper
//! kept for call-site convenience). A [`Workload`] now carries its
//! [`PricingMode`], so the dependency-serialized wavefront workloads
//! (NW, LUD) are priced additively by the same engine that prices the
//! overlapped streaming workloads with the roofline — and both crates
//! get bit-identical numbers by construction.
//!
//! Every device-shaped constant — warp size, memory-segment width, bank
//! count and bank word, saturation occupancies — comes from the
//! [`GpuConfig`] handed to [`CostModel::new`], so an MI300-class
//! (warp-64, 64-bank LDS, 64-byte segment) device prices through
//! exactly the same code as the A100.

use lego_core::Layout;

use crate::cache::Cache;
use crate::coalesce::coalesce_elems_on;
use crate::config::GpuConfig;
use crate::score::{Estimate, Phase, Workload};
use crate::smem::bank_conflicts_elems_on;
use crate::tilecache::TileCache;
use crate::timing::{estimate, occupancy_derate, KernelProfile, Pipeline, TimeEstimate};
use crate::traffic::{self, TrafficCost};

/// How a workload's bottleneck terms combine into a runtime.
#[derive(Clone, Copy, Debug, PartialEq, Default)]
pub enum PricingMode {
    /// Overlapped bulk-synchronous execution: runtime is the *maximum*
    /// of the compute / DRAM / L2 / shared-memory terms plus launch
    /// overhead — the standard roofline. Used by matmul, transpose,
    /// stencil and rowwise workloads.
    #[default]
    Roofline,
    /// Dependency-serialized execution (wavefront and panel pipelines):
    /// the launch schedule forbids overlapping compute with the
    /// streamed traffic, so the terms *add*, and in-block compute is
    /// round-quantized by the wavefront schedule. Used by NW and LUD.
    AdditiveLaunch {
        /// Sequential block rounds of the dependency-limited schedule
        /// (`0` = no round quantization: compute comes from `flops`
        /// alone, as in LUD's panel pipeline).
        rounds: f64,
        /// Non-smem instruction cycles each round's block executes.
        step_cycles: f64,
        /// Cycles per serialized shared-memory pass (bank passes are
        /// priced inside the rounds, not as a separate smem term).
        pass_cycles: f64,
        /// Per-launch overhead in seconds — short dependent kernels
        /// pipeline their launches better than the config default.
        launch_overhead_s: f64,
    },
}

impl PricingMode {
    /// Stable name for cache keys and reports.
    pub fn name(&self) -> &'static str {
        match self {
            PricingMode::Roofline => "roofline",
            PricingMode::AdditiveLaunch { .. } => "additive-launch",
        }
    }
}

/// The pricing engine for one device: turns `(layout, workload)` pairs
/// into [`Estimate`]s. This is the *only* path from a trace to cycles —
/// `lego-bench` drivers and the `lego-tune` oracle both go through it.
#[derive(Clone, Copy, Debug)]
pub struct CostModel<'a> {
    cfg: &'a GpuConfig,
}

impl<'a> CostModel<'a> {
    /// A pricing engine for the device `cfg`.
    pub fn new(cfg: &'a GpuConfig) -> CostModel<'a> {
        CostModel { cfg }
    }

    /// The device being modeled.
    pub fn device(&self) -> &GpuConfig {
        self.cfg
    }

    /// Prices one candidate layout against a workload in two tiers:
    /// the [`traffic`](CostModel::traffic) pass replays every phase's
    /// trace through the coalescing / bank-conflict / cache models (all
    /// parameterized by the device) — memoized per geometry — and
    /// [`assemble`](CostModel::assemble) combines the resulting
    /// [`TrafficCost`] with the variant-dependent flops/resources under
    /// the workload's [`PricingMode`].
    pub fn price(&self, layout: &Layout, workload: &Workload) -> Estimate {
        let tc = self.traffic(layout, workload);
        self.assemble(workload, &tc)
    }

    /// Tier 1: the trace-driven traffic pass. When the workload carries
    /// a [`traffic_key`](Workload::traffic_key), the result is memoized
    /// in this thread's geometry cache (see [`crate::traffic`]);
    /// keyless workloads replay the trace unconditionally.
    pub fn traffic(&self, layout: &Layout, workload: &Workload) -> TrafficCost {
        match self.memo_key(layout, workload) {
            Some(key) => match traffic::lookup(&key) {
                Some(tc) => tc,
                None => {
                    let tc = self.trace_traffic(layout, workload);
                    traffic::insert(key, tc);
                    tc
                }
            },
            None => self.trace_traffic(layout, workload),
        }
    }

    /// The full memo key of a cacheable (layout, workload) pair, or
    /// `None` when the pair must be traced fresh. Built from the
    /// producer's geometry prefix plus everything the traffic pass
    /// reads *outside* the trace closures: the pricing device's traffic
    /// geometry, the workload's L2 model and per-phase scalars, and a
    /// structural fingerprint of the layout (skipped when no phase
    /// reads the layout). The trace closures themselves are the only
    /// trust gap, which is exactly what the producer's key opt-in
    /// promises to cover.
    fn memo_key(&self, layout: &Layout, workload: &Workload) -> Option<String> {
        let prefix = workload.traffic_key.as_deref()?;
        let cfg = self.cfg;
        let mut key = String::with_capacity(prefix.len() + 96);
        key.push_str(prefix);
        use std::fmt::Write as _;
        let _ = write!(
            key,
            "|{}:w{}:s{}:c{}:b{}x{}:m{}",
            cfg.tag,
            cfg.warp_size,
            cfg.sector_bytes,
            cfg.l2_bytes,
            cfg.smem_banks,
            cfg.bank_bytes,
            cfg.sm_count
        );
        match workload.l2 {
            Some(m) => {
                let _ = write!(key, "|l2:{}:{}", m.lines, m.assoc);
            }
            None => key.push_str("|l2-"),
        }
        let mut layout_free = true;
        for phase in &workload.phases {
            match phase {
                Phase::Global {
                    elem_bytes, scale, ..
                } => {
                    layout_free = false;
                    let _ = write!(key, "|G{}:{:x}", elem_bytes, scale.to_bits());
                }
                Phase::Shared { scale, .. } => {
                    layout_free = false;
                    let _ = write!(key, "|S{:x}", scale.to_bits());
                }
                Phase::TileTouches { scale, .. } => {
                    layout_free = false;
                    let _ = write!(key, "|T{:x}", scale.to_bits());
                }
                Phase::Streamed {
                    dram_bytes,
                    l2_bytes,
                } => {
                    let _ = write!(key, "|X{:x}:{:x}", dram_bytes.to_bits(), l2_bytes.to_bits());
                }
            }
        }
        if layout_free {
            // No phase receives the layout: traffic is layout-independent.
            key.push_str("|-");
        } else {
            let fp = layout_fingerprint(layout)?;
            key.push('|');
            key.push_str(&fp);
        }
        Some(key)
    }

    /// Replays the phase traces and accumulates their traffic totals —
    /// the uncached body of tier 1.
    fn trace_traffic(&self, layout: &Layout, workload: &Workload) -> TrafficCost {
        let cfg = self.cfg;
        let mut l2_bytes = 0f64;
        let mut dram_bytes = 0f64;
        let mut smem_passes = 0f64;
        let mut hits = 0u64;
        let mut misses = 0u64;

        for phase in &workload.phases {
            match phase {
                Phase::Global {
                    trace,
                    elem_bytes,
                    scale,
                } => {
                    let mut moved = 0f64;
                    let mut cache = workload.l2.map(|m| Cache::new(m.lines, m.assoc));
                    let mut sectors: Vec<i64> = Vec::with_capacity(cfg.warp_size);
                    trace(layout, &mut |idx: &[i64]| {
                        let c = coalesce_elems_on(idx, *elem_bytes, 0, cfg);
                        moved += c.moved_bytes as f64;
                        if let Some(cache) = cache.as_mut() {
                            sectors.clear();
                            sectors.extend(
                                idx.iter()
                                    .map(|&i| i * *elem_bytes as i64 / cfg.sector_bytes as i64),
                            );
                            sectors.sort_unstable();
                            sectors.dedup();
                            for &s in sectors.iter() {
                                cache.access(s);
                            }
                        }
                    });
                    l2_bytes += moved * scale;
                    match cache {
                        Some(cache) => {
                            let stats = cache.stats();
                            hits += stats.hits;
                            misses += stats.misses;
                            dram_bytes += stats.misses as f64 * cfg.sector_bytes as f64 * scale;
                        }
                        // No L2 filtering: streamed straight to DRAM.
                        None => dram_bytes += moved * scale,
                    }
                }
                Phase::Shared { trace, scale } => {
                    let mut passes = 0f64;
                    trace(layout, &mut |idx: &[i64]| {
                        passes += bank_conflicts_elems_on(idx, 4, cfg).passes as f64;
                    });
                    smem_passes += passes * scale;
                }
                Phase::TileTouches { trace, scale } => {
                    let mut tiles = TileCache::new(cfg.l2_bytes);
                    let mut touched = 0f64;
                    trace(layout, &mut |id: i64, bytes: usize| {
                        tiles.touch(id, bytes);
                        touched += bytes as f64;
                    });
                    l2_bytes += touched * scale;
                    dram_bytes += tiles.miss_bytes() as f64 * scale;
                    hits += tiles.hits();
                    misses += tiles.misses();
                }
                Phase::Streamed {
                    dram_bytes: d,
                    l2_bytes: l,
                } => {
                    dram_bytes += d;
                    l2_bytes += l;
                }
            }
        }

        TrafficCost {
            dram_bytes,
            l2_bytes,
            smem_passes,
            hits,
            misses,
        }
    }

    /// Tier 2: the closed-form timing assembly. Combines a traced (or
    /// memoized) [`TrafficCost`] with the variant-dependent parts of
    /// the workload — flops, resources, launches, pricing mode — into
    /// the final [`Estimate`]. Cheap enough that N expression variants
    /// per geometry cost one trace replay plus N calls here.
    pub fn assemble(&self, workload: &Workload, tc: &TrafficCost) -> Estimate {
        let profile = KernelProfile {
            flops: workload.flops,
            dram_bytes: tc.dram_bytes + workload.streamed_bytes,
            l2_bytes: tc.l2_bytes + workload.streamed_bytes,
            smem_passes: tc.smem_passes,
            blocks: workload.blocks,
            launches: workload.launches,
            warps_per_block: workload.resources.warps_per_block,
            regs_per_block: workload.resources.regs_per_block,
            smem_per_block: workload.resources.smem_per_block,
        };
        let t = match workload.mode {
            PricingMode::Roofline => self.price_roofline(workload, &profile),
            PricingMode::AdditiveLaunch {
                rounds,
                step_cycles,
                pass_cycles,
                launch_overhead_s,
            } => self.price_additive(
                workload,
                &profile,
                rounds,
                step_cycles,
                pass_cycles,
                launch_overhead_s,
            ),
        };

        let accesses = tc.hits + tc.misses;
        Estimate {
            time_s: t.total_s,
            breakdown: t,
            dram_bytes: profile.dram_bytes,
            l2_bytes: profile.l2_bytes,
            smem_passes: tc.smem_passes,
            l2_hit_rate: if accesses == 0 {
                0.0
            } else {
                tc.hits as f64 / accesses as f64
            },
            flops: workload.flops,
            useful_bytes: workload.useful_bytes,
        }
    }

    /// An admissible analytic lower bound on [`price`](CostModel::price)
    /// — no trace replay, so it costs nanoseconds and can prune a
    /// candidate before tier 1 runs.
    ///
    /// Admissibility argument, term by term against the pricing modes:
    ///
    /// * **compute floor** — `flops / peak`: every derate in the model
    ///   (`occupancy_derate`) is ≤ 1, so real compute time only grows.
    ///   Under wave quantization the floor sharpens to
    ///   `flops/peak · ⌈blocks/sms⌉·sms/blocks` (≥ the plain floor),
    ///   because a partial wave bills as a full one.
    /// * **memory floor** — guaranteed bytes at un-derated peak
    ///   bandwidth. Guaranteed traffic is `streamed_bytes` plus the
    ///   closure-free [`Phase::Streamed`] charges; trace-derived
    ///   traffic only ever *adds* to it, and the bandwidth derate ≤ 1.
    ///   (`useful_bytes` is deliberately not used: under non-dividing
    ///   tiles the nominal algorithmic minimum can exceed what a
    ///   floored trace actually touches, which would break
    ///   admissibility.)
    /// * **launch floor** — `launches·overhead` is charged exactly by
    ///   both modes, never overlapped.
    ///
    /// Roofline takes the max of the floors (the mode maxes the real
    /// terms); additive-launch adds them (the mode adds the real
    /// terms), plus the round floor `rounds·step_cycles/clock` (real
    /// rounds cost `step_cycles + bank passes` at a derated clock).
    pub fn bound(&self, workload: &Workload) -> f64 {
        let cfg = self.cfg;
        let mut dram = workload.streamed_bytes;
        let mut l2 = workload.streamed_bytes;
        for phase in &workload.phases {
            if let Phase::Streamed {
                dram_bytes,
                l2_bytes,
            } = phase
            {
                dram += dram_bytes;
                l2 += l2_bytes;
            }
        }
        let mem_floor = (dram / (cfg.dram_bw * cfg.dram_efficiency)).max(l2 / cfg.l2_bw);
        let mut compute_floor = workload.flops / self.peak(workload.pipeline);
        match workload.mode {
            PricingMode::Roofline => {
                if workload.wave_quantized && workload.blocks > 0.0 {
                    let sms = cfg.sm_count as f64;
                    compute_floor *= (workload.blocks / sms).ceil() * sms / workload.blocks;
                }
                compute_floor.max(mem_floor) + workload.launches.max(1.0) * cfg.launch_overhead
            }
            PricingMode::AdditiveLaunch {
                rounds,
                step_cycles,
                launch_overhead_s,
                ..
            } => {
                compute_floor
                    + rounds * step_cycles / cfg.clock_hz
                    + mem_floor
                    + workload.launches.max(1.0) * launch_overhead_s
            }
        }
    }

    /// Roofline pricing: overlapped bottleneck terms, with matmul-style
    /// wave quantization when the workload asks for it.
    fn price_roofline(&self, workload: &Workload, profile: &KernelProfile) -> TimeEstimate {
        let cfg = self.cfg;
        let mut t = estimate(profile, workload.pipeline, cfg);
        if workload.wave_quantized && workload.blocks > 0.0 {
            // A partial last wave occupies the machine for a full wave.
            let peak = self.peak(workload.pipeline);
            let issue = occupancy_derate(profile.occupancy(cfg), cfg.issue_sat_occupancy, cfg);
            let per_sm = peak * issue / cfg.sm_count as f64;
            let wave_time = workload.flops / workload.blocks / per_sm;
            let waves = (workload.blocks / cfg.sm_count as f64).ceil();
            t.compute_s = waves * wave_time;
            t.total_s = t.compute_s.max(t.dram_s).max(t.l2_s).max(t.smem_s) + t.overhead_s;
        }
        t
    }

    /// Additive-launch pricing: the calibrated dependent-kernel model
    /// the NW driver used to keep private. Compute is round-quantized
    /// (`rounds` sequential block sweeps, each `step_cycles` plus the
    /// block's serialized bank passes at `pass_cycles` each), memory is
    /// the streamed traffic at derated bandwidth, and the terms *add* —
    /// a wavefront cannot overlap its traffic with the next diagonal's
    /// compute. Occupancy derates both, so a block too big for the SM
    /// (e.g. an NW `b=224` buffer on a 64 KiB-LDS device) is still
    /// finite but punished.
    fn price_additive(
        &self,
        workload: &Workload,
        profile: &KernelProfile,
        rounds: f64,
        step_cycles: f64,
        pass_cycles: f64,
        launch_overhead_s: f64,
    ) -> TimeEstimate {
        let cfg = self.cfg;
        let occ = profile.occupancy(cfg);
        let mem = occupancy_derate(occ, cfg.mem_sat_occupancy, cfg);
        let issue = occupancy_derate(occ, cfg.issue_sat_occupancy, cfg);
        // Bank passes of one block's sweep (the shared phase scales by
        // the block count).
        let block_passes = if workload.blocks > 0.0 {
            profile.smem_passes / workload.blocks
        } else {
            0.0
        };
        let round_cycles = step_cycles + block_passes * pass_cycles;
        let compute_s = profile.flops / (self.peak(workload.pipeline) * issue)
            + rounds * round_cycles / (cfg.clock_hz * issue);
        let dram_s = profile.dram_bytes / (cfg.dram_bw * cfg.dram_efficiency * mem);
        let l2_s = profile.l2_bytes / (cfg.l2_bw * mem);
        let overhead_s = profile.launches.max(1.0) * launch_overhead_s;
        // Bank serialization is inside the rounds; no separate smem term.
        let total_s = compute_s + dram_s.max(l2_s) + overhead_s;
        TimeEstimate {
            compute_s,
            dram_s,
            l2_s,
            smem_s: 0.0,
            overhead_s,
            total_s,
        }
    }

    fn peak(&self, pipeline: Pipeline) -> f64 {
        match pipeline {
            Pipeline::Fp32 => self.cfg.fp32_flops,
            Pipeline::TensorFp16 => self.cfg.fp16_tc_flops,
        }
    }

    /// Prices a batch of candidates in parallel, preserving order.
    ///
    /// The traffic memo is probed on the calling thread first (spawned
    /// threads would see fresh thread-locals): warm geometries assemble
    /// inline, and only the cold traces fan out over
    /// `available_parallelism` OS threads — inline when fewer than
    /// `INLINE_BATCH` remain, since spawning costs more than a
    /// handful of traces. Fresh traces are recorded back into the
    /// calling thread's memo. Chunks are sized so no spawned thread
    /// receives an empty tail.
    pub fn price_batch(&self, jobs: Vec<(Layout, Workload)>) -> Vec<Estimate> {
        let n = jobs.len();
        if n == 0 {
            return Vec::new();
        }
        let mut keys: Vec<Option<String>> = jobs.iter().map(|(l, w)| self.memo_key(l, w)).collect();
        let mut traffic: Vec<Option<TrafficCost>> = vec![None; n];
        let mut cold: Vec<usize> = Vec::new();
        for (i, key) in keys.iter().enumerate() {
            match key.as_deref().and_then(traffic::lookup) {
                Some(tc) => traffic[i] = Some(tc),
                None => cold.push(i),
            }
        }
        let threads = std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1)
            .min(cold.len());
        if threads <= 1 || cold.len() < Self::INLINE_BATCH {
            for &i in &cold {
                traffic[i] = Some(self.trace_traffic(&jobs[i].0, &jobs[i].1));
            }
        } else {
            let mut traced: Vec<Option<TrafficCost>> = vec![None; cold.len()];
            let chunk = cold.len().div_ceil(threads);
            let (jobs_ref, cold_ref) = (&jobs, &cold);
            std::thread::scope(|s| {
                for (ci, out) in traced.chunks_mut(chunk).enumerate() {
                    s.spawn(move || {
                        for (k, slot) in out.iter_mut().enumerate() {
                            let (layout, workload) = &jobs_ref[cold_ref[ci * chunk + k]];
                            *slot = Some(self.trace_traffic(layout, workload));
                        }
                    });
                }
            });
            for (k, tc) in traced.into_iter().enumerate() {
                traffic[cold[k]] = tc;
            }
        }
        for &i in &cold {
            if let Some(key) = keys[i].take() {
                traffic::insert(key, traffic[i].expect("traced"));
            }
        }
        jobs.iter()
            .zip(&traffic)
            .map(|((_, w), tc)| self.assemble(w, &tc.expect("traced")))
            .collect()
    }

    /// Below this many cold traces, [`price_batch`](Self::price_batch)
    /// stays on the calling thread: thread spawn + scope teardown cost
    /// more than the traces themselves.
    const INLINE_BATCH: usize = 8;
}

/// A structural fingerprint of a layout for the traffic memo key:
/// layouts that fingerprint equal induce the identical logical→physical
/// map, hence identical traces. Identity layouts (no reordering chain)
/// fingerprint from the view dims alone; reordered layouts hash the
/// full `to_permutation` table (FNV-1a over the physical positions).
/// `None` — symbolic dims, unevaluable chains — means uncacheable.
fn layout_fingerprint(layout: &Layout) -> Option<String> {
    let dims = layout.view().dims_const().ok()?;
    if layout.orders().is_empty() {
        return Some(format!("id{dims:?}"));
    }
    let perm = layout.to_permutation().ok()?;
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &p in &perm {
        h ^= p as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    Some(format!("p{dims:?}x{h:016x}"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::a100;
    use crate::score::{BlockResources, Phase, Workload};

    fn additive_workload(rounds: f64, launches: f64) -> Workload {
        Workload {
            name: "wavefront".into(),
            pipeline: Pipeline::Fp32,
            flops: 0.0,
            useful_bytes: 1e6,
            streamed_bytes: 1e6,
            blocks: 8.0,
            launches,
            wave_quantized: false,
            l2: None,
            resources: BlockResources::default(),
            mode: PricingMode::AdditiveLaunch {
                rounds,
                step_cycles: 100.0,
                pass_cycles: 5.0,
                launch_overhead_s: 2.0e-6,
            },
            traffic_key: None,
            phases: vec![Phase::Shared {
                trace: Box::new(|_layout, sink| {
                    let idx: Vec<i64> = (0..32).collect();
                    sink(&idx);
                }),
                // One conflict-free pass per block.
                scale: 8.0,
            }],
        }
    }

    #[test]
    fn additive_terms_sum_instead_of_overlapping() {
        let cfg = a100();
        let model = CostModel::new(&cfg);
        let layout = Layout::identity([64i64]).unwrap();
        let e = model.price(&layout, &additive_workload(10.0, 4.0));
        let b = e.breakdown;
        // compute = rounds * (step + passes_per_block * pass_cycles) / clock.
        let want_compute = 10.0 * (100.0 + 1.0 * 5.0) / cfg.clock_hz;
        assert!((b.compute_s - want_compute).abs() < 1e-15);
        assert!((b.overhead_s - 4.0 * 2.0e-6).abs() < 1e-18);
        assert!((b.total_s - (b.compute_s + b.dram_s + b.overhead_s)).abs() < 1e-15);
        assert_eq!(b.smem_s, 0.0, "bank passes priced inside the rounds");
    }

    #[test]
    fn additive_rounds_scale_compute_linearly() {
        let cfg = a100();
        let model = CostModel::new(&cfg);
        let layout = Layout::identity([64i64]).unwrap();
        let e1 = model.price(&layout, &additive_workload(10.0, 1.0));
        let e2 = model.price(&layout, &additive_workload(20.0, 1.0));
        assert!((e2.breakdown.compute_s / e1.breakdown.compute_s - 2.0).abs() < 1e-12);
    }

    #[test]
    fn mode_names_are_stable() {
        assert_eq!(PricingMode::Roofline.name(), "roofline");
        assert_eq!(
            PricingMode::AdditiveLaunch {
                rounds: 0.0,
                step_cycles: 0.0,
                pass_cycles: 0.0,
                launch_overhead_s: 0.0
            }
            .name(),
            "additive-launch"
        );
    }
}
