//! # gpu-sim — a trace-driven GPU performance model
//!
//! The hardware substrate for the LEGO reproduction: the paper evaluates
//! on an NVIDIA A100; this crate replaces the GPU with an analytic +
//! trace-driven model of exactly the quantities the paper's layout
//! experiments manipulate:
//!
//! * [`coalesce`] — warp-level global-memory sector coalescing;
//! * [`smem`] — shared-memory bank-conflict serialization (NW);
//! * [`cache`] / [`tilecache`] — LRU L2 models at element and tile
//!   granularity (stencils, matmul grouping);
//! * [`timing`] — the bulk-synchronous roofline timing model with a
//!   per-SM occupancy term;
//! * [`roofline`] — Fig. 13-style attainable-performance curves;
//! * [`config`] — A100, H100 and MI300 (warp-64) hardware parameters,
//!   including per-device bank geometry, segment width and saturation
//!   occupancies;
//! * [`model`] — the device-generic pricing engine: one [`CostModel`]
//!   owns the full trace→estimate path under a per-workload
//!   [`PricingMode`] (roofline for overlapped kernels, additive launch
//!   for the NW/LUD wavefront pipelines);
//! * [`mod@score`] — the one-call `score(layout, workload, cfg)` face of
//!   the cost model the `lego-tune` autotuner searches with, plus
//!   parallel batch scoring;
//! * [`traffic`] — the per-thread geometry-keyed memo of the two-tier
//!   pricing split: one trace replay serves every expression variant of
//!   a geometry, and the memo exports/imports through the persistent
//!   sidecar;
//! * [`trace`] — the shared workload trace builders that both the
//!   `lego-bench` paper reproductions and the `lego-tune` search space
//!   consume, so their estimates cannot drift apart.
//!
//! Layouts change *addresses*; this model turns address streams into
//! sectors, conflicts, hits, and finally time. Absolute times are
//! modeled, but the relative effects — who wins, by what factor, where
//! the crossovers sit — derive from the same mechanisms as on silicon.
//!
//! ```
//! use gpu_sim::coalesce::coalesce_elems;
//! // A warp reading a matrix column (stride 2048) moves 8x the data of
//! // a row read:
//! let col: Vec<i64> = (0..32).map(|i| i * 2048).collect();
//! let row: Vec<i64> = (0..32).collect();
//! let (c, r) = (coalesce_elems(&col, 4, 0, 32), coalesce_elems(&row, 4, 0, 32));
//! assert_eq!(c.moved_bytes / r.moved_bytes, 8);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod coalesce;
pub mod config;
pub mod model;
pub mod roofline;
pub mod score;
pub mod smem;
pub mod tilecache;
pub mod timing;
pub mod trace;
pub mod traffic;

pub use cache::{Cache, CacheStats};
pub use coalesce::{coalesce_elems, coalesce_elems_on, coalesce_warp, CoalesceResult};
pub use config::{a100, by_name, h100, lookup, mi300, GpuConfig, DEVICE_TAGS};
pub use model::{CostModel, PricingMode};
pub use roofline::{attainable, ridge, RooflinePoint};
pub use score::{score, score_batch, BlockResources, Estimate, L2Model, Phase, ScoreJob, Workload};
pub use smem::{bank_conflicts, bank_conflicts_elems, bank_conflicts_elems_on, BankConflictResult};
pub use tilecache::TileCache;
pub use timing::{
    achieved_bandwidth, achieved_flops, estimate, KernelProfile, Pipeline, TimeEstimate,
};
pub use trace::{
    LaneAxis, LudPanels, MatmulWaves, NwWavefront, RowwiseSweep, StencilWalk, TraceBuilder,
    TransposeSweeps,
};
pub use traffic::{
    export as export_traffic, import as import_traffic, memo_stats as traffic_memo_stats,
    sidecar_stats as traffic_sidecar_stats, TrafficCost,
};
