//! GPU hardware configurations for the performance model.
//!
//! The default is an NVIDIA A100-80GB (SXM), the machine of the paper's
//! evaluation (§V). Only parameters the model actually uses are included.

/// Hardware parameters consumed by the timing model.
#[derive(Clone, Debug, PartialEq)]
pub struct GpuConfig {
    /// Human-readable device name.
    pub name: &'static str,
    /// Number of streaming multiprocessors.
    pub sm_count: usize,
    /// Threads per warp.
    pub warp_size: usize,
    /// Number of shared-memory banks.
    pub smem_banks: usize,
    /// Bytes per shared-memory bank word.
    pub bank_bytes: usize,
    /// DRAM (HBM) bandwidth in bytes/second.
    pub dram_bw: f64,
    /// L2 bandwidth in bytes/second.
    pub l2_bw: f64,
    /// L2 capacity in bytes.
    pub l2_bytes: usize,
    /// Global-memory transaction (sector) size in bytes.
    pub sector_bytes: usize,
    /// FP32 FMA peak in FLOP/s.
    pub fp32_flops: f64,
    /// FP16 tensor-core peak in FLOP/s.
    pub fp16_tc_flops: f64,
    /// SM clock in Hz.
    pub clock_hz: f64,
    /// Fraction of peak DRAM bandwidth achievable by a well-tuned
    /// streaming kernel (measured copy efficiency).
    pub dram_efficiency: f64,
    /// Fixed per-kernel-launch overhead in seconds.
    pub launch_overhead: f64,
}

/// The A100-80GB configuration used throughout the evaluation.
pub fn a100() -> GpuConfig {
    GpuConfig {
        name: "NVIDIA A100-SXM4-80GB",
        sm_count: 108,
        warp_size: 32,
        smem_banks: 32,
        bank_bytes: 4,
        dram_bw: 2.039e12, // 2039 GB/s HBM2e
        l2_bw: 5.0e12,     // ~5 TB/s aggregate L2
        l2_bytes: 40 * 1024 * 1024,
        sector_bytes: 32,
        fp32_flops: 19.5e12,
        fp16_tc_flops: 312.0e12,
        clock_hz: 1.41e9,
        dram_efficiency: 0.85,
        launch_overhead: 4.0e-6,
    }
}

impl Default for GpuConfig {
    fn default() -> GpuConfig {
        a100()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn a100_basics() {
        let c = a100();
        assert_eq!(c.sm_count, 108);
        assert_eq!(c.warp_size, 32);
        assert_eq!(c.smem_banks, 32);
        assert!(c.fp16_tc_flops > c.fp32_flops);
    }

    #[test]
    fn default_is_a100() {
        assert_eq!(GpuConfig::default(), a100());
    }
}
