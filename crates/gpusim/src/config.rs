//! GPU hardware configurations for the performance model.
//!
//! The default is an NVIDIA A100-80GB (SXM), the machine of the paper's
//! evaluation (§V); [`h100`] is a Hopper-class sibling for cross-hardware
//! tuning, and [`mi300`] is an AMD CDNA3-class device with a 64-lane
//! wavefront, LDS-style banking and 64-byte memory segments — the
//! portability stress test for every place the model used to assume
//! NVIDIA shapes. Only parameters the model actually uses are included.

/// Hardware parameters consumed by the timing model.
#[derive(Clone, Debug, PartialEq)]
pub struct GpuConfig {
    /// Human-readable device name.
    pub name: &'static str,
    /// Short stable tag (`a100`/`h100`/`mi300`) for CLI flags and
    /// artifact file names.
    pub tag: &'static str,
    /// Number of streaming multiprocessors (compute units).
    pub sm_count: usize,
    /// Threads per warp (wavefront).
    pub warp_size: usize,
    /// Number of shared-memory (LDS) banks.
    pub smem_banks: usize,
    /// Bytes per shared-memory bank word.
    pub bank_bytes: usize,
    /// DRAM (HBM) bandwidth in bytes/second.
    pub dram_bw: f64,
    /// L2 bandwidth in bytes/second.
    pub l2_bw: f64,
    /// L2 capacity in bytes.
    pub l2_bytes: usize,
    /// Global-memory transaction (sector / segment) size in bytes.
    pub sector_bytes: usize,
    /// FP32 FMA peak in FLOP/s.
    pub fp32_flops: f64,
    /// FP16 tensor/matrix-core peak in FLOP/s.
    pub fp16_tc_flops: f64,
    /// SM clock in Hz.
    pub clock_hz: f64,
    /// Fraction of peak DRAM bandwidth achievable by a well-tuned
    /// streaming kernel (measured copy efficiency).
    pub dram_efficiency: f64,
    /// Fixed per-kernel-launch overhead in seconds.
    pub launch_overhead: f64,
    /// Register file size per SM (32-bit registers).
    pub regs_per_sm: usize,
    /// Shared memory per SM in bytes (maximum carveout).
    pub smem_per_sm: usize,
    /// Maximum resident warps per SM.
    pub max_warps_per_sm: usize,
    /// Occupancy fraction (of the warp cap) at which memory latency is
    /// fully hidden; below it achievable DRAM/L2 bandwidth scales
    /// linearly with occupancy.
    pub mem_sat_occupancy: f64,
    /// Occupancy fraction at which the issue pipelines (compute and
    /// shared-memory access) saturate.
    pub issue_sat_occupancy: f64,
}

/// The A100-80GB configuration used throughout the evaluation.
pub fn a100() -> GpuConfig {
    GpuConfig {
        name: "NVIDIA A100-SXM4-80GB",
        tag: "a100",
        sm_count: 108,
        warp_size: 32,
        smem_banks: 32,
        bank_bytes: 4,
        dram_bw: 2.039e12, // 2039 GB/s HBM2e
        l2_bw: 5.0e12,     // ~5 TB/s aggregate L2
        l2_bytes: 40 * 1024 * 1024,
        sector_bytes: 32,
        fp32_flops: 19.5e12,
        fp16_tc_flops: 312.0e12,
        clock_hz: 1.41e9,
        dram_efficiency: 0.85,
        launch_overhead: 4.0e-6,
        regs_per_sm: 64 * 1024,
        smem_per_sm: 164 * 1024,
        max_warps_per_sm: 64,
        mem_sat_occupancy: crate::timing::MEM_SAT_OCCUPANCY,
        issue_sat_occupancy: crate::timing::ISSUE_SAT_OCCUPANCY,
    }
}

/// An H100-80GB (SXM5) configuration: more SMs, faster HBM3, a larger
/// L2 and shared-memory carveout than the A100 — the same register file
/// and warp cap, so occupancy limits bind differently across the two.
pub fn h100() -> GpuConfig {
    GpuConfig {
        name: "NVIDIA H100-SXM5-80GB",
        tag: "h100",
        sm_count: 132,
        warp_size: 32,
        smem_banks: 32,
        bank_bytes: 4,
        dram_bw: 3.35e12, // 3350 GB/s HBM3
        l2_bw: 7.5e12,
        l2_bytes: 50 * 1024 * 1024,
        sector_bytes: 32,
        fp32_flops: 66.9e12,
        fp16_tc_flops: 989.4e12, // dense (no sparsity)
        clock_hz: 1.98e9,
        dram_efficiency: 0.85,
        launch_overhead: 4.0e-6,
        regs_per_sm: 64 * 1024,
        smem_per_sm: 228 * 1024,
        max_warps_per_sm: 64,
        mem_sat_occupancy: crate::timing::MEM_SAT_OCCUPANCY,
        issue_sat_occupancy: crate::timing::ISSUE_SAT_OCCUPANCY,
    }
}

/// An MI300X-class (CDNA3) configuration: 64-lane wavefronts, 64
/// LDS banks of 4-byte words, 64-byte memory segments, a 64 KiB LDS
/// per CU and a 32-wave residency cap — every shape the NVIDIA configs
/// share is different here, which is exactly what makes it the
/// portability stress test. Wider waves hide latency with fewer
/// resident waves, so the saturation occupancies sit higher than the
/// NVIDIA defaults relative to the (smaller) wave cap.
pub fn mi300() -> GpuConfig {
    GpuConfig {
        name: "AMD Instinct MI300X",
        tag: "mi300",
        sm_count: 304, // compute units across all XCDs
        warp_size: 64,
        smem_banks: 64,
        bank_bytes: 4,
        dram_bw: 5.3e12, // 5300 GB/s HBM3
        l2_bw: 1.0e13,
        l2_bytes: 64 * 1024 * 1024, // LLC working slice
        sector_bytes: 64,           // 64 B cache-line segments
        fp32_flops: 163.4e12,
        fp16_tc_flops: 1307.4e12,
        clock_hz: 2.1e9,
        dram_efficiency: 0.80,
        launch_overhead: 6.0e-6, // ROCm dispatch is a bit heavier
        regs_per_sm: 128 * 1024, // 512 KiB VGPR file per CU
        smem_per_sm: 64 * 1024,  // LDS
        max_warps_per_sm: 32,    // 8 waves x 4 SIMDs
        mem_sat_occupancy: 0.375,
        issue_sat_occupancy: 0.5,
    }
}

/// Looks a device configuration up by its CLI tag (`a100`, `h100`,
/// `mi300`).
pub fn by_name(tag: &str) -> Option<GpuConfig> {
    match tag {
        "a100" => Some(a100()),
        "h100" => Some(h100()),
        "mi300" => Some(mi300()),
        _ => None,
    }
}

/// The tags [`by_name`] accepts, for usage messages.
pub const DEVICE_TAGS: [&str; 3] = ["a100", "h100", "mi300"];

/// Looks a device up by CLI tag *or* full marketing name,
/// ASCII-case-insensitively and ignoring surrounding whitespace — the
/// forgiving lookup the tuning-service wire protocol uses, so a client
/// may say `"h100"`, `"H100"`, or `"NVIDIA H100-SXM5-80GB"` and reach
/// the same model. The strict [`by_name`] stays the CLI entry point.
pub fn lookup(name: &str) -> Option<GpuConfig> {
    let want = name.trim();
    DEVICE_TAGS
        .iter()
        .filter_map(|t| by_name(t))
        .find(|cfg| cfg.tag.eq_ignore_ascii_case(want) || cfg.name.eq_ignore_ascii_case(want))
}

impl Default for GpuConfig {
    fn default() -> GpuConfig {
        a100()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn a100_basics() {
        let c = a100();
        assert_eq!(c.sm_count, 108);
        assert_eq!(c.warp_size, 32);
        assert_eq!(c.smem_banks, 32);
        assert!(c.fp16_tc_flops > c.fp32_flops);
    }

    #[test]
    fn default_is_a100() {
        assert_eq!(GpuConfig::default(), a100());
    }

    #[test]
    fn h100_outclasses_a100_except_occupancy_limits() {
        let (a, h) = (a100(), h100());
        assert!(h.sm_count > a.sm_count);
        assert!(h.dram_bw > a.dram_bw);
        assert!(h.smem_per_sm > a.smem_per_sm);
        // Same register file and warp cap: register-bound kernels
        // occupy both generations identically.
        assert_eq!(h.regs_per_sm, a.regs_per_sm);
        assert_eq!(h.max_warps_per_sm, a.max_warps_per_sm);
    }

    #[test]
    fn mi300_breaks_every_nvidia_shape() {
        let (a, m) = (a100(), mi300());
        // Warp-64 wavefronts, doubled banks, wider segments: every
        // parameter the coalescer and bank model consume differs.
        assert_eq!(m.warp_size, 2 * a.warp_size);
        assert_eq!(m.smem_banks, 2 * a.smem_banks);
        assert_eq!(m.sector_bytes, 2 * a.sector_bytes);
        // A smaller LDS and wave cap than the NVIDIA carveouts: the
        // occupancy model must bind differently.
        assert!(m.smem_per_sm < a.smem_per_sm);
        assert!(m.max_warps_per_sm < a.max_warps_per_sm);
        // Per-device saturation points are fields now, not globals.
        assert!(m.mem_sat_occupancy > a.mem_sat_occupancy);
    }

    #[test]
    fn by_name_round_trips_tags() {
        for tag in DEVICE_TAGS {
            let cfg = by_name(tag).expect("known tag");
            assert_eq!(cfg.tag, tag);
        }
        assert!(by_name("v100").is_none());
    }

    #[test]
    fn lookup_accepts_tags_and_full_names() {
        for tag in DEVICE_TAGS {
            let strict = by_name(tag).unwrap();
            assert_eq!(lookup(tag).unwrap().tag, tag);
            assert_eq!(lookup(&tag.to_uppercase()).unwrap().tag, tag);
            assert_eq!(lookup(strict.name).unwrap().tag, tag);
            assert_eq!(
                lookup(&format!("  {}  ", strict.name.to_lowercase()))
                    .unwrap()
                    .tag,
                tag
            );
        }
        assert!(lookup("v100").is_none());
        assert!(lookup("").is_none());
    }
}
