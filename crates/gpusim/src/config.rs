//! GPU hardware configurations for the performance model.
//!
//! The default is an NVIDIA A100-80GB (SXM), the machine of the paper's
//! evaluation (§V); [`h100`] is a Hopper-class sibling for cross-hardware
//! tuning. Only parameters the model actually uses are included.

/// Hardware parameters consumed by the timing model.
#[derive(Clone, Debug, PartialEq)]
pub struct GpuConfig {
    /// Human-readable device name.
    pub name: &'static str,
    /// Number of streaming multiprocessors.
    pub sm_count: usize,
    /// Threads per warp.
    pub warp_size: usize,
    /// Number of shared-memory banks.
    pub smem_banks: usize,
    /// Bytes per shared-memory bank word.
    pub bank_bytes: usize,
    /// DRAM (HBM) bandwidth in bytes/second.
    pub dram_bw: f64,
    /// L2 bandwidth in bytes/second.
    pub l2_bw: f64,
    /// L2 capacity in bytes.
    pub l2_bytes: usize,
    /// Global-memory transaction (sector) size in bytes.
    pub sector_bytes: usize,
    /// FP32 FMA peak in FLOP/s.
    pub fp32_flops: f64,
    /// FP16 tensor-core peak in FLOP/s.
    pub fp16_tc_flops: f64,
    /// SM clock in Hz.
    pub clock_hz: f64,
    /// Fraction of peak DRAM bandwidth achievable by a well-tuned
    /// streaming kernel (measured copy efficiency).
    pub dram_efficiency: f64,
    /// Fixed per-kernel-launch overhead in seconds.
    pub launch_overhead: f64,
    /// Register file size per SM (32-bit registers).
    pub regs_per_sm: usize,
    /// Shared memory per SM in bytes (maximum carveout).
    pub smem_per_sm: usize,
    /// Maximum resident warps per SM.
    pub max_warps_per_sm: usize,
}

/// The A100-80GB configuration used throughout the evaluation.
pub fn a100() -> GpuConfig {
    GpuConfig {
        name: "NVIDIA A100-SXM4-80GB",
        sm_count: 108,
        warp_size: 32,
        smem_banks: 32,
        bank_bytes: 4,
        dram_bw: 2.039e12, // 2039 GB/s HBM2e
        l2_bw: 5.0e12,     // ~5 TB/s aggregate L2
        l2_bytes: 40 * 1024 * 1024,
        sector_bytes: 32,
        fp32_flops: 19.5e12,
        fp16_tc_flops: 312.0e12,
        clock_hz: 1.41e9,
        dram_efficiency: 0.85,
        launch_overhead: 4.0e-6,
        regs_per_sm: 64 * 1024,
        smem_per_sm: 164 * 1024,
        max_warps_per_sm: 64,
    }
}

/// An H100-80GB (SXM5) configuration: more SMs, faster HBM3, a larger
/// L2 and shared-memory carveout than the A100 — the same register file
/// and warp cap, so occupancy limits bind differently across the two.
pub fn h100() -> GpuConfig {
    GpuConfig {
        name: "NVIDIA H100-SXM5-80GB",
        sm_count: 132,
        warp_size: 32,
        smem_banks: 32,
        bank_bytes: 4,
        dram_bw: 3.35e12, // 3350 GB/s HBM3
        l2_bw: 7.5e12,
        l2_bytes: 50 * 1024 * 1024,
        sector_bytes: 32,
        fp32_flops: 66.9e12,
        fp16_tc_flops: 989.4e12, // dense (no sparsity)
        clock_hz: 1.98e9,
        dram_efficiency: 0.85,
        launch_overhead: 4.0e-6,
        regs_per_sm: 64 * 1024,
        smem_per_sm: 228 * 1024,
        max_warps_per_sm: 64,
    }
}

impl Default for GpuConfig {
    fn default() -> GpuConfig {
        a100()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn a100_basics() {
        let c = a100();
        assert_eq!(c.sm_count, 108);
        assert_eq!(c.warp_size, 32);
        assert_eq!(c.smem_banks, 32);
        assert!(c.fp16_tc_flops > c.fp32_flops);
    }

    #[test]
    fn default_is_a100() {
        assert_eq!(GpuConfig::default(), a100());
    }

    #[test]
    fn h100_outclasses_a100_except_occupancy_limits() {
        let (a, h) = (a100(), h100());
        assert!(h.sm_count > a.sm_count);
        assert!(h.dram_bw > a.dram_bw);
        assert!(h.smem_per_sm > a.smem_per_sm);
        // Same register file and warp cap: register-bound kernels
        // occupy both generations identically.
        assert_eq!(h.regs_per_sm, a.regs_per_sm);
        assert_eq!(h.max_warps_per_sm, a.max_warps_per_sm);
    }
}
