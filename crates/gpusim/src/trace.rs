//! Shared workload trace builders — one source of truth for how each
//! paper workload touches memory.
//!
//! Historically the repo carried *two* encodings of every workload's
//! access pattern: the `lego-bench` drivers replayed traces for the
//! paper tables, and `lego-tune`'s search space re-implemented the same
//! loops for the tuning oracle, so the two could silently drift apart.
//! This module is the merge point: each [`TraceBuilder`] owns one
//! workload's logical access pattern and emits it as [`Phase`]s through
//! the existing [`AddrGen`] / [`TouchGen`] callbacks, producing a
//! [`Workload`] that [`crate::score::score`] prices. An estimate printed
//! in a paper table and an estimate ranked by the tuner now come from
//! literally the same code path.
//!
//! Builders also declare the kernel's per-block resource footprint
//! ([`BlockResources`]) — a trait method taking the device config, so
//! register/warp estimates come from the generator family and scale
//! with the device's warp size — and the occupancy term of
//! [`crate::timing`] can penalize register/smem-hungry configurations.
//! Warp-sized lane groups are emitted per [`GpuConfig::warp_size`]
//! (32-lane NVIDIA warps, 64-lane CDNA wavefronts), so the same trace
//! code prices both device families.

use lego_core::Layout;

use crate::config::GpuConfig;
use crate::model::PricingMode;
use crate::score::{AddrGen, BlockResources, L2Model, Phase, TouchGen, Workload};
use crate::smem::bank_conflicts_elems_on;
use crate::timing::Pipeline;

/// Non-smem instruction cycles per NW in-block wavefront step
/// (calibrated against the Rodinia kernel).
pub const NW_STEP_CYCLES: f64 = 40.0;

/// Cycles per serialized NW shared-memory pass (calibrated).
pub const NW_PASS_CYCLES: f64 = 5.0;

/// Per-launch overhead of the short NW wavefront kernels as a fraction
/// of the device's [`GpuConfig::launch_overhead`] — dependent back-to-
/// back kernels pipeline their dispatch better than large kernels
/// (calibrated at half the A100's 4 µs), and scaling by the config
/// keeps the device descriptor authoritative for dispatch cost.
pub const NW_LAUNCH_OVERHEAD_RATIO: f64 = 0.5;

/// A builder of one workload's memory trace: given the hardware model,
/// produces the [`Workload`] whose phases replay the kernel's logical
/// access pattern through whatever layout is scored against it.
pub trait TraceBuilder {
    /// Stable display name, e.g. `matmul(n=2048,128x128x64)`.
    fn name(&self) -> String;

    /// The kernel family's per-block resource footprint on `cfg` —
    /// warps per block follow the device's warp size; register and
    /// shared-memory estimates are the family's calibrated heuristics.
    fn resources(&self, cfg: &GpuConfig) -> BlockResources;

    /// Builds the scoreable workload for hardware `cfg`.
    fn build(&self, cfg: &GpuConfig) -> Workload;
}

/// Splits `idx` into device-warp-sized lane groups and feeds each to
/// `sink` — the shared "what is one warp access on this device"
/// helper of the trace builders.
fn emit_warp_chunks(idx: &[i64], warp: usize, sink: &mut dyn FnMut(&[i64])) {
    for chunk in idx.chunks(warp.max(1)) {
        sink(chunk);
    }
}

// ---------------------------------------------------------------------
// Matmul: wave-by-wave tile touches.
// ---------------------------------------------------------------------

/// Tiled FP16 GEMM, simulated wave-by-wave: thread blocks are issued
/// `sm_count` at a time in `pid` order; each block walks the K loop
/// touching its `A` and `B` tiles, filtered through a tile-granular L2.
/// The layout under evaluation is the *thread-block schedule*
/// (`pid → (pid_m, pid_n)`), which decides how much reuse a wave finds.
#[derive(Clone, Copy, Debug)]
pub struct MatmulWaves {
    /// Problem side length.
    pub n: i64,
    /// Tile rows.
    pub bm: i64,
    /// Tile columns.
    pub bn: i64,
    /// K-step depth.
    pub bk: i64,
    /// Extra flops charged for index computation (tuner cost model).
    pub index_flops: f64,
    /// Vendor-library model: ideal scheduling (no wave quantization)
    /// and a single dispatch instead of the two-launch LEGO pipeline.
    pub vendor: bool,
}

impl MatmulWaves {
    /// A LEGO-scheduled GEMM with the given tile shape.
    pub fn with_tiles(n: i64, (bm, bn, bk): (i64, i64, i64)) -> MatmulWaves {
        MatmulWaves {
            n,
            bm,
            bn,
            bk,
            index_flops: 0.0,
            vendor: false,
        }
    }
}

impl TraceBuilder for MatmulWaves {
    fn name(&self) -> String {
        format!("matmul(n={},{}x{}x{})", self.n, self.bm, self.bn, self.bk)
    }

    /// 256 threads (8 NVIDIA warps, 4 CDNA wavefronts), single-buffered
    /// `A`/`B` staging tiles in shared memory, and accumulator
    /// registers growing with the tile area.
    fn resources(&self, cfg: &GpuConfig) -> BlockResources {
        let threads = 256.0;
        BlockResources {
            warps_per_block: (threads / cfg.warp_size as f64).ceil(),
            regs_per_block: threads * ((self.bm * self.bn) as f64 / 1024.0 + 24.0),
            smem_per_block: ((self.bm + self.bn) * self.bk * 2) as f64,
        }
    }

    fn build(&self, cfg: &GpuConfig) -> Workload {
        let MatmulWaves { n, bm, bn, bk, .. } = *self;
        let elem = 2i64; // fp16
        let (nt_m, nt_n) = (n / bm, n / bn);
        let ksteps = n / bk;
        let nblocks = nt_m * nt_n;
        let wave = cfg.sm_count as i64;
        let a_bytes = (bm * bk * elem) as usize;
        let b_bytes = (bk * bn * elem) as usize;
        let trace: TouchGen = Box::new(move |layout, sink| {
            let mut pid0 = 0i64;
            while pid0 < nblocks {
                let pids: Vec<(i64, i64)> = (pid0..(pid0 + wave).min(nblocks))
                    .map(|pid| {
                        let v = layout.inv_c(pid).expect("pid in range");
                        (v[0], v[1])
                    })
                    .collect();
                for kk in 0..ksteps {
                    for &(pm, pn) in &pids {
                        // Tile ids: disjoint namespaces for A and B.
                        sink((pm * ksteps + kk) << 1, a_bytes);
                        sink(((kk * nt_n + pn) << 1) | 1, b_bytes);
                    }
                }
                pid0 += wave;
            }
        });
        let c_bytes = (n * n * elem) as f64;
        Workload {
            name: self.name(),
            pipeline: Pipeline::TensorFp16,
            flops: 2.0 * (n as f64).powi(3) + self.index_flops,
            useful_bytes: 3.0 * c_bytes,
            streamed_bytes: c_bytes,
            blocks: nblocks as f64,
            launches: if self.vendor { 1.0 } else { 2.0 },
            wave_quantized: !self.vendor,
            l2: None,
            resources: self.resources(cfg),
            mode: PricingMode::Roofline,
            // The trace reads n/bm/bn/bk plus the wave width (sm_count)
            // baked in above; vendor/index_flops only touch assembly.
            traffic_key: Some(format!("mm:n{n}:t{bm}x{bn}x{bk}:d{}", cfg.tag)),
            phases: vec![Phase::TileTouches { trace, scale: 1.0 }],
        }
    }
}

// ---------------------------------------------------------------------
// Transpose: representative warp sweeps per tile.
// ---------------------------------------------------------------------

/// Square FP32 out-of-place transpose with `t×t` tiles. One
/// representative tile is traced and scaled — every tile has identical
/// coalescing. Unstaged, the write half strides by `n`; staged, both
/// global halves are row-contiguous and the staging tile pays bank
/// passes through the layout under evaluation.
#[derive(Clone, Copy, Debug)]
pub struct TransposeSweeps {
    /// Problem side length.
    pub n: i64,
    /// Tile side.
    pub t: i64,
    /// Whether a shared-memory staging tile is used.
    pub staged: bool,
    /// Extra flops charged for index computation (tuner cost model).
    pub index_flops: f64,
}

impl TraceBuilder for TransposeSweeps {
    fn name(&self) -> String {
        format!("transpose(n={},t={})", self.n, self.t)
    }

    /// Per-block resources: `t×t` threads, a `t×t` fp32 staging tile
    /// when staged.
    fn resources(&self, cfg: &GpuConfig) -> BlockResources {
        let threads = (self.t * self.t) as f64;
        BlockResources {
            warps_per_block: (threads / cfg.warp_size as f64).ceil(),
            regs_per_block: threads * 24.0,
            smem_per_block: if self.staged { threads * 4.0 } else { 0.0 },
        }
    }

    fn build(&self, cfg: &GpuConfig) -> Workload {
        let TransposeSweeps { n, t, staged, .. } = *self;
        let tiles = (n / t) * (n / t);
        // One representative warp per global access group, scaled to the
        // tile's thread count.
        let lanes = (cfg.warp_size as i64).min(t * t);
        let warps_per_tile = (t * t) as f64 / lanes as f64;
        let global: AddrGen = Box::new(move |_layout, sink| {
            let row: Vec<i64> = (0..lanes).collect();
            if staged {
                // Both global accesses row-contiguous.
                sink(&row);
                sink(&row);
            } else {
                // Coalesced read, stride-n write.
                let col: Vec<i64> = (0..lanes).map(|l| l * n).collect();
                sink(&row);
                sink(&col);
            }
        });
        let mut phases = vec![Phase::Global {
            trace: global,
            elem_bytes: 4,
            scale: warps_per_tile * tiles as f64,
        }];
        if staged {
            // The staging tile's threads in row-major order, chunked
            // into device-warp lane groups: each warp stores its slice
            // row-wise and loads it transposed.
            let warp = cfg.warp_size;
            let shared: AddrGen = Box::new(move |layout, sink| {
                let threads: Vec<(i64, i64)> = (0..t)
                    .flat_map(|ty| (0..t).map(move |tx| (ty, tx)))
                    .collect();
                for chunk in threads.chunks(warp) {
                    let store: Vec<i64> = chunk
                        .iter()
                        .map(|&(ty, tx)| layout.apply_c(&[ty, tx]).expect("in tile"))
                        .collect();
                    let load: Vec<i64> = chunk
                        .iter()
                        .map(|&(ty, tx)| layout.apply_c(&[tx, ty]).expect("in tile"))
                        .collect();
                    sink(&store);
                    sink(&load);
                }
            });
            phases.push(Phase::Shared {
                trace: shared,
                scale: tiles as f64,
            });
        }
        Workload {
            name: self.name(),
            pipeline: Pipeline::Fp32,
            flops: self.index_flops,
            useful_bytes: 2.0 * (n * n * 4) as f64,
            streamed_bytes: 0.0,
            blocks: tiles as f64,
            launches: 1.0,
            wave_quantized: false,
            l2: None,
            resources: self.resources(cfg),
            mode: PricingMode::Roofline,
            // The traces read n/t/staged plus the warp width baked in.
            traffic_key: Some(format!("tr:n{n}:t{t}:s{}:d{}", staged as u8, cfg.tag)),
            phases,
        }
    }
}

// ---------------------------------------------------------------------
// Stencil: per-warp lane walks over a 3-D domain.
// ---------------------------------------------------------------------

/// Which logical order a stencil warp's 32 lanes follow.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum LaneAxis {
    /// Lanes along `y` (stride `n` in row-major) — the strided walk of
    /// the baseline array kernel (§V-B).
    Y,
    /// Lanes along `z` (unit stride in row-major).
    Z,
    /// Lanes along the tile-local `(y, z)` plane in row-major order —
    /// the brick-local thread order that the brick layout makes
    /// memory-contiguous by construction.
    YZ,
}

/// A 3-D stencil sweep: for every warp of every thread block the
/// builder emits the 32 element addresses of each stencil tap through
/// the layout under evaluation (row-major vs. brick), coalesced into
/// sectors and filtered through a scaled L2 (DESIGN.md §3: the paper's
/// 512³ domains are simulated smaller with L2 capacity scaled by the
/// same factor, preserving the working-set-to-cache ratio).
#[derive(Clone, Debug)]
pub struct StencilWalk {
    /// Display name of the stencil shape, e.g. `star-13pt`.
    pub shape_name: String,
    /// The neighbor offsets `(dx, dy, dz)` of the stencil.
    pub offsets: Vec<(i64, i64, i64)>,
    /// Halo radius (taps are clamped to `[r, n-1-r]`).
    pub radius: i64,
    /// Domain side length.
    pub n: i64,
    /// Thread-block tile `(bx, by, bz)`.
    pub block: (i64, i64, i64),
    /// Warp lane walk order.
    pub lane_axis: LaneAxis,
    /// Extra flops charged for index computation (tuner cost model).
    pub index_flops: f64,
}

impl TraceBuilder for StencilWalk {
    fn name(&self) -> String {
        format!("stencil({},n={})", self.shape_name, self.n)
    }

    /// Per-block resources: one thread per tile point, no shared
    /// staging.
    fn resources(&self, cfg: &GpuConfig) -> BlockResources {
        let (bx, by, bz) = self.block;
        let threads = (bx * by * bz) as f64;
        BlockResources {
            warps_per_block: (threads / cfg.warp_size as f64).ceil(),
            regs_per_block: threads * 32.0,
            smem_per_block: 0.0,
        }
    }

    fn build(&self, cfg: &GpuConfig) -> Workload {
        let StencilWalk {
            n,
            block: (bx, by, bz),
            lane_axis,
            radius: r,
            ..
        } = *self;
        let offs = self.offsets.clone();
        let points = offs.len() as f64;
        let warp_lanes = cfg.warp_size as i64;
        let trace: AddrGen = Box::new(move |layout, sink| {
            let clamp = |v: i64| v.clamp(r, n - 1 - r);
            let lanes = warp_lanes;
            let mut idx = Vec::with_capacity(lanes as usize);
            for tx in 0..n / bx {
                for ty in 0..n / by {
                    for tz in 0..n / bz {
                        // Enumerate warps inside the tile.
                        let (wi_max, wj_max, lane_max) = match lane_axis {
                            LaneAxis::Z => (bx, by, bz),
                            LaneAxis::Y => (bx, bz, by),
                            LaneAxis::YZ => (bx, 1, by * bz),
                        };
                        for wi in 0..wi_max {
                            for wj in 0..wj_max {
                                let mut l0 = 0i64;
                                while l0 < lane_max {
                                    let nl = lanes.min(lane_max - l0);
                                    for &(dx, dy, dz) in &offs {
                                        idx.clear();
                                        for lane in 0..nl {
                                            let (x, y, z) = match lane_axis {
                                                LaneAxis::Z => (
                                                    tx * bx + wi,
                                                    ty * by + wj,
                                                    tz * bz + l0 + lane,
                                                ),
                                                LaneAxis::Y => (
                                                    tx * bx + wi,
                                                    ty * by + l0 + lane,
                                                    tz * bz + wj,
                                                ),
                                                LaneAxis::YZ => {
                                                    let local = l0 + lane;
                                                    (
                                                        tx * bx + wi,
                                                        ty * by + local / bz,
                                                        tz * bz + local % bz,
                                                    )
                                                }
                                            };
                                            idx.push(
                                                layout
                                                    .apply_c(&[
                                                        clamp(x + dx),
                                                        clamp(y + dy),
                                                        clamp(z + dz),
                                                    ])
                                                    .expect("in bounds"),
                                            );
                                        }
                                        sink(&idx);
                                    }
                                    l0 += lanes;
                                }
                            }
                        }
                    }
                }
            }
        });
        // Scaled L2: preserve the paper's 512³·4B : 40 MiB ratio.
        let domain_bytes = (n * n * n * 4) as f64;
        let lines = ((domain_bytes / 12.8) as usize / cfg.sector_bytes).max(1024);
        // The offsets are the only unbounded trace parameter: fold them
        // into an FNV tag so custom shapes sharing a display name
        // cannot collide in the traffic memo.
        let mut off_tag: u64 = 0xcbf2_9ce4_8422_2325;
        for &(dx, dy, dz) in &self.offsets {
            for v in [dx, dy, dz] {
                off_tag ^= v as u64;
                off_tag = off_tag.wrapping_mul(0x0000_0100_0000_01b3);
            }
        }
        Workload {
            name: self.name(),
            pipeline: Pipeline::Fp32,
            flops: 2.0 * points * (n * n * n) as f64 + self.index_flops,
            useful_bytes: 2.0 * domain_bytes,
            streamed_bytes: domain_bytes,
            blocks: ((n / bx) * (n / by) * (n / bz)) as f64,
            launches: 1.0,
            wave_quantized: false,
            l2: Some(L2Model { lines, assoc: 16 }),
            resources: self.resources(cfg),
            mode: PricingMode::Roofline,
            traffic_key: Some(format!(
                "st:o{off_tag:016x}:r{r}:n{n}:b{bx}x{by}x{bz}:a{}:d{}",
                match lane_axis {
                    LaneAxis::Y => "y",
                    LaneAxis::Z => "z",
                    LaneAxis::YZ => "yz",
                },
                cfg.tag
            )),
            phases: vec![Phase::Global {
                trace,
                elem_bytes: 4,
                scale: 1.0,
            }],
        }
    }
}

// ---------------------------------------------------------------------
// NW: anti-diagonal wavefront passes through the shared buffer.
// ---------------------------------------------------------------------

/// Needleman–Wunsch: an `n×n` scoring matrix processed in `b×b` blocks
/// along block anti-diagonals (one launch per block diagonal, two
/// triangular sweeps); a block's `(b+1)×(b+1)` shared buffer is updated
/// over `2b-1` in-block wavefront steps. The layout under evaluation is
/// the *buffer layout*: row-major (bank-conflicted) vs. the LEGO
/// anti-diagonal permutation (conflict-free).
#[derive(Clone, Copy, Debug)]
pub struct NwWavefront {
    /// Scoring-matrix side length.
    pub n: i64,
    /// Block size (buffer side is `b + 1`).
    pub b: i64,
    /// Extra flops charged for index computation (tuner cost model).
    pub index_flops: f64,
}

impl NwWavefront {
    /// The per-block wavefront warp trace: on each of the `2b-1`
    /// in-block diagonals the active lanes write `(t+1, d-t+1)` and
    /// read the three neighbors (NW, N, W) — four access groups per
    /// step, each emitted through the buffer layout in `warp`-lane
    /// chunks (a diagonal longer than the device's warp takes several
    /// warp instructions).
    pub fn block_trace(b: i64, warp: usize) -> AddrGen {
        Box::new(move |layout, sink| {
            for d in 0..(2 * b - 1) {
                let lo = (d + 1 - b).max(0);
                let hi = d.min(b - 1);
                let coords = |f: &dyn Fn(i64, i64) -> (i64, i64)| -> Vec<i64> {
                    (lo..=hi)
                        .map(|t| {
                            let (i, j) = f(t, d);
                            layout.apply_c(&[i, j]).expect("in bounds")
                        })
                        .collect()
                };
                let write: Vec<i64> = coords(&|t, d| (t + 1, d - t + 1));
                let nw_read: Vec<i64> = coords(&|t, d| (t, d - t));
                let n_read: Vec<i64> = coords(&|t, d| (t, d - t + 1));
                let w_read: Vec<i64> = coords(&|t, d| (t + 1, d - t));
                for g in [write, nw_read, n_read, w_read] {
                    emit_warp_chunks(&g, warp, sink);
                }
            }
        })
    }

    /// Shared-memory passes for one block's full wavefront sweep under
    /// a given buffer layout, on the warp and bank geometry of `cfg` —
    /// the quantity the additive pricing mode charges per round.
    pub fn block_passes(layout: &Layout, b: i64, cfg: &GpuConfig) -> f64 {
        let trace = NwWavefront::block_trace(b, cfg.warp_size);
        let mut passes = 0usize;
        trace(layout, &mut |g: &[i64]| {
            passes += bank_conflicts_elems_on(g, 4, cfg).passes;
        });
        passes as f64
    }

    /// The dependency-limited launch schedule over `nb × nb` blocks:
    /// two triangular sweeps over block anti-diagonals, one kernel
    /// launch per diagonal running its blocks `sm_count` at a time.
    /// Returns `(rounds, launches)`.
    pub fn schedule(nb: i64, cfg: &GpuConfig) -> (f64, f64) {
        let mut rounds = 0f64;
        let mut launches = 0f64;
        for _sweep in 0..2 {
            for d in 0..(2 * nb - 1) {
                let len = (d + 1).min(2 * nb - 1 - d).min(nb);
                rounds += (len as f64 / cfg.sm_count as f64).ceil();
                launches += 1.0;
            }
        }
        (rounds, launches)
    }
}

impl TraceBuilder for NwWavefront {
    fn name(&self) -> String {
        format!("nw(n={},b={})", self.n, self.b)
    }

    /// Per-block resources: `b` threads (one per wavefront lane) and
    /// the `(b+1)²` fp32 scoring buffer in shared memory. Large blocks
    /// are smem-bound: a `b=224` buffer fits an H100's 228 KiB carveout
    /// but neither an A100's 164 KiB nor an MI300's 64 KiB LDS.
    fn resources(&self, cfg: &GpuConfig) -> BlockResources {
        let b = self.b as f64;
        BlockResources {
            warps_per_block: (b / cfg.warp_size as f64).ceil().max(1.0),
            regs_per_block: b * 32.0,
            smem_per_block: (b + 1.0) * (b + 1.0) * 4.0,
        }
    }

    fn build(&self, cfg: &GpuConfig) -> Workload {
        let NwWavefront { n, b, .. } = *self;
        // Block sizes need not divide n (the kernel pads the last block
        // diagonal); a partial block costs a full one.
        let nb = (n + b - 1) / b;
        // Two triangular sweeps over block anti-diagonals: every block
        // runs once per sweep, one kernel launch per block diagonal.
        let blocks = 2.0 * (nb * nb) as f64;
        let (rounds, launches) = NwWavefront::schedule(nb, cfg);
        let matrix_bytes = (n * n * 4) as f64;
        Workload {
            name: self.name(),
            pipeline: Pipeline::Fp32,
            flops: self.index_flops,
            useful_bytes: 2.0 * matrix_bytes,
            // Matrix read + write plus one reference-matrix read.
            streamed_bytes: 3.0 * matrix_bytes,
            blocks,
            launches,
            wave_quantized: false,
            l2: None,
            resources: self.resources(cfg),
            // The calibrated additive wavefront pricing that used to be
            // the NW bench driver's private loop: each of the `2b-1`
            // in-block steps costs a fixed instruction budget plus its
            // serialized bank passes, rounds cannot overlap traffic.
            mode: PricingMode::AdditiveLaunch {
                rounds,
                step_cycles: (2 * b - 1) as f64 * NW_STEP_CYCLES,
                pass_cycles: NW_PASS_CYCLES,
                launch_overhead_s: NW_LAUNCH_OVERHEAD_RATIO * cfg.launch_overhead,
            },
            // The trace reads b plus the warp width baked in; n only
            // enters through the phase scale, which the memo key covers.
            traffic_key: Some(format!("nw:n{n}:b{b}:d{}", cfg.tag)),
            phases: vec![Phase::Shared {
                trace: NwWavefront::block_trace(b, cfg.warp_size),
                scale: blocks,
            }],
        }
    }
}

// ---------------------------------------------------------------------
// LUD: coarsened panel factorization.
// ---------------------------------------------------------------------

/// LU decomposition in `bs×bs` block steps (diagonal, perimeter,
/// internal kernels per step); thread coarsening enlarges the LUD block
/// (`bs = r·t`), dividing launches and perimeter traffic by `r`. Reuse
/// is modeled analytically at panel granularity, so the trace emits
/// pre-aggregated [`Phase::Streamed`] traffic.
#[derive(Clone, Copy, Debug)]
pub struct LudPanels {
    /// Matrix side length.
    pub n: i64,
    /// LUD block side (`r·t`).
    pub bs: i64,
    /// CUDA block side (16 in Rodinia).
    pub t: i64,
    /// Extra flops charged for index computation (tuner cost model).
    pub index_flops: f64,
}

impl TraceBuilder for LudPanels {
    fn name(&self) -> String {
        format!("lud(n={},bs={})", self.n, self.bs)
    }

    /// Per-block resources: a `t×t` CUDA block staging the perimeter
    /// row and column panels, with `r²` accumulators per thread.
    fn resources(&self, cfg: &GpuConfig) -> BlockResources {
        let threads = (self.t * self.t) as f64;
        let r = (self.bs / self.t) as f64;
        BlockResources {
            warps_per_block: (threads / cfg.warp_size as f64).ceil(),
            regs_per_block: threads * (r * r + 24.0),
            smem_per_block: (2 * self.bs * self.t * 4) as f64,
        }
    }

    fn build(&self, cfg: &GpuConfig) -> Workload {
        let LudPanels { n, bs, .. } = *self;
        // Block sides need not divide n: the Rodinia driver pads the
        // trailing step, so a partial panel is priced as a full one.
        let steps = (n + bs - 1) / bs;
        let mut dram = 0f64;
        let mut flops = 0f64;
        let mut launches = 0f64;
        let mut blocks = 0f64;
        for d in 0..steps {
            let rem = (steps - d - 1) as f64; // interior blocks per side
            let tile = (bs * bs * 4) as f64;
            // Diagonal kernel: one bs x bs block.
            dram += tile * 2.0;
            flops += 2.0 / 3.0 * (bs as f64).powi(3);
            // Perimeter kernel: 2*rem blocks, each reads the diagonal
            // block and updates its own.
            dram += rem * 2.0 * tile * 2.0;
            flops += rem * 2.0 * (bs as f64).powi(3);
            // Internal kernel: rem^2 blocks; each reads its tile + the
            // perimeter row tile + the perimeter column tile and writes
            // back.
            dram += rem * rem * tile * 4.0;
            flops += rem * rem * 2.0 * (bs as f64).powi(3);
            launches += 3.0;
            blocks += 1.0 + 2.0 * rem + rem * rem;
        }
        Workload {
            name: self.name(),
            pipeline: Pipeline::Fp32,
            flops: flops + self.index_flops,
            useful_bytes: 2.0 * (n * n * 4) as f64,
            streamed_bytes: 0.0,
            blocks,
            launches,
            wave_quantized: false,
            l2: None,
            resources: self.resources(cfg),
            // The three kernels of every factorization step depend on
            // each other: panel traffic and compute cannot overlap
            // across launches, so the terms add (no wavefront rounds —
            // compute comes from the flop count).
            mode: PricingMode::AdditiveLaunch {
                rounds: 0.0,
                step_cycles: 0.0,
                pass_cycles: 0.0,
                launch_overhead_s: cfg.launch_overhead,
            },
            // Pure pre-aggregated traffic: no closures, no layout.
            traffic_key: Some(format!("lud:n{n}:bs{bs}:d{}", cfg.tag)),
            phases: vec![Phase::Streamed {
                dram_bytes: dram,
                l2_bytes: dram * 1.5,
            }],
        }
    }
}

// ---------------------------------------------------------------------
// Rowwise: streaming row-block sweeps (softmax / LayerNorm).
// ---------------------------------------------------------------------

/// Non-smem instruction cycles per rowwise column-chunk iteration
/// (pointer bump, mask computation, partial-reduction bookkeeping).
pub const ROWWISE_CHUNK_CYCLES: f64 = 28.0;

/// A row-wise streaming operator (softmax, LayerNorm fwd/bwd) over an
/// `m×n` fp16 matrix: one program per row walks the row in `bs`-wide
/// column chunks. The layout under evaluation is the program's lane
/// block (`row·BS + lane` in the generated kernels — unit stride by
/// construction). The tunable tension is the block size: small `bs`
/// pays per-chunk loop instructions, large `bs` pays masked-lane
/// compute past the row end and register pressure that lowers
/// occupancy below the bandwidth-saturation point.
#[derive(Clone, Debug)]
pub struct RowwiseSweep {
    /// Display name of the operator, e.g. `softmax`.
    pub op_name: String,
    /// Number of rows (one program each).
    pub m: i64,
    /// Row length in elements.
    pub n: i64,
    /// Column block size (elements per chunk).
    pub bs: i64,
    /// Element passes over the matrix (reads + writes per element).
    pub passes: f64,
    /// Floating-point work per processed (lane-padded) element.
    pub flops_per_elem: f64,
    /// Extra flops charged for index computation (tuner cost model).
    pub index_flops: f64,
}

impl TraceBuilder for RowwiseSweep {
    fn name(&self) -> String {
        format!("{}(m={},n={},bs={})", self.op_name, self.m, self.n, self.bs)
    }

    /// Per-block resources: Triton-style `num_warps` scaling with the
    /// block size (8 warp-widths of work per warp, as in the 32-lane
    /// `bs/256` heuristic), with the row chunk held live in registers.
    fn resources(&self, cfg: &GpuConfig) -> BlockResources {
        let warps = ((self.bs / (8 * cfg.warp_size as i64)) as f64).clamp(1.0, 16.0);
        BlockResources {
            warps_per_block: warps,
            // Each program keeps its bs-wide chunk (value + accumulator)
            // in registers, plus a fixed per-thread base cost.
            regs_per_block: self.bs as f64 * 2.0 + warps * cfg.warp_size as f64 * 24.0,
            // Cross-warp reduction scratch.
            smem_per_block: warps * 128.0,
        }
    }

    fn build(&self, cfg: &GpuConfig) -> Workload {
        let RowwiseSweep { m, n, bs, .. } = *self;
        let chunks = ((n + bs - 1) / bs).max(1);
        let elems = (m * n) as f64;
        // Masked lanes past the row end still execute the vector ops.
        let padded = (m * chunks * bs) as f64;
        let instr_flops = (m * chunks) as f64 * ROWWISE_CHUNK_CYCLES * cfg.fp32_flops
            / (cfg.sm_count as f64 * cfg.clock_hz);
        let bytes = elems * 2.0 * self.passes;
        // One representative warp: a device-warp's worth of consecutive
        // lanes of a chunk through the lane-block layout; every warp of
        // every chunk is identical, so the trace is scaled to the full
        // traffic.
        let lanes = (cfg.warp_size as i64).min(bs);
        let trace: AddrGen = Box::new(move |layout, sink| {
            let idx: Vec<i64> = (0..lanes)
                .map(|l| layout.apply_c(&[l]).expect("lane in block"))
                .collect();
            sink(&idx);
        });
        let warp_bytes = lanes as f64 * 2.0;
        Workload {
            name: self.name(),
            pipeline: Pipeline::Fp32,
            flops: padded * self.flops_per_elem + instr_flops + self.index_flops,
            useful_bytes: 2.0 * elems * 2.0,
            streamed_bytes: 0.0,
            blocks: m as f64,
            launches: 1.0,
            wave_quantized: false,
            l2: None,
            resources: self.resources(cfg),
            mode: PricingMode::Roofline,
            // `passes` is spelled out explicitly: unlike `name()`, the
            // memo key must separate operators that share m/n/bs but
            // sweep the matrix a different number of times.
            traffic_key: Some(format!(
                "rw:m{m}:n{n}:bs{bs}:p{:x}:d{}",
                self.passes.to_bits(),
                cfg.tag
            )),
            phases: vec![Phase::Global {
                trace,
                elem_bytes: 2,
                scale: bytes / warp_bytes,
            }],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{a100, h100};
    use crate::score::score;

    #[test]
    fn matmul_builder_matches_legacy_semantics() {
        let cfg = a100();
        let b = MatmulWaves::with_tiles(2048, (128, 128, 64));
        let w = b.build(&cfg);
        assert_eq!(w.blocks, 256.0);
        assert_eq!(w.launches, 2.0);
        assert!(w.wave_quantized);
        assert!((w.flops - 2.0 * 2048f64.powi(3)).abs() < 1.0);
    }

    #[test]
    fn vendor_matmul_is_single_launch_unquantized() {
        let cfg = a100();
        let w = MatmulWaves {
            vendor: true,
            ..MatmulWaves::with_tiles(2048, (128, 128, 64))
        }
        .build(&cfg);
        assert_eq!(w.launches, 1.0);
        assert!(!w.wave_quantized);
    }

    #[test]
    fn nw_block_passes_distinguish_layouts() {
        use lego_core::perms::antidiag;
        use lego_core::OrderBy;
        let cfg = a100();
        let b = 16i64;
        let nsz = b + 1;
        let baseline = Layout::identity([nsz, nsz]).unwrap();
        let optimized = Layout::builder([nsz, nsz])
            .order_by(OrderBy::new([antidiag(nsz).unwrap()]).unwrap())
            .build()
            .unwrap();
        let base = NwWavefront::block_passes(&baseline, b, &cfg);
        let opt = NwWavefront::block_passes(&optimized, b, &cfg);
        assert!(base / opt > 1.5, "base {base} opt {opt}");
        // Conflict-free floor: 4 groups per step.
        assert!(opt >= (4 * (2 * b - 1)) as f64);
    }

    #[test]
    fn nw_giant_block_fits_h100_not_a100() {
        let w = NwWavefront {
            n: 3584,
            b: 224,
            index_flops: 0.0,
        };
        let r = w.resources(&a100());
        let p = crate::timing::KernelProfile {
            warps_per_block: r.warps_per_block,
            regs_per_block: r.regs_per_block,
            smem_per_block: r.smem_per_block,
            ..Default::default()
        };
        assert_eq!(p.resident_warps(&a100()), 0.0);
        assert!(p.resident_warps(&h100()) > 0.0);
    }

    #[test]
    fn lud_coarsening_raises_intensity_and_cuts_launches() {
        let cfg = a100();
        let base = LudPanels {
            n: 2048,
            bs: 16,
            t: 16,
            index_flops: 0.0,
        }
        .build(&cfg);
        let coarse = LudPanels {
            n: 2048,
            bs: 64,
            t: 16,
            index_flops: 0.0,
        }
        .build(&cfg);
        assert!(coarse.launches < base.launches / 3.0);
        let id = Layout::identity([16i64, 16]).unwrap();
        let eb = score(&id, &base, &cfg);
        let ec = score(&id, &coarse, &cfg);
        assert!(ec.dram_bytes < eb.dram_bytes);
        assert!(ec.time_s < eb.time_s);
    }

    #[test]
    fn nw_and_lud_pad_non_dividing_blocks() {
        let cfg = a100();
        // 512 = 5·96 + 32: six block diagonals, the last one partial.
        let padded = NwWavefront {
            n: 512,
            b: 96,
            index_flops: 0.0,
        }
        .build(&cfg);
        assert_eq!(padded.launches, 2.0 * 11.0);
        assert_eq!(padded.blocks, 2.0 * 36.0);
        let lud = LudPanels {
            n: 512,
            bs: 96,
            t: 16,
            index_flops: 0.0,
        }
        .build(&cfg);
        // ceil(512/96) = 6 factorization steps, 3 launches each.
        assert_eq!(lud.launches, 18.0);
    }

    #[test]
    fn rowwise_block_size_is_a_real_tradeoff() {
        let cfg = a100();
        let layout = |bs: i64| Layout::identity([bs]).unwrap();
        let sweep = |bs: i64| RowwiseSweep {
            op_name: "softmax".into(),
            m: 4096,
            n: 3000,
            bs,
            passes: 2.0,
            flops_per_elem: 6.0,
            index_flops: 0.0,
        };
        let t = |bs: i64| {
            let w = sweep(bs).build(&cfg);
            score(&layout(bs), &w, &cfg).time_s
        };
        // A mid-size block beats both a tiny one (chunk-loop overhead)
        // and a grossly padded one (masked-lane compute + occupancy).
        let (tiny, mid, huge) = (t(32), t(512), t(16384));
        assert!(mid < tiny, "mid {mid} tiny {tiny}");
        assert!(mid < huge, "mid {mid} huge {huge}");
    }

    #[test]
    fn rowwise_traffic_scales_with_passes() {
        let cfg = a100();
        let mk = |passes: f64| RowwiseSweep {
            op_name: "layernorm".into(),
            m: 1024,
            n: 1024,
            bs: 1024,
            passes,
            flops_per_elem: 8.0,
            index_flops: 0.0,
        };
        let l = Layout::identity([1024i64]).unwrap();
        let two = score(&l, &mk(2.0).build(&cfg), &cfg);
        let four = score(&l, &mk(4.0).build(&cfg), &cfg);
        assert!((four.dram_bytes / two.dram_bytes - 2.0).abs() < 1e-9);
    }

    #[test]
    fn stencil_builder_charges_strided_walks_more() {
        let cfg = a100();
        use lego_core::brick::row_major3d;
        let n = 32;
        let rm = row_major3d(n).unwrap();
        let offsets = vec![(0, 0, 0), (1, 0, 0), (-1, 0, 0)];
        let mk = |lane_axis, block| StencilWalk {
            shape_name: "test".into(),
            offsets: offsets.clone(),
            radius: 1,
            n,
            block,
            lane_axis,
            index_flops: 0.0,
        };
        let y = score(&rm, &mk(LaneAxis::Y, (4, 8, 4)).build(&cfg), &cfg);
        let z = score(&rm, &mk(LaneAxis::Z, (4, 4, 8)).build(&cfg), &cfg);
        assert!(
            y.l2_bytes > 2.0 * z.l2_bytes,
            "y {} z {}",
            y.l2_bytes,
            z.l2_bytes
        );
    }
}
