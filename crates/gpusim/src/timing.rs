//! The roofline-style timing model, with a per-SM occupancy term.
//!
//! A kernel's runtime is estimated as the maximum of its bottleneck
//! times (compute, DRAM traffic, L2 traffic, shared-memory serialization)
//! plus launch overhead — the standard bulk-synchronous GPU model. The
//! experiments compare *layouts*, so what matters is that each layout's
//! traffic and conflict counts feed these terms; absolute constants only
//! scale the axes.
//!
//! When a profile declares its per-block resources (warps, registers,
//! shared memory), [`KernelProfile::occupancy`] computes the resident
//! warps per SM against the [`GpuConfig`] limits and [`estimate`]
//! derates achievable bandwidth and issue rate below the saturation
//! occupancies — so register/smem-hungry tiles that cap residency pay
//! for the latency they can no longer hide.

use crate::config::GpuConfig;

/// The NVIDIA-calibrated default for
/// [`GpuConfig::mem_sat_occupancy`]: the fraction of the warp cap at
/// which memory latency is fully hidden; below it, achievable DRAM/L2
/// bandwidth scales linearly with occupancy (a standard little's-law
/// approximation). The saturation points are per-device config fields
/// now — `a100()`/`h100()` keep this value, `mi300()` sets its own.
pub const MEM_SAT_OCCUPANCY: f64 = 0.25;

/// The NVIDIA-calibrated default for
/// [`GpuConfig::issue_sat_occupancy`]: the fraction of the warp cap at
/// which the issue pipelines (compute and shared-memory access)
/// saturate.
pub const ISSUE_SAT_OCCUPANCY: f64 = 0.5;

/// Which compute pipeline a kernel saturates.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Pipeline {
    /// CUDA-core FP32 FMA.
    Fp32,
    /// Tensor-core FP16.
    TensorFp16,
}

/// Aggregated execution profile of one kernel launch.
#[derive(Clone, Copy, Debug, Default)]
pub struct KernelProfile {
    /// Floating-point operations executed.
    pub flops: f64,
    /// Bytes moved between DRAM and L2 (after cache filtering).
    pub dram_bytes: f64,
    /// Bytes moved between L2 and the SMs (before cache filtering).
    pub l2_bytes: f64,
    /// Total shared-memory access passes (bank-conflict serialized).
    pub smem_passes: f64,
    /// Number of thread blocks launched.
    pub blocks: f64,
    /// Number of kernel launches this profile covers.
    pub launches: f64,
    /// Warps per thread block (`0` = unspecified: full occupancy).
    pub warps_per_block: f64,
    /// Registers allocated per thread block (`0` = no register limit).
    pub regs_per_block: f64,
    /// Shared memory per thread block in bytes (`0` = no smem limit).
    pub smem_per_block: f64,
}

impl KernelProfile {
    /// Merges another profile into this one (e.g. per-block profiles).
    /// Traffic and work are additive; per-block resources take the
    /// maximum (the worst-occupancy kernel bounds the merged launch).
    pub fn merge(&mut self, other: &KernelProfile) {
        self.flops += other.flops;
        self.dram_bytes += other.dram_bytes;
        self.l2_bytes += other.l2_bytes;
        self.smem_passes += other.smem_passes;
        self.blocks += other.blocks;
        self.launches += other.launches;
        self.warps_per_block = self.warps_per_block.max(other.warps_per_block);
        self.regs_per_block = self.regs_per_block.max(other.regs_per_block);
        self.smem_per_block = self.smem_per_block.max(other.smem_per_block);
    }

    /// Resident warps per SM under `cfg`'s occupancy limits: how many
    /// whole blocks fit the register file, the shared-memory carveout,
    /// and the warp cap, times warps per block. Returns the warp cap
    /// when the profile declares no per-block resources.
    pub fn resident_warps(&self, cfg: &GpuConfig) -> f64 {
        let cap = cfg.max_warps_per_sm as f64;
        if self.warps_per_block <= 0.0 {
            return cap;
        }
        let mut blocks = cap / self.warps_per_block;
        if self.regs_per_block > 0.0 {
            blocks = blocks.min(cfg.regs_per_sm as f64 / self.regs_per_block);
        }
        if self.smem_per_block > 0.0 {
            blocks = blocks.min(cfg.smem_per_sm as f64 / self.smem_per_block);
        }
        (blocks.floor() * self.warps_per_block).min(cap)
    }

    /// Occupancy fraction: resident warps over the hardware warp cap,
    /// in `[0, 1]`. Zero means the block does not fit the SM at all.
    pub fn occupancy(&self, cfg: &GpuConfig) -> f64 {
        self.resident_warps(cfg) / cfg.max_warps_per_sm as f64
    }

    /// Arithmetic intensity against DRAM traffic (FLOP/byte) — the
    /// roofline x-axis.
    pub fn arithmetic_intensity(&self) -> f64 {
        if self.dram_bytes == 0.0 {
            return f64::INFINITY;
        }
        self.flops / self.dram_bytes
    }
}

/// A time estimate broken into bottleneck terms.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TimeEstimate {
    /// Compute-bound time (s).
    pub compute_s: f64,
    /// DRAM-bound time (s).
    pub dram_s: f64,
    /// L2-bound time (s).
    pub l2_s: f64,
    /// Shared-memory-bound time (s).
    pub smem_s: f64,
    /// Launch overhead (s).
    pub overhead_s: f64,
    /// The final estimate: `max(terms) + overhead`.
    pub total_s: f64,
}

/// Derate factor for a resource that saturates at occupancy `sat`:
/// linear below saturation, flat at `1.0` above it. An occupancy of
/// zero (block does not fit) is priced as a single resident warp —
/// terrible but finite, so the tuner can still rank such candidates.
pub fn occupancy_derate(occ: f64, sat: f64, cfg: &GpuConfig) -> f64 {
    let floor = 1.0 / cfg.max_warps_per_sm as f64;
    (occ.max(floor) / sat).min(1.0)
}

/// Estimates the runtime of a kernel profile on `cfg`.
///
/// Shared-memory passes are serviced at one pass per SM per cycle
/// (128 bytes/pass), aggregated over all SMs. When the profile declares
/// per-block resources, achievable bandwidth scales with
/// `occupancy / cfg.mem_sat_occupancy` and issue rate (compute + smem)
/// with `occupancy / cfg.issue_sat_occupancy`, both capped at 1 — the
/// saturation points are per-device [`GpuConfig`] fields.
pub fn estimate(profile: &KernelProfile, pipeline: Pipeline, cfg: &GpuConfig) -> TimeEstimate {
    let peak = match pipeline {
        Pipeline::Fp32 => cfg.fp32_flops,
        Pipeline::TensorFp16 => cfg.fp16_tc_flops,
    };
    let occ = profile.occupancy(cfg);
    let mem = occupancy_derate(occ, cfg.mem_sat_occupancy, cfg);
    let issue = occupancy_derate(occ, cfg.issue_sat_occupancy, cfg);
    let compute_s = profile.flops / (peak * issue);
    let dram_s = profile.dram_bytes / (cfg.dram_bw * cfg.dram_efficiency * mem);
    let l2_s = profile.l2_bytes / (cfg.l2_bw * mem);
    // One warp smem pass per SM per cycle across all SMs.
    let smem_s = profile.smem_passes / (cfg.sm_count as f64 * cfg.clock_hz * issue);
    let overhead_s = profile.launches.max(1.0) * cfg.launch_overhead;
    let total_s = compute_s.max(dram_s).max(l2_s).max(smem_s) + overhead_s;
    TimeEstimate {
        compute_s,
        dram_s,
        l2_s,
        smem_s,
        overhead_s,
        total_s,
    }
}

/// Achieved FLOP/s of a profile under the estimate.
pub fn achieved_flops(profile: &KernelProfile, pipeline: Pipeline, cfg: &GpuConfig) -> f64 {
    profile.flops / estimate(profile, pipeline, cfg).total_s
}

/// Achieved bytes/s (for bandwidth-bound kernels such as transpose,
/// counting useful bytes only).
pub fn achieved_bandwidth(useful_bytes: f64, profile: &KernelProfile, cfg: &GpuConfig) -> f64 {
    useful_bytes / estimate(profile, Pipeline::Fp32, cfg).total_s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::a100;

    #[test]
    fn compute_bound_kernel() {
        let cfg = a100();
        let p = KernelProfile {
            flops: 1e12,
            dram_bytes: 1e6,
            launches: 1.0,
            ..Default::default()
        };
        let t = estimate(&p, Pipeline::TensorFp16, &cfg);
        assert!(t.compute_s > t.dram_s);
        assert!(t.total_s >= t.compute_s);
    }

    #[test]
    fn memory_bound_kernel() {
        let cfg = a100();
        let p = KernelProfile {
            flops: 1e6,
            dram_bytes: 1e9,
            launches: 1.0,
            ..Default::default()
        };
        let t = estimate(&p, Pipeline::Fp32, &cfg);
        assert!(t.dram_s > t.compute_s);
    }

    #[test]
    fn overhead_dominates_tiny_kernels() {
        let cfg = a100();
        let p = KernelProfile {
            flops: 1.0,
            launches: 100.0,
            ..Default::default()
        };
        let t = estimate(&p, Pipeline::Fp32, &cfg);
        assert!((t.total_s - 100.0 * cfg.launch_overhead).abs() / t.total_s < 0.01);
    }

    #[test]
    fn smem_term_scales_with_passes() {
        let cfg = a100();
        let p1 = KernelProfile {
            smem_passes: 1e9,
            ..Default::default()
        };
        let p2 = KernelProfile {
            smem_passes: 2e9,
            ..Default::default()
        };
        let t1 = estimate(&p1, Pipeline::Fp32, &cfg).smem_s;
        let t2 = estimate(&p2, Pipeline::Fp32, &cfg).smem_s;
        assert!((t2 / t1 - 2.0).abs() < 1e-9);
    }

    #[test]
    fn arithmetic_intensity() {
        let p = KernelProfile {
            flops: 100.0,
            dram_bytes: 50.0,
            ..Default::default()
        };
        assert!((p.arithmetic_intensity() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn unspecified_resources_run_at_full_occupancy() {
        let cfg = a100();
        let p = KernelProfile::default();
        assert_eq!(p.occupancy(&cfg), 1.0);
        assert_eq!(p.resident_warps(&cfg), cfg.max_warps_per_sm as f64);
    }

    #[test]
    fn occupancy_respects_each_limit() {
        let cfg = a100();
        // Warp-cap bound: 8-warp blocks, no other limits -> 8 blocks.
        let p = KernelProfile {
            warps_per_block: 8.0,
            ..Default::default()
        };
        assert_eq!(p.resident_warps(&cfg), 64.0);
        // Smem bound: 48 KiB blocks -> 3 blocks of 8 warps on A100.
        let p = KernelProfile {
            warps_per_block: 8.0,
            smem_per_block: 48.0 * 1024.0,
            ..Default::default()
        };
        assert_eq!(p.resident_warps(&cfg), 24.0);
        // The H100's larger carveout fits one more block.
        assert_eq!(p.resident_warps(&crate::config::h100()), 32.0);
        // Register bound: 32k regs per block -> 2 blocks.
        let p = KernelProfile {
            warps_per_block: 8.0,
            regs_per_block: 32.0 * 1024.0,
            ..Default::default()
        };
        assert_eq!(p.resident_warps(&cfg), 16.0);
    }

    #[test]
    fn low_occupancy_slows_memory_bound_kernels() {
        let cfg = a100();
        let full = KernelProfile {
            dram_bytes: 1e9,
            warps_per_block: 8.0,
            ..Default::default()
        };
        let starved = KernelProfile {
            // One 4-warp block resident: occupancy 1/16, below MEM_SAT.
            smem_per_block: 160.0 * 1024.0,
            warps_per_block: 4.0,
            ..full
        };
        let t_full = estimate(&full, Pipeline::Fp32, &cfg);
        let t_starved = estimate(&starved, Pipeline::Fp32, &cfg);
        assert!(t_starved.dram_s > 3.0 * t_full.dram_s);
    }

    #[test]
    fn unfittable_block_is_finite_but_terrible() {
        let cfg = a100();
        let p = KernelProfile {
            flops: 1e12,
            warps_per_block: 8.0,
            smem_per_block: 1024.0 * 1024.0, // exceeds any SM
            ..Default::default()
        };
        assert_eq!(p.occupancy(&cfg), 0.0);
        let t = estimate(&p, Pipeline::Fp32, &cfg);
        assert!(t.total_s.is_finite());
        assert!(
            t.compute_s
                > estimate(
                    &KernelProfile {
                        smem_per_block: 0.0,
                        ..p
                    },
                    Pipeline::Fp32,
                    &cfg
                )
                .compute_s
        );
    }
}
