//! The roofline-style timing model.
//!
//! A kernel's runtime is estimated as the maximum of its bottleneck
//! times (compute, DRAM traffic, L2 traffic, shared-memory serialization)
//! plus launch overhead — the standard bulk-synchronous GPU model. The
//! experiments compare *layouts*, so what matters is that each layout's
//! traffic and conflict counts feed these terms; absolute constants only
//! scale the axes.

use crate::config::GpuConfig;

/// Which compute pipeline a kernel saturates.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Pipeline {
    /// CUDA-core FP32 FMA.
    Fp32,
    /// Tensor-core FP16.
    TensorFp16,
}

/// Aggregated execution profile of one kernel launch.
#[derive(Clone, Copy, Debug, Default)]
pub struct KernelProfile {
    /// Floating-point operations executed.
    pub flops: f64,
    /// Bytes moved between DRAM and L2 (after cache filtering).
    pub dram_bytes: f64,
    /// Bytes moved between L2 and the SMs (before cache filtering).
    pub l2_bytes: f64,
    /// Total shared-memory access passes (bank-conflict serialized).
    pub smem_passes: f64,
    /// Number of thread blocks launched.
    pub blocks: f64,
    /// Number of kernel launches this profile covers.
    pub launches: f64,
}

impl KernelProfile {
    /// Merges another profile into this one (e.g. per-block profiles).
    pub fn merge(&mut self, other: &KernelProfile) {
        self.flops += other.flops;
        self.dram_bytes += other.dram_bytes;
        self.l2_bytes += other.l2_bytes;
        self.smem_passes += other.smem_passes;
        self.blocks += other.blocks;
        self.launches += other.launches;
    }

    /// Arithmetic intensity against DRAM traffic (FLOP/byte) — the
    /// roofline x-axis.
    pub fn arithmetic_intensity(&self) -> f64 {
        if self.dram_bytes == 0.0 {
            return f64::INFINITY;
        }
        self.flops / self.dram_bytes
    }
}

/// A time estimate broken into bottleneck terms.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TimeEstimate {
    /// Compute-bound time (s).
    pub compute_s: f64,
    /// DRAM-bound time (s).
    pub dram_s: f64,
    /// L2-bound time (s).
    pub l2_s: f64,
    /// Shared-memory-bound time (s).
    pub smem_s: f64,
    /// Launch overhead (s).
    pub overhead_s: f64,
    /// The final estimate: `max(terms) + overhead`.
    pub total_s: f64,
}

/// Estimates the runtime of a kernel profile on `cfg`.
///
/// Shared-memory passes are serviced at one pass per SM per cycle
/// (128 bytes/pass), aggregated over all SMs.
pub fn estimate(profile: &KernelProfile, pipeline: Pipeline, cfg: &GpuConfig) -> TimeEstimate {
    let peak = match pipeline {
        Pipeline::Fp32 => cfg.fp32_flops,
        Pipeline::TensorFp16 => cfg.fp16_tc_flops,
    };
    let compute_s = profile.flops / peak;
    let dram_s = profile.dram_bytes / (cfg.dram_bw * cfg.dram_efficiency);
    let l2_s = profile.l2_bytes / cfg.l2_bw;
    // One warp smem pass per SM per cycle across all SMs.
    let smem_s = profile.smem_passes / (cfg.sm_count as f64 * cfg.clock_hz);
    let overhead_s = profile.launches.max(1.0) * cfg.launch_overhead;
    let total_s = compute_s.max(dram_s).max(l2_s).max(smem_s) + overhead_s;
    TimeEstimate {
        compute_s,
        dram_s,
        l2_s,
        smem_s,
        overhead_s,
        total_s,
    }
}

/// Achieved FLOP/s of a profile under the estimate.
pub fn achieved_flops(profile: &KernelProfile, pipeline: Pipeline, cfg: &GpuConfig) -> f64 {
    profile.flops / estimate(profile, pipeline, cfg).total_s
}

/// Achieved bytes/s (for bandwidth-bound kernels such as transpose,
/// counting useful bytes only).
pub fn achieved_bandwidth(useful_bytes: f64, profile: &KernelProfile, cfg: &GpuConfig) -> f64 {
    useful_bytes / estimate(profile, Pipeline::Fp32, cfg).total_s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::a100;

    #[test]
    fn compute_bound_kernel() {
        let cfg = a100();
        let p = KernelProfile {
            flops: 1e12,
            dram_bytes: 1e6,
            launches: 1.0,
            ..Default::default()
        };
        let t = estimate(&p, Pipeline::TensorFp16, &cfg);
        assert!(t.compute_s > t.dram_s);
        assert!(t.total_s >= t.compute_s);
    }

    #[test]
    fn memory_bound_kernel() {
        let cfg = a100();
        let p = KernelProfile {
            flops: 1e6,
            dram_bytes: 1e9,
            launches: 1.0,
            ..Default::default()
        };
        let t = estimate(&p, Pipeline::Fp32, &cfg);
        assert!(t.dram_s > t.compute_s);
    }

    #[test]
    fn overhead_dominates_tiny_kernels() {
        let cfg = a100();
        let p = KernelProfile {
            flops: 1.0,
            launches: 100.0,
            ..Default::default()
        };
        let t = estimate(&p, Pipeline::Fp32, &cfg);
        assert!((t.total_s - 100.0 * cfg.launch_overhead).abs() / t.total_s < 0.01);
    }

    #[test]
    fn smem_term_scales_with_passes() {
        let cfg = a100();
        let p1 = KernelProfile {
            smem_passes: 1e9,
            ..Default::default()
        };
        let p2 = KernelProfile {
            smem_passes: 2e9,
            ..Default::default()
        };
        let t1 = estimate(&p1, Pipeline::Fp32, &cfg).smem_s;
        let t2 = estimate(&p2, Pipeline::Fp32, &cfg).smem_s;
        assert!((t2 / t1 - 2.0).abs() < 1e-9);
    }

    #[test]
    fn arithmetic_intensity() {
        let p = KernelProfile {
            flops: 100.0,
            dram_bytes: 50.0,
            ..Default::default()
        };
        assert!((p.arithmetic_intensity() - 2.0).abs() < 1e-12);
    }
}
