//! One-call layout scoring: the autotuner's evaluation oracle.
//!
//! [`score`] is the call-site-friendly face of the device-generic
//! pricing engine in [`crate::model`]: it hands the `(layout, workload,
//! cfg)` triple to a [`CostModel`], which composes the crate's
//! primitive models — warp coalescing ([`crate::coalesce`]),
//! shared-memory bank serialization ([`crate::smem`]), sector- and
//! tile-granular L2 filtering ([`crate::cache`] / [`crate::tilecache`])
//! and the timing model ([`crate::timing`]) — under the workload's
//! [`PricingMode`]. [`score_batch`] evaluates many candidate layouts in
//! parallel (layouts are `Send + Sync` since the `Arc` refactor).
//!
//! A [`Workload`] describes *what* a kernel touches in logical terms;
//! the [`lego_core::Layout`] under evaluation decides *where* those
//! touches land. The workload's trace generators receive the layout and
//! emit warp-level element indices (or tile touches) through a callback,
//! so traces never have to be materialized in memory.

use lego_core::Layout;

use crate::config::GpuConfig;
use crate::model::{CostModel, PricingMode};
use crate::timing::{Pipeline, TimeEstimate};

/// Generator of warp-level element-index groups: called with the layout
/// under evaluation and a sink receiving one warp's flat element indices
/// per call.
pub type AddrGen = Box<dyn Fn(&Layout, &mut dyn FnMut(&[i64])) + Send + Sync>;

/// Generator of tile-granular touches: called with the layout under
/// evaluation and a sink receiving `(tile_id, bytes)` per touch, in
/// execution order.
pub type TouchGen = Box<dyn Fn(&Layout, &mut dyn FnMut(i64, usize)) + Send + Sync>;

/// A sector-granular L2 model for [`Phase::Global`] traffic.
#[derive(Clone, Copy, Debug)]
pub struct L2Model {
    /// Number of cache lines (sectors).
    pub lines: usize,
    /// Associativity.
    pub assoc: usize,
}

/// One traffic phase of a workload.
pub enum Phase {
    /// Global-memory warp accesses: each emitted warp is coalesced into
    /// `cfg.sector_bytes` sectors; the sector stream is filtered through
    /// the workload's L2 model (if any) to split L2 from DRAM traffic.
    Global {
        /// The warp trace.
        trace: AddrGen,
        /// Element size in bytes.
        elem_bytes: usize,
        /// How many times the representative trace repeats.
        scale: f64,
    },
    /// Shared-memory warp accesses, serialized by bank conflicts.
    Shared {
        /// The warp trace (element indices into the staging buffer).
        trace: AddrGen,
        /// How many times the representative trace repeats.
        scale: f64,
    },
    /// Tile-granular touches filtered through an LRU of L2 capacity —
    /// the wave-reuse model of the matmul driver.
    TileTouches {
        /// The touch trace.
        trace: TouchGen,
        /// How many times the representative trace repeats.
        scale: f64,
    },
    /// Pre-aggregated traffic charged directly to the DRAM and L2
    /// terms, without cache filtering — for workloads (LUD panels)
    /// whose reuse is modeled analytically at panel granularity.
    Streamed {
        /// Bytes charged to the DRAM term.
        dram_bytes: f64,
        /// Bytes charged to the L2 term.
        l2_bytes: f64,
    },
}

/// Per-thread-block resource footprint of a workload's kernel — feeds
/// the occupancy term of [`crate::timing::estimate`]. The zero default
/// means "unspecified": full occupancy, no derating.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct BlockResources {
    /// Warps per thread block.
    pub warps_per_block: f64,
    /// Registers allocated per thread block.
    pub regs_per_block: f64,
    /// Shared memory per thread block in bytes.
    pub smem_per_block: f64,
}

/// A workload description: fixed logical structure, layout left free.
pub struct Workload {
    /// Display name.
    pub name: String,
    /// Compute pipeline the kernel saturates.
    pub pipeline: Pipeline,
    /// Floating-point work (layout-independent).
    pub flops: f64,
    /// Useful bytes (for bandwidth accounting).
    pub useful_bytes: f64,
    /// Streaming traffic not covered by the traces (e.g. result
    /// writeback) — added to both DRAM and L2 terms.
    pub streamed_bytes: f64,
    /// Thread blocks launched.
    pub blocks: f64,
    /// Kernel launches.
    pub launches: f64,
    /// Whether compute time is wave-quantized (a partial last wave costs
    /// a full wave).
    pub wave_quantized: bool,
    /// Sector-granular L2 for [`Phase::Global`] traffic; `None` sends
    /// all coalesced traffic to DRAM (streaming kernels).
    pub l2: Option<L2Model>,
    /// Per-block resource footprint for the occupancy model.
    pub resources: BlockResources,
    /// How the bottleneck terms combine into a runtime (roofline for
    /// overlapped kernels, additive for dependency-serialized ones).
    pub mode: PricingMode,
    /// Geometry fingerprint prefix for the traffic memo (see
    /// [`crate::traffic`]): a stable string covering *every* parameter
    /// the phase traces read — builder params and the device the
    /// closures were built against. `None` (the default for hand-built
    /// workloads) keeps the closure-carrying phases uncacheable; only
    /// the producer that wrote the closures can promise completeness,
    /// so cacheability is opt-in at construction. The cost model
    /// appends the pricing-device geometry and a structural layout
    /// fingerprint before using it as a memo key.
    pub traffic_key: Option<String>,
    /// The traffic phases.
    pub phases: Vec<Phase>,
}

/// The scored result of one (layout, workload) pair.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Estimate {
    /// Final runtime estimate in seconds.
    pub time_s: f64,
    /// Bottleneck breakdown.
    pub breakdown: TimeEstimate,
    /// DRAM bytes moved.
    pub dram_bytes: f64,
    /// L2↔SM bytes moved.
    pub l2_bytes: f64,
    /// Bank-conflict-serialized shared-memory passes.
    pub smem_passes: f64,
    /// Hit rate of the cache model(s), traffic-weighted.
    pub l2_hit_rate: f64,
    /// FLOPs of the workload (copied through for throughput helpers).
    pub flops: f64,
    /// Useful bytes of the workload.
    pub useful_bytes: f64,
}

impl Estimate {
    /// Achieved TFLOP/s.
    pub fn tflops(&self) -> f64 {
        self.flops / self.time_s / 1e12
    }

    /// Achieved useful GB/s.
    pub fn gbps(&self) -> f64 {
        self.useful_bytes / self.time_s / 1e9
    }
}

/// Scores one candidate layout against a workload on `cfg` by handing
/// it to the device's [`CostModel`] — the single trace→estimate path
/// shared by the bench drivers and the tuner.
pub fn score(layout: &Layout, workload: &Workload, cfg: &GpuConfig) -> Estimate {
    CostModel::new(cfg).price(layout, workload)
}

/// One unit of batch work: a candidate layout plus the workload it is
/// scored against (workloads may differ per candidate, e.g. tile sizes).
pub type ScoreJob = (Layout, Workload);

/// Scores a batch of candidates in parallel, preserving order (see
/// [`CostModel::price_batch`]).
pub fn score_batch(jobs: Vec<ScoreJob>, cfg: &GpuConfig) -> Vec<Estimate> {
    CostModel::new(cfg).price_batch(jobs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::a100;

    fn streaming_workload(stride: i64) -> Workload {
        Workload {
            name: format!("stream-stride-{stride}"),
            pipeline: Pipeline::Fp32,
            flops: 0.0,
            useful_bytes: 32.0 * 4.0 * 1000.0,
            streamed_bytes: 0.0,
            blocks: 1.0,
            launches: 1.0,
            wave_quantized: false,
            l2: None,
            resources: BlockResources::default(),
            mode: PricingMode::Roofline,
            traffic_key: None,
            phases: vec![Phase::Global {
                trace: Box::new(move |layout, sink| {
                    let idx: Vec<i64> = (0..32)
                        .map(|l| layout.apply_c(&[l * stride]).unwrap())
                        .collect();
                    sink(&idx);
                }),
                elem_bytes: 4,
                scale: 1000.0,
            }],
        }
    }

    #[test]
    fn strided_stream_scores_slower_than_unit_stride() {
        let cfg = a100();
        let layout = Layout::identity([100_000i64]).unwrap();
        let unit = score(&layout, &streaming_workload(1), &cfg);
        let strided = score(&layout, &streaming_workload(64), &cfg);
        assert!(strided.time_s > unit.time_s);
        assert!(strided.dram_bytes > unit.dram_bytes);
    }

    #[test]
    fn batch_matches_sequential() {
        let cfg = a100();
        let jobs: Vec<ScoreJob> = (1..9)
            .map(|s| {
                (
                    Layout::identity([100_000i64]).unwrap(),
                    streaming_workload(s),
                )
            })
            .collect();
        let seq: Vec<Estimate> = jobs.iter().map(|(l, w)| score(l, w, &cfg)).collect();
        let par = score_batch(jobs, &cfg);
        assert_eq!(seq, par);
    }

    #[test]
    fn shared_phase_counts_conflict_passes() {
        let cfg = a100();
        let layout = Layout::identity([32i64, 32]).unwrap();
        // Column walk through an unswizzled 32x32 tile: 32-way conflicts.
        let w = Workload {
            name: "smem".into(),
            pipeline: Pipeline::Fp32,
            flops: 0.0,
            useful_bytes: 0.0,
            streamed_bytes: 0.0,
            blocks: 1.0,
            launches: 1.0,
            wave_quantized: false,
            l2: None,
            resources: BlockResources::default(),
            mode: PricingMode::Roofline,
            traffic_key: None,
            phases: vec![Phase::Shared {
                trace: Box::new(|layout, sink| {
                    let idx: Vec<i64> = (0..32).map(|r| layout.apply_c(&[r, 0]).unwrap()).collect();
                    sink(&idx);
                }),
                scale: 1.0,
            }],
        };
        let e = score(&layout, &w, &cfg);
        assert_eq!(e.smem_passes, 32.0);
    }
}
