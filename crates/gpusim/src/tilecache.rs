//! A byte-budget LRU cache over variable-sized objects ("tiles").
//!
//! The matmul experiments simulate the L2 at *tile* granularity: each
//! `BM×BK` input tile is one object. This keeps an 8192³ GEMM tractable
//! (thousands of tile touches instead of 10¹¹ element touches) while
//! still capturing the reuse effect the grouped thread-block layout
//! exists for.

use std::collections::HashMap;

/// LRU cache keyed by arbitrary `i64` ids with per-object byte sizes.
#[derive(Clone, Debug)]
pub struct TileCache {
    capacity: usize,
    used: usize,
    stamp: u64,
    resident: HashMap<i64, (u64, usize)>, // id -> (last use, bytes)
    hits: u64,
    misses: u64,
    miss_bytes: u64,
}

impl TileCache {
    /// Creates a cache with the given byte capacity.
    pub fn new(capacity: usize) -> TileCache {
        TileCache {
            capacity,
            used: 0,
            stamp: 0,
            resident: HashMap::new(),
            hits: 0,
            misses: 0,
            miss_bytes: 0,
        }
    }

    /// Touches object `id` of `bytes` size; returns `true` on hit.
    pub fn touch(&mut self, id: i64, bytes: usize) -> bool {
        self.stamp += 1;
        if let Some(slot) = self.resident.get_mut(&id) {
            slot.0 = self.stamp;
            self.hits += 1;
            return true;
        }
        self.misses += 1;
        self.miss_bytes += bytes as u64;
        // Evict LRU objects until the new one fits.
        while self.used + bytes > self.capacity && !self.resident.is_empty() {
            let (&lru, _) = self
                .resident
                .iter()
                .min_by_key(|(_, (s, _))| *s)
                .expect("non-empty");
            let (_, b) = self.resident.remove(&lru).expect("present");
            self.used -= b;
        }
        if bytes <= self.capacity {
            self.resident.insert(id, (self.stamp, bytes));
            self.used += bytes;
        }
        false
    }

    /// Total bytes fetched on misses.
    pub fn miss_bytes(&self) -> u64 {
        self.miss_bytes
    }

    /// Hit count.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Miss count.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Hit rate in [0, 1] (1.0 when untouched).
    pub fn hit_rate(&self) -> f64 {
        let t = self.hits + self.misses;
        if t == 0 {
            1.0
        } else {
            self.hits as f64 / t as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_after_insert() {
        let mut c = TileCache::new(100);
        assert!(!c.touch(1, 40));
        assert!(c.touch(1, 40));
        assert_eq!(c.miss_bytes(), 40);
    }

    #[test]
    fn byte_budget_evicts_lru() {
        let mut c = TileCache::new(100);
        c.touch(1, 60);
        c.touch(2, 60); // evicts 1
        assert!(!c.touch(1, 60));
    }

    #[test]
    fn touch_refreshes_lru() {
        let mut c = TileCache::new(120);
        c.touch(1, 60);
        c.touch(2, 60);
        c.touch(1, 60); // 2 becomes LRU
        c.touch(3, 60); // evicts 2
        assert!(c.touch(1, 60));
        assert!(!c.touch(2, 60));
    }

    #[test]
    fn oversized_object_streams_through() {
        let mut c = TileCache::new(10);
        assert!(!c.touch(1, 100));
        assert!(!c.touch(1, 100), "must not be cached");
        assert_eq!(c.miss_bytes(), 200);
    }

    #[test]
    fn hit_rate_reporting() {
        let mut c = TileCache::new(1000);
        c.touch(1, 10);
        c.touch(1, 10);
        c.touch(1, 10);
        assert!((c.hit_rate() - 2.0 / 3.0).abs() < 1e-12);
    }
}
