//! Roofline-model helpers (paper Fig. 13).
//!
//! The roofline bounds achievable performance by
//! `min(peak_compute, AI × memory_bandwidth)` where `AI` is arithmetic
//! intensity in FLOP/byte of DRAM traffic.

use crate::config::GpuConfig;
use crate::timing::Pipeline;

/// One point on a roofline plot.
#[derive(Clone, Copy, Debug)]
pub struct RooflinePoint {
    /// Arithmetic intensity (FLOP/byte).
    pub intensity: f64,
    /// Achieved performance (FLOP/s).
    pub achieved: f64,
    /// The roof at this intensity (FLOP/s).
    pub attainable: f64,
}

/// The roof value at a given intensity.
pub fn attainable(intensity: f64, pipeline: Pipeline, cfg: &GpuConfig) -> f64 {
    let peak = match pipeline {
        Pipeline::Fp32 => cfg.fp32_flops,
        Pipeline::TensorFp16 => cfg.fp16_tc_flops,
    };
    peak.min(intensity * cfg.dram_bw * cfg.dram_efficiency)
}

/// Builds a roofline point from measured intensity and achieved rate.
pub fn point(intensity: f64, achieved: f64, pipeline: Pipeline, cfg: &GpuConfig) -> RooflinePoint {
    RooflinePoint {
        intensity,
        achieved,
        attainable: attainable(intensity, pipeline, cfg),
    }
}

/// The ridge point (intensity where compute == bandwidth roof).
pub fn ridge(pipeline: Pipeline, cfg: &GpuConfig) -> f64 {
    let peak = match pipeline {
        Pipeline::Fp32 => cfg.fp32_flops,
        Pipeline::TensorFp16 => cfg.fp16_tc_flops,
    };
    peak / (cfg.dram_bw * cfg.dram_efficiency)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::a100;

    #[test]
    fn low_intensity_is_bandwidth_bound() {
        let cfg = a100();
        let r = attainable(0.5, Pipeline::Fp32, &cfg);
        assert!((r - 0.5 * cfg.dram_bw * cfg.dram_efficiency).abs() < 1.0);
    }

    #[test]
    fn high_intensity_is_compute_bound() {
        let cfg = a100();
        assert_eq!(attainable(1e6, Pipeline::Fp32, &cfg), cfg.fp32_flops);
    }

    #[test]
    fn ridge_separates_regimes() {
        let cfg = a100();
        let x = ridge(Pipeline::Fp32, &cfg);
        assert!(attainable(x * 0.9, Pipeline::Fp32, &cfg) < cfg.fp32_flops);
        assert_eq!(attainable(x * 1.1, Pipeline::Fp32, &cfg), cfg.fp32_flops);
    }

    #[test]
    fn point_is_below_roof_when_reasonable() {
        let cfg = a100();
        let p = point(10.0, 1e12, Pipeline::Fp32, &cfg);
        assert!(p.achieved <= p.attainable);
    }
}
