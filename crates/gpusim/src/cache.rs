//! A set-associative LRU cache simulator (used as the L2 model).
//!
//! Addresses are in *lines*; callers pick the granularity (32-byte
//! sectors for element traces, whole tiles for the tile-level matmul
//! simulation).

/// Hit/miss outcome of one access.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Access {
    /// The line was resident.
    Hit,
    /// The line was fetched (and possibly evicted another).
    Miss,
}

/// Aggregate cache statistics.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct CacheStats {
    /// Number of hits.
    pub hits: u64,
    /// Number of misses.
    pub misses: u64,
}

impl CacheStats {
    /// Hit rate in [0, 1] (1.0 for no accesses).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            return 1.0;
        }
        self.hits as f64 / total as f64
    }
}

/// A set-associative cache with LRU replacement over abstract line ids.
#[derive(Clone, Debug)]
pub struct Cache {
    sets: Vec<Vec<(i64, u64)>>, // (line id, last-use stamp)
    assoc: usize,
    stamp: u64,
    stats: CacheStats,
}

impl Cache {
    /// Creates a cache with `lines` total lines and associativity
    /// `assoc` (lines are grouped into `lines/assoc` sets).
    ///
    /// # Panics
    ///
    /// Panics if `assoc == 0` or `lines < assoc`.
    pub fn new(lines: usize, assoc: usize) -> Cache {
        assert!(assoc > 0 && lines >= assoc, "invalid cache geometry");
        let nsets = (lines / assoc).max(1);
        Cache {
            sets: vec![Vec::with_capacity(assoc); nsets],
            assoc,
            stamp: 0,
            stats: CacheStats::default(),
        }
    }

    /// A fully-associative cache with `lines` lines.
    pub fn fully_associative(lines: usize) -> Cache {
        Cache::new(lines, lines)
    }

    /// Accesses `line`, updating LRU state and statistics.
    pub fn access(&mut self, line: i64) -> Access {
        self.stamp += 1;
        let stamp = self.stamp;
        let nsets = self.sets.len() as i64;
        let set = &mut self.sets[line.rem_euclid(nsets) as usize];
        if let Some(slot) = set.iter_mut().find(|(l, _)| *l == line) {
            slot.1 = stamp;
            self.stats.hits += 1;
            return Access::Hit;
        }
        self.stats.misses += 1;
        if set.len() >= self.assoc {
            // Evict LRU.
            let (pos, _) = set
                .iter()
                .enumerate()
                .min_by_key(|(_, (_, s))| *s)
                .expect("set non-empty");
            set.swap_remove(pos);
        }
        set.push((line, stamp));
        Access::Miss
    }

    /// The statistics so far.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Resets contents and statistics.
    pub fn clear(&mut self) {
        for s in &mut self.sets {
            s.clear();
        }
        self.stats = CacheStats::default();
        self.stamp = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cold_miss_then_hit() {
        let mut c = Cache::fully_associative(4);
        assert_eq!(c.access(7), Access::Miss);
        assert_eq!(c.access(7), Access::Hit);
        assert_eq!(c.stats().hits, 1);
        assert_eq!(c.stats().misses, 1);
    }

    #[test]
    fn lru_eviction_order() {
        let mut c = Cache::fully_associative(2);
        c.access(1);
        c.access(2);
        c.access(1); // 2 is now LRU
        c.access(3); // evicts 2
        assert_eq!(c.access(1), Access::Hit);
        assert_eq!(c.access(2), Access::Miss);
    }

    #[test]
    fn set_mapping_isolates_sets() {
        // 2 sets x 1 way: lines 0 and 2 collide, 0 and 1 do not.
        let mut c = Cache::new(2, 1);
        c.access(0);
        c.access(1);
        assert_eq!(c.access(0), Access::Hit);
        c.access(2); // evicts 0 (same set)
        assert_eq!(c.access(0), Access::Miss);
    }

    #[test]
    fn hit_rate_math() {
        let mut c = Cache::fully_associative(8);
        for _ in 0..3 {
            c.access(42);
        }
        assert!((c.stats().hit_rate() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn working_set_larger_than_cache_thrashes() {
        let mut c = Cache::fully_associative(4);
        // Cyclic sweep over 8 lines with LRU: always miss.
        for _ in 0..4 {
            for l in 0..8 {
                c.access(l);
            }
        }
        assert_eq!(c.stats().hits, 0);
    }

    #[test]
    fn clear_resets() {
        let mut c = Cache::fully_associative(2);
        c.access(1);
        c.clear();
        assert_eq!(c.stats(), CacheStats::default());
        assert_eq!(c.access(1), Access::Miss);
    }
}
