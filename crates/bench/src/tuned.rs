//! The `--tuned` mode of the bench binaries: run the `lego-tune` search
//! for the binary's workloads and report naive-vs-tuned estimates,
//! backed by the persistent `TUNE_CACHE.json`.

use gpu_sim::a100;
use lego_tune::{Json, Tuner, WorkloadKind};

use crate::emit;

/// Whether `--tuned` was passed on the command line.
pub fn tuned_requested() -> bool {
    std::env::args().any(|a| a == "--tuned")
}

/// If `--tuned` was requested, tunes `kinds`, prints a naive-vs-tuned
/// table, and emits `BENCH_<name>_tuned.json`. Returns whether the
/// report ran.
pub fn maybe_report(name: &str, kinds: &[WorkloadKind]) -> bool {
    if !tuned_requested() {
        return false;
    }
    let tuner = Tuner::new(a100()).with_cache("TUNE_CACHE.json");
    println!("\n-- lego-tune: naive vs tuned (gpu-sim estimates) --");
    println!(
        "{:<26} {:>12} {:>12} {:>8}  {:<34} source",
        "workload", "naive (ms)", "tuned (ms)", "speedup", "winner"
    );
    let mut rows = Vec::new();
    for kind in kinds {
        match tuner.tune(kind) {
            Ok(r) => {
                println!(
                    "{:<26} {:>12.4} {:>12.4} {:>7.2}x  {:<34} {}",
                    r.workload,
                    r.naive.time_s * 1e3,
                    r.tuned.time_s * 1e3,
                    r.speedup(),
                    r.config.to_string(),
                    if r.from_cache {
                        "cache".to_string()
                    } else {
                        format!("searched {}", r.evaluated)
                    }
                );
                rows.push(Json::obj([
                    ("workload", Json::Str(r.workload.clone())),
                    ("naive_s", Json::num(r.naive.time_s)),
                    ("tuned_s", Json::num(r.tuned.time_s)),
                    ("speedup", Json::num(r.speedup())),
                    ("winner", Json::Str(r.config.to_string())),
                    ("from_cache", Json::Bool(r.from_cache)),
                    ("evaluated", Json::Int(r.evaluated as i64)),
                ]));
            }
            Err(e) => eprintln!("{}: tuning failed: {e}", kind.name()),
        }
    }
    emit::announce(emit::write_bench_json(&format!("{name}_tuned"), rows));
    true
}
