//! The `--tuned` mode of the bench binaries: run the `lego-tune` search
//! for the binary's workloads and report naive-vs-tuned estimates,
//! backed by the persistent `TUNE_CACHE.json`.
//!
//! The search is steered from the command line:
//!
//! * `--device a100|h100|mi300` — which hardware model to simulate and
//!   tune against (default `a100`); non-default devices suffix the
//!   `BENCH_*.json` artifacts, so per-device results sit side by side;
//! * `--strategy exhaustive|anneal|genetic` — how to explore the space
//!   (default `exhaustive`, the v2 behavior);
//! * `--budget N` — evaluation cap for the metaheuristics (default
//!   2000);
//! * `--space legacy|enlarged` — pin the space scale (by default
//!   exhaustive enumerates the legacy space and the metaheuristics
//!   search the enlarged free-integer one).

use gpu_sim::GpuConfig;
use lego_tune::{Budget, Json, SpaceScale, Strategy, Tuner, WorkloadKind};

use crate::emit;

/// Whether `--tuned` was passed on the command line.
pub fn tuned_requested() -> bool {
    std::env::args().any(|a| a == "--tuned")
}

/// The command-line flags that take a value — skipped (with their
/// values) by [`positional_args`].
const VALUE_FLAGS: [&str; 5] = ["--device", "--strategy", "--budget", "--space", "--sidecar"];

/// The positional (non-flag) arguments: everything after the binary
/// name minus `--tuned` and the value-taking flags with their values.
pub fn positional_args() -> Vec<String> {
    let mut out = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        if VALUE_FLAGS.contains(&a.as_str()) {
            let _ = args.next();
        } else if !a.starts_with("--") {
            out.push(a);
        }
    }
    out
}

/// The device model selected by `--device` (default A100). Unknown
/// tags abort with a usage message rather than silently falling back.
pub fn device_from_args() -> GpuConfig {
    match flag_value("--device") {
        None => gpu_sim::a100(),
        Some(v) => gpu_sim::by_name(&v).unwrap_or_else(|| {
            eprintln!(
                "unknown --device {v:?} (use {})",
                gpu_sim::DEVICE_TAGS.join("|")
            );
            std::process::exit(2);
        }),
    }
}

/// The `BENCH_*.json` name for `base` on device `cfg`: the default
/// A100 keeps the historical name, other devices are suffixed
/// (`fig12_mi300`), so per-device artifacts coexist.
pub fn bench_name(base: &str, cfg: &GpuConfig) -> String {
    if cfg.tag == "a100" {
        base.to_string()
    } else {
        format!("{base}_{}", cfg.tag)
    }
}

/// The value following `flag` on the command line. `None` when the
/// flag is absent; a flag given without a value (end of line, or
/// followed by another `--flag`) aborts with a usage message instead of
/// silently falling back to the default.
fn flag_value(flag: &str) -> Option<String> {
    let mut args = std::env::args();
    while let Some(a) = args.next() {
        if a == flag {
            return match args.next() {
                Some(v) if !v.starts_with("--") => Some(v),
                _ => {
                    eprintln!("{flag} requires a value");
                    std::process::exit(2);
                }
            };
        }
    }
    None
}

/// The search strategy selected by `--strategy` (default exhaustive).
/// Unknown names abort with a usage message rather than silently
/// falling back.
pub fn strategy_from_args() -> Strategy {
    match flag_value("--strategy") {
        None => Strategy::Exhaustive,
        Some(v) => Strategy::parse(&v).unwrap_or_else(|| {
            eprintln!("unknown --strategy {v:?} (use exhaustive|anneal|genetic)");
            std::process::exit(2);
        }),
    }
}

/// The evaluation budget selected by `--budget` (default 2000).
pub fn budget_from_args() -> Budget {
    match flag_value("--budget") {
        None => Budget::default(),
        Some(v) => match v.parse::<usize>() {
            Ok(n) if n > 0 => Budget(n),
            _ => {
                eprintln!("--budget requires a positive integer, got {v:?}");
                std::process::exit(2);
            }
        },
    }
}

/// The space-scale pin selected by `--space`, if any.
pub fn space_from_args() -> Option<SpaceScale> {
    flag_value("--space").map(|v| {
        SpaceScale::parse(&v).unwrap_or_else(|| {
            eprintln!("unknown --space {v:?} (use legacy|enlarged)");
            std::process::exit(2);
        })
    })
}

/// The persistent memo-sidecar path selected by `--sidecar`, if any
/// (`none` disables, mirroring `lego-served`).
pub fn sidecar_from_args() -> Option<std::path::PathBuf> {
    flag_value("--sidecar")
        .filter(|v| v != "none")
        .map(std::path::PathBuf::from)
}

/// Warm-start this thread from the `--sidecar` file, if one was given:
/// installs the persisted expression memos and candidate annotations
/// and prints what got re-warmed. Returns the path for
/// [`sidecar_teardown`].
pub fn sidecar_setup() -> Option<std::path::PathBuf> {
    let path = sidecar_from_args()?;
    let warm = lego_tune::sidecar::load_and_install(&path);
    println!(
        "-- sidecar {}: installed {} expr memo entries + {} annotations + {} traffic geometries --",
        path.display(),
        warm.exprs.installed(),
        warm.annotations,
        warm.traffics
    );
    Some(path)
}

/// Merges this thread's derived results back into the `--sidecar` file
/// (no-op when [`sidecar_setup`] returned `None`). Persistence is
/// best-effort: failures are reported, never fatal to a completed
/// bench run.
pub fn sidecar_teardown(path: &Option<std::path::PathBuf>) {
    let Some(path) = path else { return };
    if let Err(e) = lego_tune::sidecar::collect_and_save(path) {
        eprintln!("sidecar write failed for {}: {e}", path.display());
    }
}

/// If `--tuned` was requested, tunes `kinds` on the `--device` model
/// with the strategy/budget from the command line, prints a
/// naive-vs-tuned table, and emits `BENCH_<name>[_<device>]_tuned.json`.
/// Returns whether the report ran.
pub fn maybe_report(name: &str, kinds: &[WorkloadKind]) -> bool {
    if !tuned_requested() {
        return false;
    }
    let sidecar = sidecar_setup();
    let device = device_from_args();
    let strategy = strategy_from_args();
    let budget = budget_from_args();
    let mut tuner = Tuner::new(device.clone())
        .with_cache("TUNE_CACHE.json")
        .with_strategy(strategy)
        .with_budget(budget);
    if let Some(space) = space_from_args() {
        tuner = tuner.with_space(space);
    }
    println!(
        "\n-- lego-tune: naive vs tuned ({} estimates; strategy={}, space={}) --",
        device.name,
        strategy,
        tuner.effective_space().name()
    );
    println!(
        "{:<26} {:>12} {:>12} {:>8}  {:<34} source",
        "workload", "naive (ms)", "tuned (ms)", "speedup", "winner"
    );
    let mut rows = Vec::new();
    for kind in kinds {
        match tuner.tune(kind) {
            Ok(r) => {
                println!(
                    "{:<26} {:>12.4} {:>12.4} {:>7.2}x  {:<34} {}",
                    r.workload,
                    r.naive.time_s * 1e3,
                    r.tuned.time_s * 1e3,
                    r.speedup(),
                    r.config.to_string(),
                    if r.from_cache {
                        "cache".to_string()
                    } else {
                        format!("searched {}", r.evaluated)
                    }
                );
                rows.push(Json::obj([
                    ("workload", Json::Str(r.workload.clone())),
                    ("naive_s", Json::num(r.naive.time_s)),
                    ("tuned_s", Json::num(r.tuned.time_s)),
                    ("speedup", Json::num(r.speedup())),
                    ("winner", Json::Str(r.config.to_string())),
                    ("from_cache", Json::Bool(r.from_cache)),
                    ("evaluated", Json::Int(r.evaluated as i64)),
                    ("strategy", Json::Str(strategy.name().to_string())),
                    ("device", Json::Str(device.tag.to_string())),
                ]));
            }
            Err(e) => eprintln!("{}: tuning failed: {e}", kind.name()),
        }
    }
    emit::announce(emit::write_bench_json(
        &format!("{}_tuned", bench_name(name, &device)),
        rows,
    ));
    sidecar_teardown(&sidecar);
    true
}
