//! Needleman–Wunsch simulation (Fig. 12a).
//!
//! The Rodinia NW processes an `n×n` scoring matrix in `b×b` blocks
//! along block anti-diagonals (one kernel launch per block diagonal); a
//! block's `(b+1)×(b+1)` shared buffer is updated over `2b-1` in-block
//! wavefront steps. The only difference between the two variants is the
//! *buffer layout*: row-major (stride-`b` bank conflicts) vs. the LEGO
//! anti-diagonal permutation (conflict-free).
//!
//! This driver owns **no pricing**: the wavefront trace lives in
//! [`gpu_sim::trace::NwWavefront`] and the calibrated additive launch
//! timing (fixed instruction budget per in-block step plus serialized
//! bank passes, blocks issued `sm_count` at a time per diagonal) lives
//! in `gpu_sim`'s `CostModel` as the workload's
//! `PricingMode::AdditiveLaunch` — the same path the `lego-tune` oracle
//! prices, so table numbers and tuner rankings are bit-identical.

use gpu_sim::trace::{NwWavefront, TraceBuilder};
use gpu_sim::{score, Estimate, GpuConfig};
use lego_codegen::cuda::nw as nwgen;
use lego_core::Layout;

/// Result for one NW configuration.
#[derive(Clone, Copy, Debug)]
pub struct NwResult {
    /// Estimated runtime in seconds.
    pub time_s: f64,
    /// Total shared-memory passes per block sweep.
    pub block_passes: f64,
}

/// Shared-memory passes for one block's full wavefront sweep under a
/// given buffer layout on `cfg`'s warp/bank geometry — counted from the
/// shared trace builder's per-block wavefront walk.
pub fn block_smem_passes(layout: &Layout, b: i64, cfg: &GpuConfig) -> f64 {
    NwWavefront::block_passes(layout, b, cfg)
}

/// Scores one NW configuration through the shared trace builder and
/// cost model, returning the raw `gpu-sim` estimate.
pub fn estimate(n: i64, b: i64, optimized: bool, cfg: &GpuConfig) -> Estimate {
    let k = nwgen::generate(b).expect("nw layouts");
    let layout = if optimized { &k.optimized } else { &k.baseline };
    let workload = NwWavefront {
        n,
        b,
        index_flops: 0.0,
    }
    .build(cfg);
    score(layout, &workload, cfg)
}

/// Simulates the full NW run for an `n×n` matrix with block size `b`.
pub fn simulate(n: i64, b: i64, optimized: bool, cfg: &GpuConfig) -> NwResult {
    let e = estimate(n, b, optimized, cfg);
    let blocks = {
        let nb = (n + b - 1) / b;
        2.0 * (nb * nb) as f64
    };
    NwResult {
        time_s: e.time_s,
        block_passes: e.smem_passes / blocks,
    }
}

/// Speedup of the anti-diagonal layout over the baseline at size `n`.
pub fn speedup(n: i64, b: i64, cfg: &GpuConfig) -> f64 {
    simulate(n, b, false, cfg).time_s / simulate(n, b, true, cfg).time_s
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::{a100, mi300};

    #[test]
    fn antidiag_eliminates_conflicts() {
        let cfg = a100();
        let k = nwgen::generate(16).unwrap();
        let base = block_smem_passes(&k.baseline, 16, &cfg);
        let opt = block_smem_passes(&k.optimized, 16, &cfg);
        assert!(
            base / opt > 4.0,
            "expected large pass reduction: {base} vs {opt}"
        );
    }

    #[test]
    fn optimized_diagonal_passes_are_minimal() {
        // Conflict-free: 4 access groups x (2b-1) diagonals.
        let cfg = a100();
        let k = nwgen::generate(16).unwrap();
        let opt = block_smem_passes(&k.optimized, 16, &cfg);
        assert!(opt <= (4 * (2 * 16 - 1)) as f64 * 1.5);
    }

    #[test]
    fn speedup_in_paper_band() {
        // Paper: 1.4x – 2.1x across sizes.
        let cfg = a100();
        for n in [2048, 4096, 8192, 16384] {
            let s = speedup(n, 16, &cfg);
            assert!(
                (1.3..=2.3).contains(&s),
                "speedup {s:.2} out of band at n={n}"
            );
        }
    }

    #[test]
    fn speedup_grows_with_size() {
        let cfg = a100();
        assert!(speedup(16384, 16, &cfg) >= speedup(2048, 16, &cfg));
    }

    #[test]
    fn antidiag_still_wins_on_warp64_banks() {
        // The 64-bank LDS roughly halves the row-major conflict degree
        // but cannot eliminate it; the anti-diagonal layout stays ahead
        // on an MI300-shaped device.
        let cfg = mi300();
        for n in [2048, 4096] {
            let s = speedup(n, 16, &cfg);
            assert!(s > 1.05, "speedup {s:.2} at n={n} on {}", cfg.name);
        }
    }
}
