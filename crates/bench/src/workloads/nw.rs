//! Needleman–Wunsch simulation (Fig. 12a).
//!
//! The Rodinia NW processes an `n×n` scoring matrix in `b×b` blocks
//! along block anti-diagonals (one kernel launch per block diagonal); a
//! block's `(b+1)×(b+1)` shared buffer is updated over `2b-1` in-block
//! wavefront steps. The only difference between the two variants is the
//! *buffer layout*: row-major (stride-`b` bank conflicts) vs. the LEGO
//! anti-diagonal permutation (conflict-free). The wavefront access
//! groups are emitted by the shared [`gpu_sim::trace::NwWavefront`]
//! builder (also the `lego-tune` oracle's trace); this driver keeps the
//! calibrated additive timing: each in-block step costs a fixed
//! instruction budget plus its serialized shared-memory passes, and
//! each block diagonal runs its blocks `sm_count` at a time.

use gpu_sim::trace::NwWavefront;
use gpu_sim::GpuConfig;
use lego_codegen::cuda::nw as nwgen;
use lego_core::Layout;

/// Result for one NW configuration.
#[derive(Clone, Copy, Debug)]
pub struct NwResult {
    /// Estimated runtime in seconds.
    pub time_s: f64,
    /// Total shared-memory passes per block sweep.
    pub block_passes: f64,
}

/// Non-smem instruction cycles per in-block wavefront step (calibrated;
/// same constant the shared builder's tuner workload uses).
const STEP_CYCLES: f64 = gpu_sim::trace::NW_STEP_CYCLES;
/// Cycles per serialized shared-memory pass (calibrated).
const PASS_CYCLES: f64 = 5.0;
/// Per-launch overhead for the short wavefront kernels (they pipeline
/// better than large kernels, hence below the config default).
const NW_LAUNCH_S: f64 = 2.0e-6;

/// Shared-memory passes for one block's full wavefront sweep under a
/// given buffer layout — counted from the shared trace builder's
/// per-block wavefront walk.
pub fn block_smem_passes(layout: &Layout, b: i64) -> f64 {
    NwWavefront::block_passes(layout, b, 32)
}

/// Simulates the full NW run for an `n×n` matrix with block size `b`.
pub fn simulate(n: i64, b: i64, optimized: bool, cfg: &GpuConfig) -> NwResult {
    let k = nwgen::generate(b).expect("nw layouts");
    let layout = if optimized { &k.optimized } else { &k.baseline };
    let block_passes = block_smem_passes(layout, b);

    // Cycles one block spends in its wavefront sweep.
    let block_cycles = (2 * b - 1) as f64 * STEP_CYCLES + block_passes * PASS_CYCLES;

    let nb = n / b;
    // Two triangular sweeps over block anti-diagonals; each diagonal is
    // one kernel launch running `len` blocks, `sm_count` at a time.
    let mut rounds = 0f64;
    let mut launches = 0f64;
    for sweep in 0..2 {
        let _ = sweep;
        for d in 0..(2 * nb - 1) {
            let len = (d + 1).min(2 * nb - 1 - d).min(nb);
            rounds += (len as f64 / cfg.sm_count as f64).ceil();
            launches += 1.0;
        }
    }
    let compute_s = rounds * block_cycles / cfg.clock_hz;
    let dram_s = 3.0 * (n * n * 4) as f64 / (cfg.dram_bw * cfg.dram_efficiency);
    let time_s = compute_s + dram_s + launches * NW_LAUNCH_S;
    NwResult {
        time_s,
        block_passes,
    }
}

/// Speedup of the anti-diagonal layout over the baseline at size `n`.
pub fn speedup(n: i64, b: i64, cfg: &GpuConfig) -> f64 {
    simulate(n, b, false, cfg).time_s / simulate(n, b, true, cfg).time_s
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::a100;

    #[test]
    fn antidiag_eliminates_conflicts() {
        let k = nwgen::generate(16).unwrap();
        let base = block_smem_passes(&k.baseline, 16);
        let opt = block_smem_passes(&k.optimized, 16);
        assert!(
            base / opt > 4.0,
            "expected large pass reduction: {base} vs {opt}"
        );
    }

    #[test]
    fn optimized_diagonal_passes_are_minimal() {
        // Conflict-free: 4 access groups x (2b-1) diagonals.
        let k = nwgen::generate(16).unwrap();
        let opt = block_smem_passes(&k.optimized, 16);
        assert!(opt <= (4 * (2 * 16 - 1)) as f64 * 1.5);
    }

    #[test]
    fn speedup_in_paper_band() {
        // Paper: 1.4x – 2.1x across sizes.
        let cfg = a100();
        for n in [2048, 4096, 8192, 16384] {
            let s = speedup(n, 16, &cfg);
            assert!(
                (1.3..=2.3).contains(&s),
                "speedup {s:.2} out of band at n={n}"
            );
        }
    }

    #[test]
    fn speedup_grows_with_size() {
        let cfg = a100();
        assert!(speedup(16384, 16, &cfg) >= speedup(2048, 16, &cfg));
    }
}
