//! Trace-driven 2-D transpose simulation (Table V).
//!
//! The warp sweep — coalesced/strided global halves plus the staged
//! variant's bank passes — lives in
//! [`gpu_sim::trace::TransposeSweeps`], shared with the `lego-tune`
//! oracle; this driver scores it against the *generated* staging layout
//! (swizzled — conflict-free — in the LEGO version, per the kernel).

use gpu_sim::trace::{TraceBuilder, TransposeSweeps};
use gpu_sim::{score, Estimate, GpuConfig};
use lego_codegen::cuda::transpose::{generate, TransposeVariant};
use lego_core::Layout;

/// Fraction of streaming bandwidth a transpose-pattern kernel achieves:
/// alternating read/write streams to distinct regions pay DRAM
/// turnaround and TLB costs that a pure copy does not (calibrated to the
/// CUDA-SDK transpose measurements the paper reports in Table V).
const TRANSPOSE_BW_DERATE: f64 = 0.45;

/// Result of one transpose configuration.
#[derive(Clone, Copy, Debug)]
pub struct TransposeResult {
    /// Effective throughput in GB/s (useful bytes / time).
    pub gbps: f64,
    /// DRAM bytes moved (with overfetch).
    pub dram_bytes: f64,
}

/// Scores one transpose configuration through the shared trace builder,
/// returning the raw `gpu-sim` estimate (no bandwidth derate applied).
pub fn estimate(n: i64, t: i64, variant: TransposeVariant, cfg: &GpuConfig) -> Estimate {
    let staged = variant == TransposeVariant::SmemCoalesced;
    let layout = if staged {
        let k = generate(variant, t).expect("transpose kernels");
        k.smem_layout.expect("smem variant")
    } else {
        // The unstaged kernel has no staging tile; the layout is unused
        // by the trace.
        Layout::identity([t, t]).expect("identity")
    };
    let workload = TransposeSweeps {
        n,
        t,
        staged,
        index_flops: 0.0,
    }
    .build(cfg);
    score(&layout, &workload, cfg)
}

/// Simulates an `n×n` fp32 transpose with `t×t` tiles.
pub fn simulate(n: i64, t: i64, variant: TransposeVariant, cfg: &GpuConfig) -> TransposeResult {
    let e = estimate(n, t, variant, cfg);
    TransposeResult {
        gbps: e.gbps() * TRANSPOSE_BW_DERATE,
        dram_bytes: e.dram_bytes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::a100;

    #[test]
    fn smem_beats_naive_by_3x_or_more() {
        let cfg = a100();
        for n in [2048, 4096, 8192] {
            let naive = simulate(n, 32, TransposeVariant::Naive, &cfg);
            let smem = simulate(n, 32, TransposeVariant::SmemCoalesced, &cfg);
            let ratio = smem.gbps / naive.gbps;
            assert!(
                (2.5..6.0).contains(&ratio),
                "n={n}: ratio {ratio} (naive {} smem {})",
                naive.gbps,
                smem.gbps
            );
        }
    }

    #[test]
    fn naive_writes_dominate_traffic() {
        let cfg = a100();
        let r = simulate(2048, 32, TransposeVariant::Naive, &cfg);
        // Write amplification 8x on the write half: total 4.5x useful.
        let useful = 2.0 * (2048.0f64 * 2048.0 * 4.0);
        assert!(r.dram_bytes / useful > 4.0);
    }

    #[test]
    fn smem_reaches_streaming_bandwidth_range() {
        let cfg = a100();
        let r = simulate(8192, 32, TransposeVariant::SmemCoalesced, &cfg);
        // Table V band: several hundred GB/s.
        assert!(r.gbps > 400.0 && r.gbps < 1200.0, "{}", r.gbps);
    }
}
