//! Trace-driven 2-D transpose simulation (Table V).
//!
//! Every warp's global read and write addresses are coalesced; the smem
//! variant additionally pays bank passes for the staging tile (swizzled
//! — conflict-free — in the LEGO version, per the generated kernel).

use gpu_sim::{
    achieved_bandwidth, bank_conflicts_elems, coalesce_elems, GpuConfig, KernelProfile, Pipeline,
};
use lego_codegen::cuda::transpose::{generate, TransposeVariant};

/// Fraction of streaming bandwidth a transpose-pattern kernel achieves:
/// alternating read/write streams to distinct regions pay DRAM
/// turnaround and TLB costs that a pure copy does not (calibrated to the
/// CUDA-SDK transpose measurements the paper reports in Table V).
const TRANSPOSE_BW_DERATE: f64 = 0.45;

/// Result of one transpose configuration.
#[derive(Clone, Copy, Debug)]
pub struct TransposeResult {
    /// Effective throughput in GB/s (useful bytes / time).
    pub gbps: f64,
    /// DRAM bytes moved (with overfetch).
    pub dram_bytes: f64,
}

/// Simulates an `n×n` fp32 transpose with `t×t` tiles.
pub fn simulate(n: i64, t: i64, variant: TransposeVariant, cfg: &GpuConfig) -> TransposeResult {
    let k = generate(variant, t).expect("transpose kernels");
    let mut moved = 0f64;
    let mut smem_passes = 0f64;

    // One representative tile per distinct address pattern is enough —
    // every tile has identical coalescing. Trace one tile and scale.
    let tiles = (n / t) * (n / t);
    let warps_per_tile = (t * t / 32) as f64;

    match variant {
        TransposeVariant::Naive => {
            // Warp lanes run along j: read row-major (i, j..j+32),
            // write (j..j+32, i) i.e. stride-n elements.
            let read_idx: Vec<i64> = (0..32).collect();
            let write_idx: Vec<i64> = (0..32).map(|l| l * n).collect();
            let r = coalesce_elems(&read_idx, 4, 0, cfg.sector_bytes);
            let w = coalesce_elems(&write_idx, 4, 0, cfg.sector_bytes);
            moved += (r.moved_bytes + w.moved_bytes) as f64 * warps_per_tile * tiles as f64;
        }
        TransposeVariant::SmemCoalesced => {
            // Both global accesses row-contiguous.
            let idx: Vec<i64> = (0..32).collect();
            let g = coalesce_elems(&idx, 4, 0, cfg.sector_bytes);
            moved += 2.0 * g.moved_bytes as f64 * warps_per_tile * tiles as f64;
            // Shared staging: store (ty, tx) then load (tx, ty) through
            // the generated (swizzled) layout.
            let smem = k.smem_layout.as_ref().expect("smem variant");
            for ty in 0..t.min(32) {
                let store: Vec<i64> = (0..32)
                    .map(|tx| smem.apply_c(&[ty, tx]).expect("in tile"))
                    .collect();
                let load: Vec<i64> = (0..32)
                    .map(|tx| smem.apply_c(&[tx, ty]).expect("in tile"))
                    .collect();
                smem_passes += (bank_conflicts_elems(&store, 32).passes
                    + bank_conflicts_elems(&load, 32).passes) as f64;
            }
            smem_passes *= tiles as f64;
        }
    }

    let useful = 2.0 * (n * n * 4) as f64;
    let profile = KernelProfile {
        flops: 0.0,
        dram_bytes: moved,
        l2_bytes: moved,
        smem_passes,
        blocks: tiles as f64,
        launches: 1.0,
    };
    let gbps = achieved_bandwidth(useful, &profile, cfg) / 1e9 * TRANSPOSE_BW_DERATE;
    let _ = Pipeline::Fp32;
    TransposeResult {
        gbps,
        dram_bytes: moved,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::a100;

    #[test]
    fn smem_beats_naive_by_3x_or_more() {
        let cfg = a100();
        for n in [2048, 4096, 8192] {
            let naive = simulate(n, 32, TransposeVariant::Naive, &cfg);
            let smem = simulate(n, 32, TransposeVariant::SmemCoalesced, &cfg);
            let ratio = smem.gbps / naive.gbps;
            assert!(
                (2.5..6.0).contains(&ratio),
                "n={n}: ratio {ratio} (naive {} smem {})",
                naive.gbps,
                smem.gbps
            );
        }
    }

    #[test]
    fn naive_writes_dominate_traffic() {
        let cfg = a100();
        let r = simulate(2048, 32, TransposeVariant::Naive, &cfg);
        // Write amplification 8x on the write half: total 4.5x useful.
        let useful = 2.0 * (2048.0f64 * 2048.0 * 4.0);
        assert!(r.dram_bytes / useful > 4.0);
    }

    #[test]
    fn smem_reaches_streaming_bandwidth_range() {
        let cfg = a100();
        let r = simulate(8192, 32, TransposeVariant::SmemCoalesced, &cfg);
        // Table V band: several hundred GB/s.
        assert!(r.gbps > 400.0 && r.gbps < 1200.0, "{}", r.gbps);
    }
}
