//! LU decomposition simulation (Fig. 12b / Fig. 13a).
//!
//! The Rodinia LUD factorizes an `n×n` matrix in `bs×bs` block steps:
//! per step a diagonal, a perimeter, and an internal kernel run. The
//! internal kernel dominates: every interior block re-reads its
//! perimeter row and column. Thread coarsening (LEGO's layout view of
//! it) enlarges the LUD block (`bs = r·16`), which divides both the
//! number of steps (launches) and the total perimeter traffic by `r` —
//! the arithmetic-intensity shift visible on the paper's roofline.

use gpu_sim::{estimate, GpuConfig, KernelProfile, Pipeline};

/// Result for one LUD configuration.
#[derive(Clone, Copy, Debug)]
pub struct LudResult {
    /// Estimated runtime in seconds.
    pub time_s: f64,
    /// Achieved GFLOP/s.
    pub gflops: f64,
    /// Arithmetic intensity (FLOP / DRAM byte).
    pub intensity: f64,
    /// DRAM bytes moved.
    pub dram_bytes: f64,
}

/// Simulates LUD with LUD-block side `bs` (the CUDA block stays 16×16;
/// coarsening factor is `bs/16`).
pub fn simulate(n: i64, bs: i64, cfg: &GpuConfig) -> LudResult {
    assert!(n % bs == 0, "block must divide matrix");
    let steps = n / bs;
    let mut dram = 0f64;
    let mut flops = 0f64;
    let mut launches = 0f64;
    let mut blocks = 0f64;
    for d in 0..steps {
        let rem = (steps - d - 1) as f64; // interior blocks per side
                                          // Diagonal kernel: one bs x bs block.
        dram += (bs * bs * 4) as f64 * 2.0;
        flops += 2.0 / 3.0 * (bs as f64).powi(3);
        // Perimeter kernel: 2*rem blocks, each reads the diagonal block
        // and updates its own.
        dram += rem * 2.0 * (bs * bs * 4) as f64 * 2.0;
        flops += rem * 2.0 * (bs as f64).powi(3);
        // Internal kernel: rem^2 blocks; each reads its tile + the
        // perimeter row tile + the perimeter column tile and writes back.
        dram += rem * rem * (bs * bs * 4) as f64 * 4.0;
        flops += rem * rem * 2.0 * (bs as f64).powi(3);
        launches += 3.0;
        blocks += 1.0 + 2.0 * rem + rem * rem;
    }
    let profile = KernelProfile {
        flops,
        dram_bytes: dram,
        l2_bytes: dram * 1.5,
        smem_passes: 0.0,
        blocks,
        launches,
    };
    let t = estimate(&profile, Pipeline::Fp32, cfg);
    LudResult {
        time_s: t.total_s,
        gflops: flops / t.total_s / 1e9,
        intensity: profile.arithmetic_intensity(),
        dram_bytes: dram,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::a100;

    #[test]
    fn coarsening_raises_intensity() {
        let cfg = a100();
        let base = simulate(2048, 16, &cfg);
        let coarse = simulate(2048, 64, &cfg);
        // AI scales ~ bs/6: 16 -> ~2.7, 64 -> ~10.7.
        assert!(coarse.intensity > 3.0 * base.intensity);
    }

    #[test]
    fn coarsening_speeds_up() {
        let cfg = a100();
        for n in [1024, 2048, 4096, 8192] {
            let base = simulate(n, 16, &cfg);
            let coarse = simulate(n, 64, &cfg);
            assert!(
                coarse.time_s < base.time_s,
                "no speedup at n={n}: {} vs {}",
                coarse.time_s,
                base.time_s
            );
        }
    }

    #[test]
    fn intensity_matches_bs_over_six() {
        let cfg = a100();
        let r = simulate(4096, 64, &cfg);
        // flops/bytes ~ (2/3 bs^3) / (4*4*bs^2) = bs/24 per-tile… the
        // aggregate model lands near bs/12; just pin the scaling law:
        let r2 = simulate(4096, 16, &cfg);
        let ratio = r.intensity / r2.intensity;
        assert!((3.0..5.0).contains(&ratio), "AI ratio {ratio}");
    }

    #[test]
    fn flops_are_two_thirds_n_cubed() {
        let cfg = a100();
        let n = 2048i64;
        let r = simulate(n, 16, &cfg);
        let want = 2.0 / 3.0 * (n as f64).powi(3);
        let got = r.gflops * 1e9 * r.time_s;
        assert!((got / want - 1.0).abs() < 0.1, "flops {got} vs {want}");
    }
}
