//! LU decomposition simulation (Fig. 12b / Fig. 13a).
//!
//! The Rodinia LUD factorizes an `n×n` matrix in `bs×bs` block steps:
//! per step a diagonal, a perimeter, and an internal kernel run. The
//! internal kernel dominates: every interior block re-reads its
//! perimeter row and column. Thread coarsening (LEGO's layout view of
//! it) enlarges the LUD block (`bs = r·16`), which divides both the
//! number of steps (launches) and the total perimeter traffic by `r` —
//! the arithmetic-intensity shift visible on the paper's roofline. The
//! panel walk lives in [`gpu_sim::trace::LudPanels`], shared with the
//! `lego-tune` oracle, and is priced by `gpu_sim`'s `CostModel` under
//! the workload's `PricingMode::AdditiveLaunch` — the dependent
//! diagonal/perimeter/internal kernels cannot overlap compute with
//! panel traffic, so the bottleneck terms add.

use gpu_sim::trace::{LudPanels, TraceBuilder};
use gpu_sim::{score, Estimate, GpuConfig};
use lego_core::Layout;

/// Result for one LUD configuration.
#[derive(Clone, Copy, Debug)]
pub struct LudResult {
    /// Estimated runtime in seconds.
    pub time_s: f64,
    /// Achieved GFLOP/s.
    pub gflops: f64,
    /// Arithmetic intensity (FLOP / DRAM byte).
    pub intensity: f64,
    /// DRAM bytes moved.
    pub dram_bytes: f64,
}

/// Scores one LUD configuration through the shared trace builder,
/// returning the raw `gpu-sim` estimate.
pub fn estimate(n: i64, bs: i64, cfg: &GpuConfig) -> Estimate {
    assert!(n % bs == 0, "block must divide matrix");
    let workload = LudPanels {
        n,
        bs,
        t: 16,
        index_flops: 0.0,
    }
    .build(cfg);
    // The panel trace is pre-aggregated; the layout is unused.
    let layout = Layout::identity([bs, bs]).expect("identity");
    score(&layout, &workload, cfg)
}

/// Simulates LUD with LUD-block side `bs` (the CUDA block stays 16×16;
/// coarsening factor is `bs/16`).
pub fn simulate(n: i64, bs: i64, cfg: &GpuConfig) -> LudResult {
    let e = estimate(n, bs, cfg);
    LudResult {
        time_s: e.time_s,
        gflops: e.flops / e.time_s / 1e9,
        intensity: e.flops / e.dram_bytes,
        dram_bytes: e.dram_bytes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::a100;

    #[test]
    fn coarsening_raises_intensity() {
        let cfg = a100();
        let base = simulate(2048, 16, &cfg);
        let coarse = simulate(2048, 64, &cfg);
        // AI scales ~ bs/6: 16 -> ~2.7, 64 -> ~10.7.
        assert!(coarse.intensity > 3.0 * base.intensity);
    }

    #[test]
    fn coarsening_speeds_up() {
        let cfg = a100();
        for n in [1024, 2048, 4096, 8192] {
            let base = simulate(n, 16, &cfg);
            let coarse = simulate(n, 64, &cfg);
            assert!(
                coarse.time_s < base.time_s,
                "no speedup at n={n}: {} vs {}",
                coarse.time_s,
                base.time_s
            );
        }
    }

    #[test]
    fn intensity_matches_bs_over_six() {
        let cfg = a100();
        let r = simulate(4096, 64, &cfg);
        // flops/bytes ~ (2/3 bs^3) / (4*4*bs^2) = bs/24 per-tile… the
        // aggregate model lands near bs/12; just pin the scaling law:
        let r2 = simulate(4096, 16, &cfg);
        let ratio = r.intensity / r2.intensity;
        assert!((3.0..5.0).contains(&ratio), "AI ratio {ratio}");
    }

    #[test]
    fn flops_are_two_thirds_n_cubed() {
        let cfg = a100();
        let n = 2048i64;
        let r = simulate(n, 16, &cfg);
        let want = 2.0 / 3.0 * (n as f64).powi(3);
        let got = r.gflops * 1e9 * r.time_s;
        assert!((got / want - 1.0).abs() < 0.1, "flops {got} vs {want}");
    }
}
