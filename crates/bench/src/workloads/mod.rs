//! Workload drivers: each module turns LEGO layouts into address traces
//! and feeds them to the `gpu-sim` model, one driver per paper
//! experiment family.

pub mod lud;
pub mod matmul;
pub mod nw;
pub mod rowwise;
pub mod stencil;
pub mod transpose;
