//! Bandwidth-bound row-wise Triton benchmarks for Fig. 11: LayerNorm
//! forward/backward, softmax, and the grouped-GEMM wrapper.
//!
//! These kernels stream their operands; their runtime is traffic over
//! bandwidth plus per-launch overhead. The LEGO and Triton versions
//! generate identical indexing (verified in `lego-codegen` tests), so
//! they differ only where the paper reports a codegen artifact: Triton's
//! LayerNorm-forward loop with an explicit step compiles to ~10% more
//! dynamic instructions (§V-A), modeled as a compute-side tax. The
//! PyTorch baselines run the operation as multiple passes (uncoalesced
//! fusion), modeled as extra traffic.

use gpu_sim::trace::{RowwiseSweep, TraceBuilder};
use gpu_sim::{estimate, Estimate, GpuConfig, KernelProfile, Pipeline};
use lego_codegen::tuning::RowwiseOp;
use lego_core::Layout;

use crate::workloads::matmul::{simulate as simulate_matmul, Schedule};

/// Implementations compared in Fig. 11.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Impl {
    /// LEGO-generated kernel.
    Lego,
    /// Reference Triton kernel.
    Triton,
    /// PyTorch (dispatching to cuBLAS / eager kernels).
    PyTorch,
}

/// The non-matmul benchmarks of Fig. 11.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum RowwiseBench {
    /// LayerNorm forward.
    LayernormFwd,
    /// LayerNorm backward (dx).
    LayernormBwd,
    /// Row softmax.
    Softmax,
}

impl RowwiseBench {
    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            RowwiseBench::LayernormFwd => "LayerNorm FWD",
            RowwiseBench::LayernormBwd => "LayerNorm BWD",
            RowwiseBench::Softmax => "Softmax",
        }
    }

    /// The tuner-side operator this benchmark corresponds to — and the
    /// single home of the per-op traffic/flop calibration constants.
    pub fn op(self) -> RowwiseOp {
        match self {
            RowwiseBench::LayernormFwd => RowwiseOp::LayernormFwd,
            RowwiseBench::LayernormBwd => RowwiseOp::LayernormBwd,
            RowwiseBench::Softmax => RowwiseOp::Softmax,
        }
    }

    /// Bytes moved per element pass (reads + writes per fp16 element),
    /// per implementation.
    fn traffic_factor(self, im: Impl) -> f64 {
        let base = self.op().traffic_passes();
        match im {
            Impl::Lego | Impl::Triton => base,
            // Eager multi-kernel execution re-reads intermediates.
            Impl::PyTorch => base * 1.35,
        }
    }

    /// Estimated runtime for an `m×n` fp16 problem.
    pub fn time_s(self, m: i64, n: i64, im: Impl, cfg: &GpuConfig) -> f64 {
        let elems = (m * n) as f64;
        let bytes = elems * 2.0 * self.traffic_factor(im);
        let mut flops = elems * self.op().flops_per_elem();
        // §V-A: Triton's codegen handles the explicit-step loop of the
        // reference LayerNorm-fwd less efficiently.
        if self == RowwiseBench::LayernormFwd && im == Impl::Triton {
            flops *= 1.35;
        }
        let launches = match im {
            Impl::PyTorch => 3.0,
            _ => 1.0,
        };
        let profile = KernelProfile {
            flops,
            dram_bytes: bytes,
            l2_bytes: bytes,
            smem_passes: 0.0,
            blocks: m as f64,
            launches,
            ..Default::default()
        };
        estimate(&profile, Pipeline::Fp32, cfg).total_s
    }

    /// Effective throughput in GB/s of useful traffic.
    pub fn gbps(self, m: i64, n: i64, im: Impl, cfg: &GpuConfig) -> f64 {
        let useful = (m * n) as f64 * 2.0 * self.traffic_factor(Impl::Lego);
        useful / self.time_s(m, n, im, cfg) / 1e9
    }

    /// Scores one block-size configuration through the shared trace
    /// builder and cost model, returning the raw `gpu-sim` estimate —
    /// bit-identical to the `lego-tune` oracle's estimate for the same
    /// `(op, m, n, bs)` on the same device.
    pub fn estimate(self, m: i64, n: i64, bs: i64, cfg: &GpuConfig) -> Estimate {
        let op = self.op();
        let workload = RowwiseSweep {
            op_name: op.tag().to_string(),
            m,
            n,
            bs,
            passes: op.traffic_passes(),
            flops_per_elem: op.flops_per_elem(),
            index_flops: 0.0,
        }
        .build(cfg);
        // The lane-block layout of the generated kernels: unit stride.
        let layout = Layout::identity([bs]).expect("identity");
        gpu_sim::score(&layout, &workload, cfg)
    }
}

/// Grouped GEMM modeled as `g` back-to-back GEMMs sharing one launch for
/// the fused implementations.
pub fn grouped_gemm_time_s(g: i64, n: i64, im: Impl, cfg: &GpuConfig) -> f64 {
    // Small problems underutilize the device identically for every
    // implementation (wave quantization); what differs is dispatch: the
    // fused kernel walks all problems in one launch, the eager path
    // launches per problem.
    let per = simulate_matmul(n, (64, 64, 64), Schedule::RowMajor, cfg).time_s
        - 2.0 * cfg.launch_overhead;
    let launches = match im {
        // One persistent kernel walks all problems.
        Impl::Lego | Impl::Triton => 1.0,
        // One cuBLAS call per problem.
        Impl::PyTorch => g as f64,
    };
    g as f64 * per + launches * cfg.launch_overhead
}

/// TFLOP/s for the grouped GEMM.
pub fn grouped_gemm_tflops(g: i64, n: i64, im: Impl, cfg: &GpuConfig) -> f64 {
    let flops = g as f64 * 2.0 * (n as f64).powi(3);
    flops / grouped_gemm_time_s(g, n, im, cfg) / 1e12
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::a100;

    #[test]
    fn lego_beats_triton_on_layernorm_fwd_only() {
        let cfg = a100();
        let b = RowwiseBench::LayernormFwd;
        assert!(b.time_s(4096, 4096, Impl::Lego, &cfg) <= b.time_s(4096, 4096, Impl::Triton, &cfg));
        let s = RowwiseBench::Softmax;
        let l = s.time_s(4096, 4096, Impl::Lego, &cfg);
        let t = s.time_s(4096, 4096, Impl::Triton, &cfg);
        assert!((l - t).abs() / t < 1e-9, "softmax should tie");
    }

    #[test]
    fn fused_kernels_beat_pytorch() {
        let cfg = a100();
        for b in [
            RowwiseBench::LayernormFwd,
            RowwiseBench::LayernormBwd,
            RowwiseBench::Softmax,
        ] {
            assert!(
                b.time_s(4096, 4096, Impl::Lego, &cfg) < b.time_s(4096, 4096, Impl::PyTorch, &cfg),
                "{}",
                b.name()
            );
        }
    }

    #[test]
    fn grouped_gemm_fusion_helps_small_problems() {
        let cfg = a100();
        // Many small GEMMs: launch overhead dominates the per-call path.
        let lego = grouped_gemm_tflops(64, 512, Impl::Lego, &cfg);
        let torch = grouped_gemm_tflops(64, 512, Impl::PyTorch, &cfg);
        assert!(lego > torch, "lego {lego} vs torch {torch}");
    }

    #[test]
    fn softmax_is_bandwidth_bound() {
        let cfg = a100();
        let g = RowwiseBench::Softmax.gbps(8192, 8192, Impl::Lego, &cfg);
        // Within streaming-bandwidth territory.
        assert!(g > 500.0 && g < 2200.0, "{g}");
    }
}
