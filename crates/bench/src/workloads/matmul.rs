//! Tile-level matmul simulation (Fig. 11).
//!
//! Simulates the wave-by-wave execution of a tiled FP16 GEMM on the
//! A100 model: thread blocks are issued `sm_count` at a time in `pid`
//! order; each block walks the K loop touching its `A` and `B` tiles,
//! filtered through a tile-granular L2. The *thread-block layout* decides
//! which `(pid_m, pid_n)` a `pid` gets — the grouped column-major layout
//! of Fig. 1 vs. plain row-major — and therefore how much reuse a wave
//! finds in L2. Compute time is wave-quantized tensor-core time.

use gpu_sim::{estimate, GpuConfig, KernelProfile, Pipeline, TileCache};
use lego_core::{sugar, Layout, OrderBy};
use lego_expr::Expr;

/// How program ids map to tile coordinates.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Schedule {
    /// LEGO / Triton grouped column-major layout with group size `GM`.
    Grouped {
        /// The `GM` group size of Fig. 1.
        gm: i64,
    },
    /// Plain row-major pid mapping (the ablation baseline).
    RowMajor,
    /// Vendor-library model: ideal scheduling, no wave quantization,
    /// lower launch overhead (cuBLAS dispatch).
    Vendor,
}

/// Result of one simulated GEMM.
#[derive(Clone, Copy, Debug)]
pub struct MatmulResult {
    /// Estimated runtime in seconds.
    pub time_s: f64,
    /// Achieved TFLOP/s.
    pub tflops: f64,
    /// L2 hit rate of tile accesses.
    pub l2_hit_rate: f64,
    /// DRAM bytes moved.
    pub dram_bytes: f64,
}

/// Builds the concrete grouped thread layout for `nt_m × nt_n` tiles.
fn grouped_layout(nt_m: i64, nt_n: i64, gm: i64) -> Layout {
    let g = gm.min(nt_m);
    let gmax = (nt_m / gm).max(1);
    sugar::tile_by([vec![Expr::val(nt_m), Expr::val(nt_n)]])
        .expect("tile_by")
        .order_by(
            OrderBy::new([
                sugar::col([gmax, 1]).expect("col"),
                sugar::col([g, nt_n]).expect("col"),
            ])
            .expect("order_by"),
        )
        .build()
        .expect("layout")
}

/// Simulates `C = A·B` for square `n`, FP16, `BM×BN×BK` tiles.
pub fn simulate(
    n: i64,
    (bm, bn, bk): (i64, i64, i64),
    schedule: Schedule,
    cfg: &GpuConfig,
) -> MatmulResult {
    let elem = 2i64; // fp16
    let (nt_m, nt_n) = (n / bm, n / bn);
    let ksteps = n / bk;
    let nblocks = nt_m * nt_n;
    let flops = 2.0 * (n as f64).powi(3);

    // pid -> (pid_m, pid_n)
    let layout = match schedule {
        Schedule::Grouped { gm } => Some(grouped_layout(nt_m, nt_n, gm)),
        Schedule::RowMajor | Schedule::Vendor => None,
    };
    let pid_of = |pid: i64| -> (i64, i64) {
        match &layout {
            Some(l) => {
                let v = l.inv_c(pid).expect("pid in range");
                (v[0], v[1])
            }
            None => (pid / nt_n, pid % nt_n),
        }
    };

    let a_tile_bytes = (bm * bk * elem) as usize;
    let b_tile_bytes = (bk * bn * elem) as usize;
    let mut l2 = TileCache::new(cfg.l2_bytes);
    let mut l2_bytes = 0f64;

    let wave = cfg.sm_count as i64;
    let mut pid0 = 0i64;
    while pid0 < nblocks {
        let pids: Vec<(i64, i64)> = (pid0..(pid0 + wave).min(nblocks)).map(pid_of).collect();
        for kk in 0..ksteps {
            for &(pm, pn) in &pids {
                // Tile ids: disjoint namespaces for A and B.
                let a_id = (pm * ksteps + kk) << 1;
                let b_id = ((kk * nt_n + pn) << 1) | 1;
                l2.touch(a_id, a_tile_bytes);
                l2.touch(b_id, b_tile_bytes);
                l2_bytes += (a_tile_bytes + b_tile_bytes) as f64;
            }
        }
        pid0 += wave;
    }
    // C writeback goes straight to DRAM.
    let c_bytes = (n * n * elem) as f64;
    let dram_bytes = l2.miss_bytes() as f64 + c_bytes;

    let profile = KernelProfile {
        flops,
        dram_bytes,
        l2_bytes: l2_bytes + c_bytes,
        smem_passes: 0.0,
        blocks: nblocks as f64,
        launches: 1.0,
    };
    let t = estimate(&profile, Pipeline::TensorFp16, cfg);

    // Wave quantization: the last partial wave still takes a full wave's
    // compute time. Vendor libraries pick tile shapes that avoid it and
    // have lower dispatch overhead.
    let flops_per_block = flops / nblocks as f64;
    let per_sm = cfg.fp16_tc_flops / cfg.sm_count as f64;
    let wave_time = flops_per_block / per_sm;
    let (compute_s, overhead_s) = match schedule {
        Schedule::Vendor => (flops / cfg.fp16_tc_flops, cfg.launch_overhead),
        _ => {
            let waves = (nblocks as f64 / cfg.sm_count as f64).ceil();
            (waves * wave_time, 2.0 * cfg.launch_overhead)
        }
    };
    let total = compute_s.max(t.dram_s).max(t.l2_s) + overhead_s;

    MatmulResult {
        time_s: total,
        tflops: flops / total / 1e12,
        l2_hit_rate: l2.hit_rate(),
        dram_bytes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::a100;

    const TILES: (i64, i64, i64) = (128, 128, 64);

    #[test]
    fn grouped_layout_matches_reference_mapping() {
        // Cross-check against the reference formula from the Triton
        // tutorial (same as codegen's test, concrete path).
        let (nt_m, nt_n, gm) = (16i64, 16i64, 8i64);
        let l = grouped_layout(nt_m, nt_n, gm);
        for pid in 0..nt_m * nt_n {
            let v = l.inv_c(pid).unwrap();
            let npg = gm * nt_n;
            let want_m = (pid / npg) * gm + (pid % npg) % gm;
            let want_n = (pid % npg) / gm;
            assert_eq!((v[0], v[1]), (want_m, want_n), "pid {pid}");
        }
    }

    #[test]
    fn grouping_improves_l2_hit_rate_when_b_exceeds_l2() {
        // At 8192 the B matrix (128 MiB) no longer fits in L2, which is
        // when the grouped layout's 2-D wave footprint pays off; at 4096
        // B fits entirely and plain streaming is already optimal.
        let cfg = a100();
        let grouped = simulate(8192, TILES, Schedule::Grouped { gm: 8 }, &cfg);
        let plain = simulate(8192, TILES, Schedule::RowMajor, &cfg);
        assert!(
            grouped.l2_hit_rate > plain.l2_hit_rate,
            "grouped {} <= plain {}",
            grouped.l2_hit_rate,
            plain.l2_hit_rate
        );
        assert!(grouped.dram_bytes < plain.dram_bytes);
    }

    #[test]
    fn vendor_wins_small_sizes() {
        let cfg = a100();
        let lego = simulate(2048, TILES, Schedule::Grouped { gm: 8 }, &cfg);
        let vendor = simulate(2048, TILES, Schedule::Vendor, &cfg);
        assert!(vendor.tflops > lego.tflops);
    }

    #[test]
    fn gap_closes_at_large_sizes() {
        let cfg = a100();
        let small_ratio = {
            let l = simulate(2048, TILES, Schedule::Grouped { gm: 8 }, &cfg);
            let v = simulate(2048, TILES, Schedule::Vendor, &cfg);
            l.tflops / v.tflops
        };
        let large_ratio = {
            let l = simulate(8192, TILES, Schedule::Grouped { gm: 8 }, &cfg);
            let v = simulate(8192, TILES, Schedule::Vendor, &cfg);
            l.tflops / v.tflops
        };
        assert!(
            large_ratio > small_ratio,
            "no convergence: small {small_ratio}, large {large_ratio}"
        );
        assert!(large_ratio > 0.9, "large sizes should be near parity");
    }

    #[test]
    fn tensor_core_utilization_grows() {
        let cfg = a100();
        let r1 = simulate(2048, TILES, Schedule::Grouped { gm: 8 }, &cfg);
        let r2 = simulate(8192, TILES, Schedule::Grouped { gm: 8 }, &cfg);
        assert!(r2.tflops > r1.tflops);
        assert!(r2.tflops < cfg.fp16_tc_flops / 1e12);
    }
}
