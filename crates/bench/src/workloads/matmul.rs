//! Tile-level matmul simulation (Fig. 11).
//!
//! Simulates the wave-by-wave execution of a tiled FP16 GEMM on the
//! A100 model. The trace itself — thread blocks issued `sm_count` at a
//! time in `pid` order, each block walking the K loop touching its `A`
//! and `B` tiles through a tile-granular L2 — lives in
//! [`gpu_sim::trace::MatmulWaves`], shared with the `lego-tune` oracle.
//! The *thread-block layout* decides which `(pid_m, pid_n)` a `pid`
//! gets — the grouped column-major layout of Fig. 1 vs. plain
//! row-major — and therefore how much reuse a wave finds in L2.

use gpu_sim::trace::{MatmulWaves, TraceBuilder};
use gpu_sim::{score, Estimate, GpuConfig};
use lego_core::{sugar, Layout, OrderBy};
use lego_expr::Expr;

/// How program ids map to tile coordinates.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Schedule {
    /// LEGO / Triton grouped column-major layout with group size `GM`.
    Grouped {
        /// The `GM` group size of Fig. 1.
        gm: i64,
    },
    /// Plain row-major pid mapping (the ablation baseline).
    RowMajor,
    /// Vendor-library model: ideal scheduling, no wave quantization,
    /// lower launch overhead (cuBLAS dispatch).
    Vendor,
}

/// Result of one simulated GEMM.
#[derive(Clone, Copy, Debug)]
pub struct MatmulResult {
    /// Estimated runtime in seconds.
    pub time_s: f64,
    /// Achieved TFLOP/s.
    pub tflops: f64,
    /// L2 hit rate of tile accesses.
    pub l2_hit_rate: f64,
    /// DRAM bytes moved.
    pub dram_bytes: f64,
}

/// Builds the concrete grouped thread layout for `nt_m × nt_n` tiles.
fn grouped_layout(nt_m: i64, nt_n: i64, gm: i64) -> Layout {
    let g = gm.min(nt_m);
    let gmax = (nt_m / gm).max(1);
    sugar::tile_by([vec![Expr::val(nt_m), Expr::val(nt_n)]])
        .expect("tile_by")
        .order_by(
            OrderBy::new([
                sugar::col([gmax, 1]).expect("col"),
                sugar::col([g, nt_n]).expect("col"),
            ])
            .expect("order_by"),
        )
        .build()
        .expect("layout")
}

/// Scores one GEMM configuration through the shared trace builder,
/// returning the raw `gpu-sim` estimate.
pub fn estimate(
    n: i64,
    (bm, bn, bk): (i64, i64, i64),
    schedule: Schedule,
    cfg: &GpuConfig,
) -> Estimate {
    let (nt_m, nt_n) = (n / bm, n / bn);
    // pid -> (pid_m, pid_n)
    let layout = match schedule {
        Schedule::Grouped { gm } => grouped_layout(nt_m, nt_n, gm),
        Schedule::RowMajor | Schedule::Vendor => Layout::identity([nt_m, nt_n]).expect("identity"),
    };
    let workload = MatmulWaves {
        vendor: matches!(schedule, Schedule::Vendor),
        ..MatmulWaves::with_tiles(n, (bm, bn, bk))
    }
    .build(cfg);
    score(&layout, &workload, cfg)
}

/// Simulates `C = A·B` for square `n`, FP16, `BM×BN×BK` tiles.
pub fn simulate(
    n: i64,
    tiles: (i64, i64, i64),
    schedule: Schedule,
    cfg: &GpuConfig,
) -> MatmulResult {
    let e = estimate(n, tiles, schedule, cfg);
    MatmulResult {
        time_s: e.time_s,
        tflops: e.tflops(),
        l2_hit_rate: e.l2_hit_rate,
        dram_bytes: e.dram_bytes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::a100;

    const TILES: (i64, i64, i64) = (128, 128, 64);

    #[test]
    fn grouped_layout_matches_reference_mapping() {
        // Cross-check against the reference formula from the Triton
        // tutorial (same as codegen's test, concrete path).
        let (nt_m, nt_n, gm) = (16i64, 16i64, 8i64);
        let l = grouped_layout(nt_m, nt_n, gm);
        for pid in 0..nt_m * nt_n {
            let v = l.inv_c(pid).unwrap();
            let npg = gm * nt_n;
            let want_m = (pid / npg) * gm + (pid % npg) % gm;
            let want_n = (pid % npg) / gm;
            assert_eq!((v[0], v[1]), (want_m, want_n), "pid {pid}");
        }
    }

    #[test]
    fn grouping_improves_l2_hit_rate_when_b_exceeds_l2() {
        // At 8192 the B matrix (128 MiB) no longer fits in L2, which is
        // when the grouped layout's 2-D wave footprint pays off; at 4096
        // B fits entirely and plain streaming is already optimal.
        let cfg = a100();
        let grouped = simulate(8192, TILES, Schedule::Grouped { gm: 8 }, &cfg);
        let plain = simulate(8192, TILES, Schedule::RowMajor, &cfg);
        assert!(
            grouped.l2_hit_rate > plain.l2_hit_rate,
            "grouped {} <= plain {}",
            grouped.l2_hit_rate,
            plain.l2_hit_rate
        );
        assert!(grouped.dram_bytes < plain.dram_bytes);
    }

    #[test]
    fn vendor_wins_small_sizes() {
        let cfg = a100();
        let lego = simulate(2048, TILES, Schedule::Grouped { gm: 8 }, &cfg);
        let vendor = simulate(2048, TILES, Schedule::Vendor, &cfg);
        assert!(vendor.tflops > lego.tflops);
    }

    #[test]
    fn gap_closes_at_large_sizes() {
        let cfg = a100();
        let small_ratio = {
            let l = simulate(2048, TILES, Schedule::Grouped { gm: 8 }, &cfg);
            let v = simulate(2048, TILES, Schedule::Vendor, &cfg);
            l.tflops / v.tflops
        };
        let large_ratio = {
            let l = simulate(8192, TILES, Schedule::Grouped { gm: 8 }, &cfg);
            let v = simulate(8192, TILES, Schedule::Vendor, &cfg);
            l.tflops / v.tflops
        };
        assert!(
            large_ratio > small_ratio,
            "no convergence: small {small_ratio}, large {large_ratio}"
        );
        assert!(large_ratio > 0.9, "large sizes should be near parity");
    }

    #[test]
    fn tensor_core_utilization_grows() {
        let cfg = a100();
        let r1 = simulate(2048, TILES, Schedule::Grouped { gm: 8 }, &cfg);
        let r2 = simulate(8192, TILES, Schedule::Grouped { gm: 8 }, &cfg);
        assert!(r2.tflops > r1.tflops);
        assert!(r2.tflops < cfg.fp16_tc_flops / 1e12);
    }
}
