//! Trace-driven 3-D stencil simulation (Fig. 12c / Fig. 13b).
//!
//! For every warp of every thread block the driver computes the 32
//! element addresses of each stencil tap through the *actual layout*
//! (row-major vs. brick), coalesces them into 32-byte sectors, and
//! filters the sector stream through a scaled L2 model.
//!
//! The mechanism is the one the paper names: bricks put "spatially
//! adjacent data related to a block of computation … physically
//! adjacent, eliminating unnecessary data movement over **strided**
//! data" (§V-B). The baseline array kernel's warps walk a strided
//! dimension of the row-major space (each lane in its own sector); with
//! the brick layout the same logical walk is unit-stride inside a brick.
//!
//! Scaling note (DESIGN.md §3): the paper's 512³ domains are simulated
//! at a smaller size with L2 capacity scaled by the same factor, so the
//! working-set-to-cache ratio that decides hit rates is preserved.

use gpu_sim::{coalesce_elems, estimate, Cache, GpuConfig, KernelProfile, Pipeline};
use lego_codegen::cuda::stencil::{generate, StencilBench, StencilShape};
use lego_core::Layout;

/// Result for one stencil configuration.
#[derive(Clone, Copy, Debug)]
pub struct StencilResult {
    /// Estimated runtime in seconds.
    pub time_s: f64,
    /// Achieved GFLOP/s.
    pub gflops: f64,
    /// DRAM bytes moved.
    pub dram_bytes: f64,
    /// L2↔SM bytes moved (sector traffic).
    pub l2_bytes: f64,
    /// Arithmetic intensity (FLOP / DRAM byte).
    pub intensity: f64,
}

/// Which logical order a warp's 32 lanes follow.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum LaneAxis {
    /// Lanes along `y` (stride `n` in row-major) — the strided walk of
    /// the baseline array kernel (§V-B: "data movement over strided
    /// data when a conventional row-major layout is used").
    Y,
    /// Lanes along `z` (unit stride in row-major).
    Z,
    /// Lanes along the tile-local `(y, z)` plane in row-major order —
    /// the brick-local thread order that the brick layout makes
    /// memory-contiguous by construction.
    YZ,
}

/// Scaled-L2 sector cache for the simulated domain (preserves the
/// paper's domain-to-L2 ratio 512³·4B : 40 MiB ≈ 12.8).
fn scaled_l2(n: i64, cfg: &GpuConfig) -> Cache {
    let domain_bytes = (n * n * n * 4) as f64;
    let scaled = (domain_bytes / 12.8) as usize;
    let lines = (scaled / cfg.sector_bytes).max(1024);
    Cache::new(lines, 16)
}

/// Simulates one stencil sweep over an `n³` domain with the given
/// layout, visiting points in `bx×by×bz` tiles with warps along
/// `lane_axis`.
pub fn sweep(
    layout: &Layout,
    shape: StencilShape,
    n: i64,
    block: (i64, i64, i64),
    lane_axis: LaneAxis,
    cfg: &GpuConfig,
) -> StencilResult {
    let offs = shape.offsets();
    let (bx, by, bz) = block;
    let mut l2 = scaled_l2(n, cfg);
    let mut l2_bytes = 0f64;
    let r = shape.radius();
    let clamp = |v: i64| v.clamp(r, n - 1 - r);

    let lanes = 32i64;
    for tx in 0..n / bx {
        for ty in 0..n / by {
            for tz in 0..n / bz {
                // Enumerate warps inside the tile.
                let (wi_max, wj_max, lane_max) = match lane_axis {
                    LaneAxis::Z => (bx, by, bz),
                    LaneAxis::Y => (bx, bz, by),
                    LaneAxis::YZ => (bx, 1, by * bz),
                };
                for wi in 0..wi_max {
                    for wj in 0..wj_max {
                        let mut l0 = 0i64;
                        while l0 < lane_max {
                            let nl = lanes.min(lane_max - l0);
                            for &(dx, dy, dz) in &offs {
                                let idx: Vec<i64> = (0..nl)
                                    .map(|lane| {
                                        let (x, y, z) = match lane_axis {
                                            LaneAxis::Z => {
                                                (tx * bx + wi, ty * by + wj, tz * bz + l0 + lane)
                                            }
                                            LaneAxis::Y => {
                                                (tx * bx + wi, ty * by + l0 + lane, tz * bz + wj)
                                            }
                                            LaneAxis::YZ => {
                                                let local = l0 + lane;
                                                (
                                                    tx * bx + wi,
                                                    ty * by + local / bz,
                                                    tz * bz + local % bz,
                                                )
                                            }
                                        };
                                        layout
                                            .apply_c(&[clamp(x + dx), clamp(y + dy), clamp(z + dz)])
                                            .expect("in bounds")
                                    })
                                    .collect();
                                let c = coalesce_elems(&idx, 4, 0, cfg.sector_bytes);
                                l2_bytes += c.moved_bytes as f64;
                                let mut sectors: Vec<i64> = idx
                                    .iter()
                                    .map(|&i| i * 4 / cfg.sector_bytes as i64)
                                    .collect();
                                sectors.sort_unstable();
                                sectors.dedup();
                                for s in sectors {
                                    l2.access(s);
                                }
                            }
                            l0 += lanes;
                        }
                    }
                }
            }
        }
    }

    let stats = l2.stats();
    let dram_bytes = stats.misses as f64 * cfg.sector_bytes as f64 + (n * n * n * 4) as f64;
    let flops = 2.0 * shape.points() as f64 * (n * n * n) as f64;
    let profile = KernelProfile {
        flops,
        dram_bytes,
        l2_bytes,
        smem_passes: 0.0,
        blocks: ((n / bx) * (n / by) * (n / bz)) as f64,
        launches: 1.0,
    };
    let t = estimate(&profile, Pipeline::Fp32, cfg);
    StencilResult {
        time_s: t.total_s,
        gflops: flops / t.total_s / 1e9,
        dram_bytes,
        l2_bytes,
        intensity: profile.arithmetic_intensity(),
    }
}

/// Runs one shape with both layouts and returns
/// `(row_major, brick, speedup)`.
pub fn compare(
    shape: StencilShape,
    n: i64,
    b: i64,
    cfg: &GpuConfig,
) -> (StencilResult, StencilResult, f64) {
    let bench: StencilBench = generate(shape, n, b).expect("stencil layouts");
    // Baseline array kernel: 3-D tiles whose warps end up walking the
    // strided y dimension of the row-major space.
    let rm = sweep(&bench.row_major, shape, n, (4, 32, 4), LaneAxis::Y, cfg);
    // Brick kernel: one block per brick, threads in brick-local order —
    // which the brick layout makes memory-contiguous.
    let bk = sweep(&bench.brick, shape, n, (b, b, b), LaneAxis::YZ, cfg);
    (rm, bk, rm.time_s / bk.time_s)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::a100;

    #[test]
    fn brick_reduces_sector_traffic() {
        let cfg = a100();
        let (rm, bk, _) = compare(StencilShape::Star(2), 64, 8, &cfg);
        assert!(
            bk.l2_bytes < rm.l2_bytes / 2.0,
            "brick {} vs rm {}",
            bk.l2_bytes,
            rm.l2_bytes
        );
    }

    #[test]
    fn brick_speedup_in_paper_band() {
        // Paper: 3.4x – 3.9x across shapes.
        let cfg = a100();
        for shape in [StencilShape::Star(1), StencilShape::Cube(1)] {
            let (_, _, speedup) = compare(shape, 64, 8, &cfg);
            assert!(
                (2.0..6.0).contains(&speedup),
                "{}: speedup {speedup}",
                shape.name()
            );
        }
    }

    #[test]
    fn intensity_higher_for_bigger_stencils() {
        let cfg = a100();
        let (_, small, _) = compare(StencilShape::Star(1), 64, 8, &cfg);
        let (_, big, _) = compare(StencilShape::Cube(2), 64, 8, &cfg);
        assert!(big.intensity > small.intensity);
    }
}
