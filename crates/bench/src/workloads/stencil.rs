//! Trace-driven 3-D stencil simulation (Fig. 12c / Fig. 13b).
//!
//! The per-warp lane walk — every stencil tap's 32 element addresses
//! computed through the *actual layout* (row-major vs. brick),
//! coalesced into 32-byte sectors and filtered through a scaled L2 —
//! lives in [`gpu_sim::trace::StencilWalk`], shared with the
//! `lego-tune` oracle.
//!
//! The mechanism is the one the paper names: bricks put "spatially
//! adjacent data related to a block of computation … physically
//! adjacent, eliminating unnecessary data movement over **strided**
//! data" (§V-B). The baseline array kernel's warps walk a strided
//! dimension of the row-major space (each lane in its own sector); with
//! the brick layout the same logical walk is unit-stride inside a brick.
//!
//! Scaling note (DESIGN.md §3): the paper's 512³ domains are simulated
//! at a smaller size with L2 capacity scaled by the same factor, so the
//! working-set-to-cache ratio that decides hit rates is preserved.

use gpu_sim::trace::{StencilWalk, TraceBuilder};
use gpu_sim::{score, Estimate, GpuConfig};
use lego_codegen::cuda::stencil::{generate, StencilBench, StencilShape};
use lego_core::Layout;

pub use gpu_sim::trace::LaneAxis;

/// Result for one stencil configuration.
#[derive(Clone, Copy, Debug)]
pub struct StencilResult {
    /// Estimated runtime in seconds.
    pub time_s: f64,
    /// Achieved GFLOP/s.
    pub gflops: f64,
    /// DRAM bytes moved.
    pub dram_bytes: f64,
    /// L2↔SM bytes moved (sector traffic).
    pub l2_bytes: f64,
    /// Arithmetic intensity (FLOP / DRAM byte).
    pub intensity: f64,
}

/// Scores one stencil sweep through the shared trace builder, returning
/// the raw `gpu-sim` estimate.
pub fn estimate(
    layout: &Layout,
    shape: StencilShape,
    n: i64,
    block: (i64, i64, i64),
    lane_axis: LaneAxis,
    cfg: &GpuConfig,
) -> Estimate {
    let workload = StencilWalk {
        shape_name: shape.name(),
        offsets: shape.offsets(),
        radius: shape.radius(),
        n,
        block,
        lane_axis,
        index_flops: 0.0,
    }
    .build(cfg);
    score(layout, &workload, cfg)
}

/// Simulates one stencil sweep over an `n³` domain with the given
/// layout, visiting points in `bx×by×bz` tiles with warps along
/// `lane_axis`.
pub fn sweep(
    layout: &Layout,
    shape: StencilShape,
    n: i64,
    block: (i64, i64, i64),
    lane_axis: LaneAxis,
    cfg: &GpuConfig,
) -> StencilResult {
    let e = estimate(layout, shape, n, block, lane_axis, cfg);
    StencilResult {
        time_s: e.time_s,
        gflops: e.flops / e.time_s / 1e9,
        dram_bytes: e.dram_bytes,
        l2_bytes: e.l2_bytes,
        intensity: e.flops / e.dram_bytes,
    }
}

/// Runs one shape with both layouts and returns
/// `(row_major, brick, speedup)`.
pub fn compare(
    shape: StencilShape,
    n: i64,
    b: i64,
    cfg: &GpuConfig,
) -> (StencilResult, StencilResult, f64) {
    let bench: StencilBench = generate(shape, n, b).expect("stencil layouts");
    // Baseline array kernel: 3-D tiles whose warps end up walking the
    // strided y dimension of the row-major space.
    let rm = sweep(&bench.row_major, shape, n, (4, 32, 4), LaneAxis::Y, cfg);
    // Brick kernel: one block per brick, threads in brick-local order —
    // which the brick layout makes memory-contiguous.
    let bk = sweep(&bench.brick, shape, n, (b, b, b), LaneAxis::YZ, cfg);
    (rm, bk, rm.time_s / bk.time_s)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::a100;

    #[test]
    fn brick_reduces_sector_traffic() {
        let cfg = a100();
        let (rm, bk, _) = compare(StencilShape::Star(2), 64, 8, &cfg);
        assert!(
            bk.l2_bytes < rm.l2_bytes / 2.0,
            "brick {} vs rm {}",
            bk.l2_bytes,
            rm.l2_bytes
        );
    }

    #[test]
    fn brick_speedup_in_paper_band() {
        // Paper: 3.4x – 3.9x across shapes.
        let cfg = a100();
        for shape in [StencilShape::Star(1), StencilShape::Cube(1)] {
            let (_, _, speedup) = compare(shape, 64, 8, &cfg);
            assert!(
                (2.0..6.0).contains(&speedup),
                "{}: speedup {speedup}",
                shape.name()
            );
        }
    }

    #[test]
    fn intensity_higher_for_bigger_stencils() {
        let cfg = a100();
        let (_, small, _) = compare(StencilShape::Star(1), 64, 8, &cfg);
        let (_, big, _) = compare(StencilShape::Cube(2), 64, 8, &cfg);
        assert!(big.intensity > small.intensity);
    }
}
